#!/usr/bin/env python3
"""Host-performance gate for the execution hot paths.

Usage:
  check_perf.py --bench path/to/bench_table2_exec_times \\
                --baseline BENCH_perf.json [--regen] [--tolerance 0.25] \\
                [--backend sim|native|proc]

Runs the table-2 harness at a small fixed scale, records host wall-clock
and progress units per host second, and compares throughput against the
committed baseline. Throughput below (1 - tolerance) x baseline fails the
gate.

Three gated substrates:

  sim (default): progress unit is discrete events (`sim.events` in the
    `dpa.metrics.v1` snapshot). The event count is deterministic, so it is
    asserted exactly — only host cost per event can move the throughput.

  native: the same workload on the threaded backend; progress unit is node
    tasks executed (`exec.tasks`). Task counts vary slightly run-to-run
    (message arrival order steers aggregation flushes), so no exact-count
    assertion — just the throughput floor, stored under the "native" key of
    the same baseline file. Thread scheduling is noisier than simulation;
    CI uses a wider tolerance for this mode.

  proc: the multi-process backend (fork-per-phase workers over socketpair
    frames); progress unit is `exec.tasks` like native, floor-only for the
    same reason, stored under the "proc" key. Runs at a smaller scale —
    the per-phase fork + frame-level termination protocol dominates at
    tiny node counts, which is exactly the overhead this gate watches.

Re-bless a deliberate change (new cost model, bigger workload) with
--regen — and say why in the commit; --regen touches only the keys of the
selected backend. The baseline stores the machine it was recorded on; the
default 25% tolerance absorbs normal CI-runner noise and
generation-to-generation hardware drift, while still catching the
step-function regressions this gate exists for (an accidental O(n^2), a
debug container left in the hot path).
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time

# Bigger than the golden-check workload so a single run takes a few hundred
# milliseconds of host time; run a few times and take best-of to keep the
# measurement stable on noisy shared runners. The native gate sweeps up to
# 64 nodes with --workers=0 (one pool worker per host core): on a small CI
# runner the node count far exceeds the pool, which is exactly the
# oversubscribed regime the M:N scheduler's whole-node stealing, message
# trains, sharded quiescence, and idle parking are gated on.
BENCH_ARGS = {
    "sim": [
        "--bodies=2048",
        "--particles=2048",
        "--terms=8",
        "--max-procs=8",
    ],
    "native": [
        "--bodies=2048",
        "--particles=2048",
        "--terms=8",
        "--max-procs=64",
        "--workers=0",
    ],
    "proc": [
        "--bodies=512",
        "--particles=512",
        "--terms=4",
        "--max-procs=8",
        "--procs=2",
    ],
}
RUNS = 3

COUNTER = {"sim": "sim.events", "native": "exec.tasks", "proc": "exec.tasks"}


def fail(msg):
    print(f"check_perf: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_bench_once(bench, backend):
    with tempfile.NamedTemporaryFile(
        suffix=".json", prefix="perf_metrics_", delete=False
    ) as tmp:
        metrics_path = tmp.name
    extra = [f"--backend={backend}"] if backend != "sim" else []
    try:
        start = time.perf_counter()
        proc = subprocess.run(
            [bench]
            + BENCH_ARGS[backend]
            + extra
            + [f"--metrics-out={metrics_path}"],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        wall_s = time.perf_counter() - start
        if proc.returncode != 0:
            fail(
                f"bench exited {proc.returncode}:\n"
                + proc.stderr.decode(errors="replace")
            )
        with open(metrics_path) as f:
            metrics = json.load(f)
    finally:
        os.unlink(metrics_path)
    if metrics.get("schema") != "dpa.metrics.v1":
        fail(f"unexpected metrics schema: {metrics.get('schema')!r}")
    counter = COUNTER[backend]
    events = metrics.get("counters", {}).get(counter)
    if not events:
        fail(f"metrics snapshot has no {counter} counter")
    return wall_s, events


def measure(bench, backend):
    best = None
    for _ in range(RUNS):
        wall_s, events = run_bench_once(bench, backend)
        if best is None or wall_s < best[0]:
            best = (wall_s, events)
    wall_s, events = best
    unit = "sim_events" if backend == "sim" else "tasks"
    return {
        "bench_args": BENCH_ARGS[backend],
        unit: events,
        "wall_s": round(wall_s, 4),
        "events_per_sec": round(events / wall_s),
        "machine": platform.machine(),
    }


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", required=True)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--regen", action="store_true")
    ap.add_argument("--tolerance", type=float, default=0.25)
    ap.add_argument(
        "--backend", choices=["sim", "native", "proc"], default="sim"
    )
    args = ap.parse_args()

    current = measure(args.bench, args.backend)
    unit = "sim_events" if args.backend == "sim" else "tasks"
    print(
        f"check_perf[{args.backend}]: {current[unit]} {unit} in "
        f"{current['wall_s']:.3f}s host = "
        f"{current['events_per_sec']:,} per sec"
    )

    if args.regen:
        # Touch only the selected backend's keys; leave the other's blessed
        # numbers exactly as committed.
        try:
            with open(args.baseline) as f:
                blessed = json.load(f)
        except FileNotFoundError:
            blessed = {}
        if args.backend == "sim":
            kept = {k: v for k, v in blessed.items() if k in ("native", "proc")}
            blessed = {**kept, **current}
        else:
            blessed[args.backend] = current
        with open(args.baseline, "w") as f:
            json.dump(blessed, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"check_perf: baseline written to {args.baseline}")
        return

    try:
        with open(args.baseline) as f:
            blessed = json.load(f)
    except FileNotFoundError:
        fail(f"no baseline at {args.baseline}; run with --regen to create it")
    baseline = blessed if args.backend == "sim" else blessed.get(args.backend)
    if not baseline:
        fail(
            f"baseline has no '{args.backend}' numbers; run with "
            f"--backend={args.backend} --regen to add them"
        )

    # The simulated event count is deterministic: a mismatch means the
    # workload changed and the baseline must be deliberately regenerated.
    # (Native task counts legitimately wobble with arrival order, so only
    # the throughput floor is enforced there.)
    if args.backend == "sim" and current["sim_events"] != baseline["sim_events"]:
        fail(
            f"sim.events changed: {current['sim_events']} vs baseline "
            f"{baseline['sim_events']} — workload drifted; re-bless with "
            "--regen if intentional"
        )

    floor = baseline["events_per_sec"] * (1.0 - args.tolerance)
    ratio = current["events_per_sec"] / baseline["events_per_sec"]
    print(
        f"check_perf: baseline {baseline['events_per_sec']:,} per sec "
        f"(x{ratio:.2f}, floor x{1.0 - args.tolerance:.2f})"
    )
    if current["events_per_sec"] < floor:
        fail(
            f"throughput regressed beyond {args.tolerance:.0%}: "
            f"{current['events_per_sec']:,} < floor {floor:,.0f} "
            f"(baseline {baseline['events_per_sec']:,} on "
            f"{baseline.get('machine', '?')})"
        )
    print("check_perf: OK")


if __name__ == "__main__":
    main()
