#!/usr/bin/env python3
"""Host-performance gate for the simulator hot path.

Usage:
  check_perf.py --bench path/to/bench_table2_exec_times \\
                --baseline BENCH_perf.json [--regen] [--tolerance 0.25]

Runs the table-2 harness at a small fixed scale, records host wall-clock
and simulated events per host second (from the `sim.events` counter in the
`dpa.metrics.v1` snapshot), and compares events/sec against the committed
baseline. Throughput below (1 - tolerance) x baseline fails the gate.

Events/sec is the primary metric because it normalizes out workload size:
the simulated event count is deterministic, so only the host cost per
event can move it. Wall-clock is recorded for context but not gated (CI
machines vary too much for an absolute time bound).

Re-bless a deliberate change (new cost model, bigger workload) with
--regen — and say why in the commit. The baseline stores the machine it
was recorded on; the default 25% tolerance absorbs normal CI-runner noise
and generation-to-generation hardware drift, while still catching the
step-function regressions this gate exists for (an accidental O(n^2), a
debug container left in the hot path).
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time

# Bigger than the golden-check workload so a single run takes a few hundred
# milliseconds of host time; run a few times and take best-of to keep the
# measurement stable on noisy shared runners.
BENCH_ARGS = [
    "--bodies=2048",
    "--particles=2048",
    "--terms=8",
    "--max-procs=8",
]
RUNS = 3


def fail(msg):
    print(f"check_perf: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_bench_once(bench):
    with tempfile.NamedTemporaryFile(
        suffix=".json", prefix="perf_metrics_", delete=False
    ) as tmp:
        metrics_path = tmp.name
    try:
        start = time.perf_counter()
        proc = subprocess.run(
            [bench] + BENCH_ARGS + [f"--metrics-out={metrics_path}"],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        wall_s = time.perf_counter() - start
        if proc.returncode != 0:
            fail(
                f"bench exited {proc.returncode}:\n"
                + proc.stderr.decode(errors="replace")
            )
        with open(metrics_path) as f:
            metrics = json.load(f)
    finally:
        os.unlink(metrics_path)
    if metrics.get("schema") != "dpa.metrics.v1":
        fail(f"unexpected metrics schema: {metrics.get('schema')!r}")
    events = metrics.get("counters", {}).get("sim.events")
    if not events:
        fail("metrics snapshot has no sim.events counter")
    return wall_s, events


def measure(bench):
    best = None
    for _ in range(RUNS):
        wall_s, events = run_bench_once(bench)
        if best is None or wall_s < best[0]:
            best = (wall_s, events)
    wall_s, events = best
    return {
        "bench_args": BENCH_ARGS,
        "sim_events": events,
        "wall_s": round(wall_s, 4),
        "events_per_sec": round(events / wall_s),
        "machine": platform.machine(),
    }


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", required=True)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--regen", action="store_true")
    ap.add_argument("--tolerance", type=float, default=0.25)
    args = ap.parse_args()

    current = measure(args.bench)
    print(
        f"check_perf: {current['sim_events']} events in "
        f"{current['wall_s']:.3f}s host = "
        f"{current['events_per_sec']:,} events/sec"
    )

    if args.regen:
        with open(args.baseline, "w") as f:
            json.dump(current, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"check_perf: baseline written to {args.baseline}")
        return

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except FileNotFoundError:
        fail(f"no baseline at {args.baseline}; run with --regen to create it")

    # The simulated event count is deterministic: a mismatch means the
    # workload changed and the baseline must be deliberately regenerated.
    if current["sim_events"] != baseline["sim_events"]:
        fail(
            f"sim.events changed: {current['sim_events']} vs baseline "
            f"{baseline['sim_events']} — workload drifted; re-bless with "
            "--regen if intentional"
        )

    floor = baseline["events_per_sec"] * (1.0 - args.tolerance)
    ratio = current["events_per_sec"] / baseline["events_per_sec"]
    print(
        f"check_perf: baseline {baseline['events_per_sec']:,} events/sec "
        f"(x{ratio:.2f}, floor x{1.0 - args.tolerance:.2f})"
    )
    if current["events_per_sec"] < floor:
        fail(
            f"events/sec regressed beyond {args.tolerance:.0%}: "
            f"{current['events_per_sec']:,} < floor {floor:,.0f} "
            f"(baseline {baseline['events_per_sec']:,} on "
            f"{baseline.get('machine', '?')})"
        )
    print("check_perf: OK")


if __name__ == "__main__":
    main()
