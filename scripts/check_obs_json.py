#!/usr/bin/env python3
"""Schema checks for the observability JSON artifacts the benches emit.

Usage:
  check_obs_json.py --trace trace.json [--require-events]
  check_obs_json.py --metrics metrics.json [--require-native]
  check_obs_json.py --bench t2.json
  check_obs_json.py --flightrec flight.json

Validates that a Chrome trace is loadable (well-formed traceEvents with
monotone-ready timestamps, per-worker drop counts consistent with the
total), that a metrics snapshot follows dpa.metrics.v1 (--require-native
additionally demands the native backend's exec.* wall-clock histograms),
that bench --json output embeds a metrics block, and that a watchdog
flight-recorder dump follows dpa.flightrec.v2 (per-node quiescence state
plus the M:N pool's per-worker scheduler state). Exits non-zero on the
first violation.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_obs_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path, require_events):
    with open(path) as f:
        doc = json.load(f)
    for key in ("traceEvents", "recorded_events", "dropped_events"):
        if key not in doc:
            fail(f"{path}: missing key {key!r}")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not a list")
    valid_ph = {"X", "B", "E", "i", "M"}
    last_ts = None
    timed = 0
    for i, ev in enumerate(events):
        if ev.get("ph") not in valid_ph:
            fail(f"{path}: event {i} has unexpected ph {ev.get('ph')!r}")
        if "pid" not in ev or "tid" not in ev or "name" not in ev:
            fail(f"{path}: event {i} missing pid/tid/name")
        if ev["ph"] == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"{path}: event {i} has no numeric ts")
        if last_ts is not None and ts < last_ts:
            fail(f"{path}: timestamps not sorted at event {i}: "
                 f"{ts} < {last_ts}")
        last_ts = ts
        timed += 1
        if ev["ph"] == "X" and not isinstance(ev.get("dur"), (int, float)):
            fail(f"{path}: X event {i} missing dur")
    if require_events and timed == 0:
        fail(f"{path}: no timed events (expected some with DPA_TRACE=ON)")
    if "dropped_by_worker" in doc:
        per_worker = doc["dropped_by_worker"]
        if not isinstance(per_worker, list):
            fail(f"{path}: dropped_by_worker is not a list")
        for w, d in enumerate(per_worker):
            if not isinstance(d, int) or d < 0:
                fail(f"{path}: dropped_by_worker[{w}] is not a "
                     f"non-negative int")
        if sum(per_worker) > doc["dropped_events"]:
            fail(f"{path}: dropped_by_worker sums to {sum(per_worker)} > "
                 f"dropped_events {doc['dropped_events']}")
    print(f"check_obs_json: OK: {path}: {timed} timed events, "
          f"{doc['dropped_events']} dropped")


# Counters the transport layer republishes under transport.* next to
# their legacy names (src/runtime/phase.cpp): each pair must stay equal,
# and a legacy counter without its alias means the aliasing broke.
TRANSPORT_ALIASES = (
    ("transport.retries", "rt.retries"),
    ("transport.acks_sent", "rt.acks_sent"),
    ("transport.acks_recv", "rt.acks_recv"),
    ("transport.dup_msgs_dropped", "rt.dup_msgs_dropped"),
    ("transport.trains_sent", "exec.trains"),
)


def check_transport_aliases(block, origin):
    counters = block["counters"]
    # Only meaningful once a phase has published (mid-phase flight-recorder
    # snapshots may predate any publication).
    if counters.get("rt.phases", 0) == 0:
        return
    for alias, legacy in TRANSPORT_ALIASES:
        if legacy in counters and alias not in counters:
            fail(f"{origin}: {legacy!r} present without its transport "
                 f"alias {alias!r}")
        if alias in counters and legacy in counters \
                and counters[alias] != counters[legacy]:
            fail(f"{origin}: alias mismatch: {alias}={counters[alias]} "
                 f"vs {legacy}={counters[legacy]}")


# Wall-clock profile histograms the native backend publishes per phase
# (bench/common.h --metrics-out with --backend=native).
NATIVE_HISTOGRAMS = (
    "exec.task_service_ns",
    "exec.mailbox_wait_ns",
    "exec.train_occupancy",
    "exec.park_ns",
    "exec.queue_depth",
)


def check_metrics_block(block, origin, require_phases=True):
    for key in ("counters", "gauges", "histograms"):
        if key not in block or not isinstance(block[key], dict):
            fail(f"{origin}: missing or malformed {key!r} object")
    for name, v in block["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(f"{origin}: counter {name!r} is not a non-negative int")
    for name, g in block["gauges"].items():
        if not {"current", "high_water"} <= set(g):
            fail(f"{origin}: gauge {name!r} missing current/high_water")
    for name, h in block["histograms"].items():
        if not {"count", "p50", "p90", "p99", "buckets"} <= set(h):
            fail(f"{origin}: histogram {name!r} missing fields")
        if sum(h["buckets"]) != h["count"]:
            fail(f"{origin}: histogram {name!r} buckets do not sum to count")
    if (require_phases and "rt.phases" in block["counters"]
            and block["counters"]["rt.phases"] == 0):
        fail(f"{origin}: rt.phases is zero — no phase published metrics")
    check_transport_aliases(block, origin)
    print(f"check_obs_json: OK: {origin}: {len(block['counters'])} counters, "
          f"{len(block['gauges'])} gauges, "
          f"{len(block['histograms'])} histograms")


def check_metrics(path, require_native=False):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "dpa.metrics.v1":
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             f"expected 'dpa.metrics.v1'")
    check_metrics_block(doc, path)
    if require_native:
        if doc["counters"].get("exec.tasks", 0) <= 0:
            fail(f"{path}: exec.tasks missing or zero — this was not a "
                 f"native-backend run")
        for name in NATIVE_HISTOGRAMS:
            if name not in doc["histograms"]:
                fail(f"{path}: missing native profile histogram {name!r}")


def check_flightrec(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "dpa.flightrec.v2":
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             f"expected 'dpa.flightrec.v2'")
    for key, typ in (("reason", str), ("elapsed_ns", int),
                     ("phase_epoch", int), ("stuck_scans", int),
                     ("nodes", list), ("workers", list)):
        if not isinstance(doc.get(key), typ):
            fail(f"{path}: missing or mistyped key {key!r}")
    if not doc["nodes"]:
        fail(f"{path}: empty nodes array")
    for i, n in enumerate(doc["nodes"]):
        for key, typ in (("node", int), ("produced", int), ("consumed", int),
                         ("inbox_depth", int), ("active", bool),
                         ("stuck", bool)):
            if not isinstance(n.get(key), typ):
                fail(f"{path}: node {i} missing or mistyped {key!r}")
        # Per-node consumed > produced is fine (work migrates between
        # nodes); negative counters mean the JSON is garbage.
        if n["produced"] < 0 or n["consumed"] < 0 or n["inbox_depth"] < 0:
            fail(f"{path}: node {i} has a negative counter")
    if not doc["workers"]:
        fail(f"{path}: empty workers array")
    for i, w in enumerate(doc["workers"]):
        for key, typ in (("worker", int), ("runq_depth", int),
                         ("parked", bool), ("parks", int), ("steals", int)):
            if not isinstance(w.get(key), typ):
                fail(f"{path}: worker {i} missing or mistyped {key!r}")
        if w["runq_depth"] < 0 or w["parks"] < 0 or w["steals"] < 0:
            fail(f"{path}: worker {i} has a negative counter")
    if len(doc["workers"]) > len(doc["nodes"]):
        fail(f"{path}: more pool workers ({len(doc['workers'])}) than nodes "
             f"({len(doc['nodes'])}) — the backend clamps the pool to the "
             f"node count")
    outstanding = (sum(n["produced"] for n in doc["nodes"])
                   - sum(n["consumed"] for n in doc["nodes"]))
    if outstanding <= 0:
        fail(f"{path}: no outstanding tasks ({outstanding}) — a watchdog "
             f"dump of a quiescent machine should be impossible")
    if "dropped_by_worker" in doc:
        for w, d in enumerate(doc["dropped_by_worker"]):
            if not isinstance(d, int) or d < 0:
                fail(f"{path}: dropped_by_worker[{w}] is not a "
                     f"non-negative int")
    if "events" in doc:
        for i, ev in enumerate(doc["events"]):
            for key in ("kind", "worker", "seq", "at"):
                if key not in ev:
                    fail(f"{path}: event {i} missing {key!r}")
    if "metrics" in doc:
        # Mid-phase snapshot: the wedged phase never published, so the
        # rt.phases>0 rule does not apply here.
        check_metrics_block(doc["metrics"], f"{path}#metrics",
                            require_phases=False)
    print(f"check_obs_json: OK: {path}: {doc['reason']!r}, "
          f"{len(doc['nodes'])} nodes, {len(doc['workers'])} workers, "
          f"{outstanding} outstanding, "
          f"{len(doc.get('events', []))} ring events")


def check_bench(path):
    with open(path) as f:
        doc = json.load(f)
    if "metrics" not in doc:
        fail(f"{path}: bench JSON has no embedded 'metrics' block")
    check_metrics_block(doc["metrics"], f"{path}#metrics")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace-event JSON to validate")
    ap.add_argument("--metrics", help="metrics snapshot JSON to validate")
    ap.add_argument("--bench", help="bench --json output to validate")
    ap.add_argument("--flightrec",
                    help="watchdog flight-recorder JSON to validate")
    ap.add_argument("--require-events", action="store_true",
                    help="fail if the trace holds no timed events")
    ap.add_argument("--require-native", action="store_true",
                    help="fail unless the metrics came from a native run "
                         "(exec.tasks > 0 and the exec.* histograms)")
    args = ap.parse_args()
    if not (args.trace or args.metrics or args.bench or args.flightrec):
        ap.error("nothing to check: pass --trace/--metrics/--bench/"
                 "--flightrec")
    if args.trace:
        check_trace(args.trace, args.require_events)
    if args.metrics:
        check_metrics(args.metrics, args.require_native)
    if args.bench:
        check_bench(args.bench)
    if args.flightrec:
        check_flightrec(args.flightrec)


if __name__ == "__main__":
    main()
