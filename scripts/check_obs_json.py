#!/usr/bin/env python3
"""Schema checks for the observability JSON artifacts the benches emit.

Usage:
  check_obs_json.py --trace trace.json [--require-events]
  check_obs_json.py --metrics metrics.json
  check_obs_json.py --bench t2.json

Validates that a Chrome trace is loadable (well-formed traceEvents with
monotone-ready timestamps), that a metrics snapshot follows
dpa.metrics.v1, and that bench --json output embeds a metrics block.
Exits non-zero on the first violation.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_obs_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path, require_events):
    with open(path) as f:
        doc = json.load(f)
    for key in ("traceEvents", "recorded_events", "dropped_events"):
        if key not in doc:
            fail(f"{path}: missing key {key!r}")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not a list")
    valid_ph = {"X", "B", "E", "i", "M"}
    last_ts = None
    timed = 0
    for i, ev in enumerate(events):
        if ev.get("ph") not in valid_ph:
            fail(f"{path}: event {i} has unexpected ph {ev.get('ph')!r}")
        if "pid" not in ev or "tid" not in ev or "name" not in ev:
            fail(f"{path}: event {i} missing pid/tid/name")
        if ev["ph"] == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"{path}: event {i} has no numeric ts")
        if last_ts is not None and ts < last_ts:
            fail(f"{path}: timestamps not sorted at event {i}: "
                 f"{ts} < {last_ts}")
        last_ts = ts
        timed += 1
        if ev["ph"] == "X" and not isinstance(ev.get("dur"), (int, float)):
            fail(f"{path}: X event {i} missing dur")
    if require_events and timed == 0:
        fail(f"{path}: no timed events (expected some with DPA_TRACE=ON)")
    print(f"check_obs_json: OK: {path}: {timed} timed events, "
          f"{doc['dropped_events']} dropped")


def check_metrics_block(block, origin):
    for key in ("counters", "gauges", "histograms"):
        if key not in block or not isinstance(block[key], dict):
            fail(f"{origin}: missing or malformed {key!r} object")
    for name, v in block["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(f"{origin}: counter {name!r} is not a non-negative int")
    for name, g in block["gauges"].items():
        if not {"current", "high_water"} <= set(g):
            fail(f"{origin}: gauge {name!r} missing current/high_water")
    for name, h in block["histograms"].items():
        if not {"count", "p50", "p90", "p99", "buckets"} <= set(h):
            fail(f"{origin}: histogram {name!r} missing fields")
        if sum(h["buckets"]) != h["count"]:
            fail(f"{origin}: histogram {name!r} buckets do not sum to count")
    if "rt.phases" in block["counters"] and block["counters"]["rt.phases"] == 0:
        fail(f"{origin}: rt.phases is zero — no phase published metrics")
    print(f"check_obs_json: OK: {origin}: {len(block['counters'])} counters, "
          f"{len(block['gauges'])} gauges, "
          f"{len(block['histograms'])} histograms")


def check_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "dpa.metrics.v1":
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             f"expected 'dpa.metrics.v1'")
    check_metrics_block(doc, path)


def check_bench(path):
    with open(path) as f:
        doc = json.load(f)
    if "metrics" not in doc:
        fail(f"{path}: bench JSON has no embedded 'metrics' block")
    check_metrics_block(doc["metrics"], f"{path}#metrics")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace-event JSON to validate")
    ap.add_argument("--metrics", help="metrics snapshot JSON to validate")
    ap.add_argument("--bench", help="bench --json output to validate")
    ap.add_argument("--require-events", action="store_true",
                    help="fail if the trace holds no timed events")
    args = ap.parse_args()
    if not (args.trace or args.metrics or args.bench):
        ap.error("nothing to check: pass --trace/--metrics/--bench")
    if args.trace:
        check_trace(args.trace, args.require_events)
    if args.metrics:
        check_metrics(args.metrics)
    if args.bench:
        check_bench(args.bench)


if __name__ == "__main__":
    main()
