#!/usr/bin/env python3
"""Golden-regression check for the execution-time table.

Usage:
  check_golden.py --bench path/to/bench_table2_exec_times \\
                  --golden tests/golden/table2_small.json [--regen] \\
                  [--tolerance 0.005]

Re-runs the table-2 harness at a small fixed scale with --json output and
compares every timing cell (dpa_s / caching_s per row) against the
checked-in snapshot within a relative tolerance (default +-0.5%). The
simulator is deterministic, so any drift beyond tolerance means the cost
model or runtime behavior changed; rerun with --regen to bless an
intentional change (and say why in the commit).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Small fixed workload: seconds of host time, stable shape.
BENCH_ARGS = ["--bodies=256", "--particles=256", "--terms=8", "--max-procs=8"]
TIMING_KEYS = ("dpa_s", "caching_s")


def fail(msg):
    print(f"check_golden: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_bench(bench):
    with tempfile.NamedTemporaryFile(
        suffix=".json", prefix="table2_golden_", delete=False
    ) as tmp:
        out_path = tmp.name
    try:
        subprocess.run(
            [bench, *BENCH_ARGS, f"--json={out_path}"],
            check=True,
            stdout=subprocess.DEVNULL,
        )
        with open(out_path) as f:
            doc = json.load(f)
    finally:
        os.unlink(out_path)
    # Keep only the result tables; the embedded metrics block counts every
    # instrumented event and is covered by the determinism test instead.
    tables = {}
    for app in ("barnes_hut", "fmm"):
        if app not in doc:
            fail(f"bench output is missing the {app!r} table")
        tables[app] = doc[app]
    return tables


def compare(golden, fresh, tolerance):
    # Collect every cell first: on failure the report is the FULL
    # per-field diff (expected vs actual vs tolerance for every timing
    # cell), not just the first offender — one CI run gives the whole
    # drift picture.
    cells = []
    drifted = 0
    for app, rows in golden.items():
        fresh_rows = fresh.get(app, [])
        if len(rows) != len(fresh_rows):
            fail(f"{app}: row count changed {len(rows)} -> {len(fresh_rows)}")
        for want, got in zip(rows, fresh_rows):
            if want["procs"] != got["procs"]:
                fail(f"{app}: procs column changed: {want['procs']} -> "
                     f"{got['procs']}")
            for key in TIMING_KEYS:
                w, g = want[key], got[key]
                rel = abs(g - w) / w if w else abs(g - w)
                ok = rel <= tolerance
                drifted += 0 if ok else 1
                cells.append((app, want["procs"], key, w, g, rel, ok))
    if drifted:
        header = (f"{'field':<26} {'expected':>12} {'actual':>12} "
                  f"{'drift':>9} {'tolerance':>9}  verdict")
        lines = [header, "-" * len(header)]
        for app, procs, key, w, g, rel, ok in cells:
            field = f"{app} P={procs} {key}"
            lines.append(f"{field:<26} {w:>12.6f} {g:>12.6f} "
                         f"{rel * 100:>8.3f}% {tolerance * 100:>8.2f}%  "
                         f"{'ok' if ok else 'DRIFT'}")
        fail(f"{drifted} timing cell(s) drifted beyond tolerance:\n  "
             + "\n  ".join(lines))


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", required=True,
                    help="path to bench_table2_exec_times")
    ap.add_argument("--golden", required=True, help="snapshot JSON path")
    ap.add_argument("--regen", action="store_true",
                    help="rewrite the snapshot from a fresh run")
    ap.add_argument("--tolerance", type=float, default=0.005,
                    help="max relative drift per timing cell")
    args = ap.parse_args()

    fresh = run_bench(args.bench)
    if args.regen:
        with open(args.golden, "w") as f:
            json.dump(fresh, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"check_golden: wrote {args.golden}")
        return
    if not os.path.exists(args.golden):
        fail(f"{args.golden} missing; run with --regen to create it")
    with open(args.golden) as f:
        golden = json.load(f)
    compare(golden, fresh, args.tolerance)
    rows = sum(len(v) for v in golden.values())
    print(f"check_golden: OK ({rows} rows within "
          f"{args.tolerance * 100:.2f}%)")


if __name__ == "__main__":
    main()
