#!/usr/bin/env bash
# Regenerates every experiment in EXPERIMENTS.md and the final test/bench
# logs. Run from the repository root.
#
#   scripts/reproduce.sh          # scaled workloads (about a minute)
#   scripts/reproduce.sh --paper  # full paper-scale Table 2 (a few minutes)
set -euo pipefail

PAPER_FLAG=""
if [[ "${1:-}" == "--paper" ]]; then
  PAPER_FLAG="--paper"
fi

cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build 2>&1 | tee test_output.txt

echo "== benches =="
{
  ./build/bench/bench_table2_exec_times ${PAPER_FLAG} \
      --json=table2_results.json
  ./build/bench/bench_table1_threads
  ./build/bench/bench_fig_breakdown_bh
  ./build/bench/bench_fig_breakdown_fmm
  ./build/bench/bench_fig_stripsize
  ./build/bench/bench_ablation_templates
  ./build/bench/bench_ablation_aggregation
  ./build/bench/bench_ablation_network
  ./build/bench/bench_suite_olden
  ./build/bench/bench_micro_runtime --benchmark_min_time=0.05
} 2>&1 | tee bench_output.txt

echo "done: test_output.txt, bench_output.txt, table2_results.json"
