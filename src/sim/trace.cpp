#include "sim/trace.h"

#include <algorithm>
#include <sstream>

namespace dpa::sim {

Time Timeline::node_busy(NodeId node) const {
  Time busy = 0;
  for (const auto& t : tasks_)
    if (t.node == node) busy += t.end - t.start;
  return busy;
}

std::string Timeline::dump(std::size_t limit) const {
  struct Line {
    Time at;
    std::string text;
  };
  std::vector<Line> lines;
  lines.reserve(tasks_.size() + msgs_.size());
  for (const auto& t : tasks_) {
    std::ostringstream os;
    os << "[" << t.start << ".." << t.end << "] node " << t.node << " task ("
       << (t.end - t.start) << " ns)";
    lines.push_back({t.start, os.str()});
  }
  for (const auto& m : msgs_) {
    std::ostringstream os;
    os << "[" << m.depart << ".." << m.arrive << "] msg " << m.src << " -> "
       << m.dst << " (" << m.bytes << " B)";
    lines.push_back({m.depart, os.str()});
  }
  std::stable_sort(lines.begin(), lines.end(),
                   [](const Line& a, const Line& b) { return a.at < b.at; });
  std::ostringstream os;
  for (std::size_t i = 0; i < lines.size() && i < limit; ++i)
    os << lines[i].text << "\n";
  if (lines.size() > limit)
    os << "... (" << (lines.size() - limit) << " more)\n";
  return os.str();
}

}  // namespace dpa::sim
