#include "sim/machine.h"

#include <algorithm>
#include <utility>

#include "support/assert.h"

namespace dpa::sim {

void NodeProc::post(Task task) {
  pending_.push_back(std::move(task));
  if (!drain_scheduled_) {
    drain_scheduled_ = true;
    const Time at = std::max(engine_.now(), busy_until_);
    engine_.schedule_at(at, [this] { drain(); });
  }
}

void NodeProc::drain() {
  drain_scheduled_ = false;
  if (pending_.empty()) return;

  // A task posted from within a running task lands here before busy_until_
  // caught up with that task's end; start no earlier than the node is free.
  const Time start = std::max(engine_.now(), busy_until_);
  Task task = std::move(pending_.front());
  pending_.pop_front();

  Cpu cpu(id_, start);
  task(cpu);

  busy_until_ = start + cpu.used_total();
  if (trace_ != nullptr && cpu.used_total() > 0)
    trace_->task(id_, start, busy_until_);
  for (int k = 0; k < kNumWorkKinds; ++k)
    stats_.busy[k] += cpu.used(Work(k));
  stats_.busy_total += cpu.used_total();
  stats_.finish_time = busy_until_;
  ++stats_.tasks_run;

  if (!pending_.empty()) {
    drain_scheduled_ = true;
    engine_.schedule_at(busy_until_, [this] { drain(); });
  }
}

Machine::Machine(std::uint32_t num_nodes, NetParams params)
    : network_(engine_, params, num_nodes) {
  nodes_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i)
    nodes_.push_back(std::make_unique<NodeProc>(engine_, i));
  if (network_.injector() != nullptr) {
    // A pause fault stalls the whole node: it runs as a busy task, so every
    // queued handler and scheduler step waits it out. Charged as runtime
    // time (it is neither application work nor messaging overhead).
    network_.set_pause_hook([this](NodeId id, Time duration) {
      node(id).post(
          [duration](Cpu& cpu) { cpu.charge(duration, Work::kRuntime); });
    });
  }
}

NodeProc& Machine::node(NodeId id) {
  DPA_CHECK(id < nodes_.size()) << "bad node id " << id;
  return *nodes_[id];
}

const NodeProc& Machine::node(NodeId id) const {
  DPA_CHECK(id < nodes_.size()) << "bad node id " << id;
  return *nodes_[id];
}

void Machine::begin_phase() {
  // The phase starts once every node has drained its previous work: charged
  // time can extend past the last event's timestamp.
  phase_start_ = engine_.now();
  for (auto& n : nodes_) {
    phase_start_ = std::max(phase_start_, n->busy_until());
    n->reset_stats();
  }
  network_.stats().reset();
  if (auto* injector = network_.injector()) injector->reset_stats();
}

Time Machine::run_phase() {
  engine_.run();
  Time finish = phase_start_;
  for (auto& n : nodes_)
    finish = std::max(finish, n->stats().finish_time);
  return finish - phase_start_;
}

void Machine::set_trace(TraceSink* sink) {
  for (auto& n : nodes_) n->set_trace(sink);
  network_.set_trace(sink);
}

Time Machine::idle_time(NodeId id, Time phase_elapsed) const {
  const auto& st = nodes_[id]->stats();
  const Time idle = phase_elapsed - st.busy_total;
  return idle > 0 ? idle : 0;
}

}  // namespace dpa::sim
