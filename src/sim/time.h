// Simulated time. One tick = one nanosecond of machine time.
//
// The whole reproduction runs on simulated time: application computation is
// real (forces are actually computed) but its *cost* is charged through the
// CostModel, so a 64-node Cray-T3D-like run executes deterministically on a
// single host core.
//
// The underlying types live in exec/types.h — they are the vocabulary shared
// with the native backend — and are re-exported here under their historical
// names.
#pragma once

#include "exec/types.h"

namespace dpa::sim {

using exec::Time;  // nanoseconds

using exec::kMicrosecond;
using exec::kMillisecond;
using exec::kNanosecond;
using exec::kSecond;

using exec::to_micros;
using exec::to_seconds;

}  // namespace dpa::sim
