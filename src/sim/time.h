// Simulated time. One tick = one nanosecond of machine time.
//
// The whole reproduction runs on simulated time: application computation is
// real (forces are actually computed) but its *cost* is charged through the
// CostModel, so a 64-node Cray-T3D-like run executes deterministically on a
// single host core.
#pragma once

#include <cstdint>

namespace dpa::sim {

using Time = std::int64_t;  // nanoseconds

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

constexpr double to_seconds(Time t) { return double(t) / double(kSecond); }
constexpr double to_micros(Time t) { return double(t) / double(kMicrosecond); }

}  // namespace dpa::sim
