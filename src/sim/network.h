// LogGP-style network model.
//
// This stands in for the Cray T3D's torus as seen through the Illinois Fast
// Messages layer. The parameters are the LogGP terms the DPA optimizations
// manipulate: per-message send/receive overhead (what aggregation amortizes),
// latency (what pipelining hides), and per-byte cost. Optionally each node's
// NIC serializes its outgoing traffic, which models injection bandwidth.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.h"
#include "sim/fault.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace dpa::sim {

using exec::NodeId;

// Interconnect shape. The crossbar charges `latency` uniformly; the 3D
// torus (the T3D's actual topology) adds `per_hop` per link crossed, with
// nodes arranged in a near-cubic grid and routed dimension-ordered.
enum class Topology : std::uint8_t { kCrossbar, kTorus3d };

struct NetParams {
  // Software send overhead per message, charged to the sending processor.
  Time send_overhead = 1500;
  // Software receive overhead per message, charged to the receiver.
  Time recv_overhead = 1500;
  // Wire latency, first bit out to first bit in (plus per-hop cost on the
  // torus).
  Time latency = 3000;
  Topology topology = Topology::kCrossbar;
  Time per_hop = 120;  // torus only
  // Inverse bandwidth. 33 ns/byte ~= 30 MB/s, the FM-on-T3D regime.
  double ns_per_byte = 33.0;
  // Fixed wire cost per message (header serialization).
  Time per_msg_wire = 200;
  // If true, a node's messages leave its NIC one at a time.
  bool nic_serialize = true;
  // Maximum message size; the FM layer segments larger payloads.
  std::uint32_t mtu_bytes = 4096;

  // Unreliable-fabric model (inactive by default: faults.any() == false, in
  // which case no injector is allocated and every fault hook reduces to a
  // null-pointer test). See sim/fault.h for the plan and layering.
  FaultPlan faults;

  // A zero-cost network: turns every configuration into a single-address-
  // space machine. Used to study DPA as a pure cache/tiling optimization
  // (the paper's section 6 "currently investigating" direction).
  static NetParams zero() {
    NetParams p;
    p.send_overhead = 0;
    p.recv_overhead = 0;
    p.latency = 0;
    p.ns_per_byte = 0.0;
    p.per_msg_wire = 0;
    p.nic_serialize = false;
    return p;
  }
};

struct NetStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  void reset() { *this = NetStats{}; }
};

class Network {
 public:
  Network(Engine& engine, NetParams params, std::uint32_t num_nodes);

  // Injects a message at logical time `depart` (>= engine.now(), typically
  // engine.now() + the sender's accumulated charge). `on_deliver` runs at the
  // destination's arrival time; the receiving layer is responsible for
  // charging recv_overhead to the destination processor.
  //
  // Returns the arrival time.
  Time send(NodeId src, NodeId dst, std::uint32_t bytes, Time depart,
            Engine::EventFn on_deliver);

  // As send(), but the message dies on the wire: it pays NIC serialization
  // and counts in the stats (it was injected), yet nothing is delivered.
  // Used by the FM layer for fragments of a fault-dropped message.
  Time send_lost(NodeId src, NodeId dst, std::uint32_t bytes, Time depart);

  // The fault injector, or nullptr on a reliable (fault-free) network.
  FaultInjector* injector() { return injector_.get(); }
  const FaultInjector* injector() const { return injector_.get(); }

  // Called when a pause fault fires: hook(node, duration). Installed by
  // sim::Machine, which turns it into a busy task on the paused node.
  void set_pause_hook(std::function<void(NodeId, Time)> hook) {
    pause_hook_ = std::move(hook);
  }

  const NetParams& params() const { return params_; }
  const NetStats& stats() const { return stats_; }
  NetStats& stats() { return stats_; }
  std::uint32_t num_nodes() const { return std::uint32_t(nic_free_.size()); }

  // Time the wire occupies for a message of `bytes` payload.
  Time wire_time(std::uint32_t bytes) const {
    return params_.per_msg_wire + Time(double(bytes) * params_.ns_per_byte);
  }

  // Torus hop count between two nodes (0 on the crossbar).
  std::uint32_t hops(NodeId src, NodeId dst) const;

  // The torus grid dimensions chosen for this node count.
  void torus_dims(std::uint32_t* x, std::uint32_t* y, std::uint32_t* z) const;

  void set_trace(TraceSink* sink) { trace_ = sink; }

 private:
  Time inject(NodeId src, NodeId dst, std::uint32_t bytes, Time depart,
              bool deliverable, Engine::EventFn* on_deliver);

  Engine& engine_;
  NetParams params_;
  NetStats stats_;
  std::vector<Time> nic_free_;  // per-source NIC availability
  std::uint32_t dims_[3] = {1, 1, 1};
  TraceSink* trace_ = nullptr;
  std::unique_ptr<FaultInjector> injector_;  // null when fault-free
  std::function<void(NodeId, Time)> pause_hook_;
};

}  // namespace dpa::sim
