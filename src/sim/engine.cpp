#include "sim/engine.h"

#include <utility>

#include "support/assert.h"

namespace dpa::sim {

namespace {
constexpr std::size_t kArity = 4;
}  // namespace

void Engine::schedule_at(Time at, EventFn fn) {
  DPA_CHECK(at >= now_) << "event scheduled in the past: " << at << " < "
                        << now_;
  heap_.push_back(Event{at, next_seq_++, std::move(fn)});
  sift_up(heap_.size() - 1);
}

void Engine::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Engine::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + kArity < n ? first + kArity : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

bool Engine::step() {
  if (heap_.empty()) return false;
  // Pop the minimum before running it: the handler may schedule new events.
  Event ev = std::move(heap_.front());
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
  now_ = ev.at;
  ++events_processed_;
  if (event_limit_ != 0 && events_processed_ > event_limit_) {
    DPA_PANIC("event limit exceeded (" << event_limit_
                                       << "): livelocked simulation?");
  }
  ev.fn();
  return true;
}

std::uint64_t Engine::run() {
  const std::uint64_t before = events_processed_;
  while (step()) {
  }
  return events_processed_ - before;
}

}  // namespace dpa::sim
