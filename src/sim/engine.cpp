#include "sim/engine.h"

#include <utility>

#include "support/assert.h"

namespace dpa::sim {

void Engine::schedule_at(Time at, EventFn fn) {
  DPA_CHECK(at >= now_) << "event scheduled in the past: " << at << " < "
                        << now_;
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the function object must be moved out,
  // so copy the handle then pop.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ++events_processed_;
  if (event_limit_ != 0 && events_processed_ > event_limit_) {
    DPA_PANIC("event limit exceeded (" << event_limit_
                                       << "): livelocked simulation?");
  }
  ev.fn();
  return true;
}

std::uint64_t Engine::run() {
  const std::uint64_t before = events_processed_;
  while (step()) {
  }
  return events_processed_ - before;
}

}  // namespace dpa::sim
