#include "sim/network.h"

#include <algorithm>
#include <utility>

#include "support/assert.h"

namespace dpa::sim {

Network::Network(Engine& engine, NetParams params, std::uint32_t num_nodes)
    : engine_(engine), params_(params), nic_free_(num_nodes, 0) {
  DPA_CHECK(num_nodes > 0);
  if (params_.faults.any())
    injector_ = std::make_unique<FaultInjector>(params_.faults);
  // Near-cubic grid: grow dimensions round-robin until they cover all
  // nodes (8 -> 2x2x2, 64 -> 4x4x4, 12 -> 3x2x2).
  while (dims_[0] * dims_[1] * dims_[2] < num_nodes) {
    if (dims_[0] <= dims_[1] && dims_[0] <= dims_[2])
      ++dims_[0];
    else if (dims_[1] <= dims_[2])
      ++dims_[1];
    else
      ++dims_[2];
  }
}

void Network::torus_dims(std::uint32_t* x, std::uint32_t* y,
                         std::uint32_t* z) const {
  *x = dims_[0];
  *y = dims_[1];
  *z = dims_[2];
}

std::uint32_t Network::hops(NodeId src, NodeId dst) const {
  if (params_.topology == Topology::kCrossbar || src == dst) return 0;
  std::uint32_t total = 0;
  std::uint32_t a = src, b = dst;
  for (int d = 0; d < 3; ++d) {
    const std::uint32_t size = dims_[d];
    const std::uint32_t ca = a % size, cb = b % size;
    a /= size;
    b /= size;
    const std::uint32_t direct = ca > cb ? ca - cb : cb - ca;
    total += std::min(direct, size - direct);  // wrap-around links
  }
  return total;
}

Time Network::send(NodeId src, NodeId dst, std::uint32_t bytes, Time depart,
                   Engine::EventFn on_deliver) {
  return inject(src, dst, bytes, depart, /*deliverable=*/true, &on_deliver);
}

Time Network::send_lost(NodeId src, NodeId dst, std::uint32_t bytes,
                        Time depart) {
  return inject(src, dst, bytes, depart, /*deliverable=*/false, nullptr);
}

Time Network::inject(NodeId src, NodeId dst, std::uint32_t bytes, Time depart,
                     bool deliverable, Engine::EventFn* on_deliver) {
  DPA_CHECK(src < nic_free_.size() && dst < nic_free_.size())
      << "bad node id " << src << "->" << dst;
  DPA_CHECK(bytes <= params_.mtu_bytes)
      << "message exceeds MTU (" << bytes << " > " << params_.mtu_bytes
      << "); segment in the FM layer";
  DPA_CHECK(depart >= engine_.now());

  ++stats_.messages;
  stats_.bytes += bytes;

  const Time wire = wire_time(bytes);
  Time at = depart;
  if (params_.nic_serialize) {
    at = std::max(at, nic_free_[src]);
    nic_free_[src] = at + wire;
  }
  Time arrive =
      at + params_.latency + Time(hops(src, dst)) * params_.per_hop + wire;
  if (injector_ != nullptr && deliverable) {
    // Timing faults: latency spikes and reorder jitter push the arrival
    // back; a pause fault stalls the destination node around arrival time
    // (the hook posts a busy task there).
    arrive += injector_->roll_frag_delay(src, dst);
    if (pause_hook_ && injector_->roll_pause(src, dst))
      pause_hook_(dst, injector_->plan().pause_time);
  }
  if (trace_ != nullptr) trace_->message(src, dst, bytes, at, arrive);
  if (deliverable) engine_.schedule_at(arrive, std::move(*on_deliver));
  return arrive;
}

}  // namespace dpa::sim
