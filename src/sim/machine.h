// Simulated multiprocessor: per-node sequential processors over a shared
// LogGP network.
//
// Each node executes posted tasks one at a time (a T3D node is a single
// Alpha). A task charges its cost to the node's Cpu context as it runs; the
// node is busy for exactly the charged duration, and everything it sends
// departs at its logical time within the task. Idle time falls out as
// phase-elapsed minus busy time, which is exactly the "idle" component in the
// paper's breakdown figures.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/engine.h"
#include "sim/network.h"
#include "sim/time.h"
#include "sim/trace.h"
#include "support/inline_fn.h"

namespace dpa::sim {

// Work attribution, the per-task execution context, node tasks, and node
// stats are backend-neutral vocabulary shared with the native backend; they
// live in exec/types.h and keep their historical sim:: names here.
using exec::kNumWorkKinds;
using exec::Work;
using Cpu = exec::Cpu;
using Task = exec::Task;
using NodeStats = exec::NodeStats;

class NodeProc {
 public:
  NodeProc(Engine& engine, NodeId id) : engine_(engine), id_(id) {}

  NodeProc(const NodeProc&) = delete;
  NodeProc& operator=(const NodeProc&) = delete;

  // Enqueues a task. Tasks run serially in post order at the node's next
  // free instant.
  void post(Task task);

  NodeId id() const { return id_; }
  void set_trace(TraceSink* sink) { trace_ = sink; }
  const NodeStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }
  Time busy_until() const { return busy_until_; }
  std::size_t backlog() const { return pending_.size(); }

 private:
  void drain();

  Engine& engine_;
  NodeId id_;
  std::deque<Task> pending_;
  bool drain_scheduled_ = false;
  Time busy_until_ = 0;
  NodeStats stats_;
  TraceSink* trace_ = nullptr;
};

// An N-node machine: engine + network + processors.
class Machine {
 public:
  Machine(std::uint32_t num_nodes, NetParams params);

  Engine& engine() { return engine_; }
  Network& network() { return network_; }
  const Network& network() const { return network_; }
  NodeProc& node(NodeId id);
  const NodeProc& node(NodeId id) const;
  std::uint32_t num_nodes() const { return std::uint32_t(nodes_.size()); }

  // Marks the start of a timed phase: zeroes node/network stats and records
  // the phase origin.
  void begin_phase();

  // Runs the engine dry and returns phase elapsed time (max over nodes of
  // their finish time, relative to phase start).
  Time run_phase();

  Time phase_start() const { return phase_start_; }

  // Per-node idle time for the last completed phase: elapsed - busy.
  Time idle_time(NodeId id, Time phase_elapsed) const;

  // Attaches a trace sink observing all task executions and messages
  // (nullptr detaches).
  void set_trace(TraceSink* sink);

 private:
  Engine engine_;
  Network network_;
  std::vector<std::unique_ptr<NodeProc>> nodes_;
  Time phase_start_ = 0;
};

}  // namespace dpa::sim
