// Discrete-event engine.
//
// A 4-ary implicit heap of (time, sequence) ordered events. The sequence
// number makes simultaneous events fire in schedule order, which makes every
// simulation in this repository bit-for-bit deterministic (property-tested).
//
// Host-performance notes (this queue is the hottest structure in the tree):
//   * 4-ary beats binary here: sift-down does half the levels, and the four
//     children share a cache line's worth of (time, seq) keys.
//   * EventFn is an InlineFn, so scheduling a closure does not heap-allocate
//     unless the capture exceeds the inline buffer (none in-tree does).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "support/inline_fn.h"

namespace dpa::sim {

class Engine {
 public:
  // Events capture at most a pointer plus a few words in-tree; 64 bytes
  // covers the largest (FM fragment delivery: Packet + train bookkeeping).
  using EventFn = InlineFn<void(), 64>;

  // Schedules `fn` at absolute time `at` (must be >= now()).
  void schedule_at(Time at, EventFn fn);

  // Schedules `fn` `delay` ns after now().
  void schedule_after(Time delay, EventFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  // Runs events until the queue drains. Returns the number processed.
  std::uint64_t run();

  // Runs at most one event; returns false if the queue was empty.
  bool step();

  Time now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::uint64_t events_processed() const { return events_processed_; }

  // Aborts the simulation if it exceeds this many events (guards against
  // livelock bugs in schedulers; 0 disables).
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    EventFn fn;
  };

  // a fires strictly before b.
  static bool earlier(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Event> heap_;  // min-heap, 4 children per node
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t event_limit_ = 0;
};

}  // namespace dpa::sim
