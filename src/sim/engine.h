// Discrete-event engine.
//
// A binary heap of (time, sequence) ordered events. The sequence number makes
// simultaneous events fire in schedule order, which makes every simulation in
// this repository bit-for-bit deterministic (property-tested).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace dpa::sim {

class Engine {
 public:
  using EventFn = std::function<void()>;

  // Schedules `fn` at absolute time `at` (must be >= now()).
  void schedule_at(Time at, EventFn fn);

  // Schedules `fn` `delay` ns after now().
  void schedule_after(Time delay, EventFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  // Runs events until the queue drains. Returns the number processed.
  std::uint64_t run();

  // Runs at most one event; returns false if the queue was empty.
  bool step();

  Time now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return events_processed_; }

  // Aborts the simulation if it exceeds this many events (guards against
  // livelock bugs in schedulers; 0 disables).
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t event_limit_ = 0;
};

}  // namespace dpa::sim
