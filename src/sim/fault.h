// Deterministic fault injection for the network model.
//
// A FaultPlan describes how an unreliable interconnect misbehaves: messages
// are dropped or duplicated, fragments see latency spikes and reordering
// jitter, and destination nodes take transient pauses (a GC stall, an OS
// scheduling hiccup). Every decision is drawn from one seeded generator in
// simulation event order, so a (plan, seed, workload) triple replays
// bit-identically — chaos runs are as reproducible as fault-free ones.
//
// Layering: the FaultInjector is owned by sim::Network (constructed when the
// NetParams carry an active plan). Timing faults (delay spikes, reorder
// jitter, pauses) apply per wire fragment inside Network::send; whole-message
// faults (drop, duplicate) are decided once per logical message by the FM
// layer, which consults the network's injector — dropping one fragment of a
// segmented message would otherwise leave the receiver waiting on a train
// that can never complete, which is not how lossy fabrics lose packets.
//
// The runtime survives all of this with sequence numbers + ack/retry (see
// runtime/engine.h); the invariant tested by chaos_test.cpp is that faults
// cost time, never correctness.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/time.h"
#include "support/rng.h"

namespace dpa::sim {

struct FaultPlan {
  // Whole-message faults (decided once per logical message, pre-MTU
  // segmentation; a duplicated message is re-sent as a complete train).
  double drop = 0.0;  // message silently lost after paying send cost
  double dup = 0.0;   // message delivered twice (distinct trains)

  // Per-fragment timing faults.
  double reorder = 0.0;        // extra uniform jitter in [0, reorder_window)
  Time reorder_window = 20'000;
  double delay = 0.0;          // fixed latency spike of delay_spike
  Time delay_spike = 100'000;

  // Transient destination-node pauses (charged as runtime time, serializing
  // behind / ahead of the node's task queue).
  double pause = 0.0;
  Time pause_time = 200'000;

  // Scale each probability by a per-link factor in [0.5, 1.5), derived from
  // the seed and the (src, dst) pair: some links are lossier than others.
  bool link_jitter = false;

  std::uint64_t seed = 0x0fa117ull;

  bool any() const {
    return drop > 0 || dup > 0 || reorder > 0 || delay > 0 || pause > 0;
  }

  // Parses a spec string; dies with a diagnostic on malformed input.
  //   drop=P,dup=P,reorder=P[:WINDOW_NS],delay=P[:SPIKE_NS],
  //   pause=P[:PAUSE_NS],jitter,seed=N
  // plus the preset "chaos" (moderate everything). Items are
  // comma-separated and later items override earlier ones.
  static FaultPlan parse(std::string_view spec);

  std::string describe() const;
};

struct FaultStats {
  std::uint64_t dropped_msgs = 0;
  std::uint64_t dup_msgs = 0;
  std::uint64_t delayed_frags = 0;  // spike and/or jitter applied
  std::uint64_t pauses = 0;

  void reset() { *this = FaultStats{}; }
};

// Draws fault decisions in simulation event order. One instance per Network;
// never consulted (and never allocated) on fault-free runs.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  // Whole-message decisions (FM layer, once per logical message).
  bool roll_msg_drop(std::uint32_t src, std::uint32_t dst);
  bool roll_msg_dup(std::uint32_t src, std::uint32_t dst);

  // Per-fragment extra wire delay (0 on the happy path).
  Time roll_frag_delay(std::uint32_t src, std::uint32_t dst);

  // Transient pause of the destination node (duration = plan().pause_time).
  bool roll_pause(std::uint32_t src, std::uint32_t dst);

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

 private:
  // Per-link probability scaling (1.0 unless plan_.link_jitter).
  double link_p(double base, std::uint32_t src, std::uint32_t dst) const;

  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace dpa::sim
