// Execution tracing: an optional sink observing every task execution and
// message flight. Used for debugging schedules and by tests that assert
// interleaving properties; Timeline is a ready-made sink that records
// everything and renders a readable log.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace dpa::sim {

using NodeId = std::uint32_t;

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // A node task ran from `start` to `end` (charged time).
  virtual void task(NodeId node, Time start, Time end) = 0;

  // A message departed src at `depart` and arrives at dst at `arrive`.
  virtual void message(NodeId src, NodeId dst, std::uint32_t bytes,
                       Time depart, Time arrive) = 0;
};

// Records everything; render with dump().
class Timeline final : public TraceSink {
 public:
  struct TaskEvent {
    NodeId node;
    Time start, end;
  };
  struct MsgEvent {
    NodeId src, dst;
    std::uint32_t bytes;
    Time depart, arrive;
  };

  void task(NodeId node, Time start, Time end) override {
    tasks_.push_back({node, start, end});
  }
  void message(NodeId src, NodeId dst, std::uint32_t bytes, Time depart,
               Time arrive) override {
    msgs_.push_back({src, dst, bytes, depart, arrive});
  }

  const std::vector<TaskEvent>& tasks() const { return tasks_; }
  const std::vector<MsgEvent>& messages() const { return msgs_; }

  // Total busy time recorded for one node.
  Time node_busy(NodeId node) const;

  // Merged, time-ordered log (up to `limit` lines).
  std::string dump(std::size_t limit = 100) const;

  void clear() {
    tasks_.clear();
    msgs_.clear();
  }

 private:
  std::vector<TaskEvent> tasks_;
  std::vector<MsgEvent> msgs_;
};

}  // namespace dpa::sim
