#include "sim/fault.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "support/assert.h"

namespace dpa::sim {

namespace {

// One item of the spec: "key", "key=prob" or "key=prob:ns".
struct Item {
  std::string key;
  double prob = 0.0;
  Time ns = 0;
  bool has_prob = false;
  bool has_ns = false;
};

Item parse_item(std::string_view text) {
  Item item;
  const auto eq = text.find('=');
  if (eq == std::string_view::npos) {
    item.key = std::string(text);
    return item;
  }
  item.key = std::string(text.substr(0, eq));
  std::string rest(text.substr(eq + 1));
  std::string ns_part;
  const auto colon = rest.find(':');
  if (colon != std::string::npos) {
    ns_part = rest.substr(colon + 1);
    rest.resize(colon);
  }
  char* end = nullptr;
  item.prob = std::strtod(rest.c_str(), &end);
  DPA_CHECK(end != nullptr && *end == '\0' && !rest.empty())
      << "faults: bad number '" << rest << "' in item '" << item.key << "'";
  item.has_prob = true;
  if (!ns_part.empty()) {
    item.ns = Time(std::strtoll(ns_part.c_str(), &end, 10));
    DPA_CHECK(end != nullptr && *end == '\0')
        << "faults: bad duration '" << ns_part << "' in item '" << item.key
        << "'";
    DPA_CHECK(item.ns >= 0) << "faults: negative duration in '" << item.key
                            << "'";
    item.has_ns = true;
  }
  return item;
}

void check_prob(const Item& item) {
  DPA_CHECK(item.has_prob) << "faults: '" << item.key << "' needs =<prob>";
  DPA_CHECK(item.prob >= 0.0 && item.prob <= 1.0)
      << "faults: probability out of [0,1] in '" << item.key << "'";
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    auto comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view raw = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (raw.empty()) continue;
    const Item item = parse_item(raw);
    if (item.key == "chaos") {
      // Moderate everything: enough churn to exercise every recovery path
      // without drowning the run in retransmissions.
      plan.drop = 0.02;
      plan.dup = 0.01;
      plan.reorder = 0.05;
      plan.delay = 0.02;
      plan.pause = 0.005;
    } else if (item.key == "jitter") {
      plan.link_jitter = true;
    } else if (item.key == "seed") {
      DPA_CHECK(item.has_prob) << "faults: 'seed' needs =<value>";
      plan.seed = std::uint64_t(item.prob);
    } else if (item.key == "drop") {
      check_prob(item);
      plan.drop = item.prob;
    } else if (item.key == "dup") {
      check_prob(item);
      plan.dup = item.prob;
    } else if (item.key == "reorder") {
      check_prob(item);
      plan.reorder = item.prob;
      if (item.has_ns) plan.reorder_window = item.ns;
    } else if (item.key == "delay") {
      check_prob(item);
      plan.delay = item.prob;
      if (item.has_ns) plan.delay_spike = item.ns;
    } else if (item.key == "pause") {
      check_prob(item);
      plan.pause = item.prob;
      if (item.has_ns) plan.pause_time = item.ns;
    } else {
      DPA_PANIC("faults: unknown spec item '" + item.key +
                "' (want chaos|drop|dup|reorder|delay|pause|jitter|seed)");
    }
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "drop=" << drop << " dup=" << dup << " reorder=" << reorder << ":"
     << reorder_window << "ns delay=" << delay << ":" << delay_spike
     << "ns pause=" << pause << ":" << pause_time << "ns jitter="
     << (link_jitter ? "on" : "off") << " seed=" << seed;
  return os.str();
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), rng_(plan.seed) {}

double FaultInjector::link_p(double base, std::uint32_t src,
                             std::uint32_t dst) const {
  if (!plan_.link_jitter || base <= 0.0) return base;
  // A fixed per-link factor in [0.5, 1.5): stable across the run, distinct
  // per (seed, src, dst). Drawn from SplitMix64 so it consumes no state from
  // the decision stream.
  SplitMix64 mix(plan_.seed ^
                 ((std::uint64_t(src) << 32) | (std::uint64_t(dst) + 1)));
  const double factor =
      0.5 + double(mix.next() >> 11) / double(1ull << 53);
  return std::min(1.0, base * factor);
}

bool FaultInjector::roll_msg_drop(std::uint32_t src, std::uint32_t dst) {
  if (!rng_.chance(link_p(plan_.drop, src, dst))) return false;
  ++stats_.dropped_msgs;
  return true;
}

bool FaultInjector::roll_msg_dup(std::uint32_t src, std::uint32_t dst) {
  if (!rng_.chance(link_p(plan_.dup, src, dst))) return false;
  ++stats_.dup_msgs;
  return true;
}

Time FaultInjector::roll_frag_delay(std::uint32_t src, std::uint32_t dst) {
  Time extra = 0;
  if (rng_.chance(link_p(plan_.delay, src, dst))) extra += plan_.delay_spike;
  if (rng_.chance(link_p(plan_.reorder, src, dst)) &&
      plan_.reorder_window > 0)
    extra += Time(rng_.next_below(std::uint64_t(plan_.reorder_window)));
  if (extra > 0) ++stats_.delayed_frags;
  return extra;
}

bool FaultInjector::roll_pause(std::uint32_t src, std::uint32_t dst) {
  if (!rng_.chance(link_p(plan_.pause, src, dst))) return false;
  ++stats_.pauses;
  return true;
}

}  // namespace dpa::sim
