// Active message layer modeled on Illinois Fast Messages (FM), the messaging
// substrate the paper used on the Cray T3D.
//
// Semantics: `send` injects a message addressed to a handler on the
// destination node; on arrival the destination processor is charged the
// receive overhead and the handler runs as a task on that node. Payloads
// larger than the network MTU are segmented into fragments (each paying
// per-message costs) and the handler fires when the last fragment lands —
// this is what makes "aggregation wins until the MTU" measurable.
//
// Payload representation: the simulation shares one host address space, so
// payloads travel as shared_ptr<void> plus a declared byte size used for
// costing. Marshalling cost is charged explicitly by the runtime layer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/types.h"
#include "sim/machine.h"
#include "sim/network.h"
#include "support/flat_map.h"

namespace dpa::fm {

using sim::NodeId;
using sim::Time;

// Packets, handlers, and messaging stats are the backend-neutral active-
// message vocabulary (exec/types.h); the FM layer is the simulator-side
// implementation of it. Handler is an InlineFn, so registering and invoking
// a handler never touches std::function's type-erasure allocations.
using exec::HandlerId;
using exec::Packet;
using Handler = exec::Handler;
using FmNodeStats = exec::MsgStats;

class FmLayer {
 public:
  explicit FmLayer(sim::Machine& machine);

  FmLayer(const FmLayer&) = delete;
  FmLayer& operator=(const FmLayer&) = delete;

  // Registers a handler (same id on every node). Must happen before sends.
  HandlerId register_handler(std::string name, Handler fn);

  // Sends from node `src`, called from inside a task running on `src`.
  // Charges send overhead (Work::kComm) per fragment to `cpu`; the message
  // departs at the sender's logical time.
  void send(sim::Cpu& cpu, NodeId src, NodeId dst, HandlerId handler,
            std::shared_ptr<void> data, std::uint32_t bytes);

  const FmNodeStats& node_stats(NodeId id) const { return stats_[id]; }
  FmNodeStats aggregate_stats() const;
  void reset_stats();

  const std::string& handler_name(HandlerId id) const {
    return handlers_[id].name;
  }
  sim::Machine& machine() { return machine_; }

  // Targeted fault injection (deterministic, for tests): silently drop the
  // `nth` message sent from now on (1 = the very next). Unlike the
  // probabilistic FaultPlan on the network, this drops one specific message,
  // which is what tests of unrecovered loss (no retry protocol configured)
  // need: the phase must surface as incomplete with diagnostics.
  void drop_nth_message(std::uint64_t nth) { drop_at_ = sends_seen_ + nth; }
  std::uint64_t dropped_messages() const { return dropped_; }

 private:
  struct Entry {
    std::string name;
    Handler fn;
  };

  // One fragment train = one logical message on the wire. Whole-message
  // faults (drop/dup) apply to trains: a duplicated message is re-sent as a
  // complete second train with its own id, and the handler fires once per
  // completed train (so the layer above sees a genuine duplicate delivery).
  void send_train(sim::Cpu* cpu, sim::Time depart, const Packet& packet,
                  std::uint32_t nfrags, bool lost);
  void deliver(const Packet& packet, std::uint64_t train,
               std::uint32_t nfrags, std::uint32_t frag_bytes);

  sim::Machine& machine_;
  std::vector<Entry> handlers_;
  std::vector<FmNodeStats> stats_;
  std::uint64_t sends_seen_ = 0;
  std::uint64_t drop_at_ = 0;  // 0 = disabled
  std::uint64_t dropped_ = 0;
  std::uint64_t next_train_ = 0;
  // Fragments received per incomplete multi-fragment train. With timing
  // faults fragments may arrive out of order, so completion is by count,
  // not by which fragment was sent last.
  FlatMap<std::uint64_t, std::uint32_t> partial_;
};

}  // namespace dpa::fm
