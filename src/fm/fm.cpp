#include "fm/fm.h"

#include <algorithm>
#include <utility>

#include "support/assert.h"

namespace dpa::fm {

FmLayer::FmLayer(sim::Machine& machine)
    : machine_(machine), stats_(machine.num_nodes()) {}

HandlerId FmLayer::register_handler(std::string name, Handler fn) {
  DPA_CHECK(handlers_.size() < 0xffff) << "handler table full";
  handlers_.push_back(Entry{std::move(name), std::move(fn)});
  return HandlerId(handlers_.size() - 1);
}

void FmLayer::send(sim::Cpu& cpu, NodeId src, NodeId dst, HandlerId handler,
                   std::shared_ptr<void> data, std::uint32_t bytes) {
  DPA_CHECK(handler < handlers_.size()) << "unregistered handler " << handler;
  DPA_CHECK(src < machine_.num_nodes() && dst < machine_.num_nodes());

  auto& net = machine_.network();
  const std::uint32_t mtu = net.params().mtu_bytes;
  const std::uint32_t nfrags = bytes == 0 ? 1 : (bytes + mtu - 1) / mtu;

  auto& st = stats_[src];
  ++st.msgs_sent;
  st.frags_sent += nfrags;
  st.bytes_sent += bytes;

  ++sends_seen_;
  bool lost = false;
  if (drop_at_ != 0 && sends_seen_ == drop_at_) {
    // Targeted fault injection: the message vanishes after paying the send
    // cost and occupying the wire.
    ++dropped_;
    lost = true;
  }

  Packet packet{src, dst, handler, std::move(data), bytes};

  auto* injector = net.injector();
  if (injector != nullptr && !lost && injector->roll_msg_drop(src, dst)) {
    ++dropped_;
    lost = true;
  }
  send_train(&cpu, cpu.logical_now(), packet, nfrags, lost);
  if (injector != nullptr && !lost && injector->roll_msg_dup(src, dst)) {
    // The fabric duplicated the message: the copy occupies the NIC and wire
    // but costs the sending processor nothing (it never re-entered software).
    send_train(nullptr, cpu.logical_now(), packet, nfrags, /*lost=*/false);
  }
}

void FmLayer::send_train(sim::Cpu* cpu, sim::Time depart, const Packet& packet,
                         std::uint32_t nfrags, bool lost) {
  auto& net = machine_.network();
  const std::uint32_t mtu = net.params().mtu_bytes;
  const std::uint64_t train = ++next_train_;
  std::uint32_t remaining = packet.bytes;
  for (std::uint32_t f = 0; f < nfrags; ++f) {
    const std::uint32_t frag_bytes = std::min(remaining, mtu);
    remaining -= frag_bytes;
    // Per-fragment software send overhead on the source processor.
    if (cpu != nullptr) {
      cpu->charge(net.params().send_overhead, sim::Work::kComm);
      depart = cpu->logical_now();
    }
    if (lost) {
      net.send_lost(packet.src, packet.dst, frag_bytes, depart);
      continue;
    }
    Packet copy = packet;  // shared_ptr copy; payload itself is shared
    net.send(packet.src, packet.dst, frag_bytes, depart,
             [this, copy = std::move(copy), train, nfrags,
              frag_bytes]() mutable { deliver(copy, train, nfrags, frag_bytes); });
  }
}

void FmLayer::deliver(const Packet& packet, std::uint64_t train,
                      std::uint32_t nfrags, std::uint32_t frag_bytes) {
  auto& node = machine_.node(packet.dst);
  auto& st = stats_[packet.dst];
  st.bytes_recv += frag_bytes;
  bool complete = true;
  if (nfrags > 1) {
    const std::uint32_t got = ++partial_[train];
    complete = (got == nfrags);
    if (complete) partial_.erase(train);
  }
  if (complete) ++st.msgs_recv;

  const Time recv_overhead = machine_.network().params().recv_overhead;
  const Handler* fn = complete ? &handlers_[packet.handler].fn : nullptr;
  node.post([recv_overhead, fn, packet](sim::Cpu& cpu) {
    cpu.charge(recv_overhead, sim::Work::kComm);
    if (fn != nullptr) (*fn)(cpu, packet);
  });
}

FmNodeStats FmLayer::aggregate_stats() const {
  FmNodeStats total;
  for (const auto& s : stats_) {
    total.msgs_sent += s.msgs_sent;
    total.frags_sent += s.frags_sent;
    total.msgs_recv += s.msgs_recv;
    total.bytes_sent += s.bytes_sent;
    total.bytes_recv += s.bytes_recv;
  }
  return total;
}

void FmLayer::reset_stats() {
  for (auto& s : stats_) s.reset();
}

}  // namespace dpa::fm
