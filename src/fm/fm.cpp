#include "fm/fm.h"

#include <algorithm>
#include <utility>

#include "support/assert.h"

namespace dpa::fm {

FmLayer::FmLayer(sim::Machine& machine)
    : machine_(machine), stats_(machine.num_nodes()) {}

HandlerId FmLayer::register_handler(std::string name, Handler fn) {
  DPA_CHECK(handlers_.size() < 0xffff) << "handler table full";
  handlers_.push_back(Entry{std::move(name), std::move(fn)});
  return HandlerId(handlers_.size() - 1);
}

void FmLayer::send(sim::Cpu& cpu, NodeId src, NodeId dst, HandlerId handler,
                   std::shared_ptr<void> data, std::uint32_t bytes) {
  DPA_CHECK(handler < handlers_.size()) << "unregistered handler " << handler;
  DPA_CHECK(src < machine_.num_nodes() && dst < machine_.num_nodes());

  auto& net = machine_.network();
  const std::uint32_t mtu = net.params().mtu_bytes;
  const std::uint32_t nfrags = bytes == 0 ? 1 : (bytes + mtu - 1) / mtu;

  auto& st = stats_[src];
  ++st.msgs_sent;
  st.frags_sent += nfrags;
  st.bytes_sent += bytes;

  ++sends_seen_;
  if (drop_at_ != 0 && sends_seen_ == drop_at_) {
    // Fault injection: the message vanishes after paying the send cost.
    cpu.charge(net.params().send_overhead * sim::Time(nfrags),
               sim::Work::kComm);
    ++dropped_;
    return;
  }

  Packet packet{src, dst, handler, std::move(data), bytes};

  std::uint32_t remaining = bytes;
  for (std::uint32_t f = 0; f < nfrags; ++f) {
    const std::uint32_t frag_bytes = std::min(remaining, mtu);
    remaining -= frag_bytes;
    // Per-fragment software send overhead on the source processor.
    cpu.charge(net.params().send_overhead, sim::Work::kComm);
    const bool last = (f + 1 == nfrags);
    // NIC serialization (inside Network::send) keeps fragments ordered, so
    // the handler fires with the final fragment.
    Packet copy = packet;  // shared_ptr copy; payload itself is shared
    net.send(src, dst, frag_bytes, cpu.logical_now(),
             [this, copy = std::move(copy), last, frag_bytes]() mutable {
               deliver(copy, last, frag_bytes);
             });
  }
}

void FmLayer::deliver(const Packet& packet, bool is_last_fragment,
                      std::uint32_t frag_bytes) {
  auto& node = machine_.node(packet.dst);
  auto& st = stats_[packet.dst];
  st.bytes_recv += frag_bytes;
  if (is_last_fragment) ++st.msgs_recv;

  const Time recv_overhead = machine_.network().params().recv_overhead;
  const Handler* fn = is_last_fragment ? &handlers_[packet.handler].fn
                                       : nullptr;
  node.post([recv_overhead, fn, packet](sim::Cpu& cpu) {
    cpu.charge(recv_overhead, sim::Work::kComm);
    if (fn != nullptr) (*fn)(cpu, packet);
  });
}

FmNodeStats FmLayer::aggregate_stats() const {
  FmNodeStats total;
  for (const auto& s : stats_) {
    total.msgs_sent += s.msgs_sent;
    total.frags_sent += s.frags_sent;
    total.msgs_recv += s.msgs_recv;
    total.bytes_sent += s.bytes_sent;
    total.bytes_recv += s.bytes_recv;
  }
  return total;
}

void FmLayer::reset_stats() {
  for (auto& s : stats_) s.reset();
}

}  // namespace dpa::fm
