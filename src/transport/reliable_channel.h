// ReliableChannel: exactly-once delivery over any framed, possibly lossy
// Channel — the transport::Reliable protocol core wired up as a decorator.
//
// The same state machine the runtime engines drive through the simulator's
// timer wheel (seq/ack/backoff-retransmit, receiver dedup) runs here
// against a real wire: the decorator stamps each outgoing payload with a
// per-sender sequence number, tracks it until the matching ack frame comes
// back, and retransmits past-deadline messages when the caller pumps the
// clock forward. Receivers ack every sequenced copy (duplicates included —
// the earlier ack may itself be lost) and pass exactly the first copy of
// each (src, seq) up to the application.
//
// Clocking is explicit: pump(now) advances the retransmit scan to `now`
// (any monotonic nanosecond count — tests drive it with virtual time,
// which keeps chaos runs deterministic). The decorator covers all nodes
// sharing the inner channel, one protocol instance per sending node, so
// sequence spaces are per sender exactly as in the engine path.
//
// Acks travel as control frames: a payload tagged kAckTag whose 8 bytes
// are the acked seq (little-endian), flushed eagerly so ack latency does
// not depend on the receiver's batching.
#pragma once

#include <cstdint>
#include <vector>

#include "transport/channel.h"
#include "transport/reliable.h"

namespace dpa::transport {

// Reserved payload tag for ack control messages; application tags must
// stay below it.
constexpr std::uint16_t kAckTag = 0xffff;

class ReliableChannel final : public Channel {
 public:
  struct Stats {
    std::uint64_t retries = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t acks_recv = 0;
    std::uint64_t dup_msgs_dropped = 0;
    std::uint64_t gave_up = 0;  // messages abandoned after max_retries
  };

  // `inner` must be framed (DPA_CHECKed); the decorator installs itself as
  // the inner delivery callback. `now` starts at 0; pump() advances it.
  ReliableChannel(Channel& inner, std::uint32_t num_nodes,
                  const RetryPolicy& policy);

  const char* name() const override { return "reliable"; }
  ChannelCaps caps() const override {
    ChannelCaps c = inner_.caps();
    c.lossless = true;  // that is the whole point
    return c;
  }

  // The application's sink (sequenced duplicates and ack frames are
  // filtered out before it).
  void set_deliver(FrameDeliverFn fn) override { deliver_ = std::move(fn); }

  // Stamps a sequence number (cross-node sends only) and tracks the wire
  // bytes for retransmission before forwarding.
  void send_train(exec::Cpu* cpu, NodeId src, NodeId dst,
                  TrainItem item) override;

  bool flush(exec::Cpu* cpu, NodeId src) override {
    return inner_.flush(cpu, src);
  }
  std::size_t poll() override { return inner_.poll(); }
  ChannelStatus status() const override { return inner_.status(); }

  // Installs one give-up handler across every sending node's protocol
  // instance (the callbacks run with the pending entry already erased).
  // Unset, a message that exhausts max_retries aborts the process.
  void set_on_peer_dead(Reliable::PeerDeadFn fn) {
    for (Reliable& r : rel_) r.set_on_peer_dead(fn);
  }
  std::uint64_t trains_sent(NodeId src) const override {
    return inner_.trains_sent(src);
  }

  // Advances the protocol clock to `now` and retransmits every in-flight
  // message whose deadline passed; returns retransmissions issued.
  std::size_t pump(Time now);

  std::uint64_t in_flight() const {
    std::uint64_t n = 0;
    for (const Reliable& r : rel_) n += r.in_flight();
    return n;
  }
  const Stats& stats() const { return stats_; }

 private:
  struct Deadline {
    NodeId src = 0;
    std::uint64_t seq = 0;
    Time at = 0;
  };

  void on_frame(const FrameHeader& h, const FramePayload& p);

  Channel& inner_;
  FrameDeliverFn deliver_;
  std::vector<Reliable> rel_;  // one protocol instance per sending node
  std::vector<Deadline> timers_;
  Time now_ = 0;
  Stats stats_;
};

}  // namespace dpa::transport
