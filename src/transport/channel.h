// Channel: the transport abstraction beneath exec::Backend.
//
// A Channel moves *trains* — per-(src, dst) batches of messages — between
// nodes. The backends own the scheduling (mailboxes, workers, the event
// heap); the channel owns how a buffered train becomes a delivery: an
// in-memory mailbox hand-off (InProcChannel), a modeled LogGP injection
// (SimChannel), or encoded frames over a byte stream (PipeChannel, and the
// future multi-process socket transport). The reliability protocol
// (transport::Reliable) layers over any of them.
//
// Layering:
//
//   apps -> runtime engines -> exec::Backend -> transport::Channel
//                                                |-- InProcChannel (native)
//                                                |-- SimChannel    (sim)
//                                                `-- PipeChannel   (socketpair)
//
// A message enters as a TrainItem carrying up to three representations of
// itself — the in-memory Packet (modeled transports), the delivery Task
// (in-process transports), and the marshalled wire bytes (framed
// transports). Each channel consumes the representation its fabric needs;
// the unused ones stay empty and cost nothing. This is what lets the
// native mailbox hand-off and a socket write be "the same train" without
// forcing closure-carrying payloads through a byte codec.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "exec/types.h"
#include "transport/frame.h"

namespace dpa::transport {

using exec::NodeId;
using exec::Time;

// What a channel's fabric guarantees. The reliability decorator engages
// exactly when lossless is absent; FIFO loss determines whether receivers
// need reorder-tolerant staging (the runtime's (src, seq)-sorted commit
// already is).
struct ChannelCaps {
  bool lossless = true;  // delivery guaranteed without transport::Reliable
  bool fifo = true;      // per-(src, dst) order preserved
  bool framed = false;   // messages cross a byte boundary via the codec
  bool buffered = false; // per-destination trains accumulate until flush
};

// Liveness of the peer on the other end of a channel. In-process fabrics
// are always kOk; a byte-stream channel whose counterpart process died
// (EPIPE/ECONNRESET on write, EOF on read) reports kPeerDown instead of
// aborting, so a coordinator can detect the loss, name the dead peer, and
// fail the phase cleanly. Once kPeerDown, a channel stays down: sends are
// silently discarded and poll() makes no further progress.
enum class ChannelStatus : std::uint8_t { kOk, kPeerDown };

// One message entering a channel. See the header comment for why it
// carries multiple representations.
struct TrainItem {
  exec::Packet packet;             // in-memory form (SimChannel)
  exec::Task task;                 // delivery closure (InProcChannel)
  std::uint16_t tag = 0;           // framed channels: payload tag
  std::uint64_t seq = 0;           // reliability seq (0 = unsequenced)
  std::vector<std::uint8_t> wire;  // framed channels: marshalled payload
};

// Delivery callback for framed channels: one decoded payload, with the
// frame header that carried it (routing + epoch).
using FrameDeliverFn =
    std::function<void(const FrameHeader&, const FramePayload&)>;

class Channel {
 public:
  virtual ~Channel() = default;

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  virtual const char* name() const = 0;
  virtual ChannelCaps caps() const = 0;

  // Appends one message to src's outbound train for dst. Buffered channels
  // hand the train off when it reaches their depth limit or at flush();
  // unbuffered channels forward immediately. `cpu` is the sending task's
  // execution context — modeled channels charge send overhead to it,
  // wall-clock channels ignore it (and accept null).
  virtual void send_train(exec::Cpu* cpu, NodeId src, NodeId dst,
                          TrainItem item) = 0;

  // Pushes src's buffered trains to their destinations; returns true if
  // anything departed. No-op (false) on unbuffered channels.
  virtual bool flush(exec::Cpu* cpu, NodeId src) = 0;

  // Framed channels: drain arrived frames into the delivery callback;
  // returns payloads delivered. Synchronous channels deliver inside
  // send_train/flush and return 0 here.
  virtual std::size_t poll() { return 0; }

  // Framed channels: installs the delivery callback (transport::Reliable
  // interposes here). Panics on channels that deliver synchronously.
  virtual void set_deliver(FrameDeliverFn fn);

  // Peer liveness. poll() surfaces death passively: it returns 0 forever
  // once the peer is gone, and this accessor says why.
  virtual ChannelStatus status() const { return ChannelStatus::kOk; }

  // Trains handed off by src since construction / the last stats reset.
  virtual std::uint64_t trains_sent(NodeId src) const {
    (void)src;
    return 0;
  }

 protected:
  Channel() = default;
};

}  // namespace dpa::transport
