#include "transport/frame.h"

#include <cstring>

#include "support/assert.h"

namespace dpa::transport {

namespace {

// Little-endian scalar append/read. memcpy keeps every access aligned-safe
// (the decoder walks arbitrary offsets into a byte buffer).
template <class T>
void put(std::vector<std::uint8_t>* out, T v) {
  std::uint8_t buf[sizeof(T)];
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = std::uint8_t(v & 0xff);
    v = T(v >> 8);
  }
  out->insert(out->end(), buf, buf + sizeof(T));
}

template <class T>
T get(const std::uint8_t* p) {
  T v = 0;
  for (std::size_t i = sizeof(T); i-- > 0;) v = T((v << 8) | p[i]);
  return v;
}

const std::uint32_t* crc_table() {
  static const auto table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

const char* to_string(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadHeaderCrc: return "bad-header-crc";
    case DecodeStatus::kBadBodyCrc: return "bad-body-crc";
    case DecodeStatus::kBadLength: return "bad-length";
    case DecodeStatus::kBadSeqRange: return "bad-seq-range";
  }
  return "unknown";
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                    std::uint32_t seed) {
  const std::uint32_t* t = crc_table();
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i)
    c = t[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

void encode_frame(NodeId src, NodeId dst, std::uint64_t epoch,
                  std::uint16_t flags, const std::vector<FramePayload>& train,
                  std::vector<std::uint8_t>* out) {
  std::uint64_t body_len = 0;
  std::uint64_t seq_first = 0, seq_last = 0;
  for (const FramePayload& p : train) {
    body_len += kPayloadHeaderBytes + p.bytes.size();
    if (p.seq != 0) {
      if (seq_first == 0 || p.seq < seq_first) seq_first = p.seq;
      if (p.seq > seq_last) seq_last = p.seq;
    }
  }
  DPA_CHECK(body_len <= kMaxFrameBody)
      << "frame body " << body_len << " exceeds the codec ceiling "
      << kMaxFrameBody << " — split the train before encoding";

  const std::size_t base = out->size();
  out->reserve(base + kFrameHeaderBytes + std::size_t(body_len) +
               kFrameTrailerBytes);
  put<std::uint32_t>(out, kFrameMagic);
  put<std::uint16_t>(out, kFrameVersion);
  put<std::uint16_t>(out, flags);
  put<std::uint32_t>(out, src);
  put<std::uint32_t>(out, dst);
  put<std::uint64_t>(out, epoch);
  put<std::uint64_t>(out, seq_first);
  put<std::uint64_t>(out, seq_last);
  put<std::uint32_t>(out, std::uint32_t(train.size()));
  put<std::uint32_t>(out, std::uint32_t(body_len));
  put<std::uint32_t>(out, crc32(out->data() + base, kFrameHeaderBytes - 4));

  const std::size_t body_base = out->size();
  for (const FramePayload& p : train) {
    put<std::uint16_t>(out, p.tag);
    put<std::uint64_t>(out, p.seq);
    put<std::uint32_t>(out, std::uint32_t(p.bytes.size()));
    out->insert(out->end(), p.bytes.begin(), p.bytes.end());
  }
  put<std::uint32_t>(out,
                     crc32(out->data() + body_base, out->size() - body_base));
}

DecodeStatus decode_frame(const std::uint8_t* data, std::size_t len,
                          DecodedFrame* out, std::size_t* consumed) {
  *consumed = 0;
  // Reject a wrong magic as soon as the prefix disproves it — a stream that
  // lost framing should fail fast, not wait for 52 bytes of garbage.
  const std::uint8_t magic_bytes[4] = {
      std::uint8_t(kFrameMagic & 0xff), std::uint8_t((kFrameMagic >> 8) & 0xff),
      std::uint8_t((kFrameMagic >> 16) & 0xff),
      std::uint8_t((kFrameMagic >> 24) & 0xff)};
  for (std::size_t i = 0; i < len && i < 4; ++i)
    if (data[i] != magic_bytes[i]) return DecodeStatus::kBadMagic;
  if (len < kFrameHeaderBytes) return DecodeStatus::kNeedMore;

  // Header CRC before anything else is trusted: body_len in particular must
  // not make the caller buffer for a corrupt length.
  const std::uint32_t want_crc = get<std::uint32_t>(data + 48);
  if (crc32(data, kFrameHeaderBytes - 4) != want_crc)
    return DecodeStatus::kBadHeaderCrc;

  FrameHeader h;
  h.version = get<std::uint16_t>(data + 4);
  h.flags = get<std::uint16_t>(data + 6);
  h.src = get<std::uint32_t>(data + 8);
  h.dst = get<std::uint32_t>(data + 12);
  h.epoch = get<std::uint64_t>(data + 16);
  h.seq_first = get<std::uint64_t>(data + 24);
  h.seq_last = get<std::uint64_t>(data + 32);
  h.count = get<std::uint32_t>(data + 40);
  h.body_len = get<std::uint32_t>(data + 44);
  if (h.version != kFrameVersion) return DecodeStatus::kBadVersion;
  if (h.body_len > kMaxFrameBody) return DecodeStatus::kBadLength;
  // Every payload costs at least its fixed header, so a count the body
  // cannot hold is structurally impossible.
  if (std::uint64_t(h.count) * kPayloadHeaderBytes > h.body_len)
    return DecodeStatus::kBadLength;

  const std::size_t total =
      kFrameHeaderBytes + std::size_t(h.body_len) + kFrameTrailerBytes;
  if (len < total) return DecodeStatus::kNeedMore;

  const std::uint8_t* body = data + kFrameHeaderBytes;
  if (crc32(body, h.body_len) != get<std::uint32_t>(body + h.body_len))
    return DecodeStatus::kBadBodyCrc;

  std::vector<FramePayload> payloads;
  payloads.reserve(h.count);
  std::size_t off = 0;
  std::uint64_t seq_first = 0, seq_last = 0;
  for (std::uint32_t i = 0; i < h.count; ++i) {
    if (off + kPayloadHeaderBytes > h.body_len) return DecodeStatus::kBadLength;
    FramePayload p;
    p.tag = get<std::uint16_t>(body + off);
    p.seq = get<std::uint64_t>(body + off + 2);
    const std::uint32_t plen = get<std::uint32_t>(body + off + 10);
    off += kPayloadHeaderBytes;
    if (plen > h.body_len - off) return DecodeStatus::kBadLength;
    p.bytes.assign(body + off, body + off + plen);
    off += plen;
    if (p.seq != 0) {
      if (seq_first == 0 || p.seq < seq_first) seq_first = p.seq;
      if (p.seq > seq_last) seq_last = p.seq;
    }
    payloads.push_back(std::move(p));
  }
  if (off != h.body_len) return DecodeStatus::kBadLength;
  if (seq_first != h.seq_first || seq_last != h.seq_last)
    return DecodeStatus::kBadSeqRange;

  out->header = h;
  out->payloads = std::move(payloads);
  *consumed = total;
  return DecodeStatus::kOk;
}

}  // namespace dpa::transport
