#include "transport/reliable_channel.h"

#include <utility>

#include "support/assert.h"

namespace dpa::transport {

namespace {

std::vector<std::uint8_t> encode_ack(std::uint64_t seq) {
  std::vector<std::uint8_t> out(8);
  for (int i = 0; i < 8; ++i) out[i] = std::uint8_t((seq >> (8 * i)) & 0xff);
  return out;
}

std::uint64_t decode_ack(const std::vector<std::uint8_t>& bytes) {
  DPA_CHECK(bytes.size() == 8) << "malformed ack payload";
  std::uint64_t seq = 0;
  for (int i = 8; i-- > 0;) seq = (seq << 8) | bytes[std::size_t(i)];
  return seq;
}

}  // namespace

ReliableChannel::ReliableChannel(Channel& inner, std::uint32_t num_nodes,
                                 const RetryPolicy& policy)
    : inner_(inner), rel_(num_nodes) {
  DPA_CHECK(inner.caps().framed)
      << "ReliableChannel wraps framed channels; '" << inner.name()
      << "' is not one";
  for (NodeId n = 0; n < num_nodes; ++n)
    rel_[n].engage(num_nodes, policy, n);
  inner_.set_deliver(
      [this](const FrameHeader& h, const FramePayload& p) { on_frame(h, p); });
}

void ReliableChannel::send_train(exec::Cpu* cpu, NodeId src, NodeId dst,
                                 TrainItem item) {
  DPA_CHECK(item.tag < kAckTag) << "application tag collides with the ack tag";
  if (dst != src) {
    item.seq = rel_[src].next_seq();
    Reliable::Pending pending;
    pending.dst = dst;
    pending.handler = item.tag;
    pending.wire = item.wire;  // retransmission copy
    pending.bytes = std::uint32_t(item.wire.size());
    const Time deadline = rel_[src].track(item.seq, std::move(pending), now_);
    timers_.push_back(Deadline{src, item.seq, deadline});
  }
  inner_.send_train(cpu, src, dst, std::move(item));
}

std::size_t ReliableChannel::pump(Time now) {
  now_ = now;
  std::size_t resent = 0;
  std::vector<Deadline> next;
  next.reserve(timers_.size());
  bool flushed_any = false;
  for (const Deadline& t : timers_) {
    if (!rel_[t.src].is_pending(t.seq)) continue;  // acked: timer lapses
    if (t.at > now_) {
      next.push_back(t);
      continue;
    }
    const Reliable::Pending* p = rel_[t.src].retry(t.seq);
    if (p == nullptr) {
      // max_retries exhausted: the entry was dropped (and on_peer_dead
      // already ran). The timer lapses — nothing left to re-arm.
      ++stats_.gave_up;
      continue;
    }
    ++stats_.retries;
    TrainItem item;
    item.tag = p->handler;
    item.seq = t.seq;
    item.wire = p->wire;
    const NodeId dst = p->dst;
    const Time timeout = p->timeout;  // post-backoff interval
    inner_.send_train(nullptr, t.src, dst, std::move(item));
    inner_.flush(nullptr, t.src);
    flushed_any = true;
    ++resent;
    next.push_back(Deadline{t.src, t.seq, now_ + timeout});
  }
  timers_ = std::move(next);
  if (flushed_any) inner_.poll();
  return resent;
}

void ReliableChannel::on_frame(const FrameHeader& h, const FramePayload& p) {
  if (p.tag == kAckTag) {
    if (rel_[h.dst].on_ack(decode_ack(p.bytes))) ++stats_.acks_recv;
    return;
  }
  if (p.seq != 0) {
    // Ack every copy, duplicates included: the ack for an earlier copy may
    // itself have been lost, and acks are idempotent at the sender.
    ++stats_.acks_sent;
    TrainItem ack;
    ack.tag = kAckTag;
    ack.wire = encode_ack(p.seq);
    inner_.send_train(nullptr, h.dst, h.src, std::move(ack));
    inner_.flush(nullptr, h.dst);
    if (!rel_[h.dst].accept(h.src, p.seq)) {
      ++stats_.dup_msgs_dropped;
      return;
    }
  }
  DPA_CHECK(deliver_ != nullptr)
      << "reliable frame arrived with no delivery callback installed";
  deliver_(h, p);
}

}  // namespace dpa::transport
