// SimChannel: the modeled transport — sim::Network + fm::FmLayer behind
// the Channel interface.
//
// Forwards each message eagerly to the FM layer (the simulator models
// train aggregation in *time*, not in buffering: the engine's aggregation
// decides what shares a message, and the LogGP network charges the wire).
// Byte-identical to the pre-transport tree by construction: the one send
// path calls the same fm::FmLayer::send in the same order with the same
// arguments, so modeled costs, event order, and goldens are unchanged.
#pragma once

#include "fm/fm.h"
#include "support/assert.h"
#include "transport/channel.h"

namespace dpa::transport {

class SimChannel final : public Channel {
 public:
  explicit SimChannel(fm::FmLayer& fm) : fm_(fm) {}

  const char* name() const override { return "sim"; }
  ChannelCaps caps() const override {
    // A fault injector on the modeled network makes the fabric lossy and
    // reordering — exactly what engages the runtime's reliability layer.
    const bool faulted = fm_.machine().network().injector() != nullptr;
    return ChannelCaps{/*lossless=*/!faulted, /*fifo=*/!faulted,
                       /*framed=*/false, /*buffered=*/false};
  }

  void send_train(exec::Cpu* cpu, NodeId src, NodeId dst,
                  TrainItem item) override {
    DPA_DCHECK(cpu != nullptr) << "the modeled network charges the sender";
    fm_.send(*cpu, src, dst, item.packet.handler, std::move(item.packet.data),
             item.packet.bytes);
  }

  bool flush(exec::Cpu* cpu, NodeId src) override {
    (void)cpu;
    (void)src;
    return false;  // FM hands messages to the modeled network eagerly
  }

 private:
  fm::FmLayer& fm_;
};

}  // namespace dpa::transport
