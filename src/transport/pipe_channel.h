// PipeChannel: the frame codec exercised over a real byte stream — a
// non-blocking AF_UNIX socketpair() on localhost.
//
// Proof-of-concept for the multi-process backend: every train a node
// flushes is encoded into one frame (transport/frame.h), written to the
// socket, read back, reassembled from the byte stream, decoded, and
// delivered payload by payload. All nodes share the one loopback stream;
// the frame header's src/dst route delivery. The bytes on this wire are
// exactly the bytes a TCP transport will carry.
//
// I/O model — a miniature event loop, single-threaded and non-blocking:
//   * transmit appends encoded frames to a TX backlog (after optional
//     fault injection, below);
//   * pump() writes as much backlog as the kernel buffer takes (partial
//     writes resume mid-frame), then reads everything available,
//     decodes complete frames from the reassembly buffer, and delivers.
// Because writes never block and delivery callbacks only ever *append*
// to the backlog (acks from ReliableChannel, say), re-entrancy cannot
// deadlock: the loop makes progress as long as someone keeps pumping —
// which is what the caller's poll() loop is.
//
// Fault injection (seeded, deterministic) corrupts the *schedule*, never
// the bytes: whole encoded frames are dropped, duplicated, or held back
// one slot before they reach the wire, so the stream stays well-formed
// and any decode failure is a real codec bug (and panics). Byte-level
// corruption is the fuzz suite's job, directly against decode_frame.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "support/rng.h"
#include "transport/channel.h"

namespace dpa::transport {

// Whole-frame fault schedule for PipeChannel (the transport-level analog
// of sim::FaultPlan — same idea, applied to frames instead of fragments).
struct ChannelFaults {
  double drop = 0.0;     // P(frame silently discarded before the wire)
  double dup = 0.0;      // P(frame written twice)
  double reorder = 0.0;  // P(frame held back one slot — swaps with the next)
  std::uint64_t seed = 1;

  bool any() const { return drop > 0 || dup > 0 || reorder > 0; }
};

class PipeChannel final : public Channel {
 public:
  struct WireStats {
    std::uint64_t frames_sent = 0;   // frames that reached the wire
    std::uint64_t frames_recv = 0;
    std::uint64_t payloads_recv = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t dropped_frames = 0;
    std::uint64_t dup_frames = 0;
    std::uint64_t reordered_frames = 0;
  };

  PipeChannel(std::uint32_t num_nodes, std::uint32_t train_max);

  // Endpoint mode: adopt one duplex fd (our half of a socketpair whose
  // other half lives in a different process). Writes and reads both use
  // `fd`; the channel owns it and closes it on destruction. This is the
  // multi-process transport: each worker holds one PipeChannel per peer.
  struct Endpoint {
    int fd = -1;
  };
  PipeChannel(std::uint32_t num_nodes, std::uint32_t train_max, Endpoint ep);

  ~PipeChannel() override;

  // Frames carry the phase epoch; the phase driver stamps it.
  void set_epoch(std::uint64_t epoch) { epoch_ = epoch; }
  // Marks every frame this channel sends as a control frame
  // (kFrameFlagControl) — used by the multi-process coordinator's
  // termination-protocol channel, whose traffic a prioritizing transport
  // must tell apart from data without decoding bodies.
  void set_control(bool control) { mark_control_ = control; }
  // Arms (or disarms, with {}) the fault schedule. Faulted delivery is
  // only exactly-once under a ReliableChannel wrapper.
  void set_faults(const ChannelFaults& faults);

  const char* name() const override { return "pipe"; }
  ChannelCaps caps() const override {
    return ChannelCaps{/*lossless=*/!(faults_.drop > 0 || faults_.dup > 0),
                       /*fifo=*/!(faults_.reorder > 0),
                       /*framed=*/true, /*buffered=*/true};
  }

  void set_deliver(FrameDeliverFn fn) override { deliver_ = std::move(fn); }

  // Buffers {tag, seq, wire} on src's train for dst (the Packet/Task
  // representations are ignored — this fabric moves bytes).
  void send_train(exec::Cpu* cpu, NodeId src, NodeId dst,
                  TrainItem item) override;

  // Encodes each non-empty train of src as one frame, queues it for the
  // wire, and pumps. True if anything departed.
  bool flush(exec::Cpu* cpu, NodeId src) override;

  // Writes backlog / reads / decodes / delivers; returns payloads
  // delivered by this call. Once the peer is down this returns 0 forever
  // (status() says why) instead of aborting — see ChannelStatus.
  std::size_t poll() override { return pump(); }

  ChannelStatus status() const override {
    return peer_down_ ? ChannelStatus::kPeerDown : ChannelStatus::kOk;
  }

  std::uint64_t trains_sent(NodeId src) const override {
    return srcs_[src].trains;
  }

  // Forces everything queued — including a fault-held frame — onto the
  // wire and drains until no progress. Phase-end barrier for unfaulted
  // runs; faulted runs converge through ReliableChannel retransmission
  // instead.
  void drain();

  const WireStats& wire_stats() const { return stats_; }
  std::size_t tx_backlog() const { return tx_.size(); }

  // The fd arrivals land on — what a multi-process event loop hands to
  // poll(2) to sleep until this channel has bytes to read.
  int wire_fd() const { return fds_[1]; }

 private:
  struct SrcState {
    std::vector<std::vector<FramePayload>> train;
    std::uint32_t pending = 0;
    std::uint64_t trains = 0;
  };

  void flush_dest(NodeId src, NodeId dst);
  // Applies the fault schedule to one encoded frame, then queues the
  // survivors (and any held-back predecessor) for the wire.
  void transmit(std::vector<std::uint8_t> frame);
  void enqueue_wire(std::vector<std::uint8_t> frame);
  std::size_t pump();

  std::uint32_t train_max_;
  std::uint64_t epoch_ = 0;
  bool mark_control_ = false;
  std::vector<SrcState> srcs_;
  FrameDeliverFn deliver_;

  // Loopback mode: [0] write end, [1] read end of an in-process
  // socketpair. Endpoint mode: both entries hold the one adopted duplex
  // fd (guarded against double-close in the destructor).
  int fds_[2] = {-1, -1};
  bool peer_down_ = false;  // EPIPE/ECONNRESET on write or EOF on read
  std::deque<std::vector<std::uint8_t>> tx_;  // encoded frames awaiting write
  std::size_t tx_off_ = 0;                    // partial-write offset in front
  std::vector<std::uint8_t> rx_;              // reassembly buffer
  std::size_t rx_pos_ = 0;                    // decoded-up-to offset in rx_
  bool pumping_ = false;                      // re-entrancy guard

  ChannelFaults faults_;
  Rng fault_rng_;
  std::vector<std::uint8_t> held_;  // reorder: frame held back one slot
  WireStats stats_;
};

}  // namespace dpa::transport
