// InProcChannel: the native backend's message-train fabric as a Channel.
//
// Owns the per-source, per-destination outbound train buffers and the
// flush policy (depth limit / explicit flush / pre-deactivation flush);
// the backend stays in charge of what a delivery *is* via the Sink —
// locking the destination mailbox, tracing the hand-off, activating the
// destination node. That split keeps the hot path identical to the
// pre-transport tree: one lock acquisition per train, batch append,
// single-writer train state on the sending node's host thread.
//
// Thread-safety contract (same as the trains it replaces): srcs_[s] is
// touched only by the worker currently hosting node s. Host switches are
// ordered by the backend's activation protocol, which carries the
// happens-before edge; the alignas keeps neighboring sources off each
// other's cache lines.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.h"
#include "transport/channel.h"

namespace dpa::transport {

class InProcChannel final : public Channel {
 public:
  // What the owning backend does with a departed train. `batch` is the
  // train's tasks in send order; the sink moves the elements out (the
  // channel clears the vector afterwards, preserving its capacity for the
  // next train — no per-train allocation).
  class Sink {
   public:
    virtual ~Sink() = default;
    virtual void deliver_train(NodeId src, NodeId dst,
                               std::vector<exec::Task>& batch) = 0;
  };

  InProcChannel(std::uint32_t num_nodes, std::uint32_t train_max, Sink& sink)
      : train_max_(train_max), sink_(sink), srcs_(num_nodes) {
    DPA_CHECK(train_max_ > 0);
    for (auto& s : srcs_) s.train.resize(num_nodes);
  }

  const char* name() const override { return "inproc"; }
  ChannelCaps caps() const override {
    return ChannelCaps{/*lossless=*/true, /*fifo=*/true, /*framed=*/false,
                       /*buffered=*/true};
  }

  void send_train(exec::Cpu* cpu, NodeId src, NodeId dst,
                  TrainItem item) override {
    (void)cpu;  // in-process hand-off cost is measured, not charged
    buffer(src, dst, std::move(item.task));
  }

  bool flush(exec::Cpu* cpu, NodeId src) override {
    (void)cpu;
    return flush_src(src);
  }

  std::uint64_t trains_sent(NodeId src) const override {
    return srcs_[src].trains;
  }

  // Non-virtual hot-path entry (the backend holds the concrete type).
  void buffer(NodeId src, NodeId dst, exec::Task task) {
    SrcState& s = srcs_[src];
    auto& tr = s.train[dst];
    tr.push_back(std::move(task));
    ++s.pending;
    if (tr.size() >= train_max_) flush_dest(src, dst);
  }

  // Hands src's train for dst to the sink (one delivery = one train).
  void flush_dest(NodeId src, NodeId dst) {
    SrcState& s = srcs_[src];
    auto& tr = s.train[dst];
    if (tr.empty()) return;
    DPA_DCHECK(s.pending >= tr.size());
    s.pending -= std::uint32_t(tr.size());
    ++s.trains;
    sink_.deliver_train(src, dst, tr);
    tr.clear();
  }

  // Flushes every non-empty train of src; true if anything departed.
  bool flush_src(NodeId src) {
    SrcState& s = srcs_[src];
    if (s.pending == 0) return false;
    for (NodeId d = 0; d < NodeId(s.train.size()); ++d) flush_dest(src, d);
    DPA_DCHECK(s.pending == 0);
    return true;
  }

  // Messages buffered but not yet departed for src (zero between phases).
  std::uint32_t pending(NodeId src) const { return srcs_[src].pending; }

  void reset_stats() {
    for (auto& s : srcs_) s.trains = 0;
  }

 private:
  // Padded: train state is written at message rate by the hosting worker.
  struct alignas(64) SrcState {
    std::vector<std::vector<exec::Task>> train;
    std::uint32_t pending = 0;
    std::uint64_t trains = 0;
  };

  std::uint32_t train_max_;
  Sink& sink_;
  std::vector<SrcState> srcs_;
};

}  // namespace dpa::transport
