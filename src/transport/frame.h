// Frame codec: the versioned, self-delimiting binary encoding of a message
// train.
//
// One frame is one train hand-off: every payload buffered for a (src, dst)
// pair departs as a single frame, so a socket write amortizes per-message
// overhead exactly the way the in-memory mailbox hand-off amortizes the
// per-message lock — the paper's aggregation idea applied to the wire
// format itself. The same bytes work for any byte-stream transport: the
// PipeChannel proof-of-concept writes them over a socketpair today; the
// multi-process backend will write them over TCP tomorrow.
//
// Wire layout (all integers little-endian):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     4  magic "DPAF"
//        4     2  version (kFrameVersion)
//        6     2  flags (kFrameFlag*)
//        8     4  src node
//       12     4  dst node
//       16     8  phase epoch
//       24     8  seq_first  (min reliability seq in the body; 0 = none)
//       32     8  seq_last   (max reliability seq in the body; 0 = none)
//       40     4  payload count
//       44     4  body_len (bytes of the payload section)
//       48     4  header_crc = CRC-32 of bytes [0, 48)
//       52   ...  body: count x { tag u16, seq u64, len u32, bytes[len] }
//      ...     4  body_crc = CRC-32 of the body section
//
// Decoding is incremental (kNeedMore until a whole frame is buffered) and
// defensive: every length is bounds-checked before use and the header CRC
// is verified before body_len is trusted, so a flipped bit can make a
// frame *rejected* but never make the decoder read out of bounds — the
// property the fuzz suite locks in under ASan/UBSan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/types.h"

namespace dpa::transport {

using exec::NodeId;

constexpr std::uint32_t kFrameMagic = 0x46415044u;  // "DPAF" little-endian
constexpr std::uint16_t kFrameVersion = 1;
constexpr std::size_t kFrameHeaderBytes = 52;
constexpr std::size_t kFrameTrailerBytes = 4;  // body_crc
// Per-payload framing overhead: tag u16 + seq u64 + len u32.
constexpr std::size_t kPayloadHeaderBytes = 14;
// Defensive ceiling on the body a header may declare. Far above any train
// the runtime produces; its job is bounding what a corrupt (but
// CRC-colliding) header can make the decoder buffer for.
constexpr std::uint32_t kMaxFrameBody = 64u << 20;

// Frame flags.
constexpr std::uint16_t kFrameFlagControl = 1u << 0;  // ack/control frames

// One length-prefixed payload in a frame body. `seq` is the reliability
// layer's per-sender sequence number (0 = unsequenced), carried per payload
// because a sender's train interleaves sequences bound for many
// destinations — the header's [seq_first, seq_last] range is a summary,
// not a substitute.
struct FramePayload {
  std::uint16_t tag = 0;  // handler id / message kind, opaque to transport
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> bytes;
};

struct FrameHeader {
  std::uint16_t version = kFrameVersion;
  std::uint16_t flags = 0;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t epoch = 0;
  std::uint64_t seq_first = 0;
  std::uint64_t seq_last = 0;
  std::uint32_t count = 0;
  std::uint32_t body_len = 0;
};

struct DecodedFrame {
  FrameHeader header;
  std::vector<FramePayload> payloads;
};

enum class DecodeStatus : std::uint8_t {
  kOk,
  kNeedMore,       // buffer holds a prefix of a (so far) valid frame
  kBadMagic,       // not a frame boundary
  kBadVersion,     // well-framed but from a future/unknown codec version
  kBadHeaderCrc,   // header bytes corrupted
  kBadBodyCrc,     // body bytes corrupted
  kBadLength,      // lengths inconsistent (payloads overrun/underrun body)
  kBadSeqRange,    // header seq range disagrees with the payloads
};

const char* to_string(DecodeStatus s);

// CRC-32 (IEEE reflected polynomial 0xEDB88320), the frame checksum.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                    std::uint32_t seed = 0);

// Encodes one frame and appends it to `out` (append, so a flush can pack
// several trains into one write buffer). Computes count, body_len, the
// seq range, and both CRCs. Payload sizes must keep body_len under
// kMaxFrameBody (DPA_CHECKed).
void encode_frame(NodeId src, NodeId dst, std::uint64_t epoch,
                  std::uint16_t flags, const std::vector<FramePayload>& train,
                  std::vector<std::uint8_t>* out);

// Attempts to decode one frame from the front of data[0, len). On kOk,
// *consumed is the frame's full size (the caller advances its buffer by
// that much); on every other status *consumed is 0. kNeedMore means the
// prefix is valid so far — buffer more bytes and retry. Any other status
// means the stream is corrupt at this offset; resynchronization policy is
// the caller's (the in-process transports treat it as fatal).
DecodeStatus decode_frame(const std::uint8_t* data, std::size_t len,
                          DecodedFrame* out, std::size_t* consumed);

}  // namespace dpa::transport
