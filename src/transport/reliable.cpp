#include "transport/reliable.h"

#include <algorithm>

#include "support/assert.h"

namespace dpa::transport {

const Reliable::Pending* Reliable::retry(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return nullptr;  // ack raced the timer
  Pending& p = it->second;
  if (p.attempts >= policy_.max_retries) {
    // Give the message up: max_retries retransmissions (plus the original
    // send) went unacked. Drop the entry first so the callback sees a
    // consistent in-flight table, then let the owner decide what that
    // means — the default is the historical abort, a multi-process
    // coordinator turns it into a peer-dead report. `sends` counts actual
    // transmissions (1 + p.attempts), not p.attempts + the increment the
    // old message double-counted.
    const NodeId dst = p.dst;
    const std::uint32_t sends = 1 + p.attempts;
    pending_.erase(seq);
    if (on_peer_dead_) {
      on_peer_dead_(dst, seq, sends);
      return nullptr;
    }
    DPA_PANIC("node " << self_ << " gave up on seq " << seq << " to node "
                      << dst << " after " << sends << " sends (1 original + "
                      << (sends - 1)
                      << " retransmissions) — fabric unusable or the "
                      << "reliability layer is broken");
  }
  ++p.attempts;
  // Exponential backoff, capped: attempt n waits timeout * backoff^n.
  p.timeout = std::min<Time>(Time(double(p.timeout) * policy_.backoff),
                             policy_.max_timeout_ns);
  return &p;
}

}  // namespace dpa::transport
