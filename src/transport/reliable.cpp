#include "transport/reliable.h"

#include <algorithm>

#include "support/assert.h"

namespace dpa::transport {

const Reliable::Pending* Reliable::retry(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return nullptr;  // ack raced the timer
  Pending& p = it->second;
  ++p.attempts;
  DPA_CHECK(p.attempts <= policy_.max_retries)
      << "node " << self_ << " gave up on seq " << seq << " to node " << p.dst
      << " after " << p.attempts << " attempts — fabric unusable or the "
      << "reliability layer is broken";
  // Exponential backoff, capped: attempt n waits timeout * backoff^n.
  p.timeout = std::min<Time>(Time(double(p.timeout) * policy_.backoff),
                             policy_.max_timeout_ns);
  return &p;
}

}  // namespace dpa::transport
