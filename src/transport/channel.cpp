#include "transport/channel.h"

#include "support/assert.h"

namespace dpa::transport {

void Channel::set_deliver(FrameDeliverFn fn) {
  (void)fn;
  DPA_PANIC("channel '" << name()
                        << "' delivers synchronously — only framed channels "
                        << "take a delivery callback");
}

}  // namespace dpa::transport
