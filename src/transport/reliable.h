// transport::Reliable — the seq/ack/timeout/retransmit + receiver-dedup
// protocol core, relocated out of the runtime's EngineBase.
//
// This is the substrate-agnostic state machine: per-sender sequence
// numbers, the in-flight (unacked) message table with exponential-backoff
// deadlines, and the per-source sets of delivered sequence numbers that
// make retransmitted or fabric-duplicated copies droppable. What it
// deliberately does NOT own is the clock and the wire: the caller charges
// costs, sends bytes/payloads, and arms timers, because those are
// substrate properties —
//
//   * the runtime engines drive it through exec::Backend::schedule_at on
//     the simulator, where retransmission timing is part of the modeled
//     phase and must stay byte-identical to the goldens;
//   * ReliableChannel drives it with an explicit pump(now) over a framed
//     channel, where retransmission is real I/O.
//
// Same protocol, one implementation, two substrates — the property the
// multi-process backend needs.
//
// Protocol invariants (unchanged from PR 2):
//   * seq 0 means "unsequenced": the sender runs without the protocol and
//     receivers pass the message straight through.
//   * Every sequenced copy is acked, duplicates included — the ack for an
//     earlier copy may itself have been lost, and acks are idempotent at
//     the sender. Acks are unsequenced and never retried.
//   * accept() is exactly-once per (src, seq): the first copy is
//     delivered, every later copy reports false and must be dropped.
//   * retry() applies capped exponential backoff (attempt n waits
//     timeout * backoff^n); after max_retries retransmissions it gives the
//     message up through on_peer_dead. The default callback dies loudly —
//     on a single-process fabric an undeliverable message is a bug, not a
//     steady state — but a multi-process coordinator overrides it so one
//     lost worker becomes a reported error instead of a crash.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "exec/types.h"
#include "support/flat_map.h"

namespace dpa::transport {

using exec::NodeId;
using exec::Time;

// Retransmission policy. Field-compatible with the runtime's RetryParams
// (rt::retry_policy() converts); defaults match it.
struct RetryPolicy {
  Time timeout_ns = 2'000'000;        // first retransmit deadline
  double backoff = 2.0;               // deadline multiplier per attempt
  Time max_timeout_ns = 64'000'000;   // backoff cap
  std::uint32_t max_retries = 100;    // attempts before giving up (fatal)
};

class Reliable {
 public:
  // One unacked in-flight message. Either `data` (in-memory payload, the
  // engine path) or `wire` (encoded payload, the framed-channel path)
  // keeps the bytes alive for retransmission; a retry re-sends the same
  // representation under the same seq.
  struct Pending {
    NodeId dst = 0;
    std::uint16_t handler = 0;  // handler id / frame tag
    std::shared_ptr<void> data;
    std::vector<std::uint8_t> wire;
    std::uint32_t bytes = 0;
    std::uint32_t attempts = 0;  // retransmissions so far
    Time timeout = 0;            // current (backed-off) timer interval
  };

  Reliable() = default;

  Reliable(const Reliable&) = delete;
  Reliable& operator=(const Reliable&) = delete;
  Reliable(Reliable&&) = default;
  Reliable& operator=(Reliable&&) = default;

  // Turns the protocol on for a node talking to num_nodes peers. Before
  // engage() every path is dead: next_seq() panics, accept() only passes
  // unsequenced messages.
  void engage(std::uint32_t num_nodes, const RetryPolicy& policy,
              NodeId self) {
    engaged_ = true;
    policy_ = policy;
    self_ = self;
    seen_.resize(num_nodes);
  }

  bool engaged() const { return engaged_; }
  const RetryPolicy& policy() const { return policy_; }

  // --- Sender side ---------------------------------------------------

  // Next per-sender sequence number (1-based; 0 stays "unsequenced").
  std::uint64_t next_seq() {
    DPA_DCHECK(engaged_);
    return ++next_seq_;
  }

  // Registers an in-flight message under `seq`; returns the absolute
  // deadline (now + the policy's initial timeout) the caller must arm a
  // timer for.
  Time track(std::uint64_t seq, Pending pending, Time now) {
    pending.timeout = policy_.timeout_ns;
    const Time deadline = now + pending.timeout;
    pending_.emplace(seq, std::move(pending));
    return deadline;
  }

  // Whether `seq` is still unacked (a timer firing for an acked seq does
  // nothing and charges nothing — it cannot perturb timing).
  bool is_pending(std::uint64_t seq) const {
    return pending_.find(seq) != pending_.end();
  }

  // Invoked when a message exhausts max_retries: (dst, seq, sends) where
  // `sends` counts every transmission attempted — 1 original plus
  // max_retries retransmissions. The pending entry is already erased when
  // this runs; the callback decides what giving up means (the default
  // panics, a multi-process coordinator reports the peer dead).
  using PeerDeadFn =
      std::function<void(NodeId dst, std::uint64_t seq, std::uint32_t sends)>;
  void set_on_peer_dead(PeerDeadFn fn) { on_peer_dead_ = std::move(fn); }

  // A retransmit deadline fired: bumps the attempt count, applies backoff,
  // and returns the record the caller must re-send — or null if the ack
  // raced the timer, or if max_retries was exhausted (the entry is dropped
  // and on_peer_dead runs before returning). The pointer is into the
  // pending table: invalidated by the next track/retry/on_ack.
  const Pending* retry(std::uint64_t seq);

  // An ack arrived for `seq`; true if it cleared an in-flight entry
  // (false: duplicate ack, already cleared).
  bool on_ack(std::uint64_t seq) { return pending_.erase(seq) > 0; }

  std::size_t in_flight() const { return pending_.size(); }

  // --- Receiver side -------------------------------------------------

  // First delivery of (src, seq)? The caller acks every copy *before*
  // asking (ack-always, see header comment) and drops the message when
  // this returns false. seq 0 always passes.
  bool accept(NodeId src, std::uint64_t seq) {
    if (seq == 0) return true;
    DPA_DCHECK(engaged_);
    return seen_[src].insert(seq).second;
  }

 private:
  bool engaged_ = false;
  NodeId self_ = 0;
  RetryPolicy policy_;
  std::uint64_t next_seq_ = 0;
  PeerDeadFn on_peer_dead_;  // empty = the default abort in retry()
  FlatMap<std::uint64_t, Pending> pending_;
  // Per-source sets of delivered sequence numbers (receiver-side dedup).
  std::vector<FlatSet<std::uint64_t>> seen_;
};

}  // namespace dpa::transport
