#include "transport/pipe_channel.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "support/assert.h"

namespace dpa::transport {

namespace {

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  DPA_CHECK(flags >= 0) << "fcntl(F_GETFL): " << std::strerror(errno);
  DPA_CHECK(fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0)
      << "fcntl(F_SETFL): " << std::strerror(errno);
}

}  // namespace

PipeChannel::PipeChannel(std::uint32_t num_nodes, std::uint32_t train_max)
    : train_max_(train_max), srcs_(num_nodes), fault_rng_(1) {
  DPA_CHECK(train_max_ > 0);
  for (auto& s : srcs_) s.train.resize(num_nodes);
  DPA_CHECK(socketpair(AF_UNIX, SOCK_STREAM, 0, fds_) == 0)
      << "socketpair: " << std::strerror(errno);
  set_nonblocking(fds_[0]);
  set_nonblocking(fds_[1]);
}

PipeChannel::PipeChannel(std::uint32_t num_nodes, std::uint32_t train_max,
                         Endpoint ep)
    : train_max_(train_max), srcs_(num_nodes), fault_rng_(1) {
  DPA_CHECK(train_max_ > 0);
  DPA_CHECK(ep.fd >= 0) << "endpoint PipeChannel needs a valid fd";
  for (auto& s : srcs_) s.train.resize(num_nodes);
  fds_[0] = fds_[1] = ep.fd;  // duplex: write and read the same socket
  set_nonblocking(ep.fd);
}

PipeChannel::~PipeChannel() {
  if (fds_[0] >= 0) close(fds_[0]);
  if (fds_[1] >= 0 && fds_[1] != fds_[0]) close(fds_[1]);
}

void PipeChannel::set_faults(const ChannelFaults& faults) {
  faults_ = faults;
  fault_rng_ = Rng(faults.seed);
}

void PipeChannel::send_train(exec::Cpu* cpu, NodeId src, NodeId dst,
                             TrainItem item) {
  (void)cpu;  // wall-clock fabric: costs are measured, not charged
  SrcState& s = srcs_[src];
  auto& tr = s.train[dst];
  FramePayload p;
  p.tag = item.tag;
  p.seq = item.seq;
  p.bytes = std::move(item.wire);
  tr.push_back(std::move(p));
  ++s.pending;
  if (tr.size() >= train_max_) flush_dest(src, dst);
}

void PipeChannel::flush_dest(NodeId src, NodeId dst) {
  SrcState& s = srcs_[src];
  auto& tr = s.train[dst];
  if (tr.empty()) return;
  DPA_DCHECK(s.pending >= tr.size());
  s.pending -= std::uint32_t(tr.size());
  ++s.trains;
  std::vector<std::uint8_t> frame;
  const std::uint16_t flags =
      (mark_control_ || (tr.size() == 1 && tr[0].tag == 0xffff))
          ? kFrameFlagControl
          : 0;
  encode_frame(src, dst, epoch_, flags, tr, &frame);
  tr.clear();
  transmit(std::move(frame));
}

bool PipeChannel::flush(exec::Cpu* cpu, NodeId src) {
  (void)cpu;
  SrcState& s = srcs_[src];
  if (s.pending == 0) return false;
  for (NodeId d = 0; d < NodeId(s.train.size()); ++d) flush_dest(src, d);
  DPA_DCHECK(s.pending == 0);
  if (!pumping_) pump();
  return true;
}

void PipeChannel::transmit(std::vector<std::uint8_t> frame) {
  if (faults_.any()) {
    if (fault_rng_.chance(faults_.drop)) {
      ++stats_.dropped_frames;
      return;
    }
    const bool dup = fault_rng_.chance(faults_.dup);
    if (fault_rng_.chance(faults_.reorder) && held_.empty()) {
      // Hold this frame back one slot: it departs right after the next
      // frame (or at drain()). A retransmission also flushes it out.
      ++stats_.reordered_frames;
      held_ = std::move(frame);
      if (dup) {
        ++stats_.dup_frames;
        enqueue_wire(held_);  // the duplicate copy jumps the held original
      }
      return;
    }
    enqueue_wire(frame);
    if (dup) {
      ++stats_.dup_frames;
      enqueue_wire(frame);
    }
    if (!held_.empty()) enqueue_wire(std::exchange(held_, {}));
    return;
  }
  enqueue_wire(std::move(frame));
}

void PipeChannel::enqueue_wire(std::vector<std::uint8_t> frame) {
  ++stats_.frames_sent;
  stats_.bytes_sent += frame.size();
  tx_.push_back(std::move(frame));
}

std::size_t PipeChannel::pump() {
  DPA_CHECK(!pumping_) << "re-entrant pump";
  if (peer_down_) return 0;
  pumping_ = true;
  std::size_t delivered = 0;
  bool progress = true;
  while (progress && !peer_down_) {
    progress = false;
    // Write side: push backlog until the kernel buffer is full. send()
    // with MSG_NOSIGNAL instead of raw write(): a dead peer must surface
    // as EPIPE -> kPeerDown, not as a process-killing SIGPIPE.
    while (!tx_.empty()) {
      const auto& f = tx_.front();
      const ssize_t n = send(fds_[0], f.data() + tx_off_,
                             f.size() - tx_off_, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EPIPE || errno == ECONNRESET) {
          peer_down_ = true;
          break;
        }
        DPA_CHECK(errno == EAGAIN || errno == EWOULDBLOCK)
            << "pipe write: " << std::strerror(errno);
        break;
      }
      progress = true;
      tx_off_ += std::size_t(n);
      if (tx_off_ == f.size()) {
        tx_.pop_front();
        tx_off_ = 0;
      }
    }
    // Read side: drain the socket into the reassembly buffer. EOF means
    // the peer closed its half — also kPeerDown, never an abort.
    while (!peer_down_) {
      std::uint8_t buf[65536];
      const ssize_t n = read(fds_[1], buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == ECONNRESET) {
          peer_down_ = true;
          break;
        }
        DPA_CHECK(errno == EAGAIN || errno == EWOULDBLOCK)
            << "pipe read: " << std::strerror(errno);
        break;
      }
      if (n == 0) {
        peer_down_ = true;
        break;
      }
      progress = true;
      rx_.insert(rx_.end(), buf, buf + n);
    }
    // Decode every complete frame in the buffer. Delivery callbacks may
    // append new frames to the TX backlog (acks) — the outer loop's
    // progress flag sends those before we give up.
    for (;;) {
      DecodedFrame frame;
      std::size_t consumed = 0;
      const DecodeStatus st = decode_frame(rx_.data() + rx_pos_,
                                           rx_.size() - rx_pos_, &frame,
                                           &consumed);
      if (st == DecodeStatus::kNeedMore) break;
      // The fault injector reorders whole frames, never bytes: a decode
      // failure here is a codec bug, not an injected fault.
      DPA_CHECK(st == DecodeStatus::kOk)
          << "pipe stream corrupt: " << to_string(st) << " at offset "
          << rx_pos_;
      rx_pos_ += consumed;
      ++stats_.frames_recv;
      stats_.payloads_recv += frame.payloads.size();
      delivered += frame.payloads.size();
      progress = true;
      DPA_CHECK(deliver_ != nullptr)
          << "pipe frame arrived with no delivery callback installed";
      for (const FramePayload& p : frame.payloads) deliver_(frame.header, p);
    }
    // Compact the reassembly buffer once the decoded prefix dominates.
    if (rx_pos_ > 0 && rx_pos_ >= rx_.size() / 2) {
      rx_.erase(rx_.begin(), rx_.begin() + std::ptrdiff_t(rx_pos_));
      rx_pos_ = 0;
    }
  }
  pumping_ = false;
  return delivered;
}

void PipeChannel::drain() {
  if (!held_.empty()) enqueue_wire(std::exchange(held_, {}));
  // Every pump with a non-empty backlog makes progress (a full kernel
  // buffer is drained by our own read side in the same call), so this
  // terminates once the wire is quiet and all deliveries ran. A dead peer
  // ends the loop too — nothing we still hold can ever depart, and
  // spinning on an undeliverable backlog would hang the caller.
  while (!peer_down_ && (pump() > 0 || !tx_.empty())) {
  }
}

}  // namespace dpa::transport
