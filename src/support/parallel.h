// Host-side parallel sweep driver.
//
// Every simulated run in this repository is single-threaded and
// deterministic; the experiment harnesses, however, sweep many independent
// (engine, node-count, strip, seed) cells and used to run them serially on
// one core. parallel_for_cells runs the cells on a pool of host threads.
// Each cell builds its own Cluster/obs::Session and writes its result into
// its own pre-allocated slot, so nothing is shared between cells and the
// results — every byte of them — are identical to a serial sweep; only the
// host wall-clock changes. Determinism_test asserts exactly that.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace dpa {

// Number of host hardware threads (>= 1).
inline std::size_t host_concurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

// Runs fn(0) .. fn(count-1) on min(jobs, count) host threads. jobs <= 1
// runs inline, in index order, with no thread machinery at all — the
// serial baseline a parallel sweep must be bit-identical to. fn must only
// touch state owned by its cell index.
inline void parallel_for_cells(std::size_t jobs, std::size_t count,
                               const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (jobs > count) jobs = count;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(jobs);
  for (std::size_t t = 0; t < jobs; ++t) threads.emplace_back(worker);
  for (auto& th : threads) th.join();
}

}  // namespace dpa
