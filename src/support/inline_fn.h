// A small-buffer-optimized, move-only callable: the hot-path replacement
// for std::function.
//
// Every simulated event, node task and runtime thread in this repository is
// a closure. std::function heap-allocates any capture past ~2 pointers and
// drags exception/RTTI machinery along with it; at millions of simulated
// events per run those allocations dominate host time. InlineFn stores
// captures up to N bytes in place (no allocation, no indirection beyond one
// ops-table pointer) and falls back to the heap only for oversized captures,
// which the property tests exercise explicitly.
//
// Semantics mirror the subset of std::function the runtime uses:
//   * construct from any callable invocable with the signature
//   * move-only (the runtime never copies a thread continuation)
//   * assignable from nullptr, testable with explicit operator bool
//   * const-invocable (like std::function, the target is treated as
//     logically mutable state owned by the wrapper)
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dpa {

inline constexpr std::size_t kInlineFnDefaultCapacity = 48;

template <class Sig, std::size_t N = kInlineFnDefaultCapacity>
class InlineFn;

template <class R, class... Args, std::size_t N>
class InlineFn<R(Args...), N> {
 public:
  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
                std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace<std::remove_cvref_t<F>>(std::forward<F>(f));
  }

  InlineFn(InlineFn&& other) noexcept { move_from(std::move(other)); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  InlineFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
                std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>>>
  InlineFn& operator=(F&& f) {
    reset();
    emplace<std::remove_cvref_t<F>>(std::forward<F>(f));
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  R operator()(Args... args) const {
    return ops_->invoke(target(), std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const InlineFn& f, std::nullptr_t) { return !f; }
  friend bool operator!=(const InlineFn& f, std::nullptr_t) {
    return bool(f);
  }

  // True when the engaged target lives in the inline buffer (test hook).
  bool is_inline() const { return ops_ != nullptr && !ops_->heap; }

  // True when the target is inline AND trivially copyable/destructible —
  // i.e. the raw capture bytes are a complete, relocatable representation.
  // The multi-process wire codec uses this to ship accumulation closures
  // as byte blobs; closures capturing non-trivial state must not cross a
  // process boundary and fail this check.
  bool is_trivially_marshallable() const {
    return ops_ != nullptr && !ops_->heap && ops_->trivial;
  }

  // Raw access to the inline capture bytes, for marshalling (valid only
  // when is_trivially_marshallable()). `raw_size` is the stored target's
  // size, not the buffer capacity. `marshal_ops` is the pointer to the
  // target type's static ops table: under fork() the child shares the
  // parent's address-space layout, so the pointer value itself is a valid
  // type token on the other side of a cross-process wire.
  const void* raw_bytes() const { return storage_; }
  std::size_t raw_size() const { return ops_ != nullptr ? ops_->size : 0; }
  const void* marshal_ops() const { return ops_; }

  // Rehydrates a callable from (marshal_ops, raw_bytes, raw_size) produced
  // by a fork-related process running the same binary. Returns an empty fn
  // on any mismatch (non-trivial target, wrong size) — the caller decides
  // whether that is fatal. A trivially copyable target is an
  // implicit-lifetime type: copying its object representation into
  // suitably aligned storage starts its lifetime.
  static InlineFn adopt_raw(const void* ops, const void* bytes,
                            std::size_t size) {
    InlineFn fn;
    const Ops* o = static_cast<const Ops*>(ops);
    if (o == nullptr || o->heap || !o->trivial || o->size != size ||
        size > sizeof(fn.storage_))
      return fn;
    __builtin_memcpy(fn.storage_, bytes, size);
    fn.ops_ = o;
    return fn;
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(target());
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void* obj, Args&&... args);
    // Move-constructs `from`'s target into `to_storage` (inline targets) or
    // transfers ownership of the heap pointer; leaves `from` destroyed.
    void (*relocate)(void* from_storage, void* to_storage);
    void (*destroy)(void* obj);
    bool heap;
    bool trivial;       // target is trivially copyable + destructible
    std::size_t size;   // sizeof the stored target type
  };

  template <class F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= N && alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <class F>
  struct InlineOps {
    static R invoke(void* obj, Args&&... args) {
      return (*static_cast<F*>(obj))(std::forward<Args>(args)...);
    }
    static void relocate(void* from_storage, void* to_storage) {
      F* from = static_cast<F*>(from_storage);
      ::new (to_storage) F(std::move(*from));
      from->~F();
    }
    static void destroy(void* obj) { static_cast<F*>(obj)->~F(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, /*heap=*/false,
                             /*trivial=*/std::is_trivially_copyable_v<F> &&
                                 std::is_trivially_destructible_v<F>,
                             /*size=*/sizeof(F)};
  };

  template <class F>
  struct HeapOps {
    static R invoke(void* obj, Args&&... args) {
      return (*static_cast<F*>(obj))(std::forward<Args>(args)...);
    }
    static void relocate(void* from_storage, void* to_storage) {
      void* const* from = std::launder(static_cast<void**>(from_storage));
      ::new (to_storage) void*(*from);
    }
    static void destroy(void* obj) { delete static_cast<F*>(obj); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, /*heap=*/true,
                             /*trivial=*/false, /*size=*/sizeof(F)};
  };

  template <class F, class Arg>
  void emplace(Arg&& f) {
    if constexpr (fits_inline<F>()) {
      ::new (static_cast<void*>(storage_)) F(std::forward<Arg>(f));
      ops_ = &InlineOps<F>::ops;
    } else {
      ::new (static_cast<void*>(storage_))
          void*(new F(std::forward<Arg>(f)));
      ops_ = &HeapOps<F>::ops;
    }
  }

  void move_from(InlineFn&& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  void* target() const {
    return ops_->heap ? heap_ptr() : const_cast<std::byte*>(storage_);
  }
  void* heap_ptr() const {
    return *std::launder(
        reinterpret_cast<void* const*>(const_cast<std::byte*>(storage_)));
  }

  alignas(std::max_align_t) std::byte storage_[N < sizeof(void*)
                                                   ? sizeof(void*)
                                                   : N];
  const Ops* ops_ = nullptr;
};

}  // namespace dpa
