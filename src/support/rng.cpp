#include "support/rng.h"

#include <cmath>

namespace dpa {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::next_double() {
  // 53 random bits into [0, 1).
  return double(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

}  // namespace dpa
