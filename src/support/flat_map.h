// Open-addressing hash containers for the runtime's hot lookup structures.
//
// The paper's mapping M (pointer -> waiting threads), the baseline engines'
// software caches, the reliability layer's pending/seen tables and the FM
// fragment-reassembly table are all keyed by a pointer or a small integer
// and live on the per-event hot path. std::unordered_map pays a heap node
// per entry and a pointer chase per probe; FlatMap keeps key/value pairs in
// one power-of-two slot array with linear probing and backward-shift
// deletion (no tombstones), so a probe is one strided scan of contiguous
// memory and clear()/rehash reuse the same allocation.
//
// Deliberate differences from std::unordered_map, relied on by callers:
//   * references and iterators are invalidated by insert AND erase
//     (backward-shift moves slots); the runtime never holds either across
//     a mutation
//   * iteration order is the probe-table order, not insertion order —
//     nothing that affects simulated behavior may iterate these tables
//   * keys and values must be movable; only movability is required
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <tuple>
#include <utility>

namespace dpa {

// Deterministic mixing hash. Heap addresses and sequence numbers are
// regular (aligned / consecutive), which degrades plain modulo hashing into
// long probe runs; one splitmix64 round spreads them. No per-process seed:
// simulated behavior must not depend on it, and keeping it fixed makes any
// accidental order-dependence reproducible instead of flaky.
struct FlatHash {
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::uint64_t operator()(const void* p) const {
    return mix(std::uint64_t(reinterpret_cast<std::uintptr_t>(p)));
  }
  std::uint64_t operator()(std::uint64_t v) const { return mix(v); }
  std::uint64_t operator()(std::uint32_t v) const { return mix(v); }
  std::uint64_t operator()(std::int64_t v) const {
    return mix(std::uint64_t(v));
  }
};

template <class K, class V, class Hash = FlatHash>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;

  FlatMap() = default;

  FlatMap(FlatMap&& other) noexcept { swap(other); }
  FlatMap& operator=(FlatMap&& other) noexcept {
    if (this != &other) {
      free_table();
      swap(other);
    }
    return *this;
  }

  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;

  ~FlatMap() { free_table(); }

  class iterator {
   public:
    iterator() = default;
    value_type& operator*() const { return map_->slots_[idx_]; }
    value_type* operator->() const { return &map_->slots_[idx_]; }
    iterator& operator++() {
      idx_ = map_->next_full(idx_ + 1);
      return *this;
    }
    bool operator==(const iterator& o) const { return idx_ == o.idx_; }
    bool operator!=(const iterator& o) const { return idx_ != o.idx_; }

   private:
    friend class FlatMap;
    iterator(FlatMap* map, std::size_t idx) : map_(map), idx_(idx) {}
    FlatMap* map_ = nullptr;
    std::size_t idx_ = 0;
  };
  using const_iterator = iterator;  // shallow constness, internal container

  iterator begin() { return iterator(this, next_full(0)); }
  iterator end() { return iterator(this, cap_); }
  iterator begin() const {
    return const_cast<FlatMap*>(this)->begin();
  }
  iterator end() const { return const_cast<FlatMap*>(this)->end(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }

  iterator find(const K& key) {
    if (size_ == 0) return end();
    const std::size_t idx = probe(key);
    return full_[idx] ? iterator(this, idx) : end();
  }
  iterator find(const K& key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  std::size_t count(const K& key) const { return find(key) != end() ? 1 : 0; }
  bool contains(const K& key) const { return count(key) != 0; }

  template <class... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    reserve_for_insert();
    const std::size_t idx = probe(key);
    if (full_[idx]) return {iterator(this, idx), false};
    ::new (static_cast<void*>(slots_ + idx)) value_type(
        std::piecewise_construct, std::forward_as_tuple(key),
        std::forward_as_tuple(std::forward<Args>(args)...));
    full_[idx] = 1;
    ++size_;
    return {iterator(this, idx), true};
  }

  template <class VV>
  std::pair<iterator, bool> emplace(const K& key, VV&& value) {
    auto [it, inserted] = try_emplace(key, std::forward<VV>(value));
    return {it, inserted};
  }

  std::pair<iterator, bool> insert(value_type kv) {
    return try_emplace(kv.first, std::move(kv.second));
  }

  V& operator[](const K& key) { return try_emplace(key).first->second; }

  std::size_t erase(const K& key) {
    if (size_ == 0) return 0;
    const std::size_t idx = probe(key);
    if (!full_[idx]) return 0;
    erase_slot(idx);
    return 1;
  }

  void clear() {
    if (size_ == 0) return;
    for (std::size_t i = 0; i < cap_; ++i) {
      if (full_[i]) {
        slots_[i].~value_type();
        full_[i] = 0;
      }
    }
    size_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    // Grow until n fits under the 3/4 load ceiling.
    while (want - want / 4 < n) want *= 2;
    if (want > cap_) rehash(want);
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  std::size_t mask() const { return cap_ - 1; }
  std::size_t ideal(const K& key) const {
    return std::size_t(Hash{}(key)) & mask();
  }

  // First slot holding `key`, or the empty slot where it would go.
  std::size_t probe(const K& key) const {
    std::size_t i = ideal(key);
    while (full_[i] && !(slots_[i].first == key)) i = (i + 1) & mask();
    return i;
  }

  std::size_t next_full(std::size_t i) const {
    while (i < cap_ && !full_[i]) ++i;
    return i;
  }

  void reserve_for_insert() {
    if (cap_ == 0) {
      rehash(kMinCapacity);
    } else if (size_ + 1 > cap_ - cap_ / 4) {  // load factor 3/4
      rehash(cap_ * 2);
    }
  }

  void rehash(std::size_t new_cap) {
    value_type* old_slots = slots_;
    std::uint8_t* old_full = full_;
    const std::size_t old_cap = cap_;

    slots_ = static_cast<value_type*>(
        ::operator new(new_cap * sizeof(value_type)));
    full_ = static_cast<std::uint8_t*>(::operator new(new_cap));
    cap_ = new_cap;
    for (std::size_t i = 0; i < new_cap; ++i) full_[i] = 0;

    for (std::size_t i = 0; i < old_cap; ++i) {
      if (!old_full[i]) continue;
      std::size_t j = ideal(old_slots[i].first);
      while (full_[j]) j = (j + 1) & mask();
      ::new (static_cast<void*>(slots_ + j))
          value_type(std::move(old_slots[i]));
      full_[j] = 1;
      old_slots[i].~value_type();
    }
    if (old_slots != nullptr) {
      ::operator delete(old_slots);
      ::operator delete(old_full);
    }
  }

  // Backward-shift deletion: pull every displaced successor in the probe
  // run one slot back, so lookups never need tombstones.
  void erase_slot(std::size_t hole) {
    std::size_t j = hole;
    while (true) {
      j = (j + 1) & mask();
      if (!full_[j]) break;
      const std::size_t home = ideal(slots_[j].first);
      // `j` can fill the hole iff its home position lies cyclically at or
      // before the hole (i.e. the probe run from home passes through it).
      if (((j - home) & mask()) >= ((j - hole) & mask())) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
    }
    slots_[hole].~value_type();
    full_[hole] = 0;
    --size_;
  }

  void free_table() {
    clear();
    if (slots_ != nullptr) {
      ::operator delete(slots_);
      ::operator delete(full_);
      slots_ = nullptr;
      full_ = nullptr;
      cap_ = 0;
    }
  }

  void swap(FlatMap& other) {
    std::swap(slots_, other.slots_);
    std::swap(full_, other.full_);
    std::swap(cap_, other.cap_);
    std::swap(size_, other.size_);
  }

  value_type* slots_ = nullptr;
  std::uint8_t* full_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;
};

// FlatMap with no mapped values: the runtime's membership sets (prefetch
// cache / in-flight tables, reliability-layer delivered-sequence sets).
template <class K, class Hash = FlatHash>
class FlatSet {
  struct Unit {};

 public:
  using iterator = typename FlatMap<K, Unit, Hash>::iterator;

  iterator begin() const { return map_.begin(); }
  iterator end() const { return map_.end(); }

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  std::pair<iterator, bool> insert(const K& key) {
    return map_.try_emplace(key);
  }
  std::size_t count(const K& key) const { return map_.count(key); }
  bool contains(const K& key) const { return map_.contains(key); }
  std::size_t erase(const K& key) { return map_.erase(key); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

 private:
  FlatMap<K, Unit, Hash> map_;
};

}  // namespace dpa
