// Assertion and panic helpers used throughout the DPA libraries.
//
// DPA_CHECK is always on (simulation correctness depends on invariants that
// must hold in release builds too); DPA_DCHECK compiles out in NDEBUG builds
// and is used on hot paths.
#pragma once

#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

namespace dpa {

// Prints a diagnostic to stderr and aborts. Never returns.
[[noreturn]] void panic(std::string_view file, int line, std::string_view msg);

namespace detail {

// Builds the failure message lazily so the happy path stays cheap.
struct CheckStream {
  std::ostringstream os;
  const char* file;
  int line;

  CheckStream(const char* f, int l, const char* expr) : file(f), line(l) {
    os << "check failed: " << expr;
  }
  template <class T>
  CheckStream& operator<<(const T& v) {
    os << v;
    return *this;
  }
  [[noreturn]] ~CheckStream() { panic(file, line, os.str()); }
};

}  // namespace detail

}  // namespace dpa

#define DPA_CHECK(cond)                                       \
  if (cond) {                                                 \
  } else                                                      \
    ::dpa::detail::CheckStream(__FILE__, __LINE__, #cond) << " "

#define DPA_PANIC(msg)                                        \
  ::dpa::panic(__FILE__, __LINE__, (std::ostringstream() << msg).str())

#ifdef NDEBUG
#define DPA_DCHECK(cond) \
  if (true) {            \
  } else                 \
    ::dpa::detail::CheckStream(__FILE__, __LINE__, #cond) << " "
#else
#define DPA_DCHECK(cond) DPA_CHECK(cond)
#endif
