// Per-phase arena (bump) allocator.
//
// A simulated phase creates and retires millions of short-lived runtime
// objects — suspended-thread queue entries, ready lists, scheduler
// bookkeeping — whose lifetimes all end when the phase's engines are torn
// down. Arena carves them out of reusable chunks: allocation is a pointer
// bump, and reset() recycles every chunk for the next phase instead of
// returning pages to the heap. PhaseRunner owns one arena, resets it between
// phases, and hands it to the engines it builds; the engines back their
// queues with ArenaAllocator.
//
// recycle() feeds freed blocks into per-size free lists (threaded through
// the freed memory itself), so deque-style containers that allocate and
// free fixed-size node blocks all phase long reuse the same few blocks
// instead of bumping fresh memory per node — arena footprint tracks *peak*
// container size, not total throughput.
//
// Invariant (enforced by usage, asserted in PhaseRunner): reset() may only
// run when no container built on this arena is alive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "support/assert.h"

namespace dpa {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t bytes, std::size_t align) {
    DPA_DCHECK(align != 0 && (align & (align - 1)) == 0)
        << "alignment must be a power of two";
    bytes_requested_ += bytes;
    if (bytes >= sizeof(void*)) {
      for (Bucket& b : free_) {
        // Reuse only if the block also satisfies this request's alignment
        // (same-size blocks from differently-aligned types are rare).
        if (b.bytes == bytes && b.head != nullptr &&
            (reinterpret_cast<std::uintptr_t>(b.head) & (align - 1)) == 0) {
          void* p = b.head;
          b.head = *static_cast<void**>(p);
          return p;
        }
      }
    }
    while (cur_ < chunks_.size()) {
      if (void* p = chunk_alloc(chunks_[cur_], bytes, align)) return p;
      // This chunk is exhausted for a request of this size; move on (its
      // tail is wasted until the next reset).
      ++cur_;
    }
    const std::size_t size =
        bytes + align > chunk_bytes_ ? bytes + align : chunk_bytes_;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size, 0});
    cur_ = chunks_.size() - 1;
    void* p = chunk_alloc(chunks_.back(), bytes, align);
    DPA_DCHECK(p != nullptr);
    return p;
  }

  // Returns a block previously handed out by allocate(bytes, ...) to a
  // per-size free list. Blocks too small or insufficiently aligned to hold
  // the intrusive next-pointer are simply abandoned until reset().
  void recycle(void* p, std::size_t bytes) {
    if (p == nullptr || bytes < sizeof(void*)) return;
    if ((reinterpret_cast<std::uintptr_t>(p) & (alignof(void*) - 1)) != 0)
      return;
    for (Bucket& b : free_) {
      if (b.bytes == bytes) {
        *static_cast<void**>(p) = b.head;
        b.head = p;
        return;
      }
    }
    *static_cast<void**>(p) = nullptr;
    free_.push_back(Bucket{bytes, p});
  }

  // Recycles every chunk. All objects previously allocated from this arena
  // must already be dead.
  void reset() {
    for (Chunk& c : chunks_) c.used = 0;
    free_.clear();
    cur_ = 0;
    bytes_requested_ = 0;
  }

  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }
  std::size_t bytes_requested() const { return bytes_requested_; }
  std::size_t num_chunks() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static std::size_t align_up(std::size_t v, std::size_t align) {
    return (v + align - 1) & ~(align - 1);
  }

  // Bump-allocates from `c`, aligning relative to the chunk's base address;
  // null if the chunk cannot fit the request.
  static void* chunk_alloc(Chunk& c, std::size_t bytes, std::size_t align) {
    const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
    const std::size_t at = align_up(base + c.used, align) - base;
    if (at + bytes > c.size) return nullptr;
    c.used = at + bytes;
    return c.data.get() + at;
  }

  // Free list of recycled blocks of one exact size, threaded through the
  // blocks themselves. The set of distinct sizes is tiny in practice (deque
  // node blocks plus a few map arrays), so linear search is fine.
  struct Bucket {
    std::size_t bytes = 0;
    void* head = nullptr;
  };

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::vector<Bucket> free_;
  std::size_t cur_ = 0;
  std::size_t bytes_requested_ = 0;
};

// Standard-allocator adapter over Arena for STL containers. Deallocation
// recycles the block into the arena's free list; memory is reclaimed
// wholesale by Arena::reset().
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}

  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) { arena_->recycle(p, n * sizeof(T)); }

  Arena* arena() const { return arena_; }

  template <class U>
  bool operator==(const ArenaAllocator<U>& o) const {
    return arena_ == o.arena();
  }
  template <class U>
  bool operator!=(const ArenaAllocator<U>& o) const {
    return arena_ != o.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace dpa
