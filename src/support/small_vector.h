// A minimal small-buffer-optimized vector.
//
// The runtime's pointer->threads map M holds, for most pointers, only a
// handful of waiting threads; SmallVector keeps those inline and only heap
// allocates past the inline capacity. Trivially a subset of std::vector's
// interface — just what the runtime needs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "support/assert.h"

namespace dpa {

template <class T, std::size_t N>
class SmallVector {
  static_assert(N > 0, "inline capacity must be positive");

 public:
  SmallVector() = default;

  SmallVector(const SmallVector& other) { append_all(other); }
  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      append_all(other);
    }
    return *this;
  }

  SmallVector(SmallVector&& other) noexcept { move_from(std::move(other)); }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { destroy(); }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <class... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow();
    T* slot = data() + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    DPA_DCHECK(size_ > 0);
    data()[--size_].~T();
  }

  void clear() {
    T* d = data();
    for (std::size_t i = 0; i < size_; ++i) d[i].~T();
    size_ = 0;
  }

  T* data() { return heap_ ? heap_ : inline_data(); }
  const T* data() const { return heap_ ? heap_ : inline_data(); }

  T& operator[](std::size_t i) {
    DPA_DCHECK(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    DPA_DCHECK(i < size_);
    return data()[i];
  }

  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }
  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }
  bool is_inline() const { return heap_ == nullptr; }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

 private:
  T* inline_data() { return std::launder(reinterpret_cast<T*>(storage_)); }
  const T* inline_data() const {
    return std::launder(reinterpret_cast<const T*>(storage_));
  }

  void grow() {
    const std::size_t new_cap = capacity_ * 2;
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    T* d = data();
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(d[i]));
      d[i].~T();
    }
    if (heap_) ::operator delete(heap_);
    heap_ = fresh;
    capacity_ = new_cap;
  }

  void destroy() {
    clear();
    if (heap_) {
      ::operator delete(heap_);
      heap_ = nullptr;
      capacity_ = N;
    }
  }

  void append_all(const SmallVector& other) {
    for (const T& v : other) push_back(v);
  }

  void move_from(SmallVector&& other) {
    if (other.heap_) {
      heap_ = other.heap_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.heap_ = nullptr;
      other.size_ = 0;
      other.capacity_ = N;
    } else {
      heap_ = nullptr;
      size_ = 0;
      capacity_ = N;
      for (T& v : other) push_back(std::move(v));
      other.clear();
    }
  }

  alignas(T) unsigned char storage_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace dpa
