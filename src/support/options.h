// Tiny command-line option parser for the bench/example binaries.
//
// Supports --name=value and --flag forms plus a generated --help. We keep
// this in-tree (rather than depending on a flags library) so every bench
// binary stays a single self-contained executable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dpa {

class Options {
 public:
  // Registration: each returns *this for chaining. `doc` appears in --help.
  Options& flag(std::string name, bool* out, std::string doc);
  Options& i64(std::string name, std::int64_t* out, std::string doc);
  Options& u64(std::string name, std::uint64_t* out, std::string doc);
  Options& f64(std::string name, double* out, std::string doc);
  Options& str(std::string name, std::string* out, std::string doc);

  // Parses argv. On --help prints usage and returns false (caller exits 0).
  // Unknown options are a hard error (panic) — bench configs must not be
  // silently misspelled.
  bool parse(int argc, char** argv) const;

  std::string usage(const std::string& prog) const;

 private:
  struct Opt {
    std::string name;
    std::string doc;
    std::string kind;
    std::function<void(const std::string&)> set;
    std::function<std::string()> show;
  };
  std::vector<Opt> opts_;
};

}  // namespace dpa
