#include "support/table.h"

#include <cstdio>
#include <sstream>

namespace dpa {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, 100.0 * v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c] + 2; ++pad)
        os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace dpa
