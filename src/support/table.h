// Fixed-width table printer for bench harness output.
//
// All experiment binaries print the rows/series of the paper artifact they
// regenerate; this keeps the formatting consistent and greppable.
#pragma once

#include <string>
#include <vector>

namespace dpa {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Row cells; pads/truncates to header width.
  void add_row(std::vector<std::string> cells);

  // Convenience cell formatters.
  static std::string num(double v, int precision = 2);
  static std::string pct(double v, int precision = 1);

  std::string to_string() const;
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dpa
