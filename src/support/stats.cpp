#include "support/stats.h"

#include <cmath>
#include <sstream>

#include "support/assert.h"

namespace dpa {

void Accumulator::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double Accumulator::variance() const {
  return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const std::uint64_t n = n_ + other.n_;
  const double delta = other.mean_ - mean_;
  const double mean =
      mean_ + delta * double(other.n_) / double(n);
  m2_ = m2_ + other.m2_ +
        delta * delta * double(n_) * double(other.n_) / double(n);
  mean_ = mean;
  n_ = n;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

void Pow2Histogram::add(std::uint64_t v) {
  std::size_t b = 0;
  while ((1ull << b) < v && b < 63) ++b;
  if (buckets_.size() <= b) buckets_.resize(b + 1, 0);
  ++buckets_[b];
  ++total_;
}

void Pow2Histogram::merge(const Pow2Histogram& other) {
  if (other.total_ == 0) return;
  if (buckets_.size() < other.buckets_.size())
    buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  total_ += other.total_;
}

std::uint64_t Pow2Histogram::quantile_bound(double q) const {
  DPA_CHECK(q >= 0.0 && q <= 1.0) << "quantile out of range: " << q;
  if (total_ == 0) return 0;
  const auto want = std::uint64_t(q * double(total_));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= want) return 1ull << i;
  }
  return 1ull << (buckets_.size() - 1);
}

std::string Pow2Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    os << "[<=" << (1ull << i) << "]=" << buckets_[i] << " ";
  }
  return os.str();
}

void Gauge::add(std::int64_t delta) {
  current_ += delta;
  if (current_ > high_) high_ = current_;
}

void Gauge::set(std::int64_t v) {
  current_ = v;
  if (current_ > high_) high_ = current_;
}

}  // namespace dpa
