// Minimal streaming JSON writer for machine-readable bench output.
//
// Scope-based: `obj()`/`arr()` return RAII scopes; `field(...)` writes a
// key/value inside an object, `value(...)` appends inside an array. The
// writer validates nesting (writing a bare value inside an object dies).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace dpa {

class JsonWriter {
 public:
  // Default float formatting (6 significant digits) silently rounds large
  // values such as nanosecond-scale timestamps; 15 digits round-trips any
  // integer-valued double the writer will see.
  JsonWriter() { out_.precision(15); }

  class Scope {
   public:
    Scope(Scope&& other) noexcept : w_(other.w_) { other.w_ = nullptr; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope& operator=(Scope&&) = delete;
    ~Scope();

   private:
    friend class JsonWriter;
    explicit Scope(JsonWriter* w) : w_(w) {}
    JsonWriter* w_;
  };

  // Top-level or nested containers.
  Scope obj();
  Scope arr();
  Scope obj(std::string_view key);  // keyed container inside an object
  Scope arr(std::string_view key);

  // Keyed values inside an object.
  JsonWriter& field(std::string_view key, std::string_view v);
  JsonWriter& field(std::string_view key, const char* v) {
    return field(key, std::string_view(v));
  }
  JsonWriter& field(std::string_view key, double v);
  JsonWriter& field(std::string_view key, std::int64_t v);
  JsonWriter& field(std::string_view key, std::uint64_t v);
  JsonWriter& field(std::string_view key, bool v);

  // Bare values inside an array.
  JsonWriter& value(std::string_view v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);

  // The finished document (all scopes must be closed).
  std::string str() const;

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void comma();
  void key(std::string_view k);
  void quote(std::string_view s);
  void close_frame();

  std::ostringstream out_;
  std::vector<Frame> frames_;
  std::vector<bool> has_items_;
};

}  // namespace dpa
