// Minimal JSON support for machine-readable bench output.
//
// Writer: scope-based streaming. `obj()`/`arr()` return RAII scopes;
// `field(...)` writes a key/value inside an object, `value(...)` appends
// inside an array. The writer validates nesting (writing a bare value
// inside an object dies).
//
// Reader: `json_parse` is a strict recursive-descent parser into a small
// `JsonValue` DOM — used by the golden-regression checker and the fuzz
// tests. It never dies on malformed input; errors come back as a message
// with a byte offset. `json_dump` re-serializes a DOM deterministically
// (object order preserved, shortest-round-trip number formatting), so
// dump(parse(dump(x))) == dump(x).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace dpa {

class JsonWriter {
 public:
  // Default float formatting (6 significant digits) silently rounds large
  // values such as nanosecond-scale timestamps; 15 digits round-trips any
  // integer-valued double the writer will see.
  JsonWriter() { out_.precision(15); }

  class Scope {
   public:
    Scope(Scope&& other) noexcept : w_(other.w_) { other.w_ = nullptr; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope& operator=(Scope&&) = delete;
    ~Scope();

   private:
    friend class JsonWriter;
    explicit Scope(JsonWriter* w) : w_(w) {}
    JsonWriter* w_;
  };

  // Top-level or nested containers.
  Scope obj();
  Scope arr();
  Scope obj(std::string_view key);  // keyed container inside an object
  Scope arr(std::string_view key);

  // Keyed values inside an object.
  JsonWriter& field(std::string_view key, std::string_view v);
  JsonWriter& field(std::string_view key, const char* v) {
    return field(key, std::string_view(v));
  }
  JsonWriter& field(std::string_view key, double v);
  JsonWriter& field(std::string_view key, std::int64_t v);
  JsonWriter& field(std::string_view key, std::uint64_t v);
  JsonWriter& field(std::string_view key, bool v);

  // Bare values inside an array.
  JsonWriter& value(std::string_view v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);

  // The finished document (all scopes must be closed).
  std::string str() const;

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void comma();
  void key(std::string_view k);
  void quote(std::string_view s);
  void close_frame();

  std::ostringstream out_;
  std::vector<Frame> frames_;
  std::vector<bool> has_items_;
};

// Parsed JSON document. Objects preserve insertion order (and tolerate
// duplicate keys — find() returns the first); numbers are doubles, so
// integers beyond 2^53 lose precision, which the counters and timings
// written by this repo never reach in practice.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}  // NOLINT(runtime/explicit)
  JsonValue(bool b) : v_(b) {}                // NOLINT(runtime/explicit)
  JsonValue(double d) : v_(d) {}              // NOLINT(runtime/explicit)
  JsonValue(std::string s) : v_(std::move(s)) {}  // NOLINT(runtime/explicit)
  JsonValue(const char* s) : v_(std::string(s)) {}  // NOLINT
  JsonValue(Array a) : v_(std::move(a)) {}    // NOLINT(runtime/explicit)
  JsonValue(Object o) : v_(std::move(o)) {}   // NOLINT(runtime/explicit)

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  double as_number() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Array& as_array() const { return std::get<Array>(v_); }
  const Object& as_object() const { return std::get<Object>(v_); }
  Array& as_array() { return std::get<Array>(v_); }
  Object& as_object() { return std::get<Object>(v_); }

  // First value under `key` in an object, or nullptr when absent (or when
  // this value is not an object).
  const JsonValue* find(std::string_view key) const;

  bool operator==(const JsonValue& other) const { return v_ == other.v_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

// Outcome of json_parse: either a value, or an error message carrying the
// byte offset where parsing failed.
struct JsonParseResult {
  std::optional<JsonValue> value;
  std::string error;  // empty iff value.has_value()

  explicit operator bool() const { return value.has_value(); }
};

// Strict parse of exactly one JSON document (trailing whitespace allowed,
// trailing garbage is an error). Rejects: comments, trailing commas,
// unquoted keys, NaN/Infinity literals, raw control characters in strings,
// lone UTF-16 surrogates, and nesting deeper than `max_depth`.
JsonParseResult json_parse(std::string_view text, std::size_t max_depth = 256);

// Deterministic serialization of a DOM (no added whitespace). Numbers use
// shortest-round-trip formatting; integral values in the int64 range print
// without an exponent or decimal point.
std::string json_dump(const JsonValue& v);

}  // namespace dpa
