// Deterministic random number generation.
//
// All stochastic pieces of the reproduction (Plummer model, graph wiring,
// property-test inputs) draw from these generators so runs are reproducible
// from a single seed. xoshiro256** is the workhorse; SplitMix64 seeds it.
#pragma once

#include <cstdint>

namespace dpa {

// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality, deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x8523fadebeefull);

  std::uint64_t next_u64();

  // Uniform in [0, n).
  std::uint64_t next_below(std::uint64_t n);

  // Uniform in [0, 1).
  double next_double();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Standard normal via Box-Muller (caches the second deviate).
  double normal();

  // True with probability p.
  bool chance(double p) { return next_double() < p; }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace dpa
