#include "support/json.h"

#include <cmath>

#include "support/assert.h"

namespace dpa {

JsonWriter::Scope::~Scope() {
  if (w_ != nullptr) w_->close_frame();
}

void JsonWriter::comma() {
  if (!frames_.empty() && has_items_.back()) out_ << ',';
  if (!has_items_.empty()) has_items_.back() = true;
}

void JsonWriter::quote(std::string_view s) {
  out_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out_ << "\\\"";
        break;
      case '\\':
        out_ << "\\\\";
        break;
      case '\n':
        out_ << "\\n";
        break;
      case '\t':
        out_ << "\\t";
        break;
      default:
        out_ << c;
    }
  }
  out_ << '"';
}

void JsonWriter::key(std::string_view k) {
  DPA_CHECK(!frames_.empty() && frames_.back() == Frame::kObject)
      << "keyed write outside an object";
  comma();
  quote(k);
  out_ << ':';
}

JsonWriter::Scope JsonWriter::obj() {
  if (!frames_.empty()) {
    DPA_CHECK(frames_.back() == Frame::kArray)
        << "unkeyed object inside an object";
    comma();
  }
  out_ << '{';
  frames_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return Scope(this);
}

JsonWriter::Scope JsonWriter::arr() {
  if (!frames_.empty()) {
    DPA_CHECK(frames_.back() == Frame::kArray)
        << "unkeyed array inside an object";
    comma();
  }
  out_ << '[';
  frames_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return Scope(this);
}

JsonWriter::Scope JsonWriter::obj(std::string_view k) {
  key(k);
  out_ << '{';
  frames_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return Scope(this);
}

JsonWriter::Scope JsonWriter::arr(std::string_view k) {
  key(k);
  out_ << '[';
  frames_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return Scope(this);
}

void JsonWriter::close_frame() {
  DPA_CHECK(!frames_.empty());
  out_ << (frames_.back() == Frame::kObject ? '}' : ']');
  frames_.pop_back();
  has_items_.pop_back();
}

JsonWriter& JsonWriter::field(std::string_view k, std::string_view v) {
  key(k);
  quote(v);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, double v) {
  key(k);
  DPA_CHECK(std::isfinite(v)) << "non-finite JSON number for key " << k;
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::int64_t v) {
  key(k);
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::uint64_t v) {
  key(k);
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, bool v) {
  key(k);
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  DPA_CHECK(!frames_.empty() && frames_.back() == Frame::kArray)
      << "bare value outside an array";
  comma();
  quote(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  DPA_CHECK(!frames_.empty() && frames_.back() == Frame::kArray)
      << "bare value outside an array";
  DPA_CHECK(std::isfinite(v));
  comma();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  DPA_CHECK(!frames_.empty() && frames_.back() == Frame::kArray)
      << "bare value outside an array";
  comma();
  out_ << v;
  return *this;
}

std::string JsonWriter::str() const {
  DPA_CHECK(frames_.empty()) << "unclosed JSON scopes";
  return out_.str();
}

}  // namespace dpa
