#include "support/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "support/assert.h"

namespace dpa {

JsonWriter::Scope::~Scope() {
  if (w_ != nullptr) w_->close_frame();
}

void JsonWriter::comma() {
  if (!frames_.empty() && has_items_.back()) out_ << ',';
  if (!has_items_.empty()) has_items_.back() = true;
}

void JsonWriter::quote(std::string_view s) {
  // Mirrors dump_string(): every control character must leave as an escape,
  // or json_parse (and any strict reader) rejects the writer's own output.
  out_ << '"';
  for (const unsigned char c : s) {
    switch (c) {
      case '"':
        out_ << "\\\"";
        break;
      case '\\':
        out_ << "\\\\";
        break;
      case '\b':
        out_ << "\\b";
        break;
      case '\f':
        out_ << "\\f";
        break;
      case '\n':
        out_ << "\\n";
        break;
      case '\r':
        out_ << "\\r";
        break;
      case '\t':
        out_ << "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ << buf;
        } else {
          out_ << char(c);
        }
    }
  }
  out_ << '"';
}

void JsonWriter::key(std::string_view k) {
  DPA_CHECK(!frames_.empty() && frames_.back() == Frame::kObject)
      << "keyed write outside an object";
  comma();
  quote(k);
  out_ << ':';
}

JsonWriter::Scope JsonWriter::obj() {
  if (!frames_.empty()) {
    DPA_CHECK(frames_.back() == Frame::kArray)
        << "unkeyed object inside an object";
    comma();
  }
  out_ << '{';
  frames_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return Scope(this);
}

JsonWriter::Scope JsonWriter::arr() {
  if (!frames_.empty()) {
    DPA_CHECK(frames_.back() == Frame::kArray)
        << "unkeyed array inside an object";
    comma();
  }
  out_ << '[';
  frames_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return Scope(this);
}

JsonWriter::Scope JsonWriter::obj(std::string_view k) {
  key(k);
  out_ << '{';
  frames_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return Scope(this);
}

JsonWriter::Scope JsonWriter::arr(std::string_view k) {
  key(k);
  out_ << '[';
  frames_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return Scope(this);
}

void JsonWriter::close_frame() {
  DPA_CHECK(!frames_.empty());
  out_ << (frames_.back() == Frame::kObject ? '}' : ']');
  frames_.pop_back();
  has_items_.pop_back();
}

JsonWriter& JsonWriter::field(std::string_view k, std::string_view v) {
  key(k);
  quote(v);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, double v) {
  key(k);
  DPA_CHECK(std::isfinite(v)) << "non-finite JSON number for key " << k;
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::int64_t v) {
  key(k);
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::uint64_t v) {
  key(k);
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, bool v) {
  key(k);
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  DPA_CHECK(!frames_.empty() && frames_.back() == Frame::kArray)
      << "bare value outside an array";
  comma();
  quote(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  DPA_CHECK(!frames_.empty() && frames_.back() == Frame::kArray)
      << "bare value outside an array";
  DPA_CHECK(std::isfinite(v));
  comma();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  DPA_CHECK(!frames_.empty() && frames_.back() == Frame::kArray)
      << "bare value outside an array";
  comma();
  out_ << v;
  return *this;
}

std::string JsonWriter::str() const {
  DPA_CHECK(frames_.empty()) << "unclosed JSON scopes";
  return out_.str();
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object())
    if (k == key) return &v;
  return nullptr;
}

namespace {

// Recursive-descent parser. Every path either produces a value or records
// an error (message + byte offset) and unwinds; nothing throws, nothing
// reads past end(), so arbitrary byte soup is safe to feed in.
class JsonParser {
 public:
  JsonParser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonParseResult run() {
    JsonValue v;
    if (!parse_value(&v, 0)) return make_error();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after the document");
      return make_error();
    }
    JsonParseResult ok;
    ok.value = std::move(v);
    return ok;
  }

 private:
  bool parse_value(JsonValue* out, std::size_t depth) {
    if (depth > max_depth_) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        *out = JsonValue(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        *out = JsonValue(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        *out = JsonValue(nullptr);
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out, std::size_t depth) {
    ++pos_;  // '{'
    JsonValue::Object obj;
    skip_ws();
    if (peek('}')) {
      ++pos_;
      *out = JsonValue(std::move(obj));
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected a quoted object key");
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!peek(':')) return fail("expected ':' after object key");
      ++pos_;
      JsonValue v;
      if (!parse_value(&v, depth + 1)) return false;
      obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (peek(',')) {
        ++pos_;
        continue;
      }
      if (peek('}')) {
        ++pos_;
        *out = JsonValue(std::move(obj));
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue* out, std::size_t depth) {
    ++pos_;  // '['
    JsonValue::Array arr;
    skip_ws();
    if (peek(']')) {
      ++pos_;
      *out = JsonValue(std::move(arr));
      return true;
    }
    while (true) {
      JsonValue v;
      if (!parse_value(&v, depth + 1)) return false;
      arr.push_back(std::move(v));
      skip_ws();
      if (peek(',')) {
        ++pos_;
        continue;
      }
      if (peek(']')) {
        ++pos_;
        *out = JsonValue(std::move(arr));
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening '"'
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const unsigned char c = (unsigned char)text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out->push_back(char(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) return fail("unterminated escape");
      switch (text_[pos_]) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(&cp)) return false;
          if (cp >= 0xDC00 && cp <= 0xDFFF)
            return fail("lone low surrogate");
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if (pos_ + 2 >= text_.size() || text_[pos_ + 1] != '\\' ||
                text_[pos_ + 2] != 'u')
              return fail("high surrogate not followed by \\u escape");
            pos_ += 2;
            std::uint32_t lo = 0;
            if (!parse_hex4(&lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF)
              return fail("high surrogate not followed by low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("unknown escape character");
      }
      ++pos_;
    }
  }

  // Consumes the 4 hex digits after "\u", leaving pos_ on the last digit
  // (the string loop's ++pos_ steps past it, matching single-char escapes).
  bool parse_hex4(std::uint32_t* out) {
    if (pos_ + 4 >= text_.size()) return fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 1; i <= 4; ++i) {
      const char c = text_[pos_ + i];
      std::uint32_t d = 0;
      if (c >= '0' && c <= '9') d = std::uint32_t(c - '0');
      else if (c >= 'a' && c <= 'f') d = std::uint32_t(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') d = std::uint32_t(c - 'A' + 10);
      else return fail("bad hex digit in \\u escape");
      v = (v << 4) | d;
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  static void append_utf8(std::string* out, std::uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(char(cp));
    } else if (cp < 0x800) {
      out->push_back(char(0xC0 | (cp >> 6)));
      out->push_back(char(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(char(0xE0 | (cp >> 12)));
      out->push_back(char(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(char(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(char(0xF0 | (cp >> 18)));
      out->push_back(char(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(char(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(char(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_number(JsonValue* out) {
    // Validate the JSON number grammar by hand (from_chars is laxer: it
    // accepts "inf"/"nan" and leading '+'), then convert the vetted span.
    const std::size_t start = pos_;
    if (peek('-')) ++pos_;
    if (pos_ >= text_.size() || !is_digit(text_[pos_]))
      return fail_at(start, "invalid value");
    if (text_[pos_] == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !is_digit(text_[pos_]))
        return fail("digit required after decimal point");
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() || !is_digit(text_[pos_]))
        return fail("digit required in exponent");
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    double v = 0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (ec != std::errc() || end != text_.data() + pos_)
      return fail_at(start, "number out of double range");
    *out = JsonValue(v);
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("invalid value");
    pos_ += word.size();
    return true;
  }

  static bool is_digit(char c) { return c >= '0' && c <= '9'; }
  bool peek(char c) const { return pos_ < text_.size() && text_[pos_] == c; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool fail(std::string_view msg) { return fail_at(pos_, msg); }

  bool fail_at(std::size_t off, std::string_view msg) {
    if (error_.empty()) {  // keep the innermost (first) failure
      error_offset_ = off;
      error_ = msg;
    }
    return false;
  }

  JsonParseResult make_error() {
    JsonParseResult r;
    r.error = "offset " + std::to_string(error_offset_) + ": " + error_;
    return r;
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
  std::string error_;
  std::size_t error_offset_ = 0;
};

void dump_string(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const unsigned char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(char(c));
        }
    }
  }
  out->push_back('"');
}

void dump_value(std::string* out, const JsonValue& v) {
  if (v.is_null()) {
    *out += "null";
  } else if (v.is_bool()) {
    *out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    const double d = v.as_number();
    char buf[32];
    // Integral doubles print as integers (matches what the writer emits
    // for counters); everything else uses shortest-round-trip form.
    if (d == std::floor(d) && std::abs(d) < 9.2e18) {
      const auto n = std::int64_t(d);
      const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), n);
      (void)ec;
      out->append(buf, p);
    } else {
      const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), d);
      (void)ec;
      out->append(buf, p);
    }
  } else if (v.is_string()) {
    dump_string(out, v.as_string());
  } else if (v.is_array()) {
    out->push_back('[');
    bool first = true;
    for (const auto& e : v.as_array()) {
      if (!first) out->push_back(',');
      first = false;
      dump_value(out, e);
    }
    out->push_back(']');
  } else {
    out->push_back('{');
    bool first = true;
    for (const auto& [k, e] : v.as_object()) {
      if (!first) out->push_back(',');
      first = false;
      dump_string(out, k);
      out->push_back(':');
      dump_value(out, e);
    }
    out->push_back('}');
  }
}

}  // namespace

JsonParseResult json_parse(std::string_view text, std::size_t max_depth) {
  return JsonParser(text, max_depth).run();
}

std::string json_dump(const JsonValue& v) {
  std::string out;
  dump_value(&out, v);
  return out;
}

}  // namespace dpa
