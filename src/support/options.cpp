#include "support/options.h"

#include <cstdio>
#include <sstream>

#include "support/assert.h"

namespace dpa {

namespace {
std::int64_t parse_i64(const std::string& s) {
  std::size_t pos = 0;
  std::int64_t v = 0;
  try {
    v = std::stoll(s, &pos);
  } catch (const std::exception&) {
    DPA_PANIC("bad integer: '" << s << "'");
  }
  DPA_CHECK(pos == s.size()) << "bad integer: '" << s << "'";
  return v;
}
double parse_f64(const std::string& s) {
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    DPA_PANIC("bad number: '" << s << "'");
  }
  DPA_CHECK(pos == s.size()) << "bad number: '" << s << "'";
  return v;
}
}  // namespace

Options& Options::flag(std::string name, bool* out, std::string doc) {
  opts_.push_back({std::move(name), std::move(doc), "bool",
                   [out](const std::string& v) {
                     DPA_CHECK(v.empty() || v == "true" || v == "false" ||
                               v == "0" || v == "1")
                         << "bad bool: '" << v << "'";
                     *out = v.empty() || v == "true" || v == "1";
                   },
                   [out] { return std::string(*out ? "true" : "false"); }});
  return *this;
}

Options& Options::i64(std::string name, std::int64_t* out, std::string doc) {
  opts_.push_back({std::move(name), std::move(doc), "int",
                   [out](const std::string& v) { *out = parse_i64(v); },
                   [out] { return std::to_string(*out); }});
  return *this;
}

Options& Options::u64(std::string name, std::uint64_t* out, std::string doc) {
  opts_.push_back({std::move(name), std::move(doc), "uint",
                   [out](const std::string& v) {
                     const std::int64_t x = parse_i64(v);
                     DPA_CHECK(x >= 0) << "negative value for uint: " << x;
                     *out = std::uint64_t(x);
                   },
                   [out] { return std::to_string(*out); }});
  return *this;
}

Options& Options::f64(std::string name, double* out, std::string doc) {
  opts_.push_back({std::move(name), std::move(doc), "float",
                   [out](const std::string& v) { *out = parse_f64(v); },
                   [out] { return std::to_string(*out); }});
  return *this;
}

Options& Options::str(std::string name, std::string* out, std::string doc) {
  opts_.push_back({std::move(name), std::move(doc), "string",
                   [out](const std::string& v) { *out = v; },
                   [out] { return *out; }});
  return *this;
}

bool Options::parse(int argc, char** argv) const {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    DPA_CHECK(arg.rfind("--", 0) == 0) << "expected --option, got '" << arg
                                       << "'";
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    bool found = false;
    for (const auto& o : opts_) {
      if (o.name == name) {
        o.set(value);
        found = true;
        break;
      }
    }
    DPA_CHECK(found) << "unknown option --" << name;
  }
  return true;
}

std::string Options::usage(const std::string& prog) const {
  std::ostringstream os;
  os << "usage: " << prog << " [options]\n";
  for (const auto& o : opts_) {
    os << "  --" << o.name << "=<" << o.kind << ">  (default " << o.show()
       << ")\n      " << o.doc << "\n";
  }
  return os.str();
}

}  // namespace dpa
