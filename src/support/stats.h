// Lightweight statistics accumulators used by the runtime and the bench
// harnesses: scalar accumulators (min/max/mean/variance), power-of-two
// histograms, and a high-water-mark gauge.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dpa {

// Running min/max/mean/variance over doubles (Welford's algorithm).
class Accumulator {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / double(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;

  void merge(const Accumulator& other);
  void reset() { *this = Accumulator(); }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Histogram with power-of-two buckets: bucket i counts values in
// [2^(i-1), 2^i) with bucket 0 holding zero/one.
class Pow2Histogram {
 public:
  void add(std::uint64_t v);
  std::uint64_t count() const { return total_; }
  std::uint64_t bucket(std::size_t i) const {
    return i < buckets_.size() ? buckets_[i] : 0;
  }
  std::size_t num_buckets() const { return buckets_.size(); }
  // Smallest v such that at least `q` fraction of samples are <= v
  // (upper bucket bound; approximate by construction).
  std::uint64_t quantile_bound(double q) const;
  std::string to_string() const;

  void merge(const Pow2Histogram& other);
  void reset() { *this = Pow2Histogram(); }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

// Tracks a current level and its high-water mark (e.g. outstanding threads).
class Gauge {
 public:
  void add(std::int64_t delta);
  void set(std::int64_t v);
  std::int64_t current() const { return current_; }
  std::int64_t high_water() const { return high_; }
  void reset() { *this = Gauge(); }

 private:
  std::int64_t current_ = 0;
  std::int64_t high_ = 0;
};

}  // namespace dpa
