#include "support/assert.h"

#include <cstdio>

namespace dpa {

void panic(std::string_view file, int line, std::string_view msg) {
  std::fprintf(stderr, "[dpa panic] %.*s:%d: %.*s\n", int(file.size()),
               file.data(), line, int(msg.size()), msg.data());
  std::fflush(stderr);
  std::abort();
}

}  // namespace dpa
