#include "runtime/engine.h"

#include <algorithm>
#include <utility>

#include "exec/sim_backend.h"
#include "support/assert.h"

namespace dpa::rt {

namespace {
// RetryParams (runtime config surface) -> RetryPolicy (transport core).
// Field-for-field; the two exist so transport/ carries no config.h dep.
transport::RetryPolicy retry_policy(const RetryParams& r) {
  transport::RetryPolicy p;
  p.timeout_ns = r.timeout_ns;
  p.backoff = r.backoff;
  p.max_timeout_ns = r.max_timeout_ns;
  p.max_retries = r.max_retries;
  return p;
}
}  // namespace

fm::FmLayer& Cluster::fm() {
  DPA_CHECK(backend->is_sim()) << "cluster is not on the sim backend";
  return static_cast<exec::SimBackend*>(backend.get())->fm();
}

EngineBase::EngineBase(Cluster& cluster, NodeId node,
                       const RuntimeConfig& cfg, Arena& arena,
                       fm::HandlerId h_req, fm::HandlerId h_reply,
                       fm::HandlerId h_accum, fm::HandlerId h_ack)
    : cluster_(cluster),
      node_(node),
      cfg_(cfg),
      arena_(arena),
      h_req_(h_req),
      h_reply_(h_reply),
      h_accum_(h_accum),
      h_ack_(h_ack) {
  // Both trace sinks are single-writer structures. On the sim backend all
  // engines run on the one simulator thread and share the session tracer;
  // on the native backend each engine runs on its own worker thread and
  // records into that worker's shard. Registry histograms stay sim-only
  // (Pow2Histogram is not thread-safe; native workers accumulate into
  // per-shard profiles instead, merged post-phase).
  if (cluster.obs != nullptr) {
    if (cluster.exec().is_sim()) {
      trace_ = &cluster.obs->tracer;
      h_msg_bytes_ = cluster.obs->metrics.histogram("rt.msg_bytes");
    } else if (obs::kTraceEnabled && cluster.obs->shards != nullptr) {
      trace_ = &cluster.obs->shards->shard(node_);
    }
  }
  pool_payloads_ = cluster.exec().is_sim();
  const bool rel_enabled = cfg.retry.enabled || cluster.exec().lossy();
  // PhaseRunner already rejected this combination at construction; keep a
  // backstop for engines built outside a PhaseRunner.
  DPA_CHECK(!rel_enabled || cluster.exec().supports_timers())
      << "the reliability/retry protocol needs a backend with deferred "
      << "timers (retransmit deadlines); this one has none";
  if (rel_enabled)
    rel_.engage(cluster.num_nodes(), retry_policy(cfg.retry), node_);
}

void EngineBase::rel_track(sim::Cpu& cpu, NodeId dst, fm::HandlerId handler,
                           std::shared_ptr<void> data, std::uint32_t bytes,
                           std::uint64_t seq, obs::MsgCause cause) {
  (void)cause;
  transport::Reliable::Pending pending;
  pending.dst = dst;
  pending.handler = handler;
  pending.data = std::move(data);
  pending.bytes = bytes;
  const Time deadline = rel_.track(seq, std::move(pending), cpu.logical_now());
  cluster_.backend->schedule_at(deadline, [this, seq] { rel_timer(seq); });
}

void EngineBase::rel_timer(std::uint64_t seq) {
  if (!rel_.is_pending(seq)) return;  // acked
  cluster_.backend->post(node_,
                         [this, seq](sim::Cpu& cpu) { rel_retry(cpu, seq); });
}

void EngineBase::rel_retry(sim::Cpu& cpu, std::uint64_t seq) {
  // retry() bumps attempts (fatal past max_retries) and applies the capped
  // exponential backoff; this side re-sends and re-arms — the substrate
  // half the protocol core does not own. The returned pointer is stable
  // here: nothing below touches the in-flight table.
  const transport::Reliable::Pending* p = rel_.retry(seq);
  if (p == nullptr) return;  // ack raced the posted task
  ++stats_.retries;
  cpu.charge(cfg_.cost.flush_fixed, sim::Work::kComm);
  DPA_TRACE_EVT(trace_, msg_event(obs::Ev::kMsgDepart, obs::MsgCause::kRetry,
                                  node_, p->dst, p->bytes, cpu.logical_now()));
  cluster_.backend->send(cpu, node_, p->dst, fm::HandlerId(p->handler),
                         p->data, p->bytes);
  cluster_.backend->schedule_at(cpu.logical_now() + p->timeout,
                                [this, seq] { rel_timer(seq); });
}

bool EngineBase::rel_accept(sim::Cpu& cpu, NodeId src, std::uint64_t seq) {
  if (seq == 0) return true;  // unsequenced: sender runs without the protocol
  DPA_CHECK(rel_.engaged())
      << "sequenced message on node " << node_ << " but its engine has the "
      << "reliability layer off — mismatched RuntimeConfigs?";
  // Ack every copy, duplicates included: the ack for an earlier copy may
  // itself have been lost, and acks are idempotent at the sender.
  ++stats_.acks_sent;
  auto ack = alloc_payload<AckPayload>();
  ack->from = node_;
  ack->seq = seq;
  DPA_TRACE_EVT(trace_, msg_event(obs::Ev::kMsgDepart, obs::MsgCause::kAck,
                                  node_, src, cfg_.cost.msg_header_bytes,
                                  cpu.logical_now()));
  cluster_.backend->send(cpu, node_, src, h_ack_, std::move(ack),
                         cfg_.cost.msg_header_bytes);
  if (!rel_.accept(src, seq)) {
    ++stats_.dup_msgs_dropped;
    return false;
  }
  return true;
}

void EngineBase::on_ack(sim::Cpu& cpu, const AckPayload& ack) {
  (void)cpu;  // recv overhead is already charged by the FM layer
  DPA_TRACE_EVT(trace_, msg_event(obs::Ev::kMsgArrive, obs::MsgCause::kAck,
                                  node_, ack.from, 0, cpu.logical_now()));
  if (rel_.on_ack(ack.seq)) ++stats_.acks_recv;
}

void EngineBase::accumulate(sim::Cpu& cpu, GlobalRef ref, AccumFn update) {
  // Default (baseline engines): apply locally or send one message per
  // update. DpaEngine overrides this with per-destination batching.
  const auto& cost = cfg_.cost;
  if (ref.home == node_) {
    cpu.charge(cost.accum_apply, sim::Work::kCompute);
    ++stats_.accums_local;
    update(const_cast<void*>(ref.addr));
    return;
  }
  cpu.charge(cost.accum_marshal, sim::Work::kComm);
  std::vector<std::pair<GlobalRef, AccumFn>> items;
  items.emplace_back(ref, std::move(update));
  send_accum(cpu, ref.home, std::move(items));
}

void EngineBase::send_accum(
    sim::Cpu& cpu, NodeId home,
    std::vector<std::pair<GlobalRef, AccumFn>> items) {
  DPA_DCHECK(!items.empty());
  const auto& cost = cfg_.cost;
  stats_.accums_issued += items.size();
  ++stats_.accum_msgs;
  const std::uint32_t bytes =
      cost.msg_header_bytes +
      std::uint32_t(items.size()) *
          (cost.req_bytes_per_ref + cost.accum_payload_bytes);
  if (h_msg_bytes_ != nullptr) h_msg_bytes_->add(bytes);
  DPA_TRACE_EVT(trace_, msg_event(obs::Ev::kMsgDepart, obs::MsgCause::kAccum,
                                  node_, home, bytes, cpu.logical_now()));
  auto payload = alloc_payload<AccumPayload>();
  payload->accum_seq = ++accum_seq_next_;
  payload->items = std::move(items);
  rel_send(cpu, home, h_accum_, std::move(payload), bytes,
           obs::MsgCause::kAccum);
}

void EngineBase::serve_accum(sim::Cpu& cpu, NodeId src,
                             std::shared_ptr<AccumPayload> payload) {
  const auto& cost = cfg_.cost;
  DPA_TRACE_EVT(trace_, msg_event(obs::Ev::kMsgArrive, obs::MsgCause::kAccum,
                                  node_, node_, payload->items.size(),
                                  cpu.logical_now()));
  // Arrival-time costs stay on the arrival path (identical modeled timing);
  // the mutations themselves wait for commit_accums() so their order is a
  // sorted, timing-independent function of who sent what.
  for (const auto& [ref, fn] : payload->items) {
    DPA_DCHECK(ref.home == node_);
    (void)fn;
    cpu.charge(cost.accum_apply, sim::Work::kCompute);
    ++stats_.accums_applied;
  }
  staged_accums_.push_back(
      StagedAccum{src, payload->accum_seq, std::move(payload)});
}

void EngineBase::commit_accums() {
  std::sort(staged_accums_.begin(), staged_accums_.end(),
            [](const StagedAccum& a, const StagedAccum& b) {
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (const StagedAccum& s : staged_accums_) {
    for (const auto& [ref, fn] : s.payload->items)
      fn(const_cast<void*>(ref.addr));
  }
  staged_accums_.clear();
}

void EngineBase::start(NodeWork work) {
  work_ = std::move(work);
  next_root_ = 0;
  kick();
}

void EngineBase::kick() {
  if (sched_pending_) return;
  sched_pending_ = true;
  cluster_.backend->post(node_, [this](sim::Cpu& cpu) {
    sched_pending_ = false;
    sched(cpu);
  });
}

void EngineBase::send_request(sim::Cpu& cpu, NodeId home,
                              std::vector<GlobalRef> refs) {
  DPA_DCHECK(!refs.empty());
  DPA_DCHECK(home != node_) << "request to self";
  const auto& cost = cfg_.cost;
  stats_.refs_requested += refs.size();
  ++stats_.request_msgs;
  stats_.outstanding_refs.add(std::int64_t(refs.size()));

  const std::uint32_t bytes =
      cost.msg_header_bytes +
      cost.req_bytes_per_ref * std::uint32_t(refs.size());
  if (h_msg_bytes_ != nullptr) h_msg_bytes_->add(bytes);
  DPA_TRACE_EVT(trace_, msg_event(obs::Ev::kMsgDepart, obs::MsgCause::kRequest,
                                  node_, home, bytes, cpu.logical_now()));
  auto payload = alloc_payload<ReqPayload>();
  payload->requester = node_;
  payload->refs = std::move(refs);
  rel_send(cpu, home, h_req_, std::move(payload), bytes,
           obs::MsgCause::kRequest);
}

void EngineBase::serve_request(sim::Cpu& cpu, const ReqPayload& req) {
  const auto& cost = cfg_.cost;
  ++stats_.requests_served;
  stats_.refs_served += req.refs.size();
  DPA_TRACE_EVT(trace_,
                msg_event(obs::Ev::kMsgArrive, obs::MsgCause::kRequest, node_,
                          req.requester, req.refs.size(), cpu.logical_now()));

  std::uint32_t bytes = cost.msg_header_bytes;
  for (const GlobalRef& ref : req.refs) {
    DPA_DCHECK(ref.home == node_)
        << "request for object homed on " << ref.home << " arrived at node "
        << node_;
    cpu.charge(cost.serve_lookup_per_ref, sim::Work::kComm);
    bytes += cost.obj_header_bytes + ref.bytes;
  }
  if (h_msg_bytes_ != nullptr) h_msg_bytes_->add(bytes);
  DPA_TRACE_EVT(trace_,
                msg_event(obs::Ev::kMsgDepart, obs::MsgCause::kReply, node_,
                          req.requester, bytes, cpu.logical_now()));
  auto payload = alloc_payload<ReplyPayload>();
  payload->refs = req.refs;
  rel_send(cpu, req.requester, h_reply_, std::move(payload), bytes,
           obs::MsgCause::kReply);
}

void EngineBase::run_thread(sim::Cpu& cpu, const ThreadFn& fn,
                            const void* data) {
  cpu.charge(cfg_.cost.thread_dispatch, sim::Work::kRuntime);
  ++stats_.threads_run;
  Ctx ctx(*this, cpu);
  fn(ctx, data);
  DPA_TRACE_EVT(trace_, instant(obs::Ev::kThreadRetired, node_,
                                cpu.logical_now()));
}

std::uint32_t Ctx::num_nodes() const {
  return engine_.cluster().num_nodes();
}

}  // namespace dpa::rt
