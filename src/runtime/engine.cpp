#include "runtime/engine.h"

#include <utility>

#include "support/assert.h"

namespace dpa::rt {

EngineBase::EngineBase(Cluster& cluster, NodeId node,
                       const RuntimeConfig& cfg, fm::HandlerId h_req,
                       fm::HandlerId h_reply, fm::HandlerId h_accum)
    : cluster_(cluster),
      node_(node),
      cfg_(cfg),
      h_req_(h_req),
      h_reply_(h_reply),
      h_accum_(h_accum) {
  if (cluster.obs != nullptr) {
    trace_ = &cluster.obs->tracer;
    h_msg_bytes_ = cluster.obs->metrics.histogram("rt.msg_bytes");
  }
}

void EngineBase::accumulate(sim::Cpu& cpu, GlobalRef ref, AccumFn update) {
  // Default (baseline engines): apply locally or send one message per
  // update. DpaEngine overrides this with per-destination batching.
  const auto& cost = cfg_.cost;
  if (ref.home == node_) {
    cpu.charge(cost.accum_apply, sim::Work::kCompute);
    ++stats_.accums_local;
    update(const_cast<void*>(ref.addr));
    return;
  }
  cpu.charge(cost.accum_marshal, sim::Work::kComm);
  send_accum(cpu, ref.home, {{ref, std::move(update)}});
}

void EngineBase::send_accum(
    sim::Cpu& cpu, NodeId home,
    std::vector<std::pair<GlobalRef, AccumFn>> items) {
  DPA_DCHECK(!items.empty());
  const auto& cost = cfg_.cost;
  stats_.accums_issued += items.size();
  ++stats_.accum_msgs;
  const std::uint32_t bytes =
      cost.msg_header_bytes +
      std::uint32_t(items.size()) *
          (cost.req_bytes_per_ref + cost.accum_payload_bytes);
  if (h_msg_bytes_ != nullptr) h_msg_bytes_->add(bytes);
  DPA_TRACE_EVT(trace_, msg_event(obs::Ev::kMsgDepart, obs::MsgCause::kAccum,
                                  node_, home, bytes, cpu.logical_now()));
  auto payload = std::make_shared<AccumPayload>();
  payload->items = std::move(items);
  cluster_.fm.send(cpu, node_, home, h_accum_, std::move(payload), bytes);
}

void EngineBase::serve_accum(sim::Cpu& cpu, const AccumPayload& payload) {
  const auto& cost = cfg_.cost;
  DPA_TRACE_EVT(trace_, msg_event(obs::Ev::kMsgArrive, obs::MsgCause::kAccum,
                                  node_, node_, payload.items.size(),
                                  cpu.logical_now()));
  for (const auto& [ref, fn] : payload.items) {
    DPA_DCHECK(ref.home == node_);
    cpu.charge(cost.accum_apply, sim::Work::kCompute);
    ++stats_.accums_applied;
    fn(const_cast<void*>(ref.addr));
  }
}

void EngineBase::start(NodeWork work) {
  work_ = std::move(work);
  next_root_ = 0;
  kick();
}

void EngineBase::kick() {
  if (sched_pending_) return;
  sched_pending_ = true;
  cluster_.machine.node(node_).post([this](sim::Cpu& cpu) {
    sched_pending_ = false;
    sched(cpu);
  });
}

void EngineBase::send_request(sim::Cpu& cpu, NodeId home,
                              std::vector<GlobalRef> refs) {
  DPA_DCHECK(!refs.empty());
  DPA_DCHECK(home != node_) << "request to self";
  const auto& cost = cfg_.cost;
  stats_.refs_requested += refs.size();
  ++stats_.request_msgs;
  stats_.outstanding_refs.add(std::int64_t(refs.size()));

  const std::uint32_t bytes =
      cost.msg_header_bytes +
      cost.req_bytes_per_ref * std::uint32_t(refs.size());
  if (h_msg_bytes_ != nullptr) h_msg_bytes_->add(bytes);
  DPA_TRACE_EVT(trace_, msg_event(obs::Ev::kMsgDepart, obs::MsgCause::kRequest,
                                  node_, home, bytes, cpu.logical_now()));
  auto payload = std::make_shared<ReqPayload>();
  payload->requester = node_;
  payload->refs = std::move(refs);
  cluster_.fm.send(cpu, node_, home, h_req_, std::move(payload), bytes);
}

void EngineBase::serve_request(sim::Cpu& cpu, const ReqPayload& req) {
  const auto& cost = cfg_.cost;
  ++stats_.requests_served;
  stats_.refs_served += req.refs.size();
  DPA_TRACE_EVT(trace_,
                msg_event(obs::Ev::kMsgArrive, obs::MsgCause::kRequest, node_,
                          req.requester, req.refs.size(), cpu.logical_now()));

  std::uint32_t bytes = cost.msg_header_bytes;
  for (const GlobalRef& ref : req.refs) {
    DPA_DCHECK(ref.home == node_)
        << "request for object homed on " << ref.home << " arrived at node "
        << node_;
    cpu.charge(cost.serve_lookup_per_ref, sim::Work::kComm);
    bytes += cost.obj_header_bytes + ref.bytes;
  }
  if (h_msg_bytes_ != nullptr) h_msg_bytes_->add(bytes);
  DPA_TRACE_EVT(trace_,
                msg_event(obs::Ev::kMsgDepart, obs::MsgCause::kReply, node_,
                          req.requester, bytes, cpu.logical_now()));
  auto payload = std::make_shared<ReplyPayload>();
  payload->refs = req.refs;
  cluster_.fm.send(cpu, node_, req.requester, h_reply_, std::move(payload),
                   bytes);
}

void EngineBase::run_thread(sim::Cpu& cpu, const ThreadFn& fn,
                            const void* data) {
  cpu.charge(cfg_.cost.thread_dispatch, sim::Work::kRuntime);
  ++stats_.threads_run;
  Ctx ctx(*this, cpu);
  fn(ctx, data);
  DPA_TRACE_EVT(trace_, instant(obs::Ev::kThreadRetired, node_,
                                cpu.logical_now()));
}

std::uint32_t Ctx::num_nodes() const {
  return engine_.cluster().num_nodes();
}

}  // namespace dpa::rt
