// Greedy software prefetching baseline (in the spirit of Luk & Mowry's
// compiler-based prefetching for recursive data structures, the paper's
// other related-work comparator).
//
// Execution order is the untransformed depth-first traversal, as in the
// caching baseline, but after each step the engine looks at the next
// `prefetch_depth` continuations on the stack and issues non-blocking
// fetches for their objects. Latency is (partially) hidden behind the work
// of earlier items; there is no reordering and no aggregation — each
// prefetch is its own message. DPA should beat it on both counts.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "runtime/engine.h"

namespace dpa::rt {

class PrefetchEngine final : public EngineBase {
 public:
  PrefetchEngine(Cluster& cluster, NodeId node, const RuntimeConfig& cfg,
                 Arena& arena, fm::HandlerId h_req, fm::HandlerId h_reply,
                 fm::HandlerId h_accum, fm::HandlerId h_ack);

  void require(sim::Cpu& cpu, GlobalRef ref, ThreadFn thread) override;
  void on_reply(sim::Cpu& cpu, const ReplyPayload& reply) override;
  bool done() const override;
  std::string state_dump() const override;

 private:
  void sched(sim::Cpu& cpu) override;
  void run_now(sim::Cpu& cpu, const ThreadFn& fn, const void* data);
  void issue_prefetches(sim::Cpu& cpu);
  void prefetch_one(sim::Cpu& cpu, const GlobalRef& ref,
                    std::uint32_t* budget);

  using StackEntry = std::pair<GlobalRef, ThreadFn>;

  // Children of the running traversal: LIFO (depth-first), popped first.
  // Both continuation queues are arena-backed (phase-lifetime churn).
  std::vector<StackEntry, ArenaAllocator<StackEntry>> stack_;
  // Upcoming conc-loop iterations: FIFO (software pipelining) — a root's
  // prefetch is issued a full window before the root executes.
  std::deque<StackEntry, ArenaAllocator<StackEntry>> root_window_;
  bool creating_roots_ = false;
  FlatSet<const void*> cache_;     // arrived objects
  FlatSet<const void*> inflight_;  // prefetches not yet back
  bool waiting_ = false;
  const void* waiting_addr_ = nullptr;
  GlobalRef wait_ref_;
  ThreadFn wait_fn_;
  bool loop_done_ = false;
};

}  // namespace dpa::rt
