// Cost model for runtime primitives, in nanoseconds on the modeled node
// processor (a 150 MHz Alpha 21064: ~6.7 ns per cycle; most constants below
// are tens of cycles).
//
// These are the knobs the DPA-vs-caching comparison turns on: DPA pays
// thread creation and map maintenance once per (object, thread) at creation,
// while software caching pays a hash probe on every access; DPA's access
// hoisting is modeled by the fact that a thread touches its object's fields
// with no further runtime cost once dispatched.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace dpa::rt {

using sim::Time;

struct CostModel {
  // --- DPA engine ---
  Time thread_create = 250;        // label lookup + M insert at creation site
  Time local_enqueue = 80;         // local-pointer thread onto ready queue
  Time tile_dispatch = 150;        // dequeue a tile, set up object frame
  Time thread_dispatch = 90;       // start one waiter within a tile
  Time strip_setup = 2000;         // per-strip bookkeeping incl. M reset
  Time req_marshal_per_ref = 60;   // append one ref to an aggregation buffer
  Time flush_fixed = 300;          // close out one aggregated request message

  // --- home-side service (all engines) ---
  Time serve_lookup_per_ref = 150;  // locate one object, append to reply
  Time reply_unmarshal_per_obj = 120;

  // --- software-caching / blocking baselines ---
  Time hash_lookup = 320;   // per remote access (the cost DPA hoists away)
  Time cache_insert = 400;
  Time sync_issue = 250;    // bookkeeping for a blocking single-object get
  Time sync_push = 40;      // push a traversal continuation (cheap: no M)
  Time sync_run = 40;       // resume a traversal continuation

  // --- remote accumulation (the paper's "reductions" extension) ---
  Time accum_marshal = 60;  // append one update to an outgoing buffer
  Time accum_apply = 120;   // apply one update at the home node

  // --- wire sizes (bytes) ---
  std::uint32_t msg_header_bytes = 32;
  std::uint32_t req_bytes_per_ref = 8;
  std::uint32_t obj_header_bytes = 8;
  std::uint32_t accum_payload_bytes = 16;  // operand + op id per update

  // Accounting size of one suspended thread state (closure + M slot); used
  // for the paper's outstanding-thread memory table, not for host memory.
  std::uint32_t thread_state_bytes = 64;
};

}  // namespace dpa::rt
