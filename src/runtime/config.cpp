#include "runtime/config.h"

#include <sstream>

#include "support/assert.h"

namespace dpa::rt {

void RuntimeConfig::validate() const {
  DPA_CHECK(strip_size > 0) << "strip size must be positive";
  DPA_CHECK(poll_batch > 0);
  DPA_CHECK(agg_max_refs > 0);
  if (aggregation) {
    DPA_CHECK(pipelining)
        << "aggregation requires pipelining: a synchronous engine blocks on "
           "each request and never accumulates a batch";
  }
  if (deterministic) {
    DPA_CHECK(sched_template == SchedTemplate::kCreateAllThenRun)
        << "deterministic dispatch needs the create-all template: the "
           "consumption order is the creation order, so all of a strip's "
           "threads must exist before any tile runs";
  }
  DPA_CHECK(retry.timeout_ns > 0);
  DPA_CHECK(retry.backoff >= 1.0)
      << "retry backoff < 1 would retransmit ever faster";
  DPA_CHECK(retry.max_timeout_ns >= retry.timeout_ns);
  DPA_CHECK(retry.max_retries > 0);
}

std::string RuntimeConfig::describe() const {
  std::ostringstream os;
  os << to_string(kind);
  if (kind == EngineKind::kDpa) {
    os << "(strip=" << strip_size << ", pipe=" << (pipelining ? "on" : "off")
       << ", agg=" << (aggregation ? "on" : "off")
       << ", template=" << to_string(sched_template)
       << (deterministic ? ", det" : "") << ")";
  } else if (kind == EngineKind::kCaching) {
    os << "(capacity=";
    if (cache_capacity == 0)
      os << "unbounded";
    else
      os << cache_capacity;
    os << ")";
  }
  return os.str();
}

RuntimeConfig RuntimeConfig::dpa(std::uint32_t strip) {
  RuntimeConfig c;
  c.kind = EngineKind::kDpa;
  c.strip_size = strip;
  c.pipelining = true;
  c.aggregation = true;
  return c;
}

RuntimeConfig RuntimeConfig::dpa_deterministic(std::uint32_t strip) {
  RuntimeConfig c = dpa(strip);
  c.deterministic = true;
  return c;
}

RuntimeConfig RuntimeConfig::dpa_base(std::uint32_t strip) {
  RuntimeConfig c;
  c.kind = EngineKind::kDpa;
  c.strip_size = strip;
  c.pipelining = false;
  c.aggregation = false;
  return c;
}

RuntimeConfig RuntimeConfig::dpa_pipelined(std::uint32_t strip) {
  RuntimeConfig c;
  c.kind = EngineKind::kDpa;
  c.strip_size = strip;
  c.pipelining = true;
  c.aggregation = false;
  return c;
}

RuntimeConfig RuntimeConfig::caching() {
  RuntimeConfig c;
  c.kind = EngineKind::kCaching;
  return c;
}

RuntimeConfig RuntimeConfig::blocking() {
  RuntimeConfig c;
  c.kind = EngineKind::kBlocking;
  return c;
}

RuntimeConfig RuntimeConfig::prefetching(std::uint32_t depth) {
  RuntimeConfig c;
  c.kind = EngineKind::kPrefetch;
  c.prefetch_depth = depth;
  return c;
}

std::string to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kDpa:
      return "dpa";
    case EngineKind::kCaching:
      return "caching";
    case EngineKind::kBlocking:
      return "blocking";
    case EngineKind::kPrefetch:
      return "prefetch";
  }
  return "?";
}

std::string to_string(SchedTemplate t) {
  switch (t) {
    case SchedTemplate::kCreateAllThenRun:
      return "create-all";
    case SchedTemplate::kInterleaved:
      return "interleaved";
  }
  return "?";
}

}  // namespace dpa::rt
