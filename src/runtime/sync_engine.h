// Synchronous baselines: software caching (the paper's comparator, in the
// style of Olden's software caching / remote-reference schemes) and plain
// blocking reads.
//
// The traversal is depth-first over an explicit continuation stack — the
// natural execution order of the untransformed program. A remote access
// costs a hash probe (every access; this is the overhead DPA's access
// hoisting removes); a miss issues a single-object request and stalls the
// node until the reply. There is no reordering, no overlap, no batching.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <vector>

#include "runtime/engine.h"

namespace dpa::rt {

class SyncEngine final : public EngineBase {
 public:
  // use_cache=true  -> EngineKind::kCaching
  // use_cache=false -> EngineKind::kBlocking
  SyncEngine(Cluster& cluster, NodeId node, const RuntimeConfig& cfg,
             Arena& arena, fm::HandlerId h_req, fm::HandlerId h_reply,
             fm::HandlerId h_accum, fm::HandlerId h_ack, bool use_cache);

  void require(sim::Cpu& cpu, GlobalRef ref, ThreadFn thread) override;
  void on_reply(sim::Cpu& cpu, const ReplyPayload& reply) override;
  bool done() const override;
  std::string state_dump() const override;

 private:
  void sched(sim::Cpu& cpu) override;
  void run_now(sim::Cpu& cpu, const ThreadFn& fn, const void* data);
  void cache_insert(sim::Cpu& cpu, const void* addr);

  bool cache_lookup(const void* addr);  // probes + maintains LRU order

  // LIFO continuation stack: depth-first. Arena-backed — it churns at
  // thread rate and dies with the phase.
  std::vector<std::pair<GlobalRef, ThreadFn>,
              ArenaAllocator<std::pair<GlobalRef, ThreadFn>>>
      stack_;
  // Cached object set plus an eviction order list (FIFO or LRU per config).
  std::list<const void*> order_;
  FlatMap<const void*, std::list<const void*>::iterator> cache_;
  bool use_cache_;
  bool waiting_ = false;
  GlobalRef wait_ref_;
  ThreadFn wait_fn_;
  bool loop_done_ = false;
};

}  // namespace dpa::rt
