// Runtime configuration: which engine runs the phase and how DPA's
// scheduling is parameterized.
#pragma once

#include <cstdint>
#include <string>

#include "runtime/cost_model.h"

namespace dpa::rt {

// Reliable-delivery protocol knobs (see EngineBase in runtime/engine.h:
// sequence-numbered messages, receiver-side dedup + acks, sender-side
// timeout/retransmit with exponential backoff). Engages automatically when
// the cluster's network carries a FaultPlan; `enabled` forces it on over a
// reliable fabric (useful for measuring the protocol's own overhead).
struct RetryParams {
  bool enabled = false;
  // First retransmit fires this long after a send with no ack.
  sim::Time timeout_ns = 2'000'000;
  // Each unanswered attempt multiplies the timeout by this factor...
  double backoff = 2.0;
  // ...up to this ceiling.
  sim::Time max_timeout_ns = 64'000'000;
  // A message unacked after this many retransmissions aborts the run: with
  // exponential backoff the fabric had seconds to deliver one message, so
  // this is a livelock/bug guard, not a tuning knob.
  std::uint32_t max_retries = 100;
};

enum class EngineKind : std::uint8_t {
  kDpa,       // the paper's contribution
  kCaching,   // Olden-style software caching (the paper's comparator)
  kBlocking,  // synchronous remote reads, no reuse (sanity floor)
  kPrefetch,  // greedy DFS prefetching (Luk & Mowry-style comparator)
};

// Figure-14 analogue: in which order a strip's work is produced vs consumed.
enum class SchedTemplate : std::uint8_t {
  // Create every thread of the strip first, then execute ready tiles. This
  // maximizes aggregation opportunity (all requests known up front).
  kCreateAllThenRun,
  // Prefer executing ready work; create new threads only when idle. This
  // minimizes outstanding thread state.
  kInterleaved,
};

struct RuntimeConfig {
  EngineKind kind = EngineKind::kDpa;

  // --- DPA parameters ---
  // Strip size for top-level conc loops (the paper's k-bounded loops);
  // DPA(50) in the paper's tables means strip_size = 50.
  std::uint32_t strip_size = 50;
  // Message pipelining: issue requests asynchronously and keep executing.
  bool pipelining = true;
  // Request aggregation: batch requests per destination node. Requires
  // pipelining (a synchronous engine has nothing to batch).
  bool aggregation = true;
  // Flush an aggregation buffer once it holds this many refs.
  std::uint32_t agg_max_refs = 64;
  SchedTemplate sched_template = SchedTemplate::kCreateAllThenRun;
  // Consume tiles in thread-creation order instead of reply-arrival order.
  // Arrival order depends on message timing, so under faults (retries,
  // delays) the *order* of floating-point accumulation — and therefore the
  // bit pattern of the results — would differ from a fault-free run even
  // though every value is identical as a set. In-order dispatch trades some
  // overlap for a timing-invariant execution order; chaos_test relies on it
  // to assert bit-identical physics. Requires kCreateAllThenRun.
  bool deterministic = false;

  // --- caching parameters ---
  // Cache capacity in objects; 0 = unbounded.
  std::uint64_t cache_capacity = 0;
  enum class CachePolicy : std::uint8_t { kFifo, kLru };
  CachePolicy cache_policy = CachePolicy::kFifo;

  // --- prefetch parameters ---
  // How many upcoming continuations the prefetch engine scans after each
  // step.
  std::uint32_t prefetch_depth = 8;

  // Scheduling units processed per node task before re-polling the inbox
  // (models FM poll placement granularity).
  std::uint32_t poll_batch = 32;

  RetryParams retry;

  CostModel cost;

  void validate() const;
  std::string describe() const;

  // The paper's named configurations.
  static RuntimeConfig dpa(std::uint32_t strip = 50);        // full DPA
  // Full DPA with deterministic in-order tile dispatch (chaos testing).
  static RuntimeConfig dpa_deterministic(std::uint32_t strip = 50);
  static RuntimeConfig dpa_base(std::uint32_t strip = 50);   // tiling only
  static RuntimeConfig dpa_pipelined(std::uint32_t strip = 50);  // no agg
  static RuntimeConfig caching();
  static RuntimeConfig blocking();
  static RuntimeConfig prefetching(std::uint32_t depth = 8);
};

std::string to_string(EngineKind kind);
std::string to_string(SchedTemplate t);

}  // namespace dpa::rt
