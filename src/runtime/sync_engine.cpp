#include "runtime/sync_engine.h"

#include <sstream>
#include <utility>

#include "support/assert.h"

namespace dpa::rt {

SyncEngine::SyncEngine(Cluster& cluster, NodeId node,
                       const RuntimeConfig& cfg, Arena& arena,
                       fm::HandlerId h_req, fm::HandlerId h_reply,
                       fm::HandlerId h_accum, fm::HandlerId h_ack,
                       bool use_cache)
    : EngineBase(cluster, node, cfg, arena, h_req, h_reply, h_accum, h_ack),
      stack_(ArenaAllocator<std::pair<GlobalRef, ThreadFn>>(&arena)),
      use_cache_(use_cache) {}

bool SyncEngine::cache_lookup(const void* addr) {
  const auto it = cache_.find(addr);
  if (it == cache_.end()) return false;
  if (cfg_.cache_policy == RuntimeConfig::CachePolicy::kLru) {
    order_.splice(order_.end(), order_, it->second);  // move to MRU end
  }
  return true;
}

void SyncEngine::require(sim::Cpu& cpu, GlobalRef ref, ThreadFn thread) {
  cpu.charge(cfg_.cost.sync_push, sim::Work::kRuntime);
  ++stats_.threads_created;
  stats_.outstanding_threads.add(1);
  DPA_TRACE_EVT(trace_, instant(obs::Ev::kThreadCreated, node_,
                                cpu.logical_now(), ref.bytes));
  stack_.emplace_back(ref, std::move(thread));
}

void SyncEngine::run_now(sim::Cpu& cpu, const ThreadFn& fn,
                         const void* data) {
  cpu.charge(cfg_.cost.sync_run, sim::Work::kRuntime);
  ++stats_.threads_run;
  Ctx ctx(*this, cpu);
  fn(ctx, data);
  DPA_TRACE_EVT(trace_, instant(obs::Ev::kThreadRetired, node_,
                                cpu.logical_now()));
}

void SyncEngine::cache_insert(sim::Cpu& cpu, const void* addr) {
  cpu.charge(cfg_.cost.cache_insert, sim::Work::kRuntime);
  order_.push_back(addr);
  cache_[addr] = std::prev(order_.end());
  if (cfg_.cache_capacity != 0 && cache_.size() > cfg_.cache_capacity) {
    cache_.erase(order_.front());
    order_.pop_front();
    ++stats_.cache_evictions;
  }
}

void SyncEngine::sched(sim::Cpu& cpu) {
  for (std::uint32_t unit = 0; unit < cfg_.poll_batch; ++unit) {
    if (waiting_) return;  // stalled on a remote fetch

    if (stack_.empty()) {
      if (next_root_ < work_.count) {
        ++stats_.roots_created;
        Ctx ctx(*this, cpu);
        work_.item(ctx, next_root_++);
        continue;
      }
      loop_done_ = true;
      return;
    }

    auto [ref, fn] = std::move(stack_.back());
    stack_.pop_back();
    stats_.outstanding_threads.add(-1);

    if (ref.home == node_) {
      run_now(cpu, fn, ref.addr);
      continue;
    }

    // Every remote access pays the hash probe — the per-access overhead
    // DPA's access hoisting eliminates.
    cpu.charge(cfg_.cost.hash_lookup, sim::Work::kRuntime);
    if (use_cache_ && cache_lookup(ref.addr)) {
      ++stats_.cache_hits;
      run_now(cpu, fn, ref.addr);
      continue;
    }
    ++stats_.cache_misses;
    cpu.charge(cfg_.cost.sync_issue, sim::Work::kComm);
    waiting_ = true;
    wait_ref_ = ref;
    wait_fn_ = std::move(fn);
    DPA_TRACE_EVT(trace_, instant(obs::Ev::kThreadSuspended, node_,
                                  cpu.logical_now()));
    send_request(cpu, ref.home, {ref});
    return;
  }
  kick();  // yield to the inbox
}

void SyncEngine::on_reply(sim::Cpu& cpu, const ReplyPayload& reply) {
  ++stats_.replies_recv;
  DPA_CHECK(waiting_ && reply.refs.size() == 1 &&
            reply.refs[0].addr == wait_ref_.addr)
      << "sync engine got an unexpected reply on node " << node_;
  cpu.charge(cfg_.cost.reply_unmarshal_per_obj, sim::Work::kComm);
  stats_.outstanding_refs.add(-1);
  DPA_TRACE_EVT(trace_,
                msg_event(obs::Ev::kMsgArrive, obs::MsgCause::kReply, node_,
                          node_, reply.refs.size(), cpu.logical_now()));
  if (use_cache_) cache_insert(cpu, wait_ref_.addr);
  waiting_ = false;
  ThreadFn fn = std::move(wait_fn_);
  wait_fn_ = nullptr;
  DPA_TRACE_EVT(trace_, instant(obs::Ev::kThreadResumed, node_,
                                cpu.logical_now()));
  run_now(cpu, fn, wait_ref_.addr);
  kick();
}

bool SyncEngine::done() const {
  return loop_done_ && stack_.empty() && !waiting_;
}

std::string SyncEngine::state_dump() const {
  std::ostringstream os;
  os << (use_cache_ ? "caching" : "blocking") << " node " << node_
     << ": roots " << next_root_ << "/" << work_.count << " stack "
     << stack_.size() << (waiting_ ? " waiting" : "")
     << (loop_done_ ? " loop-done" : " loop-running") << " cache "
     << cache_.size();
  return os.str();
}

}  // namespace dpa::rt
