#include "runtime/stats.h"

#include "obs/metrics.h"

namespace dpa::rt {

void RtTotals::publish(obs::MetricsRegistry& metrics) const {
#define DPA_X(name) *metrics.counter("rt." #name) += name;
  DPA_RT_COUNTERS(DPA_X)
#undef DPA_X
  // Gauges: raise the registry high-water to this phase's maximum, so the
  // snapshot carries the peak across every published phase.
#define DPA_X(name) metrics.gauge("rt." #name)->set(max_##name);
  DPA_RT_GAUGES(DPA_X)
#undef DPA_X
}

}  // namespace dpa::rt
