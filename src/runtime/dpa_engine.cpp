#include "runtime/dpa_engine.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "support/assert.h"

namespace dpa::rt {

namespace {
// Local-pointer threads are cheap; run a few per scheduling unit.
constexpr std::size_t kLocalBatch = 8;
}  // namespace

DpaEngine::DpaEngine(Cluster& cluster, NodeId node, const RuntimeConfig& cfg,
                     Arena& arena, fm::HandlerId h_req, fm::HandlerId h_reply,
                     fm::HandlerId h_accum, fm::HandlerId h_ack)
    : EngineBase(cluster, node, cfg, arena, h_req, h_reply, h_accum, h_ack),
      ready_tiles_(ArenaAllocator<const void*>(&arena)),
      local_ready_(ArenaAllocator<std::pair<GlobalRef, ThreadFn>>(&arena)),
      order_(ArenaAllocator<OrderUnit>(&arena)),
      agg_(cluster.num_nodes()),
      acc_(cluster.num_nodes()) {
  // Histograms are single-writer; engines on the native backend run on
  // concurrent worker threads, so they record only on the simulator.
  if (cluster.obs != nullptr && cluster.exec().is_sim()) {
    auto& m = cluster.obs->metrics;
    h_ref_latency_ = m.histogram("rt.ref_latency_ns");
    h_tile_occupancy_ = m.histogram("rt.tile_occupancy");
    h_m_residency_ = m.histogram("rt.m_residency");
  }
}

void DpaEngine::accumulate(sim::Cpu& cpu, GlobalRef ref, AccumFn update) {
  if (!cfg_.aggregation || ref.home == node_) {
    EngineBase::accumulate(cpu, ref, std::move(update));
    return;
  }
  cpu.charge(cfg_.cost.accum_marshal, sim::Work::kComm);
  auto& buf = acc_[ref.home];
  buf.emplace_back(ref, std::move(update));
  ++acc_total_;
  if (buf.size() >= cfg_.agg_max_refs) {
    std::vector<std::pair<GlobalRef, AccumFn>> items = std::move(buf);
    buf.clear();
    acc_total_ -= std::uint32_t(items.size());
    send_accum(cpu, ref.home, std::move(items));
  }
}

void DpaEngine::require(sim::Cpu& cpu, GlobalRef ref, ThreadFn thread) {
  const auto& cost = cfg_.cost;
  cpu.charge(cost.thread_create, sim::Work::kRuntime);
  ++stats_.threads_created;
  stats_.outstanding_threads.add(1);
  DPA_TRACE_EVT(trace_, instant(obs::Ev::kThreadCreated, node_,
                                cpu.logical_now(), ref.bytes));

  if (ref.home == node_) {
    cpu.charge(cost.local_enqueue, sim::Work::kRuntime);
    ++stats_.local_threads;
    if (cfg_.deterministic) {
      order_.push_back(OrderUnit{nullptr, ref, std::move(thread)});
    } else {
      local_ready_.emplace_back(ref, std::move(thread));
    }
    return;
  }

  DPA_TRACE_EVT(trace_, instant(obs::Ev::kThreadSuspended, node_,
                                cpu.logical_now()));
  auto [it, inserted] = m_.try_emplace(ref.addr);
  Tile& tile = it->second;
  if (inserted) {
    tile.ref = ref;
    tile.waiters.push_back(std::move(thread));
    stats_.m_entries.set(std::int64_t(m_.size()));
    DPA_TRACE_EVT(trace_, instant(obs::Ev::kTileOpened, node_,
                                  cpu.logical_now(), m_.size()));
    if (cfg_.deterministic) {
      tile.queued = true;
      order_.push_back(OrderUnit{ref.addr, {}, {}});
    }
    if (cfg_.aggregation) {
      cpu.charge(cost.req_marshal_per_ref, sim::Work::kComm);
      auto& buf = agg_[ref.home];
      buf.push_back(ref);
      ++agg_total_;
      if (buf.size() >= cfg_.agg_max_refs) flush_dest(cpu, ref.home);
    } else {
      // Unaggregated: one message per ref, issued at creation. With
      // pipelining off the scheduler stalls until outstanding_ drains,
      // giving synchronous-get behaviour (the paper's Base).
      tile.st = Tile::St::kRequested;
      tile.requested_at = cpu.logical_now();
      ++outstanding_;
      cpu.charge(cost.req_marshal_per_ref, sim::Work::kComm);
      send_request(cpu, ref.home, {ref});
    }
  } else {
    ++stats_.dup_refs_avoided;
    tile.waiters.push_back(std::move(thread));
    if (cfg_.deterministic) {
      // Re-enqueue in creation order if the tile's previous order entry was
      // already consumed (joins before that point share the entry).
      if (!tile.queued) {
        tile.queued = true;
        order_.push_back(OrderUnit{ref.addr, {}, {}});
      }
    } else if (tile.st == Tile::St::kReady && !tile.queued) {
      tile.queued = true;
      ready_tiles_.push_back(ref.addr);
    }
  }
}

void DpaEngine::on_reply(sim::Cpu& cpu, const ReplyPayload& reply) {
  const auto& cost = cfg_.cost;
  ++stats_.replies_recv;
  DPA_TRACE_EVT(trace_,
                msg_event(obs::Ev::kMsgArrive, obs::MsgCause::kReply, node_,
                          node_, reply.refs.size(), cpu.logical_now()));
  for (const GlobalRef& ref : reply.refs) {
    cpu.charge(cost.reply_unmarshal_per_obj, sim::Work::kComm);
    auto it = m_.find(ref.addr);
    DPA_CHECK(it != m_.end()) << "reply for unknown ref on node " << node_;
    Tile& tile = it->second;
    DPA_CHECK(tile.st == Tile::St::kRequested);
    tile.st = Tile::St::kReady;
    if (h_ref_latency_ != nullptr)
      h_ref_latency_->add(
          std::uint64_t(cpu.logical_now() - tile.requested_at));
    DPA_CHECK(outstanding_ > 0);
    --outstanding_;
    stats_.outstanding_refs.add(-1);
    // Deterministic mode: the tile already sits in order_ at its creation
    // position; becoming ready only unblocks the head-of-line consumer.
    if (!cfg_.deterministic && !tile.waiters.empty() && !tile.queued) {
      tile.queued = true;
      ready_tiles_.push_back(ref.addr);
    }
  }
  kick();
}

void DpaEngine::dispatch_tile(sim::Cpu& cpu, const void* addr) {
  auto it = m_.find(addr);
  DPA_DCHECK(it != m_.end());
  Tile& tile = it->second;
  tile.queued = false;
  cpu.charge(cfg_.cost.tile_dispatch, sim::Work::kRuntime);
  ++stats_.tiles_run;
  if (h_tile_occupancy_ != nullptr)
    h_tile_occupancy_->add(tile.waiters.size());
  DPA_TRACE_EVT(trace_, instant(obs::Ev::kTileDispatched, node_,
                                cpu.logical_now(), tile.waiters.size()));

  // Take the waiters out: running them may append new waiters to this tile.
  // `tile` must not be touched past this point — a nested require() can grow
  // m_, which relocates entries.
  const GlobalRef ref = tile.ref;
  auto waiters = std::move(tile.waiters);
  tile.waiters.clear();
  for (const ThreadFn& fn : waiters) {
    DPA_TRACE_EVT(trace_, instant(obs::Ev::kThreadResumed, node_,
                                  cpu.logical_now()));
    run_thread(cpu, fn, ref.addr);
    stats_.outstanding_threads.add(-1);
  }
  DPA_TRACE_EVT(trace_, instant(obs::Ev::kTileClosed, node_,
                                cpu.logical_now()));
}

bool DpaEngine::run_ready_tile(sim::Cpu& cpu) {
  if (ready_tiles_.empty()) return false;
  const void* addr = ready_tiles_.front();
  ready_tiles_.pop_front();
  dispatch_tile(cpu, addr);
  return true;
}

bool DpaEngine::run_in_order(sim::Cpu& cpu) {
  if (order_.empty()) return false;
  OrderUnit& head = order_.front();
  if (head.tile == nullptr) {
    OrderUnit unit = std::move(head);
    order_.pop_front();
    run_thread(cpu, unit.fn, unit.ref.addr);
    stats_.outstanding_threads.add(-1);
    return true;
  }
  const void* addr = head.tile;
  auto it = m_.find(addr);
  DPA_DCHECK(it != m_.end());
  Tile& tile = it->second;
  // Shouldn't happen under the create-all template (buffers are flushed
  // before consumption), but make progress possible regardless. The head of
  // the order queue is blocking on this request, so push it all the way out
  // of the backend's outbound buffers as well.
  if (tile.st == Tile::St::kFresh) {
    flush_dest(cpu, tile.ref.home);
    cluster_.exec().flush(cpu, node_);
  }
  if (tile.st != Tile::St::kReady) return false;  // head-of-line wait
  order_.pop_front();
  dispatch_tile(cpu, addr);
  return true;
}

bool DpaEngine::run_local_threads(sim::Cpu& cpu) {
  if (local_ready_.empty()) return false;
  for (std::size_t i = 0; i < kLocalBatch && !local_ready_.empty(); ++i) {
    auto [ref, fn] = std::move(local_ready_.front());
    local_ready_.pop_front();
    run_thread(cpu, fn, ref.addr);
    stats_.outstanding_threads.add(-1);
  }
  return true;
}

bool DpaEngine::strip_has_uncreated() const {
  return next_root_ < strip_end_;
}

bool DpaEngine::create_next_root(sim::Cpu& cpu) {
  if (!strip_has_uncreated()) return false;
  ++stats_.roots_created;
  Ctx ctx(*this, cpu);
  work_.item(ctx, next_root_++);
  return true;
}

void DpaEngine::flush_dest(sim::Cpu& cpu, NodeId dest) {
  auto& buf = agg_[dest];
  if (buf.empty()) return;
  std::vector<GlobalRef> refs = std::move(buf);
  buf.clear();
  DPA_DCHECK(agg_total_ >= refs.size());
  agg_total_ -= std::uint32_t(refs.size());
  for (const GlobalRef& ref : refs) {
    auto it = m_.find(ref.addr);
    DPA_DCHECK(it != m_.end());
    DPA_DCHECK(it->second.st == Tile::St::kFresh);
    it->second.st = Tile::St::kRequested;
    it->second.requested_at = cpu.logical_now();
  }
  outstanding_ += refs.size();
  cpu.charge(cfg_.cost.flush_fixed, sim::Work::kComm);
  send_request(cpu, dest, std::move(refs));
}

bool DpaEngine::flush_requests(sim::Cpu& cpu) {
  if (agg_total_ == 0) return false;
  for (NodeId d = 0; d < agg_.size(); ++d) flush_dest(cpu, d);
  // Tile boundary: the aggregation buffers just drained into the fabric, so
  // push the backend's own outbound buffering (native message trains) too —
  // request latency should track the engine's batching policy, not the
  // fabric's idle-flush backstop.
  cluster_.exec().flush(cpu, node_);
  return true;
}

bool DpaEngine::flush_all(sim::Cpu& cpu) {
  if (agg_total_ == 0 && acc_total_ == 0) return false;
  flush_requests(cpu);
  for (NodeId d = 0; d < acc_.size(); ++d) {
    auto& buf = acc_[d];
    if (buf.empty()) continue;
    std::vector<std::pair<GlobalRef, AccumFn>> items = std::move(buf);
    buf.clear();
    acc_total_ -= std::uint32_t(items.size());
    cpu.charge(cfg_.cost.flush_fixed, sim::Work::kComm);
    send_accum(cpu, d, std::move(items));
  }
  cluster_.exec().flush(cpu, node_);
  return true;
}

bool DpaEngine::strip_boundary(sim::Cpu& cpu) {
  if (loop_done_) return false;
  DPA_CHECK(ready_tiles_.empty() && local_ready_.empty() && order_.empty() &&
            outstanding_ == 0 && agg_total_ == 0 && acc_total_ == 0)
      << "strip boundary with live work on node " << node_;
  if (!m_.empty()) {
    // End of strip: renamed objects and thread slots are released.
    if (h_m_residency_ != nullptr) h_m_residency_->add(m_.size());
    m_.clear();
    stats_.m_entries.set(0);
  }
  if (next_root_ >= work_.count) {
    loop_done_ = true;
    return false;
  }
  cpu.charge(cfg_.cost.strip_setup, sim::Work::kRuntime);
  ++stats_.strips;
  strip_end_ = std::min<std::uint64_t>(work_.count, next_root_ + cfg_.strip_size);
  return true;
}

void DpaEngine::sched(sim::Cpu& cpu) {
  for (std::uint32_t unit = 0; unit < cfg_.poll_batch; ++unit) {
    if (!cfg_.pipelining && outstanding_ > 0) return;  // synchronous gets

    bool did = false;
    if (cfg_.deterministic) {
      // As create-all, but consumption is strictly in creation order via
      // order_; a not-yet-ready head parks the scheduler until the reply's
      // kick (correctness over overlap — see RuntimeConfig::deterministic).
      did = create_next_root(cpu) ||
            (!strip_has_uncreated() && flush_requests(cpu)) ||
            run_in_order(cpu);
    } else if (cfg_.sched_template == SchedTemplate::kCreateAllThenRun) {
      // Once the strip's roots are all created, push the batched requests
      // out *before* chewing through local work: the transfers then overlap
      // with it (this ordering is the point of the create-all template).
      // Accumulation buffers are NOT flushed here — nothing waits on them,
      // so they keep batching until the scheduler idles.
      did = create_next_root(cpu) ||
            (!strip_has_uncreated() && flush_requests(cpu)) ||
            run_ready_tile(cpu) || run_local_threads(cpu);
    } else {
      did = run_ready_tile(cpu) || run_local_threads(cpu) ||
            create_next_root(cpu);
    }
    if (did) continue;

    // Out of ready work: push out any buffered requests, then either wait
    // for replies or cross the strip boundary.
    if (flush_all(cpu)) continue;
    if (outstanding_ > 0) return;  // idle until a reply kicks us
    if (strip_boundary(cpu)) continue;
    return;  // conc loop complete
  }
  kick();  // yield to the inbox, then keep going
}

bool DpaEngine::done() const {
  return loop_done_ && ready_tiles_.empty() && local_ready_.empty() &&
         order_.empty() && outstanding_ == 0 && agg_total_ == 0 &&
         acc_total_ == 0;
}

std::string DpaEngine::state_dump() const {
  std::ostringstream os;
  os << "dpa node " << node_ << ": roots " << next_root_ << "/" << work_.count
     << " strip_end " << strip_end_ << " ready " << ready_tiles_.size()
     << " local " << local_ready_.size() << " order " << order_.size()
     << " outstanding " << outstanding_
     << " agg " << agg_total_ << " m " << m_.size()
     << (loop_done_ ? " loop-done" : " loop-running");
  return os.str();
}

}  // namespace dpa::rt
