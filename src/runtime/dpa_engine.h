// The DPA engine: the paper's runtime.
//
// State per node:
//   M     — pointer -> tile {request state, waiting threads}. Updated at
//           every thread-creation site; this is the explicit mapping the
//           paper uses to schedule both threads and communication.
//   ready — tiles whose data arrived: their threads execute back to back
//           (tiling / data reuse).
//   local — threads on node-local pointers (no communication needed).
//   agg   — per-destination buffers of not-yet-requested refs (aggregation).
//
// Strip-mining: the node's top-level conc loop is executed strip_size
// iterations at a time; M is cleared between strips, which bounds the memory
// held by suspended threads and renamed objects (the paper's k-bounded
// loops). Within a strip, every thread that names the same pointer shares
// one fetch and executes in the same tile.
//
// Configurations:
//   pipelining off  -> each new remote ref is requested synchronously; the
//                      node stalls until the reply (Base in the breakdown
//                      figures; tiling still works).
//   aggregation off -> each ref is requested in its own message as soon as
//                      it is created (+Pipelining).
//   both on         -> refs accumulate per destination and flush when a
//                      buffer fills or the scheduler runs out of ready work
//                      (+Aggregation; full DPA).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "runtime/engine.h"
#include "support/small_vector.h"

namespace dpa::rt {

class DpaEngine final : public EngineBase {
 public:
  DpaEngine(Cluster& cluster, NodeId node, const RuntimeConfig& cfg,
            Arena& arena, fm::HandlerId h_req, fm::HandlerId h_reply,
            fm::HandlerId h_accum, fm::HandlerId h_ack);

  void require(sim::Cpu& cpu, GlobalRef ref, ThreadFn thread) override;
  void accumulate(sim::Cpu& cpu, GlobalRef ref, AccumFn update) override;
  void on_reply(sim::Cpu& cpu, const ReplyPayload& reply) override;
  bool done() const override;
  std::string state_dump() const override;

 private:
  struct Tile {
    enum class St : std::uint8_t {
      kFresh,      // in an aggregation buffer, not yet requested
      kRequested,  // request in flight
      kReady,      // data available locally (renamed)
    };
    GlobalRef ref;
    St st = St::kFresh;
    bool queued = false;  // present in ready_tiles_ / order_
    sim::Time requested_at = 0;  // when the fetch left (ref-latency metric)
    SmallVector<ThreadFn, 2> waiters;
  };

  // Deterministic mode (cfg.deterministic): one entry per dispatchable unit
  // in thread-creation order — either a tile (by address) or a single
  // local-pointer thread. Consumed strictly head-first; a head tile whose
  // reply has not arrived stalls consumption (head-of-line wait), which is
  // what makes the execution order — and the floating-point accumulation
  // order — independent of message timing.
  struct OrderUnit {
    const void* tile = nullptr;  // null => local thread below
    GlobalRef ref;
    ThreadFn fn;
  };

  void sched(sim::Cpu& cpu) override;

  // Scheduler actions; each returns true if it did a unit of work.
  bool run_ready_tile(sim::Cpu& cpu);
  bool run_in_order(sim::Cpu& cpu);  // deterministic-mode consumer
  bool run_local_threads(sim::Cpu& cpu);
  bool create_next_root(sim::Cpu& cpu);
  bool flush_all(sim::Cpu& cpu);       // requests + accumulations
  bool flush_requests(sim::Cpu& cpu);  // request buffers only

  // Dispatches the tile at `addr`: runs its waiters back to back. Looks the
  // tile up itself and drops the reference before running threads — a
  // nested require() may grow m_, and the flat table relocates entries.
  void dispatch_tile(sim::Cpu& cpu, const void* addr);
  void flush_dest(sim::Cpu& cpu, NodeId dest);
  bool strip_boundary(sim::Cpu& cpu);
  bool strip_has_uncreated() const;

  // Scheduler queues live on the phase arena: entries churn at thread rate
  // and all die by phase end, so the deques' node blocks recycle through the
  // arena's free lists instead of the global allocator.
  template <class T>
  using ArenaDeque = std::deque<T, ArenaAllocator<T>>;

  FlatMap<const void*, Tile> m_;
  ArenaDeque<const void*> ready_tiles_;
  ArenaDeque<std::pair<GlobalRef, ThreadFn>> local_ready_;
  ArenaDeque<OrderUnit> order_;  // deterministic mode only
  std::vector<std::vector<GlobalRef>> agg_;  // per-destination Fresh refs
  std::uint32_t agg_total_ = 0;
  // Per-destination buffered accumulations (flushed with the requests).
  std::vector<std::vector<std::pair<GlobalRef, AccumFn>>> acc_;
  std::uint32_t acc_total_ = 0;
  std::uint64_t strip_end_ = 0;    // roots [strip_begin, strip_end) created
  std::uint64_t outstanding_ = 0;  // refs requested, reply pending
  const void* sync_wait_ = nullptr;  // pipelining off: ref being awaited
  bool loop_done_ = false;

  // Observability histograms (null when no session is attached).
  Pow2Histogram* h_ref_latency_ = nullptr;     // request depart -> reply, ns
  Pow2Histogram* h_tile_occupancy_ = nullptr;  // threads per dispatched tile
  Pow2Histogram* h_m_residency_ = nullptr;     // |M| at each strip boundary
};

}  // namespace dpa::rt
