#include "runtime/phase.h"

#include <cstring>
#include <sstream>
#include <string_view>
#include <utility>

#include "obs/metrics.h"
#include "runtime/dpa_engine.h"
#include "runtime/prefetch_engine.h"
#include "runtime/sync_engine.h"
#include "support/assert.h"

namespace dpa::rt {

namespace {
double mean_component(const PhaseResult& r, Time NodeBreakdown::*field) {
  if (r.nodes.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& n : r.nodes) sum += sim::to_seconds(n.*field);
  return sum / double(r.nodes.size());
}

// Byte-buffer helpers for the wire codecs and the epilogue blob (native
// endianness: both ends are fork-related processes on one machine).
void put_raw(std::vector<std::uint8_t>& b, const void* p, std::size_t n) {
  const auto* c = static_cast<const std::uint8_t*>(p);
  b.insert(b.end(), c, c + n);
}
template <class T>
void put(std::vector<std::uint8_t>& b, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put_raw(b, &v, sizeof(v));
}
template <class T>
T get(const std::uint8_t*& p, const std::uint8_t* end) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v;
  DPA_CHECK(std::size_t(end - p) >= sizeof(v)) << "truncated wire payload";
  std::memcpy(&v, p, sizeof(v));
  p += sizeof(v);
  return v;
}

// The runtime's four wire payloads, flattened for the multi-process
// backend. GlobalRef is trivially copyable (a host pointer + home + size;
// the pointer stays valid across fork — same address space layout), so
// ref vectors travel as raw arrays. AccumFn closures travel as their
// inline capture bytes plus the ops-table pointer as a type token — only
// trivially marshallable closures may cross (DPA_CHECKed at marshal).

exec::WireCodec req_codec() {
  return exec::WireCodec{
      [](const void* data, std::uint32_t) {
        const auto* req = static_cast<const ReqPayload*>(data);
        std::vector<std::uint8_t> b;
        put(b, req->rel_seq);
        put(b, req->requester);
        put(b, std::uint32_t(req->refs.size()));
        put_raw(b, req->refs.data(), req->refs.size() * sizeof(GlobalRef));
        return b;
      },
      [](const std::uint8_t* p, std::size_t len) -> std::shared_ptr<void> {
        const std::uint8_t* end = p + len;
        auto req = std::make_shared<ReqPayload>();
        req->rel_seq = get<std::uint64_t>(p, end);
        req->requester = get<NodeId>(p, end);
        const auto count = get<std::uint32_t>(p, end);
        req->refs.resize(count);
        DPA_CHECK(std::size_t(end - p) == count * sizeof(GlobalRef));
        std::memcpy(req->refs.data(), p, count * sizeof(GlobalRef));
        return req;
      }};
}

exec::WireCodec reply_codec() {
  return exec::WireCodec{
      [](const void* data, std::uint32_t) {
        const auto* reply = static_cast<const ReplyPayload*>(data);
        std::vector<std::uint8_t> b;
        put(b, reply->rel_seq);
        put(b, std::uint32_t(reply->refs.size()));
        put_raw(b, reply->refs.data(),
                reply->refs.size() * sizeof(GlobalRef));
        return b;
      },
      [](const std::uint8_t* p, std::size_t len) -> std::shared_ptr<void> {
        const std::uint8_t* end = p + len;
        auto reply = std::make_shared<ReplyPayload>();
        reply->rel_seq = get<std::uint64_t>(p, end);
        const auto count = get<std::uint32_t>(p, end);
        reply->refs.resize(count);
        DPA_CHECK(std::size_t(end - p) == count * sizeof(GlobalRef));
        std::memcpy(reply->refs.data(), p, count * sizeof(GlobalRef));
        return reply;
      }};
}

exec::WireCodec accum_codec() {
  return exec::WireCodec{
      [](const void* data, std::uint32_t) {
        const auto* accum = static_cast<const AccumPayload*>(data);
        std::vector<std::uint8_t> b;
        put(b, accum->rel_seq);
        put(b, accum->accum_seq);
        put(b, std::uint32_t(accum->items.size()));
        for (const auto& [ref, fn] : accum->items) {
          DPA_CHECK(fn.is_trivially_marshallable())
              << "accumulate closure captures non-trivial state and cannot "
              << "cross a process boundary";
          put(b, ref);
          put(b, std::uint64_t(std::uintptr_t(fn.marshal_ops())));
          put(b, std::uint32_t(fn.raw_size()));
          put_raw(b, fn.raw_bytes(), fn.raw_size());
        }
        return b;
      },
      [](const std::uint8_t* p, std::size_t len) -> std::shared_ptr<void> {
        const std::uint8_t* end = p + len;
        auto accum = std::make_shared<AccumPayload>();
        accum->rel_seq = get<std::uint64_t>(p, end);
        accum->accum_seq = get<std::uint64_t>(p, end);
        const auto count = get<std::uint32_t>(p, end);
        accum->items.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          auto ref = get<GlobalRef>(p, end);
          const auto ops = get<std::uint64_t>(p, end);
          const auto size = get<std::uint32_t>(p, end);
          DPA_CHECK(std::size_t(end - p) >= size);
          AccumFn fn = AccumFn::adopt_raw(
              reinterpret_cast<const void*>(std::uintptr_t(ops)), p, size);
          p += size;
          DPA_CHECK(bool(fn)) << "accumulate closure failed to rehydrate";
          accum->items.emplace_back(ref, std::move(fn));
        }
        return accum;
      }};
}

exec::WireCodec ack_codec() {
  return exec::WireCodec{
      [](const void* data, std::uint32_t) {
        std::vector<std::uint8_t> b;
        put(b, *static_cast<const AckPayload*>(data));
        return b;
      },
      [](const std::uint8_t* p, std::size_t len) -> std::shared_ptr<void> {
        const std::uint8_t* end = p + len;
        return std::make_shared<AckPayload>(get<AckPayload>(p, end));
      }};
}
}  // namespace

double PhaseResult::mean_compute_s() const {
  return mean_component(*this, &NodeBreakdown::compute);
}
double PhaseResult::mean_runtime_s() const {
  return mean_component(*this, &NodeBreakdown::runtime);
}
double PhaseResult::mean_comm_s() const {
  return mean_component(*this, &NodeBreakdown::comm);
}
double PhaseResult::mean_idle_s() const {
  return mean_component(*this, &NodeBreakdown::idle);
}

PhaseRunner::PhaseRunner(Cluster& cluster, RuntimeConfig cfg)
    : cluster_(cluster), cfg_(std::move(cfg)) {
  cfg_.validate();
  // Fail at construction, not from a schedule_at panic mid-phase: the
  // retry/timeout protocol arms retransmit timers, which only a backend
  // with deferred timers (the simulator) can run.
  DPA_CHECK(!cfg_.retry.enabled || cluster_.exec().supports_timers())
      << "retry/timeout reliability config needs a backend with deferred "
      << "timers; --backend=native and --backend=proc cannot honor it "
      << "(their fabrics are lossless — proc's reliability lives inside "
      << "the transport) — drop the retry config or run with --backend=sim";
  arenas_.reserve(cluster_.num_nodes());
  for (std::uint32_t i = 0; i < cluster_.num_nodes(); ++i)
    arenas_.push_back(std::make_unique<Arena>());
  // Every sequenced message passes rel_accept first: it acks the copy and
  // rejects retransmitted / fabric-duplicated deliveries, so the engine
  // proper sees exactly-once semantics even on a lossy network. Handlers
  // run as tasks on the destination node — on the native backend that is
  // the destination's worker thread, so each touches only its own engine.
  auto& backend = cluster_.exec();
  h_req_ = backend.register_handler(
      "rt.request", [this](sim::Cpu& cpu, const fm::Packet& pkt) {
        auto* req = static_cast<ReqPayload*>(pkt.data.get());
        auto& engine = *engines_[pkt.dst];
        if (!engine.rel_accept(cpu, pkt.src, req->rel_seq)) return;
        engine.serve_request(cpu, *req);
      });
  h_reply_ = backend.register_handler(
      "rt.reply", [this](sim::Cpu& cpu, const fm::Packet& pkt) {
        auto* reply = static_cast<ReplyPayload*>(pkt.data.get());
        auto& engine = *engines_[pkt.dst];
        if (!engine.rel_accept(cpu, pkt.src, reply->rel_seq)) return;
        engine.on_reply(cpu, *reply);
      });
  h_accum_ = backend.register_handler(
      "rt.accum", [this](sim::Cpu& cpu, const fm::Packet& pkt) {
        auto payload = std::static_pointer_cast<AccumPayload>(pkt.data);
        auto& engine = *engines_[pkt.dst];
        if (!engine.rel_accept(cpu, pkt.src, payload->rel_seq)) return;
        engine.serve_accum(cpu, pkt.src, std::move(payload));
      });
  h_ack_ = backend.register_handler(
      "rt.ack", [this](sim::Cpu& cpu, const fm::Packet& pkt) {
        auto* ack = static_cast<AckPayload*>(pkt.data.get());
        engines_[pkt.dst]->on_ack(cpu, *ack);
      });
  // Byte codecs for the multi-process backend (no-ops elsewhere): how each
  // payload crosses a process boundary when src and dst live in different
  // workers.
  backend.set_wire_codec(h_req_, req_codec());
  backend.set_wire_codec(h_reply_, reply_codec());
  backend.set_wire_codec(h_accum_, accum_codec());
  backend.set_wire_codec(h_ack_, ack_codec());
}

std::unique_ptr<EngineBase> PhaseRunner::make_engine(NodeId node) {
  Arena& arena = *arenas_[node];
  switch (cfg_.kind) {
    case EngineKind::kDpa:
      return std::make_unique<DpaEngine>(cluster_, node, cfg_, arena, h_req_,
                                         h_reply_, h_accum_, h_ack_);
    case EngineKind::kCaching:
      return std::make_unique<SyncEngine>(cluster_, node, cfg_, arena,
                                          h_req_, h_reply_, h_accum_, h_ack_,
                                          /*use_cache=*/true);
    case EngineKind::kBlocking:
      return std::make_unique<SyncEngine>(cluster_, node, cfg_, arena,
                                          h_req_, h_reply_, h_accum_, h_ack_,
                                          /*use_cache=*/false);
    case EngineKind::kPrefetch:
      return std::make_unique<PrefetchEngine>(cluster_, node, cfg_, arena,
                                              h_req_, h_reply_, h_accum_,
                                              h_ack_);
  }
  DPA_PANIC("unknown engine kind");
}

PhaseResult PhaseRunner::run(std::vector<NodeWork> work,
                             std::string_view name) {
  const std::uint32_t n = cluster_.num_nodes();
  DPA_CHECK(work.size() == n)
      << "phase needs one NodeWork per node: " << work.size() << " != " << n;

  // Tear down the previous run's engines *before* resetting the arenas
  // their queues lived on, then hand the recycled chunks to the new ones.
  engines_.clear();
  for (auto& arena : arenas_) arena->reset();
  engines_.reserve(n);
  for (NodeId i = 0; i < n; ++i) engines_.push_back(make_engine(i));

  auto& backend = cluster_.exec();

  // The phase epilogue runs once per node after quiescence, *in the
  // process that owns the node*: commit the staged accumulations in
  // (src, accum_seq) order — the deterministic half of the two-level
  // reduction, identical on every backend — then flatten the node's
  // result (done flag, runtime stats, diagnostics) into a blob the
  // multi-process backend can ship home. Installed before run_phase so
  // forked workers inherit it.
  backend.set_phase_epilogue([this](NodeId node) {
    EngineBase& engine = *engines_[node];
    engine.commit_accums();
    const std::uint8_t done = engine.done() ? 1 : 0;
    const std::string dump = done ? std::string() : engine.state_dump();
    std::vector<std::uint8_t> b;
    put(b, done);
    put(b, engine.stats());
    put(b, std::uint32_t(dump.size()));
    put_raw(b, dump.data(), dump.size());
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  });

  const Time phase_start = backend.begin_phase();
  if (cluster_.obs != nullptr)
    cluster_.obs->tracer.phase_begin(name, phase_start);
  for (NodeId i = 0; i < n; ++i) engines_[i]->start(std::move(work[i]));

  PhaseResult result;
  const exec::PhaseExec pe = backend.run_phase();
  result.elapsed = pe.elapsed;
  result.sim_events = pe.events;
  if (cluster_.obs != nullptr)
    cluster_.obs->tracer.phase_end(name, phase_start + result.elapsed);

  // Collect the per-node epilogue blobs: computed inline right here on
  // single-process backends, shipped from the owning workers on the
  // multi-process one. An empty blob means the owning process died before
  // the phase barrier.
  const std::vector<std::string> blobs = backend.collect_epilogues(n);
  result.completed = true;
  std::ostringstream diag;
  std::vector<RtNodeStats> node_rt(n);
  for (NodeId i = 0; i < n; ++i) {
    if (blobs[i].empty()) {
      result.completed = false;
      continue;
    }
    const auto* p = reinterpret_cast<const std::uint8_t*>(blobs[i].data());
    const std::uint8_t* end = p + blobs[i].size();
    const bool done = get<std::uint8_t>(p, end) != 0;
    node_rt[i] = get<RtNodeStats>(p, end);
    const auto dump_len = get<std::uint32_t>(p, end);
    if (!done) {
      result.completed = false;
      diag << std::string_view(reinterpret_cast<const char*>(p), dump_len)
           << "\n";
    }
  }
  if (const std::string bd = backend.phase_diagnostics(); !bd.empty()) {
    result.completed = false;
    diag << bd << "\n";
  }
  result.diagnostics = diag.str();

  result.nodes.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    const auto& proc = backend.node_stats(i);
    auto& nb = result.nodes[i];
    nb.compute = proc.busy[int(sim::Work::kCompute)];
    nb.runtime = proc.busy[int(sim::Work::kRuntime)];
    nb.comm = proc.busy[int(sim::Work::kComm)];
    nb.busy_total = proc.busy_total;
    nb.idle = backend.idle_time(i, result.elapsed);
    result.rt.absorb(node_rt[i]);
  }
  if (sim::Machine* m = backend.sim_machine()) {
    result.net = m->network().stats();
    if (const auto* injector = m->network().injector())
      result.faults = injector->stats();
  }
  result.fm_total = backend.msg_stats_total();

  if (cluster_.obs != nullptr) {
    auto& m = cluster_.obs->metrics;
    result.rt.publish(m);
    *m.counter("rt.phases") += 1;
    // Transport-layer aliases. The reliability protocol lives in
    // transport::Reliable and trains depart through transport::Channel, so
    // the same counters are published under transport.* alongside the
    // legacy rt.* / exec.trains names (scripts/check_obs_json.py checks
    // each pair stays equal). trains_sent covers both fabrics: mailbox
    // hand-offs on native, FM-layer message trains on sim.
    *m.counter("transport.retries") += result.rt.retries;
    *m.counter("transport.acks_sent") += result.rt.acks_sent;
    *m.counter("transport.acks_recv") += result.rt.acks_recv;
    *m.counter("transport.dup_msgs_dropped") += result.rt.dup_msgs_dropped;
    *m.counter("transport.trains_sent") += result.fm_total.trains_sent;
    if (backend.kind() == exec::BackendKind::kProc) {
      // Real bytes on the socketpair fabric, merged across all worker
      // processes (frame codec + reliability decorator counters).
      const exec::WireStatsTotal wt = backend.wire_stats_total();
      *m.counter("transport.wire_frames_sent") += wt.frames_sent;
      *m.counter("transport.wire_frames_recv") += wt.frames_recv;
      *m.counter("transport.wire_bytes_sent") += wt.bytes_sent;
      *m.counter("transport.wire_payloads_recv") += wt.payloads_recv;
      *m.counter("transport.wire_retries") += wt.retries;
      *m.counter("transport.wire_acks_sent") += wt.acks_sent;
      *m.counter("transport.wire_acks_recv") += wt.acks_recv;
      *m.counter("transport.wire_dup_dropped") += wt.dup_msgs_dropped;
    }
    if (backend.is_sim()) {
      *m.counter("sim.events") += result.sim_events;
      *m.counter("net.messages") += result.net.messages;
      *m.counter("net.bytes") += result.net.bytes;
    } else {
      // Native progress unit: tasks executed across all workers.
      *m.counter("exec.tasks") += result.sim_events;
      *m.counter("exec.elapsed_ns") += std::uint64_t(result.elapsed);
      // Fabric batching + scheduler behavior: mailbox handoffs (message
      // trains), condvar parks taken by idle workers, and whole-node
      // steals/activations from the M:N worker pool.
      *m.counter("exec.trains") += result.fm_total.trains_sent;
      const exec::SchedStats sched = backend.sched_stats();
      *m.counter("exec.parks") += sched.parks;
      *m.counter("exec.steals") += sched.steals;
      *m.counter("exec.activations") += sched.activations;
      // Drain the per-worker wall-clock profiles (task service time,
      // mailbox-lock wait, train occupancy, park duration, queue depth)
      // into the registry. Safe here: run_phase() returned, workers are
      // parked between phases.
      if (cluster_.obs->shards != nullptr)
        cluster_.obs->shards->publish_profiles(m);
    }
    *m.counter("fm.msgs_sent") += result.fm_total.msgs_sent;
    *m.counter("fm.frags_sent") += result.fm_total.frags_sent;
    *m.counter("fm.msgs_recv") += result.fm_total.msgs_recv;
    *m.counter("fm.bytes_sent") += result.fm_total.bytes_sent;
    *m.counter("fm.bytes_recv") += result.fm_total.bytes_recv;
    if (backend.lossy()) {
      *m.counter("net.fault.dropped_msgs") += result.faults.dropped_msgs;
      *m.counter("net.fault.dup_msgs") += result.faults.dup_msgs;
      *m.counter("net.fault.delayed_frags") += result.faults.delayed_frags;
      *m.counter("net.fault.pauses") += result.faults.pauses;
    }
  }
  return result;
}

}  // namespace dpa::rt
