#include "runtime/phase.h"

#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "runtime/dpa_engine.h"
#include "runtime/prefetch_engine.h"
#include "runtime/sync_engine.h"
#include "support/assert.h"

namespace dpa::rt {

namespace {
double mean_component(const PhaseResult& r, Time NodeBreakdown::*field) {
  if (r.nodes.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& n : r.nodes) sum += sim::to_seconds(n.*field);
  return sum / double(r.nodes.size());
}
}  // namespace

double PhaseResult::mean_compute_s() const {
  return mean_component(*this, &NodeBreakdown::compute);
}
double PhaseResult::mean_runtime_s() const {
  return mean_component(*this, &NodeBreakdown::runtime);
}
double PhaseResult::mean_comm_s() const {
  return mean_component(*this, &NodeBreakdown::comm);
}
double PhaseResult::mean_idle_s() const {
  return mean_component(*this, &NodeBreakdown::idle);
}

PhaseRunner::PhaseRunner(Cluster& cluster, RuntimeConfig cfg)
    : cluster_(cluster), cfg_(std::move(cfg)) {
  cfg_.validate();
  // Fail at construction, not from a schedule_at panic mid-phase: the
  // retry/timeout protocol arms retransmit timers, which only a backend
  // with deferred timers (the simulator) can run.
  DPA_CHECK(!cfg_.retry.enabled || cluster_.exec().supports_timers())
      << "retry/timeout reliability config needs a backend with deferred "
      << "timers; --backend=native cannot honor it (its in-process fabric "
      << "is lossless and has no timer wheel) — drop the retry config or "
      << "run with --backend=sim";
  arenas_.reserve(cluster_.num_nodes());
  for (std::uint32_t i = 0; i < cluster_.num_nodes(); ++i)
    arenas_.push_back(std::make_unique<Arena>());
  // Every sequenced message passes rel_accept first: it acks the copy and
  // rejects retransmitted / fabric-duplicated deliveries, so the engine
  // proper sees exactly-once semantics even on a lossy network. Handlers
  // run as tasks on the destination node — on the native backend that is
  // the destination's worker thread, so each touches only its own engine.
  auto& backend = cluster_.exec();
  h_req_ = backend.register_handler(
      "rt.request", [this](sim::Cpu& cpu, const fm::Packet& pkt) {
        auto* req = static_cast<ReqPayload*>(pkt.data.get());
        auto& engine = *engines_[pkt.dst];
        if (!engine.rel_accept(cpu, pkt.src, req->rel_seq)) return;
        engine.serve_request(cpu, *req);
      });
  h_reply_ = backend.register_handler(
      "rt.reply", [this](sim::Cpu& cpu, const fm::Packet& pkt) {
        auto* reply = static_cast<ReplyPayload*>(pkt.data.get());
        auto& engine = *engines_[pkt.dst];
        if (!engine.rel_accept(cpu, pkt.src, reply->rel_seq)) return;
        engine.on_reply(cpu, *reply);
      });
  h_accum_ = backend.register_handler(
      "rt.accum", [this](sim::Cpu& cpu, const fm::Packet& pkt) {
        auto payload = std::static_pointer_cast<AccumPayload>(pkt.data);
        auto& engine = *engines_[pkt.dst];
        if (!engine.rel_accept(cpu, pkt.src, payload->rel_seq)) return;
        engine.serve_accum(cpu, pkt.src, std::move(payload));
      });
  h_ack_ = backend.register_handler(
      "rt.ack", [this](sim::Cpu& cpu, const fm::Packet& pkt) {
        auto* ack = static_cast<AckPayload*>(pkt.data.get());
        engines_[pkt.dst]->on_ack(cpu, *ack);
      });
}

std::unique_ptr<EngineBase> PhaseRunner::make_engine(NodeId node) {
  Arena& arena = *arenas_[node];
  switch (cfg_.kind) {
    case EngineKind::kDpa:
      return std::make_unique<DpaEngine>(cluster_, node, cfg_, arena, h_req_,
                                         h_reply_, h_accum_, h_ack_);
    case EngineKind::kCaching:
      return std::make_unique<SyncEngine>(cluster_, node, cfg_, arena,
                                          h_req_, h_reply_, h_accum_, h_ack_,
                                          /*use_cache=*/true);
    case EngineKind::kBlocking:
      return std::make_unique<SyncEngine>(cluster_, node, cfg_, arena,
                                          h_req_, h_reply_, h_accum_, h_ack_,
                                          /*use_cache=*/false);
    case EngineKind::kPrefetch:
      return std::make_unique<PrefetchEngine>(cluster_, node, cfg_, arena,
                                              h_req_, h_reply_, h_accum_,
                                              h_ack_);
  }
  DPA_PANIC("unknown engine kind");
}

PhaseResult PhaseRunner::run(std::vector<NodeWork> work,
                             std::string_view name) {
  const std::uint32_t n = cluster_.num_nodes();
  DPA_CHECK(work.size() == n)
      << "phase needs one NodeWork per node: " << work.size() << " != " << n;

  // Tear down the previous run's engines *before* resetting the arenas
  // their queues lived on, then hand the recycled chunks to the new ones.
  engines_.clear();
  for (auto& arena : arenas_) arena->reset();
  engines_.reserve(n);
  for (NodeId i = 0; i < n; ++i) engines_.push_back(make_engine(i));

  auto& backend = cluster_.exec();
  const Time phase_start = backend.begin_phase();
  if (cluster_.obs != nullptr)
    cluster_.obs->tracer.phase_begin(name, phase_start);
  for (NodeId i = 0; i < n; ++i) engines_[i]->start(std::move(work[i]));

  PhaseResult result;
  const exec::PhaseExec pe = backend.run_phase();
  result.elapsed = pe.elapsed;
  result.sim_events = pe.events;
  if (cluster_.obs != nullptr)
    cluster_.obs->tracer.phase_end(name, phase_start + result.elapsed);

  // The deterministic half of the two-level reduction: staged accumulation
  // messages mutate their objects here, in (src, seq) order, after global
  // quiescence — identical on both backends.
  for (NodeId i = 0; i < n; ++i) engines_[i]->commit_accums();

  result.completed = true;
  std::ostringstream diag;
  for (NodeId i = 0; i < n; ++i) {
    if (!engines_[i]->done()) {
      result.completed = false;
      diag << engines_[i]->state_dump() << "\n";
    }
  }
  result.diagnostics = diag.str();

  result.nodes.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    const auto& proc = backend.node_stats(i);
    auto& nb = result.nodes[i];
    nb.compute = proc.busy[int(sim::Work::kCompute)];
    nb.runtime = proc.busy[int(sim::Work::kRuntime)];
    nb.comm = proc.busy[int(sim::Work::kComm)];
    nb.busy_total = proc.busy_total;
    nb.idle = backend.idle_time(i, result.elapsed);
    result.rt.absorb(engines_[i]->stats());
  }
  if (sim::Machine* m = backend.sim_machine()) {
    result.net = m->network().stats();
    if (const auto* injector = m->network().injector())
      result.faults = injector->stats();
  }
  result.fm_total = backend.msg_stats_total();

  if (cluster_.obs != nullptr) {
    auto& m = cluster_.obs->metrics;
    result.rt.publish(m);
    *m.counter("rt.phases") += 1;
    // Transport-layer aliases. The reliability protocol lives in
    // transport::Reliable and trains depart through transport::Channel, so
    // the same counters are published under transport.* alongside the
    // legacy rt.* / exec.trains names (scripts/check_obs_json.py checks
    // each pair stays equal). trains_sent covers both fabrics: mailbox
    // hand-offs on native, FM-layer message trains on sim.
    *m.counter("transport.retries") += result.rt.retries;
    *m.counter("transport.acks_sent") += result.rt.acks_sent;
    *m.counter("transport.acks_recv") += result.rt.acks_recv;
    *m.counter("transport.dup_msgs_dropped") += result.rt.dup_msgs_dropped;
    *m.counter("transport.trains_sent") += result.fm_total.trains_sent;
    if (backend.is_sim()) {
      *m.counter("sim.events") += result.sim_events;
      *m.counter("net.messages") += result.net.messages;
      *m.counter("net.bytes") += result.net.bytes;
    } else {
      // Native progress unit: tasks executed across all workers.
      *m.counter("exec.tasks") += result.sim_events;
      *m.counter("exec.elapsed_ns") += std::uint64_t(result.elapsed);
      // Fabric batching + scheduler behavior: mailbox handoffs (message
      // trains), condvar parks taken by idle workers, and whole-node
      // steals/activations from the M:N worker pool.
      *m.counter("exec.trains") += result.fm_total.trains_sent;
      const exec::SchedStats sched = backend.sched_stats();
      *m.counter("exec.parks") += sched.parks;
      *m.counter("exec.steals") += sched.steals;
      *m.counter("exec.activations") += sched.activations;
      // Drain the per-worker wall-clock profiles (task service time,
      // mailbox-lock wait, train occupancy, park duration, queue depth)
      // into the registry. Safe here: run_phase() returned, workers are
      // parked between phases.
      if (cluster_.obs->shards != nullptr)
        cluster_.obs->shards->publish_profiles(m);
    }
    *m.counter("fm.msgs_sent") += result.fm_total.msgs_sent;
    *m.counter("fm.frags_sent") += result.fm_total.frags_sent;
    *m.counter("fm.msgs_recv") += result.fm_total.msgs_recv;
    *m.counter("fm.bytes_sent") += result.fm_total.bytes_sent;
    *m.counter("fm.bytes_recv") += result.fm_total.bytes_recv;
    if (backend.lossy()) {
      *m.counter("net.fault.dropped_msgs") += result.faults.dropped_msgs;
      *m.counter("net.fault.dup_msgs") += result.faults.dup_msgs;
      *m.counter("net.fault.delayed_frags") += result.faults.delayed_frags;
      *m.counter("net.fault.pauses") += result.faults.pauses;
    }
  }
  return result;
}

}  // namespace dpa::rt
