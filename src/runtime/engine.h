// Engine interface: what an application phase programs against, and what the
// three scheduling policies (DPA / caching / blocking) implement.
//
// The application expresses its computation as non-blocking threads — the
// form the paper's compiler produces. A thread is a continuation plus the
// global pointer it is labeled with:
//
//   ctx.require(cell_ptr, [=](Ctx& ctx, const Cell& cell) {
//     ctx.charge(interaction_cost);
//     ... read cell's fields, create more threads ...
//   });
//
// How `require` is satisfied is the engine's policy:
//   * DPA       — registers the thread in M[ptr]; tiles, pipelines,
//                 aggregates (the paper's contribution).
//   * caching   — hash-probe a software cache; blocking fetch on miss.
//   * blocking  — synchronous fetch on every remote access.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/backend.h"
#include "fm/fm.h"
#include "gas/global_ptr.h"
#include "gas/heap.h"
#include "obs/session.h"
#include "runtime/config.h"
#include "runtime/stats.h"
#include "sim/machine.h"
#include "support/arena.h"
#include "support/flat_map.h"
#include "support/inline_fn.h"
#include "transport/reliable.h"

namespace dpa::rt {

using gas::GlobalRef;
using gas::GPtr;
using sim::NodeId;
using sim::Time;

class Ctx;

// A non-blocking thread body: runs to completion with its object available.
// Move-only with a 48-byte inline capture buffer — every thread creation in
// the timed phases stays allocation-free (the apps capture a couple of
// pointers; oversized captures still work via a heap fallback).
using ThreadFn = InlineFn<void(Ctx&, const void*), 48>;

// A commutative update applied to an object at its home node (the paper's
// "reductions" extension: remote writes that need no reply).
using AccumFn = InlineFn<void(void*), 48>;

// One node's share of a phase: a top-level conc loop of `count` iterations.
// `item(ctx, i)` creates the root thread(s) of iteration i. InlineFn like
// every other phase-hot callable; app captures that exceed the buffer fall
// back to one heap block per *phase*, not per message.
struct NodeWork {
  std::uint64_t count = 0;
  InlineFn<void(Ctx&, std::uint64_t), 64> item;
};

// Execution substrate + messaging + heap: everything an application needs
// to build and run a distributed pointer-based computation. The substrate
// is either the deterministic simulator (default) or the native threaded
// backend — apps and engines program against this struct either way.
struct Cluster {
  std::unique_ptr<exec::Backend> backend;
  gas::GlobalHeap heap;
  obs::Session* obs = nullptr;  // optional, non-owning

  Cluster(std::uint32_t num_nodes, sim::NetParams params)
      : Cluster(num_nodes, exec::BackendKind::kSim, params) {}

  Cluster(std::uint32_t num_nodes, exec::BackendKind kind,
          sim::NetParams params = sim::NetParams{})
      : backend(exec::make_backend(kind, num_nodes, params)),
        heap(num_nodes) {
    // Multi-process backends snapshot/diff registered memory spans at the
    // phase barrier; every global-heap object is such a span. No-op on
    // single-process backends.
    backend->set_span_source([h = &heap](std::vector<exec::PhaseSpan>& out) {
      for (const gas::GlobalHeap::Span& s : h->object_spans())
        out.push_back(exec::PhaseSpan{s.addr, s.bytes, exec::SpanMerge::kBytes});
    });
  }

  std::uint32_t num_nodes() const { return backend->num_nodes(); }
  exec::Backend& exec() { return *backend; }
  const exec::Backend& exec() const { return *backend; }

  // Sim-only accessors for tests and harnesses that poke the simulator
  // directly (network stats, targeted fault injection, trace plumbing).
  sim::Machine& machine() {
    sim::Machine* m = backend->sim_machine();
    DPA_CHECK(m != nullptr) << "cluster is not on the sim backend";
    return *m;
  }
  fm::FmLayer& fm();

  // Attaches (or detaches, with nullptr) an observability session: the
  // machine and network report task/wire events into its tracer, engines
  // record structured events and histograms, and the phase runner publishes
  // per-phase totals into its metrics registry. In DPA_TRACE=OFF builds no
  // trace sink is ever hooked up; metrics publication still works. On the
  // native backend engines record into per-worker shards (one lock-free
  // ring + histogram set per worker, see obs/shard_sink.h) instead of the
  // single-threaded tracer ring.
  void attach_obs(obs::Session* session) {
    obs = session;
    if (sim::Machine* m = backend->sim_machine()) {
      m->set_trace(session != nullptr && obs::kTraceEnabled
                       ? &session->tracer
                       : nullptr);
    } else if (backend->supports_tracing()) {
      backend->attach_shards(session != nullptr && obs::kTraceEnabled
                                 ? session->ensure_shards(backend->num_nodes())
                                 : nullptr);
    }
  }
};

// Wire payloads. The simulation shares one address space; `bytes` on the FM
// packet models the marshalled size.
//
// `rel_seq` is the reliability layer's per-sender sequence number: 0 means
// unsequenced (protocol off), otherwise the receiver acks it and dedups
// retransmitted copies (see EngineBase::rel_accept).
struct ReqPayload {
  std::uint64_t rel_seq = 0;
  NodeId requester = 0;
  std::vector<GlobalRef> refs;
};
struct ReplyPayload {
  std::uint64_t rel_seq = 0;
  std::vector<GlobalRef> refs;
};
struct AccumPayload {
  std::uint64_t rel_seq = 0;
  // Per-sender accumulation sequence number: the receiver stages arriving
  // messages and commits them in (src, accum_seq) order at the phase
  // barrier, so floating-point reduction order is a function of the
  // program, not of message timing — the property that makes physics
  // byte-identical across the sim and native backends.
  std::uint64_t accum_seq = 0;
  std::vector<std::pair<GlobalRef, AccumFn>> items;
};
// Acks are themselves unsequenced and never retried: a lost ack simply
// means the original message is retransmitted and re-acked.
struct AckPayload {
  NodeId from = 0;  // the node that received the acked message
  std::uint64_t seq = 0;
};

class EngineBase {
 public:
  // `arena` is the phase arena (owned by PhaseRunner, reset between runs):
  // engines back their scheduling queues with it so per-thread bookkeeping
  // never touches the general-purpose allocator inside a timed phase.
  EngineBase(Cluster& cluster, NodeId node, const RuntimeConfig& cfg,
             Arena& arena, fm::HandlerId h_req, fm::HandlerId h_reply,
             fm::HandlerId h_accum, fm::HandlerId h_ack);
  virtual ~EngineBase() = default;

  EngineBase(const EngineBase&) = delete;
  EngineBase& operator=(const EngineBase&) = delete;

  // Begins the node's conc loop; posts the first scheduler task.
  void start(NodeWork work);

  // Creates a thread dependent on `ref`; called from app code via Ctx.
  virtual void require(sim::Cpu& cpu, GlobalRef ref, ThreadFn thread) = 0;

  // Sends a commutative update to `ref`'s home (fire and forget). Local
  // homes apply immediately; the DPA engine batches remote ones per
  // destination alongside its request aggregation. No ordering guarantee
  // within a phase — updates must commute.
  virtual void accumulate(sim::Cpu& cpu, GlobalRef ref, AccumFn update);

  // Reply arrived for refs this node requested.
  virtual void on_reply(sim::Cpu& cpu, const ReplyPayload& reply) = 0;

  // True once the conc loop completed and all queues drained.
  virtual bool done() const = 0;

  // One-line state summary for deadlock diagnostics.
  virtual std::string state_dump() const = 0;

  // Home side: serve a request message (shared by all engines).
  void serve_request(sim::Cpu& cpu, const ReqPayload& req);

  // Home side: an accumulation message arrived. Charges the per-item apply
  // cost now (arrival-time costs are part of the model) but stages the
  // payload; the updates mutate their objects in commit_accums().
  void serve_accum(sim::Cpu& cpu, NodeId src,
                   std::shared_ptr<AccumPayload> payload);

  // Applies every staged accumulation in (src, accum_seq) order. Called by
  // the phase runner at the phase barrier, after global quiescence — the
  // deterministic half of the two-level reduction.
  void commit_accums();

  // --- Reliability layer (sequence numbers + ack/timeout/retry) ---
  //
  // The protocol state machine lives in transport::Reliable (seq space,
  // in-flight table, backoff, receiver dedup); the engine supplies the
  // substrate — modeled cost charges, arena-pooled ack payloads, backend
  // sends, and schedule_at retransmit timers — so the sim's event schedule
  // is byte-identical to when the state lived here.
  //
  // Engaged when the network carries a FaultPlan or cfg.retry.enabled is
  // set; otherwise every path below is dead and messages fly exactly as on
  // the reliable fabric (rel_seq stays 0, no acks, no timers).
  //
  // Receiver side, called by the phase runner's handlers before dispatching
  // a sequenced message: acks it and returns false if this sequence number
  // was already delivered (a retransmitted or fabric-duplicated copy the
  // caller must drop).
  bool rel_accept(sim::Cpu& cpu, NodeId src, std::uint64_t seq);

  // Sender side: an ack arrived for one of our in-flight messages.
  void on_ack(sim::Cpu& cpu, const AckPayload& ack);

  bool rel_enabled() const { return rel_.engaged(); }

  NodeId node_id() const { return node_; }
  Cluster& cluster() { return cluster_; }
  RtNodeStats& stats() { return stats_; }
  const RtNodeStats& stats() const { return stats_; }

 protected:
  // Posts a scheduler task if one is not already pending.
  void kick();
  // One scheduler task: processes up to cfg.poll_batch units.
  virtual void sched(sim::Cpu& cpu) = 0;

  // Sends a request for `refs` to their (common) home node.
  void send_request(sim::Cpu& cpu, NodeId home, std::vector<GlobalRef> refs);

  // Runs one thread with its data; charges dispatch cost.
  void run_thread(sim::Cpu& cpu, const ThreadFn& fn, const void* data);

  // Sends one accumulation message with `items` to `home`.
  void send_accum(sim::Cpu& cpu, NodeId home,
                  std::vector<std::pair<GlobalRef, AccumFn>> items);

  // Sends `payload` to `dst` through the reliability layer: stamps a
  // sequence number and arms the retransmit timer when the protocol is
  // engaged, otherwise degenerates to a bare backend send.
  template <class Payload>
  void rel_send(sim::Cpu& cpu, NodeId dst, fm::HandlerId handler,
                std::shared_ptr<Payload> payload, std::uint32_t bytes,
                obs::MsgCause cause) {
    if (rel_.engaged() && dst != node_) {
      payload->rel_seq = rel_.next_seq();
      rel_track(cpu, dst, handler, payload, bytes, payload->rel_seq, cause);
    }
    cluster_.backend->send(cpu, node_, dst, handler, std::move(payload),
                           bytes);
  }

  // Allocates a wire payload. On the sim backend (single host thread)
  // payloads are arena-pooled: allocate_shared puts object + control block
  // in one arena block that the free list recycles when the last reference
  // drops, so a phase's million messages reuse a handful of blocks. The
  // native backend releases payloads on the receiving thread, where the
  // (single-owner) arena must not be touched — it keeps make_shared.
  template <class Payload>
  std::shared_ptr<Payload> alloc_payload() {
    if (pool_payloads_)
      return std::allocate_shared<Payload>(ArenaAllocator<Payload>(&arena_));
    return std::make_shared<Payload>();
  }

  Cluster& cluster_;
  NodeId node_;
  const RuntimeConfig& cfg_;
  Arena& arena_;
  fm::HandlerId h_req_;
  fm::HandlerId h_reply_;
  fm::HandlerId h_accum_;
  fm::HandlerId h_ack_;
  NodeWork work_;
  std::uint64_t next_root_ = 0;
  bool sched_pending_ = false;
  bool pool_payloads_ = false;
  RtNodeStats stats_;

  // Observability handles, resolved once at construction (null when no
  // session is attached). trace_ is used through DPA_TRACE_EVT only; on the
  // sim backend it is the session tracer, on the native backend this
  // engine's worker shard (single-writer either way).
  obs::EventSink* trace_ = nullptr;
  Pow2Histogram* h_msg_bytes_ = nullptr;  // request/reply/accum wire sizes

 private:
  void rel_track(sim::Cpu& cpu, NodeId dst, fm::HandlerId handler,
                 std::shared_ptr<void> data, std::uint32_t bytes,
                 std::uint64_t seq, obs::MsgCause cause);
  // Raw engine event at timer expiry: re-posts onto the node if still
  // pending (a stale timer for an acked message does nothing and charges
  // nothing, so it cannot perturb phase timing).
  void rel_timer(std::uint64_t seq);
  void rel_retry(sim::Cpu& cpu, std::uint64_t seq);

  // The relocated PR-2 protocol: seq space, unacked in-flight table,
  // receiver dedup sets. All seq/ack/retransmit *state* lives there; the
  // engine only glues it to the backend (sends, timers, cost charges).
  transport::Reliable rel_;

  // Outgoing accumulation-message sequence (stamped into accum_seq) and
  // the home-side staging buffer for the two-level reduction.
  struct StagedAccum {
    NodeId src = 0;
    std::uint64_t seq = 0;
    std::shared_ptr<AccumPayload> payload;
  };
  std::uint64_t accum_seq_next_ = 0;
  std::vector<StagedAccum> staged_accums_;
};

// The per-thread execution context: thin wrapper over the node Cpu plus the
// engine, giving app code `charge` and `require`.
class Ctx {
 public:
  Ctx(EngineBase& engine, sim::Cpu& cpu) : engine_(engine), cpu_(cpu) {}

  NodeId node() const { return engine_.node_id(); }
  std::uint32_t num_nodes() const;

  // Charges application compute time.
  void charge(Time ns) { cpu_.charge(ns, sim::Work::kCompute); }

  // Creates a thread labeled with `ref`.
  void require(GlobalRef ref, ThreadFn thread) {
    engine_.require(cpu_, ref, std::move(thread));
  }

  // Typed convenience wrapper.
  template <class T, class F>
  void require(GPtr<T> ptr, F&& fn) {
    require_bytes(ptr, sizeof(T), std::forward<F>(fn));
  }

  // As `require`, but models a marshalled size different from sizeof(T)
  // (e.g. an expansion truncated to the configured number of terms).
  template <class T, class F>
  void require_bytes(GPtr<T> ptr, std::uint32_t bytes, F&& fn) {
    GlobalRef ref = ptr.ref();
    ref.bytes = bytes;
    require(ref, [fn = std::forward<F>(fn)](Ctx& ctx, const void* data) {
      fn(ctx, *static_cast<const T*>(data));
    });
  }

  // Fire-and-forget commutative update applied at the object's home
  // (DPA aggregates these alongside its read requests). `fn(T&)` must
  // commute with every other update to the same object in the phase.
  template <class T, class F>
  void accumulate(GPtr<T> ptr, F&& fn) {
    engine_.accumulate(cpu_, ptr.ref(),
                       [fn = std::forward<F>(fn)](void* obj) {
                         fn(*static_cast<T*>(obj));
                       });
  }

  sim::Cpu& cpu() { return cpu_; }
  EngineBase& engine() { return engine_; }

 private:
  EngineBase& engine_;
  sim::Cpu& cpu_;
};

}  // namespace dpa::rt
