// PhaseRunner: executes one timed phase (e.g. one step's force computation)
// across all nodes under a chosen engine, and collects the measurements the
// paper reports — total time, per-node idle / communication-overhead /
// local-computation breakdown, message counts, aggregation factors, and
// resource high-water marks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/engine.h"
#include "runtime/stats.h"

namespace dpa::rt {

struct NodeBreakdown {
  Time compute = 0;  // application work
  Time runtime = 0;  // scheduling overhead (thread create, M, hashing)
  Time comm = 0;     // send/recv software overhead, marshalling
  Time idle = 0;     // waiting for replies or out of work
  Time busy_total = 0;
};

struct PhaseResult {
  bool completed = false;
  // Modeled machine time on the sim backend; real monotonic wall-clock on
  // the native backend.
  Time elapsed = 0;
  std::vector<NodeBreakdown> nodes;
  RtTotals rt;
  sim::NetStats net;       // sim backend only (zero on native)
  sim::FaultStats faults;  // zero on a reliable (fault-free) network
  fm::FmNodeStats fm_total;
  // Substrate progress units: discrete events processed (sim) or node
  // tasks executed (native).
  std::uint64_t sim_events = 0;
  std::string diagnostics;  // per-node state dumps if !completed

  double seconds() const { return sim::to_seconds(elapsed); }

  // Mean per-node components in seconds — the stacked bars of the paper's
  // breakdown figures ("local computation" = compute + runtime overhead).
  double mean_compute_s() const;
  double mean_runtime_s() const;
  double mean_local_s() const { return mean_compute_s() + mean_runtime_s(); }
  double mean_comm_s() const;
  double mean_idle_s() const;
};

class PhaseRunner {
 public:
  PhaseRunner(Cluster& cluster, RuntimeConfig cfg);

  PhaseRunner(const PhaseRunner&) = delete;
  PhaseRunner& operator=(const PhaseRunner&) = delete;

  // Runs one phase: work[i] is node i's conc loop. Blocks (in simulation)
  // until every node quiesces; if the phase cannot complete (a scheduling
  // bug would deadlock it), returns completed=false with diagnostics.
  //
  // When the cluster has an obs::Session attached, the phase is bracketed
  // with phase_begin/phase_end trace events under `name` and the phase's
  // totals (rt.*, net.*, fm.*) are published into the metrics registry, so
  // the registry's counters equal the sum of every published PhaseResult.
  PhaseResult run(std::vector<NodeWork> work,
                  std::string_view name = "phase");

  const RuntimeConfig& config() const { return cfg_; }

 private:
  std::unique_ptr<EngineBase> make_engine(NodeId node);

  Cluster& cluster_;
  RuntimeConfig cfg_;
  // Per-node phase arenas backing each engine's scheduler queues and (on
  // the sim backend) its pooled wire payloads. One arena per node so the
  // native backend's workers never share an allocator; reset at the top of
  // run(), strictly after the previous engines are destroyed (their
  // containers are the only users).
  std::vector<std::unique_ptr<Arena>> arenas_;
  std::vector<std::unique_ptr<EngineBase>> engines_;
  fm::HandlerId h_req_;
  fm::HandlerId h_reply_;
  fm::HandlerId h_accum_;
  fm::HandlerId h_ack_;
};

}  // namespace dpa::rt
