#include "runtime/prefetch_engine.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "support/assert.h"

namespace dpa::rt {

PrefetchEngine::PrefetchEngine(Cluster& cluster, NodeId node,
                               const RuntimeConfig& cfg, Arena& arena,
                               fm::HandlerId h_req, fm::HandlerId h_reply,
                               fm::HandlerId h_accum, fm::HandlerId h_ack)
    : EngineBase(cluster, node, cfg, arena, h_req, h_reply, h_accum, h_ack),
      stack_(ArenaAllocator<StackEntry>(&arena)),
      root_window_(ArenaAllocator<StackEntry>(&arena)) {}

void PrefetchEngine::require(sim::Cpu& cpu, GlobalRef ref, ThreadFn thread) {
  cpu.charge(cfg_.cost.sync_push, sim::Work::kRuntime);
  ++stats_.threads_created;
  stats_.outstanding_threads.add(1);
  DPA_TRACE_EVT(trace_, instant(obs::Ev::kThreadCreated, node_,
                                cpu.logical_now(), ref.bytes));
  if (creating_roots_)
    root_window_.emplace_back(ref, std::move(thread));
  else
    stack_.emplace_back(ref, std::move(thread));
}

void PrefetchEngine::run_now(sim::Cpu& cpu, const ThreadFn& fn,
                             const void* data) {
  cpu.charge(cfg_.cost.sync_run, sim::Work::kRuntime);
  ++stats_.threads_run;
  Ctx ctx(*this, cpu);
  fn(ctx, data);
  DPA_TRACE_EVT(trace_, instant(obs::Ev::kThreadRetired, node_,
                                cpu.logical_now()));
}

void PrefetchEngine::prefetch_one(sim::Cpu& cpu, const GlobalRef& ref,
                                  std::uint32_t* budget) {
  if (*budget == 0) return;
  --*budget;
  if (ref.home == node_) return;
  if (cache_.count(ref.addr) != 0 || inflight_.count(ref.addr) != 0) return;
  cpu.charge(cfg_.cost.sync_issue, sim::Work::kComm);
  inflight_.insert(ref.addr);
  send_request(cpu, ref.home, {ref});
}

void PrefetchEngine::issue_prefetches(sim::Cpu& cpu) {
  // Scan the next prefetch_depth items in pop order: depth-first children
  // first (back of stack_), then upcoming roots (front of root_window_).
  std::uint32_t budget = cfg_.prefetch_depth;
  for (auto it = stack_.rbegin(); it != stack_.rend() && budget > 0; ++it)
    prefetch_one(cpu, it->first, &budget);
  for (auto it = root_window_.begin();
       it != root_window_.end() && budget > 0; ++it)
    prefetch_one(cpu, it->first, &budget);
}

void PrefetchEngine::sched(sim::Cpu& cpu) {
  for (std::uint32_t unit = 0; unit < cfg_.poll_batch; ++unit) {
    if (waiting_) return;

    // Software pipelining over the conc loop: keep a window of future
    // iterations queued so there is something to prefetch.
    const std::size_t window = std::max<std::uint32_t>(1, cfg_.prefetch_depth);
    bool created = false;
    while (root_window_.size() < window && next_root_ < work_.count) {
      ++stats_.roots_created;
      creating_roots_ = true;
      Ctx ctx(*this, cpu);
      work_.item(ctx, next_root_++);
      creating_roots_ = false;
      created = true;
    }
    if (created) issue_prefetches(cpu);

    if (stack_.empty() && root_window_.empty()) {
      loop_done_ = true;
      return;
    }

    std::pair<GlobalRef, ThreadFn> next;
    if (!stack_.empty()) {
      next = std::move(stack_.back());
      stack_.pop_back();
    } else {
      next = std::move(root_window_.front());
      root_window_.pop_front();
    }
    auto& [ref, fn] = next;
    stats_.outstanding_threads.add(-1);

    if (ref.home == node_) {
      run_now(cpu, fn, ref.addr);
      issue_prefetches(cpu);
      continue;
    }

    cpu.charge(cfg_.cost.hash_lookup, sim::Work::kRuntime);
    if (cache_.count(ref.addr) != 0) {
      ++stats_.cache_hits;
      run_now(cpu, fn, ref.addr);
      issue_prefetches(cpu);
      continue;
    }
    ++stats_.cache_misses;
    waiting_ = true;
    waiting_addr_ = ref.addr;
    wait_ref_ = ref;
    wait_fn_ = std::move(fn);
    DPA_TRACE_EVT(trace_, instant(obs::Ev::kThreadSuspended, node_,
                                  cpu.logical_now()));
    if (inflight_.count(ref.addr) == 0) {
      // Not prefetched in time: demand fetch.
      cpu.charge(cfg_.cost.sync_issue, sim::Work::kComm);
      inflight_.insert(ref.addr);
      send_request(cpu, ref.home, {ref});
    }
    return;  // stall until this object lands
  }
  kick();
}

void PrefetchEngine::on_reply(sim::Cpu& cpu, const ReplyPayload& reply) {
  ++stats_.replies_recv;
  DPA_CHECK(reply.refs.size() == 1);
  const GlobalRef ref = reply.refs[0];
  cpu.charge(cfg_.cost.reply_unmarshal_per_obj, sim::Work::kComm);
  cpu.charge(cfg_.cost.cache_insert, sim::Work::kRuntime);
  stats_.outstanding_refs.add(-1);
  DPA_TRACE_EVT(trace_,
                msg_event(obs::Ev::kMsgArrive, obs::MsgCause::kReply, node_,
                          node_, reply.refs.size(), cpu.logical_now()));
  inflight_.erase(ref.addr);
  cache_.insert(ref.addr);
  if (waiting_ && waiting_addr_ == ref.addr) {
    waiting_ = false;
    waiting_addr_ = nullptr;
    ThreadFn fn = std::move(wait_fn_);
    wait_fn_ = nullptr;
    DPA_TRACE_EVT(trace_, instant(obs::Ev::kThreadResumed, node_,
                                  cpu.logical_now()));
    run_now(cpu, fn, wait_ref_.addr);
    issue_prefetches(cpu);
  }
  kick();
}

bool PrefetchEngine::done() const {
  return loop_done_ && stack_.empty() && root_window_.empty() && !waiting_;
}

std::string PrefetchEngine::state_dump() const {
  std::ostringstream os;
  os << "prefetch node " << node_ << ": roots " << next_root_ << "/"
     << work_.count << " stack " << stack_.size() << " window "
     << root_window_.size() << " inflight "
     << inflight_.size() << (waiting_ ? " waiting" : "")
     << (loop_done_ ? " loop-done" : " loop-running");
  return os.str();
}

}  // namespace dpa::rt
