// Per-node runtime counters. These feed the paper's tables directly:
// aggregation factor (requests per message), max outstanding threads, M
// high-water marks, cache hit rates.
//
// The counter and gauge sets are declared once via the X-macro field lists
// below; RtNodeStats, RtTotals, absorb() and the observability export all
// iterate the same list, so a new counter cannot be silently dropped from
// the totals or the metrics snapshot.
#pragma once

#include <cstdint>

#include "support/stats.h"

namespace dpa::obs {
class MetricsRegistry;
}  // namespace dpa::obs

namespace dpa::rt {

// One X(name) per per-node counter (all std::uint64_t, summed across nodes).
#define DPA_RT_COUNTERS(X)                                                 \
  /* Threads (DPA) / deferred work items (sync engines). */                \
  X(threads_created)                                                       \
  X(threads_run)                                                           \
  X(local_threads)  /* threads on node-local pointers */                   \
  X(tiles_run)      /* tile dispatches (>=1 thread each) */                \
  X(roots_created)  /* conc-loop iterations started */                     \
  X(strips)                                                                \
  /* Communication (requester side). */                                    \
  X(refs_requested)   /* remote object fetches issued */                   \
  X(request_msgs)     /* request messages sent */                          \
  X(dup_refs_avoided) /* threads that joined an in-flight tile */          \
  X(replies_recv)                                                          \
  /* Communication (home side). */                                         \
  X(refs_served)                                                           \
  X(requests_served)                                                       \
  /* Caching engine. */                                                    \
  X(cache_hits)                                                            \
  X(cache_misses)                                                          \
  X(cache_evictions)                                                       \
  /* Remote accumulation. */                                               \
  X(accums_issued)  /* updates sent to remote homes */                     \
  X(accum_msgs)     /* messages carrying them */                           \
  X(accums_applied) /* updates applied at this home */                     \
  X(accums_local)   /* updates applied directly (local home) */            \
  /* Reliability layer (zero unless retry protocol engaged). */            \
  X(retries)          /* timeout-driven retransmissions */                 \
  X(acks_sent)                                                             \
  X(acks_recv)                                                             \
  X(dup_msgs_dropped) /* receiver-side sequence-number dedups */

// One X(name) per resource gauge (current level + high-water mark; totals
// keep the max high-water across nodes as max_<name>).
#define DPA_RT_GAUGES(X)                                                   \
  X(outstanding_threads) /* suspended thread states held */                \
  X(m_entries)           /* live entries in M */                           \
  X(outstanding_refs)    /* remote refs requested but not yet arrived */

struct RtNodeStats {
#define DPA_X(name) std::uint64_t name = 0;
  DPA_RT_COUNTERS(DPA_X)
#undef DPA_X
#define DPA_X(name) Gauge name;
  DPA_RT_GAUGES(DPA_X)
#undef DPA_X

  double aggregation_factor() const {
    return request_msgs ? double(refs_requested) / double(request_msgs) : 0.0;
  }
  double cache_hit_rate() const {
    const auto total = cache_hits + cache_misses;
    return total ? double(cache_hits) / double(total) : 0.0;
  }
};

// Sums of the counters plus maxima of the gauges across nodes.
struct RtTotals {
#define DPA_X(name) std::uint64_t name = 0;
  DPA_RT_COUNTERS(DPA_X)
#undef DPA_X
#define DPA_X(name) std::int64_t max_##name = 0;
  DPA_RT_GAUGES(DPA_X)
#undef DPA_X

  void absorb(const RtNodeStats& s) {
#define DPA_X(name) name += s.name;
    DPA_RT_COUNTERS(DPA_X)
#undef DPA_X
#define DPA_X(name) \
  if (s.name.high_water() > max_##name) max_##name = s.name.high_water();
    DPA_RT_GAUGES(DPA_X)
#undef DPA_X
  }

  // Adds every counter into the registry under "rt.<name>" and raises the
  // "rt.<name>" gauges to the high-water maxima (see src/obs/metrics.h).
  void publish(obs::MetricsRegistry& metrics) const;

  double aggregation_factor() const {
    return request_msgs ? double(refs_requested) / double(request_msgs) : 0.0;
  }
  double cache_hit_rate() const {
    const auto total = cache_hits + cache_misses;
    return total ? double(cache_hits) / double(total) : 0.0;
  }
};

}  // namespace dpa::rt
