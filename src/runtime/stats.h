// Per-node runtime counters. These feed the paper's tables directly:
// aggregation factor (requests per message), max outstanding threads, M
// high-water marks, cache hit rates.
#pragma once

#include <cstdint>

#include "support/stats.h"

namespace dpa::rt {

struct RtNodeStats {
  // Threads (DPA) / deferred work items (sync engines).
  std::uint64_t threads_created = 0;
  std::uint64_t threads_run = 0;
  std::uint64_t local_threads = 0;  // threads on node-local pointers
  std::uint64_t tiles_run = 0;      // tile dispatches (>=1 thread each)
  std::uint64_t roots_created = 0;  // conc-loop iterations started
  std::uint64_t strips = 0;

  // Communication (requester side).
  std::uint64_t refs_requested = 0;   // remote object fetches issued
  std::uint64_t request_msgs = 0;     // request messages sent
  std::uint64_t dup_refs_avoided = 0; // threads that joined an in-flight tile
  std::uint64_t replies_recv = 0;

  // Communication (home side).
  std::uint64_t refs_served = 0;
  std::uint64_t requests_served = 0;

  // Caching engine.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;

  // Remote accumulation.
  std::uint64_t accums_issued = 0;   // updates sent to remote homes
  std::uint64_t accum_msgs = 0;      // messages carrying them
  std::uint64_t accums_applied = 0;  // updates applied at this home
  std::uint64_t accums_local = 0;    // updates applied directly (local home)

  // Resource gauges.
  Gauge outstanding_threads;  // suspended thread states held
  Gauge m_entries;            // live entries in M
  Gauge outstanding_refs;     // remote refs requested but not yet arrived

  double aggregation_factor() const {
    return request_msgs ? double(refs_requested) / double(request_msgs) : 0.0;
  }
  double cache_hit_rate() const {
    const auto total = cache_hits + cache_misses;
    return total ? double(cache_hits) / double(total) : 0.0;
  }
};

// Sums of the counters plus maxima of the gauges across nodes.
struct RtTotals {
  std::uint64_t threads_created = 0;
  std::uint64_t threads_run = 0;
  std::uint64_t local_threads = 0;
  std::uint64_t tiles_run = 0;
  std::uint64_t roots_created = 0;
  std::uint64_t strips = 0;
  std::uint64_t refs_requested = 0;
  std::uint64_t request_msgs = 0;
  std::uint64_t dup_refs_avoided = 0;
  std::uint64_t replies_recv = 0;
  std::uint64_t refs_served = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t accums_issued = 0;
  std::uint64_t accum_msgs = 0;
  std::uint64_t accums_applied = 0;
  std::uint64_t accums_local = 0;
  std::int64_t max_outstanding_threads = 0;
  std::int64_t max_m_entries = 0;
  std::int64_t max_outstanding_refs = 0;

  void absorb(const RtNodeStats& s) {
    threads_created += s.threads_created;
    threads_run += s.threads_run;
    local_threads += s.local_threads;
    tiles_run += s.tiles_run;
    roots_created += s.roots_created;
    strips += s.strips;
    refs_requested += s.refs_requested;
    request_msgs += s.request_msgs;
    dup_refs_avoided += s.dup_refs_avoided;
    replies_recv += s.replies_recv;
    refs_served += s.refs_served;
    requests_served += s.requests_served;
    cache_hits += s.cache_hits;
    cache_misses += s.cache_misses;
    cache_evictions += s.cache_evictions;
    accums_issued += s.accums_issued;
    accum_msgs += s.accum_msgs;
    accums_applied += s.accums_applied;
    accums_local += s.accums_local;
    if (s.outstanding_threads.high_water() > max_outstanding_threads)
      max_outstanding_threads = s.outstanding_threads.high_water();
    if (s.m_entries.high_water() > max_m_entries)
      max_m_entries = s.m_entries.high_water();
    if (s.outstanding_refs.high_water() > max_outstanding_refs)
      max_outstanding_refs = s.outstanding_refs.high_water();
  }

  double aggregation_factor() const {
    return request_msgs ? double(refs_requested) / double(request_msgs) : 0.0;
  }
  double cache_hit_rate() const {
    const auto total = cache_hits + cache_misses;
    return total ? double(cache_hits) / double(total) : 0.0;
  }
};

}  // namespace dpa::rt
