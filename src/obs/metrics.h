// Metrics registry: named counters, gauges and log-scale (power-of-two)
// histograms with a JSON snapshot export.
//
// This is the single sink the runtime engines, the phase runner and the
// bench harnesses publish into, replacing hand-summed counter structs as the
// source of machine-readable output. Names are dotted paths ("rt.tiles_run",
// "net.bytes"); lookup is get-or-create and the returned pointers are stable
// for the registry's lifetime, so hot paths resolve a metric once and bump
// it through the pointer.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "support/stats.h"

namespace dpa {
class JsonWriter;
}  // namespace dpa

namespace dpa::obs {

class MetricsRegistry {
 public:
  // Get-or-create. Pointers remain valid until clear()/destruction (the
  // containers are node-based maps).
  std::uint64_t* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Pow2Histogram* histogram(std::string_view name);

  // Read-only lookup; zero/empty defaults when the metric was never touched.
  std::uint64_t counter_value(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Pow2Histogram* find_histogram(std::string_view name) const;

  std::size_t num_counters() const { return counters_.size(); }
  std::size_t num_gauges() const { return gauges_.size(); }
  std::size_t num_histograms() const { return histograms_.size(); }

  // Iteration in name order (export determinism).
  void for_each_counter(
      const std::function<void(const std::string&, std::uint64_t)>& fn) const;
  void for_each_gauge(
      const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void for_each_histogram(
      const std::function<void(const std::string&, const Pow2Histogram&)>& fn)
      const;

  // Writes "counters" / "gauges" / "histograms" keyed objects into the
  // writer's currently open object (for merging into bench JSON output).
  void append_to(JsonWriter& w) const;

  // Standalone snapshot document: {"schema":"dpa.metrics.v1", ...}.
  std::string to_json() const;

  void clear();

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Pow2Histogram, std::less<>> histograms_;
};

}  // namespace dpa::obs
