// Flight-recorder dumps: what the native backend's stall watchdog writes
// when a phase blows its deadline or the quiescence counters stop moving.
//
// The dump is a single JSON document (schema "dpa.flightrec.v2") holding
// everything needed to diagnose a wedged phase after the fact:
//   * why the watchdog fired and how long the phase had been running,
//   * per-node produced/consumed quiescence counters, activation state,
//     and mailbox depth — the "who is waiting on whom" picture — with the
//     watchdog's own per-node stuck verdict,
//   * per-worker scheduler state (run-queue depth, park state, park/steal
//     counters): with M:N scheduling "which node is wedged" and "which
//     worker is idle" are separate questions, answered by separate arrays,
//   * the merged per-worker trace rings (the trailing event window), and
//   * a metrics-registry snapshot when a session registry is wired up.
//
// scripts/check_obs_json.py --flightrec validates the schema in CI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace dpa::obs {

class MetricsRegistry;
class ShardedTraceSink;

struct FlightRecord {
  std::string reason;       // human-readable trigger description
  Time elapsed = 0;         // wall ns the current phase has been running
  std::uint64_t phase_epoch = 0;
  std::uint32_t stuck_scans = 0;  // consecutive no-progress watchdog sweeps

  struct NodeState {
    std::uint64_t produced = 0;
    std::uint64_t consumed = 0;
    std::uint64_t inbox_depth = 0;
    // Queued on some worker's run queue or currently running.
    bool active = false;
    // Counters unmoved across the watchdog's last sweep while unbalanced
    // (produced != consumed): this node is the one holding the phase up.
    bool stuck = false;
  };
  std::vector<NodeState> nodes;

  struct WorkerState {
    std::uint64_t runq_depth = 0;
    bool parked = false;
    std::uint64_t parks = 0;
    std::uint64_t steals = 0;
  };
  std::vector<WorkerState> workers;
};

// The full document. `shards` and `metrics` may be null (tracing compiled
// out / no session registry); the corresponding sections are then omitted.
std::string flight_recorder_json(const FlightRecord& rec,
                                 const ShardedTraceSink* shards,
                                 const MetricsRegistry* metrics);

// Writes flight_recorder_json to `path`; false on I/O failure.
bool write_flight_record(const FlightRecord& rec,
                         const ShardedTraceSink* shards,
                         const MetricsRegistry* metrics,
                         const std::string& path);

}  // namespace dpa::obs
