#include "obs/shard_sink.h"

#include <algorithm>

#include "support/assert.h"

namespace dpa::obs {

void WorkerProfile::reset() {
  task_service_ns.reset();
  mailbox_wait_ns.reset();
  train_occupancy.reset();
  park_ns.reset();
  queue_depth.reset();
}

void TraceShard::init(NodeId worker, std::size_t capacity) {
  DPA_CHECK(capacity > 0);
  worker_ = worker;
  ring_.resize(capacity);
}

#if DPA_TRACE_ENABLED

void TraceShard::record(const TraceEvent& ev) {
  const std::uint64_t c = count_.load(std::memory_order_relaxed);
  TraceEvent& slot = ring_[c % ring_.size()];
  slot = ev;
  slot.node = worker_;
  slot.at += base_;
  if (slot.end != 0) slot.end += base_;
  // Release after the slot write: a reader that acquires a count >= c+1
  // sees this slot complete. The single writer never contends with itself.
  count_.store(c + 1, std::memory_order_release);
}

#else

void TraceShard::record(const TraceEvent&) {}

#endif  // DPA_TRACE_ENABLED

TraceShard::Snapshot TraceShard::snapshot() const {
  Snapshot out;
  const std::uint64_t c0 = recorded();
  const std::uint64_t n = std::min<std::uint64_t>(c0, ring_.size());
  out.first_seq = c0 - n;
  out.events.reserve(std::size_t(n));
  for (std::uint64_t s = c0 - n; s < c0; ++s)
    out.events.push_back(ring_[std::size_t(s % ring_.size())]);
  // If the writer advanced during the copy, the oldest copied slots may
  // have been overwritten mid-read. Only a mid-phase flight-recorder dump
  // of a still-running worker can see this; flag it rather than guess.
  out.torn = count_.load(std::memory_order_acquire) != c0;
  return out;
}

ShardedTraceSink::ShardedTraceSink(std::uint32_t workers,
                                   std::size_t shard_capacity)
    : shard_capacity_(shard_capacity) {
  DPA_CHECK(shard_capacity_ > 0);
  grow(workers);
}

void ShardedTraceSink::grow(std::uint32_t workers) {
  while (shards_.size() < workers) {
    auto shard = std::make_unique<TraceShard>();
    shard->init(NodeId(shards_.size()), shard_capacity_);
    shards_.push_back(std::move(shard));
  }
}

void ShardedTraceSink::set_base(Time base) {
  for (auto& s : shards_) s->set_base(base);
}

std::uint64_t ShardedTraceSink::recorded_total() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->recorded();
  return total;
}

std::uint64_t ShardedTraceSink::dropped_total() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->dropped();
  return total;
}

std::vector<ShardedTraceSink::MergedEvent> ShardedTraceSink::merged() const {
  std::vector<MergedEvent> out;
  out.reserve(std::size_t(
      std::min<std::uint64_t>(recorded_total(),
                              shards_.size() * shard_capacity_)));
  for (const auto& s : shards_) {
    const TraceShard::Snapshot snap = s->snapshot();
    for (std::size_t i = 0; i < snap.events.size(); ++i)
      out.push_back({snap.events[i], s->worker_, snap.first_seq + i});
  }
  std::sort(out.begin(), out.end(),
            [](const MergedEvent& a, const MergedEvent& b) {
              if (a.ev.at != b.ev.at) return a.ev.at < b.ev.at;
              if (a.worker != b.worker) return a.worker < b.worker;
              return a.seq < b.seq;
            });
  return out;
}

void ShardedTraceSink::publish_profiles(MetricsRegistry& m) {
  Pow2Histogram* sinks[kNumProfileHistograms];
  for (int k = 0; k < kNumProfileHistograms; ++k)
    sinks[k] = m.histogram(kProfileNames[k]);
  for (auto& s : shards_) {
    WorkerProfile& p = s->profile;
    const Pow2Histogram* sources[kNumProfileHistograms] = {
        &p.task_service_ns, &p.mailbox_wait_ns, &p.train_occupancy,
        &p.park_ns,         &p.queue_depth,
    };
    for (int k = 0; k < kNumProfileHistograms; ++k)
      sinks[k]->merge(*sources[k]);
    p.reset();
  }
}

}  // namespace dpa::obs
