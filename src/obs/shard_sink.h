// Sharded trace sink + wall-clock profiler for the native backend.
//
// The PR-1 Tracer is a single-writer ring: correct on the simulator (one
// thread does everything) and on the native backend's main thread, but the
// native workers run concurrently. This sink gives every worker thread its
// own preallocated ring (a TraceShard) plus its own set of wall-clock
// Pow2Histograms (a WorkerProfile), so the hot path is a relaxed-ordered
// store into worker-private memory — no locks, no shared cache lines.
//
// Publication protocol per shard: the owning worker writes the slot, then
// release-stores the event count; readers acquire-load the count and only
// look at slots below it. Within a phase only the watchdog reads (and then
// a stalled machine's rings are quiescent — parked spells coalesce, see
// trace.h UnparkCause); after run_phase() returns, the epoch-publish mutex
// chain makes every worker write visible to the main thread, which merges
// shards into a (time, worker, seq)-sorted stream for the Chrome exporter
// and drains the per-worker histograms into the shared MetricsRegistry.
//
// DPA_TRACE=OFF compiles TraceShard::record to a no-op (and the backend
// never attaches a sink at all), so measurement builds keep the native
// task loop untouched.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/stats.h"

namespace dpa::obs {

// One worker's wall-clock histograms. Written only by the owning worker
// during a phase; merged into the registry (and reset) post-phase by the
// main thread via ShardedTraceSink::publish_profiles().
struct WorkerProfile {
  Pow2Histogram task_service_ns;   // wall ns per executed task
  Pow2Histogram mailbox_wait_ns;   // wall ns to acquire a dest mailbox lock
  Pow2Histogram train_occupancy;   // messages per train at hand-off
  Pow2Histogram park_ns;           // wall ns per coalesced parked spell
  Pow2Histogram queue_depth;       // dest inbox depth right after a hand-off

  void reset();
};

// Registry names publish_profiles() merges the per-worker histograms under.
inline constexpr const char* kProfileNames[] = {
    "exec.task_service_ns", "exec.mailbox_wait_ns", "exec.train_occupancy",
    "exec.park_ns",         "exec.queue_depth",
};
inline constexpr int kNumProfileHistograms = 5;

// One worker's preallocated event ring. Single writer (the owning worker);
// overwrites its oldest events once full and counts the overflow as drops.
// Cache-line aligned so neighbouring shards never false-share.
class alignas(64) TraceShard final : public EventSink {
 public:
  // The shard adds `base` (the backend's accumulated clock at phase start)
  // to phase-relative timestamps at record time, keeping multi-phase traces
  // monotone against the main-thread tracer's phase markers.
  void set_base(Time base) { base_ = base; }

  void record(const TraceEvent& ev) override;

  std::size_t capacity() const { return ring_.size(); }
  // Total events offered (recorded + overwritten). Acquire: pairs with the
  // writer's release so slots below the count are safe to read.
  std::uint64_t recorded() const {
    return count_.load(std::memory_order_acquire);
  }
  std::uint64_t dropped() const {
    const std::uint64_t c = recorded();
    return c > ring_.size() ? c - ring_.size() : 0;
  }

  // Retained events, oldest first, with the sequence number of the first
  // one. `torn` is set when the writer advanced during the copy (only
  // possible for a mid-phase flight-recorder snapshot of a still-running
  // worker; post-phase and stalled-machine reads are clean).
  struct Snapshot {
    std::vector<TraceEvent> events;
    std::uint64_t first_seq = 0;
    bool torn = false;
  };
  Snapshot snapshot() const;

  WorkerProfile profile;

 private:
  friend class ShardedTraceSink;
  void init(NodeId worker, std::size_t capacity);

  std::vector<TraceEvent> ring_;
  Time base_ = 0;
  NodeId worker_ = 0;
  std::atomic<std::uint64_t> count_{0};
};

// The per-backend collection of shards, owned by the obs::Session and
// attached to a NativeBackend via Backend::attach_shards(). Grows (never
// shrinks) when a sweep attaches a larger backend, so events from earlier
// cells survive in their original shards.
class ShardedTraceSink {
 public:
  static constexpr std::size_t kDefaultShardCapacity = std::size_t(1) << 13;

  explicit ShardedTraceSink(std::uint32_t workers,
                            std::size_t shard_capacity = kDefaultShardCapacity);

  std::uint32_t num_shards() const { return std::uint32_t(shards_.size()); }
  TraceShard& shard(NodeId worker) { return *shards_[worker]; }
  const TraceShard& shard(NodeId worker) const { return *shards_[worker]; }

  // Adds shards up to `workers` (existing shards keep their events).
  void grow(std::uint32_t workers);

  // Phase bracketing: every shard timestamps against this base.
  void set_base(Time base);

  std::uint64_t recorded_total() const;
  std::uint64_t dropped_total() const;
  std::uint64_t dropped(NodeId worker) const {
    return shards_[worker]->dropped();
  }

  // All retained events across shards, sorted by (time, worker, seq).
  struct MergedEvent {
    TraceEvent ev;
    NodeId worker = 0;
    std::uint64_t seq = 0;
  };
  std::vector<MergedEvent> merged() const;

  // Merges every worker's profile histograms into the registry under the
  // kProfileNames entries and resets them — drain semantics, so registry
  // totals accumulate across phases the way the counters do.
  void publish_profiles(MetricsRegistry& m);

  // Optional back-pointer to the session registry, so the flight recorder
  // can embed a metrics snapshot without reaching back into the session.
  const MetricsRegistry* metrics = nullptr;

 private:
  std::size_t shard_capacity_;
  std::vector<std::unique_ptr<TraceShard>> shards_;
};

}  // namespace dpa::obs
