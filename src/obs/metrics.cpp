#include "obs/metrics.h"

#include "support/json.h"

namespace dpa::obs {

namespace {

// Heterogeneous get-or-create for map<string, T, less<>>: find by view,
// insert by materialized string only on miss.
template <class Map>
typename Map::mapped_type* get_or_create(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end())
    it = map.emplace(std::string(name), typename Map::mapped_type{}).first;
  return &it->second;
}

}  // namespace

std::uint64_t* MetricsRegistry::counter(std::string_view name) {
  return get_or_create(counters_, name);
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  return get_or_create(gauges_, name);
}

Pow2Histogram* MetricsRegistry::histogram(std::string_view name) {
  return get_or_create(histograms_, name);
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Pow2Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::for_each_counter(
    const std::function<void(const std::string&, std::uint64_t)>& fn) const {
  for (const auto& [name, v] : counters_) fn(name, v);
}

void MetricsRegistry::for_each_gauge(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  for (const auto& [name, g] : gauges_) fn(name, g);
}

void MetricsRegistry::for_each_histogram(
    const std::function<void(const std::string&, const Pow2Histogram&)>& fn)
    const {
  for (const auto& [name, h] : histograms_) fn(name, h);
}

void MetricsRegistry::append_to(JsonWriter& w) const {
  {
    auto counters = w.obj("counters");
    for (const auto& [name, v] : counters_) w.field(name, v);
  }
  {
    auto gauges = w.obj("gauges");
    for (const auto& [name, g] : gauges_) {
      auto one = w.obj(name);
      w.field("current", std::int64_t(g.current()))
          .field("high_water", std::int64_t(g.high_water()));
    }
  }
  auto histograms = w.obj("histograms");
  for (const auto& [name, h] : histograms_) {
    auto one = w.obj(name);
    w.field("count", h.count());
    w.field("p50", h.quantile_bound(0.5))
        .field("p90", h.quantile_bound(0.9))
        .field("p99", h.quantile_bound(0.99));
    auto buckets = w.arr("buckets");  // bucket i: values in [2^(i-1), 2^i)
    for (std::size_t i = 0; i < h.num_buckets(); ++i)
      w.value(std::int64_t(h.bucket(i)));
  }
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  {
    auto root = w.obj();
    w.field("schema", "dpa.metrics.v1");
    append_to(w);
  }
  return w.str();
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace dpa::obs
