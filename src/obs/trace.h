// Structured event tracing: a low-overhead ring buffer of typed events
// extending the sim layer's TraceSink.
//
// The sim machine and network feed task-execution and wire-flight events
// through the TraceSink interface; the runtime engines add the structured
// vocabulary the paper's mechanisms are explained in — thread lifecycle
// (created -> suspended-on-ref -> resumed -> retired), tile lifecycle
// (opened / dispatched / closed) and cause-tagged message depart/arrive
// instants (request / reply / accumulation). The phase runner brackets each
// timed phase with named begin/end markers.
//
// Cost model: recording is a bounds-checked store into a preallocated ring
// (the ring overwrites its oldest events once full; `dropped()` reports how
// many). Compiling with DPA_TRACE_ENABLED=0 (CMake -DDPA_TRACE=OFF) turns
// every record path into a no-op and the DPA_TRACE_EVT call-site macro
// skips argument evaluation entirely, so the instrumented hot paths cost
// nothing in measurement builds.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"
#include "sim/trace.h"

#ifndef DPA_TRACE_ENABLED
#define DPA_TRACE_ENABLED 1
#endif

namespace dpa::obs {

using sim::NodeId;
using sim::Time;

constexpr bool kTraceEnabled = DPA_TRACE_ENABLED != 0;

enum class Ev : std::uint8_t {
  kTask = 0,    // span: node busy from `at` to `end` (sim machine)
  kWire,        // span: message on the wire, node=src peer=dst (sim network)
  kPhaseBegin,  // named phase markers (label = phase name)
  kPhaseEnd,
  kThreadCreated,    // require() accepted a thread (arg = ref bytes)
  kThreadSuspended,  // thread parked waiting on a remote ref
  kThreadResumed,    // parked thread handed its object
  kThreadRetired,    // thread body ran to completion
  kTileOpened,       // new M entry (arg = resulting M size)
  kTileDispatched,   // ready tile starts executing (arg = waiter count)
  kTileClosed,       // tile's waiters all ran
  kMsgDepart,        // cause-tagged message instants at the runtime layer
  kMsgArrive,        //   (arg = payload bytes, peer = other endpoint)
  // Native-backend worker vocabulary (wall-clock, recorded into per-worker
  // shards; see shard_sink.h). Timestamps are phase-relative at the record
  // site; the shard adds the backend clock base so phases stay monotone.
  // Node-scoped events (kWorkerRun/kWorkerDrain/kMailboxWait/kTrainFlush/
  // kSteal) carry the node id in `node`; worker-scoped events (kQuiesceScan/
  // kIdleYield/kPark) carry the worker index instead — with the M:N pool a
  // worker is not a node, and its idle behavior belongs to no node.
  kWorkerRun,    // span: one task ran (node = the node it ran for)
  kWorkerDrain,  // instant: inbox batch swapped in (arg = batch depth)
  kMailboxWait,  // span: acquiring a destination mailbox lock (peer = dst)
  kTrainFlush,   // instant: train handed off (peer = dst, arg = train depth)
  kQuiesceScan,  // instant: two-pass quiescence scan (arg = outstanding tasks)
  kIdleYield,    // instant: idle escalation left the spin window
  kPark,         // span: parked on the worker condvar (arg = UnparkCause)
  kSteal,        // instant: whole node stolen (node = stolen node,
                 //   arg = victim worker; recorded by the thief)
};
constexpr int kNumEventKinds = 21;

// Why a parked native worker left its parked spell (TraceEvent::arg of
// kPark). Consecutive timed-out re-parks coalesce into one span, so a
// stalled-but-parked machine records nothing — that keeps the rings
// quiescent for the watchdog's flight-recorder snapshot.
enum class UnparkCause : std::uint8_t {
  kWork = 0,   // a sender delivered work (or the wake race found some)
  kQuiesced,   // the phase ended: quiescence was confirmed
};

// Why a runtime-layer message moved (kMsgDepart / kMsgArrive).
enum class MsgCause : std::uint8_t {
  kData = 0,  // untagged (sim-level wire flight)
  kRequest,   // remote-ref fetch request
  kReply,     // object reply
  kAccum,     // remote accumulation
  kAck,       // delivery acknowledgement (reliability layer)
  kRetry,     // timeout-driven retransmission of an unacked message
};

const char* to_string(Ev kind);
const char* to_string(MsgCause cause);
const char* to_string(UnparkCause cause);

struct TraceEvent {
  Ev kind = Ev::kTask;
  MsgCause cause = MsgCause::kData;
  NodeId node = 0;  // owning node (source for messages)
  NodeId peer = 0;  // message destination / arrival source
  Time at = 0;      // event time; span start for kTask / kWire
  Time end = 0;     // span end (kTask / kWire), 0 for instants
  std::uint64_t arg = 0;      // kind-specific payload (bytes, counts, sizes)
  const char* label = nullptr;  // static or interned string; may be null
};

// Anything structured events can be recorded into: the single-writer Tracer
// ring (sim backend, main thread) or one worker's TraceShard (native
// backend). Engines hold an EventSink* so the same DPA_TRACE_EVT call sites
// serve both substrates; the non-virtual helpers build the TraceEvent and
// funnel through one virtual record().
class EventSink {
 public:
  virtual ~EventSink() = default;

  virtual void record(const TraceEvent& ev) = 0;

  void instant(Ev kind, NodeId node, Time at, std::uint64_t arg = 0,
               const char* label = nullptr);
  void span(Ev kind, NodeId node, Time at, Time end, std::uint64_t arg = 0,
            NodeId peer = 0);
  void msg_event(Ev kind, MsgCause cause, NodeId node, NodeId peer,
                 std::uint64_t bytes, Time at);
};

class Tracer final : public sim::TraceSink, public EventSink {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t(1) << 17;

  explicit Tracer(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  // sim::TraceSink: the machine and network report through these.
  void task(NodeId node, Time start, Time end) override;
  void message(NodeId src, NodeId dst, std::uint32_t bytes, Time depart,
               Time arrive) override;

  void record(const TraceEvent& ev) override;
  void phase_begin(std::string_view name, Time at);
  void phase_end(std::string_view name, Time at);

  // Copies `name` into tracer-owned storage and returns a pointer that stays
  // valid until clear()/destruction (for TraceEvent::label).
  const char* intern(std::string_view name);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ring_.size(); }
  // Total events offered, including ones the ring has since overwritten.
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return recorded_ - ring_.size(); }

  // Events oldest to newest (recording order == non-decreasing time per
  // source; globally near-sorted, exporters sort by timestamp).
  std::vector<TraceEvent> snapshot() const;

  void clear();

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;  // allocated lazily on first record
  std::size_t next_ = 0;          // overwrite cursor once full
  std::uint64_t recorded_ = 0;
  std::deque<std::string> interned_;
};

}  // namespace dpa::obs

// Zero-cost call-site guard: evaluates nothing when tracing is compiled
// out, and nothing but the pointer test when no tracer is attached.
//   DPA_TRACE_EVT(tracer_ptr, instant(obs::Ev::kThreadCreated, node, now));
#if DPA_TRACE_ENABLED
#define DPA_TRACE_EVT(tracer, call)                  \
  do {                                               \
    if ((tracer) != nullptr) (tracer)->call;         \
  } while (0)
#else
#define DPA_TRACE_EVT(tracer, call) \
  do {                              \
  } while (0)
#endif
