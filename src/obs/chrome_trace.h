// Chrome trace-event JSON export (the "JSON Array / trace events" format
// both chrome://tracing and Perfetto load).
//
// Track layout:
//   pid 0 "machine"  — tid n+1 = "node n": task spans plus runtime instants
//                      (thread/tile lifecycle, cause-tagged msg instants);
//                      tid 0 = "phases": named begin/end phase spans.
//   pid 1 "network"  — tid n+1 = "nic n": wire-flight spans, one per
//                      message fragment, with dst/bytes args.
//
// Timestamps are microseconds (the format's unit) with nanosecond
// fractions; events are emitted sorted by timestamp.
#pragma once

#include <string>

#include "obs/trace.h"

namespace dpa::obs {

// The full document: {"displayTimeUnit":..., "traceEvents":[...]}.
std::string chrome_trace_json(const Tracer& tracer);

// Writes chrome_trace_json(tracer) to `path`; false on I/O failure.
bool write_chrome_trace(const Tracer& tracer, const std::string& path);

}  // namespace dpa::obs
