// Chrome trace-event JSON export (the "JSON Array / trace events" format
// both chrome://tracing and Perfetto load).
//
// Track layout:
//   pid 0 "machine"  — tid n+1 = "node n": task spans plus runtime instants
//                      (thread/tile lifecycle, cause-tagged msg instants);
//                      on the native backend also the per-worker run /
//                      train-flush / park tracks merged from the sharded
//                      sink; tid 0 = "phases": named begin/end phase spans.
//   pid 1 "network"  — tid n+1 = "nic n": wire-flight spans, one per
//                      message fragment, with dst/bytes args.
//
// Timestamps are microseconds (the format's unit) with nanosecond
// fractions; events are emitted sorted by timestamp. The document header
// carries drop accounting: recorded/dropped totals plus (when a sharded
// sink is merged in) a per-worker dropped_by_worker array, so one
// overflowing worker ring is visible instead of vanishing into the sum.
#pragma once

#include <string>

#include "obs/trace.h"

namespace dpa::obs {

class ShardedTraceSink;

// The full document: {"displayTimeUnit":..., "traceEvents":[...]}. With a
// sharded sink, its per-worker rings are merged (time, worker, seq)-sorted
// into the same machine-pid tracks the tracer events use.
std::string chrome_trace_json(const Tracer& tracer,
                              const ShardedTraceSink* shards = nullptr);

// Writes chrome_trace_json to `path`; false on I/O failure.
bool write_chrome_trace(const Tracer& tracer, const std::string& path,
                        const ShardedTraceSink* shards = nullptr);

}  // namespace dpa::obs
