#include "obs/chrome_trace.h"

#include <algorithm>
#include <fstream>
#include <set>

#include "obs/shard_sink.h"
#include "support/json.h"

namespace dpa::obs {

namespace {

constexpr std::int64_t kMachinePid = 0;
constexpr std::int64_t kNetworkPid = 1;
constexpr std::int64_t kPhaseTid = 0;  // node n gets tid n+1

double to_us(Time t) { return double(t) / 1000.0; }

void meta_event(JsonWriter& w, const char* what, std::int64_t pid,
                std::int64_t tid, std::string_view name) {
  auto e = w.obj();
  w.field("ph", "M").field("name", what).field("pid", pid).field("tid", tid);
  auto args = w.obj("args");
  w.field("name", name);
}

void common_fields(JsonWriter& w, std::string_view name, const char* ph,
                   std::int64_t pid, std::int64_t tid, Time at) {
  w.field("name", name).field("ph", ph).field("pid", pid).field("tid", tid);
  w.field("ts", to_us(at));
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer,
                              const ShardedTraceSink* shards) {
  // One combined stream: the main-thread tracer ring (phase markers, sim
  // events) plus any per-worker shards, globally (time, worker, seq)-sorted.
  struct Row {
    TraceEvent ev;
    NodeId worker = 0;
    std::uint64_t seq = 0;
  };
  std::vector<Row> events;
  {
    const std::vector<TraceEvent> main = tracer.snapshot();
    events.reserve(main.size());
    for (std::size_t i = 0; i < main.size(); ++i)
      events.push_back({main[i], main[i].node, i});
  }
  if (shards != nullptr) {
    for (const ShardedTraceSink::MergedEvent& me : shards->merged())
      events.push_back({me.ev, me.worker, me.seq});
  }
  std::stable_sort(events.begin(), events.end(), [](const Row& a,
                                                    const Row& b) {
    if (a.ev.at != b.ev.at) return a.ev.at < b.ev.at;
    if (a.worker != b.worker) return a.worker < b.worker;
    return a.seq < b.seq;
  });

  std::set<NodeId> machine_nodes, network_nodes;
  for (const Row& row : events)
    (row.ev.kind == Ev::kWire ? network_nodes : machine_nodes)
        .insert(row.ev.node);

  JsonWriter w;
  {
    auto root = w.obj();
    w.field("displayTimeUnit", "ms");
    const std::uint64_t shard_recorded =
        shards != nullptr ? shards->recorded_total() : 0;
    const std::uint64_t shard_dropped =
        shards != nullptr ? shards->dropped_total() : 0;
    w.field("recorded_events", tracer.recorded() + shard_recorded);
    w.field("dropped_events", tracer.dropped() + shard_dropped);
    if (shards != nullptr) {
      // Per-shard drop accounting: a single overflowing worker ring stays
      // visible instead of vanishing into the total.
      auto drops = w.arr("dropped_by_worker");
      for (NodeId n = 0; n < shards->num_shards(); ++n)
        w.value(std::int64_t(shards->dropped(n)));
    }
    auto arr = w.arr("traceEvents");

    meta_event(w, "process_name", kMachinePid, 0, "machine");
    meta_event(w, "process_name", kNetworkPid, 0, "network");
    meta_event(w, "thread_name", kMachinePid, kPhaseTid, "phases");
    for (const NodeId n : machine_nodes)
      meta_event(w, "thread_name", kMachinePid, std::int64_t(n) + 1,
                 "node " + std::to_string(n));
    for (const NodeId n : network_nodes)
      meta_event(w, "thread_name", kNetworkPid, std::int64_t(n) + 1,
                 "nic " + std::to_string(n));

    for (const Row& row : events) {
      const TraceEvent& ev = row.ev;
      auto e = w.obj();
      const std::int64_t node_tid = std::int64_t(ev.node) + 1;
      switch (ev.kind) {
        case Ev::kTask: {
          common_fields(w, "task", "X", kMachinePid, node_tid, ev.at);
          w.field("dur", to_us(ev.end - ev.at));
          break;
        }
        case Ev::kWorkerRun: {
          common_fields(w, "run", "X", kMachinePid, node_tid, ev.at);
          w.field("dur", to_us(ev.end - ev.at));
          break;
        }
        case Ev::kMailboxWait: {
          common_fields(w, "mbox_wait", "X", kMachinePid, node_tid, ev.at);
          w.field("dur", to_us(ev.end - ev.at));
          auto args = w.obj("args");
          w.field("dst", std::uint64_t(ev.peer));
          break;
        }
        case Ev::kPark: {
          common_fields(w, "park", "X", kMachinePid, node_tid, ev.at);
          w.field("dur", to_us(ev.end - ev.at));
          auto args = w.obj("args");
          w.field("unpark", to_string(UnparkCause(ev.arg)));
          break;
        }
        case Ev::kTrainFlush: {
          common_fields(w, "train_flush", "i", kMachinePid, node_tid, ev.at);
          w.field("s", "t");
          auto args = w.obj("args");
          w.field("dst", std::uint64_t(ev.peer)).field("depth", ev.arg);
          break;
        }
        case Ev::kWire: {
          common_fields(w, "wire", "X", kNetworkPid, node_tid, ev.at);
          w.field("dur", to_us(ev.end - ev.at));
          auto args = w.obj("args");
          w.field("dst", std::uint64_t(ev.peer)).field("bytes", ev.arg);
          break;
        }
        case Ev::kPhaseBegin:
        case Ev::kPhaseEnd: {
          common_fields(w, ev.label != nullptr ? ev.label : "phase",
                        ev.kind == Ev::kPhaseBegin ? "B" : "E", kMachinePid,
                        kPhaseTid, ev.at);
          break;
        }
        case Ev::kMsgDepart:
        case Ev::kMsgArrive: {
          std::string name = to_string(ev.cause);
          name += ev.kind == Ev::kMsgDepart ? ".depart" : ".arrive";
          common_fields(w, name, "i", kMachinePid, node_tid, ev.at);
          w.field("s", "t");
          auto args = w.obj("args");
          w.field("peer", std::uint64_t(ev.peer)).field("bytes", ev.arg);
          break;
        }
        default: {  // lifecycle instants
          common_fields(w, ev.label != nullptr ? ev.label : to_string(ev.kind),
                        "i", kMachinePid, node_tid, ev.at);
          w.field("s", "t");
          auto args = w.obj("args");
          w.field("arg", ev.arg);
          break;
        }
      }
    }
  }
  return w.str();
}

bool write_chrome_trace(const Tracer& tracer, const std::string& path,
                        const ShardedTraceSink* shards) {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json(tracer, shards) << "\n";
  return bool(out);
}

}  // namespace dpa::obs
