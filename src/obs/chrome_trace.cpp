#include "obs/chrome_trace.h"

#include <algorithm>
#include <fstream>
#include <set>

#include "support/json.h"

namespace dpa::obs {

namespace {

constexpr std::int64_t kMachinePid = 0;
constexpr std::int64_t kNetworkPid = 1;
constexpr std::int64_t kPhaseTid = 0;  // node n gets tid n+1

double to_us(Time t) { return double(t) / 1000.0; }

void meta_event(JsonWriter& w, const char* what, std::int64_t pid,
                std::int64_t tid, std::string_view name) {
  auto e = w.obj();
  w.field("ph", "M").field("name", what).field("pid", pid).field("tid", tid);
  auto args = w.obj("args");
  w.field("name", name);
}

void common_fields(JsonWriter& w, std::string_view name, const char* ph,
                   std::int64_t pid, std::int64_t tid, Time at) {
  w.field("name", name).field("ph", ph).field("pid", pid).field("tid", tid);
  w.field("ts", to_us(at));
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer) {
  std::vector<TraceEvent> events = tracer.snapshot();
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at < b.at;
                   });

  std::set<NodeId> machine_nodes, network_nodes;
  for (const TraceEvent& ev : events)
    (ev.kind == Ev::kWire ? network_nodes : machine_nodes).insert(ev.node);

  JsonWriter w;
  {
    auto root = w.obj();
    w.field("displayTimeUnit", "ms");
    w.field("recorded_events", tracer.recorded());
    w.field("dropped_events", tracer.dropped());
    auto arr = w.arr("traceEvents");

    meta_event(w, "process_name", kMachinePid, 0, "machine");
    meta_event(w, "process_name", kNetworkPid, 0, "network");
    meta_event(w, "thread_name", kMachinePid, kPhaseTid, "phases");
    for (const NodeId n : machine_nodes)
      meta_event(w, "thread_name", kMachinePid, std::int64_t(n) + 1,
                 "node " + std::to_string(n));
    for (const NodeId n : network_nodes)
      meta_event(w, "thread_name", kNetworkPid, std::int64_t(n) + 1,
                 "nic " + std::to_string(n));

    for (const TraceEvent& ev : events) {
      auto e = w.obj();
      const std::int64_t node_tid = std::int64_t(ev.node) + 1;
      switch (ev.kind) {
        case Ev::kTask: {
          common_fields(w, "task", "X", kMachinePid, node_tid, ev.at);
          w.field("dur", to_us(ev.end - ev.at));
          break;
        }
        case Ev::kWire: {
          common_fields(w, "wire", "X", kNetworkPid, node_tid, ev.at);
          w.field("dur", to_us(ev.end - ev.at));
          auto args = w.obj("args");
          w.field("dst", std::uint64_t(ev.peer)).field("bytes", ev.arg);
          break;
        }
        case Ev::kPhaseBegin:
        case Ev::kPhaseEnd: {
          common_fields(w, ev.label != nullptr ? ev.label : "phase",
                        ev.kind == Ev::kPhaseBegin ? "B" : "E", kMachinePid,
                        kPhaseTid, ev.at);
          break;
        }
        case Ev::kMsgDepart:
        case Ev::kMsgArrive: {
          std::string name = to_string(ev.cause);
          name += ev.kind == Ev::kMsgDepart ? ".depart" : ".arrive";
          common_fields(w, name, "i", kMachinePid, node_tid, ev.at);
          w.field("s", "t");
          auto args = w.obj("args");
          w.field("peer", std::uint64_t(ev.peer)).field("bytes", ev.arg);
          break;
        }
        default: {  // lifecycle instants
          common_fields(w, ev.label != nullptr ? ev.label : to_string(ev.kind),
                        "i", kMachinePid, node_tid, ev.at);
          w.field("s", "t");
          auto args = w.obj("args");
          w.field("arg", ev.arg);
          break;
        }
      }
    }
  }
  return w.str();
}

bool write_chrome_trace(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json(tracer) << "\n";
  return bool(out);
}

}  // namespace dpa::obs
