#include "obs/flight_recorder.h"

#include <fstream>

#include "obs/metrics.h"
#include "obs/shard_sink.h"
#include "support/json.h"

namespace dpa::obs {

std::string flight_recorder_json(const FlightRecord& rec,
                                 const ShardedTraceSink* shards,
                                 const MetricsRegistry* metrics) {
  JsonWriter w;
  {
    auto root = w.obj();
    w.field("schema", "dpa.flightrec.v2");
    w.field("reason", rec.reason);
    w.field("elapsed_ns", std::int64_t(rec.elapsed));
    w.field("phase_epoch", rec.phase_epoch);
    w.field("stuck_scans", std::uint64_t(rec.stuck_scans));
    {
      auto nodes = w.arr("nodes");
      for (std::size_t i = 0; i < rec.nodes.size(); ++i) {
        const FlightRecord::NodeState& n = rec.nodes[i];
        auto e = w.obj();
        w.field("node", std::uint64_t(i));
        w.field("produced", n.produced);
        w.field("consumed", n.consumed);
        w.field("inbox_depth", n.inbox_depth);
        w.field("active", n.active);
        w.field("stuck", n.stuck);
      }
    }
    {
      auto workers = w.arr("workers");
      for (std::size_t i = 0; i < rec.workers.size(); ++i) {
        const FlightRecord::WorkerState& ws = rec.workers[i];
        auto e = w.obj();
        w.field("worker", std::uint64_t(i));
        w.field("runq_depth", ws.runq_depth);
        w.field("parked", ws.parked);
        w.field("parks", ws.parks);
        w.field("steals", ws.steals);
      }
    }
    if (shards != nullptr) {
      {
        auto drops = w.arr("dropped_by_worker");
        for (NodeId i = 0; i < shards->num_shards(); ++i)
          w.value(std::int64_t(shards->dropped(i)));
      }
      auto events = w.arr("events");
      for (const ShardedTraceSink::MergedEvent& me : shards->merged()) {
        auto e = w.obj();
        w.field("kind", to_string(me.ev.kind));
        w.field("worker", std::uint64_t(me.worker));
        w.field("seq", me.seq);
        w.field("at", std::int64_t(me.ev.at));
        if (me.ev.end != 0) w.field("end", std::int64_t(me.ev.end));
        if (me.ev.peer != 0) w.field("peer", std::uint64_t(me.ev.peer));
        if (me.ev.arg != 0) w.field("arg", me.ev.arg);
        if (me.ev.label != nullptr) w.field("label", me.ev.label);
      }
    }
    if (metrics != nullptr) {
      auto m = w.obj("metrics");
      metrics->append_to(w);
    }
  }
  return w.str();
}

bool write_flight_record(const FlightRecord& rec,
                         const ShardedTraceSink* shards,
                         const MetricsRegistry* metrics,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << flight_recorder_json(rec, shards, metrics) << "\n";
  return bool(out);
}

}  // namespace dpa::obs
