// An observability session: one tracer plus one metrics registry, attached
// to a Cluster (see runtime/engine.h) so every layer — sim machine, network,
// FM, runtime engines, phase runner — reports into the same sinks for the
// lifetime of an experiment. Native-backend runs additionally get a sharded
// trace sink (one ring + histogram set per worker thread), created lazily
// on first attachment.
#pragma once

#include <cstddef>
#include <memory>

#include "obs/metrics.h"
#include "obs/shard_sink.h"
#include "obs/trace.h"

namespace dpa::obs {

struct Session {
  Tracer tracer;
  MetricsRegistry metrics;
  // Per-worker rings + profiles for native backends; null until a native
  // Cluster attaches. Grows across sweep cells (earlier cells' events stay
  // in their shards), and carries a registry back-pointer so watchdog
  // flight-recorder dumps can embed a metrics snapshot.
  std::unique_ptr<ShardedTraceSink> shards;

  explicit Session(std::size_t trace_capacity = Tracer::kDefaultCapacity)
      : tracer(trace_capacity) {}

  ShardedTraceSink* ensure_shards(std::uint32_t workers) {
    if (shards == nullptr)
      shards = std::make_unique<ShardedTraceSink>(workers);
    else
      shards->grow(workers);
    shards->metrics = &metrics;
    return shards.get();
  }
};

}  // namespace dpa::obs
