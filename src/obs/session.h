// An observability session: one tracer plus one metrics registry, attached
// to a Cluster (see runtime/engine.h) so every layer — sim machine, network,
// FM, runtime engines, phase runner — reports into the same two sinks for
// the lifetime of an experiment.
#pragma once

#include <cstddef>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dpa::obs {

struct Session {
  Tracer tracer;
  MetricsRegistry metrics;

  explicit Session(std::size_t trace_capacity = Tracer::kDefaultCapacity)
      : tracer(trace_capacity) {}
};

}  // namespace dpa::obs
