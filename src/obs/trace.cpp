#include "obs/trace.h"

namespace dpa::obs {

const char* to_string(Ev kind) {
  switch (kind) {
    case Ev::kTask: return "task";
    case Ev::kWire: return "wire";
    case Ev::kPhaseBegin: return "phase_begin";
    case Ev::kPhaseEnd: return "phase_end";
    case Ev::kThreadCreated: return "thread_created";
    case Ev::kThreadSuspended: return "thread_suspended";
    case Ev::kThreadResumed: return "thread_resumed";
    case Ev::kThreadRetired: return "thread_retired";
    case Ev::kTileOpened: return "tile_opened";
    case Ev::kTileDispatched: return "tile_dispatched";
    case Ev::kTileClosed: return "tile_closed";
    case Ev::kMsgDepart: return "msg_depart";
    case Ev::kMsgArrive: return "msg_arrive";
    case Ev::kWorkerRun: return "run";
    case Ev::kWorkerDrain: return "drain";
    case Ev::kMailboxWait: return "mbox_wait";
    case Ev::kTrainFlush: return "train_flush";
    case Ev::kQuiesceScan: return "quiesce_scan";
    case Ev::kIdleYield: return "idle_yield";
    case Ev::kPark: return "park";
    case Ev::kSteal: return "steal";
  }
  return "unknown";
}

const char* to_string(UnparkCause cause) {
  switch (cause) {
    case UnparkCause::kWork: return "work";
    case UnparkCause::kQuiesced: return "quiesced";
  }
  return "unknown";
}

const char* to_string(MsgCause cause) {
  switch (cause) {
    case MsgCause::kData: return "data";
    case MsgCause::kRequest: return "request";
    case MsgCause::kReply: return "reply";
    case MsgCause::kAccum: return "accum";
    case MsgCause::kAck: return "ack";
    case MsgCause::kRetry: return "retry";
  }
  return "unknown";
}

#if DPA_TRACE_ENABLED

void Tracer::record(const TraceEvent& ev) {
  if (capacity_ == 0) return;
  ++recorded_;
  if (ring_.size() < capacity_) {
    if (ring_.capacity() == 0) ring_.reserve(capacity_);
    ring_.push_back(ev);
    return;
  }
  // Full: overwrite oldest (the ring keeps the trailing window).
  ring_[next_] = ev;
  next_ = (next_ + 1) % capacity_;
}

#else

void Tracer::record(const TraceEvent&) {}

#endif  // DPA_TRACE_ENABLED

void Tracer::task(NodeId node, Time start, Time end) {
  TraceEvent ev;
  ev.kind = Ev::kTask;
  ev.node = node;
  ev.at = start;
  ev.end = end;
  record(ev);
}

void Tracer::message(NodeId src, NodeId dst, std::uint32_t bytes, Time depart,
                     Time arrive) {
  TraceEvent ev;
  ev.kind = Ev::kWire;
  ev.node = src;
  ev.peer = dst;
  ev.at = depart;
  ev.end = arrive;
  ev.arg = bytes;
  record(ev);
}

void EventSink::instant(Ev kind, NodeId node, Time at, std::uint64_t arg,
                        const char* label) {
  TraceEvent ev;
  ev.kind = kind;
  ev.node = node;
  ev.at = at;
  ev.arg = arg;
  ev.label = label;
  record(ev);
}

void EventSink::span(Ev kind, NodeId node, Time at, Time end,
                     std::uint64_t arg, NodeId peer) {
  TraceEvent ev;
  ev.kind = kind;
  ev.node = node;
  ev.peer = peer;
  ev.at = at;
  ev.end = end;
  ev.arg = arg;
  record(ev);
}

void EventSink::msg_event(Ev kind, MsgCause cause, NodeId node, NodeId peer,
                          std::uint64_t bytes, Time at) {
  TraceEvent ev;
  ev.kind = kind;
  ev.cause = cause;
  ev.node = node;
  ev.peer = peer;
  ev.at = at;
  ev.arg = bytes;
  record(ev);
}

void Tracer::phase_begin(std::string_view name, Time at) {
  if constexpr (!kTraceEnabled) return;
  TraceEvent ev;
  ev.kind = Ev::kPhaseBegin;
  ev.at = at;
  ev.label = intern(name);
  record(ev);
}

void Tracer::phase_end(std::string_view name, Time at) {
  if constexpr (!kTraceEnabled) return;
  TraceEvent ev;
  ev.kind = Ev::kPhaseEnd;
  ev.at = at;
  ev.label = intern(name);
  record(ev);
}

const char* Tracer::intern(std::string_view name) {
  for (const std::string& s : interned_)
    if (s == name) return s.c_str();
  interned_.emplace_back(name);
  return interned_.back().c_str();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // `next_` is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  return out;
}

void Tracer::clear() {
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
  interned_.clear();
}

}  // namespace dpa::obs
