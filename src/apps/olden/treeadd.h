// treeadd (Olden): sum the values of a binary tree.
//
// The smallest PBDS kernel — the pointer-chasing hello world of the Olden
// suite the paper's caching comparator was built for. Parallel form: the
// top log2(P) levels are split into per-node subtrees; each node's conc
// loop walks its own subtrees (mostly local), and node 0 walks the shared
// top region. Ownership boundaries create exactly the remote reads DPA
// tiles and batches.
#pragma once

#include <cstdint>
#include <vector>

#include "gas/heap.h"
#include "runtime/phase.h"

namespace dpa::apps::olden {

struct TNode {
  double value = 0;
  gas::GPtr<TNode> left;
  gas::GPtr<TNode> right;
};

struct TreeAddConfig {
  std::uint32_t depth = 12;  // 2^depth - 1 nodes
  std::uint64_t seed = 11;
  // Fraction of tree nodes allocated on a random processor instead of the
  // subtree owner's: real Olden heaps are not perfectly traversal-aligned,
  // and these are the remote reads the engines differ on.
  double scatter = 0.15;
  sim::Time cost_visit = 150;
};

struct TreeAddResult {
  rt::PhaseResult phase;
  double sum = 0;
  double expected = 0;  // host-recursion oracle over the same tree
};

class TreeAddApp {
 public:
  TreeAddApp(TreeAddConfig cfg, std::uint32_t nodes);

  TreeAddResult run(const sim::NetParams& net, const rt::RuntimeConfig& rcfg,
                    exec::BackendKind backend = exec::BackendKind::kSim) const;

  const TreeAddConfig& config() const { return cfg_; }

 private:
  TreeAddConfig cfg_;
  std::uint32_t nodes_;
};

}  // namespace dpa::apps::olden
