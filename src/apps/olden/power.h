// power (Olden): hierarchical power-system pricing.
//
// A fixed four-level tree (root -> feeders -> laterals -> branches) with
// customers at the leaves. Each pricing iteration the customers read their
// branch's current price (a remote read through a pointer) and send their
// demand back up (a commutative update — this app exercises the runtime's
// remote-accumulation extension); the untimed host step then aggregates
// demand up the tree and adjusts prices toward equilibrium.
#pragma once

#include <cstdint>
#include <vector>

#include "gas/heap.h"
#include "runtime/phase.h"

namespace dpa::apps::olden {

struct PBranch {
  double price = 1.0;
  double demand = 0;  // accumulated by customers each iteration
};

struct PowerConfig {
  std::uint32_t feeders = 8;
  std::uint32_t laterals = 16;   // per feeder
  std::uint32_t branches = 8;    // per lateral
  std::uint32_t customers = 4;   // per branch
  std::uint32_t iters = 3;
  std::uint64_t seed = 13;
  double alpha = 0.2;  // price adjustment rate

  sim::Time cost_demand = 600;   // one customer's demand computation
  std::uint64_t total_customers() const {
    return std::uint64_t(feeders) * laterals * branches * customers;
  }
};

struct PowerResult {
  std::vector<rt::PhaseResult> phases;  // one per iteration
  double final_root_demand = 0;
  std::vector<double> branch_prices;  // flattened, for oracle comparison
  bool all_completed() const;
};

class PowerApp {
 public:
  PowerApp(PowerConfig cfg, std::uint32_t nodes);

  PowerResult run(const sim::NetParams& net, const rt::RuntimeConfig& rcfg,
                  exec::BackendKind backend = exec::BackendKind::kSim) const;

  // Host-only oracle over the same system.
  struct SeqResult {
    double final_root_demand = 0;
    std::vector<double> branch_prices;
  };
  SeqResult run_sequential() const;

 private:
  PowerConfig cfg_;
  std::uint32_t nodes_;
};

}  // namespace dpa::apps::olden
