#include "apps/olden/power.h"

#include <cmath>

#include "support/assert.h"
#include "support/rng.h"

namespace dpa::apps::olden {

bool PowerResult::all_completed() const {
  for (const auto& p : phases)
    if (!p.completed) return false;
  return !phases.empty();
}

PowerApp::PowerApp(PowerConfig cfg, std::uint32_t nodes)
    : cfg_(cfg), nodes_(nodes) {
  DPA_CHECK(nodes_ > 0);
  DPA_CHECK(cfg_.total_customers() > 0);
}

namespace {

double demand_of(double coeff, double price) {
  // A smooth downward-sloping demand curve.
  return coeff / (1.0 + price);
}

}  // namespace

PowerResult PowerApp::run(const sim::NetParams& net,
                          const rt::RuntimeConfig& rcfg,
                          exec::BackendKind backend) const {
  rt::Cluster cluster(nodes_, backend, net);
  Rng rng(cfg_.seed);

  const std::uint64_t nbranches =
      std::uint64_t(cfg_.feeders) * cfg_.laterals * cfg_.branches;

  // Branches are homed in contiguous blocks (a lateral's branches stay
  // together); customers are assigned round-robin, so most customers read
  // a *remote* branch — the communication the phase measures.
  std::vector<gas::GPtr<PBranch>> branches;
  branches.reserve(nbranches);
  for (std::uint64_t b = 0; b < nbranches; ++b) {
    const auto home = sim::NodeId(b * nodes_ / nbranches);
    branches.push_back(cluster.heap.make<PBranch>(home));
  }

  struct Customer {
    std::uint64_t branch;
    double coeff;
  };
  std::vector<std::vector<Customer>> owned(nodes_);
  for (std::uint64_t b = 0; b < nbranches; ++b) {
    for (std::uint32_t c = 0; c < cfg_.customers; ++c) {
      const auto owner =
          sim::NodeId((b * cfg_.customers + c) % nodes_);
      owned[owner].push_back(Customer{b, rng.uniform(0.5, 1.5)});
    }
  }

  rt::PhaseRunner runner(cluster, rcfg);
  PowerResult result;
  const sim::Time cost = cfg_.cost_demand;

  for (std::uint32_t iter = 0; iter < cfg_.iters; ++iter) {
    for (const auto& b : branches) gas::GlobalHeap::mutate(b)->demand = 0;

    std::vector<rt::NodeWork> work(nodes_);
    for (std::uint32_t n = 0; n < nodes_; ++n) {
      const auto& mine = owned[n];
      work[n].count = mine.size();
      work[n].item = [&mine, &branches, cost](rt::Ctx& ctx,
                                              std::uint64_t i) {
        const Customer& cust = mine[std::size_t(i)];
        const gas::GPtr<PBranch> branch = branches[cust.branch];
        const double coeff = cust.coeff;
        // Read the branch price (thread labeled by the branch pointer)...
        ctx.require(branch, [branch, coeff, cost](rt::Ctx& ctx2,
                                                  const PBranch& b) {
          ctx2.charge(cost);
          const double demand = demand_of(coeff, b.price);
          // ...and send the demand back as a commutative update.
          ctx2.accumulate(branch,
                          [demand](PBranch& bb) { bb.demand += demand; });
        });
      };
    }
    result.phases.push_back(runner.run(std::move(work)));
    DPA_CHECK(result.phases.back().completed)
        << result.phases.back().diagnostics;

    // Untimed host step: aggregate demand upward and adjust prices.
    double root_demand = 0;
    for (std::uint64_t b = 0; b < nbranches; ++b) {
      auto* branch = gas::GlobalHeap::mutate(branches[b]);
      root_demand += branch->demand;
      branch->price +=
          cfg_.alpha * (branch->demand / cfg_.customers - 1.0);
      if (branch->price < 0.01) branch->price = 0.01;
    }
    result.final_root_demand = root_demand;
  }

  result.branch_prices.reserve(nbranches);
  for (const auto& b : branches)
    result.branch_prices.push_back(b.addr->price);
  return result;
}

PowerApp::SeqResult PowerApp::run_sequential() const {
  Rng rng(cfg_.seed);
  const std::uint64_t nbranches =
      std::uint64_t(cfg_.feeders) * cfg_.laterals * cfg_.branches;

  struct Customer {
    std::uint64_t branch;
    double coeff;
  };
  // Reproduce the exact same customer assignment and coefficients.
  std::vector<Customer> customers;
  for (std::uint64_t b = 0; b < nbranches; ++b)
    for (std::uint32_t c = 0; c < cfg_.customers; ++c)
      customers.push_back(Customer{b, rng.uniform(0.5, 1.5)});

  std::vector<double> price(nbranches, 1.0);
  SeqResult result;
  for (std::uint32_t iter = 0; iter < cfg_.iters; ++iter) {
    std::vector<double> demand(nbranches, 0.0);
    for (const Customer& cust : customers)
      demand[cust.branch] += demand_of(cust.coeff, price[cust.branch]);
    double root = 0;
    for (std::uint64_t b = 0; b < nbranches; ++b) {
      root += demand[b];
      price[b] += cfg_.alpha * (demand[b] / cfg_.customers - 1.0);
      if (price[b] < 0.01) price[b] = 0.01;
    }
    result.final_root_demand = root;
  }
  result.branch_prices = std::move(price);
  return result;
}

}  // namespace dpa::apps::olden
