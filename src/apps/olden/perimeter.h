// perimeter (Olden): perimeter of a raster region stored as a quadtree.
//
// A random bitmap of blobs is quantized into a region quadtree (uniform
// regions collapse into leaves). The perimeter of the black region is
// computed leaf by leaf: for every black leaf, each border pixel-edge is
// checked by probing the color on the other side — a root-descend walk of
// the quadtree, i.e. a chain of data-dependent pointer dereferences. Every
// probe shares the top of the tree with every other probe, which is the
// extreme tiling case for DPA's map M.
//
// Oracle: the same perimeter counted directly on the bitmap.
#pragma once

#include <cstdint>
#include <vector>

#include "gas/heap.h"
#include "runtime/phase.h"

namespace dpa::apps::olden {

struct QNode {
  // Quadrant corner (in pixels) and size; color 0=white, 1=black, 2=gray.
  std::uint32_t x0 = 0;
  std::uint32_t y0 = 0;
  std::uint32_t size = 0;
  std::uint8_t color = 0;
  std::array<gas::GPtr<QNode>, 4> child;  // gray nodes only
};

struct PerimeterConfig {
  std::uint32_t log_size = 6;  // bitmap is 2^log_size square
  std::uint32_t blobs = 6;     // random filled discs
  std::uint64_t seed = 17;
  sim::Time cost_probe_step = 120;  // one descend step
  sim::Time cost_edge = 80;         // per border-edge bookkeeping
};

struct PerimeterResult {
  rt::PhaseResult phase;
  std::uint64_t perimeter = 0;  // pixel edges on the black/white border
  std::uint64_t expected = 0;   // bitmap oracle
  std::uint64_t black_leaves = 0;
  std::uint64_t tree_nodes = 0;
};

class PerimeterApp {
 public:
  PerimeterApp(PerimeterConfig cfg, std::uint32_t nodes);

  PerimeterResult run(
      const sim::NetParams& net, const rt::RuntimeConfig& rcfg,
      exec::BackendKind backend = exec::BackendKind::kSim) const;

 private:
  PerimeterConfig cfg_;
  std::uint32_t nodes_;
};

}  // namespace dpa::apps::olden
