#include "apps/olden/treeadd.h"

#include <cmath>
#include <memory>

#include "support/assert.h"
#include "support/rng.h"

namespace dpa::apps::olden {

namespace {

struct Build {
  rt::Cluster* cluster = nullptr;
  Rng* rng = nullptr;
  std::uint32_t nodes = 0;
  std::uint32_t split_depth = 0;  // depth at which subtrees get owners
  std::vector<std::vector<gas::GPtr<TNode>>> subtree_roots;  // per node
  double expected = 0;

  double scatter = 0;

  gas::GPtr<TNode> build(std::uint32_t depth, std::uint32_t level,
                         sim::NodeId home) {
    if (depth == 0) return {};
    if (level == split_depth) {
      // A per-node subtree: round-robin ownership.
      home = sim::NodeId(subtree_count_++ % nodes);
      subtree_roots[home].push_back({});  // placeholder, filled below
    }
    const double value = rng->uniform(0, 1);
    expected += value;
    // Most nodes live with their subtree's owner; some are scattered.
    sim::NodeId alloc_home = home;
    if (level > split_depth && rng->chance(scatter))
      alloc_home = sim::NodeId(rng->next_below(nodes));
    auto self = cluster->heap.make<TNode>(alloc_home, TNode{value, {}, {}});
    auto* mut = gas::GlobalHeap::mutate(self);
    mut->left = build(depth - 1, level + 1, home);
    mut->right = build(depth - 1, level + 1, home);
    if (level == split_depth) subtree_roots[home].back() = self;
    return self;
  }

 private:
  std::uint32_t subtree_count_ = 0;
};

// The compiled-form walk: one non-blocking thread per tree node. `limit`
// stops node 0's top walk at the subtree boundary (those roots belong to
// their owners' conc loops).
void walk(rt::Ctx& ctx, gas::GPtr<TNode> node, double* sum, sim::Time cost,
          std::uint32_t depth_left) {
  ctx.require(node, [sum, cost, depth_left](rt::Ctx& ctx2, const TNode& t) {
    ctx2.charge(cost);
    *sum += t.value;
    if (depth_left == 0) return;
    if (t.left) walk(ctx2, t.left, sum, cost, depth_left - 1);
    if (t.right) walk(ctx2, t.right, sum, cost, depth_left - 1);
  });
}

}  // namespace

TreeAddApp::TreeAddApp(TreeAddConfig cfg, std::uint32_t nodes)
    : cfg_(cfg), nodes_(nodes) {
  DPA_CHECK(nodes_ > 0);
  DPA_CHECK(cfg_.depth >= 1 && cfg_.depth <= 26);
}

TreeAddResult TreeAddApp::run(const sim::NetParams& net,
                              const rt::RuntimeConfig& rcfg,
                              exec::BackendKind backend) const {
  rt::Cluster cluster(nodes_, backend, net);
  Rng rng(cfg_.seed);

  Build build;
  build.cluster = &cluster;
  build.rng = &rng;
  build.nodes = nodes_;
  build.scatter = cfg_.scatter;
  // Enough split levels that every node owns at least one subtree.
  std::uint32_t split = 0;
  while ((1u << split) < nodes_ && split + 1 < cfg_.depth) ++split;
  build.split_depth = split;
  build.subtree_roots.resize(nodes_);
  const gas::GPtr<TNode> root = build.build(cfg_.depth, 0, 0);

  // One partial sum per node: a node's threads run serially on that node
  // (one worker per node on the native backend), so the partials need no
  // synchronization, and the node-order reduction below is the same on both
  // backends.
  std::vector<double> partials(nodes_, 0.0);
  std::vector<rt::NodeWork> work(nodes_);
  const sim::Time cost = cfg_.cost_visit;
  for (std::uint32_t n = 0; n < nodes_; ++n) {
    const auto& roots = build.subtree_roots[n];
    double* psum = &partials[n];
    work[n].count = roots.size();
    work[n].item = [&roots, psum, cost, this](rt::Ctx& ctx, std::uint64_t i) {
      walk(ctx, roots[std::size_t(i)], psum, cost,
           cfg_.depth - 1);  // full remaining depth
    };
  }
  // Node 0 additionally walks the shared top region (above the split).
  if (split > 0) {
    const auto& roots0 = build.subtree_roots[0];
    double* psum0 = &partials[0];
    const std::uint32_t depth = cfg_.depth;
    work[0].count = roots0.size() + 1;
    work[0].item = [&roots0, root, psum0, cost, split, depth](
                       rt::Ctx& ctx, std::uint64_t i) {
      if (i < roots0.size()) {
        walk(ctx, roots0[std::size_t(i)], psum0, cost, depth - 1);
        return;
      }
      walk(ctx, root, psum0, cost, split - 1);
    };
  }

  rt::PhaseRunner runner(cluster, rcfg);
  TreeAddResult result;
  result.phase = runner.run(std::move(work));
  for (const double p : partials) result.sum += p;
  result.expected = build.expected;
  return result;
}

}  // namespace dpa::apps::olden
