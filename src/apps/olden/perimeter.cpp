#include "apps/olden/perimeter.h"

#include <array>
#include <memory>

#include "support/assert.h"
#include "support/rng.h"

namespace dpa::apps::olden {

namespace {

struct Bitmap {
  std::uint32_t n = 0;
  std::vector<std::uint8_t> bits;

  bool black(std::int64_t x, std::int64_t y) const {
    if (x < 0 || y < 0 || x >= std::int64_t(n) || y >= std::int64_t(n))
      return false;
    return bits[std::size_t(y) * n + std::size_t(x)] != 0;
  }
};

Bitmap make_bitmap(const PerimeterConfig& cfg) {
  Bitmap bm;
  bm.n = 1u << cfg.log_size;
  bm.bits.assign(std::size_t(bm.n) * bm.n, 0);
  Rng rng(cfg.seed);
  for (std::uint32_t b = 0; b < cfg.blobs; ++b) {
    const double cx = rng.uniform(0, bm.n);
    const double cy = rng.uniform(0, bm.n);
    const double r = rng.uniform(bm.n / 12.0, bm.n / 5.0);
    for (std::uint32_t y = 0; y < bm.n; ++y) {
      for (std::uint32_t x = 0; x < bm.n; ++x) {
        const double dx = x + 0.5 - cx, dy = y + 0.5 - cy;
        if (dx * dx + dy * dy <= r * r) bm.bits[std::size_t(y) * bm.n + x] = 1;
      }
    }
  }
  return bm;
}

std::uint64_t oracle_perimeter(const Bitmap& bm) {
  std::uint64_t edges = 0;
  for (std::uint32_t y = 0; y < bm.n; ++y) {
    for (std::uint32_t x = 0; x < bm.n; ++x) {
      if (!bm.black(x, y)) continue;
      edges += !bm.black(std::int64_t(x) - 1, y);
      edges += !bm.black(std::int64_t(x) + 1, y);
      edges += !bm.black(x, std::int64_t(y) - 1);
      edges += !bm.black(x, std::int64_t(y) + 1);
    }
  }
  return edges;
}

// Host-side quadtree (then materialized with owners).
struct HNode {
  std::uint32_t x0, y0, size;
  std::uint8_t color;  // 0 white, 1 black, 2 gray
  std::array<std::int32_t, 4> child{-1, -1, -1, -1};
  std::int32_t first_leaf = -1;  // preorder leaf index, for homing
};

struct HostTree {
  std::vector<HNode> nodes;
  std::int32_t leaf_count = 0;

  std::int32_t build(const Bitmap& bm, std::uint32_t x0, std::uint32_t y0,
                     std::uint32_t size) {
    const auto idx = std::int32_t(nodes.size());
    nodes.push_back(HNode{x0, y0, size, 0, {-1, -1, -1, -1}, -1});

    bool any_black = false, any_white = false;
    for (std::uint32_t y = y0; y < y0 + size && !(any_black && any_white);
         ++y) {
      for (std::uint32_t x = x0; x < x0 + size; ++x) {
        (bm.black(x, y) ? any_black : any_white) = true;
        if (any_black && any_white) break;
      }
    }
    if (!(any_black && any_white)) {
      nodes[std::size_t(idx)].color = any_black ? 1 : 0;
      nodes[std::size_t(idx)].first_leaf = leaf_count++;
      return idx;
    }
    nodes[std::size_t(idx)].color = 2;
    nodes[std::size_t(idx)].first_leaf = leaf_count;
    const std::uint32_t h = size / 2;
    // Quadrant q: bit0 = east half, bit1 = north half.
    const std::uint32_t qx[4] = {x0, x0 + h, x0, x0 + h};
    const std::uint32_t qy[4] = {y0, y0, y0 + h, y0 + h};
    for (int q = 0; q < 4; ++q) {
      const std::int32_t c = build(bm, qx[q], qy[q], h);
      nodes[std::size_t(idx)].child[std::size_t(q)] = c;
    }
    return idx;
  }
};

// Probes the color at pixel (px, py): a root-descend require-chain.
void probe(rt::Ctx& ctx, gas::GPtr<QNode> node, std::uint32_t px,
           std::uint32_t py, std::uint64_t* perimeter,
           const PerimeterConfig* cfg) {
  ctx.require(node, [px, py, perimeter, cfg](rt::Ctx& ctx2, const QNode& q) {
    ctx2.charge(cfg->cost_probe_step);
    if (q.color != 2) {
      if (q.color == 0) {
        ctx2.charge(cfg->cost_edge);
        ++*perimeter;
      }
      return;
    }
    const std::uint32_t h = q.size / 2;
    const std::uint32_t quad =
        (px >= q.x0 + h ? 1u : 0u) | (py >= q.y0 + h ? 2u : 0u);
    probe(ctx2, q.child[quad], px, py, perimeter, cfg);
  });
}

}  // namespace

PerimeterApp::PerimeterApp(PerimeterConfig cfg, std::uint32_t nodes)
    : cfg_(cfg), nodes_(nodes) {
  DPA_CHECK(nodes_ > 0);
  DPA_CHECK(cfg_.log_size >= 2 && cfg_.log_size <= 10);
}

PerimeterResult PerimeterApp::run(const sim::NetParams& net,
                                  const rt::RuntimeConfig& rcfg,
                                  exec::BackendKind backend) const {
  const Bitmap bm = make_bitmap(cfg_);

  HostTree host;
  host.nodes.reserve(std::size_t(bm.n) * bm.n / 2);
  const std::int32_t root_idx = host.build(bm, 0, 0, bm.n);

  rt::Cluster cluster(nodes_, backend, net);

  // Home each subtree where its first leaf lives; leaves are split into
  // contiguous preorder chunks (spatially compact).
  auto owner_of_leaf = [&](std::int32_t leaf) {
    return sim::NodeId(std::uint64_t(leaf) * nodes_ /
                       std::uint64_t(host.leaf_count));
  };
  std::vector<gas::GPtr<QNode>> global(host.nodes.size());
  // Children have larger indices (preorder): build bottom-up.
  for (std::size_t i = host.nodes.size(); i-- > 0;) {
    const HNode& h = host.nodes[i];
    QNode q;
    q.x0 = h.x0;
    q.y0 = h.y0;
    q.size = h.size;
    q.color = h.color;
    for (int c = 0; c < 4; ++c) {
      if (h.child[std::size_t(c)] >= 0)
        q.child[std::size_t(c)] = global[std::size_t(h.child[std::size_t(c)])];
    }
    global[i] = cluster.heap.make<QNode>(owner_of_leaf(h.first_leaf), q);
  }
  const gas::GPtr<QNode> root = global[std::size_t(root_idx)];

  // Per-node black leaf lists.
  struct Leaf {
    std::uint32_t x0, y0, size;
  };
  std::vector<std::vector<Leaf>> owned(nodes_);
  std::uint64_t black_leaves = 0;
  for (const HNode& h : host.nodes) {
    if (h.color != 1) continue;
    ++black_leaves;
    owned[owner_of_leaf(h.first_leaf)].push_back(Leaf{h.x0, h.y0, h.size});
  }

  // One edge counter per node: a node's threads run serially on that node,
  // so no synchronization; summed in node order afterwards (exact — integer).
  std::vector<std::uint64_t> partials(nodes_, 0);
  const PerimeterConfig* cfg = &cfg_;
  const std::uint32_t n_pix = bm.n;
  std::vector<rt::NodeWork> work(nodes_);
  for (std::uint32_t n = 0; n < nodes_; ++n) {
    const auto& mine = owned[n];
    std::uint64_t* pperim = &partials[n];
    work[n].count = mine.size();
    work[n].item = [&mine, pperim, cfg, root, n_pix](rt::Ctx& ctx,
                                                     std::uint64_t i) {
      const Leaf& leaf = mine[std::size_t(i)];
      // Each border pixel edge: either the bitmap boundary (host check) or
      // a probe of the pixel on the other side.
      auto edge = [&](std::int64_t px, std::int64_t py) {
        if (px < 0 || py < 0 || px >= std::int64_t(n_pix) ||
            py >= std::int64_t(n_pix)) {
          ctx.charge(cfg->cost_edge);
          ++*pperim;
          return;
        }
        probe(ctx, root, std::uint32_t(px), std::uint32_t(py), pperim, cfg);
      };
      for (std::uint32_t k = 0; k < leaf.size; ++k) {
        edge(std::int64_t(leaf.x0) - 1, leaf.y0 + k);            // west
        edge(std::int64_t(leaf.x0) + leaf.size, leaf.y0 + k);    // east
        edge(leaf.x0 + k, std::int64_t(leaf.y0) - 1);            // south
        edge(leaf.x0 + k, std::int64_t(leaf.y0) + leaf.size);    // north
      }
    };
  }

  rt::PhaseRunner runner(cluster, rcfg);
  PerimeterResult result;
  result.phase = runner.run(std::move(work));
  for (const std::uint64_t p : partials) result.perimeter += p;
  result.expected = oracle_perimeter(bm);
  result.black_leaves = black_leaves;
  result.tree_nodes = host.nodes.size();
  return result;
}

}  // namespace dpa::apps::olden
