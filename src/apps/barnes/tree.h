// Host-side octree: built between force phases (tree construction is not the
// phase the paper times), then materialized into the global heap with homes
// chosen by costzone partitioning.
//
// The build is the linear-octree algorithm: bodies are sorted by Morton key
// and cells are formed over contiguous key ranges. Morton order doubles as
// the costzone traversal order (contiguous chunks of it are spatially
// compact), as in SPLASH-2.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "apps/barnes/types.h"
#include "gas/heap.h"

namespace dpa::apps::barnes {

// 60-bit Morton key of a position inside the cubic bounding box
// [center - half, center + half]^3.
std::uint64_t morton_key(const Vec3& pos, const Vec3& center, double half);

struct BuildCell {
  Vec3 center;
  double half = 0;
  bool leaf = true;
  std::vector<std::int32_t> bodies;  // leaf payload (indices)
  std::array<std::int32_t, 8> child{-1, -1, -1, -1, -1, -1, -1, -1};
  Vec3 com;
  double mass = 0;
  Quad quad;
  std::int32_t first_body = -1;  // first body (Morton order) in the subtree
};

struct BhTree {
  std::vector<BuildCell> cells;
  std::int32_t root = -1;
  std::vector<std::int32_t> order;  // body indices in Morton order
  Vec3 root_center;
  double root_half = 0;

  const BuildCell& at(std::int32_t i) const { return cells[std::size_t(i)]; }
  std::size_t num_cells() const { return cells.size(); }

  // Builds the octree over `bodies`.
  static BhTree build(std::span<const Body> bodies);

  // Post-order centers of mass.
  void compute_com(std::span<const Body> bodies);

  // Post-order quadrupole moments about each cell's COM (requires
  // compute_com first). Exact for point masses: children shift by the
  // parallel-axis rule (their dipole about their own COM is zero).
  void compute_quadrupoles(std::span<const Body> bodies);
};

// Costzones: splits the Morton-ordered body sequence into `nodes` chunks of
// approximately equal total `work`, returning owner[body index].
std::vector<sim::NodeId> costzone_owners(const BhTree& tree,
                                         std::span<const Body> bodies,
                                         std::uint32_t nodes);

// Materializes the host tree into global-heap cells. A cell is homed where
// its subtree's first body lives (chunks are contiguous in Morton order, so
// this co-locates subtrees with their owners). Returns the root pointer.
gas::GPtr<Cell> materialize(const BhTree& tree, std::span<const Body> bodies,
                            std::span<const sim::NodeId> owner,
                            gas::GlobalHeap& heap);

// Sequential reference force walk (also the interaction-count oracle).
struct WalkCounts {
  std::uint64_t interactions = 0;  // body-body plus body-COM terms
  std::uint64_t opens = 0;         // cells descended into
};
WalkCounts walk_sequential(const BhTree& tree, std::span<const Body> bodies,
                           const Body& body, double theta, double eps,
                           Vec3* acc_out, bool use_quadrupole = false);

// Acceleration contribution of a cell's quadrupole on a body at `pos`
// (added on top of the softened monopole term).
Vec3 quadrupole_acc(const Quad& q, const Vec3& com, const Vec3& pos);

}  // namespace dpa::apps::barnes
