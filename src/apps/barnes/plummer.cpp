#include "apps/barnes/plummer.h"

#include <cmath>

#include "support/assert.h"
#include "support/rng.h"

namespace dpa::apps::barnes {

namespace {

// Uniform direction scaled to length `r`.
Vec3 random_on_sphere(Rng& rng, double r) {
  // Rejection from the unit ball, then project.
  for (;;) {
    Vec3 v{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const double n2 = v.norm2();
    if (n2 > 1e-12 && n2 <= 1.0) return v * (r / std::sqrt(n2));
  }
}

}  // namespace

std::vector<Body> plummer_model(std::uint32_t nbodies, std::uint64_t seed) {
  DPA_CHECK(nbodies > 0);
  Rng rng(seed);
  std::vector<Body> bodies(nbodies);

  const double rsc = 3.0 * 3.14159265358979323846 / 16.0;  // radius scale
  const double vsc = std::sqrt(1.0 / rsc);                 // velocity scale

  for (std::uint32_t i = 0; i < nbodies; ++i) {
    Body& b = bodies[i];
    b.idx = std::int32_t(i);
    b.mass = 1.0 / double(nbodies);

    // Radius from the inverted cumulative mass profile, truncated at 9.
    double r;
    do {
      const double x = rng.uniform(1e-10, 0.999);
      r = 1.0 / std::sqrt(std::pow(x, -2.0 / 3.0) - 1.0);
    } while (r > 9.0);
    b.pos = random_on_sphere(rng, rsc * r);

    // Speed by von Neumann rejection on g(q) = q^2 (1-q^2)^3.5.
    double q, g;
    do {
      q = rng.uniform(0, 1);
      g = rng.uniform(0, 0.1);
    } while (g > q * q * std::pow(1.0 - q * q, 3.5));
    const double v = q * std::sqrt(2.0) / std::pow(1.0 + r * r, 0.25);
    b.vel = random_on_sphere(rng, vsc * v);

    b.work = 1.0;  // uniform costzone weight until the first step measures
  }

  // Shift to the center-of-mass frame.
  Vec3 cmp, cmv;
  for (const Body& b : bodies) {
    cmp += b.pos * b.mass;
    cmv += b.vel * b.mass;
  }
  for (Body& b : bodies) {
    b.pos -= cmp;  // total mass is 1
    b.vel -= cmv;
  }
  return bodies;
}

}  // namespace dpa::apps::barnes
