// The force-computation phase in the paper's post-transformation form: the
// walk over the octree is a chain of non-blocking threads, each labeled with
// the cell pointer it reads. Visiting a cell either accumulates force
// (leaf / far-enough COM) or creates one thread per child — which is exactly
// where DPA's map M tiles, pipelines and aggregates.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "apps/barnes/types.h"
#include "runtime/engine.h"

namespace dpa::apps::barnes {

// Shared, phase-lifetime parameters for the walk threads. The counters are
// host-side accounting shared by every node's threads — atomic (relaxed)
// because on the native backend those threads are real concurrent workers.
struct ForceParams {
  double theta2 = 1.0;
  double eps2 = 0.0025;
  bool use_quadrupole = false;
  sim::Time cost_interaction = 3600;
  sim::Time cost_interaction_quad = 7600;
  sim::Time cost_open = 350;
  sim::Time cost_body_start = 900;
  std::atomic<std::uint64_t> interactions{0};
  std::atomic<std::uint64_t> opens{0};
};

// Creates the walk thread for `body` on `cell`.
void walk_parallel(rt::Ctx& ctx, gas::GPtr<Cell> cell, Body* body,
                   ForceParams* params);

// Builds per-node conc loops over each node's owned bodies. `owned[n]` lists
// body indices homed on node n; `bodies` must stay alive and un-moved for
// the duration of the phase.
std::vector<rt::NodeWork> make_force_work(
    std::span<Body> bodies,
    const std::vector<std::vector<std::int32_t>>& owned,
    gas::GPtr<Cell> root, ForceParams* params);

}  // namespace dpa::apps::barnes
