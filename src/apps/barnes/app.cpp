#include "apps/barnes/app.h"

#include <utility>

#include "apps/barnes/plummer.h"
#include "support/assert.h"

namespace dpa::apps::barnes {

double BarnesRun::total_parallel_seconds() const {
  double total = 0;
  for (const auto& s : steps) total += s.phase.seconds();
  return total;
}

double BarnesRun::total_model_seq_seconds() const {
  double total = 0;
  for (const auto& s : steps) total += s.model_seq_seconds;
  return total;
}

std::uint64_t BarnesRun::total_interactions() const {
  std::uint64_t total = 0;
  for (const auto& s : steps) total += s.interactions;
  return total;
}

bool BarnesRun::all_completed() const {
  for (const auto& s : steps)
    if (!s.phase.completed) return false;
  return !steps.empty();
}

BarnesApp::BarnesApp(BarnesConfig cfg)
    : cfg_(cfg), init_(plummer_model(cfg.nbodies, cfg.seed)) {}

double BarnesApp::model_seq_seconds(const WalkCounts& counts) const {
  // With quadrupoles enabled, cell interactions are costlier; the split
  // between cell and body interactions is not tracked separately, so the
  // model charges the blended rate only when the feature is on.
  const double per_inter = cfg_.use_quadrupole
                               ? double(cfg_.cost_interaction_quad)
                               : double(cfg_.cost_interaction);
  const double ns = double(cfg_.nbodies) * double(cfg_.cost_body_start) +
                    double(counts.opens) * double(cfg_.cost_open) +
                    double(counts.interactions) * per_inter;
  return ns / 1e9;
}

namespace {

void integrate(std::vector<Body>& bodies, double dt) {
  for (Body& b : bodies) {
    b.vel += b.acc * dt;
    b.pos += b.vel * dt;
  }
}

}  // namespace

BarnesRun BarnesApp::run(std::uint32_t nodes, const sim::NetParams& net,
                         const rt::RuntimeConfig& rcfg, obs::Session* obs,
                         exec::BackendKind backend) const {
  std::vector<Body> bodies = init_;
  rt::Cluster cluster(nodes, backend, net);
  cluster.attach_obs(obs);
  rt::PhaseRunner runner(cluster, rcfg);

  BarnesRun result;
  for (std::uint32_t step = 0; step < cfg_.nsteps; ++step) {
    // --- untimed setup: tree build, COM, costzones, materialization ---
    BhTree tree = BhTree::build(bodies);
    tree.compute_com(bodies);
    if (cfg_.use_quadrupole) tree.compute_quadrupoles(bodies);
    const std::vector<sim::NodeId> owner =
        costzone_owners(tree, bodies, nodes);
    const gas::GPtr<Cell> root =
        materialize(tree, bodies, owner, cluster.heap);

    std::vector<std::vector<std::int32_t>> owned(nodes);
    // Conc loops iterate bodies in Morton order within each owner: the
    // spatial locality this creates is what makes tiles share fetches.
    for (const std::int32_t bi : tree.order)
      owned[owner[std::size_t(bi)]].push_back(bi);

    for (Body& b : bodies) {
      b.acc = Vec3{};
      b.work = 0;
    }

    ForceParams params;
    params.theta2 = cfg_.theta * cfg_.theta;
    params.eps2 = cfg_.eps * cfg_.eps;
    params.use_quadrupole = cfg_.use_quadrupole;
    params.cost_interaction = cfg_.cost_interaction;
    params.cost_interaction_quad = cfg_.cost_interaction_quad;
    params.cost_open = cfg_.cost_open;
    params.cost_body_start = cfg_.cost_body_start;

    // --- the timed phase ---
    // Phase-visible host memory for the multi-process backend: force tasks
    // write owned bodies' acc/work fields (byte-merged — owners are
    // disjoint) and bump the shared walk counters (delta-summed).
    exec::ScopedPhaseSpan span_bodies(
        cluster.exec(),
        exec::PhaseSpan{bodies.data(), bodies.size() * sizeof(Body),
                        exec::SpanMerge::kBytes});
    exec::ScopedPhaseSpan span_inter(
        cluster.exec(), exec::PhaseSpan{&params.interactions,
                                        sizeof(params.interactions),
                                        exec::SpanMerge::kSumU64});
    exec::ScopedPhaseSpan span_opens(
        cluster.exec(),
        exec::PhaseSpan{&params.opens, sizeof(params.opens),
                        exec::SpanMerge::kSumU64});
    BarnesStep st;
    st.phase =
        runner.run(make_force_work(bodies, owned, root, &params), "bh.force");
    DPA_CHECK(st.phase.completed)
        << "Barnes-Hut force phase deadlocked:\n"
        << st.phase.diagnostics;
    st.interactions = params.interactions.load(std::memory_order_relaxed);
    st.opens = params.opens.load(std::memory_order_relaxed);
    st.model_seq_seconds =
        model_seq_seconds(WalkCounts{st.interactions, st.opens});
    result.steps.push_back(std::move(st));

    integrate(bodies, cfg_.dt);
  }
  result.final_bodies = std::move(bodies);
  return result;
}

std::vector<BarnesApp::SeqStep> BarnesApp::run_sequential() const {
  std::vector<Body> bodies = init_;
  std::vector<SeqStep> steps;
  for (std::uint32_t step = 0; step < cfg_.nsteps; ++step) {
    BhTree tree = BhTree::build(bodies);
    tree.compute_com(bodies);
    if (cfg_.use_quadrupole) tree.compute_quadrupoles(bodies);

    SeqStep st;
    st.acc.resize(bodies.size());
    for (std::size_t i = 0; i < bodies.size(); ++i) {
      const WalkCounts c =
          walk_sequential(tree, bodies, bodies[i], cfg_.theta, cfg_.eps,
                          &st.acc[i], cfg_.use_quadrupole);
      st.counts.interactions += c.interactions;
      st.counts.opens += c.opens;
    }
    st.seconds = model_seq_seconds(st.counts);

    for (std::size_t i = 0; i < bodies.size(); ++i) bodies[i].acc = st.acc[i];
    integrate(bodies, cfg_.dt);
    steps.push_back(std::move(st));
  }
  return steps;
}

}  // namespace dpa::apps::barnes
