// Plummer-model initial conditions, following the SPLASH-2 Barnes-Hut
// generator (Aarseth's method): positions from the Plummer density profile
// (truncated at r = 9), velocities by von Neumann rejection sampling, then a
// shift to the center-of-mass frame.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/barnes/types.h"

namespace dpa::apps::barnes {

std::vector<Body> plummer_model(std::uint32_t nbodies, std::uint64_t seed);

}  // namespace dpa::apps::barnes
