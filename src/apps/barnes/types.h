// Data model for the Barnes-Hut reproduction.
//
// The globally addressable objects are octree cells. Leaves carry their
// bodies' positions and masses inline — the "inline allocation of objects to
// enlarge object granularity" optimization the paper relies on (Dolby [13]):
// one remote fetch delivers everything a visiting thread needs.
#pragma once

#include <array>
#include <cstdint>

#include "apps/common/vec.h"
#include "gas/global_ptr.h"
#include "sim/time.h"

namespace dpa::apps::barnes {

// Bodies a leaf cell carries inline.
constexpr int kLeafCap = 8;
// Octree recursion bound (Morton key resolution).
constexpr int kMaxDepth = 20;

// A body: owned (homed) by the node that integrates it. During the force
// phase the owner updates acc/work; other nodes only see copies of body data
// embedded in leaf cells.
struct Body {
  Vec3 pos;
  Vec3 vel;
  Vec3 acc;
  double mass = 0;
  std::int32_t idx = -1;   // global body index
  double work = 1.0;       // interactions last step; costzone weight
};

// Symmetric traceless quadrupole tensor (6 unique components).
struct Quad {
  double xx = 0, xy = 0, xz = 0, yy = 0, yz = 0, zz = 0;
};

// An octree cell: the globally-shared pointer-based data structure. Either
// an internal cell with up to 8 children, or a leaf with <= kLeafCap bodies
// inlined.
struct Cell {
  Vec3 center;
  double half = 0;  // half of side length
  Vec3 com;         // center of mass
  double mass = 0;
  Quad quad;        // filled when BarnesConfig::use_quadrupole
  bool leaf = true;
  std::int32_t count = 0;  // inlined bodies if leaf
  std::array<Vec3, kLeafCap> bpos;
  std::array<double, kLeafCap> bmass;
  std::array<std::int32_t, kLeafCap> bidx;
  std::array<gas::GPtr<Cell>, 8> child;
};

struct BarnesConfig {
  std::uint32_t nbodies = 4096;
  std::uint32_t nsteps = 1;
  double theta = 1.0;   // opening parameter (SPLASH-2 default regime)
  double dt = 0.025;
  double eps = 0.05;    // softening
  std::uint64_t seed = 1234;
  // Cell-body interactions use quadrupole moments in addition to the
  // monopole (higher accuracy at the same theta; standard in production
  // tree codes, and an "enlarged object granularity" case for the runtime:
  // the same fetch carries more physics).
  bool use_quadrupole = false;

  // Application cost model in ns (see EXPERIMENTS.md for calibration
  // against the paper's 97.84 s sequential baseline).
  sim::Time cost_interaction = 3440;  // one body-body / body-COM interaction
  sim::Time cost_interaction_quad = 7600;  // COM interaction incl. quadrupole
  sim::Time cost_open = 350;          // decide + descend one cell
  sim::Time cost_body_start = 900;    // begin one body's walk

  // The paper's full-scale configuration (16,384 bodies, 4 steps).
  static BarnesConfig paper() {
    BarnesConfig c;
    c.nbodies = 16384;
    c.nsteps = 4;
    return c;
  }
};

}  // namespace dpa::apps::barnes
