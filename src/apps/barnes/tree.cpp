#include "apps/barnes/tree.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace dpa::apps::barnes {

namespace {

constexpr int kKeyBits = kMaxDepth;  // bits per dimension

std::uint32_t quantize(double v, double lo, double span) {
  const double n = (v - lo) / span;  // in [0, 1]
  const auto max = double((1u << kKeyBits) - 1);
  const double q = n * max;
  if (q <= 0) return 0;
  if (q >= max) return (1u << kKeyBits) - 1;
  return std::uint32_t(q);
}

}  // namespace

std::uint64_t morton_key(const Vec3& pos, const Vec3& center, double half) {
  const double span = 2 * half;
  const std::uint32_t xi = quantize(pos.x, center.x - half, span);
  const std::uint32_t yi = quantize(pos.y, center.y - half, span);
  const std::uint32_t zi = quantize(pos.z, center.z - half, span);
  std::uint64_t key = 0;
  for (int b = kKeyBits - 1; b >= 0; --b) {
    const std::uint64_t octant = ((xi >> b) & 1u) | (((yi >> b) & 1u) << 1) |
                                 (((zi >> b) & 1u) << 2);
    key = (key << 3) | octant;
  }
  return key;
}

namespace {

struct Builder {
  std::span<const Body> bodies;
  std::vector<std::uint64_t> keys;  // by body index
  BhTree tree;

  // Builds over tree.order[lo, hi) at `depth`; returns the cell index.
  std::int32_t build_range(std::size_t lo, std::size_t hi, int depth,
                           Vec3 center, double half) {
    DPA_CHECK(hi > lo);
    const auto idx = std::int32_t(tree.cells.size());
    tree.cells.emplace_back();
    {
      BuildCell& cell = tree.cells.back();
      cell.center = center;
      cell.half = half;
      cell.first_body = tree.order[lo];
    }

    if (hi - lo <= std::size_t(kLeafCap) || depth >= kMaxDepth) {
      DPA_CHECK(hi - lo <= std::size_t(kLeafCap))
          << "octree leaf overflow at max depth: " << (hi - lo)
          << " coincident bodies";
      BuildCell& cell = tree.cells[std::size_t(idx)];
      cell.leaf = true;
      cell.bodies.assign(tree.order.begin() + std::ptrdiff_t(lo),
                         tree.order.begin() + std::ptrdiff_t(hi));
      return idx;
    }

    tree.cells[std::size_t(idx)].leaf = false;
    const int shift = 3 * (kKeyBits - 1 - depth);
    std::size_t start = lo;
    for (std::uint64_t oct = 0; oct < 8; ++oct) {
      // Keys are sorted; the octant's range is contiguous.
      std::size_t end = start;
      while (end < hi &&
             ((keys[std::size_t(tree.order[end])] >> shift) & 7u) == oct) {
        ++end;
      }
      if (end > start) {
        const double qh = half / 2;
        Vec3 ccenter = center;
        ccenter.x += (oct & 1u) ? qh : -qh;
        ccenter.y += (oct & 2u) ? qh : -qh;
        ccenter.z += (oct & 4u) ? qh : -qh;
        const std::int32_t c =
            build_range(start, end, depth + 1, ccenter, qh);
        tree.cells[std::size_t(idx)].child[oct] = c;
      }
      start = end;
    }
    DPA_CHECK(start == hi) << "octant partition lost bodies";
    return idx;
  }
};

}  // namespace

BhTree BhTree::build(std::span<const Body> bodies) {
  DPA_CHECK(!bodies.empty());

  // Cubic bounding box with a little slack so boundary bodies quantize
  // strictly inside.
  Vec3 lo = bodies[0].pos, hi = bodies[0].pos;
  for (const Body& b : bodies) {
    lo.x = std::min(lo.x, b.pos.x);
    lo.y = std::min(lo.y, b.pos.y);
    lo.z = std::min(lo.z, b.pos.z);
    hi.x = std::max(hi.x, b.pos.x);
    hi.y = std::max(hi.y, b.pos.y);
    hi.z = std::max(hi.z, b.pos.z);
  }
  const Vec3 center = (lo + hi) * 0.5;
  double half = 0.5 * std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z});
  half = half > 0 ? half * 1.0001 : 1.0;

  Builder b;
  b.bodies = bodies;
  b.keys.resize(bodies.size());
  b.tree.order.resize(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    b.keys[i] = morton_key(bodies[i].pos, center, half);
    b.tree.order[i] = std::int32_t(i);
  }
  std::sort(b.tree.order.begin(), b.tree.order.end(),
            [&](std::int32_t x, std::int32_t y) {
              const auto kx = b.keys[std::size_t(x)];
              const auto ky = b.keys[std::size_t(y)];
              return kx != ky ? kx < ky : x < y;
            });

  b.tree.root_center = center;
  b.tree.root_half = half;
  b.tree.cells.reserve(bodies.size() / 2 + 16);
  b.tree.root = b.build_range(0, bodies.size(), 0, center, half);
  return std::move(b.tree);
}

void BhTree::compute_com(std::span<const Body> bodies) {
  // Children have larger indices than parents (preorder creation), so a
  // reverse sweep sees children before parents.
  for (auto it = cells.rbegin(); it != cells.rend(); ++it) {
    BuildCell& cell = *it;
    Vec3 weighted;
    double mass = 0;
    if (cell.leaf) {
      for (const std::int32_t bi : cell.bodies) {
        const Body& b = bodies[std::size_t(bi)];
        weighted += b.pos * b.mass;
        mass += b.mass;
      }
    } else {
      for (const std::int32_t ci : cell.child) {
        if (ci < 0) continue;
        const BuildCell& c = cells[std::size_t(ci)];
        weighted += c.com * c.mass;
        mass += c.mass;
      }
    }
    DPA_CHECK(mass > 0) << "empty cell in octree";
    cell.mass = mass;
    cell.com = weighted * (1.0 / mass);
  }
}

void BhTree::compute_quadrupoles(std::span<const Body> bodies) {
  auto add_point = [](Quad& q, const Vec3& d, double m) {
    const double r2 = d.norm2();
    q.xx += m * (3 * d.x * d.x - r2);
    q.xy += m * 3 * d.x * d.y;
    q.xz += m * 3 * d.x * d.z;
    q.yy += m * (3 * d.y * d.y - r2);
    q.yz += m * 3 * d.y * d.z;
    q.zz += m * (3 * d.z * d.z - r2);
  };
  // Children before parents: reverse sweep (preorder creation).
  for (auto it = cells.rbegin(); it != cells.rend(); ++it) {
    BuildCell& cell = *it;
    cell.quad = Quad{};
    if (cell.leaf) {
      for (const std::int32_t bi : cell.bodies) {
        const Body& b = bodies[std::size_t(bi)];
        add_point(cell.quad, b.pos - cell.com, b.mass);
      }
    } else {
      for (const std::int32_t ci : cell.child) {
        if (ci < 0) continue;
        const BuildCell& c = cells[std::size_t(ci)];
        // Parallel-axis shift: the child's dipole about its own COM is
        // zero, so only its monopole shifts.
        cell.quad.xx += c.quad.xx;
        cell.quad.xy += c.quad.xy;
        cell.quad.xz += c.quad.xz;
        cell.quad.yy += c.quad.yy;
        cell.quad.yz += c.quad.yz;
        cell.quad.zz += c.quad.zz;
        add_point(cell.quad, c.com - cell.com, c.mass);
      }
    }
  }
}

Vec3 quadrupole_acc(const Quad& q, const Vec3& com, const Vec3& pos) {
  // phi_quad = (1/2) x^T Q x / r^5 with x = pos - com; a = +grad(psi) for
  // the potential convention used in the monopole term (see force tests).
  const Vec3 x = pos - com;
  const double r2 = x.norm2();
  const double r = std::sqrt(r2);
  const double inv_r5 = 1.0 / (r2 * r2 * r);
  const double inv_r7 = inv_r5 / r2;
  const Vec3 qx{q.xx * x.x + q.xy * x.y + q.xz * x.z,
                q.xy * x.x + q.yy * x.y + q.yz * x.z,
                q.xz * x.x + q.yz * x.y + q.zz * x.z};
  const double xqx = x.dot(qx);
  return qx * inv_r5 - x * (2.5 * xqx * inv_r7);
}

std::vector<sim::NodeId> costzone_owners(const BhTree& tree,
                                         std::span<const Body> bodies,
                                         std::uint32_t nodes) {
  DPA_CHECK(nodes > 0);
  double total = 0;
  for (const Body& b : bodies) total += std::max(b.work, 1.0);

  std::vector<sim::NodeId> owner(bodies.size(), 0);
  double prefix = 0;
  for (const std::int32_t bi : tree.order) {
    const double w = std::max(bodies[std::size_t(bi)].work, 1.0);
    // Zone by the midpoint of this body's work interval.
    const double mid = prefix + w / 2;
    auto zone = sim::NodeId(mid / total * double(nodes));
    if (zone >= nodes) zone = nodes - 1;
    owner[std::size_t(bi)] = zone;
    prefix += w;
  }
  return owner;
}

namespace {

gas::GPtr<Cell> materialize_cell(const BhTree& tree, std::int32_t idx,
                                 std::span<const Body> bodies,
                                 std::span<const sim::NodeId> owner,
                                 gas::GlobalHeap& heap) {
  const BuildCell& src = tree.at(idx);
  const sim::NodeId home = owner[std::size_t(src.first_body)];
  gas::GPtr<Cell> p = heap.make<Cell>(home);
  Cell* cell = gas::GlobalHeap::mutate(p);
  cell->center = src.center;
  cell->half = src.half;
  cell->com = src.com;
  cell->mass = src.mass;
  cell->quad = src.quad;
  cell->leaf = src.leaf;
  if (src.leaf) {
    cell->count = std::int32_t(src.bodies.size());
    for (std::size_t i = 0; i < src.bodies.size(); ++i) {
      const Body& b = bodies[std::size_t(src.bodies[i])];
      cell->bpos[i] = b.pos;
      cell->bmass[i] = b.mass;
      cell->bidx[i] = b.idx;
    }
  } else {
    for (int c = 0; c < 8; ++c) {
      if (src.child[std::size_t(c)] >= 0) {
        cell->child[std::size_t(c)] = materialize_cell(
            tree, src.child[std::size_t(c)], bodies, owner, heap);
      }
    }
  }
  return p;
}

}  // namespace

gas::GPtr<Cell> materialize(const BhTree& tree, std::span<const Body> bodies,
                            std::span<const sim::NodeId> owner,
                            gas::GlobalHeap& heap) {
  DPA_CHECK(tree.root >= 0);
  return materialize_cell(tree, tree.root, bodies, owner, heap);
}

WalkCounts walk_sequential(const BhTree& tree, std::span<const Body> bodies,
                           const Body& body, double theta, double eps,
                           Vec3* acc_out, bool use_quadrupole) {
  WalkCounts counts;
  Vec3 acc;
  const double theta2 = theta * theta;
  const double eps2 = eps * eps;

  auto add_force = [&](const Vec3& target, double mass) {
    const Vec3 d = target - body.pos;
    const double denom = d.norm2() + eps2;
    const double inv = 1.0 / std::sqrt(denom);
    acc += d * (mass * inv * inv * inv);
    ++counts.interactions;
  };

  // Explicit stack; same opening criterion as the parallel walk.
  std::vector<std::int32_t> stack{tree.root};
  while (!stack.empty()) {
    const BuildCell& cell = tree.at(stack.back());
    stack.pop_back();
    if (cell.leaf) {
      for (const std::int32_t bi : cell.bodies) {
        if (bi == body.idx) continue;
        add_force(bodies[std::size_t(bi)].pos, bodies[std::size_t(bi)].mass);
      }
      continue;
    }
    const Vec3 d = cell.com - body.pos;
    const double r2 = d.norm2();
    const double size = 2 * cell.half;
    if (r2 * theta2 >= size * size) {
      add_force(cell.com, cell.mass);
      if (use_quadrupole) acc += quadrupole_acc(cell.quad, cell.com, body.pos);
    } else {
      ++counts.opens;
      for (const std::int32_t ci : cell.child)
        if (ci >= 0) stack.push_back(ci);
    }
  }
  if (acc_out) *acc_out = acc;
  return counts;
}

}  // namespace dpa::apps::barnes
