#include "apps/barnes/force.h"

#include "apps/barnes/tree.h"

#include <cmath>

#include "support/assert.h"

namespace dpa::apps::barnes {

void walk_parallel(rt::Ctx& ctx, gas::GPtr<Cell> cell, Body* body,
                   ForceParams* params) {
  ctx.require(cell, [body, params](rt::Ctx& ctx2, const Cell& c) {
    if (c.leaf) {
      std::int64_t n = 0;
      for (std::int32_t i = 0; i < c.count; ++i) {
        if (c.bidx[std::size_t(i)] == body->idx) continue;
        const Vec3 d = c.bpos[std::size_t(i)] - body->pos;
        const double denom = d.norm2() + params->eps2;
        const double inv = 1.0 / std::sqrt(denom);
        body->acc += d * (c.bmass[std::size_t(i)] * inv * inv * inv);
        ++n;
      }
      if (n > 0) {
        ctx2.charge(n * params->cost_interaction);
        body->work += double(n);
        params->interactions.fetch_add(std::uint64_t(n),
                                       std::memory_order_relaxed);
      }
      return;
    }

    const Vec3 d = c.com - body->pos;
    const double r2 = d.norm2();
    const double size = 2 * c.half;
    if (r2 * params->theta2 >= size * size) {
      // Far enough: a single interaction with the cell's center of mass.
      const double denom = r2 + params->eps2;
      const double inv = 1.0 / std::sqrt(denom);
      body->acc += d * (c.mass * inv * inv * inv);
      if (params->use_quadrupole) {
        body->acc += quadrupole_acc(c.quad, c.com, body->pos);
        ctx2.charge(params->cost_interaction_quad);
      } else {
        ctx2.charge(params->cost_interaction);
      }
      body->work += 1.0;
      params->interactions.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Open the cell: one new thread per child, each labeled with the
      // child pointer.
      ctx2.charge(params->cost_open);
      params->opens.fetch_add(1, std::memory_order_relaxed);
      for (const auto& ch : c.child) {
        if (ch) walk_parallel(ctx2, ch, body, params);
      }
    }
  });
}

std::vector<rt::NodeWork> make_force_work(
    std::span<Body> bodies,
    const std::vector<std::vector<std::int32_t>>& owned,
    gas::GPtr<Cell> root, ForceParams* params) {
  DPA_CHECK(root);
  std::vector<rt::NodeWork> work(owned.size());
  Body* base = bodies.data();
  for (std::size_t n = 0; n < owned.size(); ++n) {
    const std::vector<std::int32_t>& mine = owned[n];
    work[n].count = mine.size();
    work[n].item = [base, &mine, root, params](rt::Ctx& ctx,
                                               std::uint64_t i) {
      Body* body = base + mine[std::size_t(i)];
      ctx.charge(params->cost_body_start);
      walk_parallel(ctx, root, body, params);
    };
  }
  return work;
}

}  // namespace dpa::apps::barnes
