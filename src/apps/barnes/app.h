// Barnes-Hut application driver: generates the Plummer system, then per
// step builds/partitions/materializes the octree (untimed setup, as in the
// paper) and runs the timed force-computation phase under a chosen runtime
// engine. A sequential oracle provides the reference accelerations and the
// modeled uniprocessor time (the paper's "sequential version": the program
// with no parallel runtime in the loop).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/barnes/force.h"
#include "apps/barnes/tree.h"
#include "apps/barnes/types.h"
#include "runtime/phase.h"

namespace dpa::apps::barnes {

struct BarnesStep {
  rt::PhaseResult phase;
  std::uint64_t interactions = 0;
  std::uint64_t opens = 0;
  double model_seq_seconds = 0;  // modeled sequential time for this step
};

struct BarnesRun {
  std::vector<BarnesStep> steps;
  std::vector<Body> final_bodies;

  double total_parallel_seconds() const;
  double total_model_seq_seconds() const;
  std::uint64_t total_interactions() const;
  bool all_completed() const;
};

class BarnesApp {
 public:
  explicit BarnesApp(BarnesConfig cfg);

  // Runs cfg.nsteps force phases on `nodes` nodes of the chosen execution
  // backend (simulated by default). When `obs` is non-null the cluster
  // reports into it: each force phase is traced as "bh.force" and its
  // totals land in the metrics registry.
  BarnesRun run(std::uint32_t nodes, const sim::NetParams& net,
                const rt::RuntimeConfig& rcfg, obs::Session* obs = nullptr,
                exec::BackendKind backend = exec::BackendKind::kSim) const;

  struct SeqStep {
    std::vector<Vec3> acc;  // per body, this step
    WalkCounts counts;
    double seconds = 0;
  };
  // Sequential oracle over the same steps (also integrates).
  std::vector<SeqStep> run_sequential() const;

  const BarnesConfig& config() const { return cfg_; }
  const std::vector<Body>& initial_bodies() const { return init_; }

  // Modeled sequential seconds for given walk counts.
  double model_seq_seconds(const WalkCounts& counts) const;

 private:
  BarnesConfig cfg_;
  std::vector<Body> init_;
};

}  // namespace dpa::apps::barnes
