// FMM application driver: builds the quadtree, interaction lists and
// multipole expansions (untimed setup, as in the paper, which times the
// force-computation phase), runs the interaction phase under a chosen
// runtime engine, and completes with the untimed downward pass. A direct
// O(N^2) oracle validates forces; a sequential host run provides the modeled
// uniprocessor time.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/fmm/phase.h"
#include "apps/fmm/tree.h"
#include "runtime/phase.h"

namespace dpa::apps::fmm {

struct FmmStep {
  rt::PhaseResult phase;
  std::uint64_t m2l = 0;
  std::uint64_t p2p_pairs = 0;
  std::uint64_t list_entries = 0;
  double model_seq_seconds = 0;
};

struct FmmRun {
  std::vector<FmmStep> steps;
  std::vector<Particle> final_particles;

  double total_parallel_seconds() const;
  double total_model_seq_seconds() const;
  bool all_completed() const;
};

class FmmApp {
 public:
  explicit FmmApp(FmmConfig cfg);

  // When `obs` is non-null the cluster reports into it: each interaction
  // phase is traced as "fmm.interact". `backend` picks the execution
  // substrate (simulated by default).
  FmmRun run(std::uint32_t nodes, const sim::NetParams& net,
             const rt::RuntimeConfig& rcfg, obs::Session* obs = nullptr,
             exec::BackendKind backend = exec::BackendKind::kSim) const;

  struct SeqResult {
    std::vector<Cmplx> forces;  // first step's forces
    double seconds = 0;         // modeled interaction-phase time
    std::uint64_t m2l = 0;
    std::uint64_t p2p_pairs = 0;
  };
  SeqResult run_sequential() const;

  const FmmConfig& config() const { return cfg_; }
  const std::vector<Particle>& initial_particles() const { return init_; }

  // Modeled sequential seconds of the interaction phase for a built tree.
  double model_seq_seconds(const FmmTree& tree) const;

 private:
  FmmConfig cfg_;
  std::vector<Particle> init_;
};

}  // namespace dpa::apps::fmm
