// Host-side adaptive quadtree for the 2D FMM, with interaction lists built
// by a dual-tree traversal (Dehnen-style): a target/source cell pair is
// either well separated (one M2L list entry), a pair of touching leaves
// (one P2P entry), or split at the larger cell and recursed. This covers
// every ordered (target particle, source particle) pair exactly once and
// keeps every M2L convergence ratio bounded by ws_ratio — a simplification
// of the SPLASH-2 FMM's U/V/W/X lists that preserves the communication
// pattern the paper's runtime optimizes (bulk reads of remote cells'
// expansions and inlined leaf particles). Documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/fmm/expansion.h"
#include "apps/fmm/types.h"
#include "gas/heap.h"

namespace dpa::apps::fmm {

enum class Kind : std::uint8_t { kM2L, kP2P };

struct ListEntry {
  std::int32_t src = -1;
  Kind kind = Kind::kM2L;
};

struct FBuildCell {
  Cmplx center;
  double half = 0;
  int level = 0;
  bool leaf = true;
  std::vector<std::int32_t> parts;  // leaf particles
  std::array<std::int32_t, 4> child{-1, -1, -1, -1};
  std::int32_t parent = -1;
  std::int32_t first_part = -1;
};

// Generates a clustered 2D particle set (uniform background plus Gaussian
// clusters) with total charge 1.
std::vector<Particle> make_particles(std::uint32_t n, std::uint64_t seed,
                                     bool clustered = true);

class FmmTree {
 public:
  static FmmTree build(std::span<const Particle> particles,
                       std::uint32_t leaf_cap = kLeafCap);

  // Builds per-target interaction lists (dual traversal).
  void build_lists(double ws_ratio);

  // Upward pass: P2M at leaves, M2M toward the root (untimed setup).
  void upward(std::span<const Particle> particles, std::uint32_t p);

  // Downward pass: L2L toward leaves, then L2P into particle forces
  // (untimed completion after the interaction phase).
  void downward_and_evaluate(std::span<Particle> particles, std::uint32_t p);

  // Runs the whole interaction phase sequentially on the host (the oracle):
  // applies every list entry, filling locals and P2P forces.
  void interact_sequential(std::span<Particle> particles, std::uint32_t p);

  // Modeled per-entry work, for costzones and the sequential time model.
  double entry_cost(std::int32_t target, const ListEntry& e,
                    const FmmConfig& cfg) const;

  const FBuildCell& at(std::int32_t i) const { return cells_[std::size_t(i)]; }
  std::size_t num_cells() const { return cells_.size(); }
  std::int32_t root() const { return root_; }
  const std::vector<ListEntry>& list(std::int32_t i) const {
    return lists_[std::size_t(i)];
  }
  std::span<const Cmplx> mpole(std::int32_t i) const {
    return mpole_[std::size_t(i)];
  }
  std::span<Cmplx> local(std::int32_t i) { return local_[std::size_t(i)]; }

  std::uint64_t total_m2l() const { return total_m2l_; }
  std::uint64_t total_p2p_pairs() const { return total_p2p_pairs_; }
  std::uint64_t total_entries() const;

  // Costzone owners for cells (preorder = Morton order of subtrees). Also
  // returns, per node, the list of target cells it owns that have work.
  struct Partition {
    std::vector<sim::NodeId> cell_owner;
    std::vector<std::vector<std::int32_t>> targets;  // per node
  };
  Partition partition(std::uint32_t nodes, const FmmConfig& cfg) const;

  // Materializes cells (geometry + truncated multipole + leaf particles)
  // into the global heap.
  std::vector<gas::GPtr<FCell>> materialize(
      std::span<const Particle> particles, std::uint32_t p,
      std::span<const sim::NodeId> owner, gas::GlobalHeap& heap) const;

 private:
  std::int32_t build_range(std::span<const Particle> particles,
                           std::size_t lo, std::size_t hi, int depth,
                           Cmplx center, double half, std::int32_t parent,
                           std::uint32_t leaf_cap,
                           const std::vector<std::uint64_t>& keys);
  void interact(std::int32_t a, std::int32_t b, double ws_ratio);

  std::vector<FBuildCell> cells_;
  std::int32_t root_ = -1;
  std::vector<std::int32_t> order_;  // particle indices in Morton order
  std::vector<std::vector<ListEntry>> lists_;
  std::vector<std::vector<Cmplx>> mpole_;
  std::vector<std::vector<Cmplx>> local_;
  std::uint64_t total_m2l_ = 0;
  std::uint64_t total_p2p_pairs_ = 0;
};

// Direct O(N^2) force oracle.
std::vector<Cmplx> direct_forces(std::span<const Particle> particles);

}  // namespace dpa::apps::fmm
