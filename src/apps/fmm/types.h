// Data model for the 2D fast multipole method reproduction.
//
// Potential theory convention: particles carry charges q_j at complex
// positions z_j with potential phi(z) = sum_j q_j log(z - z_j). The complex
// "force" on particle i is f_i = conj(sum_{j!=i} q_j / (z_i - z_j)), the
// standard 2D FMM convention (SPLASH-2 FMM is this 2D formulation).
#pragma once

#include <array>
#include <complex>
#include <cstdint>

#include "gas/global_ptr.h"
#include "sim/time.h"

namespace dpa::apps::fmm {

using Cmplx = std::complex<double>;

// Maximum expansion terms held inline in a cell object (paper runs 29).
constexpr std::uint32_t kMaxTerms = 30;
// Particles a leaf carries inline.
constexpr int kLeafCap = 16;
// Quadtree recursion bound.
constexpr int kMaxDepth = 24;

struct Particle {
  Cmplx z;        // position
  Cmplx vel;      // velocity (multi-step runs)
  double q = 0;   // charge / mass
  Cmplx force;    // accumulated complex force
  std::int32_t idx = -1;
};

// The globally shared cell object: geometry + truncated multipole expansion
// + (leaves) inlined particle data. One fetch serves both M2L and P2P.
struct FCell {
  Cmplx center;
  double half = 0;
  bool leaf = true;
  std::int32_t count = 0;
  std::array<Cmplx, kMaxTerms + 1> mpole;  // a_0 .. a_terms
  std::array<Cmplx, kLeafCap> ppos;
  std::array<double, kLeafCap> pq;
  std::array<std::int32_t, kLeafCap> pidx;
};

struct FmmConfig {
  std::uint32_t nparticles = 8192;
  std::uint32_t terms = 12;  // expansion order p (paper: 29)
  std::uint32_t nsteps = 1;
  std::uint64_t seed = 4321;
  // Well-separateness: accept M2L when the Chebyshev center distance is at
  // least ws_ratio * max(half-width). 4.0 reproduces the classic
  // "non-adjacent same-level" criterion.
  double ws_ratio = 4.0;
  double dt = 0.005;

  // Application cost model (ns): an M2L is (p+1)^2 multiply-adds, a P2P
  // pair is one complex reciprocal, an M2P/L2P evaluation is p+1 terms.
  // Calibrated on a 150 MHz Alpha 21064 so the paper-scale run lands near
  // the paper's 14.46 s sequential baseline (see EXPERIMENTS.md).
  sim::Time cost_per_term_pair = 95;  // M2L inner op (~14 cycles)
  sim::Time cost_p2p_pair = 900;      // softened complex reciprocal
  sim::Time cost_per_term_eval = 60;
  sim::Time cost_list_visit = 250;
  sim::Time cost_cell_start = 1200;

  sim::Time m2l_cost() const {
    const auto p1 = sim::Time(terms + 1);
    return p1 * p1 * cost_per_term_pair;
  }

  // The paper's full-scale configuration (32,768 particles, 29 terms).
  static FmmConfig paper() {
    FmmConfig c;
    c.nparticles = 32768;
    c.terms = 29;
    return c;
  }
};

}  // namespace dpa::apps::fmm
