#include "apps/fmm/phase.h"

#include "support/assert.h"

namespace dpa::apps::fmm {

std::uint32_t PhaseContext::cell_bytes(std::int32_t src) const {
  const FBuildCell& cell = tree->at(src);
  std::uint32_t bytes = 48;  // center, half, flags
  bytes += (cfg.terms + 1) * sizeof(Cmplx);
  if (cell.leaf) {
    bytes += std::uint32_t(cell.parts.size()) *
             std::uint32_t(sizeof(Cmplx) + sizeof(double) + sizeof(std::int32_t));
  }
  return bytes;
}

namespace {

void apply_entry(rt::Ctx& ctx, PhaseContext* pc, std::int32_t target,
                 const ListEntry& entry) {
  ctx.cpu().charge(pc->cfg.cost_list_visit, sim::Work::kCompute);
  const Kind kind = entry.kind;
  const std::int32_t src = entry.src;
  ctx.require_bytes(
      pc->cells[std::size_t(src)], pc->cell_bytes(src),
      [pc, target, kind](rt::Ctx& ctx2, const FCell& cell) {
        const std::uint32_t p = pc->cfg.terms;
        const FBuildCell& tcell = pc->tree->at(target);
        if (kind == Kind::kM2L) {
          m2l(std::span<const Cmplx>(cell.mpole.data(), p + 1), cell.center,
              tcell.center, p, pc->tree->local(target));
          ctx2.charge(pc->cfg.m2l_cost());
          pc->m2l_done.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::uint64_t pairs = 0;
          for (const auto ti : tcell.parts) {
            Particle& tp = (*pc->particles)[std::size_t(ti)];
            Cmplx field{};
            for (std::int32_t j = 0; j < cell.count; ++j) {
              if (cell.pidx[std::size_t(j)] == ti) continue;
              field += p2p_field(tp.z, cell.ppos[std::size_t(j)],
                                 cell.pq[std::size_t(j)]);
              ++pairs;
            }
            tp.force += std::conj(field);
          }
          ctx2.charge(sim::Time(pairs) * pc->cfg.cost_p2p_pair);
          pc->p2p_pairs_done.fetch_add(pairs, std::memory_order_relaxed);
        }
      });
}

}  // namespace

std::vector<rt::NodeWork> make_interaction_work(
    PhaseContext* pc, const FmmTree::Partition& part) {
  DPA_CHECK(pc->tree != nullptr && pc->particles != nullptr);
  std::vector<rt::NodeWork> work(part.targets.size());
  for (std::size_t n = 0; n < part.targets.size(); ++n) {
    const std::vector<std::int32_t>& targets = part.targets[n];
    work[n].count = targets.size();
    work[n].item = [pc, &targets](rt::Ctx& ctx, std::uint64_t i) {
      const std::int32_t t = targets[std::size_t(i)];
      ctx.charge(pc->cfg.cost_cell_start);
      for (const ListEntry& e : pc->tree->list(t)) apply_entry(ctx, pc, t, e);
    };
  }
  return work;
}

}  // namespace dpa::apps::fmm
