#include "apps/fmm/tree.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"
#include "support/rng.h"

namespace dpa::apps::fmm {

namespace {

constexpr int kKeyBits = kMaxDepth;

std::uint32_t quantize(double v, double lo, double span) {
  const auto max = double((1u << kKeyBits) - 1);
  const double q = (v - lo) / span * max;
  if (q <= 0) return 0;
  if (q >= max) return (1u << kKeyBits) - 1;
  return std::uint32_t(q);
}

std::uint64_t morton2(Cmplx z, Cmplx center, double half) {
  const double span = 2 * half;
  const std::uint32_t xi =
      quantize(z.real(), center.real() - half, span);
  const std::uint32_t yi =
      quantize(z.imag(), center.imag() - half, span);
  std::uint64_t key = 0;
  for (int b = kKeyBits - 1; b >= 0; --b) {
    const std::uint64_t quad = ((xi >> b) & 1u) | (((yi >> b) & 1u) << 1);
    key = (key << 2) | quad;
  }
  return key;
}

}  // namespace

std::vector<Particle> make_particles(std::uint32_t n, std::uint64_t seed,
                                     bool clustered) {
  DPA_CHECK(n > 0);
  Rng rng(seed);
  std::vector<Particle> parts(n);
  // Cluster centers inside the unit square.
  const int nclusters = 4;
  Cmplx ccenter[4];
  for (auto& c : ccenter)
    c = Cmplx(rng.uniform(0.15, 0.85), rng.uniform(0.15, 0.85));

  for (std::uint32_t i = 0; i < n; ++i) {
    Particle& p = parts[i];
    p.idx = std::int32_t(i);
    p.q = 1.0 / double(n);
    if (clustered && rng.chance(0.7)) {
      const Cmplx c = ccenter[rng.next_below(nclusters)];
      for (;;) {
        const Cmplx z =
            c + Cmplx(rng.normal() * 0.04, rng.normal() * 0.04);
        if (z.real() > 0.0 && z.real() < 1.0 && z.imag() > 0.0 &&
            z.imag() < 1.0) {
          p.z = z;
          break;
        }
      }
    } else {
      p.z = Cmplx(rng.uniform(0, 1), rng.uniform(0, 1));
    }
  }
  return parts;
}

FmmTree FmmTree::build(std::span<const Particle> particles,
                       std::uint32_t leaf_cap) {
  DPA_CHECK(!particles.empty());
  DPA_CHECK(leaf_cap > 0 && leaf_cap <= std::uint32_t(kLeafCap));

  double lox = particles[0].z.real(), hix = lox;
  double loy = particles[0].z.imag(), hiy = loy;
  for (const Particle& p : particles) {
    lox = std::min(lox, p.z.real());
    hix = std::max(hix, p.z.real());
    loy = std::min(loy, p.z.imag());
    hiy = std::max(hiy, p.z.imag());
  }
  const Cmplx center((lox + hix) / 2, (loy + hiy) / 2);
  double half = 0.5 * std::max(hix - lox, hiy - loy);
  half = half > 0 ? half * 1.0001 : 1.0;

  FmmTree tree;
  std::vector<std::uint64_t> keys(particles.size());
  tree.order_.resize(particles.size());
  for (std::size_t i = 0; i < particles.size(); ++i) {
    keys[i] = morton2(particles[i].z, center, half);
    tree.order_[i] = std::int32_t(i);
  }
  std::sort(tree.order_.begin(), tree.order_.end(),
            [&](std::int32_t a, std::int32_t b) {
              const auto ka = keys[std::size_t(a)];
              const auto kb = keys[std::size_t(b)];
              return ka != kb ? ka < kb : a < b;
            });
  tree.cells_.reserve(particles.size() / 2 + 16);
  tree.root_ = tree.build_range(particles, 0, particles.size(), 0, center,
                                half, -1, leaf_cap, keys);
  return tree;
}

std::int32_t FmmTree::build_range(std::span<const Particle> particles,
                                  std::size_t lo, std::size_t hi, int depth,
                                  Cmplx center, double half,
                                  std::int32_t parent, std::uint32_t leaf_cap,
                                  const std::vector<std::uint64_t>& keys) {
  DPA_CHECK(hi > lo);
  const auto idx = std::int32_t(cells_.size());
  cells_.emplace_back();
  {
    FBuildCell& cell = cells_.back();
    cell.center = center;
    cell.half = half;
    cell.level = depth;
    cell.parent = parent;
    cell.first_part = order_[lo];
  }

  if (hi - lo <= leaf_cap || depth >= kMaxDepth) {
    DPA_CHECK(hi - lo <= std::uint32_t(kLeafCap))
        << "quadtree leaf overflow at max depth";
    FBuildCell& cell = cells_[std::size_t(idx)];
    cell.leaf = true;
    cell.parts.assign(order_.begin() + std::ptrdiff_t(lo),
                      order_.begin() + std::ptrdiff_t(hi));
    return idx;
  }

  cells_[std::size_t(idx)].leaf = false;
  const int shift = 2 * (kKeyBits - 1 - depth);
  std::size_t start = lo;
  for (std::uint64_t quad = 0; quad < 4; ++quad) {
    std::size_t end = start;
    while (end < hi &&
           ((keys[std::size_t(order_[end])] >> shift) & 3u) == quad) {
      ++end;
    }
    if (end > start) {
      const double qh = half / 2;
      const Cmplx ccenter(center.real() + ((quad & 1u) ? qh : -qh),
                          center.imag() + ((quad & 2u) ? qh : -qh));
      const std::int32_t c = build_range(particles, start, end, depth + 1,
                                         ccenter, qh, idx, leaf_cap, keys);
      cells_[std::size_t(idx)].child[quad] = c;
    }
    start = end;
  }
  DPA_CHECK(start == hi) << "quadrant partition lost particles";
  return idx;
}

void FmmTree::build_lists(double ws_ratio) {
  DPA_CHECK(ws_ratio >= 3.0) << "M2L would not converge";
  lists_.assign(cells_.size(), {});
  total_m2l_ = 0;
  total_p2p_pairs_ = 0;
  interact(root_, root_, ws_ratio);
}

void FmmTree::interact(std::int32_t a, std::int32_t b, double ws_ratio) {
  const FBuildCell& ca = cells_[std::size_t(a)];
  const FBuildCell& cb = cells_[std::size_t(b)];
  const double s = std::max(ca.half, cb.half);
  const double dx = std::abs(ca.center.real() - cb.center.real());
  const double dy = std::abs(ca.center.imag() - cb.center.imag());
  if (std::max(dx, dy) >= ws_ratio * s * (1.0 - 1e-12)) {
    lists_[std::size_t(a)].push_back({b, Kind::kM2L});
    ++total_m2l_;
    return;
  }
  if (ca.leaf && cb.leaf) {
    lists_[std::size_t(a)].push_back({b, Kind::kP2P});
    // Self-pairs (i, i) are skipped by the kernels.
    total_p2p_pairs_ += ca.parts.size() * cb.parts.size() -
                        (a == b ? ca.parts.size() : 0);
    return;
  }
  // Split the larger cell (the source on ties, mirroring V-list structure).
  if (!cb.leaf && (ca.leaf || cb.half >= ca.half)) {
    for (const auto c : cb.child)
      if (c >= 0) interact(a, c, ws_ratio);
  } else {
    for (const auto c : ca.child)
      if (c >= 0) interact(c, b, ws_ratio);
  }
}

void FmmTree::upward(std::span<const Particle> particles, std::uint32_t p) {
  DPA_CHECK(p + 1 <= kMaxTerms + 1);
  mpole_.assign(cells_.size(), std::vector<Cmplx>(p + 1, Cmplx{}));
  local_.assign(cells_.size(), std::vector<Cmplx>(p + 1, Cmplx{}));

  // Children have larger indices (preorder creation): reverse sweep.
  std::vector<Particle> scratch;
  for (std::size_t i = cells_.size(); i-- > 0;) {
    const FBuildCell& cell = cells_[i];
    if (cell.leaf) {
      scratch.clear();
      for (const auto pi : cell.parts)
        scratch.push_back(particles[std::size_t(pi)]);
      p2m(scratch, cell.center, p, mpole_[i]);
    } else {
      for (const auto c : cell.child) {
        if (c < 0) continue;
        m2m(mpole_[std::size_t(c)], cells_[std::size_t(c)].center,
            cell.center, p, mpole_[i]);
      }
    }
  }
}

void FmmTree::downward_and_evaluate(std::span<Particle> particles,
                                    std::uint32_t p) {
  // Parents precede children (preorder): forward sweep.
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const FBuildCell& cell = cells_[i];
    if (cell.leaf) {
      for (const auto pi : cell.parts) {
        Particle& part = particles[std::size_t(pi)];
        part.force += std::conj(l2p_field(local_[i], cell.center, p, part.z));
      }
    } else {
      for (const auto c : cell.child) {
        if (c < 0) continue;
        l2l(local_[i], cell.center, cells_[std::size_t(c)].center, p,
            local_[std::size_t(c)]);
      }
    }
  }
}

void FmmTree::interact_sequential(std::span<Particle> particles,
                                  std::uint32_t p) {
  for (std::size_t t = 0; t < cells_.size(); ++t) {
    const FBuildCell& target = cells_[t];
    for (const ListEntry& e : lists_[t]) {
      const FBuildCell& src = cells_[std::size_t(e.src)];
      if (e.kind == Kind::kM2L) {
        m2l(mpole_[std::size_t(e.src)], src.center, target.center, p,
            local_[t]);
      } else {
        for (const auto ti : target.parts) {
          Particle& tp = particles[std::size_t(ti)];
          Cmplx field{};
          for (const auto si : src.parts) {
            if (si == ti) continue;
            const Particle& sp = particles[std::size_t(si)];
            field += p2p_field(tp.z, sp.z, sp.q);
          }
          tp.force += std::conj(field);
        }
      }
    }
  }
}

double FmmTree::entry_cost(std::int32_t target, const ListEntry& e,
                           const FmmConfig& cfg) const {
  const FBuildCell& t = cells_[std::size_t(target)];
  const FBuildCell& s = cells_[std::size_t(e.src)];
  if (e.kind == Kind::kM2L) return double(cfg.m2l_cost());
  return double(t.parts.size() * s.parts.size()) * double(cfg.cost_p2p_pair);
}

std::uint64_t FmmTree::total_entries() const {
  std::uint64_t n = 0;
  for (const auto& l : lists_) n += l.size();
  return n;
}

FmmTree::Partition FmmTree::partition(std::uint32_t nodes,
                                      const FmmConfig& cfg) const {
  DPA_CHECK(nodes > 0);
  DPA_CHECK(!lists_.empty()) << "build_lists before partition";

  // Work per cell = its own list work plus per-cell start cost.
  std::vector<double> work(cells_.size(), 0.0);
  double total = 0;
  for (std::size_t t = 0; t < cells_.size(); ++t) {
    double w = double(cfg.cost_cell_start);
    for (const ListEntry& e : lists_[t])
      w += double(cfg.cost_list_visit) + entry_cost(std::int32_t(t), e, cfg);
    work[t] = w;
    total += w;
  }

  Partition part;
  part.cell_owner.resize(cells_.size());
  part.targets.resize(nodes);
  // Preorder index order is a space-filling traversal: contiguous chunks
  // are spatially compact (the costzone property).
  double prefix = 0;
  for (std::size_t t = 0; t < cells_.size(); ++t) {
    const double mid = prefix + work[t] / 2;
    auto zone = sim::NodeId(mid / total * double(nodes));
    if (zone >= nodes) zone = nodes - 1;
    part.cell_owner[t] = zone;
    if (!lists_[t].empty()) part.targets[zone].push_back(std::int32_t(t));
    prefix += work[t];
  }
  return part;
}

std::vector<gas::GPtr<FCell>> FmmTree::materialize(
    std::span<const Particle> particles, std::uint32_t p,
    std::span<const sim::NodeId> owner, gas::GlobalHeap& heap) const {
  DPA_CHECK(owner.size() == cells_.size());
  DPA_CHECK(!mpole_.empty()) << "upward pass before materialize";
  std::vector<gas::GPtr<FCell>> out(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const FBuildCell& src = cells_[i];
    gas::GPtr<FCell> ptr = heap.make<FCell>(owner[i]);
    FCell* cell = gas::GlobalHeap::mutate(ptr);
    cell->center = src.center;
    cell->half = src.half;
    cell->leaf = src.leaf;
    for (std::uint32_t k = 0; k <= p; ++k) cell->mpole[k] = mpole_[i][k];
    if (src.leaf) {
      cell->count = std::int32_t(src.parts.size());
      for (std::size_t j = 0; j < src.parts.size(); ++j) {
        const Particle& part = particles[std::size_t(src.parts[j])];
        cell->ppos[j] = part.z;
        cell->pq[j] = part.q;
        cell->pidx[j] = part.idx;
      }
    }
    out[i] = ptr;
  }
  return out;
}

std::vector<Cmplx> direct_forces(std::span<const Particle> particles) {
  std::vector<Cmplx> forces(particles.size());
  for (std::size_t i = 0; i < particles.size(); ++i) {
    Cmplx field{};
    for (std::size_t j = 0; j < particles.size(); ++j) {
      if (i == j) continue;
      field += p2p_field(particles[i].z, particles[j].z, particles[j].q);
    }
    forces[i] = std::conj(field);
  }
  return forces;
}

}  // namespace dpa::apps::fmm
