// The FMM interaction phase (M2L + P2P over the interaction lists) in the
// paper's non-blocking-thread form: each node's conc loop runs over its
// owned target cells; every list entry becomes a thread labeled with the
// source cell's global pointer. Local expansions and particle forces are
// accumulated owner-side.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "apps/fmm/tree.h"
#include "runtime/engine.h"

namespace dpa::apps::fmm {

// Phase-lifetime shared state for the interaction threads.
struct PhaseContext {
  FmmTree* tree = nullptr;
  std::vector<Particle>* particles = nullptr;
  std::vector<gas::GPtr<FCell>> cells;  // global cell per host index
  FmmConfig cfg;

  // Marshalled size of a cell fetch: header + truncated expansion +
  // (leaves) inlined particles.
  std::uint32_t cell_bytes(std::int32_t src) const;

  // Host-side accounting, shared by every node's threads — atomic (relaxed)
  // because the native backend runs node threads concurrently.
  std::atomic<std::uint64_t> m2l_done{0};
  std::atomic<std::uint64_t> p2p_pairs_done{0};
};

std::vector<rt::NodeWork> make_interaction_work(
    PhaseContext* pc, const FmmTree::Partition& part);

}  // namespace dpa::apps::fmm
