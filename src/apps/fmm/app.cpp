#include "apps/fmm/app.h"

#include <utility>

#include "support/assert.h"

namespace dpa::apps::fmm {

double FmmRun::total_parallel_seconds() const {
  double total = 0;
  for (const auto& s : steps) total += s.phase.seconds();
  return total;
}

double FmmRun::total_model_seq_seconds() const {
  double total = 0;
  for (const auto& s : steps) total += s.model_seq_seconds;
  return total;
}

bool FmmRun::all_completed() const {
  for (const auto& s : steps)
    if (!s.phase.completed) return false;
  return !steps.empty();
}

FmmApp::FmmApp(FmmConfig cfg)
    : cfg_(cfg), init_(make_particles(cfg.nparticles, cfg.seed)) {
  DPA_CHECK(cfg_.terms >= 1 && cfg_.terms <= kMaxTerms);
}

double FmmApp::model_seq_seconds(const FmmTree& tree) const {
  double ns = 0;
  for (std::size_t t = 0; t < tree.num_cells(); ++t) {
    const auto target = std::int32_t(t);
    if (tree.list(target).empty()) continue;
    ns += double(cfg_.cost_cell_start);
    for (const ListEntry& e : tree.list(target))
      ns += double(cfg_.cost_list_visit) + tree.entry_cost(target, e, cfg_);
  }
  return ns / 1e9;
}

namespace {

void integrate(std::vector<Particle>& particles, double dt) {
  for (Particle& p : particles) {
    p.vel += p.force * dt;
    p.z += p.vel * dt;
  }
}

}  // namespace

FmmRun FmmApp::run(std::uint32_t nodes, const sim::NetParams& net,
                   const rt::RuntimeConfig& rcfg, obs::Session* obs,
                   exec::BackendKind backend) const {
  std::vector<Particle> particles = init_;
  rt::Cluster cluster(nodes, backend, net);
  cluster.attach_obs(obs);
  rt::PhaseRunner runner(cluster, rcfg);

  FmmRun result;
  for (std::uint32_t step = 0; step < cfg_.nsteps; ++step) {
    // --- untimed setup ---
    FmmTree tree = FmmTree::build(particles);
    tree.build_lists(cfg_.ws_ratio);
    tree.upward(particles, cfg_.terms);
    const FmmTree::Partition part = tree.partition(nodes, cfg_);

    for (Particle& p : particles) p.force = Cmplx{};

    PhaseContext pc;
    pc.tree = &tree;
    pc.particles = &particles;
    pc.cfg = cfg_;
    pc.cells = tree.materialize(particles, cfg_.terms, part.cell_owner,
                                cluster.heap);

    // --- the timed interaction phase ---
    // Phase-visible host memory for the multi-process backend: M2L writes
    // the target cells' local expansions and P2P writes the target
    // particles' forces (both target-partitioned, so byte-merged), and the
    // shared work counters are delta-summed.
    std::vector<std::unique_ptr<exec::ScopedPhaseSpan>> spans;
    spans.push_back(std::make_unique<exec::ScopedPhaseSpan>(
        cluster.exec(),
        exec::PhaseSpan{particles.data(),
                        particles.size() * sizeof(Particle),
                        exec::SpanMerge::kBytes}));
    for (std::size_t c = 0; c < tree.num_cells(); ++c) {
      const std::span<Cmplx> local = tree.local(std::int32_t(c));
      if (local.empty()) continue;
      spans.push_back(std::make_unique<exec::ScopedPhaseSpan>(
          cluster.exec(),
          exec::PhaseSpan{local.data(), local.size() * sizeof(Cmplx),
                          exec::SpanMerge::kBytes}));
    }
    spans.push_back(std::make_unique<exec::ScopedPhaseSpan>(
        cluster.exec(),
        exec::PhaseSpan{&pc.m2l_done, sizeof(pc.m2l_done),
                        exec::SpanMerge::kSumU64}));
    spans.push_back(std::make_unique<exec::ScopedPhaseSpan>(
        cluster.exec(),
        exec::PhaseSpan{&pc.p2p_pairs_done, sizeof(pc.p2p_pairs_done),
                        exec::SpanMerge::kSumU64}));

    FmmStep st;
    st.phase = runner.run(make_interaction_work(&pc, part), "fmm.interact");
    DPA_CHECK(st.phase.completed)
        << "FMM interaction phase deadlocked:\n" << st.phase.diagnostics;

    // --- untimed completion ---
    tree.downward_and_evaluate(particles, cfg_.terms);

    st.m2l = pc.m2l_done.load(std::memory_order_relaxed);
    st.p2p_pairs = pc.p2p_pairs_done.load(std::memory_order_relaxed);
    st.list_entries = tree.total_entries();
    st.model_seq_seconds = model_seq_seconds(tree);
    result.steps.push_back(std::move(st));

    integrate(particles, cfg_.dt);
  }
  result.final_particles = std::move(particles);
  return result;
}

FmmApp::SeqResult FmmApp::run_sequential() const {
  std::vector<Particle> particles = init_;
  FmmTree tree = FmmTree::build(particles);
  tree.build_lists(cfg_.ws_ratio);
  tree.upward(particles, cfg_.terms);
  for (Particle& p : particles) p.force = Cmplx{};
  tree.interact_sequential(particles, cfg_.terms);
  tree.downward_and_evaluate(particles, cfg_.terms);

  SeqResult result;
  result.forces.reserve(particles.size());
  for (const Particle& p : particles) result.forces.push_back(p.force);
  result.seconds = model_seq_seconds(tree);
  result.m2l = tree.total_m2l();
  result.p2p_pairs = tree.total_p2p_pairs();
  return result;
}

}  // namespace dpa::apps::fmm
