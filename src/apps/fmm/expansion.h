// 2D multipole/local expansion kernels (Greengard-Rokhlin).
//
// Multipole about z_M:  phi(z) = a_0 log(z - z_M) + sum_{k>=1} a_k (z-z_M)^-k
// Local about z_L:      psi(z) = sum_{l>=0} b_l (z - z_L)^l
//
// All routines take the expansion order p (number of terms beyond a_0) and
// operate on coefficient spans of length p+1.
#pragma once

#include <complex>
#include <span>

#include "apps/fmm/types.h"

namespace dpa::apps::fmm {

// a (length p+1) += multipole expansion of `particles` about z_m.
void p2m(std::span<const Particle> particles, Cmplx z_m, std::uint32_t p,
         std::span<Cmplx> a);

// Translates a child multipole about z_child into the parent expansion
// about z_parent: a_parent += T(a_child).
void m2m(std::span<const Cmplx> a_child, Cmplx z_child, Cmplx z_parent,
         std::uint32_t p, std::span<Cmplx> a_parent);

// Converts a multipole about z_m into a local expansion about z_l:
// b += T(a). Requires |z_m - z_l| larger than the source radius.
void m2l(std::span<const Cmplx> a, Cmplx z_m, Cmplx z_l, std::uint32_t p,
         std::span<Cmplx> b);

// Shifts a local expansion about z_from to one about z_to: b_to += T(b).
void l2l(std::span<const Cmplx> b_from, Cmplx z_from, Cmplx z_to,
         std::uint32_t p, std::span<Cmplx> b_to);

// Field (d phi / dz) of a multipole expansion at z.
Cmplx m2p_field(std::span<const Cmplx> a, Cmplx z_m, std::uint32_t p, Cmplx z);

// Field (d psi / dz) of a local expansion at z.
Cmplx l2p_field(std::span<const Cmplx> b, Cmplx z_l, std::uint32_t p, Cmplx z);

// Direct field at z from one source particle at z_j with charge q_j.
inline Cmplx p2p_field(Cmplx z, Cmplx z_j, double q_j) {
  return q_j / (z - z_j);
}

}  // namespace dpa::apps::fmm
