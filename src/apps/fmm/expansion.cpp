#include "apps/fmm/expansion.h"

#include <cmath>

#include "support/assert.h"

namespace dpa::apps::fmm {

namespace {

// Binomial coefficients C(n, k) for n up to 2*kMaxTerms + 1.
constexpr std::size_t kBinN = 2 * kMaxTerms + 2;

const double* binomial_row(std::size_t n) {
  static const auto table = [] {
    auto t = new double[kBinN][kBinN]();
    for (std::size_t i = 0; i < kBinN; ++i) {
      t[i][0] = 1.0;
      for (std::size_t j = 1; j <= i; ++j)
        t[i][j] = t[i - 1][j - 1] + (j <= i - 1 ? t[i - 1][j] : 0.0);
    }
    return t;
  }();
  DPA_DCHECK(n < kBinN);
  return table[n];
}

double binom(std::size_t n, std::size_t k) { return binomial_row(n)[k]; }

}  // namespace

void p2m(std::span<const Particle> particles, Cmplx z_m, std::uint32_t p,
         std::span<Cmplx> a) {
  DPA_DCHECK(a.size() >= p + 1);
  for (const Particle& part : particles) {
    a[0] += part.q;
    const Cmplx d = part.z - z_m;
    Cmplx dk = d;
    for (std::uint32_t k = 1; k <= p; ++k) {
      a[k] -= part.q * dk / double(k);
      dk *= d;
    }
  }
}

void m2m(std::span<const Cmplx> a_child, Cmplx z_child, Cmplx z_parent,
         std::uint32_t p, std::span<Cmplx> a_parent) {
  const Cmplx d = z_child - z_parent;
  // Powers of d up to p.
  Cmplx dpow[kMaxTerms + 1];
  dpow[0] = 1.0;
  for (std::uint32_t i = 1; i <= p; ++i) dpow[i] = dpow[i - 1] * d;

  a_parent[0] += a_child[0];
  for (std::uint32_t k = 1; k <= p; ++k) {
    Cmplx sum = -a_child[0] * dpow[k] / double(k);
    for (std::uint32_t j = 1; j <= k; ++j)
      sum += a_child[j] * binom(k - 1, j - 1) * dpow[k - j];
    a_parent[k] += sum;
  }
}

void m2l(std::span<const Cmplx> a, Cmplx z_m, Cmplx z_l, std::uint32_t p,
         std::span<Cmplx> b) {
  const Cmplx d = z_m - z_l;
  const Cmplx inv_d = 1.0 / d;
  // (-1)^k / d^k terms.
  Cmplx neg_inv_pow[kMaxTerms + 1];
  neg_inv_pow[0] = 1.0;
  for (std::uint32_t i = 1; i <= p; ++i)
    neg_inv_pow[i] = -neg_inv_pow[i - 1] * inv_d;

  // b_0.
  Cmplx b0 = a[0] * std::log(-d);
  for (std::uint32_t k = 1; k <= p; ++k) b0 += a[k] * neg_inv_pow[k];
  b[0] += b0;

  // b_l for l >= 1:  -a0/(l d^l) + sum_k a_k (-1)^k C(l+k-1, k-1) d^-(k+l).
  Cmplx inv_dl = 1.0;  // 1/d^l accumulator
  for (std::uint32_t l = 1; l <= p; ++l) {
    inv_dl *= inv_d;
    Cmplx sum = -a[0] * inv_dl / double(l);
    Cmplx tail = 0.0;
    for (std::uint32_t k = 1; k <= p; ++k)
      tail += a[k] * binom(l + k - 1, k - 1) * neg_inv_pow[k];
    sum += tail * inv_dl;
    b[l] += sum;
  }
}

void l2l(std::span<const Cmplx> b_from, Cmplx z_from, Cmplx z_to,
         std::uint32_t p, std::span<Cmplx> b_to) {
  const Cmplx d = z_to - z_from;
  Cmplx dpow[kMaxTerms + 1];
  dpow[0] = 1.0;
  for (std::uint32_t i = 1; i <= p; ++i) dpow[i] = dpow[i - 1] * d;

  for (std::uint32_t l = 0; l <= p; ++l) {
    Cmplx sum = 0.0;
    for (std::uint32_t m = l; m <= p; ++m)
      sum += b_from[m] * binom(m, l) * dpow[m - l];
    b_to[l] += sum;
  }
}

Cmplx m2p_field(std::span<const Cmplx> a, Cmplx z_m, std::uint32_t p,
                Cmplx z) {
  const Cmplx u = z - z_m;
  const Cmplx inv_u = 1.0 / u;
  Cmplx field = a[0] * inv_u;
  Cmplx inv_uk1 = inv_u * inv_u;  // u^-(k+1)
  for (std::uint32_t k = 1; k <= p; ++k) {
    field -= double(k) * a[k] * inv_uk1;
    inv_uk1 *= inv_u;
  }
  return field;
}

Cmplx l2p_field(std::span<const Cmplx> b, Cmplx z_l, std::uint32_t p,
                Cmplx z) {
  const Cmplx t = z - z_l;
  Cmplx field = 0.0;
  Cmplx tpow = 1.0;  // t^(l-1)
  for (std::uint32_t l = 1; l <= p; ++l) {
    field += double(l) * b[l] * tpow;
    tpow *= t;
  }
  return field;
}

}  // namespace dpa::apps::fmm
