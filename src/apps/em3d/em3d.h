// em3d: electromagnetic wave propagation on an irregular bipartite graph
// (from the Olden benchmark suite, the standard PBDS workload of the era —
// and the caching comparator's home turf [Carlisle & Rogers]).
//
// Electric-field nodes depend on magnetic-field nodes and vice versa; one
// iteration updates E from H, the next H from E:
//     e.value -= sum_j coeff_j * h_j.value
// Dependencies cross processor boundaries with configurable probability;
// every remote read of a tiny 8-byte node is exactly the fine-grained
// communication DPA's aggregation amortizes.
#pragma once

#include <cstdint>
#include <vector>

#include "gas/heap.h"
#include "runtime/phase.h"

namespace dpa::apps::em3d {

struct GNode {
  double value = 0;
};

struct Em3dConfig {
  std::uint32_t e_per_node = 512;   // E-field nodes per processor
  std::uint32_t h_per_node = 512;   // H-field nodes per processor
  std::uint32_t degree = 8;         // dependencies per node
  double remote_prob = 0.2;         // P(dependency crosses processors)
  std::uint32_t iters = 1;          // E/H update rounds
  std::uint64_t seed = 77;

  sim::Time cost_per_dep = 120;     // one multiply-add
  sim::Time cost_node_start = 300;
};

struct Em3dStep {
  rt::PhaseResult phase;
};

struct Em3dRun {
  std::vector<Em3dStep> steps;  // 2 per iter: E update, then H update
  std::vector<double> e_values;
  std::vector<double> h_values;

  double total_parallel_seconds() const;
  bool all_completed() const;
};

class Em3dApp {
 public:
  // The graph is built per (nodes, seed): the same config on the same node
  // count is reproducible.
  Em3dApp(Em3dConfig cfg, std::uint32_t nodes);

  // When `obs` is non-null the cluster reports into it: phases trace as
  // "em3d.E" / "em3d.H" and their totals land in the metrics registry.
  // `backend` picks the execution substrate (simulated by default).
  Em3dRun run(const sim::NetParams& net, const rt::RuntimeConfig& rcfg,
              obs::Session* obs = nullptr,
              exec::BackendKind backend = exec::BackendKind::kSim) const;

  // Host-only reference over the same graph.
  struct SeqResult {
    std::vector<double> e_values;
    std::vector<double> h_values;
    double model_seconds = 0;  // modeled time of all phases
  };
  SeqResult run_sequential() const;

  std::uint32_t nodes() const { return nodes_; }
  const Em3dConfig& config() const { return cfg_; }
  std::uint64_t total_edges() const;
  double remote_edge_fraction() const;

 private:
  struct Side {  // one half of the bipartite graph, grouped by owner
    // Flattened per owner: index = owner * per_node + slot.
    std::vector<double> init_values;
    std::vector<std::vector<std::uint32_t>> deps;   // into the other side
    std::vector<std::vector<double>> coeffs;
    std::vector<sim::NodeId> owner;
  };

  void relax_host(const Side& from, std::vector<double>& to_values,
                  const std::vector<double>& from_values) const;

  Em3dConfig cfg_;
  std::uint32_t nodes_;
  Side e_;
  Side h_;
};

}  // namespace dpa::apps::em3d
