#include "apps/em3d/em3d.h"

#include <utility>

#include "support/assert.h"
#include "support/rng.h"

namespace dpa::apps::em3d {

double Em3dRun::total_parallel_seconds() const {
  double total = 0;
  for (const auto& s : steps) total += s.phase.seconds();
  return total;
}

bool Em3dRun::all_completed() const {
  for (const auto& s : steps)
    if (!s.phase.completed) return false;
  return !steps.empty();
}

Em3dApp::Em3dApp(Em3dConfig cfg, std::uint32_t nodes)
    : cfg_(cfg), nodes_(nodes) {
  DPA_CHECK(nodes_ > 0);
  DPA_CHECK(cfg_.degree > 0);
  Rng rng(cfg_.seed);

  auto build_side = [&](Side& side, std::uint32_t per_node,
                        std::uint32_t other_per_node) {
    const std::size_t total = std::size_t(per_node) * nodes_;
    side.init_values.resize(total);
    side.deps.resize(total);
    side.coeffs.resize(total);
    side.owner.resize(total);
    for (std::uint32_t o = 0; o < nodes_; ++o) {
      for (std::uint32_t s = 0; s < per_node; ++s) {
        const std::size_t i = std::size_t(o) * per_node + s;
        side.owner[i] = o;
        side.init_values[i] = rng.uniform(-1, 1);
        side.deps[i].reserve(cfg_.degree);
        side.coeffs[i].reserve(cfg_.degree);
        for (std::uint32_t d = 0; d < cfg_.degree; ++d) {
          sim::NodeId dep_owner = o;
          if (nodes_ > 1 && rng.chance(cfg_.remote_prob)) {
            dep_owner = sim::NodeId(rng.next_below(nodes_ - 1));
            if (dep_owner >= o) ++dep_owner;
          }
          const std::uint32_t slot =
              std::uint32_t(rng.next_below(other_per_node));
          side.deps[i].push_back(dep_owner * other_per_node + slot);
          side.coeffs[i].push_back(rng.uniform(-0.1, 0.1));
        }
      }
    }
  };
  build_side(e_, cfg_.e_per_node, cfg_.h_per_node);
  build_side(h_, cfg_.h_per_node, cfg_.e_per_node);
}

std::uint64_t Em3dApp::total_edges() const {
  return std::uint64_t(cfg_.degree) *
         (e_.deps.size() + h_.deps.size());
}

double Em3dApp::remote_edge_fraction() const {
  std::uint64_t remote = 0, total = 0;
  auto count = [&](const Side& side, const Side& other,
                   std::uint32_t other_per_node) {
    (void)other;
    for (std::size_t i = 0; i < side.deps.size(); ++i) {
      for (const auto dep : side.deps[i]) {
        ++total;
        remote += (dep / other_per_node) != side.owner[i];
      }
    }
  };
  count(e_, h_, cfg_.h_per_node);
  count(h_, e_, cfg_.e_per_node);
  return total ? double(remote) / double(total) : 0.0;
}

Em3dRun Em3dApp::run(const sim::NetParams& net, const rt::RuntimeConfig& rcfg,
                     obs::Session* obs, exec::BackendKind backend) const {
  rt::Cluster cluster(nodes_, backend, net);
  cluster.attach_obs(obs);
  rt::PhaseRunner runner(cluster, rcfg);

  auto alloc_side = [&](const Side& side) {
    std::vector<gas::GPtr<GNode>> ptrs;
    ptrs.reserve(side.init_values.size());
    for (std::size_t i = 0; i < side.init_values.size(); ++i)
      ptrs.push_back(
          cluster.heap.make<GNode>(side.owner[i], GNode{side.init_values[i]}));
    return ptrs;
  };
  const auto e_ptrs = alloc_side(e_);
  const auto h_ptrs = alloc_side(h_);

  // One relaxation phase: each node updates its owned `to` nodes from the
  // `from` side's current values.
  auto relax_phase = [&](const Side& to_side,
                         const std::vector<gas::GPtr<GNode>>& to_ptrs,
                         const std::vector<gas::GPtr<GNode>>& from_ptrs,
                         std::uint32_t per_node, std::string_view name) {
    std::vector<rt::NodeWork> work(nodes_);
    for (std::uint32_t n = 0; n < nodes_; ++n) {
      work[n].count = per_node;
      work[n].item = [&, n](rt::Ctx& ctx, std::uint64_t s) {
        const std::size_t i = std::size_t(n) * per_node + s;
        ctx.charge(cfg_.cost_node_start);
        GNode* mine = gas::GlobalHeap::mutate(to_ptrs[i]);
        const auto& deps = to_side.deps[i];
        const auto& coeffs = to_side.coeffs[i];
        for (std::size_t d = 0; d < deps.size(); ++d) {
          const double coeff = coeffs[d];
          ctx.require(from_ptrs[std::size_t(deps[d])],
                      [mine, coeff, this](rt::Ctx& ctx2, const GNode& dep) {
                        ctx2.charge(cfg_.cost_per_dep);
                        mine->value -= coeff * dep.value;
                      });
        }
      };
    }
    return runner.run(std::move(work), name);
  };

  Em3dRun result;
  for (std::uint32_t it = 0; it < cfg_.iters; ++it) {
    Em3dStep e_step;
    e_step.phase = relax_phase(e_, e_ptrs, h_ptrs, cfg_.e_per_node, "em3d.E");
    DPA_CHECK(e_step.phase.completed) << e_step.phase.diagnostics;
    result.steps.push_back(std::move(e_step));

    Em3dStep h_step;
    h_step.phase = relax_phase(h_, h_ptrs, e_ptrs, cfg_.h_per_node, "em3d.H");
    DPA_CHECK(h_step.phase.completed) << h_step.phase.diagnostics;
    result.steps.push_back(std::move(h_step));
  }

  result.e_values.reserve(e_ptrs.size());
  for (const auto& p : e_ptrs) result.e_values.push_back(p.addr->value);
  result.h_values.reserve(h_ptrs.size());
  for (const auto& p : h_ptrs) result.h_values.push_back(p.addr->value);
  return result;
}

Em3dApp::SeqResult Em3dApp::run_sequential() const {
  SeqResult result;
  result.e_values = e_.init_values;
  result.h_values = h_.init_values;

  auto relax = [&](const Side& to_side, std::vector<double>& to,
                   const std::vector<double>& from) {
    for (std::size_t i = 0; i < to.size(); ++i) {
      double v = to[i];
      for (std::size_t d = 0; d < to_side.deps[i].size(); ++d)
        v -= to_side.coeffs[i][d] * from[std::size_t(to_side.deps[i][d])];
      to[i] = v;
    }
  };

  for (std::uint32_t it = 0; it < cfg_.iters; ++it) {
    relax(e_, result.e_values, result.h_values);
    relax(h_, result.h_values, result.e_values);
  }
  auto phase_ns = [&](const Side& side) {
    return double(side.deps.size()) *
               (double(cfg_.cost_node_start) +
                double(cfg_.degree) * double(cfg_.cost_per_dep));
  };
  result.model_seconds =
      double(cfg_.iters) * (phase_ns(e_) + phase_ns(h_)) / 1e9;
  return result;
}

}  // namespace dpa::apps::em3d
