// Global heap: allocation of globally addressable objects with explicit
// home nodes, plus per-node allocation accounting.
//
// Apps build their pointer-based data structures (octrees, quadtrees,
// bipartite graphs) out of this heap during the unsimulated setup phase; the
// simulated force/relaxation phases then read them through the runtime
// engines.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "gas/global_ptr.h"
#include "support/assert.h"

namespace dpa::gas {

struct HeapNodeStats {
  std::uint64_t objects = 0;
  std::uint64_t bytes = 0;
};

class GlobalHeap {
 public:
  explicit GlobalHeap(std::uint32_t num_nodes) : stats_(num_nodes) {}

  GlobalHeap(const GlobalHeap&) = delete;
  GlobalHeap& operator=(const GlobalHeap&) = delete;

  // Allocates a T homed on `home`. The object lives until the heap dies.
  template <class T, class... Args>
  GPtr<T> make(NodeId home, Args&&... args) {
    DPA_CHECK(home < stats_.size()) << "bad home node " << home;
    auto owner = std::make_unique<Holder<T>>(std::forward<Args>(args)...);
    T* raw = &owner->value;
    objects_.push_back(std::move(owner));
    spans_.push_back(Span{raw, sizeof(T)});
    ++stats_[home].objects;
    stats_[home].bytes += sizeof(T);
    return GPtr<T>{raw, home};
  }

  // Mutable access for setup phases (tree build, integration). The timed
  // phases read remote objects only through the runtime engines.
  template <class T>
  static T* mutate(GPtr<T> p) {
    return const_cast<T*>(p.addr);
  }

  // Re-homes an object (costzone repartitioning between steps). The caller
  // must know the original home to keep accounting exact.
  template <class T>
  GPtr<T> rehome(GPtr<T> p, NodeId new_home) {
    DPA_CHECK(new_home < stats_.size());
    DPA_CHECK(p.home < stats_.size());
    stats_[p.home].bytes -= sizeof(T);
    --stats_[p.home].objects;
    stats_[new_home].bytes += sizeof(T);
    ++stats_[new_home].objects;
    return GPtr<T>{p.addr, new_home};
  }

  const HeapNodeStats& node_stats(NodeId id) const {
    DPA_CHECK(id < stats_.size());
    return stats_[id];
  }
  std::uint32_t num_nodes() const { return std::uint32_t(stats_.size()); }
  std::uint64_t total_objects() const { return objects_.size(); }

  // One {address, size} record per live object, in allocation order — the
  // multi-process backend's span source (every phase-visible write to a
  // heap object is covered by its record). Addresses are stable: objects
  // live until the heap dies and holders never move.
  struct Span {
    const void* addr = nullptr;
    std::uint64_t bytes = 0;
  };
  const std::vector<Span>& object_spans() const { return spans_; }

 private:
  struct HolderBase {
    virtual ~HolderBase() = default;
  };
  template <class T>
  struct Holder : HolderBase {
    template <class... Args>
    explicit Holder(Args&&... args) : value(std::forward<Args>(args)...) {}
    T value;
  };

  std::vector<std::unique_ptr<HolderBase>> objects_;
  std::vector<Span> spans_;
  std::vector<HeapNodeStats> stats_;
};

}  // namespace dpa::gas
