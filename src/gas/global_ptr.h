// Global pointers: the PBDS edges the paper's runtime aligns on.
//
// A global pointer names an object plus the node that owns (homes) it. In
// the simulation all nodes share the host address space, so the pointer
// carries the real address; the *discipline* — which node may touch the
// object for free, and what a remote read costs — is enforced by the runtime
// engines, and optionally audited (see Runtime access auditing in
// runtime/engine.h).
#pragma once

#include <cstdint>
#include <functional>

#include "sim/network.h"

namespace dpa::gas {

using sim::NodeId;

// Type-erased global reference: what the runtime's M and D maps key on.
struct GlobalRef {
  const void* addr = nullptr;
  NodeId home = 0;
  std::uint32_t bytes = 0;

  bool valid() const { return addr != nullptr; }
  friend bool operator==(const GlobalRef& a, const GlobalRef& b) {
    return a.addr == b.addr;
  }
};

// Typed global pointer.
template <class T>
struct GPtr {
  const T* addr = nullptr;
  NodeId home = 0;

  GlobalRef ref() const { return GlobalRef{addr, home, sizeof(T)}; }
  bool local_to(NodeId node) const { return home == node; }
  explicit operator bool() const { return addr != nullptr; }

  friend bool operator==(const GPtr& a, const GPtr& b) {
    return a.addr == b.addr;
  }
};

struct GlobalRefHash {
  std::size_t operator()(const GlobalRef& r) const {
    return std::hash<const void*>()(r.addr);
  }
};

}  // namespace dpa::gas
