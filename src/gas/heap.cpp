// GlobalHeap is header-only today; this TU pins the library and provides a
// home for future out-of-line pieces (e.g. arena segments).
#include "gas/heap.h"
