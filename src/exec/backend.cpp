#include "exec/backend.h"

#include "exec/native_backend.h"
#include "exec/proc_backend.h"
#include "exec/sim_backend.h"
#include "support/assert.h"

namespace dpa::exec {

std::unique_ptr<Backend> make_backend(BackendKind kind, std::uint32_t nodes,
                                      const sim::NetParams& params) {
  switch (kind) {
    case BackendKind::kSim:
      return std::make_unique<SimBackend>(nodes, params);
    case BackendKind::kNative:
      DPA_CHECK(!params.faults.any())
          << "fault injection needs the modeled network: use the sim backend";
      return std::make_unique<NativeBackend>(nodes);
    case BackendKind::kProc:
      DPA_CHECK(!params.faults.any())
          << "fault injection needs the modeled network: use the sim backend";
      return std::make_unique<ProcBackend>(nodes);
  }
  DPA_PANIC("unknown backend kind");
}

}  // namespace dpa::exec
