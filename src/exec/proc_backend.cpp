#include "exec/proc_backend.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "exec/native_backend.h"
#include "support/assert.h"

namespace dpa::exec {

namespace {

// Control-channel message tags (all < transport::kAckTag). Every frame on
// the control socketpair carries kFrameFlagControl (PipeChannel
// set_control), which is the wire-visible marker the issue's termination
// protocol requires.
constexpr std::uint16_t kTagProbe = 1;     // coordinator -> worker: [round]
constexpr std::uint16_t kTagReport = 2;    // worker -> coordinator
constexpr std::uint16_t kTagDone = 3;      // coordinator -> worker
constexpr std::uint16_t kTagAbort = 4;     // coordinator -> worker
constexpr std::uint16_t kTagSpan = 5;      // worker -> coordinator: diffs
constexpr std::uint16_t kTagEpilogue = 6;  // worker -> coordinator: blob
constexpr std::uint16_t kTagStats = 7;     // worker -> coordinator
constexpr std::uint16_t kTagBye = 8;       // worker -> coordinator: all sent
constexpr std::uint16_t kTagPeerDead = 9;  // worker -> coordinator: info

// On the control channel, node 0 is the coordinator and node 1 the worker.
constexpr NodeId kCtlCoord = 0;
constexpr NodeId kCtlWorker = 1;

// Span-diff record kinds.
constexpr std::uint8_t kRunBytes = 0;  // overwrite: raw byte run
constexpr std::uint8_t kRunSum = 1;    // add: u64 delta lanes

// Flush accumulated span-diff records to the wire at this payload size.
constexpr std::size_t kSpanChunkBytes = 512 * 1024;

// Retransmission policy for the data links. The socketpairs are lossless,
// so retries only ever fire when a peer is slow to ack (mid-sub-phase);
// generous settings keep the protocol quiet and let pipe-level
// EPIPE/EOF detection — not retry exhaustion — be the death signal.
transport::RetryPolicy data_retry_policy() {
  transport::RetryPolicy p;
  p.timeout_ns = 20 * kMillisecond;
  p.backoff = 2.0;
  p.max_timeout_ns = 200 * kMillisecond;
  p.max_retries = 500;
  return p;
}

std::int64_t mono_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Native-endian scratch encoders for control payloads (both ends of the
// wire are fork-related processes on one machine).
struct Wr {
  std::vector<std::uint8_t> b;
  void u8(std::uint8_t v) { b.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void raw(const void* p, std::size_t n) {
    const auto* c = static_cast<const std::uint8_t*>(p);
    b.insert(b.end(), c, c + n);
  }
};

struct Rd {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t off = 0;
  explicit Rd(const std::vector<std::uint8_t>& bytes)
      : p(bytes.data()), n(bytes.size()) {}
  std::size_t remaining() const { return n - off; }
  std::uint8_t u8() {
    std::uint8_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  std::int64_t i64() {
    std::int64_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  void raw(void* out, std::size_t len) {
    DPA_CHECK(off + len <= n) << "truncated control payload";
    std::memcpy(out, p + off, len);
    off += len;
  }
};

// One worker's termination-protocol report. The done condition compares
// whole reports, so any monotonic counter moving between rounds keeps the
// phase alive.
struct Report {
  bool valid = false;
  std::uint8_t quiescent = 0;
  std::uint64_t tasks = 0;
  std::vector<std::uint64_t> sent;
  std::vector<std::uint64_t> recv;

  friend bool operator==(const Report& a, const Report& b) {
    return a.valid == b.valid && a.quiescent == b.quiescent &&
           a.tasks == b.tasks && a.sent == b.sent && a.recv == b.recv;
  }
};

std::mutex g_defaults_mu;
ProcBackend::Config g_default_config;

void send_ctl(transport::PipeChannel& ctl, NodeId src, NodeId dst,
              std::uint16_t tag, std::vector<std::uint8_t> bytes) {
  transport::TrainItem item;
  item.tag = tag;
  item.wire = std::move(bytes);
  ctl.send_train(nullptr, src, dst, std::move(item));
  ctl.flush(nullptr, src);
}

}  // namespace

void ProcBackend::set_default_config(const Config& config) {
  std::lock_guard<std::mutex> lk(g_defaults_mu);
  g_default_config = config;
}

ProcBackend::Config ProcBackend::default_config() {
  std::lock_guard<std::mutex> lk(g_defaults_mu);
  return g_default_config;
}

ProcBackend::ProcBackend(std::uint32_t num_nodes)
    : ProcBackend(num_nodes, default_config()) {}

ProcBackend::ProcBackend(std::uint32_t num_nodes, const Config& config)
    : num_nodes_(num_nodes), config_(config) {
  DPA_CHECK(num_nodes_ > 0);
  procs_ = std::clamp<std::uint32_t>(config_.procs, 1, num_nodes_);
  if (config_.watchdog.enabled()) watchdog_cfg_ = config_.watchdog;
  staged_posts_.resize(num_nodes_);
  node_stats_.resize(num_nodes_);
  epilogues_.resize(num_nodes_);
}

ProcBackend::~ProcBackend() {
  if (role_ == Role::kCoordinator) kill_and_reap_all();
}

HandlerId ProcBackend::register_handler(std::string name, Handler fn) {
  DPA_CHECK(role_ == Role::kCoordinator);
  handlers_.push_back(std::make_unique<HandlerEntry>(
      HandlerEntry{std::move(name), std::move(fn)}));
  codecs_.resize(handlers_.size());
  return HandlerId(handlers_.size() - 1);
}

void ProcBackend::set_wire_codec(HandlerId handler, WireCodec codec) {
  DPA_CHECK(handler < codecs_.size()) << "codec for unregistered handler";
  codecs_[handler] = std::move(codec);
}

void ProcBackend::add_phase_span(PhaseSpan span) {
  DPA_CHECK(role_ == Role::kCoordinator);
  DPA_CHECK(span.addr != nullptr && span.bytes > 0);
  transient_spans_.push_back(span);
}

void ProcBackend::remove_phase_span(const void* addr) {
  DPA_CHECK(role_ == Role::kCoordinator);
  std::erase_if(transient_spans_,
                [addr](const PhaseSpan& s) { return s.addr == addr; });
}

void ProcBackend::post(NodeId node, Task task) {
  DPA_CHECK(node < num_nodes_);
  if (role_ == Role::kWorker) {
    // In-phase post from an inner task (engine kick/self-reschedule).
    inner_->post(node, std::move(task));
    return;
  }
  // Coordinator: pre-phase seeding. The worker owning `node` replays these
  // into its inner pool after the fork.
  staged_posts_[node].push_back(std::move(task));
}

void ProcBackend::send(Cpu& cpu, NodeId src, NodeId dst, HandlerId handler,
                       std::shared_ptr<void> data, std::uint32_t bytes) {
  DPA_CHECK(role_ == Role::kWorker)
      << "proc backend send outside a phase (no task context)";
  if (owner_of(dst) == self_) {
    // Same process: the inner pool's train/mailbox path end to end.
    inner_->send(cpu, src, dst, handler, std::move(data), bytes);
    return;
  }
  const WireCodec& codec = codecs_[handler];
  DPA_CHECK(bool(codec.marshal))
      << "handler '" << handlers_[handler]->name
      << "' crosses a process boundary but has no wire codec";
  std::vector<std::uint8_t> body = codec.marshal(data.get(), bytes);
  std::vector<std::uint8_t> wire(4 + body.size());
  std::memcpy(wire.data(), &bytes, 4);  // modeled size rides the frame
  std::memcpy(wire.data() + 4, body.data(), body.size());

  PeerLink& link = *links_[owner_of(dst)];
  remote_msgs_sent_.fetch_add(1, std::memory_order_relaxed);
  remote_bytes_sent_.fetch_add(wire.size(), std::memory_order_relaxed);
  link.sent.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(link.mu);
  transport::TrainItem item;
  item.tag = handler;
  item.wire = std::move(wire);
  link.rel->send_train(nullptr, src, dst, std::move(item));
}

void ProcBackend::flush(Cpu& cpu, NodeId node) {
  if (role_ != Role::kWorker) return;
  inner_->flush(cpu, node);
  for (auto& link : links_) {
    if (link == nullptr) continue;
    std::lock_guard<std::mutex> lk(link->mu);
    link->rel->flush(nullptr, node);
  }
}

void ProcBackend::schedule_at(Time at, TimerFn fn) {
  (void)at;
  (void)fn;
  DPA_PANIC("proc backend has no deferred timers (supports_timers() is "
            "false); the reliability layer runs inside the transport");
}

Time ProcBackend::begin_phase() {
  DPA_CHECK(role_ == Role::kCoordinator);
  for (auto& q : staged_posts_) q.clear();
  for (auto& s : node_stats_) s.reset();
  return clock_ns_;
}

std::vector<std::string> ProcBackend::collect_epilogues(std::uint32_t nodes) {
  DPA_CHECK(nodes == num_nodes_);
  return epilogues_;
}

std::vector<NodeId> ProcBackend::nodes_owned_by(std::uint32_t worker) const {
  std::vector<NodeId> out;
  for (NodeId n = worker; n < num_nodes_; n += procs_) out.push_back(n);
  return out;
}

PhaseExec ProcBackend::run_phase() {
  DPA_CHECK(role_ == Role::kCoordinator);
  const auto t0 = std::chrono::steady_clock::now();
  phase_failed_ = false;
  diagnostics_.clear();
  epilogues_.assign(num_nodes_, std::string());
  msg_total_ = MsgStats{};
  sched_total_ = SchedStats{};
  wire_total_ = WireStatsTotal{};
  events_total_ = 0;

  // Resolve the span list pre-fork so coordinator and workers share one
  // indexing (the workers inherit it copy-on-write).
  spans_.clear();
  if (span_source_) span_source_(spans_);
  spans_.insert(spans_.end(), transient_spans_.begin(), transient_spans_.end());

  spawn_workers();
  coordinator_loop();

  // Per-phase plumbing down: channels own their fds.
  ctl_.clear();
  ctl_fds_.clear();
  data_fds_.clear();
  pids_.clear();
  for (auto& q : staged_posts_) q.clear();

  PhaseExec out;
  out.elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  out.events = events_total_;
  clock_ns_ += out.elapsed;
  return out;
}

void ProcBackend::spawn_workers() {
  pids_.assign(procs_, -1);
  ctl_fds_.assign(procs_, std::array<int, 2>{-1, -1});
  data_fds_.assign(procs_, std::vector<std::array<int, 2>>(
                               procs_, std::array<int, 2>{-1, -1}));
  for (std::uint32_t w = 0; w < procs_; ++w) {
    int sv[2];
    DPA_CHECK(socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0)
        << "socketpair: " << std::strerror(errno);
    ctl_fds_[w] = {sv[0], sv[1]};
  }
  for (std::uint32_t a = 0; a < procs_; ++a) {
    for (std::uint32_t b = a + 1; b < procs_; ++b) {
      int sv[2];
      DPA_CHECK(socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0)
          << "socketpair: " << std::strerror(errno);
      data_fds_[a][b] = {sv[0], sv[1]};
    }
  }
  for (std::uint32_t w = 0; w < procs_; ++w) {
    const pid_t pid = fork();
    DPA_CHECK(pid >= 0) << "fork: " << std::strerror(errno);
    if (pid == 0) worker_main(w);  // never returns
    pids_[w] = pid;
  }
  // Close every fd that now belongs to a child. Keeping any copy open
  // would defeat EOF-based death detection: a dead worker's socket only
  // reads EOF once *all* write ends are closed.
  for (std::uint32_t w = 0; w < procs_; ++w) {
    close(ctl_fds_[w][1]);
    ctl_fds_[w][1] = -1;
  }
  for (std::uint32_t a = 0; a < procs_; ++a) {
    for (std::uint32_t b = a + 1; b < procs_; ++b) {
      close(data_fds_[a][b][0]);
      close(data_fds_[a][b][1]);
      data_fds_[a][b] = {-1, -1};
    }
  }
  // Control channels: one endpoint PipeChannel per worker, every frame
  // flagged control.
  ctl_.clear();
  for (std::uint32_t w = 0; w < procs_; ++w) {
    auto ch = std::make_unique<transport::PipeChannel>(
        2u, 1u, transport::PipeChannel::Endpoint{ctl_fds_[w][0]});
    ch->set_control(true);
    ctl_fds_[w][0] = -1;  // channel owns it now
    ctl_.push_back(std::move(ch));
  }
}

void ProcBackend::coordinator_loop() {
  struct WorkerState {
    Report cur;
    Report prev;
    bool bye = false;
    bool dead = false;
    int wait_status = 0;
  };
  std::vector<WorkerState> ws(procs_);
  bool done_sent = false;

  for (std::uint32_t w = 0; w < procs_; ++w) {
    ctl_[w]->set_deliver([this, &ws, w](const transport::FrameHeader& h,
                                        const transport::FramePayload& p) {
      (void)h;
      coordinator_apply(w, p.tag, p.bytes, &ws[w].cur, &ws[w].bye);
    });
  }

  auto broadcast = [this, &ws](std::uint16_t tag,
                               std::vector<std::uint8_t> bytes) {
    for (std::uint32_t w = 0; w < procs_; ++w) {
      if (ws[w].dead) continue;
      send_ctl(*ctl_[w], kCtlCoord, kCtlWorker, tag, bytes);
    }
  };

  auto check_deaths = [this, &ws]() -> std::int32_t {
    for (std::uint32_t w = 0; w < procs_; ++w) {
      if (ws[w].dead || ws[w].bye) continue;
      int st = 0;
      const pid_t r = waitpid(pids_[w], &st, WNOHANG);
      const bool exited = r == pids_[w];
      if (!exited &&
          ctl_[w]->status() != transport::ChannelStatus::kPeerDown) {
        continue;
      }
      // The process (or its socket) is gone. A finalizing worker sends
      // kTagBye and _exit(0)s immediately, so the reap can beat the read
      // of its final frames: drain the control channel before judging.
      // A buffered bye means clean shutdown, not death.
      ctl_[w]->poll();
      if (!exited) waitpid(pids_[w], &st, 0);
      ws[w].dead = true;
      ws[w].wait_status = st;
      if (ws[w].bye && st == 0) continue;
      return std::int32_t(w);
    }
    return -1;
  };

  auto wait_ctl = [this](int timeout_ms) {
    std::vector<pollfd> fds;
    fds.reserve(ctl_.size());
    for (auto& ch : ctl_)
      fds.push_back(pollfd{ch->wire_fd(), POLLIN, 0});
    ::poll(fds.data(), nfds_t(fds.size()), timeout_ms);
  };

  std::uint32_t round = 0;
  {
    Wr probe;
    probe.u32(round);
    broadcast(kTagProbe, std::move(probe.b));
  }

  const std::int64_t t_start = mono_ns();
  for (;;) {
    for (auto& ch : ctl_) ch->poll();
    const std::int32_t dead = check_deaths();
    if (dead >= 0) {
      fail_phase("worker process died mid-phase", dead, pids_[dead],
                 ws[dead].wait_status);
      return;
    }
    if (watchdog_cfg_.phase_deadline > 0 &&
        mono_ns() - t_start > watchdog_cfg_.phase_deadline) {
      fail_phase("phase deadline exceeded (coordinator watchdog)", -1, -1, 0);
      return;
    }

    if (!done_sent) {
      bool all_reported = true;
      for (auto& s : ws) all_reported = all_reported && s.cur.valid;
      if (all_reported) {
        // Done = two consecutive identical rounds, all quiescent, and the
        // pairwise sent/recv matrices matching — the PR-5/7 two-pass
        // quiescence confirm, lifted to frame level.
        bool quiet = true;
        for (auto& s : ws)
          quiet = quiet && s.prev.valid && s.cur == s.prev && s.cur.quiescent;
        if (quiet) {
          for (std::uint32_t a = 0; a < procs_ && quiet; ++a)
            for (std::uint32_t b = 0; b < procs_ && quiet; ++b)
              if (a != b) quiet = ws[a].cur.sent[b] == ws[b].cur.recv[a];
        }
        if (quiet) {
          broadcast(kTagDone, {});
          done_sent = true;
        } else {
          for (auto& s : ws) {
            s.prev = s.cur;
            s.cur = Report{};
          }
          ++round;
          Wr probe;
          probe.u32(round);
          broadcast(kTagProbe, std::move(probe.b));
        }
        continue;
      }
    } else {
      bool all_bye = true;
      for (auto& s : ws) all_bye = all_bye && s.bye;
      if (all_bye) break;
    }
    wait_ctl(2);
  }

  // Clean finish: reap every worker (they _exit(0) right after kTagBye).
  for (std::uint32_t w = 0; w < procs_; ++w) {
    if (ws[w].dead) continue;  // already reaped by check_deaths
    int st = 0;
    waitpid(pids_[w], &st, 0);
  }
}

void ProcBackend::coordinator_apply(std::uint32_t from, std::uint16_t tag,
                                    const std::vector<std::uint8_t>& bytes,
                                    void* cur_report, bool* bye) {
  Report& cur = *static_cast<Report*>(cur_report);
  switch (tag) {
    case kTagReport: {
      Rd r(bytes);
      const std::uint32_t rnd = r.u32();
      (void)rnd;  // reports always answer the latest probe
      cur.valid = true;
      cur.quiescent = r.u8();
      cur.tasks = r.u64();
      cur.sent.assign(procs_, 0);
      cur.recv.assign(procs_, 0);
      for (auto& v : cur.sent) v = r.u64();
      for (auto& v : cur.recv) v = r.u64();
      break;
    }
    case kTagSpan: {
      Rd r(bytes);
      while (r.remaining() > 0) {
        const std::uint8_t kind = r.u8();
        const std::uint32_t idx = r.u32();
        const std::uint64_t off = r.u64();
        const std::uint32_t len = r.u32();
        DPA_CHECK(idx < spans_.size() && off + len <= spans_[idx].bytes)
            << "span diff out of range";
        char* base =
            const_cast<char*>(static_cast<const char*>(spans_[idx].addr));
        if (kind == kRunBytes) {
          r.raw(base + off, len);
        } else {
          DPA_CHECK(kind == kRunSum && len % 8 == 0);
          for (std::uint32_t i = 0; i < len; i += 8) {
            const std::uint64_t delta = r.u64();
            std::uint64_t cur_v = 0;
            std::memcpy(&cur_v, base + off + i, 8);
            cur_v += delta;
            std::memcpy(base + off + i, &cur_v, 8);
          }
        }
      }
      break;
    }
    case kTagEpilogue: {
      Rd r(bytes);
      const std::uint32_t node = r.u32();
      const std::uint32_t len = r.u32();
      DPA_CHECK(node < num_nodes_ && owner_of(node) == from);
      epilogues_[node].resize(len);
      if (len > 0) r.raw(epilogues_[node].data(), len);
      break;
    }
    case kTagStats: {
      Rd r(bytes);
      events_total_ += r.u64();
      msg_total_.msgs_sent += r.u64();
      msg_total_.frags_sent += r.u64();
      msg_total_.msgs_recv += r.u64();
      msg_total_.bytes_sent += r.u64();
      msg_total_.bytes_recv += r.u64();
      msg_total_.trains_sent += r.u64();
      sched_total_.parks += r.u64();
      sched_total_.steals += r.u64();
      sched_total_.activations += r.u64();
      wire_total_.frames_sent += r.u64();
      wire_total_.frames_recv += r.u64();
      wire_total_.bytes_sent += r.u64();
      wire_total_.payloads_recv += r.u64();
      wire_total_.retries += r.u64();
      wire_total_.acks_sent += r.u64();
      wire_total_.acks_recv += r.u64();
      wire_total_.dup_msgs_dropped += r.u64();
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        const NodeId id = r.u32();
        DPA_CHECK(id < num_nodes_ && owner_of(id) == from);
        NodeStats& s = node_stats_[id];
        for (int k = 0; k < kNumWorkKinds; ++k) s.busy[k] = r.i64();
        s.busy_total = r.i64();
        s.finish_time = r.i64();
        s.tasks_run = r.u64();
      }
      break;
    }
    case kTagBye:
      *bye = true;
      break;
    case kTagPeerDead: {
      // Informational: a worker noticed a dead peer on its data link. The
      // authoritative signal is the reaped pid / control-channel EOF.
      break;
    }
    default:
      DPA_PANIC("unexpected control tag " << tag << " from worker " << from);
  }
}

void ProcBackend::fail_phase(const std::string& reason,
                             std::int32_t dead_worker, pid_t dead_pid,
                             int wait_status) {
  phase_failed_ = true;
  write_flight_record(reason, dead_worker, dead_pid, wait_status);

  std::ostringstream d;
  d << "proc backend: " << reason;
  if (dead_worker >= 0) {
    d << " — worker " << dead_worker << " (pid " << dead_pid << ", nodes";
    for (NodeId n : nodes_owned_by(std::uint32_t(dead_worker))) d << " " << n;
    d << ")";
    if (WIFEXITED(wait_status))
      d << " exited with status " << WEXITSTATUS(wait_status);
    else if (WIFSIGNALED(wait_status))
      d << " was killed by signal " << WTERMSIG(wait_status);
  }
  d << "; surviving workers aborted, phase results discarded";
  diagnostics_ = d.str();

  // Best-effort abort broadcast, then make sure everyone is gone.
  for (std::uint32_t w = 0; w < procs_; ++w) {
    if (std::int32_t(w) == dead_worker) continue;
    send_ctl(*ctl_[w], kCtlCoord, kCtlWorker, kTagAbort, {});
    ctl_[w]->drain();
  }
  kill_and_reap_all();
}

void ProcBackend::kill_and_reap_all() {
  for (std::size_t w = 0; w < pids_.size(); ++w) {
    if (pids_[w] <= 0) continue;
    int st = 0;
    // Give the abort a moment to land, then force the issue.
    for (int i = 0; i < 50; ++i) {
      if (waitpid(pids_[w], &st, WNOHANG) == pids_[w]) {
        pids_[w] = -1;
        break;
      }
      struct timespec ts {0, 2'000'000};  // 2ms
      nanosleep(&ts, nullptr);
    }
    if (pids_[w] > 0) {
      kill(pids_[w], SIGKILL);
      waitpid(pids_[w], &st, 0);
      pids_[w] = -1;
    }
  }
}

void ProcBackend::write_flight_record(const std::string& reason,
                                      std::int32_t dead_worker,
                                      pid_t dead_pid, int wait_status) {
  if (watchdog_cfg_.dump_path.empty()) {
    std::fprintf(stderr, "[proc-backend] %s (worker %d, pid %d)\n",
                 reason.c_str(), dead_worker, int(dead_pid));
    return;
  }
  std::FILE* f = std::fopen(watchdog_cfg_.dump_path.c_str(), "w");
  if (f == nullptr) return;
  std::ostringstream j;
  j << "{\n"
    << "  \"backend\": \"proc\",\n"
    << "  \"reason\": \"" << reason << "\",\n"
    << "  \"procs\": " << procs_ << ",\n"
    << "  \"num_nodes\": " << num_nodes_ << ",\n"
    << "  \"dead_worker\": " << dead_worker << ",\n"
    << "  \"dead_pid\": " << dead_pid << ",\n"
    << "  \"wait_status\": " << wait_status << ",\n"
    << "  \"dead_nodes\": [";
  if (dead_worker >= 0) {
    bool first = true;
    for (NodeId n : nodes_owned_by(std::uint32_t(dead_worker))) {
      if (!first) j << ", ";
      j << n;
      first = false;
    }
  }
  j << "]\n}\n";
  const std::string s = j.str();
  std::fwrite(s.data(), 1, s.size(), f);
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

void ProcBackend::worker_main(std::uint32_t self) {
  role_ = Role::kWorker;
  self_ = self;

  // Drop every inherited fd that is not ours: the coordinator ends of our
  // own sockets, everything of every other worker. Any copy we kept open
  // would mask another worker's death from its peers.
  for (std::uint32_t w = 0; w < procs_; ++w) {
    if (w != self) {
      close(ctl_fds_[w][0]);
      close(ctl_fds_[w][1]);
    } else {
      close(ctl_fds_[w][0]);
    }
  }
  for (std::uint32_t a = 0; a < procs_; ++a) {
    for (std::uint32_t b = a + 1; b < procs_; ++b) {
      if (a == self) {
        close(data_fds_[a][b][1]);
      } else if (b == self) {
        close(data_fds_[a][b][0]);
      } else {
        close(data_fds_[a][b][0]);
        close(data_fds_[a][b][1]);
      }
    }
  }

  // Control link to the coordinator (all frames flagged control).
  transport::PipeChannel ctl(2u, 1u,
                             transport::PipeChannel::Endpoint{
                                 ctl_fds_[self][1]});
  ctl.set_control(true);

  // Data links: one framed + reliable channel per peer worker.
  links_.clear();
  links_.resize(procs_);
  for (std::uint32_t v = 0; v < procs_; ++v) {
    if (v == self) continue;
    const int fd = self < v ? data_fds_[self][v][0] : data_fds_[v][self][1];
    auto link = std::make_unique<PeerLink>();
    link->pipe = std::make_unique<transport::PipeChannel>(
        num_nodes_, config_.train_max, transport::PipeChannel::Endpoint{fd});
    link->rel = std::make_unique<transport::ReliableChannel>(
        *link->pipe, num_nodes_, data_retry_policy());
    // Prime the protocol clock: it starts at 0, and the first real pump
    // jumps it to monotonic-now — without this, every in-flight message
    // would look past-deadline once and be retransmitted needlessly.
    link->rel->pump(mono_ns());
    PeerLink* raw = link.get();
    link->rel->set_on_peer_dead(
        [raw](NodeId dst, std::uint64_t seq, std::uint32_t sends) {
          (void)dst;
          (void)seq;
          (void)sends;
          raw->rel_gave_up.store(true, std::memory_order_relaxed);
        });
    link->rel->set_deliver([this, raw](const transport::FrameHeader& h,
                                       const transport::FramePayload& p) {
      // Application payload from another process: [u32 modeled_bytes]
      // [codec bytes] under the handler-id tag. Rebuild the packet and
      // stage it as a post for the next sub-phase (post-dedup: the
      // reliable wrapper already dropped duplicates).
      DPA_CHECK(p.tag < handlers_.size()) << "unknown handler tag on wire";
      const WireCodec& codec = codecs_[p.tag];
      DPA_CHECK(bool(codec.unmarshal))
          << "handler '" << handlers_[p.tag]->name << "' has no unmarshal";
      DPA_CHECK(p.bytes.size() >= 4);
      std::uint32_t modeled = 0;
      std::memcpy(&modeled, p.bytes.data(), 4);
      std::shared_ptr<void> data =
          codec.unmarshal(p.bytes.data() + 4, p.bytes.size() - 4);
      Packet pkt;
      pkt.src = h.src;
      pkt.dst = h.dst;
      pkt.handler = p.tag;
      pkt.data = std::move(data);
      pkt.bytes = modeled;
      HandlerEntry* entry = handlers_[p.tag].get();
      const NodeId dst = h.dst;
      Task task = [entry, pkt = std::move(pkt)](Cpu& cpu) {
        entry->fn(cpu, pkt);
      };
      std::lock_guard<std::mutex> lk(inbound_mu_);
      pending_inbound_.emplace_back(dst, std::move(task));
      ++raw->recv;
      remote_msgs_recv_ += 1;
      remote_bytes_recv_ += p.bytes.size();
    });
    links_[v] = std::move(link);
  }

  // The local execution substrate: a fresh inner pool (threads never
  // survive a fork, so it must be built on this side of it), fronted by
  // trampolines onto the registered handlers.
  inner_ = std::make_unique<NativeBackend>(num_nodes_);
  for (auto& h : handlers_) {
    HandlerEntry* entry = h.get();
    inner_->register_handler(
        entry->name, Handler([entry](Cpu& cpu, const Packet& pkt) {
          entry->fn(cpu, pkt);
        }));
  }
  if (watchdog_cfg_.enabled()) {
    WatchdogConfig cfg = watchdog_cfg_;
    if (!cfg.dump_path.empty())
      cfg.dump_path += ".w" + std::to_string(self);
    inner_->arm_watchdog(cfg);
  }

  // Fork-time snapshot of every registered span: the diff base. Taken
  // before any task runs, so it is exactly the coordinator's phase-start
  // state.
  std::vector<std::vector<std::uint8_t>> pristine(spans_.size());
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    pristine[i].resize(spans_[i].bytes);
    std::memcpy(pristine[i].data(), spans_[i].addr, spans_[i].bytes);
  }

  const std::vector<NodeId> owned = nodes_owned_by(self);

  // Control-message flags, written by the delivery callback (runs inside
  // ctl.poll() on this thread).
  bool got_done = false;
  bool got_abort = false;
  bool probe_pending = false;
  std::uint32_t probe_round = 0;
  ctl.set_deliver([&](const transport::FrameHeader& h,
                      const transport::FramePayload& p) {
    (void)h;
    switch (p.tag) {
      case kTagProbe: {
        Rd r(p.bytes);
        probe_round = r.u32();
        probe_pending = true;
        break;
      }
      case kTagDone:
        got_done = true;
        break;
      case kTagAbort:
        got_abort = true;
        break;
      default:
        DPA_PANIC("unexpected control tag " << p.tag << " at worker "
                                            << self_);
    }
  });

  // Accumulated results across sub-phases.
  std::vector<NodeStats> acc(num_nodes_);
  MsgStats msg_acc;
  SchedStats sched_acc;
  std::uint64_t tasks_acc = 0;
  Time subphase_offset = 0;

  bool first = true;
  std::int64_t last_reported = -1;
  std::uint64_t pump_iters = 0;

  for (;;) {
    // 1. Run everything runnable locally: one inner sub-phase. The inner
    // pool reaches local quiescence because DPA threads are non-blocking
    // continuations — a pending remote require holds no task.
    std::vector<std::pair<NodeId, Task>> batch;
    {
      std::lock_guard<std::mutex> lk(inbound_mu_);
      batch.swap(pending_inbound_);
    }
    bool have_seeds = false;
    if (first)
      for (NodeId n : owned) have_seeds = have_seeds || !staged_posts_[n].empty();
    if (!batch.empty() || have_seeds) {
      inner_->begin_phase();
      if (first) {
        for (NodeId n : owned)
          while (!staged_posts_[n].empty()) {
            inner_->post(n, std::move(staged_posts_[n].front()));
            staged_posts_[n].pop_front();
          }
      }
      for (auto& [node, task] : batch) inner_->post(node, std::move(task));
      const PhaseExec pe = inner_->run_phase();
      tasks_acc += pe.events;
      for (NodeId n : owned) {
        const NodeStats& st = inner_->node_stats(n);
        NodeStats& a = acc[n];
        for (int k = 0; k < kNumWorkKinds; ++k) a.busy[k] += st.busy[k];
        a.busy_total += st.busy_total;
        a.tasks_run += st.tasks_run;
        if (st.tasks_run > 0) a.finish_time = subphase_offset + st.finish_time;
      }
      subphase_offset += pe.elapsed;
      {
        const MsgStats m = inner_->msg_stats_total();
        msg_acc.msgs_sent += m.msgs_sent;
        msg_acc.frags_sent += m.frags_sent;
        msg_acc.msgs_recv += m.msgs_recv;
        msg_acc.bytes_sent += m.bytes_sent;
        msg_acc.bytes_recv += m.bytes_recv;
        msg_acc.trains_sent += m.trains_sent;
        const SchedStats s = inner_->sched_stats();
        sched_acc.parks += s.parks;
        sched_acc.steals += s.steals;
        sched_acc.activations += s.activations;
      }
      // Anything the sub-phase buffered for other processes departs now;
      // termination depends on it (sent counts include these payloads).
      for (auto& link : links_) {
        if (link == nullptr) continue;
        std::lock_guard<std::mutex> lk(link->mu);
        for (NodeId n : owned) link->rel->flush(nullptr, n);
      }
    }
    first = false;

    // 2. Pump the data links: deliveries, acks, retransmit deadlines.
    const std::int64_t now = mono_ns();
    for (std::uint32_t v = 0; v < procs_; ++v) {
      PeerLink* link = links_[v].get();
      if (link == nullptr) continue;
      bool down;
      {
        std::lock_guard<std::mutex> lk(link->mu);
        link->rel->poll();
        link->rel->pump(now);
        down = link->pipe->status() == transport::ChannelStatus::kPeerDown ||
               link->rel_gave_up.load(std::memory_order_relaxed);
      }
      if (down && !link->death_reported) {
        link->death_reported = true;
        Wr msg;
        msg.u32(v);
        send_ctl(ctl, kCtlWorker, kCtlCoord, kTagPeerDead, std::move(msg.b));
      }
    }

    // 3. Pump the control link.
    ctl.poll();
    if (got_abort) _exit(1);

    // 4. Chaos hook: die abruptly, as a crashed process would.
    if (config_.kill_worker_for_test == std::int32_t(self_) &&
        ++pump_iters >= config_.kill_after_pumps) {
      _exit(42);
    }

    // 5. Done broadcast: commit, diff, ship, leave.
    if (got_done) {
      worker_finalize(ctl, owned, pristine, acc, msg_acc, sched_acc,
                      tasks_acc);
      // not reached
    }

    // 6. Answer the latest probe (whether or not we are quiescent — the
    // coordinator needs the report to advance rounds).
    bool quiescent;
    {
      std::lock_guard<std::mutex> lk(inbound_mu_);
      quiescent = pending_inbound_.empty();
    }
    if (probe_pending && std::int64_t(probe_round) > last_reported) {
      Wr rep;
      rep.u32(probe_round);
      rep.u8(quiescent ? 1 : 0);
      rep.u64(tasks_acc);
      for (std::uint32_t v = 0; v < procs_; ++v)
        rep.u64(links_[v] == nullptr
                    ? 0
                    : links_[v]->sent.load(std::memory_order_relaxed));
      for (std::uint32_t v = 0; v < procs_; ++v) {
        if (links_[v] == nullptr) {
          rep.u64(0);
          continue;
        }
        std::lock_guard<std::mutex> lk(links_[v]->mu);
        rep.u64(links_[v]->recv);
      }
      send_ctl(ctl, kCtlWorker, kCtlCoord, kTagReport, std::move(rep.b));
      last_reported = std::int64_t(probe_round);
      probe_pending = false;
    }

    // 7. Nothing to run: sleep on the wire.
    if (quiescent) {
      std::vector<pollfd> fds;
      fds.push_back(pollfd{ctl.wire_fd(), POLLIN, 0});
      for (auto& link : links_)
        if (link != nullptr)
          fds.push_back(pollfd{link->pipe->wire_fd(), POLLIN, 0});
      ::poll(fds.data(), nfds_t(fds.size()), 1);
    }
  }
}

void ProcBackend::worker_finalize(
    transport::PipeChannel& ctl, const std::vector<NodeId>& owned,
    const std::vector<std::vector<std::uint8_t>>& pristine,
    const std::vector<NodeStats>& acc, const MsgStats& msg_acc,
    const SchedStats& sched_acc, std::uint64_t tasks_acc) {
  // 1. Phase epilogues for the owned nodes, in node order: this is where
  // staged accumulations commit (src, seq)-sorted — run them *before* the
  // span diff so their writes are captured.
  std::vector<std::string> blobs(owned.size());
  for (std::size_t i = 0; i < owned.size(); ++i) {
    blobs[i] = phase_epilogue_ ? phase_epilogue_(owned[i]) : std::string();
    Wr msg;
    msg.u32(owned[i]);
    msg.u32(std::uint32_t(blobs[i].size()));
    msg.raw(blobs[i].data(), blobs[i].size());
    send_ctl(ctl, kCtlWorker, kCtlCoord, kTagEpilogue, std::move(msg.b));
  }

  // 2. Span diffs against the fork-time snapshot. Byte-exact runs only:
  // workers own disjoint bytes, and shipping any unchanged neighbor byte
  // would clobber another worker's write at the coordinator.
  Wr diff;
  auto flush_diff = [&](bool force) {
    if (diff.b.empty() || (!force && diff.b.size() < kSpanChunkBytes)) return;
    send_ctl(ctl, kCtlWorker, kCtlCoord, kTagSpan, std::move(diff.b));
    diff = Wr{};
  };
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const auto* cur = static_cast<const std::uint8_t*>(spans_[i].addr);
    const std::uint8_t* old = pristine[i].data();
    const std::uint64_t n = spans_[i].bytes;
    if (spans_[i].merge == SpanMerge::kSumU64) {
      // Contiguous non-zero u64 deltas, shipped as one add-record each.
      std::uint64_t lane = 0;
      const std::uint64_t lanes = n / 8;
      while (lane < lanes) {
        std::uint64_t c = 0, o = 0;
        std::memcpy(&c, cur + lane * 8, 8);
        std::memcpy(&o, old + lane * 8, 8);
        if (c == o) {
          ++lane;
          continue;
        }
        const std::uint64_t start = lane;
        Wr deltas;
        while (lane < lanes) {
          std::memcpy(&c, cur + lane * 8, 8);
          std::memcpy(&o, old + lane * 8, 8);
          if (c == o) break;
          deltas.u64(c - o);
          ++lane;
        }
        diff.u8(kRunSum);
        diff.u32(std::uint32_t(i));
        diff.u64(start * 8);
        diff.u32(std::uint32_t(deltas.b.size()));
        diff.raw(deltas.b.data(), deltas.b.size());
        flush_diff(false);
      }
      continue;
    }
    std::uint64_t p = 0;
    while (p < n) {
      if (cur[p] == old[p]) {
        ++p;
        continue;
      }
      const std::uint64_t start = p;
      while (p < n && cur[p] != old[p]) ++p;
      std::uint64_t len = p - start;
      // Cap run length so a single record never outgrows a frame chunk.
      while (len > 0) {
        const std::uint64_t take =
            std::min<std::uint64_t>(len, kSpanChunkBytes);
        diff.u8(kRunBytes);
        diff.u32(std::uint32_t(i));
        diff.u64(start + (p - start - len));
        diff.u32(std::uint32_t(take));
        diff.raw(cur + start + (p - start - len), take);
        len -= take;
        flush_diff(false);
      }
    }
  }
  flush_diff(true);

  // 3. Merged execution statistics.
  {
    WireStatsTotal wt;
    for (auto& link : links_) {
      if (link == nullptr) continue;
      const transport::PipeChannel::WireStats& w = link->pipe->wire_stats();
      wt.frames_sent += w.frames_sent;
      wt.frames_recv += w.frames_recv;
      wt.bytes_sent += w.bytes_sent;
      wt.payloads_recv += w.payloads_recv;
      const transport::ReliableChannel::Stats& rs = link->rel->stats();
      wt.retries += rs.retries;
      wt.acks_sent += rs.acks_sent;
      wt.acks_recv += rs.acks_recv;
      wt.dup_msgs_dropped += rs.dup_msgs_dropped;
    }
    Wr s;
    s.u64(tasks_acc);
    s.u64(msg_acc.msgs_sent + remote_msgs_sent_.load());
    s.u64(msg_acc.frags_sent);
    s.u64(msg_acc.msgs_recv + remote_msgs_recv_);
    s.u64(msg_acc.bytes_sent + remote_bytes_sent_.load());
    s.u64(msg_acc.bytes_recv + remote_bytes_recv_);
    s.u64(msg_acc.trains_sent + wt.frames_sent);
    s.u64(sched_acc.parks);
    s.u64(sched_acc.steals);
    s.u64(sched_acc.activations);
    s.u64(wt.frames_sent);
    s.u64(wt.frames_recv);
    s.u64(wt.bytes_sent);
    s.u64(wt.payloads_recv);
    s.u64(wt.retries);
    s.u64(wt.acks_sent);
    s.u64(wt.acks_recv);
    s.u64(wt.dup_msgs_dropped);
    s.u32(std::uint32_t(owned.size()));
    for (NodeId n : owned) {
      s.u32(n);
      for (int k = 0; k < kNumWorkKinds; ++k) s.i64(acc[n].busy[k]);
      s.i64(acc[n].busy_total);
      s.i64(acc[n].finish_time);
      s.u64(acc[n].tasks_run);
    }
    send_ctl(ctl, kCtlWorker, kCtlCoord, kTagStats, std::move(s.b));
  }

  // 4. Everything shipped: sign off and leave without running atexit or
  // destructors (the coordinator owns the shared state we COW-replicated).
  send_ctl(ctl, kCtlWorker, kCtlCoord, kTagBye, {});
  ctl.drain();
  _exit(0);
}

}  // namespace dpa::exec
