// NativeBackend: one host thread per node, real time, real message passing.
//
// The same runtime/engine/app stack that runs on the simulator runs here
// unchanged, but "a message" is a genuine cross-thread handoff and "phase
// elapsed" is monotonic wall-clock — so the DPA engine's aggregation and
// pipelining show up as measured host performance, not modeled cycles.
//
// Execution model:
//   * Each node is a persistent std::thread with an MPSC mailbox (mutex +
//     deque) for cross-thread posts and an unlocked local queue for
//     self-posts (a node's scheduler kicking itself never takes a lock).
//   * send() enqueues a delivery task on the destination's mailbox; the
//     handler runs on the destination's thread. The in-process fabric is
//     lossless and unordered-across-nodes, exactly like the model.
//   * Phase termination is global quiescence: an atomic counts every
//     posted-but-not-finished task. It is incremented before a task is
//     enqueued and decremented after it finishes, so a running task that
//     will fan out more work always holds the count above zero — reading
//     zero is a stable "everything drained" signal.
//   * Workers then meet at a sense-reversing spin barrier; the main thread
//     is woken through a condvar and is afterwards the only thread touching
//     runtime state until the next phase (that handoff is the
//     synchronization point for all per-node stats).
//
// Time: task charges still accumulate *modeled* nanoseconds, so the
// compute/runtime/comm attribution in NodeStats.busy[] keeps its meaning,
// while busy_total and finish_time are *real* nanoseconds measured around
// each task — idle = elapsed - busy_total is genuine wait time.
//
// Not supported (sim-only by design): reliability retransmit timers
// (schedule_at panics; the fabric cannot lose messages), fault injection,
// and trace attachment.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/backend.h"

namespace dpa::exec {

// Sense-reversing barrier. Each participant keeps its own sense flag
// (initially true) and passes it by pointer; the last arriver flips the
// shared sense, releasing the spinners. Reusable immediately — that is the
// point of sense reversal.
class SenseBarrier {
 public:
  explicit SenseBarrier(std::uint32_t n) : n_(n), count_(n) {}

  void arrive_and_wait(bool* my_sense);

 private:
  std::uint32_t n_;
  std::atomic<std::uint32_t> count_;
  std::atomic<bool> sense_{false};
};

class NativeBackend final : public Backend {
 public:
  explicit NativeBackend(std::uint32_t num_nodes);
  ~NativeBackend() override;

  BackendKind kind() const override { return BackendKind::kNative; }
  std::uint32_t num_nodes() const override {
    return std::uint32_t(nodes_.size());
  }

  HandlerId register_handler(std::string name, Handler fn) override;
  const std::string& handler_name(HandlerId id) const override {
    return handlers_[id]->name;
  }

  void send(Cpu& cpu, NodeId src, NodeId dst, HandlerId handler,
            std::shared_ptr<void> data, std::uint32_t bytes) override;

  void post(NodeId node, Task task) override;

  void schedule_at(Time at, TimerFn fn) override;

  Time begin_phase() override;
  PhaseExec run_phase() override;

  const NodeStats& node_stats(NodeId node) const override {
    return nodes_[node]->stats;
  }
  Time idle_time(NodeId node, Time phase_elapsed) const override {
    const Time idle = phase_elapsed - nodes_[node]->stats.busy_total;
    return idle > 0 ? idle : 0;
  }
  MsgStats msg_stats_total() const override;
  void reset_msg_stats() override;

  bool lossy() const override { return false; }

 private:
  // Padded to a cache line boundary: stats and queues are written at task
  // rate by the owning worker; neighbors must not false-share.
  struct alignas(64) Node {
    // Cross-thread inbox (messages, pre-phase seeding from the main
    // thread). MPSC: many producers under the mutex, drained in batches by
    // the owning worker.
    std::mutex mu;
    std::deque<Task> inbox;
    // Self-posts from the owning worker; never locked.
    std::deque<Task> local;
    NodeStats stats;
    MsgStats msg;  // sent-side fields written by owner, recv-side by owner
  };

  struct HandlerEntry {
    std::string name;
    Handler fn;
  };

  void worker_main(NodeId id);
  void run_node_phase(Node& n, NodeId id);
  void run_task(Node& n, NodeId id, Task task);
  Time since_phase_start(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t - phase_t0_)
        .count();
  }

  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<HandlerEntry>> handlers_;

  // Posted-but-not-finished tasks; zero is a stable quiescence signal.
  std::atomic<std::uint64_t> outstanding_{0};

  // Phase start/stop plumbing. Workers park on phase_cv_ between phases;
  // run_phase publishes a new epoch to release them and waits on done
  // acknowledgment from the barrier's last wave.
  std::mutex phase_mu_;
  std::condition_variable phase_cv_;
  std::uint64_t phase_epoch_ = 0;
  std::uint64_t done_epoch_ = 0;
  bool stop_ = false;

  SenseBarrier finish_barrier_;
  std::chrono::steady_clock::time_point phase_t0_;
  // Accumulated wall-clock across completed phases: the backend's
  // monotonically increasing "now", used only for phase bracketing.
  Time clock_ns_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace dpa::exec
