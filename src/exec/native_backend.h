// NativeBackend: one host thread per node, real time, real message passing.
//
// The same runtime/engine/app stack that runs on the simulator runs here
// unchanged, but "a message" is a genuine cross-thread handoff and "phase
// elapsed" is monotonic wall-clock — so the DPA engine's aggregation and
// pipelining show up as measured host performance, not modeled cycles.
//
// Execution model:
//   * Each node is a persistent std::thread with an MPSC mailbox (mutex +
//     deque) for cross-thread posts and an unlocked local queue for
//     self-posts (a node's scheduler kicking itself never takes a lock).
//   * send() appends a delivery task to the sender's per-destination
//     *train* — an owner-thread-only outbound buffer. A train is handed to
//     the destination mailbox under ONE lock acquisition when it reaches
//     Tuning::train_max depth, when the engine calls Backend::flush() at a
//     tile/strip boundary, or — unconditionally — when the sending worker
//     runs out of local work. That last rule makes trains invisible to
//     termination: buffered messages always depart before their owner can
//     so much as look for quiescence. The host fabric thus applies the
//     paper's aggregation idea to itself: per-message lock overhead is
//     amortized across a batch, exactly like per-message wire overhead is
//     amortized by pointer aggregation. In-process delivery stays lossless
//     and per-(src,dst) FIFO, unordered across sources — like the model.
//   * Phase termination is global quiescence over *sharded* counters: each
//     node owns a (produced, consumed) pair — tasks its thread created vs.
//     tasks it finished — each written only by its owner, on its own cache
//     line. An idle worker decides "everything drained" with a two-phase
//     Dijkstra-style confirm: read every consumed counter, then every
//     produced counter; equality proves quiescence (argument in the .cpp).
//     Nothing in the task hot path touches a shared cache line.
//   * Idle workers escalate spin (cpu_pause) -> yield -> park on their
//     mailbox condvar, so oversubscribed runs (nodes >> cores) surrender
//     the core instead of burning it. Senders wake parked destinations;
//     the first worker to confirm quiescence wakes everyone.
//   * Workers then meet at a sense-reversing barrier; the main thread is
//     woken through a condvar and is afterwards the only thread touching
//     runtime state until the next phase (that handoff is the
//     synchronization point for all per-node stats).
//
// Time: task charges still accumulate *modeled* nanoseconds, so the
// compute/runtime/comm attribution in NodeStats.busy[] keeps its meaning,
// while busy_total and finish_time are *real* nanoseconds measured around
// each task — idle = elapsed - busy_total is genuine wait time.
//
// Observability: attach_shards() wires one single-writer ring + histogram
// set per worker (obs::ShardedTraceSink); every instrumentation point is
// gated on the shard pointer, and DPA_TRACE=OFF folds the pointer to null
// at compile time so the task loop carries zero instrumentation cost in
// measurement builds. arm_watchdog() starts a monitor thread that sweeps
// the quiescence counters and dumps a flight-recorder JSON instead of
// letting a wedged phase hang CI.
//
// Not supported (sim-only by design): reliability retransmit timers
// (supports_timers() is false; schedule_at panics as a backstop — the
// fabric cannot lose messages) and fault injection.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/backend.h"

namespace dpa::obs {
class TraceShard;
}  // namespace dpa::obs

namespace dpa::exec {

// Sense-reversing barrier. Each participant keeps its own sense flag
// (initially true) and passes it by pointer; the last arriver flips the
// shared sense, releasing the spinners. Reusable immediately — that is the
// point of sense reversal.
class SenseBarrier {
 public:
  explicit SenseBarrier(std::uint32_t n) : n_(n), count_(n) {}

  void arrive_and_wait(bool* my_sense);

 private:
  std::uint32_t n_;
  std::atomic<std::uint32_t> count_;
  std::atomic<bool> sense_{false};
};

class NativeBackend final : public Backend {
 public:
  // Communication/idle policy knobs. Defaults suit both the provisioned
  // case (nodes <= cores) and oversubscription; tests shrink the idle
  // ladder to force the parking path deterministically.
  struct Tuning {
    // Flush a destination's train at this depth even if its owner is still
    // busy (bounds delivery latency when the engine never calls flush()).
    std::uint32_t train_max = 16;
    // Idle escalation: cpu_pause() this many times, then sched-yield this
    // many times, then park on the mailbox condvar.
    std::uint32_t idle_spins = 64;
    std::uint32_t idle_yields = 16;
    // Parked workers re-scan for quiescence at this interval as a backstop
    // (normally a sender or the quiescence detector wakes them first).
    std::uint32_t park_timeout_us = 200;
  };

  explicit NativeBackend(std::uint32_t num_nodes);
  NativeBackend(std::uint32_t num_nodes, const Tuning& tuning);
  ~NativeBackend() override;

  BackendKind kind() const override { return BackendKind::kNative; }
  std::uint32_t num_nodes() const override {
    return std::uint32_t(nodes_.size());
  }

  HandlerId register_handler(std::string name, Handler fn) override;
  const std::string& handler_name(HandlerId id) const override {
    return handlers_[id]->name;
  }

  void send(Cpu& cpu, NodeId src, NodeId dst, HandlerId handler,
            std::shared_ptr<void> data, std::uint32_t bytes) override;

  void post(NodeId node, Task task) override;

  void flush(Cpu& cpu, NodeId node) override;

  bool supports_timers() const override { return false; }
  void schedule_at(Time at, TimerFn fn) override;

  Time begin_phase() override;
  PhaseExec run_phase() override;

  const NodeStats& node_stats(NodeId node) const override {
    return nodes_[node]->stats;
  }
  Time idle_time(NodeId node, Time phase_elapsed) const override {
    const Time idle = phase_elapsed - nodes_[node]->stats.busy_total;
    return idle > 0 ? idle : 0;
  }
  MsgStats msg_stats_total() const override;
  void reset_msg_stats() override;

  bool lossy() const override { return false; }

  bool supports_tracing() const override { return true; }
  void attach_shards(obs::ShardedTraceSink* shards) override;
  bool arm_watchdog(const WatchdogConfig& cfg) override;

  // True once the armed watchdog has fired (it fires at most once).
  bool watchdog_fired() const {
    return watchdog_fired_.load(std::memory_order_acquire);
  }

  // Process-wide default watchdog, applied to every subsequently
  // constructed NativeBackend. Bench harnesses build their Clusters deep
  // inside app runners, so the watchdog — an operational guard, one policy
  // per process — is installed here rather than threaded through every
  // app signature.
  static void set_default_watchdog(const WatchdogConfig& cfg);

  // Test-only: wedges node `id`'s worker at the top of its phase loop (it
  // stops draining work, holding no locks) until release_test_stalls().
  // Simulates a deadlocked node for the watchdog tests.
  void test_stall_node(NodeId id);
  void release_test_stalls();

 private:
  // Padded to a cache line boundary: stats and queues are written at task
  // rate by the owning worker; neighbors must not false-share.
  struct alignas(64) Node {
    // Cross-thread inbox (trains from other workers, pre-phase seeding from
    // the main thread). MPSC: producers under the mutex, drained in batches
    // by the owning worker. `parked` is guarded by mu: a producer that
    // observes it set notifies cv after enqueueing.
    std::mutex mu;
    std::deque<Task> inbox;
    // Written under mu (the producer-notify protocol is unchanged); atomic
    // so the watchdog can report park states without a happens-before edge
    // to the owning worker.
    std::atomic<bool> parked{false};
    std::condition_variable cv;
    // Self-posts from the owning worker; never locked.
    std::deque<Task> local;
    // Outbound trains: train[d] holds delivery tasks bound for node d,
    // written only by this node's worker (main-thread posts bypass trains).
    // train_pending is the total across destinations.
    std::vector<std::vector<Task>> train;
    std::uint32_t train_pending = 0;
    NodeStats stats;
    MsgStats msg;  // sent-side fields written by owner, recv-side by owner
    // Quiescence shards. produced = tasks created by this node's thread
    // (plus pre-phase seeds the main thread charged to it); consumed =
    // tasks finished here. Single writer each, own cache line; seq_cst so
    // the detector's two-pass scan linearizes (see quiescent()).
    alignas(64) std::atomic<std::uint64_t> produced{0};
    alignas(64) std::atomic<std::uint64_t> consumed{0};
  };

  struct HandlerEntry {
    std::string name;
    Handler fn;
  };

  void worker_main(NodeId id);
  void run_node_phase(Node& n, NodeId id);
  void run_task(Node& n, NodeId id, Task task);
  // Worker `id`'s trace shard, or null (no sink attached / tracing
  // compiled out — the null fold is what dead-codes the record paths).
  obs::TraceShard* shard(NodeId id) const;
  // Sum of produced - consumed across shards (instrumentation only; the
  // correctness-bearing scan is quiescent()).
  std::uint64_t outstanding() const;
  void watchdog_main();
  void watchdog_fire(const char* reason, Time elapsed, std::uint64_t epoch,
                     std::uint32_t stuck);
  // Hands self's train for `dst` to the destination mailbox (one lock).
  void flush_dest_train(Node& self, NodeId dst);
  // Flushes every non-empty train; returns true if anything departed.
  bool flush_trains(Node& self);
  bool quiescent() const;
  void wake_parked();
  Time since_phase_start(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t - phase_t0_)
        .count();
  }

  Tuning tuning_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<HandlerEntry>> handlers_;

  // Set by the first worker whose two-pass scan confirms quiescence; lets
  // the rest skip straight to the barrier (quiescence is stable within a
  // phase). Reset by begin_phase while workers are parked between phases.
  std::atomic<bool> quiesced_{false};

  // Phase start/stop plumbing. Workers park on phase_cv_ between phases;
  // run_phase publishes a new epoch to release them and waits on done
  // acknowledgment from the barrier's last wave.
  std::mutex phase_mu_;
  std::condition_variable phase_cv_;
  std::uint64_t phase_epoch_ = 0;
  std::uint64_t done_epoch_ = 0;
  bool stop_ = false;

  SenseBarrier finish_barrier_;
  std::chrono::steady_clock::time_point phase_t0_;
  // Accumulated wall-clock across completed phases: the backend's
  // monotonically increasing "now", used only for phase bracketing.
  Time clock_ns_ = 0;

  // Per-worker trace rings (null = tracing off). Written under phase_mu_
  // between phases; workers observe it through the epoch publish, the
  // watchdog reads it under phase_mu_.
  obs::ShardedTraceSink* shards_ = nullptr;

  // Stall watchdog: a monitor thread sweeping the quiescence counters.
  struct WatchdogState {
    WatchdogConfig cfg;
    std::mutex mu;
    std::condition_variable cv;
    bool stop = false;
    std::thread thread;
  };
  std::unique_ptr<WatchdogState> watchdog_;
  std::atomic<bool> watchdog_fired_{false};

  // Test-only stall hooks (see test_stall_node). The stalled worker waits
  // on stall_cv_ holding no backend locks, so the watchdog can inspect
  // everything while it is wedged.
  std::atomic<std::int32_t> stall_node_{-1};
  std::mutex stall_mu_;
  std::condition_variable stall_cv_;
  bool stall_released_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace dpa::exec
