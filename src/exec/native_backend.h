// NativeBackend: an M:N work-stealing scheduler — a pool of worker threads
// multiplexing the simulated nodes, real time, real message passing.
//
// The same runtime/engine/app stack that runs on the simulator runs here
// unchanged, but "a message" is a genuine cross-thread handoff and "phase
// elapsed" is monotonic wall-clock — so the DPA engine's aggregation and
// pipelining show up as measured host performance, not modeled cycles.
//
// Execution model:
//   * Tuning::workers host threads (default: one per core, capped at the
//     node count) each own a run queue of *node activations*. A node is
//     idle, queued, or running — never two of those at once. Producers that
//     make an idle node runnable win a CAS on its `active` flag and enqueue
//     it on the worker it last ran on (affinity); a worker whose own queue
//     is dry steals a **whole node** from the back of a victim's queue.
//     Stealing whole nodes — never individual tasks — is what keeps every
//     per-node ordering guarantee intact: a node's mailbox is still drained
//     FIFO by exactly one thread at a time, so the deterministic
//     (src, seq)-sorted accumulation commit is schedule-independent.
//   * Each node keeps an MPSC mailbox (mutex + deque) for cross-node posts
//     and an unlocked local queue for self-posts (a node's scheduler
//     kicking itself never takes a lock).
//   * send() appends a delivery task to the sending node's per-destination
//     *train* — an owner-only outbound buffer, owned since the transport
//     split by transport::InProcChannel (the backend supplies the delivery
//     sink: mailbox lock, tracing, destination activation). A train is
//     handed to the destination mailbox under ONE lock acquisition when it
//     reaches Tuning::train_max depth, when the engine calls
//     Backend::flush() at a tile/strip boundary, or — unconditionally —
//     before the node deactivates. That last rule makes trains invisible
//     to termination:
//     buffered messages always depart before their host worker can so much
//     as look for quiescence. The host fabric thus applies the paper's
//     aggregation idea to itself: per-message lock overhead is amortized
//     across a batch, exactly like per-message wire overhead is amortized
//     by pointer aggregation. In-process delivery stays lossless and
//     per-(src,dst) FIFO, unordered across sources — like the model.
//   * Phase termination is global quiescence over *sharded* counters: each
//     node owns a (produced, consumed) pair — tasks created on it vs. tasks
//     finished on it — each written only by the thread currently running
//     the node, on its own cache line. An idle worker decides "everything
//     drained" with a two-phase Dijkstra-style confirm: read every consumed
//     counter, then every produced counter; equality proves quiescence
//     (argument in the .cpp). The scan walks nodes, not workers — it is
//     oblivious to which worker hosts what.
//   * Idle workers escalate spin (cpu_pause) -> yield -> park on their own
//     condvar, so oversubscribed runs (workers >> cores) surrender the core
//     instead of burning it. Producers wake the parked owner of the queue
//     they append to; the first worker to confirm quiescence wakes everyone.
//   * Workers then meet at a sense-reversing barrier; the main thread is
//     woken through a condvar and is afterwards the only thread touching
//     runtime state until the next phase (that handoff is the
//     synchronization point for all per-node stats).
//
// Determinism argument (why stealing cannot change physics): the runtime's
// only ordering promises are per-node task FIFO and the post-quiescence
// (src, seq)-sorted accumulation commit. The `active` flag pins a node to
// at most one worker at any instant, and the handoff chain (release store
// on deactivation -> winner's CAS -> queue append under the worker mutex ->
// pop under the worker mutex) carries a happens-before edge from everything
// the previous host did to everything the next host does. So whichever
// worker runs a node sees its mailbox, local queue, trains, counters and
// stats exactly as the previous host left them — a steal is a context
// switch, not a reordering.
//
// Time: task charges still accumulate *modeled* nanoseconds, so the
// compute/runtime/comm attribution in NodeStats.busy[] keeps its meaning,
// while busy_total and finish_time are *real* nanoseconds measured around
// each task — idle = elapsed - busy_total is genuine wait time.
//
// Observability: attach_shards() wires single-writer rings + histogram
// sets (obs::ShardedTraceSink) laid out as [0, nodes) for engine-recorded
// events (engines bind shard(node)) followed by [nodes, nodes + workers)
// for backend-recorded events — a stolen node's backend events land in the
// stealing worker's shard, while its engine events stay in the node's own
// shard (single-writer holds because a node runs on one worker at a time).
// Every instrumentation point is gated on the shard pointer, and
// DPA_TRACE=OFF folds the pointer to null at compile time so the task loop
// carries zero instrumentation cost in measurement builds. arm_watchdog()
// starts a monitor thread that sweeps the per-node quiescence counters and
// dumps a flight-recorder JSON instead of letting a wedged phase hang CI.
//
// Not supported (sim-only by design): reliability retransmit timers
// (supports_timers() is false; schedule_at panics as a backstop — the
// fabric cannot lose messages) and fault injection.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/backend.h"
#include "transport/inproc_channel.h"

namespace dpa::obs {
class TraceShard;
}  // namespace dpa::obs

namespace dpa::exec {

// Sense-reversing barrier. Each participant keeps its own sense flag
// (initially true) and passes it by pointer; the last arriver flips the
// shared sense, releasing the spinners. Reusable immediately — that is the
// point of sense reversal.
class SenseBarrier {
 public:
  explicit SenseBarrier(std::uint32_t n) : n_(n), count_(n) {}

  void arrive_and_wait(bool* my_sense);

 private:
  std::uint32_t n_;
  std::atomic<std::uint32_t> count_;
  std::atomic<bool> sense_{false};
};

class NativeBackend final : public Backend,
                            private transport::InProcChannel::Sink {
 public:
  // Scheduling/communication/idle policy knobs. Defaults suit both the
  // provisioned case (cores >= nodes) and oversubscription; tests shrink
  // the idle ladder to force the parking path deterministically, and the
  // schedule fuzzer perturbs every knob here to prove physics are
  // schedule-independent.
  struct Tuning {
    // Worker pool size; 0 = min(host cores, nodes). Clamped to
    // [1, num_nodes] — more workers than nodes would only ever idle.
    std::uint32_t workers = 0;
    // Flush a destination's train at this depth even if its owner is still
    // busy (bounds delivery latency when the engine never calls flush()).
    std::uint32_t train_max = 16;
    // Idle escalation: cpu_pause() this many times, then sched-yield this
    // many times, then park on the worker condvar.
    std::uint32_t idle_spins = 64;
    std::uint32_t idle_yields = 16;
    // Parked workers re-scan for quiescence at this interval as a backstop
    // (normally a producer or the quiescence detector wakes them first).
    std::uint32_t park_timeout_us = 200;
    // Whole-node stealing on/off. Off pins every node to its affinity
    // worker — useful for isolating the affinity path in tests; the
    // park-timeout backstop keeps termination live either way.
    bool steal = true;
    // Seeds the per-worker xorshift that randomizes steal-victim order
    // (the schedule fuzzer's main lever).
    std::uint64_t steal_seed = 0x9e3779b97f4a7c15ull;
  };

  explicit NativeBackend(std::uint32_t num_nodes);
  NativeBackend(std::uint32_t num_nodes, const Tuning& tuning);
  ~NativeBackend() override;

  BackendKind kind() const override { return BackendKind::kNative; }
  std::uint32_t num_nodes() const override {
    return std::uint32_t(nodes_.size());
  }
  std::uint32_t num_workers() const {
    return std::uint32_t(workers_.size());
  }

  HandlerId register_handler(std::string name, Handler fn) override;
  const std::string& handler_name(HandlerId id) const override {
    return handlers_[id]->name;
  }

  void send(Cpu& cpu, NodeId src, NodeId dst, HandlerId handler,
            std::shared_ptr<void> data, std::uint32_t bytes) override;

  void post(NodeId node, Task task) override;

  void flush(Cpu& cpu, NodeId node) override;

  bool supports_timers() const override { return false; }
  void schedule_at(Time at, TimerFn fn) override;

  Time begin_phase() override;
  PhaseExec run_phase() override;

  const NodeStats& node_stats(NodeId node) const override {
    return nodes_[node]->stats;
  }
  Time idle_time(NodeId node, Time phase_elapsed) const override {
    const Time idle = phase_elapsed - nodes_[node]->stats.busy_total;
    return idle > 0 ? idle : 0;
  }
  MsgStats msg_stats_total() const override;
  void reset_msg_stats() override;
  SchedStats sched_stats() const override;

  bool lossy() const override { return false; }

  bool supports_tracing() const override { return true; }
  void attach_shards(obs::ShardedTraceSink* shards) override;
  bool arm_watchdog(const WatchdogConfig& cfg) override;

  // True once the armed watchdog has fired (it fires at most once).
  bool watchdog_fired() const {
    return watchdog_fired_.load(std::memory_order_acquire);
  }

  // Process-wide default watchdog, applied to every subsequently
  // constructed NativeBackend. Bench harnesses build their Clusters deep
  // inside app runners, so the watchdog — an operational guard, one policy
  // per process — is installed here rather than threaded through every
  // app signature.
  static void set_default_watchdog(const WatchdogConfig& cfg);

  // Process-wide default tuning, applied to every subsequently constructed
  // single-argument NativeBackend — the same plumbing rationale as the
  // default watchdog (--workers is a harness flag; Clusters are built deep
  // inside app runners).
  static void set_default_tuning(const Tuning& tuning);
  static Tuning default_tuning();

  // Test-only views of scheduler placement: the worker a node will be
  // enqueued on next, and the worker that last ran it (-1 before its first
  // run). Meaningful between phases, when only the caller is running.
  std::uint32_t affinity_of(NodeId id) const {
    return nodes_[id]->affinity.load(std::memory_order_relaxed);
  }
  std::int32_t last_worker(NodeId id) const {
    return nodes_[id]->last_worker.load(std::memory_order_relaxed);
  }

  // Test-only: wedges node `id` at the top of its drain loop (its host
  // worker blocks holding no locks) until release_test_stalls().
  // Simulates a deadlocked node for the watchdog tests.
  void test_stall_node(NodeId id);
  void release_test_stalls();

 private:
  // Padded to a cache line boundary: stats and queues are written at task
  // rate by the hosting worker; neighbors must not false-share.
  struct alignas(64) Node {
    // Cross-thread inbox (trains from other nodes' hosts, pre-phase seeding
    // from the main thread). MPSC: producers under the mutex, drained in
    // batches by the hosting worker.
    std::mutex mu;
    std::deque<Task> inbox;
    // Self-posts from the hosting worker; never locked (only the host
    // touches it, and the activation handoff orders host switches).
    std::deque<Task> local;
    // Outbound trains live in trains_ (transport::InProcChannel), indexed
    // by this node's id; written only by this node's host (main-thread
    // posts bypass trains).
    NodeStats stats;
    MsgStats msg;  // sent-side fields written by host, recv-side by host
    // Activation state: 0 = idle (no queued tasks anywhere... or a producer
    // is about to win the CAS), 1 = queued on some worker or running.
    // Producers CAS 0 -> 1 and enqueue on the affinity worker; the host
    // releases with the deactivation protocol in run_node(). seq_cst: the
    // idle store must be totally ordered against the post-deactivation
    // inbox recheck (see the stranded-task argument in the .cpp).
    std::atomic<std::uint32_t> active{0};
    // Worker this node is enqueued on when activated — updated by each
    // host, so a stolen node re-activates on its thief (locality follows
    // the cache lines).
    std::atomic<std::uint32_t> affinity{0};
    std::atomic<std::int32_t> last_worker{-1};
    // Quiescence shards. produced = tasks created on this node (plus
    // pre-phase seeds the main thread charged to it); consumed = tasks
    // finished here. Written only by the current host (single writer at a
    // time), own cache line; seq_cst so the detector's two-pass scan
    // linearizes (see quiescent()).
    alignas(64) std::atomic<std::uint64_t> produced{0};
    alignas(64) std::atomic<std::uint64_t> consumed{0};
  };

  // One scheduler lane. Padded: runq and counters are touched at activation
  // rate by the owner and occasionally by thieves/producers.
  struct alignas(64) Worker {
    // Guards runq and the parked flag (producer-notify protocol: a
    // producer that observes parked set notifies cv after enqueueing).
    std::mutex mu;
    std::deque<NodeId> runq;  // owner pops front; thieves pop back
    std::condition_variable cv;
    // Written under mu; atomic so the watchdog can report park states
    // without a happens-before edge to the owner.
    std::atomic<bool> parked{false};
    std::uint64_t rng = 1;  // owner-only xorshift state (victim order)
    // Relaxed counters: read mid-phase by the watchdog, summed post-phase
    // by sched_stats().
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> activations{0};
  };

  struct HandlerEntry {
    std::string name;
    Handler fn;
  };

  void worker_main(std::uint32_t w);
  void run_worker_phase(std::uint32_t w);
  // Drains node `id` to empty and deactivates it (the whole-node unit of
  // scheduling; never preempted mid-mailbox).
  void run_node(std::uint32_t w, NodeId id);
  void run_task(Node& n, NodeId id, Task task);
  // Makes `id` runnable if it is idle: CAS active 0 -> 1, enqueue on its
  // affinity worker, wake the worker if parked. Idempotent under races —
  // exactly one producer wins the CAS.
  void activate(NodeId id);
  void enqueue_node(std::uint32_t w, NodeId id);
  // Pops the front of w's own queue; -1 when empty.
  std::int32_t pop_own(std::uint32_t w);
  // One randomized sweep over the other workers' queues, stealing a whole
  // node from the back of the first non-empty one; -1 when all dry.
  std::int32_t try_steal(std::uint32_t w);
  // Worker w's trace shard (index num_nodes + w), or null (no sink
  // attached / tracing compiled out — the null fold is what dead-codes the
  // record paths).
  obs::TraceShard* worker_shard(std::uint32_t w) const;
  // Sum of produced - consumed across shards (instrumentation only; the
  // correctness-bearing scan is quiescent()).
  std::uint64_t outstanding() const;
  void watchdog_main();
  void watchdog_fire(const char* reason, Time elapsed, std::uint64_t epoch,
                     std::uint32_t stuck, const std::vector<bool>& node_stuck);
  // transport::InProcChannel::Sink — the channel calls this with a full
  // train; we hand it to the destination mailbox (one lock) and activate
  // the destination.
  void deliver_train(NodeId src, NodeId dst,
                     std::vector<Task>& batch) override;
  bool quiescent() const;
  void wake_all_workers();
  Time since_phase_start(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t - phase_t0_)
        .count();
  }

  Tuning tuning_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // Per-source outbound train buffers + flush policy (depth train_max).
  // Declared after tuning_/nodes_ — its ctor reads tuning_.train_max.
  transport::InProcChannel trains_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<HandlerEntry>> handlers_;

  // Set by the first worker whose two-pass scan confirms quiescence; lets
  // the rest skip straight to the barrier (quiescence is stable within a
  // phase). Reset by begin_phase while workers are parked between phases.
  std::atomic<bool> quiesced_{false};

  // Phase start/stop plumbing. Workers park on phase_cv_ between phases;
  // run_phase publishes a new epoch to release them and waits on done
  // acknowledgment from the barrier's last wave.
  std::mutex phase_mu_;
  std::condition_variable phase_cv_;
  std::uint64_t phase_epoch_ = 0;
  std::uint64_t done_epoch_ = 0;
  bool stop_ = false;

  SenseBarrier finish_barrier_;
  std::chrono::steady_clock::time_point phase_t0_;
  // Accumulated wall-clock across completed phases: the backend's
  // monotonically increasing "now", used only for phase bracketing.
  Time clock_ns_ = 0;

  // Trace rings (null = tracing off): node shards [0, nodes) are written
  // by engines, worker shards [nodes, nodes + workers) by the backend.
  // Written under phase_mu_ between phases; workers observe it through the
  // epoch publish, the watchdog reads it under phase_mu_.
  obs::ShardedTraceSink* shards_ = nullptr;

  // Stall watchdog: a monitor thread sweeping the quiescence counters.
  struct WatchdogState {
    WatchdogConfig cfg;
    std::mutex mu;
    std::condition_variable cv;
    bool stop = false;
    std::thread thread;
  };
  std::unique_ptr<WatchdogState> watchdog_;
  std::atomic<bool> watchdog_fired_{false};

  // Test-only stall hooks (see test_stall_node). The stalled worker waits
  // on stall_cv_ holding no backend locks, so the watchdog can inspect
  // everything while it is wedged.
  std::atomic<std::int32_t> stall_node_{-1};
  std::mutex stall_mu_;
  std::condition_variable stall_cv_;
  bool stall_released_ = false;

  std::vector<std::thread> threads_;
};

// Scoped process-wide default tuning: installs `tuning` for its lifetime
// and restores the previous default on destruction. The schedule fuzzer
// and the --workers determinism grid wrap each configuration in one of
// these so app runners (which construct their own Clusters) pick it up.
class ScopedDefaultTuning {
 public:
  explicit ScopedDefaultTuning(const NativeBackend::Tuning& tuning)
      : saved_(NativeBackend::default_tuning()) {
    NativeBackend::set_default_tuning(tuning);
  }
  ~ScopedDefaultTuning() { NativeBackend::set_default_tuning(saved_); }

  ScopedDefaultTuning(const ScopedDefaultTuning&) = delete;
  ScopedDefaultTuning& operator=(const ScopedDefaultTuning&) = delete;

 private:
  NativeBackend::Tuning saved_;
};

}  // namespace dpa::exec
