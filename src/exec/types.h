// Execution-substrate vocabulary: the types every backend-neutral layer
// (gas, runtime, apps) programs against.
//
// Historically these lived in sim/ — the simulator was the only execution
// substrate. With the native (threaded) backend they are the *contract*
// between the runtime and whichever substrate runs it, so they live here
// and sim/ re-exports them under its old names.
//
// Time is always nanoseconds. On the simulator it is modeled machine time;
// on the native backend task charges still accumulate modeled time (so the
// breakdown attribution survives), while phase elapsed time is real
// monotonic wall-clock.
#pragma once

#include <cstdint>
#include <memory>

#include "support/assert.h"
#include "support/inline_fn.h"

namespace dpa::exec {

using Time = std::int64_t;  // nanoseconds
using NodeId = std::uint32_t;

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

constexpr double to_seconds(Time t) { return double(t) / double(kSecond); }
constexpr double to_micros(Time t) { return double(t) / double(kMicrosecond); }

// Which execution substrate a Cluster runs on.
enum class BackendKind : std::uint8_t {
  kSim,     // deterministic discrete-event simulator (modeled time)
  kNative,  // M:N worker pool over the nodes, real monotonic time
  kProc,    // worker processes over socketpairs, one NativeBackend each
};

// Where a charged nanosecond goes in the breakdown figures.
enum class Work : std::uint8_t {
  kCompute = 0,  // application work (force interactions, relaxation, ...)
  kRuntime = 1,  // scheduling: M/D updates, thread create/dispatch, hashing
  kComm = 2,     // send/receive software overhead, marshalling
};
constexpr int kNumWorkKinds = 3;

// Execution context handed to every task; accumulates charged time.
// Concrete (never virtual): charge() is the single hottest call in the
// tree, and both backends want the same plain counter bumps.
class Cpu {
 public:
  Cpu(NodeId node, Time start) : node_(node), start_(start) {}

  void charge(Time ns, Work kind = Work::kCompute) {
    DPA_CHECK(ns >= 0) << "negative charge: " << ns;
    used_total_ += ns;
    used_[int(kind)] += ns;
  }

  // The node-local logical time: task start plus everything charged so far.
  Time logical_now() const { return start_ + used_total_; }
  Time used_total() const { return used_total_; }
  Time used(Work kind) const { return used_[int(kind)]; }
  NodeId node_id() const { return node_; }

 private:
  NodeId node_;
  Time start_;
  Time used_total_ = 0;
  Time used_[kNumWorkKinds] = {0, 0, 0};
};

// Node tasks capture a handler pointer plus a Packet (message delivery) at
// most; like the simulator's events they stay inline and never
// heap-allocate in-tree.
using Task = InlineFn<void(Cpu&), 64>;

// Raw deferred event for the reliability layer's retransmit timers
// (sim backend only; the native fabric is in-process and lossless).
using TimerFn = InlineFn<void(), 64>;

using HandlerId = std::uint16_t;

// An active message as the destination handler sees it. The whole
// reproduction shares one host address space, so payloads travel as
// shared_ptr<void> plus a declared byte size used for costing.
struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  HandlerId handler = 0;
  std::shared_ptr<void> data;  // handler-defined payload
  std::uint32_t bytes = 0;     // modeled wire size (payload incl. headers)
};

// Runs on the destination node, in a destination-node task context.
using Handler = InlineFn<void(Cpu&, const Packet&), 48>;

// Per-node execution accounting for the last phase. On the simulator every
// field is modeled time; on the native backend busy[] keeps the modeled
// charge attribution while busy_total/finish_time are real wall-clock, so
// idle = elapsed - busy_total stays meaningful.
struct NodeStats {
  Time busy[kNumWorkKinds] = {0, 0, 0};
  Time busy_total = 0;
  Time finish_time = 0;  // time the node last stopped being busy
  std::uint64_t tasks_run = 0;

  void reset() { *this = NodeStats{}; }
};

// Scheduler-level counters for the last phase (native worker pool only;
// all-zero on the simulator, which has no workers). These are worker
// properties, not node properties: with M:N scheduling a node has no park
// state of its own — it is queued, running on some worker, or idle.
struct SchedStats {
  // Condvar parks taken by idle workers after the spin -> yield escalation
  // ran dry.
  std::uint64_t parks = 0;
  // Whole-node activations stolen from another worker's run queue.
  std::uint64_t steals = 0;
  // idle -> queued node transitions (each enqueues one node activation).
  std::uint64_t activations = 0;
};

// Per-node messaging statistics (the FM layer's units, shared by both
// backends so harnesses print one table).
struct MsgStats {
  std::uint64_t msgs_sent = 0;   // logical messages (pre-segmentation)
  std::uint64_t frags_sent = 0;  // wire fragments
  std::uint64_t msgs_recv = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  // Native backend only: destination-mailbox handoffs (each train moves a
  // batch of messages under one lock). trains_sent <= msgs_sent; the gap is
  // the per-message locking the trains amortized away. Zero on the
  // simulator, whose FM layer delivers through the modeled network instead.
  std::uint64_t trains_sent = 0;

  void reset() { *this = MsgStats{}; }
};

}  // namespace dpa::exec
