// SimBackend: the discrete-event simulator behind the Backend interface.
//
// Owns the sim::Machine (engine + LogGP network + node processors) and the
// fm::FmLayer (active messages with MTU segmentation) exactly as the
// runtime used them before the Backend split. Behavior-preserving by
// construction: every call forwards to the same machine/fm entry points in
// the same order, so simulations are byte-identical to the pre-Backend tree
// (golden-checked).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "exec/backend.h"
#include "fm/fm.h"
#include "sim/machine.h"
#include "transport/sim_channel.h"

namespace dpa::exec {

class SimBackend final : public Backend {
 public:
  SimBackend(std::uint32_t num_nodes, const sim::NetParams& params)
      : machine_(num_nodes, params), fm_(machine_) {}

  BackendKind kind() const override { return BackendKind::kSim; }
  std::uint32_t num_nodes() const override { return machine_.num_nodes(); }

  HandlerId register_handler(std::string name, Handler fn) override {
    return fm_.register_handler(std::move(name), std::move(fn));
  }
  const std::string& handler_name(HandlerId id) const override {
    return fm_.handler_name(id);
  }

  void send(Cpu& cpu, NodeId src, NodeId dst, HandlerId handler,
            std::shared_ptr<void> data, std::uint32_t bytes) override {
    // Route through the transport::Channel view of the FM layer — one
    // forwarding hop, same fm::FmLayer::send call as the pre-transport
    // tree, so modeled time and goldens are unchanged.
    transport::TrainItem item;
    item.packet = Packet{src, dst, handler, std::move(data), bytes};
    channel_.send_train(&cpu, src, dst, std::move(item));
  }

  void post(NodeId node, Task task) override {
    machine_.node(node).post(std::move(task));
  }

  bool supports_timers() const override { return true; }

  void schedule_at(Time at, TimerFn fn) override {
    machine_.engine().schedule_at(at, std::move(fn));
  }

  Time begin_phase() override {
    machine_.begin_phase();
    fm_.reset_stats();
    return machine_.phase_start();
  }

  PhaseExec run_phase() override {
    const std::uint64_t before = machine_.engine().events_processed();
    PhaseExec out;
    out.elapsed = machine_.run_phase();
    out.events = machine_.engine().events_processed() - before;
    return out;
  }

  const NodeStats& node_stats(NodeId node) const override {
    return machine_.node(node).stats();
  }
  Time idle_time(NodeId node, Time phase_elapsed) const override {
    return machine_.idle_time(node, phase_elapsed);
  }
  MsgStats msg_stats_total() const override { return fm_.aggregate_stats(); }
  void reset_msg_stats() override { fm_.reset_stats(); }

  bool lossy() const override { return machine_.network().injector() != nullptr; }

  // Traces through sim_machine()->set_trace() (the Tracer path), not
  // worker shards — there are no worker threads here.
  bool supports_tracing() const override { return true; }

  sim::Machine* sim_machine() override { return &machine_; }
  fm::FmLayer& fm() { return fm_; }
  transport::Channel& channel() { return channel_; }

 private:
  sim::Machine machine_;
  fm::FmLayer fm_;
  transport::SimChannel channel_{fm_};  // declared after fm_: wraps it
};

}  // namespace dpa::exec
