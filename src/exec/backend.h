// Backend: the execution substrate a Cluster runs on.
//
// Everything the runtime layer used to hardwire against sim::Machine +
// fm::FmLayer goes through this interface instead: node count, task spawn,
// active-message send + handler registration, the time source for
// reliability timers, and the phase barrier. Two implementations:
//
//   * SimBackend    — the deterministic discrete-event simulator. Modeled
//                     LogGP network, modeled time, byte-identical to the
//                     pre-Backend tree.
//   * NativeBackend — an M:N pool of worker threads multiplexing the
//                     simulated nodes (whole-node work stealing, MPSC
//                     mailboxes, a sense-reversing phase barrier). Messages
//                     are real cross-thread handoffs; phase elapsed time is
//                     real monotonic wall-clock, so the DPA engine's tiling
//                     and aggregation produce *measured* wins, not modeled
//                     ones.
//
// The contract the runtime relies on:
//   * Tasks posted to a node run serially, in post order, on that node.
//   * A handler runs as a task on the destination node; a message sent
//     during a phase is delivered within the same phase.
//   * begin_phase() zeroes per-node and messaging stats; run_phase()
//     returns only when the whole machine is quiescent (no queued tasks,
//     no in-flight messages).
//   * After run_phase() returns, the caller (PhaseRunner) is the only
//     thread touching runtime state until the next run_phase().
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/types.h"

namespace dpa::sim {
class Machine;
struct NetParams;
}  // namespace dpa::sim

namespace dpa::obs {
class ShardedTraceSink;
}  // namespace dpa::obs

namespace dpa::exec {

// What run_phase() measured. `events` is the substrate's own unit of
// progress: discrete events processed on the simulator, tasks executed on
// the native backend.
struct PhaseExec {
  Time elapsed = 0;
  std::uint64_t events = 0;
};

// Stall-watchdog policy (native backend). Default-constructed = disabled;
// --watchdog-ms on the backend-aware benches arms both triggers. The
// watchdog is a monitor thread that sweeps the quiescence counters every
// scan_interval; it fires — dumps a flight-recorder JSON and (when fatal)
// aborts — when a phase outlives phase_deadline, or when the counters make
// no progress for stuck_scans consecutive sweeps while tasks are still
// outstanding. Both triggers must be sized well above the longest
// legitimate task: the watchdog cannot tell a wedged phase from one very
// slow task, only from the counters' point of view they look the same.
struct WatchdogConfig {
  Time phase_deadline = 0;        // wall ns per phase; 0 = no deadline
  std::uint32_t stuck_scans = 0;  // no-progress sweeps before firing; 0 = off
  Time scan_interval = 50'000'000;  // ns between watchdog sweeps
  std::string dump_path;  // flight-recorder JSON ("" = stderr summary only)
  bool fatal = true;      // abort after dumping (fail loudly instead of hang)

  bool enabled() const { return phase_deadline > 0 || stuck_scans > 0; }
};

// How the multi-process backend merges a registered memory span back into
// the coordinator at the phase barrier.
enum class SpanMerge : std::uint8_t {
  kBytes,   // owner's bytes win: ship changed runs, copy them over
  kSumU64,  // commutative counters: ship per-lane u64 deltas, add them
};

// A host-memory region that phase tasks may write and the phase result
// depends on. Single-process backends share the address space and ignore
// these; the multi-process backend diffs each worker's spans against its
// fork-time snapshot and applies the changes in the coordinator. Spans
// must cover every phase-visible write (global-heap objects are registered
// automatically; apps register their host arrays and counters).
struct PhaseSpan {
  const void* addr = nullptr;
  std::uint64_t bytes = 0;
  SpanMerge merge = SpanMerge::kBytes;
};

// How a handler payload crosses a process boundary: marshal flattens the
// in-memory payload to bytes, unmarshal rebuilds it on the other side.
// Single-process backends never invoke these.
struct WireCodec {
  std::function<std::vector<std::uint8_t>(const void* data,
                                          std::uint32_t bytes)>
      marshal;
  std::function<std::shared_ptr<void>(const std::uint8_t* bytes,
                                      std::size_t len)>
      unmarshal;
};

// Aggregate wire-transport counters for the last phase, merged across all
// worker processes. All-zero on backends without a byte-stream fabric.
struct WireStatsTotal {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_recv = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t payloads_recv = 0;
  std::uint64_t retries = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_recv = 0;
  std::uint64_t dup_msgs_dropped = 0;
};

class Backend {
 public:
  virtual ~Backend() = default;

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  virtual BackendKind kind() const = 0;
  virtual std::uint32_t num_nodes() const = 0;

  // --- Active messages -----------------------------------------------
  // Registers a handler (same id on every node). Must happen before any
  // send and before the first run_phase().
  virtual HandlerId register_handler(std::string name, Handler fn) = 0;
  virtual const std::string& handler_name(HandlerId id) const = 0;

  // Sends from node `src`, called from inside a task running on `src`.
  // Charges send overhead (Work::kComm) to `cpu` per the backend's cost
  // model; the handler runs as a task on `dst`.
  virtual void send(Cpu& cpu, NodeId src, NodeId dst, HandlerId handler,
                    std::shared_ptr<void> data, std::uint32_t bytes) = 0;

  // --- Task spawn ----------------------------------------------------
  // Enqueues a task on `node`. Tasks run serially in post order.
  virtual void post(NodeId node, Task task) = 0;

  // --- Outbound flush ------------------------------------------------
  // Pushes any messages the backend has buffered on `node`'s outbound path
  // to their destinations (the native backend's per-destination trains).
  // Must be called from a task running on `node`. The runtime calls it
  // where it flushes its own aggregation buffers (tile/strip boundaries),
  // so fabric latency tracks the engine's batching policy; every backend
  // also implies a flush whenever a node runs out of local work, so phase
  // termination never depends on this hook being called. No-op on the
  // simulator — its FM layer hands messages to the modeled network eagerly.
  virtual void flush(Cpu& cpu, NodeId node) {
    (void)cpu;
    (void)node;
  }

  // --- Time source ---------------------------------------------------
  // Whether schedule_at() works here. The reliability/retry protocol needs
  // deferred timers; configurations that enable it must check this up
  // front (PhaseRunner does, at construction) instead of finding out from
  // a mid-phase panic.
  virtual bool supports_timers() const = 0;

  // Schedules `fn` at absolute time `at` (reliability retransmit timers).
  // Only valid when supports_timers(): the native fabric is in-process and
  // lossless, so the retry protocol — and therefore this hook — never
  // engages there.
  virtual void schedule_at(Time at, TimerFn fn) = 0;

  // --- Phase barrier -------------------------------------------------
  // Marks the start of a timed phase (zeroes node + messaging stats);
  // returns the phase-start timestamp in this backend's clock.
  virtual Time begin_phase() = 0;

  // Runs the phase to global quiescence and returns what it measured.
  virtual PhaseExec run_phase() = 0;

  // --- Phase accounting (valid after run_phase) ----------------------
  virtual const NodeStats& node_stats(NodeId node) const = 0;
  // Scheduler counters for the last phase (worker parks / whole-node
  // steals / activations). All-zero on backends without a worker pool.
  virtual SchedStats sched_stats() const { return SchedStats{}; }
  // Per-node idle time for the last phase: elapsed - busy, clamped at 0.
  virtual Time idle_time(NodeId node, Time phase_elapsed) const = 0;
  virtual MsgStats msg_stats_total() const = 0;
  virtual void reset_msg_stats() = 0;

  // True when a fault injector is armed (messages may be dropped /
  // duplicated / delayed); engages the runtime's reliability layer.
  virtual bool lossy() const = 0;

  // --- Observability ---------------------------------------------------
  // Whether this backend can record structured trace events. The sim
  // backend reports through sim_machine()->set_trace(); the native backend
  // through attach_shards(). A backend that supports neither returns false
  // and harnesses warn instead of writing event-free trace files.
  virtual bool supports_tracing() const { return false; }

  // Native-style trace attachment: one single-writer ring per worker
  // thread (see obs/shard_sink.h). Pass null to detach. Must be called
  // between phases. No-op on backends without worker shards.
  virtual void attach_shards(obs::ShardedTraceSink* shards) { (void)shards; }

  // Arms the stall watchdog; returns false when this backend has no
  // watchdog (the simulator is deterministic — it cannot stall, it can
  // only be wrong). Must be called between phases.
  virtual bool arm_watchdog(const WatchdogConfig& cfg) {
    (void)cfg;
    return false;
  }

  // --- Multi-process hooks ---------------------------------------------
  // All of these are meaningful only on BackendKind::kProc; the defaults
  // make single-process backends behave exactly as before, so callers may
  // use them unconditionally.

  // Registers the byte codec for one handler's payloads. Must happen after
  // register_handler and before the first run_phase.
  virtual void set_wire_codec(HandlerId handler, WireCodec codec) {
    (void)handler;
    (void)codec;
  }

  // Installs the producer of the durable span list (global-heap objects,
  // registered once at cluster construction). Called with the vector to
  // append to; runs in the coordinator before each fork.
  virtual void set_span_source(
      std::function<void(std::vector<PhaseSpan>&)> fn) {
    (void)fn;
  }

  // Registers / unregisters a transient span (an app's per-step host array
  // or counter) for the next run_phase. remove is keyed by addr.
  virtual void add_phase_span(PhaseSpan span) { (void)span; }
  virtual void remove_phase_span(const void* addr) { (void)addr; }

  // The phase epilogue runs once per node after quiescence, *in the
  // process that owns the node*, and returns that node's result blob
  // (commit order, done flags, stats — PhaseRunner defines the encoding).
  // Single-process backends run it inline on the caller's thread from
  // collect_epilogues(); the multi-process backend runs it in each worker
  // and ships the blobs home. An empty blob means the owning process died.
  using PhaseEpilogue = std::function<std::string(NodeId)>;
  void set_phase_epilogue(PhaseEpilogue fn) { phase_epilogue_ = std::move(fn); }
  virtual std::vector<std::string> collect_epilogues(std::uint32_t nodes) {
    std::vector<std::string> blobs(nodes);
    for (NodeId n = 0; n < nodes; ++n) blobs[n] = phase_epilogue_(n);
    return blobs;
  }

  // Human-readable explanation of an incomplete phase (which worker died,
  // which nodes it owned). Empty when the last phase completed.
  virtual std::string phase_diagnostics() const { return {}; }

  virtual WireStatsTotal wire_stats_total() const { return {}; }

  // Escape hatch for sim-specific callers (trace attachment, network
  // stats, targeted fault injection in tests). Null on the native backend.
  virtual sim::Machine* sim_machine() { return nullptr; }

  bool is_sim() const { return kind() == BackendKind::kSim; }

 protected:
  Backend() = default;

  PhaseEpilogue phase_epilogue_;  // installed by PhaseRunner before run()
};

// RAII registration of a transient phase span (no-op on single-process
// backends, matching add/remove above).
class ScopedPhaseSpan {
 public:
  ScopedPhaseSpan(Backend& backend, PhaseSpan span)
      : backend_(backend), addr_(span.addr) {
    backend_.add_phase_span(span);
  }
  ~ScopedPhaseSpan() { backend_.remove_phase_span(addr_); }

  ScopedPhaseSpan(const ScopedPhaseSpan&) = delete;
  ScopedPhaseSpan& operator=(const ScopedPhaseSpan&) = delete;

 private:
  Backend& backend_;
  const void* addr_;
};

// Factory. `params` configures the simulated network; the native backend
// has no modeled network and ignores everything but the node count.
std::unique_ptr<Backend> make_backend(BackendKind kind, std::uint32_t nodes,
                                      const sim::NetParams& params);

}  // namespace dpa::exec
