#include "exec/native_backend.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/shard_sink.h"
#include "support/assert.h"
#include "support/parallel.h"

namespace dpa::exec {

namespace {

// Process-wide defaults, copied into every NativeBackend at construction
// (see set_default_watchdog / set_default_tuning).
std::mutex g_defaults_mu;
WatchdogConfig g_default_watchdog;
NativeBackend::Tuning g_default_tuning;

// The node the current thread is executing a task for (-1 outside
// run_node, including on the main thread). Lets post() skip the mailbox
// lock for self-posts and route cross-node work through the node's trains.
thread_local std::int32_t tls_node = -1;
// The worker lane this thread is (-1 on the main thread and the watchdog):
// names the trace shard backend events record into.
thread_local std::int32_t tls_worker = -1;

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

// splitmix64: decorrelates per-worker RNG streams from one seed.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint32_t resolve_workers(const NativeBackend::Tuning& t,
                              std::uint32_t num_nodes) {
  std::uint32_t w = t.workers != 0
                        ? t.workers
                        : std::uint32_t(dpa::host_concurrency());
  if (w < 1) w = 1;
  // More workers than nodes would only ever idle: a node is the scheduling
  // unit, and at most num_nodes of them can be active at once.
  return std::min(w, num_nodes);
}

}  // namespace

void SenseBarrier::arrive_and_wait(bool* my_sense) {
  const bool sense = *my_sense;
  if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    count_.store(n_, std::memory_order_relaxed);
    sense_.store(sense, std::memory_order_release);
  } else {
    int spins = 0;
    while (sense_.load(std::memory_order_acquire) != sense) {
      if (++spins < 1024) {
        cpu_pause();
      } else {
        std::this_thread::yield();
      }
    }
  }
  *my_sense = !sense;
}

NativeBackend::NativeBackend(std::uint32_t num_nodes)
    : NativeBackend(num_nodes, default_tuning()) {}

NativeBackend::NativeBackend(std::uint32_t num_nodes, const Tuning& tuning)
    : tuning_(tuning),
      trains_(num_nodes, tuning.train_max, *this),
      finish_barrier_(resolve_workers(tuning, num_nodes)) {
  DPA_CHECK(num_nodes > 0);
  DPA_CHECK(tuning_.train_max > 0);
  const std::uint32_t num_workers = resolve_workers(tuning_, num_nodes);
  nodes_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>());
    // Initial placement: round-robin. Re-activation follows last_worker
    // from then on, so steady-state placement is steal-driven.
    nodes_.back()->affinity.store(i % num_workers, std::memory_order_relaxed);
  }
  workers_.reserve(num_workers);
  for (std::uint32_t w = 0; w < num_workers; ++w) {
    workers_.push_back(std::make_unique<Worker>());
    // Never zero (xorshift's fixed point); decorrelated across workers so
    // two thieves scanning at once fan out over different victims.
    workers_.back()->rng = mix64(tuning_.steal_seed + w) | 1u;
  }
  threads_.reserve(num_workers);
  for (std::uint32_t w = 0; w < num_workers; ++w)
    threads_.emplace_back([this, w] { worker_main(w); });
  WatchdogConfig default_cfg;
  {
    std::lock_guard<std::mutex> lk(g_defaults_mu);
    default_cfg = g_default_watchdog;
  }
  if (default_cfg.enabled()) arm_watchdog(default_cfg);
}

NativeBackend::~NativeBackend() {
  // The watchdog references node state; retire it before the workers.
  if (watchdog_ != nullptr) {
    {
      std::lock_guard<std::mutex> lk(watchdog_->mu);
      watchdog_->stop = true;
    }
    watchdog_->cv.notify_all();
    watchdog_->thread.join();
  }
  {
    std::lock_guard<std::mutex> lk(phase_mu_);
    stop_ = true;
  }
  phase_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void NativeBackend::set_default_watchdog(const WatchdogConfig& cfg) {
  std::lock_guard<std::mutex> lk(g_defaults_mu);
  g_default_watchdog = cfg;
}

void NativeBackend::set_default_tuning(const Tuning& tuning) {
  std::lock_guard<std::mutex> lk(g_defaults_mu);
  g_default_tuning = tuning;
}

NativeBackend::Tuning NativeBackend::default_tuning() {
  std::lock_guard<std::mutex> lk(g_defaults_mu);
  return g_default_tuning;
}

void NativeBackend::attach_shards(obs::ShardedTraceSink* shards) {
  if (!obs::kTraceEnabled) shards = nullptr;  // OFF builds never attach
  if (shards != nullptr) {
    // Sessions size the sink for the node shards (engines bind those);
    // append the worker shards backend events record into.
    shards->grow(num_nodes() + num_workers());
  }
  // Under phase_mu_: workers observe the pointer through the next epoch
  // publish, the watchdog reads it under the same mutex.
  std::lock_guard<std::mutex> lk(phase_mu_);
  shards_ = shards;
}

obs::TraceShard* NativeBackend::worker_shard(std::uint32_t w) const {
  if constexpr (!obs::kTraceEnabled) return nullptr;
  return shards_ != nullptr ? &shards_->shard(num_nodes() + w) : nullptr;
}

bool NativeBackend::arm_watchdog(const WatchdogConfig& cfg) {
  if (!cfg.enabled()) return true;
  DPA_CHECK(watchdog_ == nullptr) << "watchdog already armed";
  DPA_CHECK(cfg.scan_interval > 0);
  watchdog_ = std::make_unique<WatchdogState>();
  watchdog_->cfg = cfg;
  watchdog_->thread = std::thread([this] { watchdog_main(); });
  return true;
}

void NativeBackend::test_stall_node(NodeId id) {
  std::lock_guard<std::mutex> lk(stall_mu_);
  stall_released_ = false;
  stall_node_.store(std::int32_t(id), std::memory_order_release);
}

void NativeBackend::release_test_stalls() {
  {
    std::lock_guard<std::mutex> lk(stall_mu_);
    stall_released_ = true;
    stall_node_.store(-1, std::memory_order_release);
  }
  stall_cv_.notify_all();
}

HandlerId NativeBackend::register_handler(std::string name, Handler fn) {
  // Registration happens between phases (the main thread is the only one
  // running); workers observe the table through the next epoch publish.
  DPA_CHECK(handlers_.size() < 0xffff) << "handler table full";
  auto entry = std::make_unique<HandlerEntry>();
  entry->name = std::move(name);
  entry->fn = std::move(fn);
  handlers_.push_back(std::move(entry));
  return HandlerId(handlers_.size() - 1);
}

void NativeBackend::activate(NodeId id) {
  Node& n = *nodes_[id];
  std::uint32_t expected = 0;
  // seq_cst pairs with the deactivation protocol in run_node: the winner's
  // CAS is ordered after the host's idle store, so exactly one thread owns
  // the enqueue. Losers are done — the node is already queued or running,
  // and the eventual host drains the mailbox they just appended to.
  if (!n.active.compare_exchange_strong(expected, 1,
                                        std::memory_order_seq_cst))
    return;
  enqueue_node(n.affinity.load(std::memory_order_relaxed), id);
}

void NativeBackend::enqueue_node(std::uint32_t w, NodeId id) {
  Worker& wk = *workers_[w];
  bool wake;
  {
    std::lock_guard<std::mutex> lk(wk.mu);
    wk.runq.push_back(id);
    wake = wk.parked.load(std::memory_order_relaxed);
  }
  wk.activations.fetch_add(1, std::memory_order_relaxed);
  if (wake) wk.cv.notify_one();
}

std::int32_t NativeBackend::pop_own(std::uint32_t w) {
  Worker& wk = *workers_[w];
  std::lock_guard<std::mutex> lk(wk.mu);
  if (wk.runq.empty()) return -1;
  const NodeId id = wk.runq.front();
  wk.runq.pop_front();
  return std::int32_t(id);
}

std::int32_t NativeBackend::try_steal(std::uint32_t w) {
  const std::uint32_t num_workers = std::uint32_t(workers_.size());
  if (num_workers <= 1) return -1;
  Worker& self = *workers_[w];
  // xorshift64 over the victim ring: one sweep per call, starting at a
  // seeded-random offset so concurrent thieves fan out. Stealing from the
  // BACK takes the node the victim would reach last — the one whose cache
  // lines the victim is least likely to still own.
  std::uint64_t x = self.rng;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  self.rng = x;
  const std::uint32_t start = std::uint32_t(x % (num_workers - 1));
  for (std::uint32_t k = 0; k < num_workers - 1; ++k) {
    const std::uint32_t v =
        (w + 1 + (start + k) % (num_workers - 1)) % num_workers;
    Worker& vic = *workers_[v];
    std::int32_t got = -1;
    {
      std::lock_guard<std::mutex> lk(vic.mu);
      if (!vic.runq.empty()) {
        got = std::int32_t(vic.runq.back());
        vic.runq.pop_back();
      }
    }
    if (got >= 0) {
      self.steals.fetch_add(1, std::memory_order_relaxed);
      if (obs::TraceShard* const sh = worker_shard(w); sh != nullptr)
        sh->instant(obs::Ev::kSteal, NodeId(got),
                    since_phase_start(std::chrono::steady_clock::now()), v);
      return got;
    }
  }
  return -1;
}

void NativeBackend::deliver_train(NodeId src, NodeId dst,
                                  std::vector<Task>& batch) {
  Node& dn = *nodes_[dst];
  // Trains are flushed only by the node's hosting worker (the channel's
  // depth-trigger on buffer() or flush_src), so tls_worker names the shard.
  obs::TraceShard* const sh =
      tls_worker >= 0 ? worker_shard(std::uint32_t(tls_worker)) : nullptr;
  const std::uint64_t depth = batch.size();
  Time w0 = 0, w1 = 0;
  std::size_t inbox_depth = 0;
  if (sh != nullptr) w0 = since_phase_start(std::chrono::steady_clock::now());
  {
    std::lock_guard<std::mutex> lk(dn.mu);
    if (sh != nullptr) {
      w1 = since_phase_start(std::chrono::steady_clock::now());
      inbox_depth = dn.inbox.size() + batch.size();
    }
    for (auto& t : batch) dn.inbox.push_back(std::move(t));
  }
  // After the mailbox append: the destination's host (whoever wins the
  // activation) is guaranteed to see the batch.
  activate(dst);
  if (sh != nullptr) {
    sh->span(obs::Ev::kMailboxWait, src, w0, w1, 0, dst);
    obs::TraceEvent flush_ev;
    flush_ev.kind = obs::Ev::kTrainFlush;
    flush_ev.node = src;
    flush_ev.peer = dst;
    flush_ev.at = w1;
    flush_ev.arg = depth;
    sh->record(flush_ev);
    sh->profile.mailbox_wait_ns.add(std::uint64_t(w1 - w0));
    sh->profile.train_occupancy.add(depth);
    sh->profile.queue_depth.add(inbox_depth);
  }
}

void NativeBackend::post(NodeId node, Task task) {
  DPA_DCHECK(node < nodes_.size());
  // The produced-shard bump must land strictly before the task becomes
  // runnable anywhere: a scan that misses the task's consumption must also
  // account it as produced. Tasks buffered in a train count as produced —
  // that is what keeps the phase alive until their owner flushes them.
  if (tls_node >= 0) {
    Node& self = *nodes_[tls_node];
    self.produced.fetch_add(1, std::memory_order_seq_cst);
    if (tls_node == std::int32_t(node)) {
      // Self-post: the node is active (we are inside one of its tasks), so
      // no activation is needed — run_node drains local before it can even
      // consider deactivating.
      self.local.push_back(std::move(task));
      return;
    }
    // The channel auto-flushes the destination train at train_max depth.
    trains_.buffer(NodeId(tls_node), node, std::move(task));
    return;
  }
  // Main thread: pre-phase seeding. Counted on the destination's shard —
  // single-writer still holds because workers are parked between phases
  // (the epoch publish orders these writes before the phase releases).
  Node& dn = *nodes_[node];
  dn.produced.fetch_add(1, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lk(dn.mu);
    dn.inbox.push_back(std::move(task));
  }
  activate(node);
}

void NativeBackend::send(Cpu& cpu, NodeId src, NodeId dst, HandlerId handler,
                         std::shared_ptr<void> data, std::uint32_t bytes) {
  (void)cpu;  // the real send cost is measured, not charged
  DPA_DCHECK(handler < handlers_.size());
  Node& sn = *nodes_[src];
  ++sn.msg.msgs_sent;
  ++sn.msg.frags_sent;  // no MTU segmentation in-process
  sn.msg.bytes_sent += bytes;

  const HandlerEntry* e = handlers_[handler].get();
  Packet pkt{src, dst, handler, std::move(data), bytes};
  Node* dn = nodes_[dst].get();
  post(dst, [e, dn, pkt = std::move(pkt)](Cpu& task_cpu) {
    ++dn->msg.msgs_recv;
    dn->msg.bytes_recv += pkt.bytes;
    e->fn(task_cpu, pkt);
  });
}

void NativeBackend::flush(Cpu& cpu, NodeId node) {
  (void)cpu;  // lock handoff cost is measured, not charged
  DPA_DCHECK(node < nodes_.size());
  DPA_DCHECK(tls_node == std::int32_t(node))
      << "Backend::flush must run on the node it flushes";
  trains_.flush_src(node);
}

void NativeBackend::schedule_at(Time at, TimerFn fn) {
  (void)at;
  (void)fn;
  DPA_PANIC(
      "NativeBackend has no deferred timers (supports_timers() is false): "
      "the in-process fabric is lossless, so the reliability/retry protocol "
      "(the only schedule_at user) must stay on the sim backend");
}

Time NativeBackend::begin_phase() {
  DPA_CHECK(quiescent()) << "begin_phase with tasks still outstanding";
  quiesced_.store(false, std::memory_order_relaxed);
  for (NodeId i = 0; i < NodeId(nodes_.size()); ++i) {
    Node* n = nodes_[i].get();
    n->stats.reset();
    n->msg.reset();
    DPA_CHECK(n->inbox.empty() && n->local.empty() &&
              trains_.pending(i) == 0);
    DPA_CHECK(n->active.load(std::memory_order_relaxed) == 0)
        << "begin_phase with a node still queued";
  }
  trains_.reset_stats();
  for (auto& w : workers_) {
    DPA_CHECK(w->runq.empty());
    w->parks.store(0, std::memory_order_relaxed);
    w->steals.store(0, std::memory_order_relaxed);
    w->activations.store(0, std::memory_order_relaxed);
  }
  // Shard timestamps are phase-relative at the record site; anchoring them
  // to the accumulated clock keeps multi-phase traces monotone against the
  // main-thread tracer's phase markers.
  if (shards_ != nullptr) shards_->set_base(clock_ns_);
  return clock_ns_;
}

PhaseExec NativeBackend::run_phase() {
  phase_t0_ = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lk(phase_mu_);
    ++phase_epoch_;
  }
  phase_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(phase_mu_);
    phase_cv_.wait(lk, [this] { return done_epoch_ == phase_epoch_; });
  }
  PhaseExec out;
  out.elapsed = since_phase_start(std::chrono::steady_clock::now());
  for (const auto& n : nodes_) out.events += n->stats.tasks_run;
  clock_ns_ += out.elapsed;
  return out;
}

void NativeBackend::worker_main(std::uint32_t w) {
  tls_worker = std::int32_t(w);
  bool barrier_sense = true;
  std::uint64_t epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(phase_mu_);
      phase_cv_.wait(lk, [&] { return stop_ || phase_epoch_ > epoch; });
      if (stop_) return;
      epoch = phase_epoch_;
    }
    run_worker_phase(w);
    // Quiescent: every worker independently confirms (or reads quiesced_)
    // and arrives here. The barrier's acquire/release chain makes all
    // pre-barrier writes visible to worker 0, which signals the main
    // thread.
    finish_barrier_.arrive_and_wait(&barrier_sense);
    if (w == 0) {
      {
        std::lock_guard<std::mutex> lk(phase_mu_);
        done_epoch_ = epoch;
      }
      phase_cv_.notify_all();
    }
  }
}

// Two-phase (Dijkstra-style confirm) quiescence scan: read every consumed
// counter, then every produced counter, all seq_cst. Why equality proves
// quiescence: all these operations share one total order S (they are
// seq_cst), and both counters only grow. Pick the instant t0 in S between
// the last consumed-load and the first produced-load. Every consumed value
// read was written before t0, so C <= sum(consumed at t0); every produced
// load reads the latest write before it in S, so P >= sum(produced at t0).
// A task's produce precedes its consume, hence sum(produced at t0) >=
// sum(consumed at t0) >= C. If P == C the chain collapses: at t0 every
// produced task was consumed — nothing queued, nothing in a train, nothing
// running (a running task is consumed only after it returns). Quiescence is
// stable within a phase (only running tasks produce; the main thread seeds
// only before run_phase), so "quiescent at t0" means quiescent for good.
//
// The scan walks nodes, not workers — which worker hosts a node is
// irrelevant, so stealing cannot perturb the proof. A corollary worth
// stating: quiescence implies every run queue is empty, because a queued
// activation exists only while its node has an unconsumed task (the
// producer that won the CAS had already bumped `produced`).
bool NativeBackend::quiescent() const {
  std::uint64_t consumed = 0;
  for (const auto& n : nodes_)
    consumed += n->consumed.load(std::memory_order_seq_cst);
  std::uint64_t produced = 0;
  for (const auto& n : nodes_)
    produced += n->produced.load(std::memory_order_seq_cst);
  return produced == consumed;
}

std::uint64_t NativeBackend::outstanding() const {
  std::uint64_t produced = 0, consumed = 0;
  for (const auto& n : nodes_) {
    consumed += n->consumed.load(std::memory_order_seq_cst);
    produced += n->produced.load(std::memory_order_seq_cst);
  }
  return produced > consumed ? produced - consumed : 0;
}

void NativeBackend::watchdog_main() {
  const WatchdogConfig& cfg = watchdog_->cfg;
  std::uint64_t watched_epoch = 0;
  // Per-NODE progress tracking. With whole-node stealing a node's work
  // migrates between workers mid-phase, so any thread-keyed notion of
  // progress ("is the original host still running?") would flag a healthy
  // phase whose first host parked while a thief drains the node. Node
  // counters are placement-oblivious: a sweep counts as progress when any
  // node's (produced, consumed) pair moved, no matter which worker moved
  // it. The residue also names the stuck nodes in the flight record.
  std::vector<std::uint64_t> last_produced(nodes_.size(), 0);
  std::vector<std::uint64_t> last_consumed(nodes_.size(), 0);
  std::vector<bool> node_stuck(nodes_.size(), false);
  std::uint32_t stuck = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(watchdog_->mu);
      watchdog_->cv.wait_for(lk, std::chrono::nanoseconds(cfg.scan_interval),
                             [this] { return watchdog_->stop; });
      if (watchdog_->stop) return;
    }
    std::uint64_t epoch;
    bool active;
    std::chrono::steady_clock::time_point t0;
    {
      // phase_mu_ orders this read against run_phase's epoch publish: an
      // active epoch implies phase_t0_ and shards_ are visible here too.
      std::lock_guard<std::mutex> lk(phase_mu_);
      epoch = phase_epoch_;
      active = phase_epoch_ != done_epoch_ && !stop_;
      t0 = phase_t0_;
    }
    if (!active) {
      stuck = 0;
      watched_epoch = 0;
      continue;
    }
    if (epoch != watched_epoch) {
      watched_epoch = epoch;
      stuck = 0;
      std::fill(last_produced.begin(), last_produced.end(), 0);
      std::fill(last_consumed.begin(), last_consumed.end(), 0);
    }
    bool progress = false;
    std::uint64_t produced = 0, consumed = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const std::uint64_t c = nodes_[i]->consumed.load(std::memory_order_seq_cst);
      const std::uint64_t p = nodes_[i]->produced.load(std::memory_order_seq_cst);
      const bool moved = p != last_produced[i] || c != last_consumed[i];
      progress |= moved;
      node_stuck[i] = !moved && p != c;
      last_produced[i] = p;
      last_consumed[i] = c;
      produced += p;
      consumed += c;
    }
    if (produced == consumed) {  // drained (or about to finish): healthy
      stuck = 0;
      continue;
    }
    stuck = progress ? 0 : stuck + 1;
    const Time elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    if (cfg.phase_deadline > 0 && elapsed > cfg.phase_deadline) {
      watchdog_fire("phase deadline exceeded", elapsed, epoch, stuck,
                    node_stuck);
      return;
    }
    if (cfg.stuck_scans > 0 && stuck >= cfg.stuck_scans) {
      watchdog_fire("quiescence counters made no progress", elapsed, epoch,
                    stuck, node_stuck);
      return;
    }
  }
}

void NativeBackend::watchdog_fire(const char* reason, Time elapsed,
                                  std::uint64_t epoch, std::uint32_t stuck,
                                  const std::vector<bool>& node_stuck) {
  const WatchdogConfig& cfg = watchdog_->cfg;
  obs::FlightRecord rec;
  rec.reason = reason;
  rec.elapsed = elapsed;
  rec.phase_epoch = epoch;
  rec.stuck_scans = stuck;
  rec.nodes.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& n = *nodes_[i];
    auto& st = rec.nodes[i];
    st.produced = n.produced.load(std::memory_order_seq_cst);
    st.consumed = n.consumed.load(std::memory_order_seq_cst);
    st.active = n.active.load(std::memory_order_relaxed) != 0;
    st.stuck = node_stuck[i];
    std::lock_guard<std::mutex> lk(n.mu);
    st.inbox_depth = n.inbox.size();
  }
  rec.workers.resize(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    Worker& wk = *workers_[w];
    auto& st = rec.workers[w];
    st.parked = wk.parked.load(std::memory_order_relaxed);
    st.parks = wk.parks.load(std::memory_order_relaxed);
    st.steals = wk.steals.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(wk.mu);
    st.runq_depth = wk.runq.size();
  }
  obs::ShardedTraceSink* shards;
  {
    std::lock_guard<std::mutex> lk(phase_mu_);
    shards = shards_;
  }
  // The session registry is only mutated between phases (pre-phase writes
  // happen-before the epoch publish we observed under phase_mu_), so a
  // mid-phase snapshot is both safe and current.
  const obs::MetricsRegistry* metrics =
      shards != nullptr ? shards->metrics : nullptr;
  std::fprintf(stderr,
               "dpa watchdog: %s after %.1f ms (phase epoch %llu, %u "
               "no-progress sweeps, %llu tasks outstanding)\n",
               reason, double(elapsed) / 1e6, (unsigned long long)epoch,
               stuck, (unsigned long long)outstanding());
  if (!cfg.dump_path.empty()) {
    if (obs::write_flight_record(rec, shards, metrics, cfg.dump_path))
      std::fprintf(stderr, "dpa watchdog: flight record written to %s\n",
                   cfg.dump_path.c_str());
    else
      std::fprintf(stderr, "dpa watchdog: cannot write flight record %s\n",
                   cfg.dump_path.c_str());
  }
  watchdog_fired_.store(true, std::memory_order_release);
  if (cfg.fatal)
    DPA_PANIC("watchdog: " << reason << " — dying loudly instead of hanging "
              << "(flight record: "
              << (cfg.dump_path.empty() ? "<none>" : cfg.dump_path) << ")");
}

void NativeBackend::wake_all_workers() {
  for (auto& w : workers_) {
    bool wake;
    {
      std::lock_guard<std::mutex> lk(w->mu);
      wake = w->parked.load(std::memory_order_relaxed);
    }
    if (wake) w->cv.notify_all();
  }
}

void NativeBackend::run_worker_phase(std::uint32_t w) {
  Worker& wk = *workers_[w];
  obs::TraceShard* const sh = worker_shard(w);
  std::uint32_t idle = 0;
  // Parked-spell coalescing: consecutive timed-out re-parks record ONE
  // kPark span (start of the first park -> final unpark), not one per
  // wait_for cycle. Besides keeping the ring from flooding at the park
  // timeout rate, this makes a stalled-but-parked machine record nothing,
  // so the watchdog's flight-recorder snapshot reads quiescent rings.
  Time park_start = -1;
  const auto end_park_spell = [&](obs::UnparkCause cause) {
    if (sh == nullptr || park_start < 0) return;
    const Time t = since_phase_start(std::chrono::steady_clock::now());
    sh->span(obs::Ev::kPark, w, park_start, t, std::uint64_t(cause));
    sh->profile.park_ns.add(std::uint64_t(t - park_start));
    park_start = -1;
  };
  for (;;) {
    std::int32_t id = pop_own(w);
    if (id < 0 && tuning_.steal) id = try_steal(w);
    if (id >= 0) {
      end_park_spell(obs::UnparkCause::kWork);
      idle = 0;
      run_node(w, NodeId(id));
      continue;
    }
    // No runnable node anywhere we can see. Check for phase end before
    // climbing the idle ladder.
    if (quiesced_.load(std::memory_order_acquire)) {
      end_park_spell(obs::UnparkCause::kQuiesced);
      return;
    }
    if (quiescent()) {
      if (sh != nullptr)
        sh->instant(obs::Ev::kQuiesceScan, w,
                    since_phase_start(std::chrono::steady_clock::now()), 0);
      quiesced_.store(true, std::memory_order_release);
      wake_all_workers();
      end_park_spell(obs::UnparkCause::kQuiesced);
      return;
    }
    // Idle escalation: spin briefly (work usually arrives within the spin
    // window when workers have their own cores), then share the core, then
    // surrender it. Parking is what keeps oversubscribed runs (workers >>
    // cores) from burning whole scheduler quanta in yield loops.
    ++idle;
    if (idle <= tuning_.idle_spins) {
      cpu_pause();
      continue;
    }
    if (idle == tuning_.idle_spins + 1 && sh != nullptr) {
      // One instant pair per dry spell (at the spin->yield transition),
      // not per scan pass — idle workers rescan thousands of times per
      // second and must leave the ring quiescent while they wait.
      const Time t = since_phase_start(std::chrono::steady_clock::now());
      sh->instant(obs::Ev::kIdleYield, w, t);
      sh->instant(obs::Ev::kQuiesceScan, w, t, outstanding());
    }
    if (idle <= tuning_.idle_spins + tuning_.idle_yields) {
      std::this_thread::yield();
      continue;
    }
    {
      std::unique_lock<std::mutex> lk(wk.mu);
      if (!wk.runq.empty()) continue;  // lost the race with a producer
      // Checked under mu: the detector sets quiesced_ before taking mu to
      // read `parked`, so either we see the flag here or it sees us parked
      // and notifies. No sleep-through-the-end window. The timeout backstop
      // also re-runs the steal sweep, so a thief that parked just as its
      // victim received work cannot oversleep a backlog.
      if (quiesced_.load(std::memory_order_acquire)) {
        lk.unlock();
        end_park_spell(obs::UnparkCause::kQuiesced);
        return;
      }
      if (sh != nullptr && park_start < 0)
        park_start = since_phase_start(std::chrono::steady_clock::now());
      wk.parked.store(true, std::memory_order_relaxed);
      wk.parks.fetch_add(1, std::memory_order_relaxed);
      wk.cv.wait_for(lk, std::chrono::microseconds(tuning_.park_timeout_us));
      wk.parked.store(false, std::memory_order_relaxed);
    }
    // Woken (or timed out): rescan from the top. `idle` stays above the
    // spin window so a fruitless wake re-parks after one scan instead of
    // re-climbing the ladder; real work resets it via the pop above.
    idle = tuning_.idle_spins + tuning_.idle_yields;
  }
}

void NativeBackend::run_node(std::uint32_t w, NodeId id) {
  Node& n = *nodes_[id];
  // Placement bookkeeping before any draining: after the deactivation
  // store another worker may host the node, and only the current host may
  // write these. Affinity follows the host, so a stolen node re-activates
  // on its thief.
  n.affinity.store(w, std::memory_order_relaxed);
  n.last_worker.store(std::int32_t(w), std::memory_order_relaxed);
  tls_node = std::int32_t(id);
  obs::TraceShard* const sh = worker_shard(w);
  std::deque<Task> batch;
  for (;;) {
    if (stall_node_.load(std::memory_order_acquire) == std::int32_t(id)) {
      // Test-only wedge: block (holding no backend locks) until released.
      // The node stays active the whole time — exactly what a task stuck
      // in an infinite loop looks like to the watchdog.
      std::unique_lock<std::mutex> lk(stall_mu_);
      stall_cv_.wait(lk, [this] { return stall_released_; });
    }
    bool ran = false;
    {
      std::lock_guard<std::mutex> lk(n.mu);
      if (!n.inbox.empty()) batch.swap(n.inbox);
    }
    if (sh != nullptr && !batch.empty())
      sh->instant(obs::Ev::kWorkerDrain, id,
                  since_phase_start(std::chrono::steady_clock::now()),
                  batch.size());
    // Incoming messages first, then self-posted scheduler work — the same
    // "yield to the inbox" policy the simulator's node processor has.
    while (!batch.empty()) {
      Task t = std::move(batch.front());
      batch.pop_front();
      run_task(n, id, std::move(t));
      ran = true;
    }
    while (!n.local.empty()) {
      Task t = std::move(n.local.front());
      n.local.pop_front();
      run_task(n, id, std::move(t));
      ran = true;
    }
    if (ran) continue;  // our own tasks may have posted more to us
    // Dry. Push any buffered outbound trains — the implicit flush point
    // that makes termination independent of the engine calling
    // Backend::flush() — then give up the node.
    trains_.flush_src(id);
    // Deactivate-then-recheck: the idle store and a producer's CAS are both
    // seq_cst, so they are totally ordered. If a producer appended to the
    // inbox after our last drain but CASed before our store, the CAS lost
    // (active was still 1) — no one queued the node, so WE must recheck the
    // inbox and reclaim. If the producer CASed after our store, it won and
    // enqueued the node; our reclaim CAS then fails and the new host
    // drains. Either way no task is stranded on a deactivated node.
    n.active.store(0, std::memory_order_seq_cst);
    bool pending;
    {
      std::lock_guard<std::mutex> lk(n.mu);
      pending = !n.inbox.empty();
    }
    if (pending) {
      std::uint32_t expected = 0;
      if (n.active.compare_exchange_strong(expected, 1,
                                           std::memory_order_seq_cst))
        continue;  // reclaimed: keep hosting, no re-enqueue needed
      // A producer won the reclaim race and enqueued the node elsewhere.
    }
    break;
  }
  tls_node = -1;
}

void NativeBackend::run_task(Node& n, NodeId id, Task task) {
  const auto t0 = std::chrono::steady_clock::now();
  Cpu cpu(id, since_phase_start(t0));
  task(cpu);
  const auto t1 = std::chrono::steady_clock::now();
  for (int k = 0; k < kNumWorkKinds; ++k) n.stats.busy[k] += cpu.used(Work(k));
  const Time wall =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  n.stats.busy_total += wall;
  n.stats.finish_time = since_phase_start(t1);
  ++n.stats.tasks_run;
  if (obs::TraceShard* const sh =
          tls_worker >= 0 ? worker_shard(std::uint32_t(tls_worker)) : nullptr;
      sh != nullptr) {
    // Reuses the two clock reads the stats already paid for; with tracing
    // attached a task costs one ring store and one histogram bump extra.
    sh->span(obs::Ev::kWorkerRun, id, since_phase_start(t0),
             since_phase_start(t1));
    sh->profile.task_service_ns.add(std::uint64_t(wall));
  }
  // Consume strictly after the task returned: while it ran (and possibly
  // produced more work) the scan kept seeing produced > consumed.
  n.consumed.fetch_add(1, std::memory_order_seq_cst);
}

MsgStats NativeBackend::msg_stats_total() const {
  MsgStats total;
  for (NodeId i = 0; i < NodeId(nodes_.size()); ++i) {
    const Node* n = nodes_[i].get();
    total.msgs_sent += n->msg.msgs_sent;
    total.frags_sent += n->msg.frags_sent;
    total.msgs_recv += n->msg.msgs_recv;
    total.bytes_sent += n->msg.bytes_sent;
    total.bytes_recv += n->msg.bytes_recv;
    total.trains_sent += trains_.trains_sent(i);
  }
  return total;
}

void NativeBackend::reset_msg_stats() {
  for (auto& n : nodes_) n->msg.reset();
  trains_.reset_stats();
}

SchedStats NativeBackend::sched_stats() const {
  SchedStats s;
  for (const auto& w : workers_) {
    s.parks += w->parks.load(std::memory_order_relaxed);
    s.steals += w->steals.load(std::memory_order_relaxed);
    s.activations += w->activations.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace dpa::exec
