#include "exec/native_backend.h"

#include <algorithm>
#include <utility>

#include "support/assert.h"

namespace dpa::exec {

namespace {

// The worker that owns the node the current thread is executing for, or -1
// on the main thread. Lets post() skip the mailbox lock for self-posts.
thread_local std::int32_t tls_node = -1;

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace

void SenseBarrier::arrive_and_wait(bool* my_sense) {
  const bool sense = *my_sense;
  if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    count_.store(n_, std::memory_order_relaxed);
    sense_.store(sense, std::memory_order_release);
  } else {
    int spins = 0;
    while (sense_.load(std::memory_order_acquire) != sense) {
      if (++spins < 1024) {
        cpu_pause();
      } else {
        std::this_thread::yield();
      }
    }
  }
  *my_sense = !sense;
}

NativeBackend::NativeBackend(std::uint32_t num_nodes)
    : finish_barrier_(num_nodes) {
  DPA_CHECK(num_nodes > 0);
  nodes_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i)
    nodes_.push_back(std::make_unique<Node>());
  workers_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

NativeBackend::~NativeBackend() {
  {
    std::lock_guard<std::mutex> lk(phase_mu_);
    stop_ = true;
  }
  phase_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

HandlerId NativeBackend::register_handler(std::string name, Handler fn) {
  // Registration happens between phases (the main thread is the only one
  // running); workers observe the table through the next epoch publish.
  DPA_CHECK(handlers_.size() < 0xffff) << "handler table full";
  auto entry = std::make_unique<HandlerEntry>();
  entry->name = std::move(name);
  entry->fn = std::move(fn);
  handlers_.push_back(std::move(entry));
  return HandlerId(handlers_.size() - 1);
}

void NativeBackend::post(NodeId node, Task task) {
  DPA_DCHECK(node < nodes_.size());
  // Increment strictly before enqueue: any thread that later drains its
  // queues empty and reads zero knows no task anywhere is still running or
  // enqueued (a running poster holds its own count until after it returns).
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  Node& n = *nodes_[node];
  if (tls_node == std::int32_t(node)) {
    n.local.push_back(std::move(task));
    return;
  }
  std::lock_guard<std::mutex> lk(n.mu);
  n.inbox.push_back(std::move(task));
}

void NativeBackend::send(Cpu& cpu, NodeId src, NodeId dst, HandlerId handler,
                         std::shared_ptr<void> data, std::uint32_t bytes) {
  (void)cpu;  // the real send cost is measured, not charged
  DPA_DCHECK(handler < handlers_.size());
  Node& sn = *nodes_[src];
  ++sn.msg.msgs_sent;
  ++sn.msg.frags_sent;  // no MTU segmentation in-process
  sn.msg.bytes_sent += bytes;

  const HandlerEntry* e = handlers_[handler].get();
  Packet pkt{src, dst, handler, std::move(data), bytes};
  Node* dn = nodes_[dst].get();
  post(dst, [e, dn, pkt = std::move(pkt)](Cpu& task_cpu) {
    ++dn->msg.msgs_recv;
    dn->msg.bytes_recv += pkt.bytes;
    e->fn(task_cpu, pkt);
  });
}

void NativeBackend::schedule_at(Time at, TimerFn fn) {
  (void)at;
  (void)fn;
  DPA_PANIC(
      "NativeBackend has no deferred timers: the in-process fabric is "
      "lossless, so the reliability/retry protocol (the only schedule_at "
      "user) must stay on the sim backend");
}

Time NativeBackend::begin_phase() {
  DPA_CHECK(outstanding_.load(std::memory_order_acquire) == 0)
      << "begin_phase with tasks still outstanding";
  for (auto& n : nodes_) {
    n->stats.reset();
    n->msg.reset();
    DPA_CHECK(n->inbox.empty() && n->local.empty());
  }
  return clock_ns_;
}

PhaseExec NativeBackend::run_phase() {
  phase_t0_ = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lk(phase_mu_);
    ++phase_epoch_;
  }
  phase_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(phase_mu_);
    phase_cv_.wait(lk, [this] { return done_epoch_ == phase_epoch_; });
  }
  PhaseExec out;
  out.elapsed = since_phase_start(std::chrono::steady_clock::now());
  for (const auto& n : nodes_) out.events += n->stats.tasks_run;
  clock_ns_ += out.elapsed;
  return out;
}

void NativeBackend::worker_main(NodeId id) {
  tls_node = std::int32_t(id);
  bool barrier_sense = true;
  std::uint64_t epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(phase_mu_);
      phase_cv_.wait(lk, [&] { return stop_ || phase_epoch_ > epoch; });
      if (stop_) return;
      epoch = phase_epoch_;
    }
    run_node_phase(*nodes_[id], id);
    // Quiescent: every worker will independently observe outstanding == 0
    // and arrive here. The barrier's acquire/release chain makes all
    // pre-barrier writes visible to node 0, which signals the main thread.
    finish_barrier_.arrive_and_wait(&barrier_sense);
    if (id == 0) {
      {
        std::lock_guard<std::mutex> lk(phase_mu_);
        done_epoch_ = epoch;
      }
      phase_cv_.notify_all();
    }
  }
}

void NativeBackend::run_node_phase(Node& n, NodeId id) {
  std::deque<Task> batch;
  int idle_spins = 0;
  for (;;) {
    bool ran = false;
    {
      std::lock_guard<std::mutex> lk(n.mu);
      if (!n.inbox.empty()) batch.swap(n.inbox);
    }
    // Incoming messages first, then self-posted scheduler work — the same
    // "yield to the inbox" policy the simulator's node processor has.
    while (!batch.empty()) {
      Task t = std::move(batch.front());
      batch.pop_front();
      run_task(n, id, std::move(t));
      ran = true;
    }
    while (!n.local.empty()) {
      Task t = std::move(n.local.front());
      n.local.pop_front();
      run_task(n, id, std::move(t));
      ran = true;
    }
    if (ran) {
      idle_spins = 0;
      continue;  // our own tasks may have posted more to us
    }
    if (outstanding_.load(std::memory_order_acquire) == 0) return;
    if (++idle_spins < 256) {
      cpu_pause();
    } else {
      std::this_thread::yield();
    }
  }
}

void NativeBackend::run_task(Node& n, NodeId id, Task task) {
  const auto t0 = std::chrono::steady_clock::now();
  Cpu cpu(id, since_phase_start(t0));
  task(cpu);
  const auto t1 = std::chrono::steady_clock::now();
  for (int k = 0; k < kNumWorkKinds; ++k) n.stats.busy[k] += cpu.used(Work(k));
  n.stats.busy_total +=
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  n.stats.finish_time = since_phase_start(t1);
  ++n.stats.tasks_run;
  outstanding_.fetch_sub(1, std::memory_order_release);
}

MsgStats NativeBackend::msg_stats_total() const {
  MsgStats total;
  for (const auto& n : nodes_) {
    total.msgs_sent += n->msg.msgs_sent;
    total.frags_sent += n->msg.frags_sent;
    total.msgs_recv += n->msg.msgs_recv;
    total.bytes_sent += n->msg.bytes_sent;
    total.bytes_recv += n->msg.bytes_recv;
  }
  return total;
}

void NativeBackend::reset_msg_stats() {
  for (auto& n : nodes_) n->msg.reset();
}

}  // namespace dpa::exec
