#include "exec/native_backend.h"

#include <algorithm>
#include <utility>

#include "support/assert.h"

namespace dpa::exec {

namespace {

// The worker that owns the node the current thread is executing for, or -1
// on the main thread. Lets post() skip the mailbox lock for self-posts and
// route cross-node work through the owner's trains.
thread_local std::int32_t tls_node = -1;

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace

void SenseBarrier::arrive_and_wait(bool* my_sense) {
  const bool sense = *my_sense;
  if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    count_.store(n_, std::memory_order_relaxed);
    sense_.store(sense, std::memory_order_release);
  } else {
    int spins = 0;
    while (sense_.load(std::memory_order_acquire) != sense) {
      if (++spins < 1024) {
        cpu_pause();
      } else {
        std::this_thread::yield();
      }
    }
  }
  *my_sense = !sense;
}

NativeBackend::NativeBackend(std::uint32_t num_nodes)
    : NativeBackend(num_nodes, Tuning()) {}

NativeBackend::NativeBackend(std::uint32_t num_nodes, const Tuning& tuning)
    : tuning_(tuning), finish_barrier_(num_nodes) {
  DPA_CHECK(num_nodes > 0);
  DPA_CHECK(tuning_.train_max > 0);
  nodes_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>());
    nodes_.back()->train.resize(num_nodes);
  }
  workers_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

NativeBackend::~NativeBackend() {
  {
    std::lock_guard<std::mutex> lk(phase_mu_);
    stop_ = true;
  }
  phase_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

HandlerId NativeBackend::register_handler(std::string name, Handler fn) {
  // Registration happens between phases (the main thread is the only one
  // running); workers observe the table through the next epoch publish.
  DPA_CHECK(handlers_.size() < 0xffff) << "handler table full";
  auto entry = std::make_unique<HandlerEntry>();
  entry->name = std::move(name);
  entry->fn = std::move(fn);
  handlers_.push_back(std::move(entry));
  return HandlerId(handlers_.size() - 1);
}

void NativeBackend::flush_dest_train(Node& self, NodeId dst) {
  auto& tr = self.train[dst];
  if (tr.empty()) return;
  Node& dn = *nodes_[dst];
  bool wake;
  {
    std::lock_guard<std::mutex> lk(dn.mu);
    for (auto& t : tr) dn.inbox.push_back(std::move(t));
    wake = dn.parked;
  }
  if (wake) dn.cv.notify_one();
  DPA_DCHECK(self.train_pending >= tr.size());
  self.train_pending -= std::uint32_t(tr.size());
  ++self.msg.trains_sent;
  tr.clear();
}

bool NativeBackend::flush_trains(Node& self) {
  if (self.train_pending == 0) return false;
  for (NodeId d = 0; d < nodes_.size(); ++d) flush_dest_train(self, d);
  DPA_DCHECK(self.train_pending == 0);
  return true;
}

void NativeBackend::post(NodeId node, Task task) {
  DPA_DCHECK(node < nodes_.size());
  // The produced-shard bump must land strictly before the task becomes
  // runnable anywhere: a scan that misses the task's consumption must also
  // account it as produced. Tasks buffered in a train count as produced —
  // that is what keeps the phase alive until their owner flushes them.
  if (tls_node >= 0) {
    Node& self = *nodes_[tls_node];
    self.produced.fetch_add(1, std::memory_order_seq_cst);
    if (tls_node == std::int32_t(node)) {
      self.local.push_back(std::move(task));
      return;
    }
    auto& tr = self.train[node];
    tr.push_back(std::move(task));
    ++self.train_pending;
    if (tr.size() >= tuning_.train_max) flush_dest_train(self, node);
    return;
  }
  // Main thread: pre-phase seeding. Counted on the destination's shard —
  // single-writer still holds because workers are parked between phases
  // (the epoch publish orders these writes before the phase releases).
  Node& dn = *nodes_[node];
  dn.produced.fetch_add(1, std::memory_order_seq_cst);
  bool wake;
  {
    std::lock_guard<std::mutex> lk(dn.mu);
    dn.inbox.push_back(std::move(task));
    wake = dn.parked;
  }
  if (wake) dn.cv.notify_one();
}

void NativeBackend::send(Cpu& cpu, NodeId src, NodeId dst, HandlerId handler,
                         std::shared_ptr<void> data, std::uint32_t bytes) {
  (void)cpu;  // the real send cost is measured, not charged
  DPA_DCHECK(handler < handlers_.size());
  Node& sn = *nodes_[src];
  ++sn.msg.msgs_sent;
  ++sn.msg.frags_sent;  // no MTU segmentation in-process
  sn.msg.bytes_sent += bytes;

  const HandlerEntry* e = handlers_[handler].get();
  Packet pkt{src, dst, handler, std::move(data), bytes};
  Node* dn = nodes_[dst].get();
  post(dst, [e, dn, pkt = std::move(pkt)](Cpu& task_cpu) {
    ++dn->msg.msgs_recv;
    dn->msg.bytes_recv += pkt.bytes;
    e->fn(task_cpu, pkt);
  });
}

void NativeBackend::flush(Cpu& cpu, NodeId node) {
  (void)cpu;  // lock handoff cost is measured, not charged
  DPA_DCHECK(node < nodes_.size());
  DPA_DCHECK(tls_node == std::int32_t(node))
      << "Backend::flush must run on the node it flushes";
  flush_trains(*nodes_[node]);
}

void NativeBackend::schedule_at(Time at, TimerFn fn) {
  (void)at;
  (void)fn;
  DPA_PANIC(
      "NativeBackend has no deferred timers (supports_timers() is false): "
      "the in-process fabric is lossless, so the reliability/retry protocol "
      "(the only schedule_at user) must stay on the sim backend");
}

Time NativeBackend::begin_phase() {
  DPA_CHECK(quiescent()) << "begin_phase with tasks still outstanding";
  quiesced_.store(false, std::memory_order_relaxed);
  for (auto& n : nodes_) {
    n->stats.reset();
    n->msg.reset();
    DPA_CHECK(n->inbox.empty() && n->local.empty() && n->train_pending == 0);
  }
  return clock_ns_;
}

PhaseExec NativeBackend::run_phase() {
  phase_t0_ = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lk(phase_mu_);
    ++phase_epoch_;
  }
  phase_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(phase_mu_);
    phase_cv_.wait(lk, [this] { return done_epoch_ == phase_epoch_; });
  }
  PhaseExec out;
  out.elapsed = since_phase_start(std::chrono::steady_clock::now());
  for (const auto& n : nodes_) out.events += n->stats.tasks_run;
  clock_ns_ += out.elapsed;
  return out;
}

void NativeBackend::worker_main(NodeId id) {
  tls_node = std::int32_t(id);
  bool barrier_sense = true;
  std::uint64_t epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(phase_mu_);
      phase_cv_.wait(lk, [&] { return stop_ || phase_epoch_ > epoch; });
      if (stop_) return;
      epoch = phase_epoch_;
    }
    run_node_phase(*nodes_[id], id);
    // Quiescent: every worker independently confirms (or reads quiesced_)
    // and arrives here. The barrier's acquire/release chain makes all
    // pre-barrier writes visible to node 0, which signals the main thread.
    finish_barrier_.arrive_and_wait(&barrier_sense);
    if (id == 0) {
      {
        std::lock_guard<std::mutex> lk(phase_mu_);
        done_epoch_ = epoch;
      }
      phase_cv_.notify_all();
    }
  }
}

// Two-phase (Dijkstra-style confirm) quiescence scan: read every consumed
// counter, then every produced counter, all seq_cst. Why equality proves
// quiescence: all these operations share one total order S (they are
// seq_cst), and both counters only grow. Pick the instant t0 in S between
// the last consumed-load and the first produced-load. Every consumed value
// read was written before t0, so C <= sum(consumed at t0); every produced
// load reads the latest write before it in S, so P >= sum(produced at t0).
// A task's produce precedes its consume, hence sum(produced at t0) >=
// sum(consumed at t0) >= C. If P == C the chain collapses: at t0 every
// produced task was consumed — nothing queued, nothing in a train, nothing
// running (a running task is consumed only after it returns). Quiescence is
// stable within a phase (only running tasks produce; the main thread seeds
// only before run_phase), so "quiescent at t0" means quiescent for good.
bool NativeBackend::quiescent() const {
  std::uint64_t consumed = 0;
  for (const auto& n : nodes_)
    consumed += n->consumed.load(std::memory_order_seq_cst);
  std::uint64_t produced = 0;
  for (const auto& n : nodes_)
    produced += n->produced.load(std::memory_order_seq_cst);
  return produced == consumed;
}

void NativeBackend::wake_parked() {
  for (auto& n : nodes_) {
    bool wake;
    {
      std::lock_guard<std::mutex> lk(n->mu);
      wake = n->parked;
    }
    if (wake) n->cv.notify_all();
  }
}

void NativeBackend::run_node_phase(Node& n, NodeId id) {
  (void)id;
  std::deque<Task> batch;
  std::uint32_t idle = 0;
  for (;;) {
    bool ran = false;
    {
      std::lock_guard<std::mutex> lk(n.mu);
      if (!n.inbox.empty()) batch.swap(n.inbox);
    }
    // Incoming messages first, then self-posted scheduler work — the same
    // "yield to the inbox" policy the simulator's node processor has.
    while (!batch.empty()) {
      Task t = std::move(batch.front());
      batch.pop_front();
      run_task(n, id, std::move(t));
      ran = true;
    }
    while (!n.local.empty()) {
      Task t = std::move(n.local.front());
      n.local.pop_front();
      run_task(n, id, std::move(t));
      ran = true;
    }
    if (ran) {
      idle = 0;
      continue;  // our own tasks may have posted more to us
    }
    // Out of runnable work. First push any buffered outbound trains — the
    // implicit phase-barrier flush point that makes termination independent
    // of the engine calling Backend::flush().
    flush_trains(n);
    if (quiesced_.load(std::memory_order_acquire)) return;
    if (quiescent()) {
      quiesced_.store(true, std::memory_order_release);
      wake_parked();
      return;
    }
    // Idle escalation: spin briefly (work usually arrives within the spin
    // window when nodes have their own cores), then share the core, then
    // surrender it. Parking is what keeps oversubscribed runs (nodes >>
    // cores) from burning whole scheduler quanta in yield loops.
    ++idle;
    if (idle <= tuning_.idle_spins) {
      cpu_pause();
      continue;
    }
    if (idle <= tuning_.idle_spins + tuning_.idle_yields) {
      std::this_thread::yield();
      continue;
    }
    {
      std::unique_lock<std::mutex> lk(n.mu);
      if (!n.inbox.empty()) continue;  // lost the race with a sender: drain
      // Checked under mu: the detector sets quiesced_ before taking mu to
      // read `parked`, so either we see the flag here or it sees us parked
      // and notifies. No sleep-through-the-end window.
      if (quiesced_.load(std::memory_order_acquire)) return;
      n.parked = true;
      ++n.stats.parks;
      n.cv.wait_for(lk, std::chrono::microseconds(tuning_.park_timeout_us));
      n.parked = false;
    }
    // Woken (or timed out): rescan from the top. `idle` stays above the
    // spin window so a fruitless wake re-parks after one scan instead of
    // re-climbing the ladder; real work resets it via `ran`.
    idle = tuning_.idle_spins + tuning_.idle_yields;
  }
}

void NativeBackend::run_task(Node& n, NodeId id, Task task) {
  const auto t0 = std::chrono::steady_clock::now();
  Cpu cpu(id, since_phase_start(t0));
  task(cpu);
  const auto t1 = std::chrono::steady_clock::now();
  for (int k = 0; k < kNumWorkKinds; ++k) n.stats.busy[k] += cpu.used(Work(k));
  n.stats.busy_total +=
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  n.stats.finish_time = since_phase_start(t1);
  ++n.stats.tasks_run;
  // Consume strictly after the task returned: while it ran (and possibly
  // produced more work) the scan kept seeing produced > consumed.
  n.consumed.fetch_add(1, std::memory_order_seq_cst);
}

MsgStats NativeBackend::msg_stats_total() const {
  MsgStats total;
  for (const auto& n : nodes_) {
    total.msgs_sent += n->msg.msgs_sent;
    total.frags_sent += n->msg.frags_sent;
    total.msgs_recv += n->msg.msgs_recv;
    total.bytes_sent += n->msg.bytes_sent;
    total.bytes_recv += n->msg.bytes_recv;
    total.trains_sent += n->msg.trains_sent;
  }
  return total;
}

void NativeBackend::reset_msg_stats() {
  for (auto& n : nodes_) n->msg.reset();
}

}  // namespace dpa::exec
