// ProcBackend: multi-process execution over the PR-9 transport layer.
//
// A coordinator process forks one worker process per group of nodes at
// each run_phase(); every worker runs the existing M:N NativeBackend pool
// over the full node-id space but executes only the nodes it owns
// (owner(node) = node % procs — the same modular affinity the native
// scheduler uses). Cross-process messages travel as encoded frames over
// one AF_UNIX socketpair per process pair (transport::PipeChannel in
// endpoint mode) wrapped in transport::ReliableChannel; a per-worker
// control socketpair — every frame stamped kFrameFlagControl — carries
// the coordinator-driven termination protocol, the span diffs, and the
// result blobs.
//
// Execution model (fork-per-phase):
//   * Between phases the coordinator is the only thread alive. post() and
//     register_handler() stage work/handlers; run_phase() builds the span
//     list, creates the socketpairs, and forks the workers — each child a
//     copy-on-write replica of the engines, handlers and application
//     state at phase start.
//   * A worker alternates *sub-phases* with channel pumping: seed the
//     staged posts for its owned nodes into a freshly constructed inner
//     NativeBackend, run it to local quiescence, flush the peer trains,
//     then pump every channel — inbound remote messages become posts for
//     the next sub-phase. DPA threads are non-blocking continuations, so
//     local quiescence is always reachable: a pending remote require
//     holds no task, and the engines' done() flags simply stay false
//     until the replies arrive and drive another sub-phase.
//   * Termination is the PR-5/7 two-pass quiescence shape lifted to
//     frame level: the coordinator broadcasts probe rounds; each worker
//     reports (quiescent?, tasks run, per-peer sent/recv counts at the
//     application level — retransmissions excluded). The phase is done
//     when two consecutive rounds are identical, every worker is
//     quiescent, and the sent/recv matrices match pairwise.
//   * After the done broadcast each worker runs the phase epilogue for
//     its owned nodes (committing staged accumulations (src, seq)-sorted
//     — the determinism-bearing step), diffs every registered span
//     against its fork-time snapshot, and ships only the changed runs
//     home. The coordinator applies them directly: owned writes are
//     disjoint, so application order cannot matter, and kSumU64 spans
//     travel as per-lane deltas that simply add.
//
// Byte-identity across sim / native / proc: replies carry phase-start
// object state (the fork snapshot) exactly as the single-process phases
// read phase-start state under the read-mostly contract; accumulations
// commit in (src, accum_seq) order at the owning worker; and the same
// binary performs the same FP operations in the same order.
//
// Peer death is a reported error, not a crash: a worker that dies
// mid-phase surfaces as kPeerDown on its channels (EPIPE/EOF — see
// ChannelStatus) and as a reaped pid at the coordinator, which writes a
// flight-record JSON naming the dead worker, aborts the survivors, and
// fails the phase with diagnostics instead of hanging.
#pragma once

#include <sys/types.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/backend.h"
#include "transport/pipe_channel.h"
#include "transport/reliable_channel.h"

namespace dpa::exec {

class NativeBackend;

class ProcBackend final : public Backend {
 public:
  struct Config {
    // Worker process count; clamped to [1, num_nodes].
    std::uint32_t procs = 2;
    // Depth at which a per-peer train auto-flushes (wire aggregation).
    std::uint32_t train_max = 16;
    // Armed at construction when enabled() — the harness-flag path, same
    // plumbing as NativeBackend::set_default_watchdog. arm_watchdog()
    // overrides it per instance.
    WatchdogConfig watchdog;
    // Chaos hook: worker index that self-terminates (as if killed) after
    // `kill_after_pumps` pump-loop iterations; -1 = disabled. A worker can
    // only finish via the coordinator's done broadcast, which arrives in
    // its pump loop — so kill_after_pumps=1 fires strictly before any
    // worker can complete the phase.
    std::int32_t kill_worker_for_test = -1;
    std::uint32_t kill_after_pumps = 1;
  };

  explicit ProcBackend(std::uint32_t num_nodes);
  ProcBackend(std::uint32_t num_nodes, const Config& config);
  ~ProcBackend() override;

  // Process-wide default config for subsequently constructed ProcBackends
  // — same plumbing rationale as NativeBackend::set_default_tuning
  // (--procs is a harness flag; Clusters are built deep inside app
  // runners).
  static void set_default_config(const Config& config);
  static Config default_config();

  BackendKind kind() const override { return BackendKind::kProc; }
  std::uint32_t num_nodes() const override { return num_nodes_; }
  std::uint32_t num_procs() const { return procs_; }
  NodeId owner_of(NodeId node) const { return node % procs_; }

  HandlerId register_handler(std::string name, Handler fn) override;
  const std::string& handler_name(HandlerId id) const override {
    return handlers_[id]->name;
  }

  void send(Cpu& cpu, NodeId src, NodeId dst, HandlerId handler,
            std::shared_ptr<void> data, std::uint32_t bytes) override;
  void post(NodeId node, Task task) override;
  void flush(Cpu& cpu, NodeId node) override;

  bool supports_timers() const override { return false; }
  void schedule_at(Time at, TimerFn fn) override;

  Time begin_phase() override;
  PhaseExec run_phase() override;

  const NodeStats& node_stats(NodeId node) const override {
    return node_stats_[node];
  }
  Time idle_time(NodeId node, Time phase_elapsed) const override {
    const Time idle = phase_elapsed - node_stats_[node].busy_total;
    return idle > 0 ? idle : 0;
  }
  MsgStats msg_stats_total() const override { return msg_total_; }
  void reset_msg_stats() override { msg_total_ = MsgStats{}; }
  SchedStats sched_stats() const override { return sched_total_; }

  bool lossy() const override { return false; }

  // Stores the policy; the coordinator enforces phase_deadline itself and
  // forwards the config to each worker's inner pool, so an intra-worker
  // wedge aborts the worker and surfaces as a reported peer death.
  bool arm_watchdog(const WatchdogConfig& cfg) override {
    watchdog_cfg_ = cfg;
    return true;
  }

  void set_wire_codec(HandlerId handler, WireCodec codec) override;
  void set_span_source(
      std::function<void(std::vector<PhaseSpan>&)> fn) override {
    span_source_ = std::move(fn);
  }
  void add_phase_span(PhaseSpan span) override;
  void remove_phase_span(const void* addr) override;

  std::vector<std::string> collect_epilogues(std::uint32_t nodes) override;
  std::string phase_diagnostics() const override { return diagnostics_; }
  WireStatsTotal wire_stats_total() const override { return wire_total_; }

  // Whether the last run_phase() completed cleanly (false after a worker
  // death — phase_diagnostics() says which).
  bool last_phase_ok() const { return !phase_failed_; }

 private:
  struct HandlerEntry {
    std::string name;
    Handler fn;
  };

  // One worker's data link to a peer process: a duplex socketpair end
  // speaking the frame codec, wrapped in the reliability protocol. `mu`
  // serializes sends from concurrent inner-pool workers against the pump
  // loop; `sent` counts application payloads (not retransmissions) for
  // the termination protocol, `recv` counts post-dedup deliveries.
  struct PeerLink {
    std::mutex mu;
    std::unique_ptr<transport::PipeChannel> pipe;
    std::unique_ptr<transport::ReliableChannel> rel;
    std::atomic<std::uint64_t> sent{0};
    std::uint64_t recv = 0;
    std::atomic<bool> rel_gave_up{false};  // retry exhaustion (on_peer_dead)
    bool death_reported = false;
  };

  enum class Role : std::uint8_t { kCoordinator, kWorker };

  void spawn_workers();
  [[noreturn]] void worker_main(std::uint32_t self);
  [[noreturn]] void worker_finalize(
      transport::PipeChannel& ctl, const std::vector<NodeId>& owned,
      const std::vector<std::vector<std::uint8_t>>& pristine,
      const std::vector<NodeStats>& acc, const MsgStats& msg_acc,
      const SchedStats& sched_acc, std::uint64_t tasks_acc);
  void coordinator_loop();
  // Applies one control payload from worker `from` (ctl delivery callback).
  void coordinator_apply(std::uint32_t from, std::uint16_t tag,
                         const std::vector<std::uint8_t>& bytes,
                         void* cur_report, bool* bye);
  void fail_phase(const std::string& reason, std::int32_t dead_worker,
                  pid_t dead_pid, int wait_status);
  void kill_and_reap_all();
  void write_flight_record(const std::string& reason,
                           std::int32_t dead_worker, pid_t dead_pid,
                           int wait_status);
  std::vector<NodeId> nodes_owned_by(std::uint32_t worker) const;

  const std::uint32_t num_nodes_;
  Config config_;
  std::uint32_t procs_;
  Role role_ = Role::kCoordinator;

  std::vector<std::unique_ptr<HandlerEntry>> handlers_;
  std::vector<WireCodec> codecs_;  // indexed by HandlerId

  std::function<void(std::vector<PhaseSpan>&)> span_source_;
  std::vector<PhaseSpan> transient_spans_;  // app-registered, per step
  std::vector<PhaseSpan> spans_;            // resolved per phase, pre-fork

  // Coordinator staging between begin_phase and run_phase (pre-phase
  // seeds from engine start()). Inherited copy-on-write by the workers.
  std::vector<std::deque<Task>> staged_posts_;

  // --- Coordinator-side per-phase state --------------------------------
  std::vector<pid_t> pids_;
  std::vector<std::array<int, 2>> ctl_fds_;  // [coordinator end, worker end]
  // data_fds_[a][b] (a < b): [a's end, b's end] of the (a, b) socketpair.
  std::vector<std::vector<std::array<int, 2>>> data_fds_;
  std::vector<std::unique_ptr<transport::PipeChannel>> ctl_;
  WatchdogConfig watchdog_cfg_;
  bool phase_failed_ = false;
  std::string diagnostics_;

  // Merged results (valid after run_phase).
  std::vector<NodeStats> node_stats_;
  std::vector<std::string> epilogues_;
  MsgStats msg_total_;
  SchedStats sched_total_;
  WireStatsTotal wire_total_;
  std::uint64_t events_total_ = 0;
  Time clock_ns_ = 0;

  // --- Worker-side state (meaningful only after fork) ------------------
  std::uint32_t self_ = 0;
  std::unique_ptr<NativeBackend> inner_;
  std::vector<std::unique_ptr<PeerLink>> links_;  // indexed by peer worker
  // Inbound remote messages staged between sub-phases. Guarded: channel
  // deliveries can run on inner-pool threads (a task's flush() pumps).
  std::mutex inbound_mu_;
  std::vector<std::pair<NodeId, Task>> pending_inbound_;
  // Cross-process application-message accounting (merged into MsgStats).
  std::atomic<std::uint64_t> remote_msgs_sent_{0};
  std::atomic<std::uint64_t> remote_bytes_sent_{0};
  std::uint64_t remote_msgs_recv_ = 0;
  std::uint64_t remote_bytes_recv_ = 0;
};

}  // namespace dpa::exec
