#include "compiler/opt.h"

#include <set>

#include "support/assert.h"

namespace dpa::compiler {

ExprPtr fold_expr(const ExprPtr& expr, std::size_t* folded) {
  if (!expr || expr->kind != Expr::K::kBin) return expr;
  ExprPtr lhs = fold_expr(expr->lhs, folded);
  ExprPtr rhs = fold_expr(expr->rhs, folded);
  if (lhs->kind == Expr::K::kConst && rhs->kind == Expr::K::kConst) {
    const std::map<std::string, double> empty;
    ExprPtr replacement =
        Expr::c(Expr::bin(expr->op, lhs, rhs)->eval(empty));
    if (folded) ++*folded;
    return replacement;
  }
  if (lhs == expr->lhs && rhs == expr->rhs) return expr;
  return Expr::bin(expr->op, std::move(lhs), std::move(rhs));
}

namespace {

StmtPtr fold_stmt(const StmtPtr& stmt, std::size_t* folded);

std::vector<StmtPtr> fold_body(const std::vector<StmtPtr>& body,
                               std::size_t* folded) {
  std::vector<StmtPtr> out;
  out.reserve(body.size());
  for (const auto& s : body) out.push_back(fold_stmt(s, folded));
  return out;
}

StmtPtr fold_stmt(const StmtPtr& stmt, std::size_t* folded) {
  switch (stmt->kind) {
    case Stmt::K::kLet:
      return Stmt::let(stmt->dst, fold_expr(stmt->expr, folded));
    case Stmt::K::kAccum:
      return Stmt::accum(stmt->dst, fold_expr(stmt->expr, folded));
    case Stmt::K::kCharge:
      return Stmt::charge(fold_expr(stmt->expr, folded));
    case Stmt::K::kIf:
      return Stmt::if_(fold_expr(stmt->expr, folded),
                       fold_body(stmt->then_body, folded),
                       fold_body(stmt->else_body, folded));
    default:
      return stmt;
  }
}

// Scalar variables used anywhere in a statement list.
void used_vars(const std::vector<StmtPtr>& body, std::set<std::string>& out) {
  for (const auto& s : body) {
    switch (s->kind) {
      case Stmt::K::kLet:
      case Stmt::K::kAccum:
      case Stmt::K::kCharge:
        if (s->expr) s->expr->collect_vars(out);
        break;
      case Stmt::K::kIf:
        s->expr->collect_vars(out);
        used_vars(s->then_body, out);
        used_vars(s->else_body, out);
        break;
      default:
        break;
    }
  }
}

}  // namespace

std::vector<StmtPtr> eliminate_dead_lets(const std::vector<StmtPtr>& body,
                                         std::size_t* removed) {
  std::set<std::string> used;
  used_vars(body, used);

  std::vector<StmtPtr> out;
  out.reserve(body.size());
  for (const auto& s : body) {
    if (s->kind == Stmt::K::kLet && used.count(s->dst) == 0) {
      if (removed) ++*removed;
      continue;
    }
    if (s->kind == Stmt::K::kIf) {
      std::vector<StmtPtr> then_body =
          eliminate_dead_lets(s->then_body, removed);
      std::vector<StmtPtr> else_body =
          eliminate_dead_lets(s->else_body, removed);
      out.push_back(Stmt::if_(s->expr, std::move(then_body),
                              std::move(else_body)));
      continue;
    }
    out.push_back(s);
  }
  return out;
}

Module optimize(const Module& module, OptStats* stats) {
  Module out;
  out.classes = module.classes;
  OptStats local;

  for (const Function& fn : module.functions) {
    Function nf;
    nf.name = fn.name;
    nf.param = fn.param;
    nf.param_class = fn.param_class;
    nf.body = fn.body;

    for (;;) {
      ++local.passes;
      std::size_t folded = 0, removed = 0;
      nf.body = fold_body(nf.body, &folded);
      nf.body = eliminate_dead_lets(nf.body, &removed);
      local.folded_exprs += folded;
      local.dead_lets_removed += removed;
      if (folded == 0 && removed == 0) break;
      DPA_CHECK(local.passes < 1000) << "optimizer failed to converge";
    }
    out.functions.push_back(std::move(nf));
  }
  if (stats) *stats = local;
  return out;
}

}  // namespace dpa::compiler
