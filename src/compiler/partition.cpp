#include "compiler/partition.h"

#include <algorithm>
#include <sstream>

#include "support/assert.h"

namespace dpa::compiler {

namespace {

// ---------- use/def analysis ----------

// Variables (scalars and pointers) a statement reads.
void stmt_uses(const Stmt& s, std::set<std::string>& out) {
  switch (s.kind) {
    case Stmt::K::kLet:
    case Stmt::K::kAccum:
    case Stmt::K::kCharge:
      if (s.expr) s.expr->collect_vars(out);
      break;
    case Stmt::K::kReadScalar:
    case Stmt::K::kReadPtr:
      out.insert(s.ptr);
      break;
    case Stmt::K::kSpawn:
    case Stmt::K::kSpawnChildren:
      out.insert(s.ptr);
      break;
    case Stmt::K::kIf:
      s.expr->collect_vars(out);
      for (const auto& t : s.then_body) stmt_uses(*t, out);
      for (const auto& e : s.else_body) stmt_uses(*e, out);
      break;
  }
}

// Variables a statement defines.
void stmt_defs(const Stmt& s, std::set<std::string>& out) {
  switch (s.kind) {
    case Stmt::K::kLet:
    case Stmt::K::kReadScalar:
    case Stmt::K::kReadPtr:
      out.insert(s.dst);
      break;
    case Stmt::K::kIf:
      for (const auto& t : s.then_body) stmt_defs(*t, out);
      for (const auto& e : s.else_body) stmt_defs(*e, out);
      break;
    default:
      break;
  }
}

bool intersects(const std::set<std::string>& a,
                const std::set<std::string>& b) {
  for (const auto& x : a)
    if (b.count(x)) return true;
  return false;
}

// ---------- the partitioner ----------

struct FnBuilder {
  const Module* module = nullptr;
  ThreadProgram* program = nullptr;
  const Function* fn = nullptr;
  // var -> pointee class, for every pointer variable in scope.
  std::map<std::string, std::string> ptr_class;
};

struct TemplateCtx {
  int tmpl_id = -1;  // index into program->templates (stable across growth)
  std::set<std::string> defined_scalars;
  // Pointer vars visible in this template (label + hoisted ptr reads).
  std::set<std::string> visible_ptrs;
};

ThreadTemplate& tmpl_of(FnBuilder& fb, const TemplateCtx& ctx) {
  return fb.program->templates[std::size_t(ctx.tmpl_id)];
}

void compile_stmts(FnBuilder& fb, TemplateCtx ctx,
                   std::vector<StmtPtr> stmts);

// Compiles one statement that stays in the current template; reads through
// the label become hoisted reads.
void compile_into(FnBuilder& fb, TemplateCtx& ctx, const Stmt& s,
                  std::vector<TOpPtr>& ops) {
  ThreadTemplate& tmpl = tmpl_of(fb, ctx);
  auto op = std::make_shared<TOp>();
  switch (s.kind) {
    case Stmt::K::kLet:
      op->kind = TOp::K::kLet;
      op->dst = s.dst;
      op->expr = s.expr;
      ops.push_back(std::move(op));
      ctx.defined_scalars.insert(s.dst);
      return;
    case Stmt::K::kAccum:
      op->kind = TOp::K::kAccum;
      op->dst = s.dst;
      op->expr = s.expr;
      ops.push_back(std::move(op));
      return;
    case Stmt::K::kCharge:
      op->kind = TOp::K::kCharge;
      op->expr = s.expr;
      ops.push_back(std::move(op));
      return;
    case Stmt::K::kReadScalar:
    case Stmt::K::kReadPtr: {
      DPA_CHECK(s.ptr == tmpl.label_var)
          << "internal: non-label read reached compile_into";
      const ClassDef& cls = fb.module->cls(tmpl.label_class);
      HoistedRead read;
      read.dst = s.dst;
      read.field = s.field;
      read.is_ptr = (s.kind == Stmt::K::kReadPtr);
      read.slot = read.is_ptr ? cls.ptr_slot(s.field)
                              : cls.scalar_slot(s.field);
      DPA_CHECK(read.slot >= 0)
          << "class '" << cls.name << "' has no "
          << (read.is_ptr ? "pointer" : "scalar") << " field '" << s.field
          << "'";
      tmpl.reads.push_back(read);
      if (read.is_ptr) {
        ctx.visible_ptrs.insert(s.dst);
        fb.ptr_class[s.dst] =
            cls.ptr_fields[std::size_t(read.slot)].pointee;
      } else {
        ctx.defined_scalars.insert(s.dst);
      }
      return;
    }
    case Stmt::K::kSpawn: {
      DPA_CHECK(ctx.visible_ptrs.count(s.ptr))
          << "spawn pointer '" << s.ptr
          << "' is not visible in the thread labeled '" << tmpl.label_var
          << "'";
      op->kind = TOp::K::kSpawn;
      op->ptr = s.ptr;
      op->tmpl = fb.program->entry_of(s.callee);
      ops.push_back(std::move(op));
      return;
    }
    case Stmt::K::kSpawnChildren: {
      DPA_CHECK(s.ptr == tmpl.label_var)
          << "spawn_children must fan out from the thread's own label";
      op->kind = TOp::K::kSpawnChildren;
      op->ptr = s.ptr;
      op->tmpl = fb.program->entry_of(s.callee);
      ops.push_back(std::move(op));
      return;
    }
    case Stmt::K::kIf: {
      // Branches may touch only the label (checked recursively here).
      op->kind = TOp::K::kIf;
      op->expr = s.expr;
      for (const auto& t : s.then_body)
        compile_into(fb, ctx, *t, op->then_body);
      for (const auto& e : s.else_body)
        compile_into(fb, ctx, *e, op->else_body);
      ops.push_back(std::move(op));
      return;
    }
  }
  DPA_PANIC("bad stmt kind");
}

// Does this statement (or anything nested) dereference a pointer other than
// the label? That forces a template split.
const Stmt* find_foreign_deref(const Stmt& s, const std::string& label) {
  switch (s.kind) {
    case Stmt::K::kReadScalar:
    case Stmt::K::kReadPtr:
      if (s.ptr != label) return &s;
      return nullptr;
    case Stmt::K::kIf:
      for (const auto& t : s.then_body)
        if (const Stmt* f = find_foreign_deref(*t, label)) return f;
      for (const auto& e : s.else_body)
        if (const Stmt* f = find_foreign_deref(*e, label)) return f;
      return nullptr;
    default:
      return nullptr;
  }
}

void compile_stmts(FnBuilder& fb, TemplateCtx ctx,
                   std::vector<StmtPtr> stmts) {
  for (std::size_t i = 0; i < stmts.size(); ++i) {
    const Stmt& s = *stmts[i];
    const Stmt* foreign =
        find_foreign_deref(s, tmpl_of(fb, ctx).label_var);

    if (foreign == nullptr) {
      compile_into(fb, ctx, s, tmpl_of(fb, ctx).ops);
      continue;
    }

    // Split: a new template labeled with the foreign pointer. Statements
    // that transitively depend on it move; independent ones stay.
    const std::string q = foreign->ptr;
    DPA_CHECK(ctx.visible_ptrs.count(q))
        << "dereference of pointer '" << q
        << "' which is not visible in the thread labeled '"
        << tmpl_of(fb, ctx).label_var << "' (function " << fb.fn->name
        << ")";

    std::set<std::string> moved_defs{q};
    std::vector<StmtPtr> moved, kept;
    for (std::size_t j = i; j < stmts.size(); ++j) {
      std::set<std::string> uses;
      stmt_uses(*stmts[j], uses);
      const bool depends = intersects(uses, moved_defs);
      if (depends) {
        stmt_defs(*stmts[j], moved_defs);
        moved.push_back(stmts[j]);
      } else {
        kept.push_back(stmts[j]);
      }
    }
    // A kept statement must not define anything the moved thread uses
    // (its defs run after the spawn closure captured its inputs).
    std::set<std::string> kept_defs, moved_uses;
    for (const auto& k : kept) stmt_defs(*k, kept_defs);
    for (const auto& m : moved) stmt_uses(*m, moved_uses);
    DPA_CHECK(!intersects(kept_defs, moved_uses))
        << "unsupported dependence: a statement independent of '" << q
        << "' defines a value the dependent thread uses (function "
        << fb.fn->name << ")";

    // New template for the moved statements.
    const int nid = int(fb.program->templates.size());
    ThreadTemplate nt;
    nt.id = nid;
    nt.function = fb.fn->name;
    nt.label_var = q;
    const auto cls_it = fb.ptr_class.find(q);
    DPA_CHECK(cls_it != fb.ptr_class.end());
    nt.label_class = cls_it->second;
    // Captures: scalars defined so far that the moved thread needs, plus
    // pointer variables it spawns on or dereferences later (q itself is
    // the label and travels as the thread's object).
    for (const auto& v : moved_uses) {
      if (ctx.defined_scalars.count(v)) nt.captures.push_back(v);
      if (v != q && ctx.visible_ptrs.count(v)) nt.ptr_captures.push_back(v);
    }
    std::sort(nt.captures.begin(), nt.captures.end());
    std::sort(nt.ptr_captures.begin(), nt.ptr_captures.end());
    fb.program->templates.push_back(std::move(nt));

    auto spawn = std::make_shared<TOp>();
    spawn->kind = TOp::K::kSpawn;
    spawn->ptr = q;
    spawn->tmpl = nid;
    tmpl_of(fb, ctx).ops.push_back(std::move(spawn));

    // Compile the kept remainder into the current template...
    std::vector<StmtPtr> kept_copy = kept;
    compile_stmts(fb, ctx, std::move(kept_copy));

    // ...and the moved statements into the new one.
    TemplateCtx nctx;
    nctx.tmpl_id = nid;
    for (const auto& v : tmpl_of(fb, nctx).captures)
      nctx.defined_scalars.insert(v);
    for (const auto& v : tmpl_of(fb, nctx).ptr_captures)
      nctx.visible_ptrs.insert(v);
    nctx.visible_ptrs.insert(q);
    compile_stmts(fb, nctx, std::move(moved));
    return;
  }
}

}  // namespace

ThreadProgram partition(const Module& module) {
  ThreadProgram program;

  // Pre-create entry templates so (mutually) recursive spawns resolve.
  for (const Function& fn : module.functions) {
    DPA_CHECK(module.has_class(fn.param_class))
        << "function " << fn.name << ": unknown class " << fn.param_class;
    ThreadTemplate entry;
    entry.id = int(program.templates.size());
    entry.function = fn.name;
    entry.label_var = fn.param;
    entry.label_class = fn.param_class;
    program.fn_entry[fn.name] = entry.id;
    program.templates.push_back(std::move(entry));
  }

  for (const Function& fn : module.functions) {
    FnBuilder fb;
    fb.module = &module;
    fb.program = &program;
    fb.fn = &fn;
    fb.ptr_class[fn.param] = fn.param_class;

    TemplateCtx ctx;
    ctx.tmpl_id = program.fn_entry[fn.name];
    ctx.visible_ptrs.insert(fn.param);
    compile_stmts(fb, ctx, fn.body);
  }
  return program;
}

}  // namespace dpa::compiler
