// Mini-IR for pointer-based computations: the input language of the
// thread-partitioning pass (the paper's compiler component).
//
// The source model mirrors the ICC++ subset the paper compiles: functions
// take one pointer parameter (the PBDS node being visited), read its fields,
// do local arithmetic, accumulate into commutative reduction cells, and
// recurse concurrently through pointer fields (`conc` semantics: no
// dependence between spawned traversals other than the reductions).
//
// Example (a binary-tree sum):
//
//   Function: visit(t : Tree)
//     v  = t->value            (ReadScalar)
//     sum += v                 (Accum; commutative)
//     charge(50)               (Charge; abstract work)
//     spawn visit(t->left)     (Spawn through pointer field)
//     spawn visit(t->right)
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace dpa::compiler {

// ---------- object classes ----------

struct PtrField {
  std::string name;
  std::string pointee;  // class name
};

struct ClassDef {
  std::string name;
  std::vector<std::string> scalar_fields;
  std::vector<PtrField> ptr_fields;

  int scalar_slot(const std::string& field) const;
  int ptr_slot(const std::string& field) const;
};

// ---------- expressions ----------

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class K : std::uint8_t { kConst, kVar, kBin };
  enum class BinOp : std::uint8_t { kAdd, kSub, kMul, kDiv, kLess, kGreater };

  K kind = K::kConst;
  double cval = 0;
  std::string var;
  BinOp op = BinOp::kAdd;
  ExprPtr lhs, rhs;

  static ExprPtr c(double v);
  static ExprPtr v(std::string name);
  static ExprPtr bin(BinOp op, ExprPtr l, ExprPtr r);
  static ExprPtr add(ExprPtr l, ExprPtr r) { return bin(BinOp::kAdd, l, r); }
  static ExprPtr sub(ExprPtr l, ExprPtr r) { return bin(BinOp::kSub, l, r); }
  static ExprPtr mul(ExprPtr l, ExprPtr r) { return bin(BinOp::kMul, l, r); }
  static ExprPtr div(ExprPtr l, ExprPtr r) { return bin(BinOp::kDiv, l, r); }
  static ExprPtr less(ExprPtr l, ExprPtr r) { return bin(BinOp::kLess, l, r); }

  double eval(const std::map<std::string, double>& env) const;
  void collect_vars(std::set<std::string>& out) const;
  std::string to_string() const;
};

// ---------- statements ----------

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

struct Stmt {
  enum class K : std::uint8_t {
    kLet,            // dst = expr
    kReadScalar,     // dst = ptr->field
    kReadPtr,        // dst = ptr->field        (pointer-valued)
    kAccum,          // accumulator dst += expr (commutative reduction)
    kCharge,         // charge(expr) abstract work units (ns)
    kIf,             // if (expr) then_body else else_body
    kSpawn,          // conc call callee(ptr)   (ptr var or param)
    kSpawnChildren,  // conc call callee(q) for every non-null ptr field q
                     // of `ptr`'s object
  };

  K kind = K::kLet;
  std::string dst;
  std::string ptr;
  std::string field;
  ExprPtr expr;
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;
  std::string callee;

  static StmtPtr let(std::string dst, ExprPtr e);
  static StmtPtr read_scalar(std::string dst, std::string ptr,
                             std::string field);
  static StmtPtr read_ptr(std::string dst, std::string ptr, std::string field);
  static StmtPtr accum(std::string cell, ExprPtr e);
  static StmtPtr charge(ExprPtr e);
  static StmtPtr if_(ExprPtr cond, std::vector<StmtPtr> then_body,
                     std::vector<StmtPtr> else_body = {});
  static StmtPtr spawn(std::string callee, std::string ptr);
  static StmtPtr spawn_children(std::string callee, std::string ptr);
};

// ---------- functions / module ----------

struct Function {
  std::string name;
  std::string param;        // the pointer parameter
  std::string param_class;  // its pointee class
  std::vector<StmtPtr> body;
};

struct Module {
  std::vector<ClassDef> classes;
  std::vector<Function> functions;

  const ClassDef& cls(const std::string& name) const;
  const Function& fn(const std::string& name) const;
  bool has_class(const std::string& name) const;
};

}  // namespace dpa::compiler
