#include "compiler/thread_program.h"

#include <sstream>

#include "support/assert.h"

namespace dpa::compiler {

int ThreadProgram::entry_of(const std::string& fn) const {
  const auto it = fn_entry.find(fn);
  DPA_CHECK(it != fn_entry.end()) << "unknown function '" << fn << "'";
  return it->second;
}

ThreadProgram::Stats ThreadProgram::stats() const {
  Stats s;
  s.num_templates = templates.size();
  for (const auto& t : templates) {
    s.total_hoisted_reads += t.reads.size();
    s.max_reads_per_thread = std::max(s.max_reads_per_thread, t.reads.size());
  }
  // Spawn sites, recursively through If bodies.
  std::size_t spawns = 0;
  auto count_ops = [&](const std::vector<TOpPtr>& ops, auto&& self) -> void {
    for (const auto& op : ops) {
      if (op->kind == TOp::K::kSpawn || op->kind == TOp::K::kSpawnChildren)
        ++spawns;
      if (op->kind == TOp::K::kIf) {
        self(op->then_body, self);
        self(op->else_body, self);
      }
    }
  };
  for (const auto& t : templates) count_ops(t.ops, count_ops);
  s.total_spawn_sites = spawns;
  return s;
}

namespace {

void dump_ops(std::ostringstream& os, const std::vector<TOpPtr>& ops,
              int indent) {
  const std::string pad(std::size_t(indent), ' ');
  for (const auto& op : ops) {
    switch (op->kind) {
      case TOp::K::kLet:
        os << pad << op->dst << " = " << op->expr->to_string() << "\n";
        break;
      case TOp::K::kAccum:
        os << pad << op->dst << " += " << op->expr->to_string() << "\n";
        break;
      case TOp::K::kCharge:
        os << pad << "charge " << op->expr->to_string() << "\n";
        break;
      case TOp::K::kIf:
        os << pad << "if " << op->expr->to_string() << ":\n";
        dump_ops(os, op->then_body, indent + 2);
        if (!op->else_body.empty()) {
          os << pad << "else:\n";
          dump_ops(os, op->else_body, indent + 2);
        }
        break;
      case TOp::K::kSpawn:
        os << pad << "spawn T" << op->tmpl << " on " << op->ptr << "\n";
        break;
      case TOp::K::kSpawnChildren:
        os << pad << "spawn T" << op->tmpl << " on children(" << op->ptr
           << ")\n";
        break;
    }
  }
}

}  // namespace

std::string ThreadProgram::dump() const {
  std::ostringstream os;
  for (const auto& t : templates) {
    os << "thread T" << t.id << " [" << t.function << "] label " << t.label_var
       << " : " << t.label_class;
    if (!t.captures.empty()) {
      os << " captures(";
      for (std::size_t i = 0; i < t.captures.size(); ++i)
        os << (i ? ", " : "") << t.captures[i];
      os << ")";
    }
    if (!t.ptr_captures.empty()) {
      os << " ptr_captures(";
      for (std::size_t i = 0; i < t.ptr_captures.size(); ++i)
        os << (i ? ", " : "") << t.ptr_captures[i];
      os << ")";
    }
    os << "\n";
    for (const auto& r : t.reads) {
      os << "  read " << r.dst << " = " << t.label_var << "->" << r.field
         << (r.is_ptr ? " (ptr)" : "") << "\n";
    }
    dump_ops(os, t.ops, 2);
  }
  return os.str();
}

std::string ThreadProgram::to_dot() const {
  std::ostringstream os;
  os << "digraph threads {\n  node [shape=box];\n";
  for (const auto& t : templates) {
    os << "  T" << t.id << " [label=\"T" << t.id << " [" << t.function
       << "]\\nlabel " << t.label_var << " : " << t.label_class;
    if (!t.reads.empty()) {
      os << "\\nreads:";
      for (const auto& r : t.reads) os << " " << r.field;
    }
    if (!t.captures.empty()) {
      os << "\\ncaptures:";
      for (const auto& c : t.captures) os << " " << c;
    }
    os << "\"];\n";
  }
  auto edges = [&](const std::vector<TOpPtr>& ops, int from,
                   auto&& self) -> void {
    for (const auto& op : ops) {
      if (op->kind == TOp::K::kSpawn) {
        os << "  T" << from << " -> T" << op->tmpl << " [label=\"" << op->ptr
           << "\"];\n";
      } else if (op->kind == TOp::K::kSpawnChildren) {
        os << "  T" << from << " -> T" << op->tmpl
           << " [label=\"children(" << op->ptr << ")\", style=dashed];\n";
      } else if (op->kind == TOp::K::kIf) {
        self(op->then_body, from, self);
        self(op->else_body, from, self);
      }
    }
  };
  for (const auto& t : templates) edges(t.ops, t.id, edges);
  os << "}\n";
  return os.str();
}

}  // namespace dpa::compiler
