// Text front end for the mini-IR, so traversal kernels can be written as
// source rather than built with the C++ statement factories.
//
// Grammar (line comments start with '#'):
//
//   module    := (class | fn)*
//   class     := "class" IDENT "{" field* "}"
//   field     := "scalar" IDENT ";"
//              | "ptr" IDENT ":" IDENT ";"          # name : pointee class
//   fn        := "fn" IDENT "(" IDENT ":" IDENT ")" block
//   block     := "{" stmt* "}"
//   stmt      := IDENT "=" IDENT "->" IDENT ";"     # field read (kind is
//                                                   # inferred from class)
//              | IDENT "=" expr ";"                 # let
//              | IDENT "+=" expr ";"                # accumulate
//              | "charge" expr ";"
//              | "if" "(" expr ")" block ("else" block)?
//              | "spawn" IDENT "(" IDENT ")" ";"
//              | "spawn_children" IDENT "(" IDENT ")" ";"
//   expr      := cmp; cmp := add (("<" | ">") add)?
//   add       := mul (("+" | "-") mul)*
//   mul       := prim (("*" | "/") prim)*
//   prim      := NUMBER | IDENT | "(" expr ")"
//
// The parser tracks pointer variables and their classes, so `x = p->f`
// resolves to a scalar or pointer read from the declared layout; unknown
// classes, fields, or variables are reported with line numbers.
#pragma once

#include <string>
#include <string_view>

#include "compiler/ir.h"

namespace dpa::compiler {

// Parses a module from source text. Panics (with line information) on
// syntax or semantic errors — inputs are developer-authored kernels.
Module parse_module(std::string_view source);

}  // namespace dpa::compiler
