// The thread-partitioning pass's output: a program of non-blocking thread
// templates. Each template is labeled with the pointer variable whose object
// it consumes; every field access through that pointer is hoisted to the
// template entry (the paper's access hoisting), so once the object arrives
// the template runs to completion with no further remote touches — the
// non-blocking guarantee the runtime relies on.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/ir.h"

namespace dpa::compiler {

struct TOp;
using TOpPtr = std::shared_ptr<const TOp>;

struct TOp {
  enum class K : std::uint8_t {
    kLet,
    kAccum,
    kCharge,
    kIf,
    kSpawn,          // create thread `tmpl` labeled with pointer var `ptr`
    kSpawnChildren,  // create thread `tmpl` per non-null ptr field of label
  };

  K kind = K::kLet;
  std::string dst;
  ExprPtr expr;
  std::vector<TOpPtr> then_body;
  std::vector<TOpPtr> else_body;
  std::string ptr;
  int tmpl = -1;  // target template id of spawns
};

// A field of the labeled object read at template entry.
struct HoistedRead {
  std::string dst;    // register (scalar) or pointer var it defines
  std::string field;
  bool is_ptr = false;
  int slot = -1;      // class slot, resolved at compile time
};

struct ThreadTemplate {
  int id = -1;
  std::string function;     // source function this came from
  std::string label_var;    // the pointer the thread is labeled with
  std::string label_class;  // pointee class
  std::vector<HoistedRead> reads;
  std::vector<TOpPtr> ops;
  // Scalar registers whose values the creation site captures.
  std::vector<std::string> captures;
  // Pointer variables the creation site captures (hoisted reads of earlier
  // templates that this thread spawns on).
  std::vector<std::string> ptr_captures;
};

struct ThreadProgram {
  std::vector<ThreadTemplate> templates;
  std::map<std::string, int> fn_entry;  // function name -> entry template

  const ThreadTemplate& at(int id) const { return templates[std::size_t(id)]; }
  int entry_of(const std::string& fn) const;

  // Static statistics — the compiler half of the paper's Table 1.
  struct Stats {
    std::size_t num_templates = 0;      // static threads
    std::size_t total_hoisted_reads = 0;
    std::size_t max_reads_per_thread = 0;
    std::size_t total_spawn_sites = 0;  // labeled thread-creation sites
  };
  Stats stats() const;

  std::string dump() const;  // human-readable listing (golden-tested)

  // Graphviz rendering of the thread structure: one node per template
  // (label, reads, captures), one edge per spawn site.
  std::string to_dot() const;
};

}  // namespace dpa::compiler
