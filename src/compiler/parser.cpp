#include "compiler/parser.h"

#include <cctype>
#include <map>
#include <vector>

#include "support/assert.h"

namespace dpa::compiler {

namespace {

struct Token {
  enum class K { kIdent, kNumber, kSymbol, kEnd };
  K kind = K::kEnd;
  std::string text;
  double number = 0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    skip_space();
    current_ = Token{};
    current_.line = line_;
    if (pos_ >= src_.size()) {
      current_.kind = Token::K::kEnd;
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = Token::K::kIdent;
      current_.text = std::string(src_.substr(start, pos_ - start));
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < src_.size() &&
         std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '.' || src_[pos_] == 'e' || src_[pos_] == 'E' ||
              ((src_[pos_] == '+' || src_[pos_] == '-') && pos_ > start &&
               (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E')))) {
        ++pos_;
      }
      current_.kind = Token::K::kNumber;
      current_.text = std::string(src_.substr(start, pos_ - start));
      try {
        current_.number = std::stod(current_.text);
      } catch (const std::exception&) {
        DPA_PANIC("line " << line_ << ": bad number '" << current_.text
                          << "'");
      }
      return;
    }
    // Multi-char symbols first.
    for (const char* sym : {"->", "+="}) {
      const std::size_t len = 2;
      if (src_.substr(pos_, len) == sym) {
        current_.kind = Token::K::kSymbol;
        current_.text = sym;
        pos_ += len;
        return;
      }
    }
    current_.kind = Token::K::kSymbol;
    current_.text = std::string(1, c);
    ++pos_;
  }

  void skip_space() {
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ < src_.size() && src_[pos_] == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

class Parser {
 public:
  explicit Parser(std::string_view src) : lex_(src) {}

  Module parse() {
    Module m;
    while (lex_.peek().kind != Token::K::kEnd) {
      const Token t = lex_.peek();
      if (t.kind == Token::K::kIdent && t.text == "class") {
        m.classes.push_back(parse_class());
      } else if (t.kind == Token::K::kIdent && t.text == "fn") {
        module_ = &m;  // classes must precede functions that use them
        m.functions.push_back(parse_fn());
      } else {
        fail(t, "expected 'class' or 'fn'");
      }
    }
    return m;
  }

 private:
  [[noreturn]] void fail(const Token& t, const std::string& msg) {
    DPA_PANIC("line " << t.line << ": " << msg << " (got '" << t.text
                      << "')");
  }

  Token expect_ident() {
    Token t = lex_.take();
    if (t.kind != Token::K::kIdent) fail(t, "expected identifier");
    return t;
  }

  void expect_symbol(const std::string& sym) {
    Token t = lex_.take();
    if (t.kind != Token::K::kSymbol || t.text != sym)
      fail(t, "expected '" + sym + "'");
  }

  bool peek_symbol(const std::string& sym) {
    const Token& t = lex_.peek();
    return t.kind == Token::K::kSymbol && t.text == sym;
  }

  bool peek_keyword(const std::string& kw) {
    const Token& t = lex_.peek();
    return t.kind == Token::K::kIdent && t.text == kw;
  }

  ClassDef parse_class() {
    lex_.take();  // class
    ClassDef cls;
    cls.name = expect_ident().text;
    expect_symbol("{");
    while (!peek_symbol("}")) {
      const Token kind = expect_ident();
      if (kind.text == "scalar") {
        cls.scalar_fields.push_back(expect_ident().text);
      } else if (kind.text == "ptr") {
        PtrField f;
        f.name = expect_ident().text;
        expect_symbol(":");
        f.pointee = expect_ident().text;
        cls.ptr_fields.push_back(std::move(f));
      } else {
        fail(kind, "expected 'scalar' or 'ptr'");
      }
      expect_symbol(";");
    }
    expect_symbol("}");
    return cls;
  }

  Function parse_fn() {
    lex_.take();  // fn
    Function fn;
    fn.name = expect_ident().text;
    expect_symbol("(");
    fn.param = expect_ident().text;
    expect_symbol(":");
    fn.param_class = expect_ident().text;
    expect_symbol(")");
    if (!module_->has_class(fn.param_class)) {
      DPA_PANIC("function " << fn.name << ": unknown class '"
                            << fn.param_class << "'");
    }
    ptr_class_.clear();
    ptr_class_[fn.param] = fn.param_class;
    fn.body = parse_block();
    return fn;
  }

  std::vector<StmtPtr> parse_block() {
    expect_symbol("{");
    std::vector<StmtPtr> stmts;
    while (!peek_symbol("}")) stmts.push_back(parse_stmt());
    expect_symbol("}");
    return stmts;
  }

  StmtPtr parse_stmt() {
    const Token head = lex_.take();
    if (head.kind != Token::K::kIdent) fail(head, "expected statement");

    if (head.text == "charge") {
      ExprPtr e = parse_expr();
      expect_symbol(";");
      return Stmt::charge(std::move(e));
    }
    if (head.text == "if") {
      expect_symbol("(");
      ExprPtr cond = parse_expr();
      expect_symbol(")");
      auto then_body = parse_block();
      std::vector<StmtPtr> else_body;
      if (peek_keyword("else")) {
        lex_.take();
        else_body = parse_block();
      }
      return Stmt::if_(std::move(cond), std::move(then_body),
                       std::move(else_body));
    }
    if (head.text == "spawn" || head.text == "spawn_children") {
      const std::string callee = expect_ident().text;
      expect_symbol("(");
      const Token arg = expect_ident();
      expect_symbol(")");
      expect_symbol(";");
      if (ptr_class_.find(arg.text) == ptr_class_.end())
        fail(arg, "unknown pointer variable");
      return head.text == "spawn"
                 ? Stmt::spawn(callee, arg.text)
                 : Stmt::spawn_children(callee, arg.text);
    }

    // Assignment forms: `x = ...` / `acc += expr`.
    if (peek_symbol("+=")) {
      lex_.take();
      ExprPtr e = parse_expr();
      expect_symbol(";");
      return Stmt::accum(head.text, std::move(e));
    }
    expect_symbol("=");

    // Field read `x = p->f` (lookahead: IDENT "->").
    const Token& next = lex_.peek();
    if (next.kind == Token::K::kIdent) {
      const auto pit = ptr_class_.find(next.text);
      if (pit != ptr_class_.end()) {
        const Token ptr_tok = lex_.take();
        if (peek_symbol("->")) {
          lex_.take();
          const Token field = expect_ident();
          expect_symbol(";");
          const ClassDef& cls = module_->cls(pit->second);
          if (cls.scalar_slot(field.text) >= 0) {
            return Stmt::read_scalar(head.text, ptr_tok.text, field.text);
          }
          const int pslot = cls.ptr_slot(field.text);
          if (pslot < 0) {
            fail(field, "class '" + cls.name + "' has no field");
          }
          ptr_class_[head.text] =
              cls.ptr_fields[std::size_t(pslot)].pointee;
          return Stmt::read_ptr(head.text, ptr_tok.text, field.text);
        }
        // A pointer variable used as a plain value: not supported.
        fail(ptr_tok, "pointer variable in scalar expression");
      }
    }
    ExprPtr e = parse_expr();
    expect_symbol(";");
    return Stmt::let(head.text, std::move(e));
  }

  ExprPtr parse_expr() { return parse_cmp(); }

  ExprPtr parse_cmp() {
    ExprPtr lhs = parse_add();
    if (peek_symbol("<") || peek_symbol(">")) {
      const std::string op = lex_.take().text;
      ExprPtr rhs = parse_add();
      return Expr::bin(op == "<" ? Expr::BinOp::kLess : Expr::BinOp::kGreater,
                       std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr parse_add() {
    ExprPtr lhs = parse_mul();
    while (peek_symbol("+") || peek_symbol("-")) {
      const std::string op = lex_.take().text;
      ExprPtr rhs = parse_mul();
      lhs = Expr::bin(op == "+" ? Expr::BinOp::kAdd : Expr::BinOp::kSub,
                      std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr parse_mul() {
    ExprPtr lhs = parse_prim();
    while (peek_symbol("*") || peek_symbol("/")) {
      const std::string op = lex_.take().text;
      ExprPtr rhs = parse_prim();
      lhs = Expr::bin(op == "*" ? Expr::BinOp::kMul : Expr::BinOp::kDiv,
                      std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr parse_prim() {
    const Token t = lex_.take();
    if (t.kind == Token::K::kNumber) return Expr::c(t.number);
    if (t.kind == Token::K::kIdent) {
      if (ptr_class_.count(t.text))
        fail(t, "pointer variable in scalar expression");
      return Expr::v(t.text);
    }
    if (t.kind == Token::K::kSymbol && t.text == "(") {
      ExprPtr e = parse_expr();
      expect_symbol(")");
      return e;
    }
    fail(t, "expected expression");
  }

  Lexer lex_;
  Module* module_ = nullptr;
  std::map<std::string, std::string> ptr_class_;
};

}  // namespace

Module parse_module(std::string_view source) {
  return Parser(source).parse();
}

}  // namespace dpa::compiler
