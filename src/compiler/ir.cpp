#include "compiler/ir.h"

#include <sstream>

#include "support/assert.h"

namespace dpa::compiler {

int ClassDef::scalar_slot(const std::string& field) const {
  for (std::size_t i = 0; i < scalar_fields.size(); ++i)
    if (scalar_fields[i] == field) return int(i);
  return -1;
}

int ClassDef::ptr_slot(const std::string& field) const {
  for (std::size_t i = 0; i < ptr_fields.size(); ++i)
    if (ptr_fields[i].name == field) return int(i);
  return -1;
}

ExprPtr Expr::c(double v) {
  auto e = std::make_shared<Expr>();
  e->kind = K::kConst;
  e->cval = v;
  return e;
}

ExprPtr Expr::v(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = K::kVar;
  e->var = std::move(name);
  return e;
}

ExprPtr Expr::bin(BinOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = K::kBin;
  e->op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

double Expr::eval(const std::map<std::string, double>& env) const {
  switch (kind) {
    case K::kConst:
      return cval;
    case K::kVar: {
      const auto it = env.find(var);
      DPA_CHECK(it != env.end()) << "undefined variable '" << var << "'";
      return it->second;
    }
    case K::kBin: {
      const double a = lhs->eval(env);
      const double b = rhs->eval(env);
      switch (op) {
        case BinOp::kAdd:
          return a + b;
        case BinOp::kSub:
          return a - b;
        case BinOp::kMul:
          return a * b;
        case BinOp::kDiv:
          return a / b;
        case BinOp::kLess:
          return a < b ? 1.0 : 0.0;
        case BinOp::kGreater:
          return a > b ? 1.0 : 0.0;
      }
      DPA_PANIC("bad binop");
    }
  }
  DPA_PANIC("bad expr kind");
}

void Expr::collect_vars(std::set<std::string>& out) const {
  switch (kind) {
    case K::kConst:
      return;
    case K::kVar:
      out.insert(var);
      return;
    case K::kBin:
      lhs->collect_vars(out);
      rhs->collect_vars(out);
      return;
  }
}

std::string Expr::to_string() const {
  switch (kind) {
    case K::kConst: {
      std::ostringstream os;
      os << cval;
      return os.str();
    }
    case K::kVar:
      return var;
    case K::kBin: {
      const char* sym = "?";
      switch (op) {
        case BinOp::kAdd:
          sym = "+";
          break;
        case BinOp::kSub:
          sym = "-";
          break;
        case BinOp::kMul:
          sym = "*";
          break;
        case BinOp::kDiv:
          sym = "/";
          break;
        case BinOp::kLess:
          sym = "<";
          break;
        case BinOp::kGreater:
          sym = ">";
          break;
      }
      return "(" + lhs->to_string() + " " + sym + " " + rhs->to_string() + ")";
    }
  }
  return "?";
}

namespace {
StmtPtr make(Stmt s) { return std::make_shared<Stmt>(std::move(s)); }
}  // namespace

StmtPtr Stmt::let(std::string dst, ExprPtr e) {
  Stmt s;
  s.kind = K::kLet;
  s.dst = std::move(dst);
  s.expr = std::move(e);
  return make(std::move(s));
}

StmtPtr Stmt::read_scalar(std::string dst, std::string ptr,
                          std::string field) {
  Stmt s;
  s.kind = K::kReadScalar;
  s.dst = std::move(dst);
  s.ptr = std::move(ptr);
  s.field = std::move(field);
  return make(std::move(s));
}

StmtPtr Stmt::read_ptr(std::string dst, std::string ptr, std::string field) {
  Stmt s;
  s.kind = K::kReadPtr;
  s.dst = std::move(dst);
  s.ptr = std::move(ptr);
  s.field = std::move(field);
  return make(std::move(s));
}

StmtPtr Stmt::accum(std::string cell, ExprPtr e) {
  Stmt s;
  s.kind = K::kAccum;
  s.dst = std::move(cell);
  s.expr = std::move(e);
  return make(std::move(s));
}

StmtPtr Stmt::charge(ExprPtr e) {
  Stmt s;
  s.kind = K::kCharge;
  s.expr = std::move(e);
  return make(std::move(s));
}

StmtPtr Stmt::if_(ExprPtr cond, std::vector<StmtPtr> then_body,
                  std::vector<StmtPtr> else_body) {
  Stmt s;
  s.kind = K::kIf;
  s.expr = std::move(cond);
  s.then_body = std::move(then_body);
  s.else_body = std::move(else_body);
  return make(std::move(s));
}

StmtPtr Stmt::spawn(std::string callee, std::string ptr) {
  Stmt s;
  s.kind = K::kSpawn;
  s.callee = std::move(callee);
  s.ptr = std::move(ptr);
  return make(std::move(s));
}

StmtPtr Stmt::spawn_children(std::string callee, std::string ptr) {
  Stmt s;
  s.kind = K::kSpawnChildren;
  s.callee = std::move(callee);
  s.ptr = std::move(ptr);
  return make(std::move(s));
}

const ClassDef& Module::cls(const std::string& name) const {
  for (const auto& c : classes)
    if (c.name == name) return c;
  DPA_PANIC("unknown class '" << name << "'");
}

const Function& Module::fn(const std::string& name) const {
  for (const auto& f : functions)
    if (f.name == name) return f;
  DPA_PANIC("unknown function '" << name << "'");
}

bool Module::has_class(const std::string& name) const {
  for (const auto& c : classes)
    if (c.name == name) return true;
  return false;
}

}  // namespace dpa::compiler
