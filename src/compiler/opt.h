// IR optimization passes, run before partitioning.
//
// Two classic cleanups that directly shrink the thread templates the
// partitioner emits (smaller captures, fewer ops per thread):
//   * constant folding — evaluates constant subexpressions;
//   * dead-let elimination — drops `x = expr` whose result no statement
//     uses (reads and accumulators are never dropped: reads define pointers
//     and have modeled cost, accumulators are externally visible).
// Both run to fixpoint; `OptStats` reports what happened.
#pragma once

#include <cstddef>

#include "compiler/ir.h"

namespace dpa::compiler {

struct OptStats {
  std::size_t folded_exprs = 0;
  std::size_t dead_lets_removed = 0;
  std::size_t passes = 0;
};

// Returns the optimized module (the input is not modified).
Module optimize(const Module& module, OptStats* stats = nullptr);

// Individual passes, exposed for tests.
ExprPtr fold_expr(const ExprPtr& expr, std::size_t* folded);
std::vector<StmtPtr> eliminate_dead_lets(const std::vector<StmtPtr>& body,
                                         std::size_t* removed);

}  // namespace dpa::compiler
