// Execution of IR programs.
//
// Two interpreters share one generic object model (`Record`):
//   * interp_direct — runs the *source* IR recursively on the host, the
//     semantic oracle;
//   * ProgramRunner — runs the *compiled* ThreadProgram on the DPA runtime,
//     mapping every template creation to Ctx::require on the labeled
//     pointer. End-to-end, compiled-on-runtime must equal direct.
//
// Accumulators are commutative reduction cells (the only cross-thread
// state), so result equality is exact up to floating-point reassociation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "compiler/thread_program.h"
#include "runtime/phase.h"

namespace dpa::compiler {

// Generic heap object for compiled programs: scalar slots + pointer slots,
// laid out per its ClassDef.
struct Record {
  std::int32_t klass = -1;  // index into Module::classes
  std::vector<double> scalars;
  std::vector<gas::GPtr<Record>> ptrs;
};

using Accums = std::map<std::string, double>;

// Builds a Record with the right slot counts for `cls`.
Record make_record(const Module& module, const std::string& cls);

// Runs `fn` on `root` directly (host recursion), accumulating into `accums`
// and summing charge expressions into `charge_total` (ns).
void interp_direct(const Module& module, const std::string& fn,
                   const Record* root, Accums& accums,
                   std::uint64_t* charge_total = nullptr);

class ProgramRunner {
 public:
  ProgramRunner(const Module& module, const ThreadProgram& program);

  // Runs one phase: roots[n] are node n's conc-loop roots, each spawning
  // `fn`'s entry template. Accumulators land in *accums.
  rt::PhaseResult run(rt::Cluster& cluster, const rt::RuntimeConfig& rcfg,
                      const std::string& fn,
                      std::vector<std::vector<gas::GPtr<Record>>> roots,
                      Accums* accums);

 private:
  const Module& module_;
  const ThreadProgram& program_;
};

}  // namespace dpa::compiler
