#include "compiler/interp.h"

#include <memory>
#include <utility>

#include "support/assert.h"

namespace dpa::compiler {

Record make_record(const Module& module, const std::string& cls) {
  const ClassDef& def = module.cls(cls);
  Record r;
  for (std::size_t i = 0; i < module.classes.size(); ++i)
    if (module.classes[i].name == cls) r.klass = std::int32_t(i);
  r.scalars.assign(def.scalar_fields.size(), 0.0);
  r.ptrs.assign(def.ptr_fields.size(), gas::GPtr<Record>{});
  return r;
}

// ---------- direct interpreter (the oracle) ----------

namespace {

struct DirectEnv {
  std::map<std::string, double> scalars;
  std::map<std::string, const Record*> ptrs;
};

void direct_stmts(const Module& module, const std::vector<StmtPtr>& stmts,
                  DirectEnv& env, Accums& accums,
                  std::uint64_t* charge_total);

void direct_fn(const Module& module, const std::string& fn_name,
               const Record* obj, Accums& accums,
               std::uint64_t* charge_total) {
  const Function& fn = module.fn(fn_name);
  DirectEnv env;
  env.ptrs[fn.param] = obj;
  direct_stmts(module, fn.body, env, accums, charge_total);
}

void direct_stmts(const Module& module, const std::vector<StmtPtr>& stmts,
                  DirectEnv& env, Accums& accums,
                  std::uint64_t* charge_total) {
  for (const auto& sp : stmts) {
    const Stmt& s = *sp;
    switch (s.kind) {
      case Stmt::K::kLet:
        env.scalars[s.dst] = s.expr->eval(env.scalars);
        break;
      case Stmt::K::kReadScalar: {
        const auto it = env.ptrs.find(s.ptr);
        DPA_CHECK(it != env.ptrs.end() && it->second != nullptr)
            << "null/unknown pointer '" << s.ptr << "'";
        const Record* obj = it->second;
        const ClassDef& cls = module.classes[std::size_t(obj->klass)];
        const int slot = cls.scalar_slot(s.field);
        DPA_CHECK(slot >= 0) << "no scalar field " << s.field;
        env.scalars[s.dst] = obj->scalars[std::size_t(slot)];
        break;
      }
      case Stmt::K::kReadPtr: {
        const auto it = env.ptrs.find(s.ptr);
        DPA_CHECK(it != env.ptrs.end() && it->second != nullptr);
        const Record* obj = it->second;
        const ClassDef& cls = module.classes[std::size_t(obj->klass)];
        const int slot = cls.ptr_slot(s.field);
        DPA_CHECK(slot >= 0) << "no pointer field " << s.field;
        env.ptrs[s.dst] = obj->ptrs[std::size_t(slot)].addr;
        break;
      }
      case Stmt::K::kAccum:
        accums[s.dst] += s.expr->eval(env.scalars);
        break;
      case Stmt::K::kCharge:
        if (charge_total)
          *charge_total += std::uint64_t(s.expr->eval(env.scalars));
        break;
      case Stmt::K::kIf:
        if (s.expr->eval(env.scalars) != 0.0)
          direct_stmts(module, s.then_body, env, accums, charge_total);
        else
          direct_stmts(module, s.else_body, env, accums, charge_total);
        break;
      case Stmt::K::kSpawn: {
        const auto it = env.ptrs.find(s.ptr);
        DPA_CHECK(it != env.ptrs.end());
        if (it->second != nullptr)
          direct_fn(module, s.callee, it->second, accums, charge_total);
        break;
      }
      case Stmt::K::kSpawnChildren: {
        const auto it = env.ptrs.find(s.ptr);
        DPA_CHECK(it != env.ptrs.end() && it->second != nullptr);
        for (const auto& child : it->second->ptrs) {
          if (child)
            direct_fn(module, s.callee, child.addr, accums, charge_total);
        }
        break;
      }
    }
  }
}

}  // namespace

void interp_direct(const Module& module, const std::string& fn,
                   const Record* root, Accums& accums,
                   std::uint64_t* charge_total) {
  DPA_CHECK(root != nullptr);
  direct_fn(module, fn, root, accums, charge_total);
}

// ---------- compiled execution on the runtime ----------

namespace {

// Environment carried from a creation site to its thread: captured scalar
// registers plus captured pointer variables.
using Env = std::map<std::string, double>;
using PEnv = std::map<std::string, gas::GPtr<Record>>;

struct Captured {
  Env scalars;
  PEnv ptrs;
};

struct RunState {
  const Module* module;
  const ThreadProgram* program;
  Accums* accums;
};

void run_template(rt::Ctx& ctx, const RunState* st, int tmpl_id,
                  const Record& obj,
                  std::shared_ptr<const Captured> captured);

// Spawns template `tmpl` on `ptr` with captures evaluated from the spawning
// thread's environments.
void spawn_template(rt::Ctx& ctx, const RunState* st, int tmpl_id,
                    gas::GPtr<Record> ptr, const Env& env,
                    const PEnv& penv) {
  if (!ptr) return;  // null pointer fields end the traversal
  const ThreadTemplate& target = st->program->at(tmpl_id);
  auto captured = std::make_shared<Captured>();
  for (const auto& name : target.captures) {
    const auto it = env.find(name);
    DPA_CHECK(it != env.end())
        << "capture '" << name << "' undefined at spawn of T" << tmpl_id;
    captured->scalars[name] = it->second;
  }
  for (const auto& name : target.ptr_captures) {
    const auto it = penv.find(name);
    DPA_CHECK(it != penv.end())
        << "pointer capture '" << name << "' undefined at spawn of T"
        << tmpl_id;
    captured->ptrs[name] = it->second;
  }
  ctx.require(ptr,
              [st, tmpl_id, captured](rt::Ctx& ctx2, const Record& obj) {
                run_template(ctx2, st, tmpl_id, obj, captured);
              });
}

void run_ops(rt::Ctx& ctx, const RunState* st, const std::vector<TOpPtr>& ops,
             const Record& obj, Env& env, PEnv& penv) {
  for (const auto& op : ops) {
    switch (op->kind) {
      case TOp::K::kLet:
        env[op->dst] = op->expr->eval(env);
        break;
      case TOp::K::kAccum:
        (*st->accums)[op->dst] += op->expr->eval(env);
        break;
      case TOp::K::kCharge:
        ctx.charge(sim::Time(op->expr->eval(env)));
        break;
      case TOp::K::kIf:
        if (op->expr->eval(env) != 0.0)
          run_ops(ctx, st, op->then_body, obj, env, penv);
        else
          run_ops(ctx, st, op->else_body, obj, env, penv);
        break;
      case TOp::K::kSpawn: {
        const auto it = penv.find(op->ptr);
        DPA_CHECK(it != penv.end())
            << "spawn pointer '" << op->ptr << "' not materialized";
        spawn_template(ctx, st, op->tmpl, it->second, env, penv);
        break;
      }
      case TOp::K::kSpawnChildren:
        for (const auto& child : obj.ptrs)
          spawn_template(ctx, st, op->tmpl, child, env, penv);
        break;
    }
  }
}

void run_template(rt::Ctx& ctx, const RunState* st, int tmpl_id,
                  const Record& obj,
                  std::shared_ptr<const Captured> captured) {
  const ThreadTemplate& tmpl = st->program->at(tmpl_id);
  Env env = captured->scalars;
  PEnv penv = captured->ptrs;

  // Access hoisting: all reads of the labeled object happen up front.
  for (const HoistedRead& read : tmpl.reads) {
    if (read.is_ptr)
      penv[read.dst] = obj.ptrs[std::size_t(read.slot)];
    else
      env[read.dst] = obj.scalars[std::size_t(read.slot)];
  }
  run_ops(ctx, st, tmpl.ops, obj, env, penv);
}

}  // namespace

ProgramRunner::ProgramRunner(const Module& module,
                             const ThreadProgram& program)
    : module_(module), program_(program) {}

rt::PhaseResult ProgramRunner::run(
    rt::Cluster& cluster, const rt::RuntimeConfig& rcfg,
    const std::string& fn,
    std::vector<std::vector<gas::GPtr<Record>>> roots, Accums* accums) {
  DPA_CHECK(accums != nullptr);
  DPA_CHECK(roots.size() == cluster.num_nodes());

  RunState st;
  st.module = &module_;
  st.program = &program_;
  st.accums = accums;
  const int entry = program_.entry_of(fn);
  const auto empty_env = std::make_shared<const Captured>();

  rt::PhaseRunner runner(cluster, rcfg);
  std::vector<rt::NodeWork> work(roots.size());
  for (std::size_t n = 0; n < roots.size(); ++n) {
    const auto& mine = roots[n];
    work[n].count = mine.size();
    work[n].item = [&st, &mine, entry, empty_env](rt::Ctx& ctx,
                                                  std::uint64_t i) {
      const gas::GPtr<Record> root = mine[std::size_t(i)];
      if (!root) return;
      ctx.require(root, [&st, entry, empty_env](rt::Ctx& ctx2,
                                                const Record& obj) {
        run_template(ctx2, &st, entry, obj, empty_env);
      });
    };
  }
  return runner.run(std::move(work));
}

}  // namespace dpa::compiler
