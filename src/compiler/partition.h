// Thread partitioning: the paper's compiler algorithm.
//
// Each source function becomes a set of non-blocking thread templates:
//   * the entry template is labeled with the function's pointer parameter;
//   * every dereference of a *different* pointer variable q starts a new
//     template labeled q — the statements that (transitively) depend on q's
//     object move into it, everything independent stays put (the dependence
//     sets partitioning);
//   * all field accesses through a template's label are hoisted to its
//     entry (access hoisting — legal because reads through the coarse alias
//     classes are side-effect free and the conc blocks carry no indirect
//     dependences);
//   * reductions (Accum) are commutative, so reordering across threads is
//     sound — the dependence the partitioner must respect is only def-use
//     on scalars and pointers.
//
// Restrictions (checked, with diagnostics): branches of an If may only
// dereference the enclosing template's label; a statement kept in the
// earlier thread may not define a value the moved thread uses; spawn
// pointers must be visible in the spawning template. These correspond to
// the paper's "coarse-grained aliasing and block-level concurrency
// information are often sufficient" scope.
#pragma once

#include "compiler/ir.h"
#include "compiler/thread_program.h"

namespace dpa::compiler {

// Compiles every function in the module into thread templates.
ThreadProgram partition(const Module& module);

}  // namespace dpa::compiler
