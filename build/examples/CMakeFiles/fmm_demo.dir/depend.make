# Empty dependencies file for fmm_demo.
# This may be replaced when dependencies are built.
