file(REMOVE_RECURSE
  "CMakeFiles/fmm_demo.dir/fmm_demo.cpp.o"
  "CMakeFiles/fmm_demo.dir/fmm_demo.cpp.o.d"
  "fmm_demo"
  "fmm_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmm_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
