# Empty compiler generated dependencies file for em3d_relax.
# This may be replaced when dependencies are built.
