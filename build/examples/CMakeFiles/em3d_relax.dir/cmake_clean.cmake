file(REMOVE_RECURSE
  "CMakeFiles/em3d_relax.dir/em3d_relax.cpp.o"
  "CMakeFiles/em3d_relax.dir/em3d_relax.cpp.o.d"
  "em3d_relax"
  "em3d_relax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em3d_relax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
