# Empty compiler generated dependencies file for compiled_traversal.
# This may be replaced when dependencies are built.
