file(REMOVE_RECURSE
  "CMakeFiles/compiled_traversal.dir/compiled_traversal.cpp.o"
  "CMakeFiles/compiled_traversal.dir/compiled_traversal.cpp.o.d"
  "compiled_traversal"
  "compiled_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiled_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
