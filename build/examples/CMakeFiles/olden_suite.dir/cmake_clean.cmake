file(REMOVE_RECURSE
  "CMakeFiles/olden_suite.dir/olden_suite.cpp.o"
  "CMakeFiles/olden_suite.dir/olden_suite.cpp.o.d"
  "olden_suite"
  "olden_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olden_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
