# Empty dependencies file for olden_suite.
# This may be replaced when dependencies are built.
