file(REMOVE_RECURSE
  "CMakeFiles/apps_property_test.dir/apps_property_test.cpp.o"
  "CMakeFiles/apps_property_test.dir/apps_property_test.cpp.o.d"
  "apps_property_test"
  "apps_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
