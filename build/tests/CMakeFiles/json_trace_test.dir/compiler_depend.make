# Empty compiler generated dependencies file for json_trace_test.
# This may be replaced when dependencies are built.
