file(REMOVE_RECURSE
  "CMakeFiles/json_trace_test.dir/json_trace_test.cpp.o"
  "CMakeFiles/json_trace_test.dir/json_trace_test.cpp.o.d"
  "json_trace_test"
  "json_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
