file(REMOVE_RECURSE
  "CMakeFiles/barnes_test.dir/barnes_test.cpp.o"
  "CMakeFiles/barnes_test.dir/barnes_test.cpp.o.d"
  "barnes_test"
  "barnes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barnes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
