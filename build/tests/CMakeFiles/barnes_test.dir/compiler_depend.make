# Empty compiler generated dependencies file for barnes_test.
# This may be replaced when dependencies are built.
