file(REMOVE_RECURSE
  "CMakeFiles/fmm_test.dir/fmm_test.cpp.o"
  "CMakeFiles/fmm_test.dir/fmm_test.cpp.o.d"
  "fmm_test"
  "fmm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
