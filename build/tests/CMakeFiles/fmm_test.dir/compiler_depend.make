# Empty compiler generated dependencies file for fmm_test.
# This may be replaced when dependencies are built.
