file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_breakdown_bh.dir/bench_fig_breakdown_bh.cpp.o"
  "CMakeFiles/bench_fig_breakdown_bh.dir/bench_fig_breakdown_bh.cpp.o.d"
  "bench_fig_breakdown_bh"
  "bench_fig_breakdown_bh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_breakdown_bh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
