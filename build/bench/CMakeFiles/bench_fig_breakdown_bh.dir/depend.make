# Empty dependencies file for bench_fig_breakdown_bh.
# This may be replaced when dependencies are built.
