# Empty compiler generated dependencies file for bench_table2_exec_times.
# This may be replaced when dependencies are built.
