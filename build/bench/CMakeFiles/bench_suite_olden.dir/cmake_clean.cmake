file(REMOVE_RECURSE
  "CMakeFiles/bench_suite_olden.dir/bench_suite_olden.cpp.o"
  "CMakeFiles/bench_suite_olden.dir/bench_suite_olden.cpp.o.d"
  "bench_suite_olden"
  "bench_suite_olden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_suite_olden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
