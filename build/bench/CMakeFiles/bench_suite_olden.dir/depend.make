# Empty dependencies file for bench_suite_olden.
# This may be replaced when dependencies are built.
