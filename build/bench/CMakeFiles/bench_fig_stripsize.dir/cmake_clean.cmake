file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_stripsize.dir/bench_fig_stripsize.cpp.o"
  "CMakeFiles/bench_fig_stripsize.dir/bench_fig_stripsize.cpp.o.d"
  "bench_fig_stripsize"
  "bench_fig_stripsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_stripsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
