# Empty dependencies file for bench_fig_stripsize.
# This may be replaced when dependencies are built.
