# Empty dependencies file for bench_ablation_templates.
# This may be replaced when dependencies are built.
