file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_templates.dir/bench_ablation_templates.cpp.o"
  "CMakeFiles/bench_ablation_templates.dir/bench_ablation_templates.cpp.o.d"
  "bench_ablation_templates"
  "bench_ablation_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
