
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_threads.cpp" "bench/CMakeFiles/bench_table1_threads.dir/bench_table1_threads.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_threads.dir/bench_table1_threads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/barnes/CMakeFiles/dpa_barnes.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/fmm/CMakeFiles/dpa_fmm.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/em3d/CMakeFiles/dpa_em3d.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/dpa_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dpa_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/fm/CMakeFiles/dpa_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/gas/CMakeFiles/dpa_gas.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dpa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
