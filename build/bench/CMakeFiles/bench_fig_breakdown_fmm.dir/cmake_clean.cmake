file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_breakdown_fmm.dir/bench_fig_breakdown_fmm.cpp.o"
  "CMakeFiles/bench_fig_breakdown_fmm.dir/bench_fig_breakdown_fmm.cpp.o.d"
  "bench_fig_breakdown_fmm"
  "bench_fig_breakdown_fmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_breakdown_fmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
