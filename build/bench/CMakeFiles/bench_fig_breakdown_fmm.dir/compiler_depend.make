# Empty compiler generated dependencies file for bench_fig_breakdown_fmm.
# This may be replaced when dependencies are built.
