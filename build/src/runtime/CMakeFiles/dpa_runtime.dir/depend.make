# Empty dependencies file for dpa_runtime.
# This may be replaced when dependencies are built.
