file(REMOVE_RECURSE
  "libdpa_runtime.a"
)
