file(REMOVE_RECURSE
  "CMakeFiles/dpa_runtime.dir/config.cpp.o"
  "CMakeFiles/dpa_runtime.dir/config.cpp.o.d"
  "CMakeFiles/dpa_runtime.dir/dpa_engine.cpp.o"
  "CMakeFiles/dpa_runtime.dir/dpa_engine.cpp.o.d"
  "CMakeFiles/dpa_runtime.dir/engine.cpp.o"
  "CMakeFiles/dpa_runtime.dir/engine.cpp.o.d"
  "CMakeFiles/dpa_runtime.dir/phase.cpp.o"
  "CMakeFiles/dpa_runtime.dir/phase.cpp.o.d"
  "CMakeFiles/dpa_runtime.dir/prefetch_engine.cpp.o"
  "CMakeFiles/dpa_runtime.dir/prefetch_engine.cpp.o.d"
  "CMakeFiles/dpa_runtime.dir/sync_engine.cpp.o"
  "CMakeFiles/dpa_runtime.dir/sync_engine.cpp.o.d"
  "libdpa_runtime.a"
  "libdpa_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpa_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
