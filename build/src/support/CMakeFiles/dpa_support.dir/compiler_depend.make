# Empty compiler generated dependencies file for dpa_support.
# This may be replaced when dependencies are built.
