file(REMOVE_RECURSE
  "CMakeFiles/dpa_support.dir/assert.cpp.o"
  "CMakeFiles/dpa_support.dir/assert.cpp.o.d"
  "CMakeFiles/dpa_support.dir/json.cpp.o"
  "CMakeFiles/dpa_support.dir/json.cpp.o.d"
  "CMakeFiles/dpa_support.dir/options.cpp.o"
  "CMakeFiles/dpa_support.dir/options.cpp.o.d"
  "CMakeFiles/dpa_support.dir/rng.cpp.o"
  "CMakeFiles/dpa_support.dir/rng.cpp.o.d"
  "CMakeFiles/dpa_support.dir/stats.cpp.o"
  "CMakeFiles/dpa_support.dir/stats.cpp.o.d"
  "CMakeFiles/dpa_support.dir/table.cpp.o"
  "CMakeFiles/dpa_support.dir/table.cpp.o.d"
  "libdpa_support.a"
  "libdpa_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpa_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
