file(REMOVE_RECURSE
  "libdpa_support.a"
)
