file(REMOVE_RECURSE
  "CMakeFiles/dpa_sim.dir/engine.cpp.o"
  "CMakeFiles/dpa_sim.dir/engine.cpp.o.d"
  "CMakeFiles/dpa_sim.dir/machine.cpp.o"
  "CMakeFiles/dpa_sim.dir/machine.cpp.o.d"
  "CMakeFiles/dpa_sim.dir/network.cpp.o"
  "CMakeFiles/dpa_sim.dir/network.cpp.o.d"
  "CMakeFiles/dpa_sim.dir/trace.cpp.o"
  "CMakeFiles/dpa_sim.dir/trace.cpp.o.d"
  "libdpa_sim.a"
  "libdpa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
