# Empty dependencies file for dpa_sim.
# This may be replaced when dependencies are built.
