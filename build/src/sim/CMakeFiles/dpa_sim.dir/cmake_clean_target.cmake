file(REMOVE_RECURSE
  "libdpa_sim.a"
)
