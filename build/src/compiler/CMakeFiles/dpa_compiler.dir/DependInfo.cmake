
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/interp.cpp" "src/compiler/CMakeFiles/dpa_compiler.dir/interp.cpp.o" "gcc" "src/compiler/CMakeFiles/dpa_compiler.dir/interp.cpp.o.d"
  "/root/repo/src/compiler/ir.cpp" "src/compiler/CMakeFiles/dpa_compiler.dir/ir.cpp.o" "gcc" "src/compiler/CMakeFiles/dpa_compiler.dir/ir.cpp.o.d"
  "/root/repo/src/compiler/opt.cpp" "src/compiler/CMakeFiles/dpa_compiler.dir/opt.cpp.o" "gcc" "src/compiler/CMakeFiles/dpa_compiler.dir/opt.cpp.o.d"
  "/root/repo/src/compiler/parser.cpp" "src/compiler/CMakeFiles/dpa_compiler.dir/parser.cpp.o" "gcc" "src/compiler/CMakeFiles/dpa_compiler.dir/parser.cpp.o.d"
  "/root/repo/src/compiler/partition.cpp" "src/compiler/CMakeFiles/dpa_compiler.dir/partition.cpp.o" "gcc" "src/compiler/CMakeFiles/dpa_compiler.dir/partition.cpp.o.d"
  "/root/repo/src/compiler/thread_program.cpp" "src/compiler/CMakeFiles/dpa_compiler.dir/thread_program.cpp.o" "gcc" "src/compiler/CMakeFiles/dpa_compiler.dir/thread_program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/dpa_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gas/CMakeFiles/dpa_gas.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dpa_support.dir/DependInfo.cmake"
  "/root/repo/build/src/fm/CMakeFiles/dpa_fm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
