file(REMOVE_RECURSE
  "CMakeFiles/dpa_compiler.dir/interp.cpp.o"
  "CMakeFiles/dpa_compiler.dir/interp.cpp.o.d"
  "CMakeFiles/dpa_compiler.dir/ir.cpp.o"
  "CMakeFiles/dpa_compiler.dir/ir.cpp.o.d"
  "CMakeFiles/dpa_compiler.dir/opt.cpp.o"
  "CMakeFiles/dpa_compiler.dir/opt.cpp.o.d"
  "CMakeFiles/dpa_compiler.dir/parser.cpp.o"
  "CMakeFiles/dpa_compiler.dir/parser.cpp.o.d"
  "CMakeFiles/dpa_compiler.dir/partition.cpp.o"
  "CMakeFiles/dpa_compiler.dir/partition.cpp.o.d"
  "CMakeFiles/dpa_compiler.dir/thread_program.cpp.o"
  "CMakeFiles/dpa_compiler.dir/thread_program.cpp.o.d"
  "libdpa_compiler.a"
  "libdpa_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpa_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
