file(REMOVE_RECURSE
  "libdpa_compiler.a"
)
