# Empty compiler generated dependencies file for dpa_compiler.
# This may be replaced when dependencies are built.
