file(REMOVE_RECURSE
  "CMakeFiles/dpa_gas.dir/heap.cpp.o"
  "CMakeFiles/dpa_gas.dir/heap.cpp.o.d"
  "libdpa_gas.a"
  "libdpa_gas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpa_gas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
