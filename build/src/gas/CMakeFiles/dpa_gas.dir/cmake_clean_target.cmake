file(REMOVE_RECURSE
  "libdpa_gas.a"
)
