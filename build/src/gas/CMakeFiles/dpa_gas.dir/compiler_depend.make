# Empty compiler generated dependencies file for dpa_gas.
# This may be replaced when dependencies are built.
