# Empty dependencies file for dpa_fmm.
# This may be replaced when dependencies are built.
