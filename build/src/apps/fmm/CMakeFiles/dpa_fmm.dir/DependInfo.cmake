
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/fmm/app.cpp" "src/apps/fmm/CMakeFiles/dpa_fmm.dir/app.cpp.o" "gcc" "src/apps/fmm/CMakeFiles/dpa_fmm.dir/app.cpp.o.d"
  "/root/repo/src/apps/fmm/expansion.cpp" "src/apps/fmm/CMakeFiles/dpa_fmm.dir/expansion.cpp.o" "gcc" "src/apps/fmm/CMakeFiles/dpa_fmm.dir/expansion.cpp.o.d"
  "/root/repo/src/apps/fmm/phase.cpp" "src/apps/fmm/CMakeFiles/dpa_fmm.dir/phase.cpp.o" "gcc" "src/apps/fmm/CMakeFiles/dpa_fmm.dir/phase.cpp.o.d"
  "/root/repo/src/apps/fmm/tree.cpp" "src/apps/fmm/CMakeFiles/dpa_fmm.dir/tree.cpp.o" "gcc" "src/apps/fmm/CMakeFiles/dpa_fmm.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/dpa_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gas/CMakeFiles/dpa_gas.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dpa_support.dir/DependInfo.cmake"
  "/root/repo/build/src/fm/CMakeFiles/dpa_fm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
