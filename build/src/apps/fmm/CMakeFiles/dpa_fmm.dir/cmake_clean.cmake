file(REMOVE_RECURSE
  "CMakeFiles/dpa_fmm.dir/app.cpp.o"
  "CMakeFiles/dpa_fmm.dir/app.cpp.o.d"
  "CMakeFiles/dpa_fmm.dir/expansion.cpp.o"
  "CMakeFiles/dpa_fmm.dir/expansion.cpp.o.d"
  "CMakeFiles/dpa_fmm.dir/phase.cpp.o"
  "CMakeFiles/dpa_fmm.dir/phase.cpp.o.d"
  "CMakeFiles/dpa_fmm.dir/tree.cpp.o"
  "CMakeFiles/dpa_fmm.dir/tree.cpp.o.d"
  "libdpa_fmm.a"
  "libdpa_fmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpa_fmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
