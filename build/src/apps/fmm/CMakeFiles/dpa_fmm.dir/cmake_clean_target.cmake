file(REMOVE_RECURSE
  "libdpa_fmm.a"
)
