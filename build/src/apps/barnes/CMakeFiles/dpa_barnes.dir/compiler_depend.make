# Empty compiler generated dependencies file for dpa_barnes.
# This may be replaced when dependencies are built.
