file(REMOVE_RECURSE
  "libdpa_barnes.a"
)
