file(REMOVE_RECURSE
  "CMakeFiles/dpa_barnes.dir/app.cpp.o"
  "CMakeFiles/dpa_barnes.dir/app.cpp.o.d"
  "CMakeFiles/dpa_barnes.dir/force.cpp.o"
  "CMakeFiles/dpa_barnes.dir/force.cpp.o.d"
  "CMakeFiles/dpa_barnes.dir/plummer.cpp.o"
  "CMakeFiles/dpa_barnes.dir/plummer.cpp.o.d"
  "CMakeFiles/dpa_barnes.dir/tree.cpp.o"
  "CMakeFiles/dpa_barnes.dir/tree.cpp.o.d"
  "libdpa_barnes.a"
  "libdpa_barnes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpa_barnes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
