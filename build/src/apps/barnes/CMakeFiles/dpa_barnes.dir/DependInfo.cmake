
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/barnes/app.cpp" "src/apps/barnes/CMakeFiles/dpa_barnes.dir/app.cpp.o" "gcc" "src/apps/barnes/CMakeFiles/dpa_barnes.dir/app.cpp.o.d"
  "/root/repo/src/apps/barnes/force.cpp" "src/apps/barnes/CMakeFiles/dpa_barnes.dir/force.cpp.o" "gcc" "src/apps/barnes/CMakeFiles/dpa_barnes.dir/force.cpp.o.d"
  "/root/repo/src/apps/barnes/plummer.cpp" "src/apps/barnes/CMakeFiles/dpa_barnes.dir/plummer.cpp.o" "gcc" "src/apps/barnes/CMakeFiles/dpa_barnes.dir/plummer.cpp.o.d"
  "/root/repo/src/apps/barnes/tree.cpp" "src/apps/barnes/CMakeFiles/dpa_barnes.dir/tree.cpp.o" "gcc" "src/apps/barnes/CMakeFiles/dpa_barnes.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/dpa_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gas/CMakeFiles/dpa_gas.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dpa_support.dir/DependInfo.cmake"
  "/root/repo/build/src/fm/CMakeFiles/dpa_fm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
