file(REMOVE_RECURSE
  "CMakeFiles/dpa_olden.dir/perimeter.cpp.o"
  "CMakeFiles/dpa_olden.dir/perimeter.cpp.o.d"
  "CMakeFiles/dpa_olden.dir/power.cpp.o"
  "CMakeFiles/dpa_olden.dir/power.cpp.o.d"
  "CMakeFiles/dpa_olden.dir/treeadd.cpp.o"
  "CMakeFiles/dpa_olden.dir/treeadd.cpp.o.d"
  "libdpa_olden.a"
  "libdpa_olden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpa_olden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
