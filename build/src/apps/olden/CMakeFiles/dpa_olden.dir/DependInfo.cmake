
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/olden/perimeter.cpp" "src/apps/olden/CMakeFiles/dpa_olden.dir/perimeter.cpp.o" "gcc" "src/apps/olden/CMakeFiles/dpa_olden.dir/perimeter.cpp.o.d"
  "/root/repo/src/apps/olden/power.cpp" "src/apps/olden/CMakeFiles/dpa_olden.dir/power.cpp.o" "gcc" "src/apps/olden/CMakeFiles/dpa_olden.dir/power.cpp.o.d"
  "/root/repo/src/apps/olden/treeadd.cpp" "src/apps/olden/CMakeFiles/dpa_olden.dir/treeadd.cpp.o" "gcc" "src/apps/olden/CMakeFiles/dpa_olden.dir/treeadd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/dpa_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gas/CMakeFiles/dpa_gas.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dpa_support.dir/DependInfo.cmake"
  "/root/repo/build/src/fm/CMakeFiles/dpa_fm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
