# Empty dependencies file for dpa_olden.
# This may be replaced when dependencies are built.
