file(REMOVE_RECURSE
  "libdpa_olden.a"
)
