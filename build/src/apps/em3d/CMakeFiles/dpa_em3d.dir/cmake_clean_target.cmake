file(REMOVE_RECURSE
  "libdpa_em3d.a"
)
