# Empty dependencies file for dpa_em3d.
# This may be replaced when dependencies are built.
