file(REMOVE_RECURSE
  "CMakeFiles/dpa_em3d.dir/em3d.cpp.o"
  "CMakeFiles/dpa_em3d.dir/em3d.cpp.o.d"
  "libdpa_em3d.a"
  "libdpa_em3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpa_em3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
