# Empty dependencies file for dpa_fm.
# This may be replaced when dependencies are built.
