file(REMOVE_RECURSE
  "CMakeFiles/dpa_fm.dir/fm.cpp.o"
  "CMakeFiles/dpa_fm.dir/fm.cpp.o.d"
  "libdpa_fm.a"
  "libdpa_fm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpa_fm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
