file(REMOVE_RECURSE
  "libdpa_fm.a"
)
