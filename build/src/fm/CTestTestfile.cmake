# CMake generated Testfile for 
# Source directory: /root/repo/src/fm
# Build directory: /root/repo/build/src/fm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
