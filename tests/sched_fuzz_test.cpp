// Schedule fuzzing for the native backend's M:N work-stealing scheduler.
//
// The scheduler's correctness argument (native_backend.h) is that no legal
// schedule — any interleaving of whole-node steals, park/unpark timing, and
// message-train flush depth — can change the bits an application computes:
// the per-node mailbox FIFO and the (src, seq)-sorted accumulation commit
// pin the observable order regardless of which worker hosts which node
// when. A proof sketch is easy to get subtly wrong, so this test attacks it
// empirically: derive a scheduler configuration from a seed (pool size,
// train depth, idle ladder, park timeout, steal on/off, steal-victim RNG
// seed), run a real application under it, and byte-compare the physics
// against the single-threaded discrete-event simulator.
//
// Every axis below changes which schedules are *reachable*:
//   * workers 1..4 over 4..64 nodes: from fully serialized multiplexing to
//     genuine cross-worker racing on an oversubscribed pool;
//   * train_max 1..64: per-message activation storms vs long batches that
//     make a node's inbox arrive in bursts;
//   * idle_spins / idle_yields / park_timeout_us: how eagerly a worker
//     gives up and parks, i.e. how often activations race with parking;
//   * steal + steal_seed: whether nodes migrate at all, and which victim
//     order the thieves probe.
//
// The sim oracle depends only on (engine, app), never on the tuning, so it
// is computed once per combination and shared across seeds. Two entries are
// registered in CTest: the fast subset (a handful of seeds, runs in the
// default suite and under TSan) and the full >=50-seed sweep (label: slow).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <sstream>
#include <string>

#include "apps/barnes/app.h"
#include "apps/em3d/em3d.h"
#include "apps/fmm/app.h"
#include "exec/backend.h"
#include "exec/native_backend.h"
#include "runtime/config.h"
#include "sim/network.h"

namespace dpa {
namespace {

sim::NetParams net() {
  sim::NetParams p;
  p.send_overhead = 400;
  p.recv_overhead = 500;
  p.latency = 1200;
  p.ns_per_byte = 3.0;
  p.nic_serialize = true;
  return p;
}

// Same engine set as determinism_test's sim-vs-native grid: every engine
// whose native execution is defined to be schedule-independent.
rt::RuntimeConfig engine_config(std::size_t which) {
  switch (which) {
    case 0: return rt::RuntimeConfig::dpa_deterministic(32);
    case 1: return rt::RuntimeConfig::caching();
    case 2: return rt::RuntimeConfig::blocking();
    default: return rt::RuntimeConfig::prefetching(8);
  }
}
constexpr std::size_t kEngines = 4;

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// One fuzzed configuration: which program to run and under which scheduler
// shape. Everything is a pure function of the seed, so a failing seed is a
// complete reproducer.
struct FuzzCase {
  std::size_t engine = 0;  // index into engine_config
  std::size_t app = 0;     // 0 = barnes, 1 = fmm, 2 = em3d
  std::uint32_t nodes = 4;
  exec::NativeBackend::Tuning tuning;

  std::string describe(std::uint64_t seed) const {
    std::ostringstream os;
    os << "seed=" << seed << " engine=" << engine << " app=" << app
       << " nodes=" << nodes << " workers=" << tuning.workers
       << " train_max=" << tuning.train_max
       << " idle_spins=" << tuning.idle_spins
       << " idle_yields=" << tuning.idle_yields
       << " park_timeout_us=" << tuning.park_timeout_us
       << " steal=" << (tuning.steal ? 1 : 0)
       << " steal_seed=" << tuning.steal_seed;
    return os.str();
  }
};

FuzzCase derive_case(std::uint64_t seed) {
  std::uint64_t s = seed;
  auto pick = [&s](std::initializer_list<std::uint32_t> options) {
    return options.begin()[splitmix64(s) % options.size()];
  };
  FuzzCase c;
  c.engine = pick({0, 1, 2, 3});
  c.app = pick({0, 1, 2});
  // em3d scales cheaply with the node count, so it also fuzzes the
  // oversubscription axis; the tree codes stay at 4 nodes.
  c.nodes = c.app == 2 ? pick({4, 16, 64}) : 4;
  c.tuning.workers = pick({1, 2, 3, 4});
  c.tuning.train_max = pick({1, 2, 4, 8, 16, 64});
  c.tuning.idle_spins = pick({0, 1, 4, 64});
  c.tuning.idle_yields = pick({0, 1, 2, 16});
  c.tuning.park_timeout_us = pick({1, 5, 50, 200});
  c.tuning.steal = (splitmix64(s) & 7) != 0;  // ~1/8 of cases: no stealing
  c.tuning.steal_seed = splitmix64(s) | 1;
  return c;
}

void append_doubles(std::string& out, const double* p, std::size_t n) {
  out.append(reinterpret_cast<const char*>(p), n * sizeof(double));
}

// Runs (engine, app, nodes) on the given substrate and packs the physics
// byte-for-byte — string equality is bit-identity, not approximation.
std::string physics(const FuzzCase& c, exec::BackendKind backend) {
  const auto rcfg = engine_config(c.engine);
  std::string snap;
  switch (c.app) {
    case 0: {
      apps::barnes::BarnesConfig cfg;
      cfg.nbodies = 128;
      cfg.nsteps = 1;
      const apps::barnes::BarnesApp bh(cfg);
      const auto run = bh.run(c.nodes, net(), rcfg, nullptr, backend);
      EXPECT_TRUE(run.all_completed());
      for (const auto& b : run.final_bodies) {
        append_doubles(snap, &b.pos.x, 3);
        append_doubles(snap, &b.vel.x, 3);
        append_doubles(snap, &b.acc.x, 3);
      }
      break;
    }
    case 1: {
      apps::fmm::FmmConfig cfg;
      cfg.nparticles = 128;
      cfg.terms = 4;
      const apps::fmm::FmmApp fmm(cfg);
      const auto run = fmm.run(c.nodes, net(), rcfg, nullptr, backend);
      EXPECT_TRUE(run.all_completed());
      for (const auto& p : run.final_particles) {
        const double vals[6] = {p.z.real(),     p.z.imag(),
                                p.vel.real(),   p.vel.imag(),
                                p.force.real(), p.force.imag()};
        append_doubles(snap, vals, 6);
      }
      break;
    }
    default: {
      apps::em3d::Em3dConfig cfg;
      cfg.e_per_node = 16;
      cfg.h_per_node = 16;
      cfg.remote_prob = 0.5;
      cfg.iters = 2;
      const apps::em3d::Em3dApp em(cfg, c.nodes);
      const auto run = em.run(net(), rcfg, nullptr, backend);
      EXPECT_TRUE(run.all_completed());
      append_doubles(snap, run.e_values.data(), run.e_values.size());
      append_doubles(snap, run.h_values.data(), run.h_values.size());
      break;
    }
  }
  EXPECT_FALSE(snap.empty());
  return snap;
}

// The simulator never sees the tuning, so one oracle serves every seed that
// lands on the same (engine, app, nodes) cell.
const std::string& sim_oracle(const FuzzCase& c) {
  static std::map<std::uint64_t, std::string>& cache =
      *new std::map<std::uint64_t, std::string>();
  const std::uint64_t key =
      (std::uint64_t(c.engine) << 32) | (std::uint64_t(c.app) << 16) | c.nodes;
  auto it = cache.find(key);
  if (it == cache.end())
    it = cache.emplace(key, physics(c, exec::BackendKind::kSim)).first;
  return it->second;
}

void run_seed(std::uint64_t seed) {
  const FuzzCase c = derive_case(seed);
  SCOPED_TRACE(c.describe(seed));
  const std::string& oracle = sim_oracle(c);
  exec::ScopedDefaultTuning guard(c.tuning);
  const std::string native = physics(c, exec::BackendKind::kNative);
  EXPECT_EQ(oracle, native);
}

// Runs in the default test pass and under TSan in CI: enough seeds to cover
// every axis at least once, cheap enough for every push.
TEST(SchedFuzz, FastSeedSubset) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) run_seed(seed);
}

// The full sweep (label: slow): 56 further seeds, disjoint from the fast
// subset, for >=50 distinct schedules beyond the smoke pass.
TEST(SchedFuzz, FiftySeedSweep) {
  for (std::uint64_t seed = 8; seed < 64; ++seed) run_seed(seed);
}

}  // namespace
}  // namespace dpa
