// Tests for the observability layer: metrics registry, structured tracer,
// Chrome-trace / metrics JSON exporters, and the end-to-end wiring through
// the runtime (counters in the registry must equal the hand-collected
// RtTotals of the published phases).
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "apps/em3d/em3d.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "obs/trace.h"
#include "runtime/phase.h"
#include "support/json.h"

namespace dpa {
namespace {

// ---------- minimal JSON syntax validator ----------
//
// Recursive-descent checker: accepts iff the input is one well-formed JSON
// value. Values are not materialized; this guards the exporters against
// missing commas/quotes/braces without pulling in a parser dependency.
class JsonChecker {
 public:
  static bool valid(const std::string& text) {
    JsonChecker c(text);
    return c.value() && (c.ws(), c.pos_ == text.size());
  }

 private:
  explicit JsonChecker(const std::string& t) : text_(t) {}

  void ws() {
    while (pos_ < text_.size() && std::isspace(unsigned(text_[pos_]))) ++pos_;
  }
  bool eat(char c) {
    ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        if (++pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    return eat('"');
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(unsigned(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      digits = digits || std::isdigit(unsigned(text_[pos_]));
      ++pos_;
    }
    return digits && pos_ > start;
  }
  bool value() {
    ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': {
        ++pos_;
        if (eat('}')) return true;
        do {
          ws();
          if (!string() || !eat(':') || !value()) return false;
        } while (eat(','));
        return eat('}');
      }
      case '[': {
        ++pos_;
        if (eat(']')) return true;
        do {
          if (!value()) return false;
        } while (eat(','));
        return eat(']');
      }
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(JsonChecker, SelfTest) {
  EXPECT_TRUE(JsonChecker::valid(R"({"a":[1,2.5,-3e2],"b":{"c":"x\"y"}})"));
  EXPECT_TRUE(JsonChecker::valid("[]"));
  EXPECT_FALSE(JsonChecker::valid(R"({"a":1,})"));
  EXPECT_FALSE(JsonChecker::valid(R"({"a" 1})"));
  EXPECT_FALSE(JsonChecker::valid(R"({"a":1} trailing)"));
}

// Every "ts":<number> in emission order (the exporter sorts by time).
std::vector<double> extract_timestamps(const std::string& json) {
  std::vector<double> out;
  std::size_t pos = 0;
  while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    out.push_back(std::stod(json.substr(pos)));
  }
  return out;
}

// ---------- MetricsRegistry ----------

TEST(Metrics, CounterGetOrCreateIsStable) {
  obs::MetricsRegistry m;
  std::uint64_t* c = m.counter("rt.tiles_run");
  *c += 3;
  EXPECT_EQ(m.counter("rt.tiles_run"), c);  // same pointer on re-lookup
  *m.counter("rt.tiles_run") += 2;
  EXPECT_EQ(m.counter_value("rt.tiles_run"), 5u);
  EXPECT_EQ(m.counter_value("rt.never_touched"), 0u);
  EXPECT_EQ(m.num_counters(), 1u);
}

TEST(Metrics, GaugeTracksHighWaterAcrossSets) {
  obs::MetricsRegistry m;
  Gauge* g = m.gauge("rt.outstanding_threads");
  g->set(10);
  g->set(4);
  EXPECT_EQ(m.find_gauge("rt.outstanding_threads")->high_water(), 10);
  EXPECT_EQ(m.find_gauge("rt.outstanding_threads")->current(), 4);
  EXPECT_EQ(m.find_gauge("rt.absent"), nullptr);
}

TEST(Metrics, HistogramBucketsAndSnapshotJson) {
  obs::MetricsRegistry m;
  Pow2Histogram* h = m.histogram("rt.msg_bytes");
  h->add(1);
  h->add(100);
  h->add(100000);
  *m.counter("net.bytes") += 42;
  m.gauge("rt.m_entries")->set(9);

  const std::string json = m.to_json();
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"schema\":\"dpa.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"net.bytes\":42"), std::string::npos);
  EXPECT_NE(json.find("\"rt.msg_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"high_water\":9"), std::string::npos);
  EXPECT_EQ(m.find_histogram("rt.msg_bytes")->count(), 3u);
}

TEST(Metrics, AppendToMergesIntoOpenObject) {
  obs::MetricsRegistry m;
  *m.counter("rt.strips") += 7;
  JsonWriter w;
  {
    auto root = w.obj();
    w.field("bench", "unit");
    auto metrics = w.obj("metrics");
    m.append_to(w);
  }
  const std::string json = w.str();
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"bench\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"rt.strips\":7"), std::string::npos);
}

TEST(Metrics, RtTotalsPublishCoversEveryField) {
  // Fill every counter and gauge with distinct values via the X-macro so a
  // field dropped from publish() would be caught.
  rt::RtTotals totals;
  std::uint64_t v = 1;
#define DPA_X(name) totals.name = v++;
  DPA_RT_COUNTERS(DPA_X)
#undef DPA_X
#define DPA_X(name) totals.max_##name = std::int64_t(v++);
  DPA_RT_GAUGES(DPA_X)
#undef DPA_X

  obs::MetricsRegistry m;
  totals.publish(m);
  totals.publish(m);  // counters add, gauges keep the max
#define DPA_X(name) \
  EXPECT_EQ(m.counter_value("rt." #name), 2 * totals.name) << #name;
  DPA_RT_COUNTERS(DPA_X)
#undef DPA_X
#define DPA_X(name)                                     \
  ASSERT_NE(m.find_gauge("rt." #name), nullptr);        \
  EXPECT_EQ(m.find_gauge("rt." #name)->high_water(),    \
            totals.max_##name)                          \
      << #name;
  DPA_RT_GAUGES(DPA_X)
#undef DPA_X
}

// ---------- Tracer ring buffer ----------

TEST(Tracer, RecordsAndSnapshotsInOrder) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "compiled with DPA_TRACE=OFF";
  obs::Tracer t(/*capacity=*/16);
  for (int i = 0; i < 10; ++i)
    t.instant(obs::Ev::kThreadCreated, 0, sim::Time(i * 100), unsigned(i));
  EXPECT_EQ(t.size(), 10u);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 0u);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].arg, i);
}

TEST(Tracer, RingKeepsTrailingWindowWhenFull) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "compiled with DPA_TRACE=OFF";
  obs::Tracer t(/*capacity=*/8);
  for (int i = 0; i < 20; ++i)
    t.instant(obs::Ev::kThreadRetired, 0, sim::Time(i), unsigned(i));
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.recorded(), 20u);
  EXPECT_EQ(t.dropped(), 12u);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].arg, 12 + i);  // oldest 12 overwritten
}

TEST(Tracer, InternedPhaseNamesAreStable) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "compiled with DPA_TRACE=OFF";
  obs::Tracer t;
  const char* a = t.intern("bh.force");
  const char* b = t.intern(std::string("bh.") + "force");
  EXPECT_EQ(a, b);  // same storage for equal names
  t.phase_begin("bh.force", 0);
  t.phase_end("bh.force", 100);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].label, "bh.force");
  EXPECT_EQ(events[0].kind, obs::Ev::kPhaseBegin);
  EXPECT_EQ(events[1].kind, obs::Ev::kPhaseEnd);
}

TEST(Tracer, ZeroCapacityDropsEverything) {
  obs::Tracer t(0);
  t.instant(obs::Ev::kThreadCreated, 0, 5);
  EXPECT_EQ(t.size(), 0u);
}

// ---------- Chrome trace export ----------

TEST(ChromeTrace, ExportIsValidJsonWithMonotonicTimestamps) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "compiled with DPA_TRACE=OFF";
  obs::Tracer t;
  t.phase_begin("unit.phase", 0);
  t.task(0, 1000, 3000);
  t.message(0, 1, 64, 1500, 2500);
  t.msg_event(obs::Ev::kMsgDepart, obs::MsgCause::kRequest, 0, 1, 64, 1400);
  t.msg_event(obs::Ev::kMsgArrive, obs::MsgCause::kRequest, 1, 0, 64, 2600);
  t.instant(obs::Ev::kTileDispatched, 1, 2700, 3);
  t.phase_end("unit.phase", 4000);

  const std::string json = obs::chrome_trace_json(t);
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  // Structure: both processes named, spans and instants present.
  EXPECT_NE(json.find("\"machine\""), std::string::npos);
  EXPECT_NE(json.find("\"network\""), std::string::npos);
  EXPECT_NE(json.find("\"unit.phase\""), std::string::npos);
  EXPECT_NE(json.find("\"request.depart\""), std::string::npos);
  EXPECT_NE(json.find("\"request.arrive\""), std::string::npos);
  EXPECT_NE(json.find("\"tile_dispatched\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  const auto ts = extract_timestamps(json);
  ASSERT_GE(ts.size(), 7u);
  for (std::size_t i = 1; i < ts.size(); ++i)
    EXPECT_LE(ts[i - 1], ts[i]) << "timestamp order broken at " << i;
}

TEST(ChromeTrace, LargeTimestampsSurviveFormatting) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "compiled with DPA_TRACE=OFF";
  // Seconds-scale sim times: microsecond values in the millions must not be
  // rounded by the JSON writer (6-sig-digit default would collapse them).
  obs::Tracer t;
  const sim::Time base = 12'345'678'901;  // ~12.3 s in ns
  t.task(0, base, base + 1);
  t.task(0, base + 2, base + 5);
  const std::string json = obs::chrome_trace_json(t);
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  const auto ts = extract_timestamps(json);
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts[0], double(base) / 1000.0);
  EXPECT_DOUBLE_EQ(ts[1], double(base + 2) / 1000.0);
  EXPECT_LT(ts[0], ts[1]);
}

// ---------- sharded sink: drops, merge, export metadata ----------

TEST(ShardSink, RingKeepsTrailingWindowAndCountsDropsPerShard) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "compiled with DPA_TRACE=OFF";
  obs::ShardedTraceSink sink(2, /*shard_capacity=*/8);
  obs::TraceShard& sh = sink.shard(0);
  for (int i = 0; i < 20; ++i)
    sh.instant(obs::Ev::kWorkerDrain, 0, sim::Time(i * 10), unsigned(i));
  sink.shard(1).instant(obs::Ev::kWorkerDrain, 1, 5);

  // Drops are attributed to the shard that overflowed, not pooled.
  EXPECT_EQ(sh.recorded(), 20u);
  EXPECT_EQ(sh.dropped(), 12u);
  EXPECT_EQ(sink.dropped(0), 12u);
  EXPECT_EQ(sink.dropped(1), 0u);
  EXPECT_EQ(sink.dropped_total(), 12u);
  EXPECT_EQ(sink.recorded_total(), 21u);

  const auto snap = sh.snapshot();
  EXPECT_FALSE(snap.torn);
  EXPECT_EQ(snap.first_seq, 12u);  // oldest 12 overwritten
  ASSERT_EQ(snap.events.size(), 8u);
  for (std::size_t i = 0; i < snap.events.size(); ++i)
    EXPECT_EQ(snap.events[i].arg, 12 + i);

  // The merge carries the surviving window with its true sequence numbers.
  const auto merged = sink.merged();
  ASSERT_EQ(merged.size(), 9u);
  EXPECT_EQ(merged.front().ev.at, 5);  // shard 1's lone early event first
  EXPECT_EQ(merged.back().seq, 19u);
}

TEST(ChromeTrace, MergedShardExportCarriesPerWorkerDropCounts) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "compiled with DPA_TRACE=OFF";
  // A main-thread tracer (phase markers) plus two worker shards, one of
  // which overflowed: the export must interleave all three streams into
  // one valid document and preserve the per-worker drop attribution that
  // a pooled "dropped_events" total would lose.
  obs::Tracer t;
  t.phase_begin("native.phase", 0);
  t.phase_end("native.phase", 10'000);

  obs::ShardedTraceSink sink(2, /*shard_capacity=*/4);
  obs::TraceShard& w0 = sink.shard(0);
  for (int i = 0; i < 10; ++i)  // 6 drops
    w0.span(obs::Ev::kWorkerRun, 0, sim::Time(1000 + i * 100),
            sim::Time(1050 + i * 100));
  obs::TraceShard& w1 = sink.shard(1);
  w1.span(obs::Ev::kMailboxWait, 1, 2000, 2100, 0, /*peer=*/0);
  w1.instant(obs::Ev::kTrainFlush, 1, 2100, 7);
  w1.span(obs::Ev::kPark, 1, 3000, 4000,
          std::uint64_t(obs::UnparkCause::kQuiesced));

  const std::string json = obs::chrome_trace_json(t, &sink);
  EXPECT_TRUE(JsonChecker::valid(json)) << json;

  const JsonParseResult doc = json_parse(json);
  ASSERT_TRUE(doc) << doc.error;
  const JsonValue& root = *doc.value;
  ASSERT_NE(root.find("dropped_by_worker"), nullptr);
  const auto& drops = root.find("dropped_by_worker")->as_array();
  ASSERT_EQ(drops.size(), 2u);
  EXPECT_EQ(drops[0].as_number(), 6.0);
  EXPECT_EQ(drops[1].as_number(), 0.0);
  EXPECT_EQ(root.find("dropped_events")->as_number(), 6.0);
  EXPECT_EQ(root.find("recorded_events")->as_number(), 15.0);

  // Native event vocabulary present with its worker attribution.
  EXPECT_NE(json.find("\"run\""), std::string::npos);
  EXPECT_NE(json.find("\"mbox_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"train_flush\""), std::string::npos);
  EXPECT_NE(json.find("\"park\""), std::string::npos);
  EXPECT_NE(json.find("\"quiesced\""), std::string::npos);  // unpark cause
  // Phase markers from the main-thread tracer still bracket the stream.
  EXPECT_NE(json.find("\"native.phase\""), std::string::npos);

  // Timestamps are globally monotone after the merge (9 retained events:
  // 2 phase markers + w0's surviving window of 4 + w1's 3).
  const auto ts = extract_timestamps(json);
  ASSERT_GE(ts.size(), 9u);
  for (std::size_t i = 1; i < ts.size(); ++i)
    EXPECT_LE(ts[i - 1], ts[i]) << "timestamp order broken at " << i;
}

TEST(ShardSink, PublishProfilesDrainsIntoRegistryAcrossPhases) {
  // Works in OFF builds too: profiles are plain histograms, only the event
  // ring is compiled out.
  obs::ShardedTraceSink sink(2);
  obs::MetricsRegistry m;
  sink.shard(0).profile.task_service_ns.add(100);
  sink.shard(1).profile.task_service_ns.add(200);
  sink.shard(1).profile.park_ns.add(50);
  sink.publish_profiles(m);
  ASSERT_NE(m.histogram("exec.task_service_ns"), nullptr);
  EXPECT_EQ(m.histogram("exec.task_service_ns")->count(), 2u);
  EXPECT_EQ(m.histogram("exec.park_ns")->count(), 1u);

  // Drain semantics: a second phase's samples add, not double-count.
  sink.shard(0).profile.task_service_ns.add(300);
  sink.publish_profiles(m);
  EXPECT_EQ(m.histogram("exec.task_service_ns")->count(), 3u);
  EXPECT_EQ(m.histogram("exec.park_ns")->count(), 1u);
}

TEST(ShardSink, GrowPreservesEarlierCellsEvents) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "compiled with DPA_TRACE=OFF";
  // Sweeps attach progressively larger backends to one session; growing
  // must keep earlier shards' contents and never shrink.
  obs::ShardedTraceSink sink(2, /*shard_capacity=*/16);
  sink.shard(0).instant(obs::Ev::kWorkerDrain, 0, 1);
  sink.grow(4);
  EXPECT_EQ(sink.num_shards(), 4u);
  sink.grow(2);  // no-op
  EXPECT_EQ(sink.num_shards(), 4u);
  EXPECT_EQ(sink.recorded_total(), 1u);
  sink.shard(3).instant(obs::Ev::kWorkerDrain, 3, 2);
  EXPECT_EQ(sink.merged().size(), 2u);
}

// ---------- end-to-end: runtime -> session -> exporters ----------

TEST(ObsIntegration, PhaseCountersEqualRtTotals) {
  obs::Session session;
  struct Obj {
    double v;
  };
  rt::Cluster cluster(2, sim::NetParams{});
  cluster.attach_obs(&session);
  std::vector<gas::GPtr<Obj>> objs;
  for (int i = 0; i < 32; ++i)
    objs.push_back(cluster.heap.make<Obj>(1, Obj{1.0}));
  std::vector<rt::NodeWork> work(2);
  work[0].count = 32;
  work[0].item = [&objs](rt::Ctx& ctx, std::uint64_t i) {
    ctx.require(objs[std::size_t(i)],
                [](rt::Ctx& c, const Obj&) { c.charge(500); });
  };
  rt::PhaseRunner runner(cluster, rt::RuntimeConfig::dpa(8));
  const auto r = runner.run(std::move(work), "unit.phase");
  ASSERT_TRUE(r.completed);

  const auto& m = session.metrics;
  // Every rt.* counter in the snapshot equals the phase's hand-summed total.
#define DPA_X(name) \
  EXPECT_EQ(m.counter_value("rt." #name), r.rt.name) << #name;
  DPA_RT_COUNTERS(DPA_X)
#undef DPA_X
  EXPECT_EQ(m.counter_value("rt.phases"), 1u);
  EXPECT_EQ(m.counter_value("net.messages"), r.net.messages);
  EXPECT_EQ(m.counter_value("net.bytes"), r.net.bytes);
  EXPECT_EQ(m.counter_value("fm.msgs_sent"), r.fm_total.msgs_sent);
  // The message-size histogram saw every request/reply the engines sent.
  ASSERT_NE(m.find_histogram("rt.msg_bytes"), nullptr);
  EXPECT_EQ(m.find_histogram("rt.msg_bytes")->count(),
            r.rt.request_msgs + r.rt.requests_served + r.rt.accum_msgs);

  if (obs::kTraceEnabled) {
    // The tracer saw the phase markers and the runtime vocabulary.
    bool phase_begin = false, thread_created = false, tile_dispatched = false;
    for (const auto& ev : session.tracer.snapshot()) {
      phase_begin |= ev.kind == obs::Ev::kPhaseBegin;
      thread_created |= ev.kind == obs::Ev::kThreadCreated;
      tile_dispatched |= ev.kind == obs::Ev::kTileDispatched;
    }
    EXPECT_TRUE(phase_begin);
    EXPECT_TRUE(thread_created);
    EXPECT_TRUE(tile_dispatched);
  } else {
    EXPECT_EQ(session.tracer.recorded(), 0u);
  }
}

TEST(ObsIntegration, Em3dMetricsAccumulateAcrossPhases) {
  obs::Session session;
  apps::em3d::Em3dConfig cfg;
  cfg.e_per_node = 64;
  cfg.h_per_node = 64;
  cfg.iters = 2;
  apps::em3d::Em3dApp app(cfg, 2);
  const auto run =
      app.run(sim::NetParams{}, rt::RuntimeConfig::dpa(32), &session);
  ASSERT_TRUE(run.all_completed());
  ASSERT_EQ(run.steps.size(), 4u);  // 2 iters x (E phase + H phase)

  rt::RtTotals sum;
  std::uint64_t net_messages = 0;
  for (const auto& s : run.steps) {
    net_messages += s.phase.net.messages;
#define DPA_X(name) sum.name += s.phase.rt.name;
    DPA_RT_COUNTERS(DPA_X)
#undef DPA_X
  }
  const auto& m = session.metrics;
  EXPECT_EQ(m.counter_value("rt.phases"), 4u);
  EXPECT_EQ(m.counter_value("rt.threads_created"), sum.threads_created);
  EXPECT_EQ(m.counter_value("rt.request_msgs"), sum.request_msgs);
  EXPECT_EQ(m.counter_value("net.messages"), net_messages);

  const std::string json = m.to_json();
  EXPECT_TRUE(JsonChecker::valid(json)) << json;

  if (obs::kTraceEnabled) {
    int e_phases = 0, h_phases = 0;
    for (const auto& ev : session.tracer.snapshot()) {
      if (ev.kind != obs::Ev::kPhaseBegin) continue;
      ASSERT_NE(ev.label, nullptr);
      e_phases += std::string(ev.label) == "em3d.E";
      h_phases += std::string(ev.label) == "em3d.H";
    }
    EXPECT_EQ(e_phases, 2);
    EXPECT_EQ(h_phases, 2);

    const std::string trace = obs::chrome_trace_json(session.tracer);
    EXPECT_TRUE(JsonChecker::valid(trace));
    EXPECT_NE(trace.find("\"em3d.E\""), std::string::npos);
    const auto ts = extract_timestamps(trace);
    for (std::size_t i = 1; i < ts.size(); ++i) ASSERT_LE(ts[i - 1], ts[i]);
  }
}

TEST(ObsIntegration, DetachedClusterRecordsNothing) {
  obs::Session session;
  apps::em3d::Em3dConfig cfg;
  cfg.e_per_node = 16;
  cfg.h_per_node = 16;
  apps::em3d::Em3dApp app(cfg, 2);
  // No session passed: the run must leave the (unattached) session empty.
  const auto run = app.run(sim::NetParams{}, rt::RuntimeConfig::dpa(16));
  ASSERT_TRUE(run.all_completed());
  EXPECT_EQ(session.metrics.num_counters(), 0u);
  EXPECT_EQ(session.tracer.recorded(), 0u);
}

}  // namespace
}  // namespace dpa
