// Native execution backend tests: the sense-reversing barrier, the raw
// Backend contract (mailboxes, quiescence, stats, charge attribution), and
// whole engine phases running on real threads. This binary is the target of
// the ThreadSanitizer CI job: everything here exercises genuine cross-thread
// message passing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/em3d/em3d.h"
#include "apps/olden/perimeter.h"
#include "apps/olden/power.h"
#include "apps/olden/treeadd.h"
#include "exec/backend.h"
#include "exec/native_backend.h"
#include "obs/session.h"
#include "obs/shard_sink.h"
#include "runtime/config.h"
#include "runtime/engine.h"
#include "runtime/phase.h"
#include "sim/network.h"
#include "support/json.h"

namespace dpa {
namespace {

TEST(SenseBarrier, RoundsDoNotInterleave) {
  constexpr std::uint32_t kThreads = 4;
  constexpr int kRounds = 200;
  exec::SenseBarrier barrier(kThreads);
  std::atomic<int> arrived{0};

  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      bool sense = true;
      for (int r = 0; r < kRounds; ++r) {
        arrived.fetch_add(1, std::memory_order_relaxed);
        barrier.arrive_and_wait(&sense);
        // Every participant of round r has arrived before any leaves.
        if (arrived.load(std::memory_order_relaxed) < (r + 1) * int(kThreads))
          ok.store(false, std::memory_order_relaxed);
        barrier.arrive_and_wait(&sense);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(arrived.load(), kRounds * int(kThreads));
}

TEST(NativeBackend, FactoryAndKind) {
  auto native =
      exec::make_backend(exec::BackendKind::kNative, 3, sim::NetParams{});
  EXPECT_EQ(native->kind(), exec::BackendKind::kNative);
  EXPECT_FALSE(native->is_sim());
  EXPECT_EQ(native->num_nodes(), 3u);
  EXPECT_EQ(native->sim_machine(), nullptr);
  EXPECT_FALSE(native->lossy());

  auto sim = exec::make_backend(exec::BackendKind::kSim, 3, sim::NetParams{});
  EXPECT_TRUE(sim->is_sim());
  EXPECT_NE(sim->sim_machine(), nullptr);
}

TEST(NativeBackend, MessagesCrossThreadsAndStatsAdd) {
  constexpr std::uint32_t kNodes = 4;
  auto backend =
      exec::make_backend(exec::BackendKind::kNative, kNodes, sim::NetParams{});

  struct Payload {
    std::uint32_t from;
  };
  std::vector<std::atomic<std::uint32_t>> got(kNodes);
  for (auto& g : got) g.store(0);
  auto* pgot = got.data();
  const exec::HandlerId h = backend->register_handler(
      "test.ring", [pgot](exec::Cpu& cpu, const exec::Packet& pkt) {
        auto* p = static_cast<Payload*>(pkt.data.get());
        pgot[pkt.dst].fetch_add(p->from + 1, std::memory_order_relaxed);
        cpu.charge(100, exec::Work::kComm);
      });
  EXPECT_EQ(backend->handler_name(h), "test.ring");

  backend->begin_phase();
  auto* b = backend.get();
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    backend->post(n, [b, n, h](exec::Cpu& cpu) {
      cpu.charge(1000, exec::Work::kCompute);
      const exec::NodeId dst = (n + 1) % kNodes;
      b->send(cpu, n, dst, h, std::make_shared<Payload>(Payload{n}), 64);
    });
  }
  const exec::PhaseExec pe = backend->run_phase();

  // Each node ran its seed task plus one delivery.
  EXPECT_EQ(pe.events, 2 * std::uint64_t(kNodes));
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    const std::uint32_t src = (n + kNodes - 1) % kNodes;
    EXPECT_EQ(got[n].load(), src + 1) << "node " << n;
    const exec::NodeStats& st = backend->node_stats(n);
    EXPECT_EQ(st.tasks_run, 2u);
    // Modeled charge attribution survives on the native backend.
    EXPECT_EQ(st.busy[int(exec::Work::kCompute)], 1000);
    EXPECT_EQ(st.busy[int(exec::Work::kComm)], 100);
    EXPECT_GT(st.busy_total, 0);  // real nanoseconds
  }
  const exec::MsgStats total = backend->msg_stats_total();
  EXPECT_EQ(total.msgs_sent, std::uint64_t(kNodes));
  EXPECT_EQ(total.msgs_recv, std::uint64_t(kNodes));
  EXPECT_EQ(total.bytes_sent, 64u * kNodes);
  EXPECT_EQ(pe.elapsed, backend->begin_phase());  // clock advanced by phase
}

TEST(NativeBackend, QuiescenceWaitsForRecursiveFanout) {
  // A task tree: every task posts two children to other nodes until a depth
  // budget runs out. run_phase must only return once all 2^d - 1 ran.
  constexpr std::uint32_t kNodes = 4;
  constexpr int kDepth = 9;
  auto backend =
      exec::make_backend(exec::BackendKind::kNative, kNodes, sim::NetParams{});
  std::atomic<std::uint64_t> ran{0};

  struct Spawner {
    exec::Backend* b;
    std::atomic<std::uint64_t>* ran;
    void operator()(int depth, std::uint32_t node) const {
      ran->fetch_add(1, std::memory_order_relaxed);
      if (depth == 0) return;
      const Spawner self = *this;
      for (int c = 0; c < 2; ++c) {
        const std::uint32_t next = (node + 1 + std::uint32_t(c)) % kNodes;
        b->post(next, [self, depth, next](exec::Cpu&) {
          self(depth - 1, next);
        });
      }
    }
  };
  Spawner spawner{backend.get(), &ran};

  backend->begin_phase();
  backend->post(0, [spawner](exec::Cpu&) { spawner(kDepth, 0); });
  const exec::PhaseExec pe = backend->run_phase();
  EXPECT_EQ(ran.load(), (1u << (kDepth + 1)) - 1);
  EXPECT_EQ(pe.events, (1u << (kDepth + 1)) - 1);

  // The backend is immediately reusable for another phase.
  backend->begin_phase();
  backend->post(2, [spawner](exec::Cpu&) { spawner(3, 2); });
  backend->run_phase();
  EXPECT_EQ(ran.load(), ((1u << (kDepth + 1)) - 1) + 15);
}

TEST(NativeBackend, TrainsPreservePerDestinationFifo) {
  // One sender floods one destination. Deliveries must arrive in send
  // order (trains splice whole batches, preserving per-(src,dst) FIFO),
  // and the mailbox handoff count must show batching: far fewer trains
  // than messages.
  constexpr int kMsgs = 100;
  exec::NativeBackend::Tuning tuning;
  tuning.train_max = 16;
  auto backend = std::make_unique<exec::NativeBackend>(2, tuning);

  std::vector<std::uint32_t> order;  // node 1 only; read post-phase
  auto* porder = &order;
  const exec::HandlerId h = backend->register_handler(
      "test.seq", [porder](exec::Cpu&, const exec::Packet& pkt) {
        porder->push_back(*static_cast<std::uint32_t*>(pkt.data.get()));
      });

  backend->begin_phase();
  auto* b = backend.get();
  backend->post(0, [b, h](exec::Cpu& cpu) {
    for (std::uint32_t i = 0; i < kMsgs; ++i)
      b->send(cpu, 0, 1, h, std::make_shared<std::uint32_t>(i), 8);
  });
  backend->run_phase();

  ASSERT_EQ(order.size(), std::size_t(kMsgs));
  for (std::uint32_t i = 0; i < kMsgs; ++i) EXPECT_EQ(order[i], i);
  const exec::MsgStats total = backend->msg_stats_total();
  EXPECT_EQ(total.msgs_sent, std::uint64_t(kMsgs));
  // 100 messages at train_max=16: six full trains mid-task plus the dry
  // flush of the remainder — never one lock per message.
  EXPECT_GE(total.trains_sent, std::uint64_t(kMsgs) / tuning.train_max);
  EXPECT_LE(total.trains_sent, std::uint64_t(kMsgs) / tuning.train_max + 1);
}

TEST(NativeBackend, FlushHookDrainsTrainsOnDemand) {
  // With train_max larger than the whole workload nothing departs until
  // either the flush hook or the sender running dry. Calling flush() after
  // every send turns each message into its own train — deterministic proof
  // the hook reaches the fabric.
  constexpr int kMsgs = 5;
  exec::NativeBackend::Tuning tuning;
  tuning.train_max = 1000;
  auto backend = std::make_unique<exec::NativeBackend>(2, tuning);

  std::atomic<int> got{0};
  auto* pgot = &got;
  const exec::HandlerId h = backend->register_handler(
      "test.flush", [pgot](exec::Cpu&, const exec::Packet&) {
        pgot->fetch_add(1, std::memory_order_relaxed);
      });

  backend->begin_phase();
  auto* b = backend.get();
  backend->post(0, [b, h](exec::Cpu& cpu) {
    for (int i = 0; i < kMsgs; ++i) {
      b->send(cpu, 0, 1, h, std::make_shared<int>(i), 8);
      b->flush(cpu, 0);
    }
  });
  backend->run_phase();

  EXPECT_EQ(got.load(), kMsgs);
  EXPECT_EQ(backend->msg_stats_total().trains_sent, std::uint64_t(kMsgs));

  // A second phase without explicit flushes: the dry-flush backstop moves
  // everything in one train.
  backend->begin_phase();
  backend->post(0, [b, h](exec::Cpu& cpu) {
    for (int i = 0; i < kMsgs; ++i)
      b->send(cpu, 0, 1, h, std::make_shared<int>(i), 8);
  });
  backend->run_phase();
  EXPECT_EQ(got.load(), 2 * kMsgs);
  EXPECT_EQ(backend->msg_stats_total().trains_sent, 1u);
}

TEST(NativeBackend, OversubscribedNodesParkAndStillQuiesce) {
  // 64 nodes multiplexed onto a 4-worker pool on however few cores the
  // runner has: the idle ladder must escalate to condvar parks instead of
  // burning the cores, and the sharded two-pass quiescence check must still
  // terminate a recursive cross-node fanout exactly.
  constexpr std::uint32_t kNodes = 64;
  constexpr int kDepth = 10;
  exec::NativeBackend::Tuning tuning;
  tuning.workers = 4;     // some workers idle while the fanout ramps up
  tuning.idle_spins = 4;  // reach the park stage almost immediately
  tuning.idle_yields = 2;
  tuning.park_timeout_us = 50;
  auto backend = std::make_unique<exec::NativeBackend>(kNodes, tuning);
  std::atomic<std::uint64_t> ran{0};

  struct Spawner {
    exec::Backend* b;
    std::atomic<std::uint64_t>* ran;
    void operator()(int depth, std::uint32_t node) const {
      ran->fetch_add(1, std::memory_order_relaxed);
      if (depth == 0) return;
      const Spawner self = *this;
      for (int c = 0; c < 2; ++c) {
        const std::uint32_t next =
            (node * 2 + 1 + std::uint32_t(c)) % kNodes;
        b->post(next,
                [self, depth, next](exec::Cpu&) { self(depth - 1, next); });
      }
    }
  };
  Spawner spawner{backend.get(), &ran};

  for (int phase = 0; phase < 3; ++phase) {
    ran.store(0);
    backend->begin_phase();
    backend->post(0, [spawner](exec::Cpu&) { spawner(kDepth, 0); });
    backend->run_phase();
    EXPECT_EQ(ran.load(), (1u << (kDepth + 1)) - 1) << "phase " << phase;
  }
  // Parking needs genuinely idle workers, which the fanout phases rarely
  // leave (with work stealing, a worker idles only when the whole pool's
  // queues are dry — that scarcity is the point of the M:N scheduler). One
  // more phase with a single slow task: the other three workers have
  // nothing to steal for its whole duration and must walk the 6-step
  // ladder into a park instead of burning their cores.
  backend->begin_phase();
  backend->post(0, [](exec::Cpu&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  backend->run_phase();
  EXPECT_GT(backend->sched_stats().parks, 0u);
}

TEST(NativeBackend, WorkerPoolSizeResolvesFromTuningAndDefaults) {
  {
    // Explicit pool size wins; more workers than nodes clamps to nodes (a
    // node is the scheduling unit — extra workers could only idle).
    exec::NativeBackend::Tuning tuning;
    tuning.workers = 3;
    exec::NativeBackend backend(8, tuning);
    EXPECT_EQ(backend.num_workers(), 3u);
    tuning.workers = 100;
    exec::NativeBackend clamped(4, tuning);
    EXPECT_EQ(clamped.num_workers(), 4u);
  }
  {
    // workers = 0 resolves to min(host cores, nodes), never zero.
    exec::NativeBackend backend(2);
    EXPECT_GE(backend.num_workers(), 1u);
    EXPECT_LE(backend.num_workers(), 2u);
  }
  {
    // The process-wide default (the --workers flag's plumbing) applies to
    // single-argument construction and restores on scope exit.
    exec::NativeBackend::Tuning tuning;
    tuning.workers = 2;
    exec::ScopedDefaultTuning scoped(tuning);
    exec::NativeBackend backend(8);
    EXPECT_EQ(backend.num_workers(), 2u);
  }
  EXPECT_EQ(exec::NativeBackend::default_tuning().workers, 0u);
}

TEST(NativeBackend, StealMovesWholeNodesAndPreservesMailboxFifo) {
  // Forces a steal deterministically: node 0 and node 2 both have affinity
  // worker 0 (round-robin over 2 workers), and node 0's task pins worker 0
  // until node 2's 100-message stream has fully run. Worker 1's own queue
  // is empty, so the only way the stream can run — and the phase can end —
  // is worker 1 stealing node 2 whole. The messages were seeded in order
  // by the main thread, and whole-node stealing must preserve that FIFO
  // exactly (the node runs on one worker at a time, draining its mailbox
  // in order).
  constexpr std::uint32_t kMsgs = 100;
  exec::NativeBackend::Tuning tuning;
  tuning.workers = 2;
  tuning.idle_spins = 4;
  tuning.idle_yields = 2;
  tuning.park_timeout_us = 50;
  exec::NativeBackend backend(3, tuning);

  std::vector<std::uint32_t> order;  // node 2 only; read post-phase
  std::atomic<std::uint32_t> done{0};
  backend.begin_phase();
  backend.post(0, [&done](exec::Cpu&) {
    while (done.load(std::memory_order_acquire) < kMsgs)
      std::this_thread::yield();
  });
  for (std::uint32_t i = 0; i < kMsgs; ++i) {
    backend.post(2, [&order, &done, i](exec::Cpu&) {
      order.push_back(i);
      done.fetch_add(1, std::memory_order_release);
    });
  }
  backend.run_phase();

  ASSERT_EQ(order.size(), std::size_t(kMsgs));
  for (std::uint32_t i = 0; i < kMsgs; ++i) EXPECT_EQ(order[i], i);
  EXPECT_GE(backend.sched_stats().steals, 1u);
  // The thief ran the node, so the node's placement followed it.
  EXPECT_EQ(backend.last_worker(2), 1);
  EXPECT_EQ(backend.affinity_of(2), 1u);
}

TEST(NativeBackend, AffinityReactivationLandsOnOwningWorker) {
  // With stealing off, a node only ever runs on its affinity worker — and
  // re-activation mid-phase (ping-pong traffic) must keep landing there.
  constexpr int kRounds = 16;
  exec::NativeBackend::Tuning tuning;
  tuning.workers = 2;
  tuning.steal = false;
  tuning.idle_spins = 4;
  tuning.idle_yields = 2;
  tuning.park_timeout_us = 50;
  exec::NativeBackend backend(4, tuning);

  std::atomic<int> bounces{0};
  auto* b = &backend;
  const exec::HandlerId h = backend.register_handler(
      "test.pingpong", [b, &bounces](exec::Cpu& cpu, const exec::Packet& pkt) {
        if (bounces.fetch_add(1, std::memory_order_relaxed) >= kRounds)
          return;
        b->send(cpu, pkt.dst, pkt.src, pkt.handler, nullptr, 8);
      });

  for (int phase = 0; phase < 2; ++phase) {
    backend.begin_phase();
    backend.post(1, [b, h](exec::Cpu& cpu) { b->send(cpu, 1, 3, h, nullptr, 8); });
    backend.run_phase();
    // Nodes 1 and 3 re-activated kRounds times between them; both have
    // affinity worker 1 (id % 2) and stealing is off, so every activation
    // must have landed there.
    EXPECT_EQ(backend.last_worker(1), 1) << "phase " << phase;
    EXPECT_EQ(backend.last_worker(3), 1) << "phase " << phase;
    EXPECT_EQ(backend.affinity_of(1), 1u);
    EXPECT_EQ(backend.affinity_of(3), 1u);
    EXPECT_EQ(backend.sched_stats().steals, 0u);
    bounces.store(0);
  }
  // Nodes 0 and 2 never ran at all.
  EXPECT_EQ(backend.last_worker(0), -1);
  EXPECT_EQ(backend.last_worker(2), -1);
}

TEST(NativeBackend, QuiescenceStaysExactWhileStealsAreInFlight) {
  // The steal-stress variant of the quiescence test (this binary runs
  // under the TSan CI job): a recursive fanout across 16 nodes on a
  // 4-worker pool with an aggressive idle ladder, where the seed node's
  // lane is deliberately blocked so the fanout can only progress through
  // steals. The two-pass double-collect must still terminate every phase
  // exactly — no lost tasks, no early exit — while nodes migrate between
  // workers mid-phase.
  constexpr std::uint32_t kNodes = 16;
  constexpr int kDepth = 9;
  constexpr std::uint64_t kExpected = (1u << (kDepth + 1)) - 1;
  exec::NativeBackend::Tuning tuning;
  tuning.workers = 4;
  tuning.idle_spins = 2;
  tuning.idle_yields = 2;
  tuning.park_timeout_us = 50;
  tuning.train_max = 4;
  exec::NativeBackend backend(kNodes, tuning);
  std::atomic<std::uint64_t> ran{0};

  struct Spawner {
    exec::Backend* b;
    std::atomic<std::uint64_t>* ran;
    void operator()(int depth, std::uint32_t node) const {
      ran->fetch_add(1, std::memory_order_relaxed);
      if (depth == 0) return;
      const Spawner self = *this;
      for (int c = 0; c < 2; ++c) {
        // Fan out over nodes 1..15 only: node 0 hosts the blocker.
        const std::uint32_t next =
            1 + (node * 2 + std::uint32_t(c)) % (kNodes - 1);
        b->post(next,
                [self, depth, next](exec::Cpu&) { self(depth - 1, next); });
      }
    }
  };
  Spawner spawner{&backend, &ran};

  std::uint64_t steals = 0;
  for (int phase = 0; phase < 3; ++phase) {
    ran.store(0);
    backend.begin_phase();
    // Node 0 and node 4 share affinity worker 0. The blocker pins worker 0
    // until the whole fanout has run, so the seed on node 4 MUST be stolen
    // by another worker for the phase to terminate at all.
    backend.post(0, [&ran](exec::Cpu&) {
      while (ran.load(std::memory_order_acquire) < kExpected)
        std::this_thread::yield();
    });
    backend.post(4, [spawner](exec::Cpu&) { spawner(kDepth, 4); });
    backend.run_phase();
    EXPECT_EQ(ran.load(), kExpected) << "phase " << phase;
    steals += backend.sched_stats().steals;
  }
  EXPECT_GE(steals, 3u);  // at least the forced steal, every phase
}

TEST(NativeBackend, WatchdogStaysQuietWhileStolenNodeMakesProgress) {
  // Regression for the M:N port of the stall watchdog: progress is counted
  // per NODE (placement-oblivious counters), not per thread. Here node 2's
  // work is stolen by worker 1 and trickles along slowly — many watchdog
  // sweeps — while node 2's original lane (worker 0) sits blocked the
  // whole time. A thread-keyed sweep would see a parked/wedged-looking
  // original host and fire; the node-keyed sweep must stay quiet.
  constexpr std::uint32_t kTasks = 30;
  exec::NativeBackend::Tuning tuning;
  tuning.workers = 2;
  tuning.idle_spins = 4;
  tuning.idle_yields = 2;
  tuning.park_timeout_us = 50;
  exec::NativeBackend backend(3, tuning);
  exec::WatchdogConfig cfg;
  cfg.stuck_scans = 2;
  cfg.scan_interval = 1'000'000;  // 1 ms: many sweeps across the phase
  cfg.fatal = false;
  ASSERT_TRUE(backend.arm_watchdog(cfg));

  std::atomic<std::uint32_t> done{0};
  auto* b = &backend;
  struct Trickle {
    exec::Backend* b;
    std::atomic<std::uint32_t>* done;
    void operator()(std::uint32_t i) const {
      std::this_thread::sleep_for(std::chrono::microseconds(300));
      done->fetch_add(1, std::memory_order_release);
      if (i + 1 >= kTasks) return;
      const Trickle self = *this;
      b->post(2, [self, i](exec::Cpu&) { self(i + 1); });
    }
  };
  backend.begin_phase();
  // Blocker on node 0 (affinity worker 0) gated on the trickle finishing:
  // node 2 (also affinity worker 0) can only run via a steal by worker 1.
  backend.post(0, [&done](exec::Cpu&) {
    while (done.load(std::memory_order_acquire) < kTasks)
      std::this_thread::yield();
  });
  backend.post(2, [b, &done](exec::Cpu&) { Trickle{b, &done}(0); });
  backend.run_phase();

  EXPECT_EQ(done.load(), kTasks);
  EXPECT_GE(backend.sched_stats().steals, 1u);
  EXPECT_EQ(backend.last_worker(2), 1);
  EXPECT_FALSE(backend.watchdog_fired());
}

TEST(Backend, TimerCapabilityMatchesSubstrate) {
  auto sim = exec::make_backend(exec::BackendKind::kSim, 2, sim::NetParams{});
  EXPECT_TRUE(sim->supports_timers());
  auto native =
      exec::make_backend(exec::BackendKind::kNative, 2, sim::NetParams{});
  EXPECT_FALSE(native->supports_timers());
}

// TSan's runtime is incompatible with gtest death tests (fork with live
// worker threads), so the fail-fast check is pinned in regular builds only.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DPA_TEST_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define DPA_TEST_TSAN 1
#endif

#if !defined(DPA_TEST_TSAN)
TEST(NativeBackendDeathTest, RetryConfigFailsFastAtConstruction) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The retry protocol needs schedule_at timers; on the native backend the
  // PhaseRunner must refuse at construction with an actionable message, not
  // panic from inside a phase.
  EXPECT_DEATH(
      {
        rt::Cluster cluster(2, exec::BackendKind::kNative);
        rt::RuntimeConfig cfg = rt::RuntimeConfig::dpa(32);
        cfg.retry.enabled = true;
        rt::PhaseRunner runner(cluster, cfg);
      },
      "deferred timers");
}
#endif  // !DPA_TEST_TSAN

rt::RuntimeConfig engine_config(std::size_t which) {
  switch (which) {
    case 0: return rt::RuntimeConfig::dpa(32);
    case 1: return rt::RuntimeConfig::caching();
    case 2: return rt::RuntimeConfig::blocking();
    default: return rt::RuntimeConfig::prefetching(8);
  }
}

TEST(NativeEngines, Em3dRunsOnRealThreadsUnderEveryEngine) {
  apps::em3d::Em3dConfig cfg;
  cfg.e_per_node = 96;
  cfg.h_per_node = 96;
  cfg.remote_prob = 0.3;
  cfg.iters = 2;
  const apps::em3d::Em3dApp app(cfg, 4);
  const auto oracle = app.run_sequential();
  for (std::size_t e = 0; e < 4; ++e) {
    const auto run = app.run(sim::NetParams{}, engine_config(e), nullptr,
                             exec::BackendKind::kNative);
    ASSERT_TRUE(run.all_completed()) << "engine " << e;
    ASSERT_EQ(run.e_values.size(), oracle.e_values.size());
    // Tolerance, not ulp-equality: the parallel walk legitimately reorders
    // the floating-point sums vs the host loop. Bit-identity is asserted
    // sim-vs-native in determinism_test, where both sides reorder equally.
    for (std::size_t i = 0; i < run.e_values.size(); ++i)
      EXPECT_NEAR(run.e_values[i], oracle.e_values[i], 1e-9) << "engine " << e;
  }
}

TEST(NativeEngines, TreeAddSumMatchesOracle) {
  apps::olden::TreeAddConfig cfg;
  cfg.depth = 10;
  const apps::olden::TreeAddApp app(cfg, 4);
  const auto r =
      app.run(sim::NetParams{}, rt::RuntimeConfig::dpa_deterministic(32),
              exec::BackendKind::kNative);
  ASSERT_TRUE(r.phase.completed);
  EXPECT_NEAR(r.sum, r.expected, 1e-9);
}

TEST(NativeEngines, PerimeterIsExactOnRealThreads) {
  apps::olden::PerimeterConfig cfg;
  cfg.log_size = 5;
  const apps::olden::PerimeterApp app(cfg, 4);
  const auto r = app.run(sim::NetParams{}, rt::RuntimeConfig::dpa(32),
                         exec::BackendKind::kNative);
  ASSERT_TRUE(r.phase.completed);
  EXPECT_EQ(r.perimeter, r.expected);  // integer counters: exact
}

TEST(NativeEngines, PowerAccumulationsCommitDeterministically) {
  apps::olden::PowerConfig cfg;
  cfg.feeders = 4;
  cfg.laterals = 4;
  cfg.iters = 2;
  const apps::olden::PowerApp app(cfg, 4);
  const auto oracle = app.run_sequential();
  const auto a = app.run(sim::NetParams{}, rt::RuntimeConfig::dpa(32),
                         exec::BackendKind::kNative);
  const auto b = app.run(sim::NetParams{}, rt::RuntimeConfig::dpa(32),
                         exec::BackendKind::kNative);
  ASSERT_TRUE(a.all_completed());
  EXPECT_NEAR(a.final_root_demand, oracle.final_root_demand, 1e-9);
  // The (src, seq)-ordered commit makes repeated native runs bit-identical
  // even though message arrival order varies.
  ASSERT_EQ(a.branch_prices.size(), b.branch_prices.size());
  for (std::size_t i = 0; i < a.branch_prices.size(); ++i)
    EXPECT_EQ(a.branch_prices[i], b.branch_prices[i]);
}

TEST(NativeBackend, PhaseResultReportsRealElapsedAndTasks) {
  apps::em3d::Em3dConfig cfg;
  cfg.e_per_node = 64;
  cfg.h_per_node = 64;
  const apps::em3d::Em3dApp app(cfg, 2);
  const auto run = app.run(sim::NetParams{}, rt::RuntimeConfig::blocking(),
                           nullptr, exec::BackendKind::kNative);
  ASSERT_TRUE(run.all_completed());
  for (const auto& step : run.steps) {
    EXPECT_GT(step.phase.elapsed, 0);
    EXPECT_GT(step.phase.sim_events, 0u);  // tasks executed
    EXPECT_EQ(step.phase.net.messages, 0u);  // sim-only stats stay zero
  }
}

TEST(ShardedSink, ConcurrentWritersMergeTimeSorted) {
  // The sharded sink's whole claim: N threads record into their own shards
  // with no locks, and the post-join merge is exact — count-preserving when
  // nothing wrapped, sorted by (time, worker, seq). This test runs under
  // the TSan CI job, which is what makes the "no locks" part a theorem
  // rather than a hope.
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with DPA_TRACE=OFF";
  constexpr std::uint32_t kWorkers = 4;
  constexpr std::uint64_t kPerWorker = 1000;
  obs::ShardedTraceSink sink(kWorkers, /*shard_capacity=*/2048);

  std::vector<std::thread> threads;
  for (std::uint32_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&sink, w] {
      obs::TraceShard& sh = sink.shard(w);
      for (std::uint64_t i = 0; i < kPerWorker; ++i) {
        // Deliberately non-monotone timestamps across workers so the merge
        // has real interleaving to sort.
        sh.span(obs::Ev::kWorkerRun, w, obs::Time(i * 7 + w),
                obs::Time(i * 7 + w + 3), i);
        sh.profile.task_service_ns.add(i);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(sink.recorded_total(), kPerWorker * kWorkers);
  EXPECT_EQ(sink.dropped_total(), 0u);
  const auto merged = sink.merged();
  ASSERT_EQ(merged.size(), std::size_t(kPerWorker * kWorkers));
  for (std::size_t i = 1; i < merged.size(); ++i) {
    const auto& a = merged[i - 1];
    const auto& b = merged[i];
    const bool sorted = a.ev.at < b.ev.at ||
                        (a.ev.at == b.ev.at && a.worker < b.worker) ||
                        (a.ev.at == b.ev.at && a.worker == b.worker &&
                         a.seq < b.seq);
    ASSERT_TRUE(sorted) << "merge order violated at " << i;
  }
  // Per-worker sequence numbers are dense: worker w contributed exactly
  // kPerWorker events with seqs 0..kPerWorker-1.
  std::vector<std::uint64_t> seen(kWorkers, 0);
  for (const auto& me : merged) ++seen[me.worker];
  for (std::uint32_t w = 0; w < kWorkers; ++w) EXPECT_EQ(seen[w], kPerWorker);

  // The profiles were written concurrently too; draining them into one
  // registry must see every sample.
  obs::MetricsRegistry m;
  sink.publish_profiles(m);
  ASSERT_NE(m.histogram("exec.task_service_ns"), nullptr);
  EXPECT_EQ(m.histogram("exec.task_service_ns")->count(),
            kPerWorker * kWorkers);
}

TEST(NativeBackend, WatchdogFiresOnWedgedWorkerAndDumpsFlightRecord) {
  // Wedge node 1's worker via the test hook (it stops draining its inbox,
  // holding no locks), post it a task, and run the phase from a helper
  // thread: the quiescence counters stop moving with work outstanding, so
  // the stuck-scans trigger must fire, dump a well-formed flight record,
  // and — fatal=false — leave the phase able to finish once released.
  exec::NativeBackend::Tuning tuning;
  tuning.idle_spins = 4;
  tuning.idle_yields = 2;
  tuning.park_timeout_us = 50;
  exec::NativeBackend backend(2, tuning);
  obs::ShardedTraceSink sink(2, /*shard_capacity=*/256);
  backend.attach_shards(&sink);  // no-op under DPA_TRACE=OFF

  const std::string dump =
      ::testing::TempDir() + "watchdog_flight_record.json";
  std::remove(dump.c_str());
  exec::WatchdogConfig cfg;
  cfg.stuck_scans = 3;
  cfg.scan_interval = 2'000'000;  // 2 ms
  cfg.dump_path = dump;
  cfg.fatal = false;
  ASSERT_TRUE(backend.arm_watchdog(cfg));

  std::atomic<int> ran{0};
  backend.test_stall_node(1);
  backend.begin_phase();
  backend.post(1, [&ran](exec::Cpu&) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  std::thread phase([&backend] { backend.run_phase(); });

  // ~3 sweeps at 2 ms should fire within milliseconds; 10 s is the CI
  //-under-load allowance, not the expectation.
  for (int i = 0; i < 10'000 && !backend.watchdog_fired(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(backend.watchdog_fired());

  backend.release_test_stalls();
  phase.join();
  EXPECT_EQ(ran.load(), 1);  // the phase completed after release

  std::ifstream in(dump);
  ASSERT_TRUE(in.good()) << "flight record missing: " << dump;
  std::stringstream buf;
  buf << in.rdbuf();
  const JsonParseResult doc = json_parse(buf.str());
  ASSERT_TRUE(doc) << doc.error;
  const JsonValue& root = *doc.value;
  ASSERT_NE(root.find("schema"), nullptr);
  EXPECT_EQ(root.find("schema")->as_string(), "dpa.flightrec.v2");
  ASSERT_NE(root.find("reason"), nullptr);
  EXPECT_NE(root.find("reason")->as_string().find("no progress"),
            std::string::npos);
  ASSERT_NE(root.find("nodes"), nullptr);
  const auto& nodes = root.find("nodes")->as_array();
  ASSERT_EQ(nodes.size(), 2u);
  // The wedged node: its seed task was produced (charged by the pre-phase
  // post) but never consumed, it is sitting unread in the inbox, and the
  // watchdog's per-node sweep named it as the stuck one. It is `active`:
  // a worker popped it and wedged inside it.
  const JsonValue& stalled = nodes[1];
  EXPECT_EQ(stalled.find("produced")->as_number(), 1.0);
  EXPECT_EQ(stalled.find("consumed")->as_number(), 0.0);
  EXPECT_EQ(stalled.find("inbox_depth")->as_number(), 1.0);
  ASSERT_NE(stalled.find("active"), nullptr);
  EXPECT_TRUE(stalled.find("active")->as_bool());
  ASSERT_NE(stalled.find("stuck"), nullptr);
  EXPECT_TRUE(stalled.find("stuck")->as_bool());
  EXPECT_FALSE(nodes[0].find("stuck")->as_bool());
  // Worker scheduler state is its own array now — park state is a worker
  // property, not a node property, under M:N scheduling.
  ASSERT_NE(root.find("workers"), nullptr);
  const auto& workers = root.find("workers")->as_array();
  ASSERT_EQ(workers.size(), std::size_t(backend.num_workers()));
  for (const JsonValue& ws : workers) {
    ASSERT_NE(ws.find("parked"), nullptr);
    ASSERT_NE(ws.find("runq_depth"), nullptr);
  }
  if (obs::kTraceEnabled) {
    // Shards attached: the dump embeds the merged rings and the per-shard
    // drop counts (node shards + worker shards).
    ASSERT_NE(root.find("dropped_by_worker"), nullptr);
    EXPECT_EQ(root.find("dropped_by_worker")->as_array().size(),
              2u + backend.num_workers());
    ASSERT_NE(root.find("events"), nullptr);
  }
  std::remove(dump.c_str());
}

TEST(NativeBackend, WatchdogStaysQuietOnHealthyPhases) {
  // An armed watchdog must never fire on phases that merely take a few
  // sweeps to finish: progress on the counters resets the stuck count.
  exec::NativeBackend::Tuning tuning;
  tuning.idle_spins = 4;
  tuning.idle_yields = 2;
  tuning.park_timeout_us = 50;
  exec::NativeBackend backend(4, tuning);
  exec::WatchdogConfig cfg;
  cfg.stuck_scans = 2;
  cfg.scan_interval = 1'000'000;  // 1 ms: many sweeps per phase below
  cfg.fatal = false;
  ASSERT_TRUE(backend.arm_watchdog(cfg));

  std::atomic<std::uint64_t> ran{0};
  struct Spawner {
    exec::Backend* b;
    std::atomic<std::uint64_t>* ran;
    void operator()(int depth, std::uint32_t node) const {
      ran->fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      if (depth == 0) return;
      const Spawner self = *this;
      for (int c = 0; c < 2; ++c) {
        const std::uint32_t next = (node + 1 + std::uint32_t(c)) % 4;
        b->post(next,
                [self, depth, next](exec::Cpu&) { self(depth - 1, next); });
      }
    }
  };
  Spawner spawner{&backend, &ran};
  for (int phase = 0; phase < 2; ++phase) {
    backend.begin_phase();
    backend.post(0, [spawner](exec::Cpu&) { spawner(6, 0); });
    backend.run_phase();
  }
  EXPECT_EQ(ran.load(), 2 * ((1u << 7) - 1));
  EXPECT_FALSE(backend.watchdog_fired());
}

TEST(NativeEngines, Em3dPublishesWorkerTraceAndProfiles) {
  // End-to-end: a real app on the native backend with an obs::Session
  // attached must come back with per-worker trace events (run spans, train
  // flushes) in the sharded sink and the wall-clock profile histograms in
  // the registry — the wiring the --trace-out/--metrics-out flags expose.
  apps::em3d::Em3dConfig cfg;
  cfg.e_per_node = 96;
  cfg.h_per_node = 96;
  cfg.remote_prob = 0.3;
  cfg.iters = 2;
  const apps::em3d::Em3dApp app(cfg, 4);
  obs::Session session;
  const auto run = app.run(sim::NetParams{}, rt::RuntimeConfig::dpa(32),
                           &session, exec::BackendKind::kNative);
  ASSERT_TRUE(run.all_completed());

  if (!obs::kTraceEnabled) {
    // OFF builds never attach shards; metrics counters still publish.
    EXPECT_EQ(session.shards, nullptr);
    EXPECT_GT(*session.metrics.counter("exec.tasks"), 0u);
    return;
  }
  ASSERT_NE(session.shards, nullptr);
  // Node shards [0, 4) for engine events plus one shard per worker (the
  // backend sizes its pool to min(host cores, nodes)).
  EXPECT_GE(session.shards->num_shards(), 5u);
  EXPECT_LE(session.shards->num_shards(), 8u);
  EXPECT_GT(session.shards->recorded_total(), 0u);
  const auto merged = session.shards->merged();
  bool saw_run = false, saw_flush = false;
  for (const auto& me : merged) {
    saw_run |= me.ev.kind == obs::Ev::kWorkerRun;
    saw_flush |= me.ev.kind == obs::Ev::kTrainFlush;
  }
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_flush);
  // publish_profiles ran post-phase: every executed task left a service
  // time sample.
  auto* service = session.metrics.histogram("exec.task_service_ns");
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->count(), *session.metrics.counter("exec.tasks"));
  ASSERT_NE(session.metrics.histogram("exec.train_occupancy"), nullptr);
  EXPECT_GT(session.metrics.histogram("exec.train_occupancy")->count(), 0u);
}

}  // namespace
}  // namespace dpa
