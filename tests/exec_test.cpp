// Native execution backend tests: the sense-reversing barrier, the raw
// Backend contract (mailboxes, quiescence, stats, charge attribution), and
// whole engine phases running on real threads. This binary is the target of
// the ThreadSanitizer CI job: everything here exercises genuine cross-thread
// message passing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "apps/em3d/em3d.h"
#include "apps/olden/perimeter.h"
#include "apps/olden/power.h"
#include "apps/olden/treeadd.h"
#include "exec/backend.h"
#include "exec/native_backend.h"
#include "runtime/config.h"
#include "runtime/engine.h"
#include "runtime/phase.h"
#include "sim/network.h"

namespace dpa {
namespace {

TEST(SenseBarrier, RoundsDoNotInterleave) {
  constexpr std::uint32_t kThreads = 4;
  constexpr int kRounds = 200;
  exec::SenseBarrier barrier(kThreads);
  std::atomic<int> arrived{0};

  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      bool sense = true;
      for (int r = 0; r < kRounds; ++r) {
        arrived.fetch_add(1, std::memory_order_relaxed);
        barrier.arrive_and_wait(&sense);
        // Every participant of round r has arrived before any leaves.
        if (arrived.load(std::memory_order_relaxed) < (r + 1) * int(kThreads))
          ok.store(false, std::memory_order_relaxed);
        barrier.arrive_and_wait(&sense);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(arrived.load(), kRounds * int(kThreads));
}

TEST(NativeBackend, FactoryAndKind) {
  auto native =
      exec::make_backend(exec::BackendKind::kNative, 3, sim::NetParams{});
  EXPECT_EQ(native->kind(), exec::BackendKind::kNative);
  EXPECT_FALSE(native->is_sim());
  EXPECT_EQ(native->num_nodes(), 3u);
  EXPECT_EQ(native->sim_machine(), nullptr);
  EXPECT_FALSE(native->lossy());

  auto sim = exec::make_backend(exec::BackendKind::kSim, 3, sim::NetParams{});
  EXPECT_TRUE(sim->is_sim());
  EXPECT_NE(sim->sim_machine(), nullptr);
}

TEST(NativeBackend, MessagesCrossThreadsAndStatsAdd) {
  constexpr std::uint32_t kNodes = 4;
  auto backend =
      exec::make_backend(exec::BackendKind::kNative, kNodes, sim::NetParams{});

  struct Payload {
    std::uint32_t from;
  };
  std::vector<std::atomic<std::uint32_t>> got(kNodes);
  for (auto& g : got) g.store(0);
  auto* pgot = got.data();
  const exec::HandlerId h = backend->register_handler(
      "test.ring", [pgot](exec::Cpu& cpu, const exec::Packet& pkt) {
        auto* p = static_cast<Payload*>(pkt.data.get());
        pgot[pkt.dst].fetch_add(p->from + 1, std::memory_order_relaxed);
        cpu.charge(100, exec::Work::kComm);
      });
  EXPECT_EQ(backend->handler_name(h), "test.ring");

  backend->begin_phase();
  auto* b = backend.get();
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    backend->post(n, [b, n, h](exec::Cpu& cpu) {
      cpu.charge(1000, exec::Work::kCompute);
      const exec::NodeId dst = (n + 1) % kNodes;
      b->send(cpu, n, dst, h, std::make_shared<Payload>(Payload{n}), 64);
    });
  }
  const exec::PhaseExec pe = backend->run_phase();

  // Each node ran its seed task plus one delivery.
  EXPECT_EQ(pe.events, 2 * std::uint64_t(kNodes));
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    const std::uint32_t src = (n + kNodes - 1) % kNodes;
    EXPECT_EQ(got[n].load(), src + 1) << "node " << n;
    const exec::NodeStats& st = backend->node_stats(n);
    EXPECT_EQ(st.tasks_run, 2u);
    // Modeled charge attribution survives on the native backend.
    EXPECT_EQ(st.busy[int(exec::Work::kCompute)], 1000);
    EXPECT_EQ(st.busy[int(exec::Work::kComm)], 100);
    EXPECT_GT(st.busy_total, 0);  // real nanoseconds
  }
  const exec::MsgStats total = backend->msg_stats_total();
  EXPECT_EQ(total.msgs_sent, std::uint64_t(kNodes));
  EXPECT_EQ(total.msgs_recv, std::uint64_t(kNodes));
  EXPECT_EQ(total.bytes_sent, 64u * kNodes);
  EXPECT_EQ(pe.elapsed, backend->begin_phase());  // clock advanced by phase
}

TEST(NativeBackend, QuiescenceWaitsForRecursiveFanout) {
  // A task tree: every task posts two children to other nodes until a depth
  // budget runs out. run_phase must only return once all 2^d - 1 ran.
  constexpr std::uint32_t kNodes = 4;
  constexpr int kDepth = 9;
  auto backend =
      exec::make_backend(exec::BackendKind::kNative, kNodes, sim::NetParams{});
  std::atomic<std::uint64_t> ran{0};

  struct Spawner {
    exec::Backend* b;
    std::atomic<std::uint64_t>* ran;
    void operator()(int depth, std::uint32_t node) const {
      ran->fetch_add(1, std::memory_order_relaxed);
      if (depth == 0) return;
      const Spawner self = *this;
      for (int c = 0; c < 2; ++c) {
        const std::uint32_t next = (node + 1 + std::uint32_t(c)) % kNodes;
        b->post(next, [self, depth, next](exec::Cpu&) {
          self(depth - 1, next);
        });
      }
    }
  };
  Spawner spawner{backend.get(), &ran};

  backend->begin_phase();
  backend->post(0, [spawner](exec::Cpu&) { spawner(kDepth, 0); });
  const exec::PhaseExec pe = backend->run_phase();
  EXPECT_EQ(ran.load(), (1u << (kDepth + 1)) - 1);
  EXPECT_EQ(pe.events, (1u << (kDepth + 1)) - 1);

  // The backend is immediately reusable for another phase.
  backend->begin_phase();
  backend->post(2, [spawner](exec::Cpu&) { spawner(3, 2); });
  backend->run_phase();
  EXPECT_EQ(ran.load(), ((1u << (kDepth + 1)) - 1) + 15);
}

TEST(NativeBackend, TrainsPreservePerDestinationFifo) {
  // One sender floods one destination. Deliveries must arrive in send
  // order (trains splice whole batches, preserving per-(src,dst) FIFO),
  // and the mailbox handoff count must show batching: far fewer trains
  // than messages.
  constexpr int kMsgs = 100;
  exec::NativeBackend::Tuning tuning;
  tuning.train_max = 16;
  auto backend = std::make_unique<exec::NativeBackend>(2, tuning);

  std::vector<std::uint32_t> order;  // node 1 only; read post-phase
  auto* porder = &order;
  const exec::HandlerId h = backend->register_handler(
      "test.seq", [porder](exec::Cpu&, const exec::Packet& pkt) {
        porder->push_back(*static_cast<std::uint32_t*>(pkt.data.get()));
      });

  backend->begin_phase();
  auto* b = backend.get();
  backend->post(0, [b, h](exec::Cpu& cpu) {
    for (std::uint32_t i = 0; i < kMsgs; ++i)
      b->send(cpu, 0, 1, h, std::make_shared<std::uint32_t>(i), 8);
  });
  backend->run_phase();

  ASSERT_EQ(order.size(), std::size_t(kMsgs));
  for (std::uint32_t i = 0; i < kMsgs; ++i) EXPECT_EQ(order[i], i);
  const exec::MsgStats total = backend->msg_stats_total();
  EXPECT_EQ(total.msgs_sent, std::uint64_t(kMsgs));
  // 100 messages at train_max=16: six full trains mid-task plus the dry
  // flush of the remainder — never one lock per message.
  EXPECT_GE(total.trains_sent, std::uint64_t(kMsgs) / tuning.train_max);
  EXPECT_LE(total.trains_sent, std::uint64_t(kMsgs) / tuning.train_max + 1);
}

TEST(NativeBackend, FlushHookDrainsTrainsOnDemand) {
  // With train_max larger than the whole workload nothing departs until
  // either the flush hook or the sender running dry. Calling flush() after
  // every send turns each message into its own train — deterministic proof
  // the hook reaches the fabric.
  constexpr int kMsgs = 5;
  exec::NativeBackend::Tuning tuning;
  tuning.train_max = 1000;
  auto backend = std::make_unique<exec::NativeBackend>(2, tuning);

  std::atomic<int> got{0};
  auto* pgot = &got;
  const exec::HandlerId h = backend->register_handler(
      "test.flush", [pgot](exec::Cpu&, const exec::Packet&) {
        pgot->fetch_add(1, std::memory_order_relaxed);
      });

  backend->begin_phase();
  auto* b = backend.get();
  backend->post(0, [b, h](exec::Cpu& cpu) {
    for (int i = 0; i < kMsgs; ++i) {
      b->send(cpu, 0, 1, h, std::make_shared<int>(i), 8);
      b->flush(cpu, 0);
    }
  });
  backend->run_phase();

  EXPECT_EQ(got.load(), kMsgs);
  EXPECT_EQ(backend->msg_stats_total().trains_sent, std::uint64_t(kMsgs));

  // A second phase without explicit flushes: the dry-flush backstop moves
  // everything in one train.
  backend->begin_phase();
  backend->post(0, [b, h](exec::Cpu& cpu) {
    for (int i = 0; i < kMsgs; ++i)
      b->send(cpu, 0, 1, h, std::make_shared<int>(i), 8);
  });
  backend->run_phase();
  EXPECT_EQ(got.load(), 2 * kMsgs);
  EXPECT_EQ(backend->msg_stats_total().trains_sent, 1u);
}

TEST(NativeBackend, OversubscribedNodesParkAndStillQuiesce) {
  // 64 workers on however few cores the runner has (CI constrains this to
  // a couple): the idle ladder must escalate to condvar parks instead of
  // burning the cores, and the sharded two-pass quiescence check must still
  // terminate a recursive cross-node fanout exactly.
  constexpr std::uint32_t kNodes = 64;
  constexpr int kDepth = 10;
  exec::NativeBackend::Tuning tuning;
  tuning.idle_spins = 4;  // reach the park stage almost immediately
  tuning.idle_yields = 2;
  tuning.park_timeout_us = 50;
  auto backend = std::make_unique<exec::NativeBackend>(kNodes, tuning);
  std::atomic<std::uint64_t> ran{0};

  struct Spawner {
    exec::Backend* b;
    std::atomic<std::uint64_t>* ran;
    void operator()(int depth, std::uint32_t node) const {
      ran->fetch_add(1, std::memory_order_relaxed);
      if (depth == 0) return;
      const Spawner self = *this;
      for (int c = 0; c < 2; ++c) {
        const std::uint32_t next =
            (node * 2 + 1 + std::uint32_t(c)) % kNodes;
        b->post(next,
                [self, depth, next](exec::Cpu&) { self(depth - 1, next); });
      }
    }
  };
  Spawner spawner{backend.get(), &ran};

  std::uint64_t parks = 0;
  for (int phase = 0; phase < 3; ++phase) {
    ran.store(0);
    backend->begin_phase();
    backend->post(0, [spawner](exec::Cpu&) { spawner(kDepth, 0); });
    backend->run_phase();
    EXPECT_EQ(ran.load(), (1u << (kDepth + 1)) - 1) << "phase " << phase;
    for (std::uint32_t n = 0; n < kNodes; ++n)
      parks += backend->node_stats(n).parks;
  }
  // The fanout starts on one node while 63 others sit idle with a 6-step
  // ladder: some of them must have parked.
  EXPECT_GT(parks, 0u);
}

TEST(Backend, TimerCapabilityMatchesSubstrate) {
  auto sim = exec::make_backend(exec::BackendKind::kSim, 2, sim::NetParams{});
  EXPECT_TRUE(sim->supports_timers());
  auto native =
      exec::make_backend(exec::BackendKind::kNative, 2, sim::NetParams{});
  EXPECT_FALSE(native->supports_timers());
}

// TSan's runtime is incompatible with gtest death tests (fork with live
// worker threads), so the fail-fast check is pinned in regular builds only.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DPA_TEST_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define DPA_TEST_TSAN 1
#endif

#if !defined(DPA_TEST_TSAN)
TEST(NativeBackendDeathTest, RetryConfigFailsFastAtConstruction) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The retry protocol needs schedule_at timers; on the native backend the
  // PhaseRunner must refuse at construction with an actionable message, not
  // panic from inside a phase.
  EXPECT_DEATH(
      {
        rt::Cluster cluster(2, exec::BackendKind::kNative);
        rt::RuntimeConfig cfg = rt::RuntimeConfig::dpa(32);
        cfg.retry.enabled = true;
        rt::PhaseRunner runner(cluster, cfg);
      },
      "deferred timers");
}
#endif  // !DPA_TEST_TSAN

rt::RuntimeConfig engine_config(std::size_t which) {
  switch (which) {
    case 0: return rt::RuntimeConfig::dpa(32);
    case 1: return rt::RuntimeConfig::caching();
    case 2: return rt::RuntimeConfig::blocking();
    default: return rt::RuntimeConfig::prefetching(8);
  }
}

TEST(NativeEngines, Em3dRunsOnRealThreadsUnderEveryEngine) {
  apps::em3d::Em3dConfig cfg;
  cfg.e_per_node = 96;
  cfg.h_per_node = 96;
  cfg.remote_prob = 0.3;
  cfg.iters = 2;
  const apps::em3d::Em3dApp app(cfg, 4);
  const auto oracle = app.run_sequential();
  for (std::size_t e = 0; e < 4; ++e) {
    const auto run = app.run(sim::NetParams{}, engine_config(e), nullptr,
                             exec::BackendKind::kNative);
    ASSERT_TRUE(run.all_completed()) << "engine " << e;
    ASSERT_EQ(run.e_values.size(), oracle.e_values.size());
    // Tolerance, not ulp-equality: the parallel walk legitimately reorders
    // the floating-point sums vs the host loop. Bit-identity is asserted
    // sim-vs-native in determinism_test, where both sides reorder equally.
    for (std::size_t i = 0; i < run.e_values.size(); ++i)
      EXPECT_NEAR(run.e_values[i], oracle.e_values[i], 1e-9) << "engine " << e;
  }
}

TEST(NativeEngines, TreeAddSumMatchesOracle) {
  apps::olden::TreeAddConfig cfg;
  cfg.depth = 10;
  const apps::olden::TreeAddApp app(cfg, 4);
  const auto r =
      app.run(sim::NetParams{}, rt::RuntimeConfig::dpa_deterministic(32),
              exec::BackendKind::kNative);
  ASSERT_TRUE(r.phase.completed);
  EXPECT_NEAR(r.sum, r.expected, 1e-9);
}

TEST(NativeEngines, PerimeterIsExactOnRealThreads) {
  apps::olden::PerimeterConfig cfg;
  cfg.log_size = 5;
  const apps::olden::PerimeterApp app(cfg, 4);
  const auto r = app.run(sim::NetParams{}, rt::RuntimeConfig::dpa(32),
                         exec::BackendKind::kNative);
  ASSERT_TRUE(r.phase.completed);
  EXPECT_EQ(r.perimeter, r.expected);  // integer counters: exact
}

TEST(NativeEngines, PowerAccumulationsCommitDeterministically) {
  apps::olden::PowerConfig cfg;
  cfg.feeders = 4;
  cfg.laterals = 4;
  cfg.iters = 2;
  const apps::olden::PowerApp app(cfg, 4);
  const auto oracle = app.run_sequential();
  const auto a = app.run(sim::NetParams{}, rt::RuntimeConfig::dpa(32),
                         exec::BackendKind::kNative);
  const auto b = app.run(sim::NetParams{}, rt::RuntimeConfig::dpa(32),
                         exec::BackendKind::kNative);
  ASSERT_TRUE(a.all_completed());
  EXPECT_NEAR(a.final_root_demand, oracle.final_root_demand, 1e-9);
  // The (src, seq)-ordered commit makes repeated native runs bit-identical
  // even though message arrival order varies.
  ASSERT_EQ(a.branch_prices.size(), b.branch_prices.size());
  for (std::size_t i = 0; i < a.branch_prices.size(); ++i)
    EXPECT_EQ(a.branch_prices[i], b.branch_prices[i]);
}

TEST(NativeBackend, PhaseResultReportsRealElapsedAndTasks) {
  apps::em3d::Em3dConfig cfg;
  cfg.e_per_node = 64;
  cfg.h_per_node = 64;
  const apps::em3d::Em3dApp app(cfg, 2);
  const auto run = app.run(sim::NetParams{}, rt::RuntimeConfig::blocking(),
                           nullptr, exec::BackendKind::kNative);
  ASSERT_TRUE(run.all_completed());
  for (const auto& step : run.steps) {
    EXPECT_GT(step.phase.elapsed, 0);
    EXPECT_GT(step.phase.sim_events, 0u);  // tasks executed
    EXPECT_EQ(step.phase.net.messages, 0u);  // sim-only stats stay zero
  }
}

}  // namespace
}  // namespace dpa
