#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/network.h"

namespace dpa::sim {
namespace {

// ---------- Engine ----------

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, SimultaneousEventsFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  e.schedule_at(1, [&] {
    ++fired;
    e.schedule_after(5, [&] { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 6);
}

TEST(Engine, SchedulingInThePastDies) {
  Engine e;
  e.schedule_at(100, [&] {
    EXPECT_DEATH(e.schedule_at(50, [] {}), "scheduled in the past");
  });
  e.run();
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.schedule_at(0, [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, EventLimitCatchesLivelock) {
  Engine e;
  e.set_event_limit(100);
  std::function<void()> loop = [&] { e.schedule_after(1, loop); };
  e.schedule_at(0, loop);
  EXPECT_DEATH(e.run(), "event limit");
}

TEST(Engine, RunReturnsEventCount) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(i, [] {});
  EXPECT_EQ(e.run(), 7u);
}

// ---------- Network ----------

TEST(Network, DeliveryTimeIsLogGP) {
  Engine e;
  NetParams p;
  p.send_overhead = 100;
  p.recv_overhead = 100;
  p.latency = 1000;
  p.ns_per_byte = 2.0;
  p.per_msg_wire = 50;
  p.nic_serialize = false;
  Network net(e, p, 2);
  Time arrived = -1;
  const Time at = net.send(0, 1, 100, 0, [&] { arrived = e.now(); });
  e.run();
  // latency + per_msg_wire + bytes * ns_per_byte = 1000 + 50 + 200.
  EXPECT_EQ(at, 1250);
  EXPECT_EQ(arrived, 1250);
}

TEST(Network, NicSerializesBackToBackSends) {
  Engine e;
  NetParams p;
  p.latency = 0;
  p.per_msg_wire = 0;
  p.ns_per_byte = 1.0;
  p.nic_serialize = true;
  Network net(e, p, 2);
  std::vector<Time> arrivals;
  // Two 100-byte messages injected at t=0: the second waits for the wire.
  net.send(0, 1, 100, 0, [&] { arrivals.push_back(e.now()); });
  net.send(0, 1, 100, 0, [&] { arrivals.push_back(e.now()); });
  e.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 100);
  EXPECT_EQ(arrivals[1], 200);
}

TEST(Network, WithoutSerializationSendsOverlap) {
  Engine e;
  NetParams p;
  p.latency = 0;
  p.per_msg_wire = 0;
  p.ns_per_byte = 1.0;
  p.nic_serialize = false;
  Network net(e, p, 2);
  std::vector<Time> arrivals;
  net.send(0, 1, 100, 0, [&] { arrivals.push_back(e.now()); });
  net.send(0, 1, 100, 0, [&] { arrivals.push_back(e.now()); });
  e.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 100);
  EXPECT_EQ(arrivals[1], 100);
}

TEST(Network, CountsMessagesAndBytes) {
  Engine e;
  Network net(e, NetParams{}, 4);
  net.send(0, 1, 10, 0, [] {});
  net.send(2, 3, 20, 0, [] {});
  e.run();
  EXPECT_EQ(net.stats().messages, 2u);
  EXPECT_EQ(net.stats().bytes, 30u);
}

TEST(Network, OversizeMessageDies) {
  Engine e;
  NetParams p;
  p.mtu_bytes = 64;
  Network net(e, p, 2);
  EXPECT_DEATH(net.send(0, 1, 65, 0, [] {}), "MTU");
}

TEST(Network, TorusDimsAreNearCubic) {
  Engine e;
  NetParams p;
  p.topology = Topology::kTorus3d;
  std::uint32_t x, y, z;
  Network(e, p, 64).torus_dims(&x, &y, &z);
  EXPECT_EQ(x * y * z, 64u);
  EXPECT_EQ(std::max({x, y, z}), 4u);
  Network(e, p, 12).torus_dims(&x, &y, &z);
  EXPECT_GE(x * y * z, 12u);
  EXPECT_LE(std::max({x, y, z}), 3u);
}

TEST(Network, TorusHopsUseWraparound) {
  Engine e;
  NetParams p;
  p.topology = Topology::kTorus3d;
  Network net(e, p, 64);  // 4x4x4
  EXPECT_EQ(net.hops(0, 0), 0u);
  EXPECT_EQ(net.hops(0, 1), 1u);   // +1 in x
  EXPECT_EQ(net.hops(0, 3), 1u);   // x=3 wraps to -1
  EXPECT_EQ(net.hops(0, 2), 2u);   // farthest in x
  // Opposite corner: 2 hops in each dimension.
  EXPECT_EQ(net.hops(0, 2 + 2 * 4 + 2 * 16), 6u);
  // Symmetry.
  for (NodeId a = 0; a < 64; a += 7)
    for (NodeId b = 0; b < 64; b += 5) EXPECT_EQ(net.hops(a, b), net.hops(b, a));
}

TEST(Network, CrossbarHasNoHopCost) {
  Engine e;
  Network net(e, NetParams{}, 64);
  EXPECT_EQ(net.hops(0, 63), 0u);
}

TEST(Network, TorusLatencyGrowsWithDistance) {
  Engine e;
  NetParams p;
  p.topology = Topology::kTorus3d;
  p.per_hop = 500;
  p.latency = 1000;
  p.ns_per_byte = 0;
  p.per_msg_wire = 0;
  p.nic_serialize = false;
  Network net(e, p, 64);
  Time near = -1, far = -1;
  net.send(0, 1, 0, 0, [&] { near = e.now(); });
  net.send(0, 42, 0, 0, [&] { far = e.now(); });  // 42 = (2,2,2): 6 hops
  e.run();
  EXPECT_EQ(near, 1000 + 500);
  EXPECT_EQ(far, 1000 + 6 * 500);
}

TEST(Network, ZeroParamsDeliverInstantly) {
  Engine e;
  Network net(e, NetParams::zero(), 2);
  Time arrived = -1;
  net.send(0, 1, 4096, 0, [&] { arrived = e.now(); });
  e.run();
  EXPECT_EQ(arrived, 0);
}

TEST(Network, ZeroParamsZeroEveryCostTerm) {
  const NetParams p = NetParams::zero();
  EXPECT_EQ(p.send_overhead, 0);
  EXPECT_EQ(p.recv_overhead, 0);
  EXPECT_EQ(p.latency, 0);
  EXPECT_EQ(p.ns_per_byte, 0.0);
  EXPECT_EQ(p.per_msg_wire, 0);
  EXPECT_FALSE(p.nic_serialize);
  EXPECT_FALSE(p.faults.any());  // zero-cost is also fault-free
  // The MTU still applies (the FM layer segments above it).
  EXPECT_EQ(p.mtu_bytes, NetParams{}.mtu_bytes);
}

TEST(Network, ZeroParamsBackToBackSendsAllLandAtOnce) {
  // nic_serialize=false in zero(): no injection bandwidth, so a burst from
  // one source is not staggered.
  Engine e;
  Network net(e, NetParams::zero(), 2);
  std::vector<Time> arrivals;
  for (int i = 0; i < 8; ++i)
    net.send(0, 1, 4096, 0, [&] { arrivals.push_back(e.now()); });
  e.run();
  ASSERT_EQ(arrivals.size(), 8u);
  for (const Time t : arrivals) EXPECT_EQ(t, 0);
}

// ---------- Fault injection ----------

TEST(FaultPlan, DefaultIsInactive) {
  EXPECT_FALSE(FaultPlan{}.any());
  EXPECT_FALSE(NetParams{}.faults.any());
}

TEST(FaultPlan, ParsesIndividualKnobs) {
  const auto p = FaultPlan::parse(
      "drop=0.25,dup=0.5,reorder=0.1:7000,delay=0.2:5000,pause=0.05:9000,"
      "jitter,seed=42");
  EXPECT_EQ(p.drop, 0.25);
  EXPECT_EQ(p.dup, 0.5);
  EXPECT_EQ(p.reorder, 0.1);
  EXPECT_EQ(p.reorder_window, 7000);
  EXPECT_EQ(p.delay, 0.2);
  EXPECT_EQ(p.delay_spike, 5000);
  EXPECT_EQ(p.pause, 0.05);
  EXPECT_EQ(p.pause_time, 9000);
  EXPECT_TRUE(p.link_jitter);
  EXPECT_EQ(p.seed, 42u);
  EXPECT_TRUE(p.any());
}

TEST(FaultPlan, ChaosPresetActivatesEverything) {
  const auto p = FaultPlan::parse("chaos");
  EXPECT_GT(p.drop, 0.0);
  EXPECT_GT(p.dup, 0.0);
  EXPECT_GT(p.reorder, 0.0);
  EXPECT_GT(p.delay, 0.0);
  EXPECT_GT(p.pause, 0.0);
  EXPECT_TRUE(p.any());
}

TEST(FaultPlan, LaterItemsOverrideEarlierOnes) {
  const auto p = FaultPlan::parse("chaos,drop=0.9,pause=0");
  EXPECT_EQ(p.drop, 0.9);
  EXPECT_EQ(p.pause, 0.0);
  EXPECT_GT(p.dup, 0.0);  // untouched preset value survives
}

TEST(FaultPlan, MalformedSpecsDie) {
  EXPECT_DEATH(FaultPlan::parse("bogus"), "unknown spec item");
  EXPECT_DEATH(FaultPlan::parse("drop"), "needs =<prob>");
  EXPECT_DEATH(FaultPlan::parse("drop=nope"), "bad number");
  EXPECT_DEATH(FaultPlan::parse("drop=1.5"), "out of \\[0,1\\]");
  EXPECT_DEATH(FaultPlan::parse("delay=0.1:xyz"), "bad duration");
  EXPECT_DEATH(FaultPlan::parse("delay=0.1:-5"), "negative duration");
}

TEST(FaultInjector, SameSeedSameDecisionStream) {
  auto draw = [](std::uint64_t seed) {
    FaultPlan plan = FaultPlan::parse("chaos,jitter");
    plan.seed = seed;
    FaultInjector inj(plan);
    std::vector<std::uint64_t> seq;
    for (std::uint32_t i = 0; i < 200; ++i) {
      seq.push_back(inj.roll_msg_drop(i % 4, (i + 1) % 4) ? 1u : 0u);
      seq.push_back(std::uint64_t(inj.roll_frag_delay(i % 4, (i + 1) % 4)));
    }
    return seq;
  };
  EXPECT_EQ(draw(7), draw(7));
  EXPECT_NE(draw(7), draw(8));
}

TEST(FaultInjector, CountsEachFaultKind) {
  FaultPlan plan;
  plan.drop = 1.0;
  plan.dup = 1.0;
  plan.delay = 1.0;
  plan.pause = 1.0;
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.roll_msg_drop(0, 1));
  EXPECT_TRUE(inj.roll_msg_dup(0, 1));
  EXPECT_GT(inj.roll_frag_delay(0, 1), 0);
  EXPECT_TRUE(inj.roll_pause(0, 1));
  EXPECT_EQ(inj.stats().dropped_msgs, 1u);
  EXPECT_EQ(inj.stats().dup_msgs, 1u);
  EXPECT_EQ(inj.stats().delayed_frags, 1u);
  EXPECT_EQ(inj.stats().pauses, 1u);
  inj.reset_stats();
  EXPECT_EQ(inj.stats().dropped_msgs, 0u);
}

TEST(Network, FaultFreeParamsAllocateNoInjector) {
  Engine e;
  Network net(e, NetParams{}, 2);
  EXPECT_EQ(net.injector(), nullptr);
}

TEST(Network, DelaySpikePushesArrivalBack) {
  Engine e;
  NetParams p;
  p.latency = 1000;
  p.ns_per_byte = 0;
  p.per_msg_wire = 0;
  p.nic_serialize = false;
  p.faults.delay = 1.0;  // every fragment spikes
  p.faults.delay_spike = 5000;
  Network net(e, p, 2);
  ASSERT_NE(net.injector(), nullptr);
  Time arrived = -1;
  net.send(0, 1, 16, 0, [&] { arrived = e.now(); });
  e.run();
  EXPECT_EQ(arrived, 1000 + 5000);
  EXPECT_EQ(net.injector()->stats().delayed_frags, 1u);
}

TEST(Network, ReorderJitterStaysInsideTheWindow) {
  Engine e;
  NetParams p;
  p.latency = 1000;
  p.ns_per_byte = 0;
  p.per_msg_wire = 0;
  p.nic_serialize = false;
  p.faults.reorder = 1.0;
  p.faults.reorder_window = 4000;
  Network net(e, p, 2);
  std::vector<Time> arrivals;
  for (int i = 0; i < 50; ++i)
    net.send(0, 1, 16, 0, [&] { arrivals.push_back(e.now()); });
  e.run();
  ASSERT_EQ(arrivals.size(), 50u);
  bool jittered = false;
  for (const Time t : arrivals) {
    EXPECT_GE(t, 1000);
    EXPECT_LT(t, 1000 + 4000);
    jittered |= t != 1000;
  }
  EXPECT_TRUE(jittered);  // with p=1 over 50 draws, some jitter lands
}

TEST(Network, PauseFaultInvokesTheHook) {
  Engine e;
  NetParams p;
  p.latency = 0;
  p.ns_per_byte = 0;
  p.per_msg_wire = 0;
  p.nic_serialize = false;
  p.faults.pause = 1.0;
  p.faults.pause_time = 12345;
  Network net(e, p, 2);
  NodeId paused = 99;
  Time duration = 0;
  net.set_pause_hook([&](NodeId node, Time t) {
    paused = node;
    duration = t;
  });
  net.send(0, 1, 16, 0, [] {});
  e.run();
  EXPECT_EQ(paused, 1u);
  EXPECT_EQ(duration, 12345);
  EXPECT_EQ(net.injector()->stats().pauses, 1u);
}

TEST(Network, LostSendOccupiesTheWireButNeverDelivers) {
  Engine e;
  NetParams p;
  p.latency = 0;
  p.per_msg_wire = 0;
  p.ns_per_byte = 1.0;
  p.nic_serialize = true;
  Network net(e, p, 2);
  // A lost 100-byte fragment holds the NIC; the next real message queues
  // behind it exactly as if it had been delivered.
  net.send_lost(0, 1, 100, 0);
  Time arrived = -1;
  net.send(0, 1, 100, 0, [&] { arrived = e.now(); });
  e.run();
  EXPECT_EQ(arrived, 200);
  EXPECT_EQ(net.stats().messages, 2u);  // injected traffic counts
  EXPECT_EQ(net.stats().bytes, 200u);
}

TEST(Machine, PauseFaultChargesTheDestinationNode) {
  NetParams p;
  p.latency = 0;
  p.ns_per_byte = 0;
  p.per_msg_wire = 0;
  p.nic_serialize = false;
  p.faults.pause = 1.0;
  p.faults.pause_time = 7000;
  Machine m(2, p);
  m.node(0).post([&m](Cpu& cpu) {
    m.network().send(0, 1, 8, cpu.logical_now(), [] {});
  });
  m.engine().run();
  // The machine's hook turns the pause into runtime-busy time on node 1.
  EXPECT_EQ(m.node(1).stats().busy[int(Work::kRuntime)], 7000);
}

// ---------- NodeProc / Machine ----------

TEST(NodeProc, TasksRunSeriallyAndChargeTime) {
  Machine m(1, NetParams{});
  std::vector<Time> starts;
  m.node(0).post([&](Cpu& cpu) {
    starts.push_back(cpu.logical_now());
    cpu.charge(100);
  });
  m.node(0).post([&](Cpu& cpu) {
    starts.push_back(cpu.logical_now());
    cpu.charge(50, Work::kComm);
  });
  m.engine().run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], 0);
  EXPECT_EQ(starts[1], 100);
  EXPECT_EQ(m.node(0).stats().busy_total, 150);
  EXPECT_EQ(m.node(0).stats().busy[int(Work::kCompute)], 100);
  EXPECT_EQ(m.node(0).stats().busy[int(Work::kComm)], 50);
  EXPECT_EQ(m.node(0).stats().tasks_run, 2u);
}

TEST(NodeProc, LogicalNowAdvancesWithinTask) {
  Machine m(1, NetParams{});
  std::vector<Time> marks;
  m.node(0).post([&](Cpu& cpu) {
    marks.push_back(cpu.logical_now());
    cpu.charge(10);
    marks.push_back(cpu.logical_now());
    cpu.charge(20);
    marks.push_back(cpu.logical_now());
  });
  m.engine().run();
  EXPECT_EQ(marks, (std::vector<Time>{0, 10, 30}));
}

TEST(NodeProc, PostFromWithinTaskRunsAfterCurrentTaskEnds) {
  Machine m(1, NetParams{});
  std::vector<Time> starts;
  m.node(0).post([&](Cpu& cpu) {
    cpu.charge(500);
    m.node(0).post([&](Cpu& inner) {
      starts.push_back(inner.logical_now());
    });
  });
  m.engine().run();
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0], 500);
}

TEST(NodeProc, NodesRunIndependently) {
  Machine m(2, NetParams{});
  m.node(0).post([](Cpu& cpu) { cpu.charge(1000); });
  m.node(1).post([](Cpu& cpu) { cpu.charge(10); });
  m.engine().run();
  EXPECT_EQ(m.node(0).stats().finish_time, 1000);
  EXPECT_EQ(m.node(1).stats().finish_time, 10);
}

TEST(Machine, PhaseElapsedIsMaxFinish) {
  Machine m(2, NetParams{});
  m.begin_phase();
  m.node(0).post([](Cpu& cpu) { cpu.charge(300); });
  m.node(1).post([](Cpu& cpu) { cpu.charge(700); });
  const Time elapsed = m.run_phase();
  EXPECT_EQ(elapsed, 700);
  EXPECT_EQ(m.idle_time(0, elapsed), 400);
  EXPECT_EQ(m.idle_time(1, elapsed), 0);
}

TEST(Machine, BeginPhaseResetsStats) {
  Machine m(1, NetParams{});
  m.node(0).post([](Cpu& cpu) { cpu.charge(100); });
  m.engine().run();
  m.begin_phase();
  EXPECT_EQ(m.node(0).stats().busy_total, 0);
  m.node(0).post([](Cpu& cpu) { cpu.charge(5); });
  const Time elapsed = m.run_phase();
  EXPECT_EQ(elapsed, 5);
}

TEST(Machine, NegativeChargeDies) {
  Machine m(1, NetParams{});
  m.node(0).post([](Cpu& cpu) { cpu.charge(-1); });
  EXPECT_DEATH(m.engine().run(), "negative charge");
}

// Determinism: two identical simulations produce identical event counts and
// finish times.
TEST(Machine, DeterministicReplay) {
  auto run_once = [] {
    Machine m(4, NetParams{});
    for (NodeId i = 0; i < 4; ++i) {
      m.node(i).post([&m, i](Cpu& cpu) {
        cpu.charge(100 + i * 7);
        m.network().send(i, (i + 1) % 4, 64, cpu.logical_now(), [] {});
      });
    }
    m.engine().run();
    return std::pair(m.engine().now(), m.engine().events_processed());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dpa::sim
