#include <gtest/gtest.h>

#include <cmath>

#include "apps/olden/perimeter.h"
#include "apps/olden/power.h"
#include "apps/olden/treeadd.h"

namespace dpa::apps::olden {
namespace {

sim::NetParams t3d() { return sim::NetParams{}; }

// ---------- treeadd ----------

TEST(TreeAdd, SumMatchesOracleOnOneNode) {
  TreeAddApp app({.depth = 10, .seed = 1, .cost_visit = 100}, 1);
  const auto r = app.run(t3d(), rt::RuntimeConfig::dpa(16));
  ASSERT_TRUE(r.phase.completed) << r.phase.diagnostics;
  // Reduction order differs from host recursion: equal up to reassociation.
  EXPECT_NEAR(r.sum, r.expected, 1e-9);
  EXPECT_EQ(r.phase.rt.threads_run, (1u << 10) - 1);
}

TEST(TreeAdd, SumMatchesOracleAcrossNodesAndEngines) {
  for (const std::uint32_t nodes : {2u, 5u, 8u}) {
    for (const auto& cfg :
         {rt::RuntimeConfig::dpa(16), rt::RuntimeConfig::caching(),
          rt::RuntimeConfig::prefetching(8)}) {
      TreeAddApp app({.depth = 9, .seed = 2, .cost_visit = 100}, nodes);
      const auto r = app.run(t3d(), cfg);
      ASSERT_TRUE(r.phase.completed) << cfg.describe();
      EXPECT_NEAR(r.sum, r.expected, 1e-9) << cfg.describe() << " nodes "
                                           << nodes;
    }
  }
}

TEST(TreeAdd, EveryTreeNodeVisitedExactlyOnce) {
  TreeAddApp app({.depth = 11, .seed = 3, .cost_visit = 100}, 4);
  const auto r = app.run(t3d(), rt::RuntimeConfig::dpa(32));
  ASSERT_TRUE(r.phase.completed);
  EXPECT_EQ(r.phase.rt.threads_run, (1u << 11) - 1);
}

TEST(TreeAdd, MostWorkIsLocalWithSubtreeOwnership) {
  // With no allocation scatter, subtree ownership makes every dereference
  // below the split local.
  TreeAddApp app({.depth = 12, .seed = 4, .scatter = 0.0, .cost_visit = 100},
                 8);
  const auto r = app.run(t3d(), rt::RuntimeConfig::dpa(32));
  ASSERT_TRUE(r.phase.completed);
  EXPECT_GT(double(r.phase.rt.local_threads),
            0.99 * double(r.phase.rt.threads_run));
}

TEST(TreeAdd, ScatterCreatesRemoteReads) {
  TreeAddApp tight({.depth = 11, .seed = 4, .scatter = 0.0}, 8);
  TreeAddApp loose({.depth = 11, .seed = 4, .scatter = 0.4}, 8);
  const auto rt_ = tight.run(t3d(), rt::RuntimeConfig::dpa(32));
  const auto rl = loose.run(t3d(), rt::RuntimeConfig::dpa(32));
  EXPECT_EQ(rt_.phase.rt.refs_requested, 0u);
  EXPECT_GT(rl.phase.rt.refs_requested, 500u);
  EXPECT_NEAR(rl.sum, rl.expected, 1e-9);
}

TEST(TreeAdd, SpeedsUpWithNodes) {
  TreeAddApp app1({.depth = 13, .seed = 5, .cost_visit = 400}, 1);
  TreeAddApp app8({.depth = 13, .seed = 5, .cost_visit = 400}, 8);
  const auto t1 = app1.run(t3d(), rt::RuntimeConfig::dpa(32));
  const auto t8 = app8.run(t3d(), rt::RuntimeConfig::dpa(32));
  EXPECT_GT(double(t1.phase.elapsed) / double(t8.phase.elapsed), 3.0);
}

// ---------- power ----------

TEST(Power, PricesMatchSequentialOracle) {
  PowerConfig cfg;
  cfg.feeders = 2;
  cfg.laterals = 4;
  cfg.branches = 4;
  cfg.customers = 3;
  cfg.iters = 3;
  PowerApp app(cfg, 4);
  const auto par = app.run(t3d(), rt::RuntimeConfig::dpa(32));
  const auto seq = app.run_sequential();
  ASSERT_TRUE(par.all_completed());
  EXPECT_NEAR(par.final_root_demand, seq.final_root_demand, 1e-9);
  ASSERT_EQ(par.branch_prices.size(), seq.branch_prices.size());
  for (std::size_t b = 0; b < seq.branch_prices.size(); ++b)
    EXPECT_NEAR(par.branch_prices[b], seq.branch_prices[b], 1e-9) << b;
}

TEST(Power, AllEnginesAgree) {
  PowerConfig cfg;
  cfg.feeders = 2;
  cfg.laterals = 2;
  cfg.branches = 4;
  cfg.customers = 2;
  cfg.iters = 2;
  PowerApp app(cfg, 3);
  const auto seq = app.run_sequential();
  for (const auto& rcfg :
       {rt::RuntimeConfig::dpa(16), rt::RuntimeConfig::dpa_pipelined(16),
        rt::RuntimeConfig::caching(), rt::RuntimeConfig::blocking()}) {
    const auto par = app.run(t3d(), rcfg);
    ASSERT_TRUE(par.all_completed()) << rcfg.describe();
    EXPECT_NEAR(par.final_root_demand, seq.final_root_demand, 1e-9)
        << rcfg.describe();
  }
}

TEST(Power, DemandConvergesTowardCapacity) {
  PowerConfig cfg;
  cfg.iters = 60;
  cfg.alpha = 0.3;
  PowerApp app(cfg, 4);
  const auto seq = app.run_sequential();
  // At equilibrium each branch's demand approaches cfg.customers (the
  // normalized capacity in the price-update rule).
  const double per_branch =
      seq.final_root_demand /
      double(cfg.feeders * cfg.laterals * cfg.branches);
  EXPECT_NEAR(per_branch, double(cfg.customers), 0.3);
}

TEST(Power, AccumulationsAreAggregated) {
  PowerConfig cfg;
  cfg.iters = 1;
  PowerApp app(cfg, 8);
  const auto par = app.run(t3d(), rt::RuntimeConfig::dpa(256));
  ASSERT_TRUE(par.all_completed());
  const auto& rt_stats = par.phases[0].rt;
  EXPECT_GT(rt_stats.accums_issued, 0u);
  EXPECT_GE(double(rt_stats.accums_issued),
            2.0 * double(rt_stats.accum_msgs));  // batched updates
  EXPECT_EQ(rt_stats.accums_issued, rt_stats.accums_applied);
}

// ---------- perimeter ----------

TEST(Perimeter, MatchesBitmapOracleExactly) {
  PerimeterApp app({.log_size = 5, .blobs = 4, .seed = 7}, 4);
  const auto r = app.run(t3d(), rt::RuntimeConfig::dpa(16));
  ASSERT_TRUE(r.phase.completed) << r.phase.diagnostics;
  EXPECT_EQ(r.perimeter, r.expected);
  EXPECT_GT(r.perimeter, 0u);
}

TEST(Perimeter, ExactAcrossSeedsAndEngines) {
  for (const std::uint64_t seed : {21ull, 22ull, 23ull}) {
    PerimeterApp app({.log_size = 5, .blobs = 5, .seed = seed}, 4);
    for (const auto& rcfg :
         {rt::RuntimeConfig::dpa(32), rt::RuntimeConfig::caching(),
          rt::RuntimeConfig::blocking()}) {
      const auto r = app.run(t3d(), rcfg);
      ASSERT_TRUE(r.phase.completed) << rcfg.describe();
      EXPECT_EQ(r.perimeter, r.expected) << rcfg.describe() << " seed "
                                         << seed;
    }
  }
}

TEST(Perimeter, QuadtreeCompressesUniformRegions) {
  PerimeterApp app({.log_size = 6, .blobs = 3, .seed = 9}, 2);
  const auto r = app.run(t3d(), rt::RuntimeConfig::dpa(16));
  ASSERT_TRUE(r.phase.completed);
  const std::uint64_t pixels = 64ull * 64ull;
  EXPECT_LT(r.tree_nodes, pixels);  // far fewer nodes than pixels
  EXPECT_GT(r.black_leaves, 0u);
}

TEST(Perimeter, RootSharingMakesTilingEffective) {
  // Every probe walks from the root: on remote nodes the top of the tree
  // is fetched once per strip and shared by all probes in it.
  PerimeterApp app({.log_size = 6, .blobs = 5, .seed = 10}, 8);
  const auto r = app.run(t3d(), rt::RuntimeConfig::dpa(64));
  ASSERT_TRUE(r.phase.completed);
  EXPECT_GT(r.phase.rt.dup_refs_avoided, r.phase.rt.refs_requested);
}

TEST(Perimeter, DpaBeatsCaching) {
  PerimeterApp app({.log_size = 6, .blobs = 5, .seed = 11}, 8);
  const auto dpa = app.run(t3d(), rt::RuntimeConfig::dpa(64));
  const auto caching = app.run(t3d(), rt::RuntimeConfig::caching());
  ASSERT_TRUE(dpa.phase.completed && caching.phase.completed);
  EXPECT_LT(dpa.phase.elapsed, caching.phase.elapsed);
}

}  // namespace
}  // namespace dpa::apps::olden
