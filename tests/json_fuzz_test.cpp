// Property / fuzz coverage for the JSON parser (support/json.h).
//
// Two properties over a seeded-random corpus:
//   round-trip  dump(x) parses back to x, and re-dumping is byte-stable
//   robustness  mutated / truncated documents either parse or fail with an
//               error — never crash, never read out of bounds
// plus a table of hand-written accept/reject cases pinning the strict
// grammar (no trailing commas, no lone surrogates, no raw control chars).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "support/json.h"
#include "support/rng.h"

namespace dpa {
namespace {

// ---------- generators ----------

std::string gen_string(Rng& rng) {
  std::string s;
  const auto len = rng.next_below(12);
  for (std::uint64_t i = 0; i < len; ++i) {
    switch (rng.next_below(8)) {
      case 0: s.push_back('"'); break;
      case 1: s.push_back('\\'); break;
      case 2: s.push_back(char(rng.next_below(0x20)));  // control char
        break;
      case 3: s.push_back(char(0x80 + rng.next_below(0x80)));  // high byte
        break;
      default: s.push_back(char(0x20 + rng.next_below(0x5f)));  // printable
    }
  }
  return s;
}

double gen_number(Rng& rng) {
  switch (rng.next_below(4)) {
    case 0: return double(std::int64_t(rng.next_u64() >> 12)) -
                   double(1ull << 51);
    case 1: return double(rng.next_below(1000));
    case 2: return double(rng.next_below(1u << 20)) / 1024.0;  // exact
    default: return -double(rng.next_below(1u << 30)) * 0.5;
  }
}

JsonValue gen_value(Rng& rng, int depth) {
  // Containers get rarer with depth so documents stay small.
  const std::uint64_t kinds = depth >= 5 ? 4 : 6;
  switch (rng.next_below(kinds)) {
    case 0: return JsonValue(nullptr);
    case 1: return JsonValue(rng.next_below(2) == 1);
    case 2: return JsonValue(gen_number(rng));
    case 3: return JsonValue(gen_string(rng));
    case 4: {
      JsonValue::Array a;
      const auto n = rng.next_below(4);
      for (std::uint64_t i = 0; i < n; ++i)
        a.push_back(gen_value(rng, depth + 1));
      return JsonValue(std::move(a));
    }
    default: {
      JsonValue::Object o;
      const auto n = rng.next_below(4);
      for (std::uint64_t i = 0; i < n; ++i)
        o.emplace_back(gen_string(rng), gen_value(rng, depth + 1));
      return JsonValue(std::move(o));
    }
  }
}

// ---------- properties ----------

TEST(JsonFuzz, RandomDocumentsRoundTrip) {
  Rng rng(0x5eed1);
  for (int iter = 0; iter < 500; ++iter) {
    const JsonValue doc = gen_value(rng, 0);
    const std::string text = json_dump(doc);
    const auto parsed = json_parse(text);
    ASSERT_TRUE(parsed) << "iter " << iter << ": " << parsed.error
                        << "\ndoc: " << text;
    EXPECT_TRUE(doc == *parsed.value) << "iter " << iter << "\ndoc: " << text;
    EXPECT_EQ(json_dump(*parsed.value), text) << "iter " << iter;
  }
}

TEST(JsonFuzz, MutatedDocumentsNeverCrash) {
  Rng rng(0x5eed2);
  for (int iter = 0; iter < 500; ++iter) {
    std::string text = json_dump(gen_value(rng, 0));
    switch (rng.next_below(3)) {
      case 0:  // truncate
        text.resize(rng.next_below(text.size() + 1));
        break;
      case 1:  // flip a byte
        if (!text.empty())
          text[rng.next_below(text.size())] = char(rng.next_below(256));
        break;
      default:  // insert a byte
        text.insert(text.begin() + std::ptrdiff_t(
                        rng.next_below(text.size() + 1)),
                    char(rng.next_below(256)));
    }
    const auto parsed = json_parse(text);  // must not crash or hang
    if (!parsed) {
      EXPECT_FALSE(parsed.error.empty());
    }
  }
}

TEST(JsonFuzz, RandomByteSoupNeverCrashes) {
  Rng rng(0x5eed3);
  for (int iter = 0; iter < 500; ++iter) {
    std::string text;
    const auto len = rng.next_below(64);
    for (std::uint64_t i = 0; i < len; ++i)
      text.push_back(char(rng.next_below(256)));
    const auto parsed = json_parse(text);
    if (!parsed) {
      EXPECT_FALSE(parsed.error.empty());
    }
  }
}

// ---------- pinned grammar cases ----------

TEST(JsonParse, AcceptsTheBasics) {
  const auto r = json_parse(
      R"({"a": [1, -2.5, 1e3], "b": {"nested": true}, "s": "x\n\u0041",)"
      R"( "n": null})");
  ASSERT_TRUE(r) << r.error;
  const JsonValue& v = *r.value;
  ASSERT_TRUE(v.is_object());
  const auto* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[0].as_number(), 1.0);
  EXPECT_EQ(a->as_array()[1].as_number(), -2.5);
  EXPECT_EQ(a->as_array()[2].as_number(), 1000.0);
  EXPECT_TRUE(v.find("b")->find("nested")->as_bool());
  EXPECT_EQ(v.find("s")->as_string(), "x\nA");
  EXPECT_TRUE(v.find("n")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, AcceptsSurrogatePairs) {
  const auto r = json_parse(R"(["\ud83d\ude00"])");  // U+1F600
  ASSERT_TRUE(r) << r.error;
  EXPECT_EQ(r.value->as_array()[0].as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",            // empty
      "   ",         // whitespace only
      "{",           // unterminated object
      "[1,",         // unterminated array
      "[1,]",        // trailing comma
      "{\"a\":1,}",  // trailing comma in object
      "{a: 1}",      // unquoted key
      "{\"a\" 1}",   // missing colon
      "[1 2]",       // missing comma
      "01",          // leading zero
      "1.",          // digit required after point
      "1e",          // digit required in exponent
      "+1",          // leading plus
      "NaN",         // not a JSON literal
      "Infinity",    // not a JSON literal
      "tru",         // truncated literal
      "\"abc",       // unterminated string
      "\"\\x\"",     // unknown escape
      "\"\\u12\"",   // truncated \u
      "\"\\ud800\"",         // lone high surrogate
      "\"\\udc00\"",         // lone low surrogate
      "\"\\ud800\\u0041\"",  // high surrogate + non-surrogate
      "\"\x01\"",    // raw control character
      "{} {}",       // trailing garbage
      "1 1",         // trailing garbage
  };
  for (const char* text : bad) {
    const auto r = json_parse(text);
    EXPECT_FALSE(r) << "accepted: " << text;
    EXPECT_FALSE(r.error.empty());
    EXPECT_NE(r.error.find("offset"), std::string::npos);
  }
}

TEST(JsonParse, RejectsExcessiveNesting) {
  std::string deep(400, '[');
  deep += std::string(400, ']');
  EXPECT_FALSE(json_parse(deep));
  EXPECT_TRUE(json_parse(deep, /*max_depth=*/500));
  // The default limit admits reasonable depth.
  std::string ok(200, '[');
  ok += std::string(200, ']');
  EXPECT_TRUE(json_parse(ok));
}

// The parser must accept what the repo's own writer emits.
TEST(JsonParse, ReadsJsonWriterOutput) {
  JsonWriter w;
  {
    auto root = w.obj();
    w.field("name", "bench \"x\"\n");
    w.field("count", std::uint64_t(123456789));
    w.field("ratio", 0.25);
    w.field("ok", true);
    auto rows = w.arr("rows");
    for (int i = 0; i < 3; ++i) w.value(std::int64_t(i * 10));
  }
  const auto r = json_parse(w.str());
  ASSERT_TRUE(r) << r.error;
  EXPECT_EQ(r.value->find("name")->as_string(), "bench \"x\"\n");
  EXPECT_EQ(r.value->find("count")->as_number(), 123456789.0);
  EXPECT_EQ(r.value->find("ratio")->as_number(), 0.25);
  EXPECT_TRUE(r.value->find("ok")->as_bool());
  EXPECT_EQ(r.value->find("rows")->as_array()[2].as_number(), 20.0);
}

}  // namespace
}  // namespace dpa
