// Property / fuzz coverage for the JSON parser (support/json.h).
//
// Two properties over a seeded-random corpus:
//   round-trip  dump(x) parses back to x, and re-dumping is byte-stable
//   robustness  mutated / truncated documents either parse or fail with an
//               error — never crash, never read out of bounds
// plus a table of hand-written accept/reject cases pinning the strict
// grammar (no trailing commas, no lone surrogates, no raw control chars).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "support/json.h"
#include "support/rng.h"

namespace dpa {
namespace {

// ---------- generators ----------

std::string gen_string(Rng& rng) {
  std::string s;
  const auto len = rng.next_below(12);
  for (std::uint64_t i = 0; i < len; ++i) {
    switch (rng.next_below(8)) {
      case 0: s.push_back('"'); break;
      case 1: s.push_back('\\'); break;
      case 2: s.push_back(char(rng.next_below(0x20)));  // control char
        break;
      case 3: s.push_back(char(0x80 + rng.next_below(0x80)));  // high byte
        break;
      default: s.push_back(char(0x20 + rng.next_below(0x5f)));  // printable
    }
  }
  return s;
}

double gen_number(Rng& rng) {
  switch (rng.next_below(4)) {
    case 0: return double(std::int64_t(rng.next_u64() >> 12)) -
                   double(1ull << 51);
    case 1: return double(rng.next_below(1000));
    case 2: return double(rng.next_below(1u << 20)) / 1024.0;  // exact
    default: return -double(rng.next_below(1u << 30)) * 0.5;
  }
}

JsonValue gen_value(Rng& rng, int depth) {
  // Containers get rarer with depth so documents stay small.
  const std::uint64_t kinds = depth >= 5 ? 4 : 6;
  switch (rng.next_below(kinds)) {
    case 0: return JsonValue(nullptr);
    case 1: return JsonValue(rng.next_below(2) == 1);
    case 2: return JsonValue(gen_number(rng));
    case 3: return JsonValue(gen_string(rng));
    case 4: {
      JsonValue::Array a;
      const auto n = rng.next_below(4);
      for (std::uint64_t i = 0; i < n; ++i)
        a.push_back(gen_value(rng, depth + 1));
      return JsonValue(std::move(a));
    }
    default: {
      JsonValue::Object o;
      const auto n = rng.next_below(4);
      for (std::uint64_t i = 0; i < n; ++i)
        o.emplace_back(gen_string(rng), gen_value(rng, depth + 1));
      return JsonValue(std::move(o));
    }
  }
}

// Strict UTF-8 validity: rejects surrogate code points (U+D800..U+DFFF),
// values past U+10FFFF, overlong encodings, and stray/missing continuation
// bytes. The parser's \u-escape path must never produce anything invalid.
bool is_valid_utf8(const std::string& s) {
  for (std::size_t i = 0; i < s.size();) {
    const unsigned char b0 = (unsigned char)s[i];
    std::size_t len;
    std::uint32_t cp;
    if (b0 < 0x80) {
      i += 1;
      continue;
    } else if ((b0 & 0xe0) == 0xc0) {
      len = 2;
      cp = b0 & 0x1f;
    } else if ((b0 & 0xf0) == 0xe0) {
      len = 3;
      cp = b0 & 0x0f;
    } else if ((b0 & 0xf8) == 0xf0) {
      len = 4;
      cp = b0 & 0x07;
    } else {
      return false;  // stray continuation or invalid lead byte
    }
    if (i + len > s.size()) return false;
    for (std::size_t k = 1; k < len; ++k) {
      const unsigned char c = (unsigned char)s[i + k];
      if ((c & 0xc0) != 0x80) return false;
      cp = (cp << 6) | (c & 0x3f);
    }
    static constexpr std::uint32_t kMin[5] = {0, 0, 0x80, 0x800, 0x10000};
    if (cp < kMin[len]) return false;                // overlong
    if (cp >= 0xD800 && cp <= 0xDFFF) return false;  // surrogate
    if (cp > 0x10FFFF) return false;
    i += len;
  }
  return true;
}

// Every string reachable in the document tree.
void collect_strings(const JsonValue& v, std::vector<const std::string*>* out) {
  if (v.is_string()) out->push_back(&v.as_string());
  if (v.is_array())
    for (const auto& e : v.as_array()) collect_strings(e, out);
  if (v.is_object())
    for (const auto& [k, e] : v.as_object()) {
      out->push_back(&k);
      collect_strings(e, out);
    }
}

// ---------- properties ----------

TEST(JsonFuzz, RandomDocumentsRoundTrip) {
  Rng rng(0x5eed1);
  for (int iter = 0; iter < 500; ++iter) {
    const JsonValue doc = gen_value(rng, 0);
    const std::string text = json_dump(doc);
    const auto parsed = json_parse(text);
    ASSERT_TRUE(parsed) << "iter " << iter << ": " << parsed.error
                        << "\ndoc: " << text;
    EXPECT_TRUE(doc == *parsed.value) << "iter " << iter << "\ndoc: " << text;
    EXPECT_EQ(json_dump(*parsed.value), text) << "iter " << iter;
  }
}

TEST(JsonFuzz, MutatedDocumentsNeverCrash) {
  Rng rng(0x5eed2);
  for (int iter = 0; iter < 500; ++iter) {
    std::string text = json_dump(gen_value(rng, 0));
    switch (rng.next_below(3)) {
      case 0:  // truncate
        text.resize(rng.next_below(text.size() + 1));
        break;
      case 1:  // flip a byte
        if (!text.empty())
          text[rng.next_below(text.size())] = char(rng.next_below(256));
        break;
      default:  // insert a byte
        text.insert(text.begin() + std::ptrdiff_t(
                        rng.next_below(text.size() + 1)),
                    char(rng.next_below(256)));
    }
    const auto parsed = json_parse(text);  // must not crash or hang
    if (!parsed) {
      EXPECT_FALSE(parsed.error.empty());
    }
  }
}

// Mutation corpus over surrogate-escape documents: whatever we do to the
// hex digits, the backslashes, or the pair structure, the parser must either
// reject the document or hand back strictly valid UTF-8 — a lone high
// surrogate must never leak out as a raw 3-byte surrogate encoding.
TEST(JsonFuzz, SurrogateMutantsNeverEmitInvalidUtf8) {
  const char* corpus[] = {
      R"(["\ud83d\ude00"])",    // U+1F600, the happy path
      R"(["\ud800\udc00"])",    // lowest pair (U+10000)
      R"(["\udbff\udfff"])",    // highest pair (U+10FFFF)
      R"({"\ud835\udd6b": "\ud83c\udf55"})",    // pairs in key and value
      R"(["a\ud800\udc00b", "A\ud83d\ude00B"])",
  };
  // Mutations stay in printable ASCII: the parser deliberately passes raw
  // bytes >= 0x20 through untouched, so a random high-byte flip could plant
  // invalid UTF-8 the parser never promised to reject. The property under
  // test is the \u-escape decoder.
  const char hexdig[] = "0123456789abcdefABCDEF";
  Rng rng(0x5eed4);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string text = corpus[rng.next_below(std::size(corpus))];
    const auto n_edits = 1 + rng.next_below(3);
    for (std::uint64_t e = 0; e < n_edits; ++e) {
      if (text.empty()) break;
      const auto at = rng.next_below(text.size());
      switch (rng.next_below(4)) {
        case 0:  // re-roll a byte as a hex digit (perturb code points)
          text[at] = hexdig[rng.next_below(sizeof(hexdig) - 1)];
          break;
        case 1:  // printable-ASCII flip (break '\\', 'u', quotes, brackets)
          text[at] = char(0x20 + rng.next_below(0x5f));
          break;
        case 2:  // delete a byte (break a \u or a pair in half)
          text.erase(text.begin() + std::ptrdiff_t(at));
          break;
        default:  // truncate
          text.resize(at);
      }
    }
    const auto parsed = json_parse(text);
    if (!parsed) {
      EXPECT_FALSE(parsed.error.empty());
      continue;
    }
    std::vector<const std::string*> strings;
    collect_strings(*parsed.value, &strings);
    for (const std::string* s : strings)
      EXPECT_TRUE(is_valid_utf8(*s))
          << "iter " << iter << ": parser emitted invalid UTF-8 from: "
          << text;
  }
}

TEST(JsonFuzz, RandomByteSoupNeverCrashes) {
  Rng rng(0x5eed3);
  for (int iter = 0; iter < 500; ++iter) {
    std::string text;
    const auto len = rng.next_below(64);
    for (std::uint64_t i = 0; i < len; ++i)
      text.push_back(char(rng.next_below(256)));
    const auto parsed = json_parse(text);
    if (!parsed) {
      EXPECT_FALSE(parsed.error.empty());
    }
  }
}

// ---------- pinned grammar cases ----------

TEST(JsonParse, AcceptsTheBasics) {
  const auto r = json_parse(
      R"({"a": [1, -2.5, 1e3], "b": {"nested": true}, "s": "x\n\u0041",)"
      R"( "n": null})");
  ASSERT_TRUE(r) << r.error;
  const JsonValue& v = *r.value;
  ASSERT_TRUE(v.is_object());
  const auto* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[0].as_number(), 1.0);
  EXPECT_EQ(a->as_array()[1].as_number(), -2.5);
  EXPECT_EQ(a->as_array()[2].as_number(), 1000.0);
  EXPECT_TRUE(v.find("b")->find("nested")->as_bool());
  EXPECT_EQ(v.find("s")->as_string(), "x\nA");
  EXPECT_TRUE(v.find("n")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, AcceptsSurrogatePairs) {
  const auto r = json_parse(R"(["\ud83d\ude00"])");  // U+1F600
  ASSERT_TRUE(r) << r.error;
  EXPECT_EQ(r.value->as_array()[0].as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",            // empty
      "   ",         // whitespace only
      "{",           // unterminated object
      "[1,",         // unterminated array
      "[1,]",        // trailing comma
      "{\"a\":1,}",  // trailing comma in object
      "{a: 1}",      // unquoted key
      "{\"a\" 1}",   // missing colon
      "[1 2]",       // missing comma
      "01",          // leading zero
      "1.",          // digit required after point
      "1e",          // digit required in exponent
      "+1",          // leading plus
      "NaN",         // not a JSON literal
      "Infinity",    // not a JSON literal
      "tru",         // truncated literal
      "\"abc",       // unterminated string
      "\"\\x\"",     // unknown escape
      "\"\\u12\"",   // truncated \u
      "\"\\ud800\"",         // lone high surrogate
      "\"\\udc00\"",         // lone low surrogate
      "\"\\ud800\\u0041\"",  // high surrogate + non-surrogate
      "\"\\ud800\\ud800\"",  // high surrogate + high surrogate
      "\"\\udbff\\ue000\"",  // high surrogate + post-surrogate BMP
      "\"\\ud800x\"",        // high surrogate + raw character
      "\"\\ud800\\n\"",      // high surrogate + non-\u escape
      "\"\\ud800\\u\"",      // high surrogate + truncated \u
      "\"\\ud800\\udc0\"",   // pair with short low half
      "\"\\ud800\\udc0g\"",  // pair with bad hex in low half
      "\"\\ud800",           // unterminated after high surrogate
      "\"\x01\"",    // raw control character
      "{} {}",       // trailing garbage
      "1 1",         // trailing garbage
  };
  for (const char* text : bad) {
    const auto r = json_parse(text);
    EXPECT_FALSE(r) << "accepted: " << text;
    EXPECT_FALSE(r.error.empty());
    EXPECT_NE(r.error.find("offset"), std::string::npos);
  }
}

TEST(JsonParse, RejectsExcessiveNesting) {
  std::string deep(400, '[');
  deep += std::string(400, ']');
  EXPECT_FALSE(json_parse(deep));
  EXPECT_TRUE(json_parse(deep, /*max_depth=*/500));
  // The default limit admits reasonable depth.
  std::string ok(200, '[');
  ok += std::string(200, ']');
  EXPECT_TRUE(json_parse(ok));
}

// JsonWriter must escape every control character, not just \n and \t —
// otherwise its output is rejected by json_parse (and any strict reader).
TEST(JsonParse, WriterOutputWithControlCharactersReparses) {
  const std::string nasty = std::string("a\r\nb\tc\b\f") + '\x00' + "\x01\x1f";
  JsonWriter w;
  {
    auto root = w.obj();
    w.field(nasty, nasty);  // control chars in both key and value positions
    auto rows = w.arr("rows");
    w.value("\r");
    w.value(std::string(1, '\x1b'));
  }
  const auto r = json_parse(w.str());
  ASSERT_TRUE(r) << r.error << "\nwriter emitted: " << w.str();
  EXPECT_EQ(r.value->find(nasty)->as_string(), nasty);
  EXPECT_EQ(r.value->find("rows")->as_array()[0].as_string(), "\r");
  EXPECT_EQ(r.value->find("rows")->as_array()[1].as_string(), "\x1b");
}

// The parser must accept what the repo's own writer emits.
TEST(JsonParse, ReadsJsonWriterOutput) {
  JsonWriter w;
  {
    auto root = w.obj();
    w.field("name", "bench \"x\"\n");
    w.field("count", std::uint64_t(123456789));
    w.field("ratio", 0.25);
    w.field("ok", true);
    auto rows = w.arr("rows");
    for (int i = 0; i < 3; ++i) w.value(std::int64_t(i * 10));
  }
  const auto r = json_parse(w.str());
  ASSERT_TRUE(r) << r.error;
  EXPECT_EQ(r.value->find("name")->as_string(), "bench \"x\"\n");
  EXPECT_EQ(r.value->find("count")->as_number(), 123456789.0);
  EXPECT_EQ(r.value->find("ratio")->as_number(), 0.25);
  EXPECT_TRUE(r.value->find("ok")->as_bool());
  EXPECT_EQ(r.value->find("rows")->as_array()[2].as_number(), 20.0);
}

}  // namespace
}  // namespace dpa
