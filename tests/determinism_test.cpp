// Determinism snapshots: two runs with the same seeds must be perfect
// replicas all the way out to the observability layer — byte-identical
// `dpa.metrics.v1` JSON snapshots and identical trace-event counts. This is
// what makes fault-injection runs debuggable: any chaos run can be replayed
// exactly by rerunning with the same --fault-seed.
//
// The grid below also locks down the host-parallel sweep driver: every
// (engine x app) cell is a self-contained single-threaded simulation, so
// running the grid on a `--jobs=4` worker pool must produce byte-for-byte
// the same snapshots as running it serially in index order.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "apps/barnes/app.h"
#include "apps/em3d/em3d.h"
#include "apps/fmm/app.h"
#include "obs/session.h"
#include "runtime/config.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "support/parallel.h"

namespace dpa {
namespace {

sim::NetParams net(bool faulty) {
  sim::NetParams p;
  p.send_overhead = 400;
  p.recv_overhead = 500;
  p.latency = 1200;
  p.ns_per_byte = 3.0;
  p.nic_serialize = true;
  if (faulty) {
    p.faults = sim::FaultPlan::parse("chaos,drop=0.06,seed=99");
  }
  return p;
}

// One instrumented em3d run; returns (metrics snapshot, trace event count).
std::pair<std::string, std::uint64_t> run_once(bool faulty) {
  apps::em3d::Em3dConfig cfg;
  cfg.e_per_node = 192;
  cfg.h_per_node = 192;
  cfg.remote_prob = 0.3;
  const apps::em3d::Em3dApp app(cfg, 4);
  obs::Session session;
  const auto run =
      app.run(net(faulty), rt::RuntimeConfig::dpa(64), &session);
  EXPECT_TRUE(run.all_completed());
  return {session.metrics.to_json(), session.tracer.recorded()};
}

TEST(Determinism, MetricsSnapshotsAreByteIdentical) {
  const auto a = run_once(/*faulty=*/false);
  const auto b = run_once(/*faulty=*/false);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Determinism, FaultedRunsReplayByteIdentically) {
  const auto a = run_once(/*faulty=*/true);
  const auto b = run_once(/*faulty=*/true);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Determinism, FaultsActuallyPerturbTheRun) {
  // Guard against the two cases above passing vacuously: the faulted
  // snapshot must differ from the clean one (retry counters, fault
  // counters, timings all move).
  const auto clean = run_once(/*faulty=*/false);
  const auto faulted = run_once(/*faulty=*/true);
  EXPECT_NE(clean.first, faulted.first);
}

// ---------- full engine x app grid ----------

rt::RuntimeConfig engine_config(std::size_t which) {
  switch (which) {
    case 0: return rt::RuntimeConfig::dpa(32);
    case 1: return rt::RuntimeConfig::caching();
    case 2: return rt::RuntimeConfig::blocking();
    default: return rt::RuntimeConfig::prefetching(8);
  }
}

constexpr std::size_t kEngines = 4;
constexpr std::size_t kApps = 3;  // barnes, fmm, em3d

// One (engine, app) cell: fresh apps + cluster + private obs::Session, so
// cells share no mutable state and can run on any host thread.
std::string run_cell(std::size_t index) {
  const std::size_t engine = index / kApps;
  const std::size_t app = index % kApps;
  const auto rcfg = engine_config(engine);
  obs::Session session;
  switch (app) {
    case 0: {
      apps::barnes::BarnesConfig cfg;
      cfg.nbodies = 256;
      const apps::barnes::BarnesApp bh(cfg);
      const auto run = bh.run(4, net(false), rcfg, &session);
      EXPECT_FALSE(run.steps.empty());
      break;
    }
    case 1: {
      apps::fmm::FmmConfig cfg;
      cfg.nparticles = 256;
      cfg.terms = 4;
      const apps::fmm::FmmApp fmm(cfg);
      const auto run = fmm.run(4, net(false), rcfg, &session);
      EXPECT_FALSE(run.steps.empty());
      break;
    }
    default: {
      apps::em3d::Em3dConfig cfg;
      cfg.e_per_node = 128;
      cfg.h_per_node = 128;
      cfg.remote_prob = 0.3;
      const apps::em3d::Em3dApp em(cfg, 4);
      const auto run = em.run(net(false), rcfg, &session);
      EXPECT_TRUE(run.all_completed());
      break;
    }
  }
  return session.metrics.to_json();
}

std::vector<std::string> run_grid(std::size_t jobs) {
  std::vector<std::string> snaps(kEngines * kApps);
  parallel_for_cells(jobs, snaps.size(),
                     [&](std::size_t i) { snaps[i] = run_cell(i); });
  return snaps;
}

TEST(Determinism, AllEnginesAllAppsSnapshotIdenticallyAcrossRuns) {
  const auto a = run_grid(/*jobs=*/1);
  const auto b = run_grid(/*jobs=*/1);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "engine " << i / kApps << " app " << i % kApps;
    EXPECT_FALSE(a[i].empty());
  }
  // Engines really differ from each other on the same app (non-vacuous).
  EXPECT_NE(a[0], a[kApps]);  // dpa vs caching on barnes
}

TEST(Determinism, ParallelSweepMatchesSerialByteForByte) {
  // The sweep driver's contract: a --jobs=N pool computes exactly what the
  // serial loop computes. Each snapshot is byte-compared, not approximated.
  const auto serial = run_grid(/*jobs=*/1);
  const auto pooled = run_grid(/*jobs=*/4);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], pooled[i])
        << "engine " << i / kApps << " app " << i % kApps;
  }
}

}  // namespace
}  // namespace dpa
