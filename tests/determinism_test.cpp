// Determinism snapshots: two runs with the same seeds must be perfect
// replicas all the way out to the observability layer — byte-identical
// `dpa.metrics.v1` JSON snapshots and identical trace-event counts. This is
// what makes fault-injection runs debuggable: any chaos run can be replayed
// exactly by rerunning with the same --fault-seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>

#include "apps/em3d/em3d.h"
#include "obs/session.h"
#include "runtime/config.h"
#include "sim/fault.h"
#include "sim/network.h"

namespace dpa {
namespace {

sim::NetParams net(bool faulty) {
  sim::NetParams p;
  p.send_overhead = 400;
  p.recv_overhead = 500;
  p.latency = 1200;
  p.ns_per_byte = 3.0;
  p.nic_serialize = true;
  if (faulty) {
    p.faults = sim::FaultPlan::parse("chaos,drop=0.06,seed=99");
  }
  return p;
}

// One instrumented em3d run; returns (metrics snapshot, trace event count).
std::pair<std::string, std::uint64_t> run_once(bool faulty) {
  apps::em3d::Em3dConfig cfg;
  cfg.e_per_node = 192;
  cfg.h_per_node = 192;
  cfg.remote_prob = 0.3;
  const apps::em3d::Em3dApp app(cfg, 4);
  obs::Session session;
  const auto run =
      app.run(net(faulty), rt::RuntimeConfig::dpa(64), &session);
  EXPECT_TRUE(run.all_completed());
  return {session.metrics.to_json(), session.tracer.recorded()};
}

TEST(Determinism, MetricsSnapshotsAreByteIdentical) {
  const auto a = run_once(/*faulty=*/false);
  const auto b = run_once(/*faulty=*/false);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Determinism, FaultedRunsReplayByteIdentically) {
  const auto a = run_once(/*faulty=*/true);
  const auto b = run_once(/*faulty=*/true);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Determinism, FaultsActuallyPerturbTheRun) {
  // Guard against the two cases above passing vacuously: the faulted
  // snapshot must differ from the clean one (retry counters, fault
  // counters, timings all move).
  const auto clean = run_once(/*faulty=*/false);
  const auto faulted = run_once(/*faulty=*/true);
  EXPECT_NE(clean.first, faulted.first);
}

}  // namespace
}  // namespace dpa
