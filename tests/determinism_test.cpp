// Determinism snapshots: two runs with the same seeds must be perfect
// replicas all the way out to the observability layer — byte-identical
// `dpa.metrics.v1` JSON snapshots and identical trace-event counts. This is
// what makes fault-injection runs debuggable: any chaos run can be replayed
// exactly by rerunning with the same --fault-seed.
//
// The grid below also locks down the host-parallel sweep driver: every
// (engine x app) cell is a self-contained single-threaded simulation, so
// running the grid on a `--jobs=4` worker pool must produce byte-for-byte
// the same snapshots as running it serially in index order.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "apps/barnes/app.h"
#include "apps/em3d/em3d.h"
#include "apps/fmm/app.h"
#include "apps/olden/perimeter.h"
#include "apps/olden/power.h"
#include "apps/olden/treeadd.h"
#include "exec/backend.h"
#include "exec/native_backend.h"
#include "exec/proc_backend.h"
#include "obs/session.h"
#include "runtime/config.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "support/parallel.h"

namespace dpa {
namespace {

sim::NetParams net(bool faulty) {
  sim::NetParams p;
  p.send_overhead = 400;
  p.recv_overhead = 500;
  p.latency = 1200;
  p.ns_per_byte = 3.0;
  p.nic_serialize = true;
  if (faulty) {
    p.faults = sim::FaultPlan::parse("chaos,drop=0.06,seed=99");
  }
  return p;
}

// One instrumented em3d run; returns (metrics snapshot, trace event count).
std::pair<std::string, std::uint64_t> run_once(bool faulty) {
  apps::em3d::Em3dConfig cfg;
  cfg.e_per_node = 192;
  cfg.h_per_node = 192;
  cfg.remote_prob = 0.3;
  const apps::em3d::Em3dApp app(cfg, 4);
  obs::Session session;
  const auto run =
      app.run(net(faulty), rt::RuntimeConfig::dpa(64), &session);
  EXPECT_TRUE(run.all_completed());
  return {session.metrics.to_json(), session.tracer.recorded()};
}

TEST(Determinism, MetricsSnapshotsAreByteIdentical) {
  const auto a = run_once(/*faulty=*/false);
  const auto b = run_once(/*faulty=*/false);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Determinism, FaultedRunsReplayByteIdentically) {
  const auto a = run_once(/*faulty=*/true);
  const auto b = run_once(/*faulty=*/true);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Determinism, FaultsActuallyPerturbTheRun) {
  // Guard against the two cases above passing vacuously: the faulted
  // snapshot must differ from the clean one (retry counters, fault
  // counters, timings all move).
  const auto clean = run_once(/*faulty=*/false);
  const auto faulted = run_once(/*faulty=*/true);
  EXPECT_NE(clean.first, faulted.first);
}

// ---------- full engine x app grid ----------

rt::RuntimeConfig engine_config(std::size_t which) {
  switch (which) {
    case 0: return rt::RuntimeConfig::dpa(32);
    case 1: return rt::RuntimeConfig::caching();
    case 2: return rt::RuntimeConfig::blocking();
    default: return rt::RuntimeConfig::prefetching(8);
  }
}

constexpr std::size_t kEngines = 4;
constexpr std::size_t kApps = 6;  // barnes, fmm, em3d, treeadd, power, perim

// Packs doubles byte-for-byte: equality of these strings is bit-identity of
// the physics, not approximate agreement.
void append_doubles(std::string& out, const double* p, std::size_t n) {
  out.append(reinterpret_cast<const char*>(p), n * sizeof(double));
}

// One (engine, app) cell: fresh apps + cluster + private obs::Session, so
// cells share no mutable state and can run on any host thread. The first
// three apps snapshot the metrics registry; the Olden kernels (which report
// no metrics) snapshot their physics outputs byte-for-byte instead.
std::string run_cell(std::size_t index) {
  const std::size_t engine = index / kApps;
  const std::size_t app = index % kApps;
  const auto rcfg = engine_config(engine);
  obs::Session session;
  switch (app) {
    case 0: {
      apps::barnes::BarnesConfig cfg;
      cfg.nbodies = 256;
      const apps::barnes::BarnesApp bh(cfg);
      const auto run = bh.run(4, net(false), rcfg, &session);
      EXPECT_FALSE(run.steps.empty());
      break;
    }
    case 1: {
      apps::fmm::FmmConfig cfg;
      cfg.nparticles = 256;
      cfg.terms = 4;
      const apps::fmm::FmmApp fmm(cfg);
      const auto run = fmm.run(4, net(false), rcfg, &session);
      EXPECT_FALSE(run.steps.empty());
      break;
    }
    case 2: {
      apps::em3d::Em3dConfig cfg;
      cfg.e_per_node = 128;
      cfg.h_per_node = 128;
      cfg.remote_prob = 0.3;
      const apps::em3d::Em3dApp em(cfg, 4);
      const auto run = em.run(net(false), rcfg, &session);
      EXPECT_TRUE(run.all_completed());
      break;
    }
    case 3: {
      apps::olden::TreeAddConfig cfg;
      cfg.depth = 9;
      const apps::olden::TreeAddApp app_(cfg, 4);
      const auto r = app_.run(net(false), rcfg);
      EXPECT_TRUE(r.phase.completed);
      std::string snap;
      append_doubles(snap, &r.sum, 1);
      const double elapsed = double(r.phase.elapsed);
      append_doubles(snap, &elapsed, 1);
      return snap;
    }
    case 4: {
      apps::olden::PowerConfig cfg;
      cfg.feeders = 4;
      cfg.laterals = 4;
      const apps::olden::PowerApp app_(cfg, 4);
      const auto r = app_.run(net(false), rcfg);
      EXPECT_TRUE(r.all_completed());
      std::string snap;
      append_doubles(snap, r.branch_prices.data(), r.branch_prices.size());
      append_doubles(snap, &r.final_root_demand, 1);
      return snap;
    }
    default: {
      apps::olden::PerimeterConfig cfg;
      cfg.log_size = 5;
      const apps::olden::PerimeterApp app_(cfg, 4);
      const auto r = app_.run(net(false), rcfg);
      EXPECT_TRUE(r.phase.completed);
      EXPECT_EQ(r.perimeter, r.expected);
      std::string snap;
      const double per = double(r.perimeter);
      const double elapsed = double(r.phase.elapsed);
      append_doubles(snap, &per, 1);
      append_doubles(snap, &elapsed, 1);
      return snap;
    }
  }
  return session.metrics.to_json();
}

std::vector<std::string> run_grid(std::size_t jobs) {
  std::vector<std::string> snaps(kEngines * kApps);
  parallel_for_cells(jobs, snaps.size(),
                     [&](std::size_t i) { snaps[i] = run_cell(i); });
  return snaps;
}

TEST(Determinism, AllEnginesAllAppsSnapshotIdenticallyAcrossRuns) {
  const auto a = run_grid(/*jobs=*/1);
  const auto b = run_grid(/*jobs=*/1);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "engine " << i / kApps << " app " << i % kApps;
    EXPECT_FALSE(a[i].empty());
  }
  // Engines really differ from each other on the same app (non-vacuous).
  EXPECT_NE(a[0], a[kApps]);  // dpa vs caching on barnes
}

// ---------- sim vs native physics equivalence ----------
//
// The Backend refactor's headline claim: the same program computes the same
// bits whether the substrate is the discrete-event simulator or real host
// threads. DPA runs in deterministic mode (in-order tile dispatch); the
// sync/prefetch engines consume in program order already; remote
// accumulations commit in (src, seq) order at the phase barrier. Together
// those make floating-point accumulation order a function of the program,
// not of message timing — so the physics must match byte-for-byte.

rt::RuntimeConfig equivalence_config(std::size_t which) {
  switch (which) {
    case 0: return rt::RuntimeConfig::dpa_deterministic(32);
    case 1: return rt::RuntimeConfig::caching();
    case 2: return rt::RuntimeConfig::blocking();
    default: return rt::RuntimeConfig::prefetching(8);
  }
}

std::string physics_snapshot(std::size_t engine, std::size_t app,
                             exec::BackendKind backend) {
  const auto rcfg = equivalence_config(engine);
  std::string snap;
  switch (app) {
    case 0: {
      apps::barnes::BarnesConfig cfg;
      cfg.nbodies = 192;
      cfg.nsteps = 2;
      const apps::barnes::BarnesApp bh(cfg);
      const auto run = bh.run(4, net(false), rcfg, nullptr, backend);
      EXPECT_TRUE(run.all_completed());
      for (const auto& b : run.final_bodies) {
        append_doubles(snap, &b.pos.x, 3);
        append_doubles(snap, &b.vel.x, 3);
        append_doubles(snap, &b.acc.x, 3);
      }
      break;
    }
    case 1: {
      apps::fmm::FmmConfig cfg;
      cfg.nparticles = 192;
      cfg.terms = 4;
      const apps::fmm::FmmApp fmm(cfg);
      const auto run = fmm.run(4, net(false), rcfg, nullptr, backend);
      EXPECT_TRUE(run.all_completed());
      for (const auto& p : run.final_particles) {
        const double vals[6] = {p.z.real(),     p.z.imag(),
                                p.vel.real(),   p.vel.imag(),
                                p.force.real(), p.force.imag()};
        append_doubles(snap, vals, 6);
      }
      break;
    }
    default: {
      apps::em3d::Em3dConfig cfg;
      cfg.e_per_node = 128;
      cfg.h_per_node = 128;
      cfg.remote_prob = 0.3;
      cfg.iters = 2;
      const apps::em3d::Em3dApp em(cfg, 4);
      const auto run = em.run(net(false), rcfg, nullptr, backend);
      EXPECT_TRUE(run.all_completed());
      append_doubles(snap, run.e_values.data(), run.e_values.size());
      append_doubles(snap, run.h_values.data(), run.h_values.size());
      break;
    }
  }
  EXPECT_FALSE(snap.empty());
  return snap;
}

TEST(SimVsNative, PhysicsAreByteIdenticalForEveryEngineAndApp) {
  for (std::size_t engine = 0; engine < kEngines; ++engine) {
    for (std::size_t app = 0; app < 3; ++app) {
      const std::string sim =
          physics_snapshot(engine, app, exec::BackendKind::kSim);
      const std::string native =
          physics_snapshot(engine, app, exec::BackendKind::kNative);
      EXPECT_EQ(sim, native) << "engine " << engine << " app " << app;
    }
  }
}

TEST(SimVsNative, OversubscribedEm3dIsByteIdenticalAt64Nodes) {
  // 64 native workers on a CPU-constrained runner: deliveries ride message
  // trains, idle workers park, and the sharded quiescence scan terminates
  // the phases — none of which may perturb a single bit of physics relative
  // to the discrete-event simulator.
  apps::em3d::Em3dConfig cfg;
  cfg.e_per_node = 8;
  cfg.h_per_node = 8;
  cfg.remote_prob = 0.5;
  cfg.iters = 2;
  const apps::em3d::Em3dApp em(cfg, 64);
  for (std::size_t engine = 0; engine < kEngines; ++engine) {
    const auto rcfg = equivalence_config(engine);
    const auto sim =
        em.run(net(false), rcfg, nullptr, exec::BackendKind::kSim);
    const auto native =
        em.run(net(false), rcfg, nullptr, exec::BackendKind::kNative);
    ASSERT_TRUE(sim.all_completed() && native.all_completed())
        << "engine " << engine;
    std::string a, b;
    append_doubles(a, sim.e_values.data(), sim.e_values.size());
    append_doubles(a, sim.h_values.data(), sim.h_values.size());
    append_doubles(b, native.e_values.data(), native.e_values.size());
    append_doubles(b, native.h_values.data(), native.h_values.size());
    EXPECT_EQ(a, b) << "engine " << engine;
  }
}

TEST(SimVsNative, WorkerPoolSizeNeverPerturbsPhysics) {
  // The M:N scheduler's determinism claim quantified over the pool size:
  // the same 64-node em3d program must compute the same bits whether one
  // worker multiplexes all 64 nodes, a handful of workers steal from each
  // other, or the pool matches the host core count (--workers=0). The sim
  // oracle is computed once per engine; every pool size is compared
  // byte-for-byte against it.
  apps::em3d::Em3dConfig cfg;
  cfg.e_per_node = 8;
  cfg.h_per_node = 8;
  cfg.remote_prob = 0.5;
  cfg.iters = 2;
  const apps::em3d::Em3dApp em(cfg, 64);
  const std::uint32_t worker_axis[] = {1, 2, 4, 0};  // 0 = one per core
  for (std::size_t engine = 0; engine < kEngines; ++engine) {
    const auto rcfg = equivalence_config(engine);
    const auto sim =
        em.run(net(false), rcfg, nullptr, exec::BackendKind::kSim);
    ASSERT_TRUE(sim.all_completed()) << "engine " << engine;
    std::string oracle;
    append_doubles(oracle, sim.e_values.data(), sim.e_values.size());
    append_doubles(oracle, sim.h_values.data(), sim.h_values.size());
    for (const std::uint32_t workers : worker_axis) {
      exec::NativeBackend::Tuning tuning;
      tuning.workers = workers;
      exec::ScopedDefaultTuning guard(tuning);
      const auto native =
          em.run(net(false), rcfg, nullptr, exec::BackendKind::kNative);
      ASSERT_TRUE(native.all_completed())
          << "engine " << engine << " workers " << workers;
      std::string got;
      append_doubles(got, native.e_values.data(), native.e_values.size());
      append_doubles(got, native.h_values.data(), native.h_values.size());
      EXPECT_EQ(oracle, got) << "engine " << engine << " workers " << workers;
    }
  }
}

// ---------- sim vs native vs proc: the three-way oracle ----------
//
// The multi-process backend's headline claim, extending SimVsNative: the
// same program computes the same bits whether it runs on the simulator,
// on one process full of threads, or partitioned across worker *processes*
// that exchange encoded frames over socketpairs. Remote accumulations
// commit (src, seq)-sorted in the owning worker; replies carry fork-time
// (= phase-start) object state; span merges are disjoint by ownership.

// Sets the process-wide ProcBackend config for a scope, restoring the
// previous default on exit (mirrors exec::ScopedDefaultTuning).
class ScopedProcConfig {
 public:
  explicit ScopedProcConfig(const exec::ProcBackend::Config& cfg)
      : saved_(exec::ProcBackend::default_config()) {
    exec::ProcBackend::set_default_config(cfg);
  }
  ~ScopedProcConfig() { exec::ProcBackend::set_default_config(saved_); }

 private:
  exec::ProcBackend::Config saved_;
};

TEST(ProcEquivalence, PhysicsAreByteIdenticalAcrossAllThreeBackends) {
  exec::ProcBackend::Config cfg;
  cfg.procs = 2;
  const ScopedProcConfig guard(cfg);
  for (std::size_t engine = 0; engine < kEngines; ++engine) {
    for (std::size_t app = 0; app < 3; ++app) {
      const std::string sim =
          physics_snapshot(engine, app, exec::BackendKind::kSim);
      const std::string native =
          physics_snapshot(engine, app, exec::BackendKind::kNative);
      const std::string proc =
          physics_snapshot(engine, app, exec::BackendKind::kProc);
      EXPECT_EQ(sim, native) << "engine " << engine << " app " << app;
      EXPECT_EQ(sim, proc) << "engine " << engine << " app " << app;
    }
  }
}

TEST(ProcEquivalence, ProcessCountNeverPerturbsPhysics) {
  // Quantified over the partition: 8-node em3d must compute the same bits
  // whether one process owns all nodes, or they are split 2/4/8 ways (8 =
  // every node its own process, maximum cross-process traffic).
  apps::em3d::Em3dConfig cfg;
  cfg.e_per_node = 32;
  cfg.h_per_node = 32;
  cfg.remote_prob = 0.5;
  cfg.iters = 2;
  const apps::em3d::Em3dApp em(cfg, 8);
  for (std::size_t engine = 0; engine < kEngines; ++engine) {
    const auto rcfg = equivalence_config(engine);
    const auto sim =
        em.run(net(false), rcfg, nullptr, exec::BackendKind::kSim);
    ASSERT_TRUE(sim.all_completed()) << "engine " << engine;
    std::string oracle;
    append_doubles(oracle, sim.e_values.data(), sim.e_values.size());
    append_doubles(oracle, sim.h_values.data(), sim.h_values.size());
    for (const std::uint32_t procs : {1u, 2u, 4u, 8u}) {
      exec::ProcBackend::Config pcfg;
      pcfg.procs = procs;
      const ScopedProcConfig guard(pcfg);
      const auto proc =
          em.run(net(false), rcfg, nullptr, exec::BackendKind::kProc);
      ASSERT_TRUE(proc.all_completed())
          << "engine " << engine << " procs " << procs;
      std::string got;
      append_doubles(got, proc.e_values.data(), proc.e_values.size());
      append_doubles(got, proc.h_values.data(), proc.h_values.size());
      EXPECT_EQ(oracle, got) << "engine " << engine << " procs " << procs;
    }
  }
}

TEST(Determinism, ParallelSweepMatchesSerialByteForByte) {
  // The sweep driver's contract: a --jobs=N pool computes exactly what the
  // serial loop computes. Each snapshot is byte-compared, not approximated.
  const auto serial = run_grid(/*jobs=*/1);
  const auto pooled = run_grid(/*jobs=*/4);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], pooled[i])
        << "engine " << i / kApps << " app " << i % kApps;
  }
}

}  // namespace
}  // namespace dpa
