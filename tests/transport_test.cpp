// Transport-layer unit + fuzz coverage: the frame codec (transport/frame.h)
// and the relocated reliability core (transport/reliable.h).
//
// The codec suite mirrors json_fuzz_test's shape: a seeded-random corpus
// round-trips byte-stably, and a mutation corpus (truncations, bit flips,
// inserted bytes, duplicated frames) must decode to a clean failure status —
// never crash, never read out of bounds (the property the ASan/UBSan CI leg
// locks in).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "support/rng.h"
#include "transport/frame.h"
#include "transport/reliable.h"

namespace dpa::transport {
namespace {

// ---------- generators ----------

FramePayload gen_payload(Rng& rng, std::uint64_t seq) {
  FramePayload p;
  p.tag = std::uint16_t(rng.next_below(0x10000));
  p.seq = seq;
  const auto len = rng.next_below(64);  // includes empty payloads
  p.bytes.reserve(len);
  for (std::uint64_t i = 0; i < len; ++i)
    p.bytes.push_back(std::uint8_t(rng.next_below(256)));
  return p;
}

std::vector<FramePayload> gen_train(Rng& rng) {
  std::vector<FramePayload> train;
  const auto n = rng.next_below(6);  // includes empty trains
  std::uint64_t seq = rng.next_below(1000);
  for (std::uint64_t i = 0; i < n; ++i) {
    // Mix sequenced and unsequenced payloads; sequences need not be dense.
    const bool sequenced = rng.next_below(4) != 0;
    train.push_back(gen_payload(rng, sequenced ? ++seq : 0));
  }
  return train;
}

void expect_equal(const std::vector<FramePayload>& train,
                  const DecodedFrame& got, int iter) {
  ASSERT_EQ(got.payloads.size(), train.size()) << "iter " << iter;
  for (std::size_t i = 0; i < train.size(); ++i) {
    EXPECT_EQ(got.payloads[i].tag, train[i].tag) << "iter " << iter;
    EXPECT_EQ(got.payloads[i].seq, train[i].seq) << "iter " << iter;
    EXPECT_EQ(got.payloads[i].bytes, train[i].bytes) << "iter " << iter;
  }
}

// ---------- pinned basics ----------

TEST(Crc32, MatchesTheReferenceVector) {
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(FrameCodec, EncodesTheDocumentedLayout) {
  std::vector<FramePayload> train(1);
  train[0].tag = 7;
  train[0].seq = 42;
  train[0].bytes = {0xAA, 0xBB, 0xCC};
  std::vector<std::uint8_t> buf;
  encode_frame(/*src=*/3, /*dst=*/9, /*epoch=*/5, /*flags=*/0, train, &buf);
  ASSERT_EQ(buf.size(), kFrameHeaderBytes + kPayloadHeaderBytes + 3 +
                            kFrameTrailerBytes);
  // magic "DPAF" little-endian.
  EXPECT_EQ(buf[0], 'D');
  EXPECT_EQ(buf[1], 'P');
  EXPECT_EQ(buf[2], 'A');
  EXPECT_EQ(buf[3], 'F');
  EXPECT_EQ(buf[4], kFrameVersion);  // version lo byte
  EXPECT_EQ(buf[8], 3);              // src lo byte
  EXPECT_EQ(buf[12], 9);             // dst lo byte
  EXPECT_EQ(buf[16], 5);             // epoch lo byte
  EXPECT_EQ(buf[24], 42);            // seq_first lo byte
  EXPECT_EQ(buf[32], 42);            // seq_last lo byte
  EXPECT_EQ(buf[40], 1);             // count lo byte
  EXPECT_EQ(buf[44], kPayloadHeaderBytes + 3);  // body_len lo byte

  DecodedFrame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(buf.data(), buf.size(), &frame, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(consumed, buf.size());
  EXPECT_EQ(frame.header.src, 3u);
  EXPECT_EQ(frame.header.dst, 9u);
  EXPECT_EQ(frame.header.epoch, 5u);
  EXPECT_EQ(frame.header.seq_first, 42u);
  EXPECT_EQ(frame.header.seq_last, 42u);
  expect_equal(train, frame, 0);
}

TEST(FrameCodec, RejectsFutureVersionsAsBadVersion) {
  std::vector<std::uint8_t> buf;
  encode_frame(0, 1, 0, 0, {}, &buf);
  buf[4] = kFrameVersion + 1;  // bump version...
  // ...and re-seal the header so the version check (not the CRC) fires.
  const std::uint32_t crc = crc32(buf.data(), 48);
  std::memcpy(buf.data() + 48, &crc, 4);
  DecodedFrame frame;
  std::size_t consumed = 1;
  EXPECT_EQ(decode_frame(buf.data(), buf.size(), &frame, &consumed),
            DecodeStatus::kBadVersion);
  EXPECT_EQ(consumed, 0u);
}

TEST(FrameCodec, RejectsOversizedBodyDeclarations) {
  std::vector<std::uint8_t> buf;
  encode_frame(0, 1, 0, 0, {}, &buf);
  const std::uint32_t huge = kMaxFrameBody + 1;
  std::memcpy(buf.data() + 44, &huge, 4);
  const std::uint32_t crc = crc32(buf.data(), 48);
  std::memcpy(buf.data() + 48, &crc, 4);
  DecodedFrame frame;
  std::size_t consumed = 0;
  // A CRC-valid header may not make the decoder buffer 64 MiB+.
  EXPECT_EQ(decode_frame(buf.data(), buf.size(), &frame, &consumed),
            DecodeStatus::kBadLength);
}

TEST(FrameCodec, RejectsSeqRangeDisagreeingWithPayloads) {
  std::vector<FramePayload> train(1);
  train[0].seq = 7;
  std::vector<std::uint8_t> buf;
  encode_frame(0, 1, 0, 0, train, &buf);
  const std::uint64_t lie = 8;
  std::memcpy(buf.data() + 24, &lie, 8);  // seq_first
  std::memcpy(buf.data() + 32, &lie, 8);  // seq_last
  const std::uint32_t crc = crc32(buf.data(), 48);
  std::memcpy(buf.data() + 48, &crc, 4);
  DecodedFrame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(buf.data(), buf.size(), &frame, &consumed),
            DecodeStatus::kBadSeqRange);
}

TEST(FrameCodec, NonMagicPrefixFailsFastAsBadMagic) {
  const std::uint8_t junk[] = {'n', 'o', 'p', 'e', 0, 0, 0, 0};
  DecodedFrame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(junk, sizeof junk, &frame, &consumed),
            DecodeStatus::kBadMagic);
  // A short buffer that cannot be a frame prefix fails fast too (the
  // stream will never heal by buffering more bytes).
  const std::uint8_t bad2[] = {'D', 'X'};
  EXPECT_EQ(decode_frame(bad2, 2, &frame, &consumed), DecodeStatus::kBadMagic);
}

// ---------- properties ----------

TEST(FrameFuzz, RandomTrainsRoundTrip) {
  Rng rng(0xF4a3e1);
  for (int iter = 0; iter < 500; ++iter) {
    const auto train = gen_train(rng);
    const NodeId src = NodeId(rng.next_below(64));
    const NodeId dst = NodeId(rng.next_below(64));
    const std::uint64_t epoch = rng.next_u64() >> 8;
    const std::uint16_t flags =
        rng.next_below(2) ? kFrameFlagControl : std::uint16_t(0);

    std::vector<std::uint8_t> buf;
    encode_frame(src, dst, epoch, flags, train, &buf);
    // Byte-stable: re-encoding the same train yields the same bytes.
    std::vector<std::uint8_t> buf2;
    encode_frame(src, dst, epoch, flags, train, &buf2);
    EXPECT_EQ(buf, buf2) << "iter " << iter;

    DecodedFrame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(buf.data(), buf.size(), &frame, &consumed),
              DecodeStatus::kOk)
        << "iter " << iter;
    EXPECT_EQ(consumed, buf.size()) << "iter " << iter;
    EXPECT_EQ(frame.header.src, src);
    EXPECT_EQ(frame.header.dst, dst);
    EXPECT_EQ(frame.header.epoch, epoch);
    EXPECT_EQ(frame.header.flags, flags);
    expect_equal(train, frame, iter);
  }
}

TEST(FrameFuzz, ConcatenatedFramesDecodeSequentially) {
  Rng rng(0xF4a3e2);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<std::vector<FramePayload>> trains;
    std::vector<std::uint8_t> stream;
    const auto n = 1 + rng.next_below(5);
    for (std::uint64_t i = 0; i < n; ++i) {
      trains.push_back(gen_train(rng));
      encode_frame(NodeId(i), NodeId(i + 1), 1, 0, trains.back(), &stream);
    }
    std::size_t pos = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      DecodedFrame frame;
      std::size_t consumed = 0;
      ASSERT_EQ(decode_frame(stream.data() + pos, stream.size() - pos, &frame,
                             &consumed),
                DecodeStatus::kOk)
          << "iter " << iter << " frame " << i;
      pos += consumed;
      EXPECT_EQ(frame.header.src, NodeId(i));
      expect_equal(trains[i], frame, iter);
    }
    EXPECT_EQ(pos, stream.size()) << "iter " << iter;
  }
}

TEST(FrameFuzz, EveryTruncationNeedsMoreAndNeverCrashes) {
  Rng rng(0xF4a3e3);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::uint8_t> buf;
    encode_frame(2, 3, 9, 0, gen_train(rng), &buf);
    for (std::size_t cut = 0; cut < buf.size(); ++cut) {
      DecodedFrame frame;
      std::size_t consumed = 7;
      const DecodeStatus s = decode_frame(buf.data(), cut, &frame, &consumed);
      // A prefix of a valid frame is always "buffer more": incremental
      // reassembly must never misread a partial frame as corrupt.
      EXPECT_EQ(s, DecodeStatus::kNeedMore)
          << "iter " << iter << " cut at " << cut;
      EXPECT_EQ(consumed, 0u);
    }
  }
}

TEST(FrameFuzz, SingleBitFlipsAreAlwaysDetected) {
  Rng rng(0xF4a3e4);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<std::uint8_t> buf;
    encode_frame(1, 2, 3, 0, gen_train(rng), &buf);
    // CRC-32 detects every single-bit error, so any one-bit flip must turn
    // into a clean failure status — kOk here would mean a checksum gap.
    std::vector<std::uint8_t> mut = buf;
    const std::size_t byte = rng.next_below(mut.size());
    mut[byte] ^= std::uint8_t(1u << rng.next_below(8));
    DecodedFrame frame;
    std::size_t consumed = 0;
    const DecodeStatus s =
        decode_frame(mut.data(), mut.size(), &frame, &consumed);
    EXPECT_NE(s, DecodeStatus::kOk)
        << "iter " << iter << ": flip at byte " << byte << " undetected";
    EXPECT_EQ(consumed, 0u);
    // kNeedMore is legitimate: a flip in body_len can declare a longer
    // body... no — body_len is under the header CRC. But a flip in the
    // *magic* of a frame whose remaining bytes happen to follow is
    // kBadMagic, and flips elsewhere in [0,48) are kBadHeaderCrc. Assert
    // the statuses stay in the failure set.
    EXPECT_TRUE(s == DecodeStatus::kBadMagic ||
                s == DecodeStatus::kBadHeaderCrc ||
                s == DecodeStatus::kBadBodyCrc)
        << "iter " << iter << ": status " << to_string(s);
  }
}

TEST(FrameFuzz, MutatedFramesNeverCrash) {
  Rng rng(0xF4a3e5);
  for (int iter = 0; iter < 1000; ++iter) {
    std::vector<std::uint8_t> buf;
    encode_frame(NodeId(rng.next_below(8)), NodeId(rng.next_below(8)),
                 rng.next_below(100), 0, gen_train(rng), &buf);
    const auto n_edits = 1 + rng.next_below(4);
    for (std::uint64_t e = 0; e < n_edits && !buf.empty(); ++e) {
      const std::size_t at = rng.next_below(buf.size());
      switch (rng.next_below(4)) {
        case 0:  // truncate
          buf.resize(at);
          break;
        case 1:  // flip a whole byte
          buf[at] = std::uint8_t(rng.next_below(256));
          break;
        case 2:  // insert a byte (shifts the body against its lengths)
          buf.insert(buf.begin() + std::ptrdiff_t(at),
                     std::uint8_t(rng.next_below(256)));
          break;
        default:  // delete a byte
          buf.erase(buf.begin() + std::ptrdiff_t(at));
      }
    }
    DecodedFrame frame;
    std::size_t consumed = 0;
    const DecodeStatus s =
        decode_frame(buf.data(), buf.size(), &frame, &consumed);
    // Must not crash or read out of bounds; consumed advances only on kOk.
    if (s != DecodeStatus::kOk) {
      EXPECT_EQ(consumed, 0u) << "iter " << iter;
    }
  }
}

TEST(FrameFuzz, DuplicatedFramesDecodeIdentically) {
  // The codec is stateless: the same frame appearing twice in a stream
  // (a retransmission, a fault-injected dup) decodes to the same train
  // both times — dedup is the reliability layer's job, not the codec's.
  Rng rng(0xF4a3e6);
  for (int iter = 0; iter < 100; ++iter) {
    const auto train = gen_train(rng);
    std::vector<std::uint8_t> stream;
    encode_frame(4, 5, 6, 0, train, &stream);
    const std::size_t one = stream.size();
    stream.insert(stream.end(), stream.begin(), stream.begin() + one);
    DecodedFrame a, b;
    std::size_t ca = 0, cb = 0;
    ASSERT_EQ(decode_frame(stream.data(), stream.size(), &a, &ca),
              DecodeStatus::kOk);
    ASSERT_EQ(ca, one);
    ASSERT_EQ(decode_frame(stream.data() + ca, stream.size() - ca, &b, &cb),
              DecodeStatus::kOk);
    expect_equal(train, a, iter);
    expect_equal(train, b, iter);
  }
}

TEST(FrameFuzz, RandomByteSoupNeverCrashes) {
  Rng rng(0xF4a3e7);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::uint8_t> soup;
    const auto len = rng.next_below(128);
    for (std::uint64_t i = 0; i < len; ++i)
      soup.push_back(std::uint8_t(rng.next_below(256)));
    DecodedFrame frame;
    std::size_t consumed = 0;
    const DecodeStatus s =
        decode_frame(soup.data(), soup.size(), &frame, &consumed);
    if (s != DecodeStatus::kOk) {
      EXPECT_EQ(consumed, 0u);
    }
  }
}

// ---------- the relocated reliability core ----------

Reliable::Pending make_pending(NodeId dst) {
  Reliable::Pending p;
  p.dst = dst;
  p.handler = 1;
  p.bytes = 8;
  return p;
}

TEST(Reliable, DisengagedAcceptsEverythingAndTracksNothing) {
  Reliable rel;
  EXPECT_FALSE(rel.engaged());
  EXPECT_EQ(rel.in_flight(), 0u);
}

TEST(Reliable, SequencesTrackAckAndDrain) {
  Reliable rel;
  rel.engage(4, RetryPolicy{}, /*self=*/0);
  ASSERT_TRUE(rel.engaged());
  EXPECT_EQ(rel.next_seq(), 1u);
  EXPECT_EQ(rel.next_seq(), 2u);

  const Time deadline = rel.track(1, make_pending(2), /*now=*/100);
  EXPECT_EQ(deadline, 100 + RetryPolicy{}.timeout_ns);
  rel.track(2, make_pending(3), 100);
  EXPECT_EQ(rel.in_flight(), 2u);
  EXPECT_TRUE(rel.is_pending(1));

  EXPECT_TRUE(rel.on_ack(1));
  EXPECT_FALSE(rel.on_ack(1));  // stale ack: already cleared
  EXPECT_FALSE(rel.is_pending(1));
  EXPECT_EQ(rel.in_flight(), 1u);
  EXPECT_TRUE(rel.on_ack(2));
  EXPECT_EQ(rel.in_flight(), 0u);
}

TEST(Reliable, RetryBacksOffExponentiallyAndCapsAtMaxTimeout) {
  RetryPolicy policy;
  policy.timeout_ns = 1000;
  policy.backoff = 2.0;
  policy.max_timeout_ns = 3500;
  Reliable rel;
  rel.engage(2, policy, 0);
  rel.track(rel.next_seq(), make_pending(1), 0);

  const Reliable::Pending* p = rel.retry(1);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->attempts, 1u);
  EXPECT_EQ(p->timeout, 2000);
  p = rel.retry(1);
  EXPECT_EQ(p->timeout, 3500);  // capped, not 4000
  p = rel.retry(1);
  EXPECT_EQ(p->timeout, 3500);  // stays at the cap

  // Acked messages stop retrying: the timer that fires after the ack
  // finds nothing and must get null (not a resurrection).
  EXPECT_TRUE(rel.on_ack(1));
  EXPECT_EQ(rel.retry(1), nullptr);
}

TEST(Reliable, GivesUpAfterMaxRetriesThroughThePeerDeadCallback) {
  RetryPolicy policy;
  policy.timeout_ns = 1000;
  policy.max_retries = 3;
  Reliable rel;
  rel.engage(4, policy, 0);

  NodeId dead_dst = 0;
  std::uint64_t dead_seq = 0;
  std::uint32_t dead_sends = 0;
  int calls = 0;
  rel.set_on_peer_dead([&](NodeId dst, std::uint64_t seq,
                           std::uint32_t sends) {
    ++calls;
    dead_dst = dst;
    dead_seq = seq;
    dead_sends = sends;
  });

  const std::uint64_t seq = rel.next_seq();
  rel.track(seq, make_pending(3), /*now=*/0);

  // max_retries retransmissions are granted...
  for (std::uint32_t i = 1; i <= policy.max_retries; ++i) {
    const Reliable::Pending* p = rel.retry(seq);
    ASSERT_NE(p, nullptr) << "retry " << i;
    EXPECT_EQ(p->attempts, i);
  }
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(rel.in_flight(), 1u);

  // ...and the next deadline gives the message up: null return, entry
  // erased, and the callback sees every transmission ever made — the
  // original send plus max_retries retransmissions.
  EXPECT_EQ(rel.retry(seq), nullptr);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(dead_dst, 3u);
  EXPECT_EQ(dead_seq, seq);
  EXPECT_EQ(dead_sends, 1u + policy.max_retries);
  EXPECT_EQ(rel.in_flight(), 0u);
  EXPECT_FALSE(rel.is_pending(seq));

  // A later timer for the same seq finds nothing: no double-report.
  EXPECT_EQ(rel.retry(seq), nullptr);
  EXPECT_EQ(calls, 1);
}

TEST(Reliable, AcceptDedupsPerSourceSequences) {
  Reliable rel;
  rel.engage(3, RetryPolicy{}, /*self=*/2);
  EXPECT_TRUE(rel.accept(0, 1));
  EXPECT_FALSE(rel.accept(0, 1));  // duplicate from the same source
  EXPECT_TRUE(rel.accept(1, 1));   // same seq, different source: distinct
  EXPECT_TRUE(rel.accept(0, 2));
  // seq 0 = unsequenced (acks, pre-protocol messages): always accepted.
  EXPECT_TRUE(rel.accept(0, 0));
  EXPECT_TRUE(rel.accept(0, 0));
}

}  // namespace
}  // namespace dpa::transport
