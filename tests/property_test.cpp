// Property tests: randomized workloads checked against invariants that must
// hold for every engine, every topology and every parameter setting.
//
// The central ones:
//   * result equivalence — every engine computes the same reduction values
//     on the same workload (scheduling must not change semantics);
//   * conservation — threads created are eventually run, every requested
//     ref is served exactly once, every sent message is received;
//   * accounting — per-node busy components sum to busy_total and
//     busy + idle == elapsed;
//   * resource bounds — strip-mining caps M and outstanding threads;
//   * determinism — identical runs are bit-identical.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "gas/heap.h"
#include "runtime/phase.h"
#include "support/rng.h"

namespace dpa::rt {
namespace {

using gas::GPtr;

struct Obj {
  double val = 0;
};

// A randomly generated phase plan: which objects each node's items touch.
struct Plan {
  std::uint32_t nodes = 0;
  std::vector<GPtr<Obj>> objs;          // with random homes
  std::vector<std::vector<std::vector<std::size_t>>> touches;  // [node][item]
  double expected_sum = 0;

  static Plan make(Cluster& cluster, std::uint64_t seed) {
    Rng rng(seed);
    Plan plan;
    plan.nodes = cluster.num_nodes();
    const std::size_t nobjs = 1 + rng.next_below(200);
    for (std::size_t i = 0; i < nobjs; ++i) {
      plan.objs.push_back(cluster.heap.make<Obj>(
          sim::NodeId(rng.next_below(plan.nodes)),
          Obj{rng.uniform(0.5, 2.0)}));
    }
    plan.touches.resize(plan.nodes);
    for (std::uint32_t n = 0; n < plan.nodes; ++n) {
      const std::size_t items = rng.next_below(60);
      plan.touches[n].resize(items);
      for (auto& item : plan.touches[n]) {
        const std::size_t k = 1 + rng.next_below(4);
        for (std::size_t t = 0; t < k; ++t) {
          const std::size_t o = rng.next_below(nobjs);
          item.push_back(o);
          plan.expected_sum += plan.objs[o].addr->val;
        }
      }
    }
    return plan;
  }

  std::vector<NodeWork> work(std::shared_ptr<double> sum) const {
    std::vector<NodeWork> w(nodes);
    for (std::uint32_t n = 0; n < nodes; ++n) {
      const auto& mine = touches[n];
      w[n].count = mine.size();
      w[n].item = [this, &mine, sum](Ctx& ctx, std::uint64_t i) {
        for (const std::size_t o : mine[std::size_t(i)]) {
          ctx.require(objs[o], [sum](Ctx& c, const Obj& obj) {
            c.charge(75);
            *sum += obj.val;
          });
        }
      };
    }
    return w;
  }
};

sim::NetParams random_net(std::uint64_t seed) {
  Rng rng(seed * 31 + 7);
  sim::NetParams p;
  p.send_overhead = sim::Time(rng.next_below(4000));
  p.recv_overhead = sim::Time(rng.next_below(4000));
  p.latency = sim::Time(rng.next_below(10000));
  p.ns_per_byte = rng.uniform(0, 60);
  p.per_msg_wire = sim::Time(rng.next_below(500));
  p.nic_serialize = rng.chance(0.5);
  p.topology = rng.chance(0.5) ? sim::Topology::kTorus3d
                               : sim::Topology::kCrossbar;
  return p;
}

RuntimeConfig config_by_name(const std::string& name) {
  if (name == "dpa") return RuntimeConfig::dpa(17);
  if (name == "dpa-base") return RuntimeConfig::dpa_base(17);
  if (name == "dpa-pipe") return RuntimeConfig::dpa_pipelined(17);
  if (name == "dpa-interleaved") {
    auto cfg = RuntimeConfig::dpa(17);
    cfg.sched_template = SchedTemplate::kInterleaved;
    return cfg;
  }
  if (name == "caching") return RuntimeConfig::caching();
  if (name == "caching-lru-small") {
    auto cfg = RuntimeConfig::caching();
    cfg.cache_capacity = 8;
    cfg.cache_policy = RuntimeConfig::CachePolicy::kLru;
    return cfg;
  }
  if (name == "blocking") return RuntimeConfig::blocking();
  if (name == "prefetch") return RuntimeConfig::prefetching(8);
  ADD_FAILURE() << "unknown engine " << name;
  return RuntimeConfig{};
}

// ---------- engine x seed sweep ----------

class EngineProperty
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(EngineProperty, ResultAndInvariantsHold) {
  const auto& [engine, seed_int] = GetParam();
  const auto seed = std::uint64_t(seed_int);
  const std::uint32_t nodes = 2 + std::uint32_t(seed % 7);

  Cluster cluster(nodes, random_net(seed));
  const Plan plan = Plan::make(cluster, seed);
  auto sum = std::make_shared<double>(0.0);

  PhaseRunner runner(cluster, config_by_name(engine));
  const PhaseResult r = runner.run(plan.work(sum));
  ASSERT_TRUE(r.completed) << r.diagnostics;

  // Result equivalence with the plan's oracle (reductions commute; exact
  // equality is too strict under reassociation, so allow ulp-scale slack).
  EXPECT_NEAR(*sum, plan.expected_sum, 1e-9 * (1.0 + plan.expected_sum));

  // Conservation.
  EXPECT_EQ(r.rt.threads_created, r.rt.threads_run);
  EXPECT_EQ(r.rt.refs_requested, r.rt.refs_served);
  EXPECT_EQ(r.rt.request_msgs, r.rt.requests_served);
  EXPECT_EQ(r.rt.request_msgs, r.rt.replies_recv);
  EXPECT_EQ(r.fm_total.msgs_sent, r.fm_total.msgs_recv);
  EXPECT_EQ(r.fm_total.bytes_sent, r.fm_total.bytes_recv);

  // Accounting.
  for (const auto& n : r.nodes) {
    EXPECT_EQ(n.compute + n.runtime + n.comm, n.busy_total);
    EXPECT_EQ(n.busy_total + n.idle, r.elapsed);
  }

  if (r.rt.request_msgs > 0) EXPECT_GE(r.rt.aggregation_factor(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EngineProperty,
    ::testing::Combine(
        ::testing::Values("dpa", "dpa-base", "dpa-pipe", "dpa-interleaved",
                          "caching", "caching-lru-small", "blocking",
                          "prefetch"),
        ::testing::Range(1, 9)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_seed" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// ---------- determinism sweep ----------

class DeterminismProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismProperty, IdenticalRunsAreBitIdentical) {
  const auto seed = std::uint64_t(GetParam());
  auto run_once = [seed] {
    Cluster cluster(4, random_net(seed));
    const Plan plan = Plan::make(cluster, seed);
    auto sum = std::make_shared<double>(0.0);
    PhaseRunner runner(cluster, RuntimeConfig::dpa(13));
    const PhaseResult r = runner.run(plan.work(sum));
    EXPECT_TRUE(r.completed);
    return std::tuple(r.elapsed, r.net.messages, r.net.bytes,
                      r.rt.threads_run, r.rt.request_msgs, *sum);
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty,
                         ::testing::Range(100, 110));

// ---------- strip bound sweep ----------

class StripBoundProperty : public ::testing::TestWithParam<int> {};

TEST_P(StripBoundProperty, StripCapsLiveState) {
  const auto strip = std::uint32_t(GetParam());
  Cluster cluster(2, sim::NetParams{});
  std::vector<GPtr<Obj>> objs;
  for (int i = 0; i < 400; ++i)
    objs.push_back(cluster.heap.make<Obj>(1, Obj{1.0}));

  std::vector<NodeWork> work(2);
  work[0].count = 400;
  work[0].item = [&objs](Ctx& ctx, std::uint64_t i) {
    // Two distinct remote objects per iteration.
    ctx.require(objs[std::size_t(i)], [](Ctx&, const Obj&) {});
    ctx.require(objs[(std::size_t(i) + 200) % 400], [](Ctx&, const Obj&) {});
  };
  PhaseRunner runner(cluster, RuntimeConfig::dpa(strip));
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  // At most 2 distinct refs per iteration, scoped to one strip.
  EXPECT_LE(r.rt.max_m_entries, std::int64_t(strip) * 2);
  EXPECT_EQ(r.rt.strips, std::uint64_t((400 + strip - 1) / strip));
}

INSTANTIATE_TEST_SUITE_P(Strips, StripBoundProperty,
                         ::testing::Values(1, 3, 10, 50, 128, 400, 1000));

// ---------- accumulation equivalence sweep ----------

class AccumProperty
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(AccumProperty, UpdatesAllArriveUnderEveryEngine) {
  const auto& [engine, seed_int] = GetParam();
  const auto seed = std::uint64_t(seed_int);
  Rng rng(seed);
  const std::uint32_t nodes = 2 + std::uint32_t(rng.next_below(6));
  Cluster cluster(nodes, random_net(seed));

  const std::size_t nobjs = 1 + rng.next_below(50);
  std::vector<GPtr<Obj>> objs;
  for (std::size_t i = 0; i < nobjs; ++i)
    objs.push_back(
        cluster.heap.make<Obj>(sim::NodeId(rng.next_below(nodes)), Obj{0}));

  // Every node sends updates to random objects; record the oracle.
  std::vector<double> expected(nobjs, 0.0);
  std::vector<std::vector<std::pair<std::size_t, double>>> sends(nodes);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const std::size_t count = rng.next_below(80);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t o = rng.next_below(nobjs);
      const double v = rng.uniform(-1, 1);
      sends[n].push_back({o, v});
      expected[o] += v;
    }
  }

  std::vector<NodeWork> work(nodes);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const auto& mine = sends[n];
    work[n].count = mine.size();
    work[n].item = [&objs, &mine](Ctx& ctx, std::uint64_t i) {
      const auto& [o, v] = mine[std::size_t(i)];
      ctx.accumulate(objs[o], [v = v](Obj& obj) { obj.val += v; });
    };
  }
  PhaseRunner runner(cluster, config_by_name(engine));
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  for (std::size_t o = 0; o < nobjs; ++o)
    EXPECT_NEAR(objs[o].addr->val, expected[o], 1e-12) << "obj " << o;
  EXPECT_EQ(r.rt.accums_issued, r.rt.accums_applied);
}

INSTANTIATE_TEST_SUITE_P(
    Accum, AccumProperty,
    ::testing::Combine(::testing::Values("dpa", "dpa-pipe", "caching",
                                         "blocking"),
                       ::testing::Range(20, 26)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_seed" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace dpa::rt
