// Tests for the shared bench-harness plumbing in bench/common.h: the
// --backend/--jobs/--watchdog-ms option structs whose clamping, validation
// and warning behavior the CI harnesses rely on but no app test exercises.
#include <gtest/gtest.h>

#include <string>

#include "common.h"

namespace dpa {
namespace {

TEST(BackendOptions, ValidateAcceptsKnownBackendsAndRejectsTypos) {
  bench::FaultOptions no_faults;
  bench::BackendOptions b;
  EXPECT_TRUE(b.validate(no_faults));  // default "sim"
  b.name = "native";
  EXPECT_TRUE(b.validate(no_faults));
  b.name = "natiev";
  EXPECT_FALSE(b.validate(no_faults));
}

TEST(BackendOptions, ValidateRejectsFaultsOnNative) {
  bench::FaultOptions faults;
  faults.spec = "chaos";
  bench::BackendOptions b;
  EXPECT_TRUE(b.validate(faults));  // sim + faults: fine
  b.name = "native";
  EXPECT_FALSE(b.validate(faults));  // lossless fabric, no injector
}

TEST(BackendOptions, ClampJobsForcesSerialCellsOnNativeWithWarning) {
  bench::BackendOptions b;
  EXPECT_EQ(b.clamp_jobs(8), 8u);  // sim: pass-through
  b.name = "native";
  EXPECT_EQ(b.clamp_jobs(1), 1u);  // no-op, no warning
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(b.clamp_jobs(8), 1u);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("--jobs=8 ignored"), std::string::npos) << err;
  EXPECT_NE(err.find("native"), std::string::npos) << err;
}

TEST(SweepOptions, ObsSessionForcesSerialCellsAndNamesTheFlag) {
  bench::SweepOptions sweep;
  sweep.jobs = 4;
  EXPECT_EQ(sweep.resolved(nullptr), 4u);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(sweep.resolved("--trace-out"), 1u);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("--jobs=4 ignored"), std::string::npos) << err;
  EXPECT_NE(err.find("--trace-out"), std::string::npos) << err;

  // jobs=1 under a session: nothing to override, nothing to warn about.
  sweep.jobs = 1;
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(sweep.resolved("--metrics-out"), 1u);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");

  sweep.jobs = 0;  // 0 = one per hardware thread
  EXPECT_GE(sweep.resolved(nullptr), 1u);
}

TEST(BackendOptions, WatchdogConfigMapsMillisecondsToBothTriggers) {
  bench::BackendOptions b;
  EXPECT_FALSE(b.watchdog_config().enabled());  // default: no watchdog

  b.watchdog_ms = 800;
  b.watchdog_dump = "/tmp/flight.json";
  const exec::WatchdogConfig cfg = b.watchdog_config();
  EXPECT_TRUE(cfg.enabled());
  EXPECT_EQ(cfg.phase_deadline, 800'000'000);
  EXPECT_EQ(cfg.stuck_scans, 8u);
  // Eight sweeps fit exactly inside the deadline.
  EXPECT_EQ(cfg.scan_interval, 100'000'000);
  EXPECT_EQ(cfg.dump_path, "/tmp/flight.json");
  EXPECT_TRUE(cfg.fatal);

  // Tiny deadlines keep a sane sweep floor instead of busy-polling.
  b.watchdog_ms = 4;
  EXPECT_EQ(b.watchdog_config().scan_interval, 1'000'000);
}

TEST(BackendOptions, InstallWatchdogWarnsWhenBackendIsSim) {
  bench::BackendOptions b;
  b.watchdog_ms = 500;
  ::testing::internal::CaptureStderr();
  b.install();  // sim: warns, does not install
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("--watchdog-ms=500 ignored"), std::string::npos) << err;
}

TEST(BackendOptions, InstallPublishesWorkerPoolSizeForNativeOnly) {
  // Snapshot-and-restore the process-wide default so this test cannot leak
  // a pool size into later tests in the binary.
  exec::ScopedDefaultTuning guard(exec::NativeBackend::default_tuning());

  bench::BackendOptions b;
  b.name = "native";
  b.workers = 3;
  b.install();
  EXPECT_EQ(exec::NativeBackend::default_tuning().workers, 3u);

  // Sim backend: the knob is meaningless, warn and leave the default alone.
  b.name = "sim";
  b.workers = 5;
  ::testing::internal::CaptureStderr();
  b.install();
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("--workers=5 ignored"), std::string::npos) << err;
  EXPECT_EQ(exec::NativeBackend::default_tuning().workers, 3u);

  // Negative pool sizes warn and are ignored.
  b.name = "native";
  b.workers = -2;
  ::testing::internal::CaptureStderr();
  b.install();
  const std::string err2 = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err2.find("--workers=-2 ignored"), std::string::npos) << err2;
  EXPECT_EQ(exec::NativeBackend::default_tuning().workers, 3u);
}

// Dedicated coverage for the --workers/--backend=sim mismatch: the sim
// backend is single-threaded by construction, so a pool size passed with
// it must warn (naming both flags) and must NOT leak into the process-wide
// native tuning default.
TEST(BackendOptions, InstallWarnsWorkersIgnoredOnSimBackend) {
  exec::ScopedDefaultTuning guard(exec::NativeBackend::default_tuning());
  const std::uint32_t before = exec::NativeBackend::default_tuning().workers;

  bench::BackendOptions b;  // default backend: "sim"
  b.workers = 8;
  ::testing::internal::CaptureStderr();
  b.install();
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("--workers=8 ignored"), std::string::npos) << err;
  EXPECT_NE(err.find("--backend=sim"), std::string::npos) << err;
  EXPECT_NE(err.find("native"), std::string::npos) << err;
  EXPECT_EQ(exec::NativeBackend::default_tuning().workers, before);

  // workers=0 is the "use the default" sentinel: no warning even on sim.
  b.workers = 0;
  ::testing::internal::CaptureStderr();
  b.install();
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(ObsOptions, SessionAttachesOnlyWhenSomeOutputWantsIt) {
  bench::ObsOptions plain;
  plain.init();
  EXPECT_EQ(plain.get(), nullptr);
  EXPECT_EQ(plain.attached_by(), nullptr);

  bench::ObsOptions traced;
  traced.trace_out = "/tmp/t.json";
  traced.init();
  ASSERT_NE(traced.get(), nullptr);
  EXPECT_STREQ(traced.attached_by(), "--trace-out");

  bench::ObsOptions forced;
  forced.init("--json");
  ASSERT_NE(forced.get(), nullptr);
  EXPECT_STREQ(forced.attached_by(), "--json");
}

}  // namespace
}  // namespace dpa
