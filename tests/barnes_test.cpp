#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "apps/barnes/app.h"
#include "apps/barnes/plummer.h"
#include "apps/barnes/tree.h"

namespace dpa::apps::barnes {
namespace {

sim::NetParams t3d_net() { return sim::NetParams{}; }

BarnesConfig small_config(std::uint32_t n = 256, std::uint32_t steps = 1) {
  BarnesConfig cfg;
  cfg.nbodies = n;
  cfg.nsteps = steps;
  cfg.seed = 99;
  return cfg;
}

// ---------- Plummer model ----------

TEST(Plummer, GeneratesRequestedBodies) {
  const auto bodies = plummer_model(500, 1);
  EXPECT_EQ(bodies.size(), 500u);
  for (const auto& b : bodies) EXPECT_GT(b.mass, 0.0);
}

TEST(Plummer, TotalMassIsOne) {
  const auto bodies = plummer_model(345, 2);
  double mass = 0;
  for (const auto& b : bodies) mass += b.mass;
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(Plummer, CenterOfMassFrame) {
  const auto bodies = plummer_model(1000, 3);
  Vec3 cmp, cmv;
  for (const auto& b : bodies) {
    cmp += b.pos * b.mass;
    cmv += b.vel * b.mass;
  }
  EXPECT_NEAR(cmp.norm(), 0.0, 1e-10);
  EXPECT_NEAR(cmv.norm(), 0.0, 1e-10);
}

TEST(Plummer, DeterministicPerSeed) {
  const auto a = plummer_model(100, 7);
  const auto b = plummer_model(100, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].pos.x, b[i].pos.x);
    EXPECT_DOUBLE_EQ(a[i].vel.z, b[i].vel.z);
  }
  const auto c = plummer_model(100, 8);
  EXPECT_NE(a[0].pos.x, c[0].pos.x);
}

TEST(Plummer, RadiusTruncatedAtNine) {
  const auto bodies = plummer_model(5000, 4);
  const double rsc = 3.0 * 3.14159265358979323846 / 16.0;
  for (const auto& b : bodies) {
    // The CM shift moves things a hair; allow slack.
    EXPECT_LT(b.pos.norm(), 9.0 * rsc + 1.0);
  }
}

// ---------- Morton keys ----------

TEST(Morton, OrdersByOctant) {
  const Vec3 c{0, 0, 0};
  // x-low comes before x-high in the lowest bit of the top octant.
  const auto k_low = morton_key({-0.5, -0.5, -0.5}, c, 1.0);
  const auto k_high = morton_key({0.5, -0.5, -0.5}, c, 1.0);
  EXPECT_LT(k_low, k_high);
}

TEST(Morton, ClampsOutOfBox) {
  const Vec3 c{0, 0, 0};
  const auto k1 = morton_key({-100, 0, 0}, c, 1.0);
  const auto k2 = morton_key({-1, 0, 0}, c, 1.0);
  EXPECT_EQ(k1, k2);
}

TEST(Morton, MonotoneAlongTheDiagonal) {
  const Vec3 c{0, 0, 0};
  std::uint64_t prev = 0;
  for (double v = -0.9; v < 0.9; v += 0.05) {
    const auto k = morton_key({v, v, v}, c, 1.0);
    EXPECT_GE(k, prev);
    prev = k;
  }
}

TEST(Morton, IdenticalPointsIdenticalKeys) {
  const Vec3 c{1, 2, 3};
  EXPECT_EQ(morton_key({0.3, -0.2, 0.7}, c, 4.0),
            morton_key({0.3, -0.2, 0.7}, c, 4.0));
}

// ---------- tree build ----------

TEST(Tree, EveryBodyInExactlyOneLeaf) {
  const auto bodies = plummer_model(512, 5);
  const BhTree tree = BhTree::build(bodies);
  std::multiset<std::int32_t> seen;
  for (const auto& cell : tree.cells) {
    if (!cell.leaf) continue;
    for (auto bi : cell.bodies) seen.insert(bi);
  }
  EXPECT_EQ(seen.size(), 512u);
  for (std::int32_t i = 0; i < 512; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(Tree, LeavesRespectCapacity) {
  const auto bodies = plummer_model(2000, 6);
  const BhTree tree = BhTree::build(bodies);
  for (const auto& cell : tree.cells) {
    if (cell.leaf) {
      EXPECT_LE(cell.bodies.size(), std::size_t(kLeafCap));
    }
  }
}

TEST(Tree, ChildrenNestInsideParents) {
  const auto bodies = plummer_model(300, 7);
  const BhTree tree = BhTree::build(bodies);
  for (const auto& cell : tree.cells) {
    if (cell.leaf) continue;
    for (auto ci : cell.child) {
      if (ci < 0) continue;
      const BuildCell& ch = tree.at(ci);
      EXPECT_NEAR(ch.half, cell.half / 2, 1e-12);
      EXPECT_LE(std::abs(ch.center.x - cell.center.x), cell.half);
      EXPECT_LE(std::abs(ch.center.y - cell.center.y), cell.half);
      EXPECT_LE(std::abs(ch.center.z - cell.center.z), cell.half);
    }
  }
}

TEST(Tree, ComMassEqualsTotalMass) {
  const auto bodies = plummer_model(777, 8);
  BhTree tree = BhTree::build(bodies);
  tree.compute_com(bodies);
  EXPECT_NEAR(tree.at(tree.root).mass, 1.0, 1e-12);
  // Root COM equals the CM frame origin.
  EXPECT_NEAR(tree.at(tree.root).com.norm(), 0.0, 1e-9);
}

TEST(Tree, SingleBodyTree) {
  std::vector<Body> bodies(1);
  bodies[0].mass = 1.0;
  bodies[0].idx = 0;
  BhTree tree = BhTree::build(bodies);
  tree.compute_com(bodies);
  EXPECT_TRUE(tree.at(tree.root).leaf);
  EXPECT_EQ(tree.at(tree.root).bodies.size(), 1u);
}

// ---------- costzones ----------

TEST(Costzones, UniformWorkSplitsEvenly) {
  const auto bodies = plummer_model(1000, 9);
  const BhTree tree = BhTree::build(bodies);
  const auto owner = costzone_owners(tree, bodies, 4);
  std::array<int, 4> counts{};
  for (auto o : owner) counts[o]++;
  for (int c : counts) EXPECT_NEAR(c, 250, 2);
}

TEST(Costzones, WeightedWorkShiftsBoundaries) {
  auto bodies = plummer_model(100, 10);
  BhTree tree = BhTree::build(bodies);
  // First half of Morton order gets 9x the work.
  for (std::size_t i = 0; i < 50; ++i)
    bodies[std::size_t(tree.order[i])].work = 9.0;
  for (std::size_t i = 50; i < 100; ++i)
    bodies[std::size_t(tree.order[i])].work = 1.0;
  const auto owner = costzone_owners(tree, bodies, 2);
  int node0 = 0;
  for (auto o : owner) node0 += (o == 0);
  // Node 0 takes ~half the *work*, i.e. far fewer than half the bodies.
  EXPECT_LT(node0, 40);
}

TEST(Costzones, ZonesAreContiguousInMortonOrder) {
  const auto bodies = plummer_model(512, 11);
  const BhTree tree = BhTree::build(bodies);
  const auto owner = costzone_owners(tree, bodies, 8);
  sim::NodeId prev = 0;
  for (const auto bi : tree.order) {
    const auto o = owner[std::size_t(bi)];
    EXPECT_GE(o, prev);
    prev = o;
  }
}

// ---------- materialization ----------

TEST(Materialize, MirrorsHostTree) {
  const auto bodies = plummer_model(256, 12);
  BhTree tree = BhTree::build(bodies);
  tree.compute_com(bodies);
  const auto owner = costzone_owners(tree, bodies, 4);
  gas::GlobalHeap heap(4);
  const auto root = materialize(tree, bodies, owner, heap);
  ASSERT_TRUE(bool(root));
  EXPECT_EQ(heap.total_objects(), tree.num_cells());
  EXPECT_NEAR(root.addr->mass, 1.0, 1e-12);
  EXPECT_FALSE(root.addr->leaf);
}

TEST(Materialize, LeafPayloadMatchesBodies) {
  const auto bodies = plummer_model(64, 13);
  BhTree tree = BhTree::build(bodies);
  tree.compute_com(bodies);
  const auto owner = costzone_owners(tree, bodies, 1);
  gas::GlobalHeap heap(1);
  const auto root = materialize(tree, bodies, owner, heap);

  // Walk the global tree; verify leaves carry correct inline copies.
  std::vector<const Cell*> stack{root.addr};
  int leaf_bodies = 0;
  while (!stack.empty()) {
    const Cell* c = stack.back();
    stack.pop_back();
    if (c->leaf) {
      for (std::int32_t i = 0; i < c->count; ++i) {
        const Body& b = bodies[std::size_t(c->bidx[std::size_t(i)])];
        EXPECT_DOUBLE_EQ(c->bpos[std::size_t(i)].x, b.pos.x);
        EXPECT_DOUBLE_EQ(c->bmass[std::size_t(i)], b.mass);
        ++leaf_bodies;
      }
    } else {
      for (const auto& ch : c->child)
        if (ch) stack.push_back(ch.addr);
    }
  }
  EXPECT_EQ(leaf_bodies, 64);
}

// ---------- forces: parallel vs sequential oracle ----------

TEST(Force, ParallelMatchesSequentialOracle) {
  BarnesApp app(small_config(256));
  const auto seq = app.run_sequential();
  const auto par = app.run(4, t3d_net(), rt::RuntimeConfig::dpa(16));
  ASSERT_TRUE(par.all_completed());
  ASSERT_EQ(seq.size(), 1u);

  // Accelerations agree to FP-reassociation tolerance.
  for (std::size_t i = 0; i < 256; ++i) {
    const Vec3& a = seq[0].acc[i];
    const Vec3& b = par.final_bodies[i].acc;
    const double scale = std::max(1.0, a.norm());
    EXPECT_NEAR(a.x, b.x, 1e-9 * scale) << "body " << i;
    EXPECT_NEAR(a.y, b.y, 1e-9 * scale) << "body " << i;
    EXPECT_NEAR(a.z, b.z, 1e-9 * scale) << "body " << i;
  }
  // Interaction counts match exactly (same tree, same criterion).
  EXPECT_EQ(par.steps[0].interactions, seq[0].counts.interactions);
  EXPECT_EQ(par.steps[0].opens, seq[0].counts.opens);
}

TEST(Force, AllEnginesComputeTheSamePhysics) {
  BarnesApp app(small_config(128));
  const auto seq = app.run_sequential();
  for (const auto& cfg :
       {rt::RuntimeConfig::dpa(8), rt::RuntimeConfig::dpa_base(8),
        rt::RuntimeConfig::dpa_pipelined(8), rt::RuntimeConfig::caching(),
        rt::RuntimeConfig::blocking()}) {
    const auto par = app.run(2, t3d_net(), cfg);
    ASSERT_TRUE(par.all_completed()) << cfg.describe();
    EXPECT_EQ(par.steps[0].interactions, seq[0].counts.interactions)
        << cfg.describe();
    for (std::size_t i = 0; i < 128; i += 17) {
      const double scale = std::max(1.0, seq[0].acc[i].norm());
      EXPECT_NEAR(seq[0].acc[i].x, par.final_bodies[i].acc.x, 1e-9 * scale)
          << cfg.describe() << " body " << i;
    }
  }
}

TEST(Force, MultiStepStaysConsistent) {
  BarnesApp app(small_config(128, 3));
  const auto seq = app.run_sequential();
  const auto par = app.run(4, t3d_net(), rt::RuntimeConfig::dpa(16));
  ASSERT_TRUE(par.all_completed());
  ASSERT_EQ(par.steps.size(), 3u);
  // Interaction counts per step track the oracle (trajectories diverge only
  // at FP noise level over 3 steps; the tree and counts stay identical).
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_EQ(par.steps[s].interactions, seq[s].counts.interactions);
}

TEST(Force, ThetaControlsInteractionCount) {
  auto cfg_tight = small_config(256);
  cfg_tight.theta = 0.5;  // more accurate: more interactions
  auto cfg_loose = small_config(256);
  cfg_loose.theta = 1.2;
  const auto tight = BarnesApp(cfg_tight).run_sequential();
  const auto loose = BarnesApp(cfg_loose).run_sequential();
  EXPECT_GT(tight[0].counts.interactions, loose[0].counts.interactions);
}

TEST(Force, GravityIsAttractiveTowardCenter) {
  // For a centrally concentrated Plummer system, outer bodies accelerate
  // inward: acc . pos < 0 for most bodies.
  BarnesApp app(small_config(512));
  const auto seq = app.run_sequential();
  const auto& bodies = app.initial_bodies();
  int inward = 0;
  for (std::size_t i = 0; i < bodies.size(); ++i)
    inward += (seq[0].acc[i].dot(bodies[i].pos) < 0);
  EXPECT_GT(inward, 450);
}

// ---------- quadrupole moments ----------

TEST(Quadrupole, TensorIsTraceless) {
  const auto bodies = plummer_model(400, 20);
  BhTree tree = BhTree::build(bodies);
  tree.compute_com(bodies);
  tree.compute_quadrupoles(bodies);
  for (const auto& cell : tree.cells) {
    EXPECT_NEAR(cell.quad.xx + cell.quad.yy + cell.quad.zz, 0.0, 1e-9);
  }
}

TEST(Quadrupole, ParallelAxisShiftMatchesDirectComputation) {
  // The root's quadrupole built through the tree must equal the one built
  // directly from all bodies about the root COM.
  const auto bodies = plummer_model(300, 21);
  BhTree tree = BhTree::build(bodies);
  tree.compute_com(bodies);
  tree.compute_quadrupoles(bodies);
  const BuildCell& root = tree.at(tree.root);

  Quad direct;
  for (const Body& b : bodies) {
    const Vec3 d = b.pos - root.com;
    const double r2 = d.norm2();
    direct.xx += b.mass * (3 * d.x * d.x - r2);
    direct.xy += b.mass * 3 * d.x * d.y;
    direct.xz += b.mass * 3 * d.x * d.z;
    direct.yy += b.mass * (3 * d.y * d.y - r2);
    direct.yz += b.mass * 3 * d.y * d.z;
    direct.zz += b.mass * (3 * d.z * d.z - r2);
  }
  EXPECT_NEAR(root.quad.xx, direct.xx, 1e-9);
  EXPECT_NEAR(root.quad.xy, direct.xy, 1e-9);
  EXPECT_NEAR(root.quad.yz, direct.yz, 1e-9);
  EXPECT_NEAR(root.quad.zz, direct.zz, 1e-9);
}

TEST(Quadrupole, FieldMatchesDirectSumForAFarCluster) {
  // Two bodies near the origin; evaluate the acceleration far away: the
  // monopole+quadrupole expansion must be much closer to the exact value
  // than the monopole alone.
  std::vector<Body> bodies(2);
  bodies[0] = Body{{0.3, 0.1, -0.2}, {}, {}, 2.0, 0, 1.0};
  bodies[1] = Body{{-0.4, -0.1, 0.3}, {}, {}, 1.0, 1, 1.0};
  BhTree tree = BhTree::build(bodies);
  tree.compute_com(bodies);
  tree.compute_quadrupoles(bodies);
  const BuildCell& root = tree.at(tree.root);

  const Vec3 pos{6.0, 4.0, -5.0};
  Vec3 exact;
  for (const Body& b : bodies) {
    const Vec3 d = b.pos - pos;
    const double inv = 1.0 / std::sqrt(d.norm2());
    exact += d * (b.mass * inv * inv * inv);
  }
  const Vec3 d = root.com - pos;
  const double inv = 1.0 / std::sqrt(d.norm2());
  const Vec3 mono = d * (root.mass * inv * inv * inv);
  const Vec3 quad = mono + quadrupole_acc(root.quad, root.com, pos);
  EXPECT_LT((quad - exact).norm(), 0.2 * (mono - exact).norm());
}

TEST(Quadrupole, ImprovesWholeSystemAccuracyAtSameTheta) {
  BarnesConfig direct_cfg = small_config(256);
  direct_cfg.theta = 1e-9;  // exact
  const auto exact = BarnesApp(direct_cfg).run_sequential();

  auto err_with = [&](bool use_quad) {
    BarnesConfig cfg = small_config(256);
    cfg.theta = 0.9;
    cfg.use_quadrupole = use_quad;
    const auto approx = BarnesApp(cfg).run_sequential();
    double err = 0;
    for (std::size_t i = 0; i < 256; ++i) {
      err += (approx[0].acc[i] - exact[0].acc[i]).norm() /
             std::max(1e-12, exact[0].acc[i].norm());
    }
    return err / 256;
  };
  const double mono_err = err_with(false);
  const double quad_err = err_with(true);
  EXPECT_LT(quad_err, 0.5 * mono_err);
}

TEST(Quadrupole, ParallelMatchesSequentialWithQuadrupoles) {
  BarnesConfig cfg = small_config(192);
  cfg.use_quadrupole = true;
  BarnesApp app(cfg);
  const auto seq = app.run_sequential();
  const auto par = app.run(4, t3d_net(), rt::RuntimeConfig::dpa(16));
  ASSERT_TRUE(par.all_completed());
  EXPECT_EQ(par.steps[0].interactions, seq[0].counts.interactions);
  for (std::size_t i = 0; i < 192; i += 11) {
    const double scale = std::max(1.0, seq[0].acc[i].norm());
    EXPECT_NEAR(seq[0].acc[i].x, par.final_bodies[i].acc.x, 1e-9 * scale);
    EXPECT_NEAR(seq[0].acc[i].z, par.final_bodies[i].acc.z, 1e-9 * scale);
  }
}

// ---------- performance shape (the paper's headline) ----------

TEST(Scaling, DpaSpeedsUpWithNodes) {
  BarnesApp app(small_config(512));
  const double t1 =
      app.run(1, t3d_net(), rt::RuntimeConfig::dpa(50)).total_parallel_seconds();
  const double t8 =
      app.run(8, t3d_net(), rt::RuntimeConfig::dpa(50)).total_parallel_seconds();
  EXPECT_GT(t1 / t8, 4.0) << "expected at least 4x speedup on 8 nodes";
}

TEST(Scaling, DpaBeatsCachingOnMultipleNodes) {
  BarnesApp app(small_config(512));
  const double dpa =
      app.run(8, t3d_net(), rt::RuntimeConfig::dpa(50)).total_parallel_seconds();
  const double caching =
      app.run(8, t3d_net(), rt::RuntimeConfig::caching()).total_parallel_seconds();
  EXPECT_LT(dpa, caching);
}

TEST(Scaling, CachingBeatsDpaOnOneNode) {
  // The paper's table: at P=1 DPA's thread overhead exceeds caching's (all
  // accesses are local, nothing to hash).
  BarnesApp app(small_config(512));
  const double dpa =
      app.run(1, t3d_net(), rt::RuntimeConfig::dpa(50)).total_parallel_seconds();
  const double caching =
      app.run(1, t3d_net(), rt::RuntimeConfig::caching()).total_parallel_seconds();
  EXPECT_LT(caching, dpa);
  // And both are within ~40% of the modeled sequential time.
  const double seq =
      app.run(1, t3d_net(), rt::RuntimeConfig::dpa(50)).total_model_seq_seconds();
  EXPECT_LT(dpa / seq, 1.4);
  EXPECT_GT(dpa / seq, 1.0);
}

TEST(Scaling, DeterministicRun) {
  BarnesApp app(small_config(256));
  const auto a = app.run(4, t3d_net(), rt::RuntimeConfig::dpa(16));
  const auto b = app.run(4, t3d_net(), rt::RuntimeConfig::dpa(16));
  EXPECT_EQ(a.steps[0].phase.elapsed, b.steps[0].phase.elapsed);
  EXPECT_EQ(a.steps[0].phase.rt.request_msgs, b.steps[0].phase.rt.request_msgs);
}

}  // namespace
}  // namespace dpa::apps::barnes
