#include <gtest/gtest.h>

#include "compiler/interp.h"
#include "compiler/parser.h"
#include "compiler/partition.h"

namespace dpa::compiler {
namespace {

constexpr const char* kListSource = R"(
# A linked list walk.
class Node {
  scalar val;
  ptr next : Node;
}

fn walk(n : Node) {
  v = n->val;
  sum += v;
  charge 100;
  nx = n->next;
  spawn walk(nx);
}
)";

TEST(Parser, ParsesClassesAndFunctions) {
  const Module m = parse_module(kListSource);
  ASSERT_EQ(m.classes.size(), 1u);
  EXPECT_EQ(m.classes[0].name, "Node");
  EXPECT_EQ(m.classes[0].scalar_fields, std::vector<std::string>{"val"});
  ASSERT_EQ(m.classes[0].ptr_fields.size(), 1u);
  EXPECT_EQ(m.classes[0].ptr_fields[0].pointee, "Node");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].name, "walk");
  EXPECT_EQ(m.functions[0].param, "n");
  EXPECT_EQ(m.functions[0].body.size(), 5u);
}

TEST(Parser, ReadKindInferredFromClassLayout) {
  const Module m = parse_module(kListSource);
  EXPECT_EQ(m.functions[0].body[0]->kind, Stmt::K::kReadScalar);
  EXPECT_EQ(m.functions[0].body[3]->kind, Stmt::K::kReadPtr);
}

TEST(Parser, ExpressionPrecedence) {
  const Module m = parse_module(R"(
class T { scalar a; }
fn f(t : T) {
  a = t->a;
  x = 1 + 2 * 3;
  y = (1 + 2) * 3;
  z = x < y;
}
)");
  std::map<std::string, double> env;
  const auto& body = m.functions[0].body;
  env["a"] = 0;
  ASSERT_EQ(body.size(), 4u);
  EXPECT_DOUBLE_EQ(body[1]->expr->eval(env), 7.0);
  EXPECT_DOUBLE_EQ(body[2]->expr->eval(env), 9.0);
}

TEST(Parser, IfElseAndSpawnChildren) {
  const Module m = parse_module(R"(
class Tree { scalar v; scalar leaf; ptr l : Tree; ptr r : Tree; }
fn walk(t : Tree) {
  v = t->v;
  leaf = t->leaf;
  if (leaf > 0.5) {
    sum += v;
  } else {
    charge 50;
    spawn_children walk(t);
  }
}
)");
  const auto& body = m.functions[0].body;
  ASSERT_EQ(body.size(), 3u);
  EXPECT_EQ(body[2]->kind, Stmt::K::kIf);
  EXPECT_EQ(body[2]->then_body.size(), 1u);
  EXPECT_EQ(body[2]->else_body.size(), 2u);
  EXPECT_EQ(body[2]->else_body[1]->kind, Stmt::K::kSpawnChildren);
}

TEST(Parser, CommentsAndWhitespaceIgnored) {
  const Module m = parse_module(
      "class A{scalar x;}  # trailing\n#full line\nfn f(a:A){ x=a->x; }");
  EXPECT_EQ(m.functions[0].body.size(), 1u);
}

TEST(Parser, ScientificNumbers) {
  const Module m = parse_module(
      "class A{scalar x;}\nfn f(a:A){ y = 1.5e3 + 2e-2; }");
  std::map<std::string, double> env;
  EXPECT_DOUBLE_EQ(m.functions[0].body[0]->expr->eval(env), 1500.02);
}

// ---------- errors carry line numbers ----------

TEST(Parser, UnknownFieldDies) {
  EXPECT_DEATH(parse_module(
                   "class A{scalar x;}\nfn f(a:A){ y = a->bogus; }"),
               "line 2.*has no field");
}

TEST(Parser, UnknownClassDies) {
  EXPECT_DEATH(parse_module("fn f(a:Nope){ x = 1; }"), "unknown class");
}

TEST(Parser, UnknownSpawnPointerDies) {
  EXPECT_DEATH(parse_module(
                   "class A{scalar x;}\nfn f(a:A){ spawn f(ghost); }"),
               "unknown pointer variable");
}

TEST(Parser, PointerInExpressionDies) {
  EXPECT_DEATH(parse_module(
                   "class A{scalar x; ptr n:A;}\n"
                   "fn f(a:A){ p = a->n; y = p + 1; }"),
               "pointer variable in scalar expression");
}

TEST(Parser, MissingSemicolonDies) {
  EXPECT_DEATH(parse_module("class A{scalar x;}\nfn f(a:A){ y = 1 }"),
               "expected ';'");
}

// ---------- end to end: parse -> partition -> run ----------

TEST(Parser, ParsedProgramPartitionsAndRuns) {
  const Module m = parse_module(R"(
class Node {
  scalar val;
  ptr next : Node;
  ptr peer : Node;
}
fn visit(n : Node) {
  v = n->val;
  pr = n->peer;
  nx = n->next;
  pv = pr->val;          # foreign dereference: thread split here
  total += v + 2 * pv;
  spawn visit(nx);
}
)");
  const ThreadProgram program = partition(m);
  EXPECT_EQ(program.templates.size(), 2u);

  rt::Cluster cluster(2, sim::NetParams{});
  std::vector<gas::GPtr<Record>> nodes;
  for (int i = 0; i < 10; ++i) {
    Record r = make_record(m, "Node");
    r.scalars[0] = double(i + 1);
    nodes.push_back(
        cluster.heap.make<Record>(sim::NodeId(i % 2), std::move(r)));
  }
  for (int i = 0; i < 10; ++i) {
    auto* mut = gas::GlobalHeap::mutate(nodes[std::size_t(i)]);
    if (i + 1 < 10) mut->ptrs[0] = nodes[std::size_t(i + 1)];
    mut->ptrs[1] = nodes[std::size_t((i * 3) % 10)];
  }

  Accums direct, compiled;
  interp_direct(m, "visit", nodes[0].addr, direct);

  ProgramRunner runner(m, program);
  std::vector<std::vector<gas::GPtr<Record>>> roots(2);
  roots[0].push_back(nodes[0]);
  const auto result = runner.run(cluster, rt::RuntimeConfig::dpa(8), "visit",
                                 std::move(roots), &compiled);
  ASSERT_TRUE(result.completed) << result.diagnostics;
  EXPECT_DOUBLE_EQ(compiled["total"], direct["total"]);
  EXPECT_NE(direct["total"], 0.0);
}

TEST(Parser, PointerCapturesCrossThreadSplits) {
  // The recursion is *conditional on the peer's value*: the spawn depends
  // on the split thread, so `nx` (read before the split) must travel to it
  // as a pointer capture. (An unconditional spawn would stay in the entry
  // thread — the dependence-sets partitioning keeps independent work out
  // of the continuation; see IndependentStatementsStayInEarlierThread.)
  const Module m = parse_module(R"(
class Node {
  scalar val;
  ptr next : Node;
  ptr peer : Node;
}
fn visit(n : Node) {
  nx = n->next;
  pr = n->peer;
  pv = pr->val;          # split: thread labeled pr
  total += pv;
  if (pv < 0.5) {
    spawn visit(nx);     # depends on pv -> moves; nx is a pointer capture
  }
}
)");
  const ThreadProgram program = partition(m);
  ASSERT_EQ(program.templates.size(), 2u);
  const ThreadTemplate& cont = program.templates[1];
  ASSERT_EQ(cont.ptr_captures.size(), 1u);
  EXPECT_EQ(cont.ptr_captures[0], "nx");
  EXPECT_NE(program.dump().find("ptr_captures(nx)"), std::string::npos);

  // And it executes correctly end to end.
  rt::Cluster cluster(2, sim::NetParams{});
  std::vector<gas::GPtr<Record>> nodes;
  for (int i = 0; i < 8; ++i) {
    Record r = make_record(m, "Node");
    // Alternate below/above the recursion threshold so the walk sometimes
    // continues and sometimes stops.
    r.scalars[0] = (i % 2 == 0) ? 0.25 : 0.75;
    nodes.push_back(
        cluster.heap.make<Record>(sim::NodeId(i % 2), std::move(r)));
  }
  for (int i = 0; i < 8; ++i) {
    auto* mut = gas::GlobalHeap::mutate(nodes[std::size_t(i)]);
    if (i + 1 < 8) mut->ptrs[0] = nodes[std::size_t(i + 1)];
    mut->ptrs[1] = nodes[std::size_t((i * 2) % 8)];  // even peers: recurse
  }
  Accums direct, compiled;
  interp_direct(m, "visit", nodes[0].addr, direct);
  ProgramRunner runner(m, program);
  std::vector<std::vector<gas::GPtr<Record>>> roots(2);
  roots[0].push_back(nodes[0]);
  const auto result = runner.run(cluster, rt::RuntimeConfig::dpa(8), "visit",
                                 std::move(roots), &compiled);
  ASSERT_TRUE(result.completed) << result.diagnostics;
  EXPECT_DOUBLE_EQ(compiled["total"], direct["total"]);
  EXPECT_NE(direct["total"], 0.0);
}

}  // namespace
}  // namespace dpa::compiler
