// ProcBackend unit + chaos coverage: the node->process partition, config
// clamping, a minimal cross-process phase driven straight through the
// PhaseRunner, and — the reason this binary exists — the peer-crash drill:
// a worker process dies mid-phase and the coordinator must turn that into
// a clean per-phase error (completed=false, diagnostics naming the dead
// worker, its pid and its nodes, flight-record JSON) instead of a hang, a
// SIGPIPE, or an abort.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/proc_backend.h"
#include "runtime/engine.h"
#include "runtime/phase.h"

namespace dpa {
namespace {

// Restores the process-wide default config on scope exit so chaos settings
// cannot leak into other tests in this binary.
class ScopedProcConfig {
 public:
  explicit ScopedProcConfig(const exec::ProcBackend::Config& cfg)
      : saved_(exec::ProcBackend::default_config()) {
    exec::ProcBackend::set_default_config(cfg);
  }
  ~ScopedProcConfig() { exec::ProcBackend::set_default_config(saved_); }

 private:
  exec::ProcBackend::Config saved_;
};

TEST(ProcBackend, PartitionsNodesByModularAffinity) {
  exec::ProcBackend::Config cfg;
  cfg.procs = 3;
  exec::ProcBackend backend(8, cfg);
  EXPECT_EQ(backend.num_procs(), 3u);
  for (std::uint32_t n = 0; n < 8; ++n)
    EXPECT_EQ(backend.owner_of(n), n % 3) << "node " << n;
}

TEST(ProcBackend, ClampsProcessCountToTheNodeCount) {
  exec::ProcBackend::Config cfg;
  cfg.procs = 64;
  exec::ProcBackend over(4, cfg);
  EXPECT_EQ(over.num_procs(), 4u);  // never more processes than nodes

  cfg.procs = 0;
  exec::ProcBackend under(4, cfg);
  EXPECT_EQ(under.num_procs(), 1u);  // and always at least one
}

// A four-node ring: node n owns one value and adds its successor's
// phase-start value to it. With procs=2 every dependency crosses a process
// boundary (owners alternate 0,1,0,1), so the phase exercises the full
// remote require/reply path plus the span-diff result merge.
struct RingVal {
  double v = 0;
};

rt::PhaseResult run_ring_phase(std::vector<double>* out) {
  rt::Cluster cluster(4, exec::BackendKind::kProc);
  rt::PhaseRunner runner(cluster, rt::RuntimeConfig::dpa(32));

  std::vector<gas::GPtr<RingVal>> ptrs;
  for (std::uint32_t n = 0; n < 4; ++n)
    ptrs.push_back(cluster.heap.make<RingVal>(n, RingVal{double(n + 1)}));

  std::vector<rt::NodeWork> work(4);
  for (std::uint32_t n = 0; n < 4; ++n) {
    work[n].count = 1;
    work[n].item = [&ptrs, n](rt::Ctx& ctx, std::uint64_t) {
      RingVal* mine = gas::GlobalHeap::mutate(ptrs[n]);
      ctx.require(ptrs[(n + 1) % 4],
                  [mine](rt::Ctx&, const RingVal& dep) { mine->v += dep.v; });
    };
  }
  const rt::PhaseResult r = runner.run(std::move(work), "ring");
  if (out != nullptr) {
    out->clear();
    for (const auto& p : ptrs) out->push_back(p.addr->v);
  }
  return r;
}

TEST(ProcBackend, CrossProcessRingPhaseComputesTheRightValues) {
  exec::ProcBackend::Config cfg;
  cfg.procs = 2;
  const ScopedProcConfig guard(cfg);
  std::vector<double> vals;
  const rt::PhaseResult r = run_ring_phase(&vals);
  ASSERT_TRUE(r.completed) << r.diagnostics;
  // v[n] = (n+1) + successor's phase-start value (n+2, wrapping to 1).
  const std::vector<double> want = {1 + 2, 2 + 3, 3 + 4, 4 + 1};
  EXPECT_EQ(vals, want);
  EXPECT_GT(r.elapsed, 0);
  EXPECT_GT(r.sim_events, 0u);
}

TEST(ProcBackend, WorkerDeathFailsThePhaseInsteadOfHanging) {
  const std::string dump = ::testing::TempDir() + "proc_crash_drill.json";
  std::remove(dump.c_str());

  exec::ProcBackend::Config cfg;
  cfg.procs = 2;
  cfg.kill_worker_for_test = 1;  // worker 1 self-terminates mid-phase...
  cfg.kill_after_pumps = 1;      // ...before it can report even once
  cfg.watchdog.phase_deadline = 30'000'000'000;  // backstop: fail, not hang
  cfg.watchdog.dump_path = dump;
  const ScopedProcConfig guard(cfg);

  const rt::PhaseResult r = run_ring_phase(nullptr);

  // The phase is a reported error, not a crash and not a hang: the test
  // reaching this line at all is the no-SIGPIPE/no-abort half of the claim.
  EXPECT_FALSE(r.completed);
  // Diagnostics name the dead process and the nodes it took down (worker 1
  // of 2 owns the odd nodes).
  EXPECT_NE(r.diagnostics.find("worker 1"), std::string::npos)
      << r.diagnostics;
  EXPECT_NE(r.diagnostics.find("pid"), std::string::npos) << r.diagnostics;
  EXPECT_NE(r.diagnostics.find("nodes 1 3"), std::string::npos)
      << r.diagnostics;
  EXPECT_NE(r.diagnostics.find("exited with status 42"), std::string::npos)
      << r.diagnostics;

  // And the flight record landed on disk, machine-readable.
  std::ifstream f(dump);
  ASSERT_TRUE(f.good()) << "no flight record at " << dump;
  std::stringstream body;
  body << f.rdbuf();
  const std::string record = body.str();
  EXPECT_NE(record.find("\"backend\": \"proc\""), std::string::npos);
  EXPECT_NE(record.find("\"dead_worker\": 1"), std::string::npos);
  EXPECT_NE(record.find("\"dead_nodes\": [1, 3]"), std::string::npos);
  std::remove(dump.c_str());
}

TEST(ProcBackend, RecoversCleanlyAfterAFailedPhase) {
  // A crash drill must not poison the process: the same test binary can
  // immediately run a fresh cluster (fork-per-phase means no long-lived
  // worker state survives the failure).
  {
    exec::ProcBackend::Config cfg;
    cfg.procs = 2;
    cfg.kill_worker_for_test = 0;
    cfg.watchdog.phase_deadline = 30'000'000'000;
    const ScopedProcConfig guard(cfg);
    EXPECT_FALSE(run_ring_phase(nullptr).completed);
  }
  exec::ProcBackend::Config cfg;
  cfg.procs = 2;
  const ScopedProcConfig guard(cfg);
  std::vector<double> vals;
  const rt::PhaseResult r = run_ring_phase(&vals);
  ASSERT_TRUE(r.completed) << r.diagnostics;
  EXPECT_EQ(vals, (std::vector<double>{3, 5, 7, 5}));
}

}  // namespace
}  // namespace dpa
