#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "gas/heap.h"
#include "runtime/dpa_engine.h"
#include "runtime/phase.h"
#include "runtime/sync_engine.h"

namespace dpa::rt {
namespace {

using gas::GPtr;

struct Obj {
  int id = 0;
  double val = 0.0;
};

sim::NetParams test_net() {
  sim::NetParams p;
  p.send_overhead = 1000;
  p.recv_overhead = 1000;
  p.latency = 5000;
  p.ns_per_byte = 1.0;
  p.per_msg_wire = 100;
  p.nic_serialize = true;
  p.mtu_bytes = 4096;
  return p;
}

// A small world: `nobjs` objects round-robined (or pinned) across nodes.
struct World {
  Cluster cluster;
  std::vector<GPtr<Obj>> objs;

  World(std::uint32_t nodes, int nobjs, int pin_home = -1)
      : cluster(nodes, test_net()) {
    for (int i = 0; i < nobjs; ++i) {
      const sim::NodeId home =
          pin_home >= 0 ? sim::NodeId(pin_home) : sim::NodeId(i % nodes);
      objs.push_back(cluster.heap.make<Obj>(home, Obj{i, double(i) + 0.5}));
    }
  }

  std::vector<NodeWork> idle_work() const {
    return std::vector<NodeWork>(cluster.num_nodes());
  }
};

// ---------- basic completion and correctness ----------

TEST(DpaEngine, LocalOnlyPhaseCompletesWithoutMessages) {
  World w(1, 10);
  auto sum = std::make_shared<double>(0.0);
  auto work = w.idle_work();
  work[0].count = 10;
  work[0].item = [&w, sum](Ctx& ctx, std::uint64_t i) {
    ctx.require(w.objs[i], [sum](Ctx& ctx2, const Obj& o) {
      ctx2.charge(100);
      *sum += o.val;
    });
  };
  PhaseRunner runner(w.cluster, RuntimeConfig::dpa(4));
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  EXPECT_DOUBLE_EQ(*sum, 10 * 0.5 + 45.0);
  EXPECT_EQ(r.net.messages, 0u);
  EXPECT_EQ(r.rt.local_threads, 10u);
  EXPECT_EQ(r.rt.threads_run, 10u);
}

TEST(DpaEngine, RemoteObjectsFetchedAndSumCorrect) {
  World w(2, 20, /*pin_home=*/1);
  auto sum = std::make_shared<double>(0.0);
  auto work = w.idle_work();
  work[0].count = 20;
  work[0].item = [&w, sum](Ctx& ctx, std::uint64_t i) {
    ctx.require(w.objs[i], [sum](Ctx&, const Obj& o) { *sum += o.val; });
  };
  PhaseRunner runner(w.cluster, RuntimeConfig::dpa(50));
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  double expect = 0;
  for (int i = 0; i < 20; ++i) expect += double(i) + 0.5;
  EXPECT_DOUBLE_EQ(*sum, expect);
  EXPECT_EQ(r.rt.refs_requested, 20u);
  EXPECT_EQ(r.rt.replies_recv, r.rt.request_msgs);
}

// ---------- tiling: threads naming the same pointer share one fetch ----------

TEST(DpaEngine, TilingSharesOneFetchAcrossThreads) {
  World w(2, 1, /*pin_home=*/1);
  auto hits = std::make_shared<int>(0);
  auto work = w.idle_work();
  work[0].count = 10;
  work[0].item = [&w, hits](Ctx& ctx, std::uint64_t) {
    ctx.require(w.objs[0], [hits](Ctx&, const Obj&) { ++*hits; });
  };
  PhaseRunner runner(w.cluster, RuntimeConfig::dpa(50));
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  EXPECT_EQ(*hits, 10);
  EXPECT_EQ(r.rt.refs_requested, 1u);      // one fetch
  EXPECT_EQ(r.rt.dup_refs_avoided, 9u);    // nine threads joined the tile
  EXPECT_EQ(r.rt.threads_run, 10u);
}

TEST(DpaEngine, TileReuseIsScopedToStrip) {
  // Same single remote object touched by every iteration; with strips of 5
  // over 20 iterations the object is fetched once per strip.
  World w(2, 1, /*pin_home=*/1);
  auto work = w.idle_work();
  work[0].count = 20;
  work[0].item = [&w](Ctx& ctx, std::uint64_t) {
    ctx.require(w.objs[0], [](Ctx&, const Obj&) {});
  };
  PhaseRunner runner(w.cluster, RuntimeConfig::dpa(5));
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  EXPECT_EQ(r.rt.strips, 4u);
  EXPECT_EQ(r.rt.refs_requested, 4u);  // one per strip
}

// ---------- aggregation ----------

TEST(DpaEngine, AggregationBatchesRequestsToOneMessage) {
  World w(2, 30, /*pin_home=*/1);
  auto work = w.idle_work();
  work[0].count = 30;
  work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
    ctx.require(w.objs[i], [](Ctx&, const Obj&) {});
  };
  auto cfg = RuntimeConfig::dpa(50);
  cfg.agg_max_refs = 64;
  PhaseRunner runner(w.cluster, cfg);
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  EXPECT_EQ(r.rt.refs_requested, 30u);
  EXPECT_EQ(r.rt.request_msgs, 1u);
  EXPECT_DOUBLE_EQ(r.rt.aggregation_factor(), 30.0);
}

TEST(DpaEngine, AggregationRespectsBufferCap) {
  World w(2, 30, /*pin_home=*/1);
  auto work = w.idle_work();
  work[0].count = 30;
  work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
    ctx.require(w.objs[i], [](Ctx&, const Obj&) {});
  };
  auto cfg = RuntimeConfig::dpa(50);
  cfg.agg_max_refs = 10;
  PhaseRunner runner(w.cluster, cfg);
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  EXPECT_EQ(r.rt.request_msgs, 3u);
}

TEST(DpaEngine, NoAggregationSendsOneMessagePerRef) {
  World w(2, 15, /*pin_home=*/1);
  auto work = w.idle_work();
  work[0].count = 15;
  work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
    ctx.require(w.objs[i], [](Ctx&, const Obj&) {});
  };
  PhaseRunner runner(w.cluster, RuntimeConfig::dpa_pipelined(50));
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  EXPECT_EQ(r.rt.request_msgs, 15u);
}

// ---------- pipelining ----------

TEST(DpaEngine, ConfigurationsOrderAsThePaperPredicts) {
  // Distinct remote objects and real per-thread compute: synchronous Base
  // serializes round trips, +pipelining overlaps them, +aggregation also
  // removes per-message overhead. Time must strictly improve.
  auto run_with = [](RuntimeConfig cfg) {
    World w(2, 60, /*pin_home=*/1);
    auto work = w.idle_work();
    work[0].count = 60;
    work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
      ctx.require(w.objs[i], [](Ctx& c, const Obj&) { c.charge(2000); });
    };
    PhaseRunner runner(w.cluster, cfg);
    const PhaseResult r = runner.run(std::move(work));
    EXPECT_TRUE(r.completed) << r.diagnostics;
    return r.elapsed;
  };
  const Time base = run_with(RuntimeConfig::dpa_base(50));
  const Time pipe = run_with(RuntimeConfig::dpa_pipelined(50));
  const Time full = run_with(RuntimeConfig::dpa(50));
  EXPECT_GT(base, pipe);
  EXPECT_GT(pipe, full);
}

TEST(DpaEngine, BaseConfigurationMostlyIdles) {
  World w(2, 40, /*pin_home=*/1);
  auto work = w.idle_work();
  work[0].count = 40;
  work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
    ctx.require(w.objs[i], [](Ctx&, const Obj&) {});
  };
  PhaseRunner runner(w.cluster, RuntimeConfig::dpa_base(50));
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  // Node 0 waits a full round trip per object; idle dominates its time.
  EXPECT_GT(r.nodes[0].idle, r.nodes[0].busy_total);
}

// ---------- strip-mining ----------

TEST(DpaEngine, StripMiningBoundsOutstandingState) {
  World w(2, 100, /*pin_home=*/1);
  auto work = w.idle_work();
  work[0].count = 100;
  work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
    ctx.require(w.objs[i], [](Ctx&, const Obj&) {});
  };
  PhaseRunner runner(w.cluster, RuntimeConfig::dpa(10));
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  EXPECT_EQ(r.rt.strips, 10u);
  EXPECT_LE(r.rt.max_m_entries, 10);
  EXPECT_LE(r.rt.max_outstanding_threads, 10 + 1);
}

TEST(DpaEngine, LargerStripHoldsMoreState) {
  auto max_m_for_strip = [](std::uint32_t strip) {
    World w(2, 100, /*pin_home=*/1);
    auto work = w.idle_work();
    work[0].count = 100;
    work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
      ctx.require(w.objs[i], [](Ctx&, const Obj&) {});
    };
    PhaseRunner runner(w.cluster, RuntimeConfig::dpa(strip));
    const PhaseResult r = runner.run(std::move(work));
    EXPECT_TRUE(r.completed) << r.diagnostics;
    return r.rt.max_m_entries;
  };
  EXPECT_LT(max_m_for_strip(5), max_m_for_strip(50));
}

// ---------- scheduling templates ----------

TEST(DpaEngine, InterleavedTemplateCompletesWithSameAnswer) {
  for (const auto tmpl :
       {SchedTemplate::kCreateAllThenRun, SchedTemplate::kInterleaved}) {
    World w(2, 25, /*pin_home=*/1);
    auto sum = std::make_shared<double>(0.0);
    auto work = w.idle_work();
    work[0].count = 25;
    work[0].item = [&w, sum](Ctx& ctx, std::uint64_t i) {
      ctx.require(w.objs[i], [sum](Ctx&, const Obj& o) { *sum += o.val; });
    };
    auto cfg = RuntimeConfig::dpa(50);
    cfg.sched_template = tmpl;
    PhaseRunner runner(w.cluster, cfg);
    const PhaseResult r = runner.run(std::move(work));
    ASSERT_TRUE(r.completed) << r.diagnostics;
    double expect = 0;
    for (int i = 0; i < 25; ++i) expect += double(i) + 0.5;
    EXPECT_DOUBLE_EQ(*sum, expect);
  }
}

// ---------- nested thread creation (recursive PBDS walks) ----------

// A distributed linked list walked by chained non-blocking threads.
struct Link {
  double val = 0.0;
  GPtr<Link> next;
};

// Wires up values and next pointers for the list test.
void wire_link(std::vector<GPtr<Link>>& links, int i, int len) {
  auto* l = gas::GlobalHeap::mutate(links[std::size_t(i)]);
  l->val = double(i);
  l->next = (i + 1 < len) ? links[std::size_t(i + 1)] : GPtr<Link>{};
}

TEST(DpaEngine, ChainedThreadsWalkDistributedList) {
  Cluster cluster(4, test_net());
  const int len = 40;
  std::vector<GPtr<Link>> links;
  for (int i = 0; i < len; ++i)
    links.push_back(cluster.heap.make<Link>(sim::NodeId(i % 4)));
  for (int i = 0; i < len; ++i) wire_link(links, i, len);
  auto sum = std::make_shared<double>(0.0);
  std::vector<NodeWork> work(4);
  work[0].count = 1;
  std::function<void(Ctx&, const Link&)> walk =
      [sum, &walk](Ctx& ctx, const Link& link) {
        ctx.charge(50);
        *sum += link.val;
        if (link.next) ctx.require(link.next, walk);
      };
  work[0].item = [&links, &walk](Ctx& ctx, std::uint64_t) {
    ctx.require(links[0], walk);
  };
  PhaseRunner runner(cluster, RuntimeConfig::dpa(8));
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  double expect = 0;
  for (int i = 0; i < len; ++i) expect += double(i);
  EXPECT_DOUBLE_EQ(*sum, expect);

  // 3/4 of the links are remote to node 0.
  EXPECT_EQ(r.rt.refs_requested, 30u);
}

// ---------- sync engines ----------

TEST(SyncEngine, CachingHitsAfterFirstMiss) {
  World w(2, 1, /*pin_home=*/1);
  auto work = w.idle_work();
  work[0].count = 10;
  work[0].item = [&w](Ctx& ctx, std::uint64_t) {
    ctx.require(w.objs[0], [](Ctx&, const Obj&) {});
  };
  PhaseRunner runner(w.cluster, RuntimeConfig::caching());
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  EXPECT_EQ(r.rt.cache_misses, 1u);
  EXPECT_EQ(r.rt.cache_hits, 9u);
  EXPECT_EQ(r.rt.refs_requested, 1u);
}

TEST(SyncEngine, CachingCapacityEvicts) {
  World w(2, 3, /*pin_home=*/1);
  auto work = w.idle_work();
  // Touch objects 0,1,2,0,1,2 with a 2-object cache: all misses after
  // warmup evictions (FIFO).
  work[0].count = 6;
  work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
    ctx.require(w.objs[i % 3], [](Ctx&, const Obj&) {});
  };
  auto cfg = RuntimeConfig::caching();
  cfg.cache_capacity = 2;
  PhaseRunner runner(w.cluster, cfg);
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  EXPECT_EQ(r.rt.cache_misses, 6u);
  EXPECT_GT(r.rt.cache_evictions, 0u);
}

TEST(SyncEngine, BlockingRefetchesEveryAccess) {
  World w(2, 1, /*pin_home=*/1);
  auto work = w.idle_work();
  work[0].count = 10;
  work[0].item = [&w](Ctx& ctx, std::uint64_t) {
    ctx.require(w.objs[0], [](Ctx&, const Obj&) {});
  };
  PhaseRunner runner(w.cluster, RuntimeConfig::blocking());
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  EXPECT_EQ(r.rt.refs_requested, 10u);
  EXPECT_EQ(r.rt.cache_hits, 0u);
}

TEST(SyncEngine, DepthFirstTraversalOrder) {
  // require() inside a thread is LIFO: children visit before siblings.
  World w(1, 3);
  auto order = std::make_shared<std::vector<int>>();
  auto work = w.idle_work();
  work[0].count = 1;
  work[0].item = [&w, order](Ctx& ctx, std::uint64_t) {
    ctx.require(w.objs[0], [&w, order](Ctx& c, const Obj& o) {
      order->push_back(o.id);
      c.require(w.objs[1], [order](Ctx&, const Obj& o1) {
        order->push_back(o1.id);
      });
      c.require(w.objs[2], [order](Ctx&, const Obj& o2) {
        order->push_back(o2.id);
      });
    });
  };
  PhaseRunner runner(w.cluster, RuntimeConfig::blocking());
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  // LIFO pops obj2 before obj1.
  EXPECT_EQ(*order, (std::vector<int>{0, 2, 1}));
}

// ---------- prefetch engine ----------

TEST(PrefetchEngine, HidesLatencyBehindEarlierWork) {
  // Distinct remote objects with real per-item compute: prefetching should
  // land between blocking (every miss pays full latency) and DPA.
  auto run_kind = [](RuntimeConfig cfg) {
    World w(2, 80, /*pin_home=*/1);
    auto work = w.idle_work();
    work[0].count = 80;
    work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
      ctx.require(w.objs[i], [](Ctx& c, const Obj&) { c.charge(4000); });
    };
    PhaseRunner runner(w.cluster, cfg);
    const PhaseResult r = runner.run(std::move(work));
    EXPECT_TRUE(r.completed) << r.diagnostics;
    return r.elapsed;
  };
  const Time blocking = run_kind(RuntimeConfig::blocking());
  const Time prefetch = run_kind(RuntimeConfig::prefetching(8));
  const Time dpa = run_kind(RuntimeConfig::dpa(80));
  EXPECT_LT(prefetch, blocking);
  EXPECT_LT(dpa, prefetch);
}

TEST(PrefetchEngine, PrefetchedObjectsHitTheCache) {
  World w(2, 40, /*pin_home=*/1);
  auto work = w.idle_work();
  work[0].count = 40;
  work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
    ctx.require(w.objs[i], [](Ctx& c, const Obj&) { c.charge(50000); });
  };
  PhaseRunner runner(w.cluster, RuntimeConfig::prefetching(8));
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  // With heavy per-item compute the prefetches land before (or while) their
  // consumers poll: many accesses hit outright, and even the "misses" find
  // the reply already queued, so the phase runs at essentially compute
  // speed (40 x 50us plus small overheads).
  EXPECT_GT(r.rt.cache_hits, 20u);
  EXPECT_EQ(r.rt.cache_hits + r.rt.cache_misses, 40u);
  EXPECT_LT(r.elapsed, Time(1.15 * 40 * 50000));
}

TEST(PrefetchEngine, ZeroDepthDegeneratesToCaching) {
  World w(2, 1, /*pin_home=*/1);
  auto work = w.idle_work();
  work[0].count = 10;
  work[0].item = [&w](Ctx& ctx, std::uint64_t) {
    ctx.require(w.objs[0], [](Ctx&, const Obj&) {});
  };
  PhaseRunner runner(w.cluster, RuntimeConfig::prefetching(0));
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  EXPECT_EQ(r.rt.cache_misses, 1u);
  EXPECT_EQ(r.rt.cache_hits, 9u);
  EXPECT_EQ(r.rt.refs_requested, 1u);
}

TEST(PrefetchEngine, DeeperLookaheadHelpsUpToLatency) {
  auto time_with = [](std::uint32_t depth) {
    World w(2, 100, /*pin_home=*/1);
    auto work = w.idle_work();
    work[0].count = 100;
    work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
      ctx.require(w.objs[i], [](Ctx& c, const Obj&) { c.charge(1500); });
    };
    PhaseRunner runner(w.cluster, RuntimeConfig::prefetching(depth));
    const PhaseResult r = runner.run(std::move(work));
    EXPECT_TRUE(r.completed) << r.diagnostics;
    return r.elapsed;
  };
  EXPECT_LT(time_with(16), time_with(1));
}

// ---------- comparisons the paper reports ----------

TEST(Comparison, DpaBeatsCachingWhenObjectsAreShared) {
  // Many iterations touch a window of remote objects; caching pays a hash
  // per access and a serialized round trip per miss, DPA pays creation but
  // aggregates all fetches. DPA must win end to end.
  auto run_kind = [](RuntimeConfig cfg) {
    World w(2, 64, /*pin_home=*/1);
    auto work = w.idle_work();
    work[0].count = 256;
    work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
      for (int k = 0; k < 4; ++k) {
        ctx.require(w.objs[(i + std::uint64_t(k) * 16) % 64],
                    [](Ctx& c, const Obj&) { c.charge(500); });
      }
    };
    PhaseRunner runner(w.cluster, cfg);
    const PhaseResult r = runner.run(std::move(work));
    EXPECT_TRUE(r.completed) << r.diagnostics;
    return r.elapsed;
  };
  const Time dpa = run_kind(RuntimeConfig::dpa(64));
  const Time caching = run_kind(RuntimeConfig::caching());
  const Time blocking = run_kind(RuntimeConfig::blocking());
  EXPECT_LT(dpa, caching);
  EXPECT_LT(caching, blocking);
}

// ---------- remote accumulation (the "reductions" extension) ----------

TEST(Accumulate, LocalUpdatesApplyImmediately) {
  World w(1, 4);
  auto work = w.idle_work();
  work[0].count = 8;
  work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
    ctx.accumulate(w.objs[i % 4], [](Obj& o) { o.val += 1.0; });
  };
  PhaseRunner runner(w.cluster, RuntimeConfig::dpa(8));
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  EXPECT_EQ(r.rt.accums_local, 8u);
  EXPECT_EQ(r.rt.accum_msgs, 0u);
  for (int i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(w.objs[std::size_t(i)].addr->val, double(i) + 0.5 + 2.0);
}

TEST(Accumulate, RemoteUpdatesReachTheHome) {
  World w(2, 4, /*pin_home=*/1);
  auto work = w.idle_work();
  work[0].count = 20;
  work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
    ctx.accumulate(w.objs[i % 4], [](Obj& o) { o.val += 0.25; });
  };
  PhaseRunner runner(w.cluster, RuntimeConfig::dpa(32));
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  EXPECT_EQ(r.rt.accums_issued, 20u);
  EXPECT_EQ(r.rt.accums_applied, 20u);
  for (int i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(w.objs[std::size_t(i)].addr->val,
                     double(i) + 0.5 + 5 * 0.25);
}

TEST(Accumulate, DpaAggregatesUpdatesIntoFewMessages) {
  World w(2, 64, /*pin_home=*/1);
  auto make_work = [&w]() {
    auto work = w.idle_work();
    work[0].count = 64;
    work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
      ctx.accumulate(w.objs[i], [](Obj& o) { o.val += 1.0; });
    };
    return work;
  };
  {
    PhaseRunner runner(w.cluster, RuntimeConfig::dpa(64));
    const PhaseResult r = runner.run(make_work());
    ASSERT_TRUE(r.completed) << r.diagnostics;
    EXPECT_LE(r.rt.accum_msgs, 2u);  // batched
  }
  {
    PhaseRunner runner(w.cluster, RuntimeConfig::dpa_pipelined(64));
    const PhaseResult r = runner.run(make_work());
    ASSERT_TRUE(r.completed) << r.diagnostics;
    EXPECT_EQ(r.rt.accum_msgs, 64u);  // one message per update
  }
}

TEST(Accumulate, WorksUnderSyncEngines) {
  for (const auto& cfg :
       {RuntimeConfig::caching(), RuntimeConfig::blocking()}) {
    World w(2, 1, /*pin_home=*/1);
    auto work = w.idle_work();
    work[0].count = 5;
    work[0].item = [&w](Ctx& ctx, std::uint64_t) {
      ctx.accumulate(w.objs[0], [](Obj& o) { o.val += 2.0; });
    };
    PhaseRunner runner(w.cluster, cfg);
    const PhaseResult r = runner.run(std::move(work));
    ASSERT_TRUE(r.completed) << r.diagnostics;
    EXPECT_DOUBLE_EQ(w.objs[0].addr->val, 0.5 + 10.0) << cfg.describe();
  }
}

// ---------- cache eviction policies ----------

TEST(CachePolicy, LruKeepsHotObjects) {
  // Access pattern: obj0 touched between every other access. With capacity
  // 2, LRU keeps obj0 resident; FIFO evicts it regularly.
  auto misses_with = [](RuntimeConfig::CachePolicy policy) {
    World w(2, 3, /*pin_home=*/1);
    auto work = w.idle_work();
    work[0].count = 20;
    work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
      ctx.require(w.objs[0], [](Ctx&, const Obj&) {});
      ctx.require(w.objs[1 + (i % 2)], [](Ctx&, const Obj&) {});
    };
    auto cfg = RuntimeConfig::caching();
    cfg.cache_capacity = 2;
    cfg.cache_policy = policy;
    PhaseRunner runner(w.cluster, cfg);
    const PhaseResult r = runner.run(std::move(work));
    EXPECT_TRUE(r.completed) << r.diagnostics;
    return r.rt.cache_misses;
  };
  EXPECT_LT(misses_with(RuntimeConfig::CachePolicy::kLru),
            misses_with(RuntimeConfig::CachePolicy::kFifo));
}

// ---------- torus topology end to end ----------

TEST(Torus, PhasesCompleteAndTakeLongerThanCrossbar) {
  auto elapsed_with = [](sim::Topology topo) {
    sim::NetParams p;
    p.topology = topo;
    p.per_hop = 2000;
    Cluster cluster(8, p);
    std::vector<GPtr<Obj>> objs;
    for (int i = 0; i < 32; ++i)
      objs.push_back(cluster.heap.make<Obj>(sim::NodeId(i % 8)));
    std::vector<NodeWork> work(8);
    work[0].count = 32;
    work[0].item = [&objs](Ctx& ctx, std::uint64_t i) {
      ctx.require(objs[i], [](Ctx& c, const Obj&) { c.charge(100); });
    };
    PhaseRunner runner(cluster, RuntimeConfig::dpa(8));
    const PhaseResult r = runner.run(std::move(work));
    EXPECT_TRUE(r.completed) << r.diagnostics;
    return r.elapsed;
  };
  EXPECT_GT(elapsed_with(sim::Topology::kTorus3d),
            elapsed_with(sim::Topology::kCrossbar));
}

// ---------- phase accounting ----------

TEST(Phase, BreakdownComponentsSumToElapsed) {
  World w(2, 16, /*pin_home=*/1);
  auto work = w.idle_work();
  work[0].count = 16;
  work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
    ctx.require(w.objs[i], [](Ctx& c, const Obj&) { c.charge(300); });
  };
  PhaseRunner runner(w.cluster, RuntimeConfig::dpa(8));
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed) << r.diagnostics;
  for (const auto& n : r.nodes) {
    EXPECT_EQ(n.compute + n.runtime + n.comm, n.busy_total);
    EXPECT_EQ(n.busy_total + n.idle, r.elapsed);
  }
}

TEST(Phase, EmptyWorkCompletesImmediately) {
  World w(4, 0);
  PhaseRunner runner(w.cluster, RuntimeConfig::dpa(50));
  const PhaseResult r = runner.run(w.idle_work());
  EXPECT_TRUE(r.completed) << r.diagnostics;
  EXPECT_EQ(r.rt.threads_created, 0u);
}

TEST(Phase, DeterministicAcrossRuns) {
  auto run_once = [] {
    World w(4, 64);
    auto work = w.idle_work();
    for (std::uint32_t n = 0; n < 4; ++n) {
      work[n].count = 32;
      work[n].item = [&w, n](Ctx& ctx, std::uint64_t i) {
        ctx.require(w.objs[(i * 7 + n * 13) % 64],
                    [](Ctx& c, const Obj&) { c.charge(111); });
      };
    }
    PhaseRunner runner(w.cluster, RuntimeConfig::dpa(8));
    const PhaseResult r = runner.run(std::move(work));
    EXPECT_TRUE(r.completed) << r.diagnostics;
    return std::tuple(r.elapsed, r.rt.refs_requested, r.rt.request_msgs,
                      r.rt.threads_run);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Phase, MultiNodePhaseDistributesWork) {
  // The same total work on 1 node vs 4 nodes: 4 nodes must be faster.
  auto run_nodes = [](std::uint32_t nodes) {
    Cluster cluster(nodes, test_net());
    std::vector<GPtr<Obj>> objs;
    for (int i = 0; i < 64; ++i)
      objs.push_back(cluster.heap.make<Obj>(sim::NodeId(i % nodes)));
    std::vector<NodeWork> work(nodes);
    const std::uint64_t per = 256 / nodes;
    for (std::uint32_t n = 0; n < nodes; ++n) {
      work[n].count = per;
      work[n].item = [&objs, n](Ctx& ctx, std::uint64_t i) {
        ctx.require(objs[(n * 31 + i) % 64],
                    [](Ctx& c, const Obj&) { c.charge(20000); });
      };
    }
    PhaseRunner runner(cluster, RuntimeConfig::dpa(32));
    const PhaseResult r = runner.run(std::move(work));
    EXPECT_TRUE(r.completed) << r.diagnostics;
    return r.elapsed;
  };
  const Time t1 = run_nodes(1);
  const Time t4 = run_nodes(4);
  EXPECT_LT(t4, t1);
  EXPECT_GT(double(t1) / double(t4), 2.5);  // at least 2.5x on 4 nodes
}

TEST(Phase, WrongWorkSizeDies) {
  World w(2, 1);
  PhaseRunner runner(w.cluster, RuntimeConfig::dpa(50));
  std::vector<NodeWork> work(1);
  EXPECT_DEATH(runner.run(std::move(work)), "one NodeWork per node");
}

TEST(Config, AggregationWithoutPipeliningDies) {
  RuntimeConfig cfg;
  cfg.aggregation = true;
  cfg.pipelining = false;
  EXPECT_DEATH(cfg.validate(), "aggregation requires pipelining");
}

TEST(Config, DescribeNamesTheConfiguration) {
  EXPECT_NE(RuntimeConfig::dpa(50).describe().find("strip=50"),
            std::string::npos);
  EXPECT_NE(RuntimeConfig::caching().describe().find("caching"),
            std::string::npos);
  EXPECT_NE(RuntimeConfig::prefetching(4).describe().find("prefetch"),
            std::string::npos);
  EXPECT_NE(RuntimeConfig::blocking().describe().find("blocking"),
            std::string::npos);
}

TEST(Diagnostics, DroppedRequestSurfacesAsIncompletePhase) {
  // Fault injection: the first request message vanishes. The phase must
  // not complete, and the diagnostics must name the stuck node's state.
  World w(2, 8, /*pin_home=*/1);
  w.cluster.fm().drop_nth_message(1);
  auto work = w.idle_work();
  work[0].count = 8;
  work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
    ctx.require(w.objs[i], [](Ctx&, const Obj&) {});
  };
  PhaseRunner runner(w.cluster, RuntimeConfig::dpa(8));
  const PhaseResult r = runner.run(std::move(work));
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.diagnostics.find("dpa node 0"), std::string::npos);
  EXPECT_NE(r.diagnostics.find("outstanding 8"), std::string::npos);
  EXPECT_EQ(w.cluster.fm().dropped_messages(), 1u);
}

TEST(Diagnostics, DroppedReplySurfacesAsIncompletePhase) {
  World w(2, 4, /*pin_home=*/1);
  w.cluster.fm().drop_nth_message(2);  // 1st = request, 2nd = its reply
  auto work = w.idle_work();
  work[0].count = 4;
  work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
    ctx.require(w.objs[i], [](Ctx&, const Obj&) {});
  };
  PhaseRunner runner(w.cluster, RuntimeConfig::dpa(8));
  const PhaseResult r = runner.run(std::move(work));
  EXPECT_FALSE(r.completed);
  EXPECT_FALSE(r.diagnostics.empty());
}

TEST(Diagnostics, DroppedMessageStallsSyncEnginesToo) {
  for (const auto& cfg :
       {RuntimeConfig::caching(), RuntimeConfig::blocking(),
        RuntimeConfig::prefetching(4)}) {
    World w(2, 4, /*pin_home=*/1);
    w.cluster.fm().drop_nth_message(1);
    auto work = w.idle_work();
    work[0].count = 4;
    work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
      ctx.require(w.objs[i], [](Ctx&, const Obj&) {});
    };
    PhaseRunner runner(w.cluster, cfg);
    const PhaseResult r = runner.run(std::move(work));
    EXPECT_FALSE(r.completed) << cfg.describe();
    EXPECT_NE(r.diagnostics.find("waiting"), std::string::npos)
        << cfg.describe() << "\n" << r.diagnostics;
  }
}

TEST(Diagnostics, EngineStateDumpsNameTheNodeAndProgress) {
  // The per-node state dumps are what a deadlocked phase reports; pin
  // their shape.
  World w(2, 4, /*pin_home=*/1);
  auto work = w.idle_work();
  work[0].count = 4;
  work[0].item = [&w](Ctx& ctx, std::uint64_t i) {
    ctx.require(w.objs[i], [](Ctx&, const Obj&) {});
  };
  PhaseRunner runner(w.cluster, RuntimeConfig::dpa(2));
  const PhaseResult r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.diagnostics.empty());  // nothing to report on success
}

}  // namespace
}  // namespace dpa::rt
