#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/arena.h"
#include "support/flat_map.h"
#include "support/inline_fn.h"
#include "support/options.h"
#include "support/rng.h"
#include "support/small_vector.h"
#include "support/stats.h"
#include "support/table.h"

namespace dpa {
namespace {

// ---------- Rng ----------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t n : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(n), n);
  }
}

TEST(Rng, NextBelowZeroIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformMeanConverges) {
  Rng rng(11);
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(rng.uniform(2.0, 4.0));
  EXPECT_NEAR(acc.mean(), 3.0, 0.02);
  EXPECT_GE(acc.min(), 2.0);
  EXPECT_LT(acc.max(), 4.0);
}

TEST(Rng, NormalMomentsConverge) {
  Rng rng(13);
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(rng.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

// ---------- Accumulator ----------

TEST(Accumulator, BasicStats) {
  Accumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesCombinedStream) {
  Rng rng(17);
  Accumulator whole, left, right;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.normal() * 3 + 1;
    whole.add(v);
    (i % 2 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, b;
  a.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

// ---------- Pow2Histogram ----------

TEST(Pow2Histogram, BucketsByPowerOfTwo) {
  Pow2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);  // 0 and 1
  EXPECT_EQ(h.bucket(1), 1u);  // 2
  EXPECT_EQ(h.bucket(2), 1u);  // 3..4
  EXPECT_EQ(h.bucket(10), 1u); // 513..1024
}

TEST(Pow2Histogram, QuantileBound) {
  Pow2Histogram h;
  for (int i = 0; i < 90; ++i) h.add(1);
  for (int i = 0; i < 10; ++i) h.add(1000);
  EXPECT_EQ(h.quantile_bound(0.5), 1u);
  EXPECT_EQ(h.quantile_bound(0.99), 1024u);
}

// ---------- Gauge ----------

TEST(Gauge, TracksHighWater) {
  Gauge g;
  g.add(3);
  g.add(4);
  g.add(-5);
  EXPECT_EQ(g.current(), 2);
  EXPECT_EQ(g.high_water(), 7);
  g.set(100);
  EXPECT_EQ(g.high_water(), 100);
  g.set(1);
  EXPECT_EQ(g.high_water(), 100);
}

// ---------- SmallVector ----------

TEST(SmallVector, StaysInlineUnderCapacity) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
}

TEST(SmallVector, SpillsToHeapAndPreservesContents) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[std::size_t(i)], i);
}

TEST(SmallVector, MoveTransfersHeapBuffer) {
  SmallVector<std::string, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back("s" + std::to_string(i));
  SmallVector<std::string, 2> w = std::move(v);
  EXPECT_EQ(w.size(), 10u);
  EXPECT_EQ(w[9], "s9");
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, MoveInlineContents) {
  SmallVector<std::string, 8> v;
  v.push_back("a");
  v.push_back("b");
  SmallVector<std::string, 8> w = std::move(v);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], "a");
}

TEST(SmallVector, CopyIsDeep) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 8; ++i) v.push_back(i);
  SmallVector<int, 2> w(v);
  w[0] = 99;
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(w[0], 99);
}

TEST(SmallVector, PopBackDestroys) {
  SmallVector<std::string, 2> v;
  v.push_back("x");
  v.pop_back();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, ClearThenReuse) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(42);
  EXPECT_EQ(v[0], 42);
}

// ---------- Options ----------

TEST(Options, ParsesAllKinds) {
  bool flag = false;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double f = 0;
  std::string s;
  Options o;
  o.flag("verbose", &flag, "v")
      .i64("count", &i, "c")
      .u64("nodes", &u, "n")
      .f64("theta", &f, "t")
      .str("name", &s, "s");
  const char* argv[] = {"prog",      "--verbose",   "--count=-5",
                        "--nodes=64", "--theta=1.5", "--name=barnes"};
  ASSERT_TRUE(o.parse(6, const_cast<char**>(argv)));
  EXPECT_TRUE(flag);
  EXPECT_EQ(i, -5);
  EXPECT_EQ(u, 64u);
  EXPECT_DOUBLE_EQ(f, 1.5);
  EXPECT_EQ(s, "barnes");
}

TEST(Options, HelpReturnsFalse) {
  Options o;
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(o.parse(2, const_cast<char**>(argv)));
}

TEST(Options, UnknownOptionDies) {
  Options o;
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_DEATH(o.parse(2, const_cast<char**>(argv)), "unknown option");
}

TEST(Options, BadIntegerDies) {
  std::int64_t i = 0;
  Options o;
  o.i64("count", &i, "c");
  const char* argv[] = {"prog", "--count=abc"};
  EXPECT_DEATH(o.parse(2, const_cast<char**>(argv)), "");
}

// ---------- Table ----------

TEST(Table, AlignsColumns) {
  Table t({"version", "P=1", "P=64"});
  t.add_row({"DPA(50)", "118.02", "2.63"});
  t.add_row({"Caching", "115.15", "2.90"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("DPA(50)"), std::string::npos);
  EXPECT_NE(s.find("115.15"), std::string::npos);
  // Header and separator and two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.5, 1), "50.0%");
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b"});
  t.add_row({"only"});
  EXPECT_NE(t.to_string().find("only"), std::string::npos);
}

// ---------- FlatMap ----------

TEST(FlatMap, BasicInsertFindErase) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7), m.end());

  auto [it, inserted] = m.try_emplace(7, 70);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->second, 70);
  EXPECT_FALSE(m.try_emplace(7, 99).second);
  EXPECT_EQ(m.find(7)->second, 70);

  m[7] = 71;
  EXPECT_EQ(m.find(7)->second, 71);
  m[8] = 80;  // operator[] default-constructs then assigns
  EXPECT_EQ(m.size(), 2u);

  EXPECT_EQ(m.erase(7), 1u);
  EXPECT_EQ(m.erase(7), 0u);
  EXPECT_EQ(m.find(7), m.end());
  EXPECT_EQ(m.find(8)->second, 80);
}

TEST(FlatMap, GrowsPastManyRehashes) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t k = 0; k < 10000; ++k) m.try_emplace(k, k * 3);
  EXPECT_EQ(m.size(), 10000u);
  for (std::uint64_t k = 0; k < 10000; ++k) {
    ASSERT_NE(m.find(k), m.end()) << k;
    EXPECT_EQ(m.find(k)->second, k * 3);
  }
}

TEST(FlatMap, ClearKeepsCapacityAndWorks) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m.try_emplace(k, 1);
  const std::size_t cap = m.capacity();
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.capacity(), cap);
  for (std::uint64_t k = 50; k < 150; ++k) m.try_emplace(k, 2);
  EXPECT_EQ(m.size(), 100u);
  EXPECT_EQ(m.find(149)->second, 2);
}

TEST(FlatMap, MoveOnlyValues) {
  FlatMap<std::uint64_t, std::unique_ptr<int>> m;
  m.try_emplace(1, std::make_unique<int>(10));
  m.emplace(2, std::make_unique<int>(20));
  // Force rehash (moves values) and backward-shift erase (move-assigns).
  for (std::uint64_t k = 3; k < 200; ++k)
    m.try_emplace(k, std::make_unique<int>(int(k)));
  EXPECT_EQ(*m.find(1)->second, 10);
  m.erase(1);
  EXPECT_EQ(m.find(1), m.end());
  EXPECT_EQ(*m.find(2)->second, 20);
}

// Seeded fuzz: random insert/erase/lookup churn must agree with
// std::unordered_map at every step, across growth and backward-shift
// deletion. Keys are drawn from a small universe so collisions, erases of
// present keys, and duplicate inserts all happen constantly.
TEST(FlatMap, FuzzAgainstUnorderedMapOracle) {
  for (const std::uint64_t seed : {1u, 2u, 42u, 1997u}) {
    Rng rng(seed);
    FlatMap<std::uint64_t, std::uint64_t> map;
    std::unordered_map<std::uint64_t, std::uint64_t> oracle;
    for (int step = 0; step < 20000; ++step) {
      const std::uint64_t key = rng.next_below(512);
      switch (rng.next_below(8)) {
        case 0:
        case 1:
        case 2: {  // try_emplace
          const std::uint64_t v = rng.next_u64();
          const bool a = map.try_emplace(key, v).second;
          const bool b = oracle.try_emplace(key, v).second;
          ASSERT_EQ(a, b);
          break;
        }
        case 3: {  // operator[] overwrite
          const std::uint64_t v = rng.next_u64();
          map[key] = v;
          oracle[key] = v;
          break;
        }
        case 4: {  // erase
          ASSERT_EQ(map.erase(key), oracle.erase(key));
          break;
        }
        case 5: {  // clear, occasionally
          if (rng.next_below(64) == 0) {
            map.clear();
            oracle.clear();
          }
          break;
        }
        default: {  // lookup
          const auto it = map.find(key);
          const auto oit = oracle.find(key);
          ASSERT_EQ(it != map.end(), oit != oracle.end());
          if (oit != oracle.end()) {
            ASSERT_EQ(it->second, oit->second);
          }
          break;
        }
      }
      ASSERT_EQ(map.size(), oracle.size());
    }
    // Full final sweep: every oracle entry present with the same value, and
    // iteration visits exactly size() live entries.
    for (const auto& [k, v] : oracle) {
      ASSERT_NE(map.find(k), map.end()) << "seed " << seed << " key " << k;
      ASSERT_EQ(map.find(k)->second, v);
    }
    std::size_t visited = 0;
    for (const auto& kv : map) {
      ASSERT_EQ(oracle.at(kv.first), kv.second);
      ++visited;
    }
    ASSERT_EQ(visited, oracle.size());
  }
}

TEST(FlatSet, InsertEraseContains) {
  FlatSet<const void*> s;
  int a = 0, b = 0;
  EXPECT_TRUE(s.insert(&a).second);
  EXPECT_FALSE(s.insert(&a).second);
  EXPECT_TRUE(s.contains(&a));
  EXPECT_EQ(s.count(&b), 0u);
  EXPECT_EQ(s.erase(&a), 1u);
  EXPECT_FALSE(s.contains(&a));
  EXPECT_EQ(s.size(), 0u);
}

// ---------- InlineFn ----------

TEST(InlineFn, EmptyAndNullptr) {
  InlineFn<int(int)> fn;
  EXPECT_FALSE(fn);
  EXPECT_TRUE(fn == nullptr);
  fn = [](int x) { return x + 1; };
  EXPECT_TRUE(fn);
  EXPECT_EQ(fn(1), 2);
  fn = nullptr;
  EXPECT_FALSE(fn);
}

TEST(InlineFn, CaptureSizesStraddlingTheInlineBuffer) {
  // 8B, 32B, 48B captures fit a 48-byte buffer; 64B and 128B spill to the
  // heap. Both paths must produce identical results and report accordingly.
  auto check = [](auto make_fn, bool want_inline) {
    auto fn = make_fn();
    EXPECT_EQ(fn.is_inline(), want_inline);
    EXPECT_EQ(fn(), 42);
  };
  using Fn = InlineFn<int(), 48>;
  check([] { return Fn([] { return 42; }); }, true);
  check(
      [] {
        std::uint64_t a = 40, b = 2;
        return Fn([a, b] { return int(a + b); });
      },
      true);
  check(
      [] {
        std::uint64_t w[6] = {36, 1, 1, 1, 1, 2};
        return Fn([w] { return int(w[0] + w[1] + w[2] + w[3] + w[4] + w[5]); });
      },
      true);
  check(
      [] {
        std::uint64_t w[8] = {35, 1, 1, 1, 1, 1, 1, 1};
        return Fn([w] {
          int s = 0;
          for (auto v : w) s += int(v);
          return s;
        });
      },
      false);
  check(
      [] {
        std::uint64_t w[16] = {};
        w[0] = 27;
        w[15] = 15;
        return Fn([w] { return int(w[0] + w[15]); });
      },
      false);
}

TEST(InlineFn, MoveTransfersOwnershipBothPaths) {
  // Inline path: move relocates the capture into the destination buffer.
  {
    auto p = std::make_shared<int>(7);
    InlineFn<int(), 48> a([p] { return *p; });
    EXPECT_EQ(p.use_count(), 2);
    InlineFn<int(), 48> b = std::move(a);
    EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): documented empty
    EXPECT_EQ(p.use_count(), 2);  // moved, not copied
    EXPECT_EQ(b(), 7);
    InlineFn<int(), 48> c;
    c = std::move(b);
    EXPECT_EQ(c(), 7);
    EXPECT_EQ(p.use_count(), 2);
  }
  // Heap path: move hands over the heap pointer; the capture never moves.
  {
    auto p = std::make_shared<int>(9);
    std::uint64_t pad[8] = {};
    InlineFn<int(), 48> a([p, pad] { return *p + int(pad[0]); });
    EXPECT_FALSE(a.is_inline());
    EXPECT_EQ(p.use_count(), 2);
    InlineFn<int(), 48> b = std::move(a);
    EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(p.use_count(), 2);
    EXPECT_EQ(b(), 9);
  }
}

TEST(InlineFn, DestroysCaptureExactlyOnce) {
  auto p = std::make_shared<int>(1);
  {
    InlineFn<void(), 48> fn([p] {});
    EXPECT_EQ(p.use_count(), 2);
    fn = nullptr;  // destroy without invoking
    EXPECT_EQ(p.use_count(), 1);
  }
  {
    std::uint64_t pad[8] = {};
    InlineFn<void(), 48> fn([p, pad] { (void)pad; });
    EXPECT_FALSE(fn.is_inline());
    EXPECT_EQ(p.use_count(), 2);
  }
  EXPECT_EQ(p.use_count(), 1);
}

TEST(InlineFn, SelfMoveAssignSafe) {
  InlineFn<int(), 48> fn([] { return 5; });
  auto* alias = &fn;
  fn = std::move(*alias);
  // Self-move leaves the object valid (empty or unchanged); must not crash.
  if (fn) {
    EXPECT_EQ(fn(), 5);
  }
}

TEST(InlineFn, InvocableWithArgumentsAndConst) {
  const InlineFn<int(int, int), 48> fn([](int a, int b) { return a * b; });
  EXPECT_EQ(fn(6, 7), 42);
}

// ---------- Arena ----------

TEST(Arena, BumpAllocatesAlignedAndResets) {
  Arena arena(1024);
  void* a = arena.allocate(100, 8);
  void* b = arena.allocate(100, 64);
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  EXPECT_GE(arena.bytes_requested(), 200u);

  // Oversized request gets its own chunk rather than failing.
  void* big = arena.allocate(4096, 16);
  EXPECT_NE(big, nullptr);
  const std::size_t chunks = arena.num_chunks();

  arena.reset();
  EXPECT_EQ(arena.bytes_requested(), 0u);
  // Chunks are recycled, not freed: same pointer comes back first.
  void* a2 = arena.allocate(100, 8);
  EXPECT_EQ(a, a2);
  EXPECT_EQ(arena.num_chunks(), chunks);
}

TEST(Arena, RecycleReusesFreedBlocks) {
  Arena arena(4096);
  void* p = arena.allocate(256, 8);
  arena.recycle(p, 256);
  void* q = arena.allocate(256, 8);
  EXPECT_EQ(p, q);  // came off the free list, not the bump pointer
  // A different size must not hit that bucket.
  void* r = arena.allocate(128, 8);
  EXPECT_NE(r, q);
}

TEST(Arena, ContainerChurnDoesNotGrowWithoutBound) {
  // A deque pushed and popped far more times than its peak size must reuse
  // its node blocks through the free lists: reserved bytes stay flat.
  Arena arena;
  {
    std::deque<std::uint64_t, ArenaAllocator<std::uint64_t>> q{
        ArenaAllocator<std::uint64_t>(&arena)};
    for (int round = 0; round < 1000; ++round) {
      for (int i = 0; i < 256; ++i) q.push_back(std::uint64_t(i));
      while (!q.empty()) q.pop_front();
    }
  }
  // Peak live data is 256 * 8B = 2KB; without recycling this would be MBs.
  EXPECT_LE(arena.bytes_reserved(), 256 * 1024u);
}

TEST(Arena, AllocatorAdapterWorksAcrossPhases) {
  Arena arena;
  using Alloc = ArenaAllocator<std::pair<const int, int>>;
  for (int phase = 0; phase < 3; ++phase) {
    {
      std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
      for (int i = 0; i < 10000; ++i) v.push_back(i);
      EXPECT_EQ(v[9999], 9999);
      // Rebind path: a map with a different node type on the same arena.
      std::map<int, int, std::less<int>, Alloc> m{std::less<int>(),
                                                  Alloc(&arena)};
      for (int i = 0; i < 100; ++i) m[i] = i * 2;
      EXPECT_EQ(m.at(99), 198);
    }
    arena.reset();  // all containers above are dead; safe to recycle
  }
  EXPECT_EQ(ArenaAllocator<int>(&arena), ArenaAllocator<long>(&arena));
  Arena other;
  EXPECT_NE(ArenaAllocator<int>(&arena), ArenaAllocator<int>(&other));
}

}  // namespace
}  // namespace dpa
