#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "support/options.h"
#include "support/rng.h"
#include "support/small_vector.h"
#include "support/stats.h"
#include "support/table.h"

namespace dpa {
namespace {

// ---------- Rng ----------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t n : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(n), n);
  }
}

TEST(Rng, NextBelowZeroIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformMeanConverges) {
  Rng rng(11);
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(rng.uniform(2.0, 4.0));
  EXPECT_NEAR(acc.mean(), 3.0, 0.02);
  EXPECT_GE(acc.min(), 2.0);
  EXPECT_LT(acc.max(), 4.0);
}

TEST(Rng, NormalMomentsConverge) {
  Rng rng(13);
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(rng.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

// ---------- Accumulator ----------

TEST(Accumulator, BasicStats) {
  Accumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesCombinedStream) {
  Rng rng(17);
  Accumulator whole, left, right;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.normal() * 3 + 1;
    whole.add(v);
    (i % 2 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, b;
  a.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

// ---------- Pow2Histogram ----------

TEST(Pow2Histogram, BucketsByPowerOfTwo) {
  Pow2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);  // 0 and 1
  EXPECT_EQ(h.bucket(1), 1u);  // 2
  EXPECT_EQ(h.bucket(2), 1u);  // 3..4
  EXPECT_EQ(h.bucket(10), 1u); // 513..1024
}

TEST(Pow2Histogram, QuantileBound) {
  Pow2Histogram h;
  for (int i = 0; i < 90; ++i) h.add(1);
  for (int i = 0; i < 10; ++i) h.add(1000);
  EXPECT_EQ(h.quantile_bound(0.5), 1u);
  EXPECT_EQ(h.quantile_bound(0.99), 1024u);
}

// ---------- Gauge ----------

TEST(Gauge, TracksHighWater) {
  Gauge g;
  g.add(3);
  g.add(4);
  g.add(-5);
  EXPECT_EQ(g.current(), 2);
  EXPECT_EQ(g.high_water(), 7);
  g.set(100);
  EXPECT_EQ(g.high_water(), 100);
  g.set(1);
  EXPECT_EQ(g.high_water(), 100);
}

// ---------- SmallVector ----------

TEST(SmallVector, StaysInlineUnderCapacity) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
}

TEST(SmallVector, SpillsToHeapAndPreservesContents) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[std::size_t(i)], i);
}

TEST(SmallVector, MoveTransfersHeapBuffer) {
  SmallVector<std::string, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back("s" + std::to_string(i));
  SmallVector<std::string, 2> w = std::move(v);
  EXPECT_EQ(w.size(), 10u);
  EXPECT_EQ(w[9], "s9");
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, MoveInlineContents) {
  SmallVector<std::string, 8> v;
  v.push_back("a");
  v.push_back("b");
  SmallVector<std::string, 8> w = std::move(v);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], "a");
}

TEST(SmallVector, CopyIsDeep) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 8; ++i) v.push_back(i);
  SmallVector<int, 2> w(v);
  w[0] = 99;
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(w[0], 99);
}

TEST(SmallVector, PopBackDestroys) {
  SmallVector<std::string, 2> v;
  v.push_back("x");
  v.pop_back();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, ClearThenReuse) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(42);
  EXPECT_EQ(v[0], 42);
}

// ---------- Options ----------

TEST(Options, ParsesAllKinds) {
  bool flag = false;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double f = 0;
  std::string s;
  Options o;
  o.flag("verbose", &flag, "v")
      .i64("count", &i, "c")
      .u64("nodes", &u, "n")
      .f64("theta", &f, "t")
      .str("name", &s, "s");
  const char* argv[] = {"prog",      "--verbose",   "--count=-5",
                        "--nodes=64", "--theta=1.5", "--name=barnes"};
  ASSERT_TRUE(o.parse(6, const_cast<char**>(argv)));
  EXPECT_TRUE(flag);
  EXPECT_EQ(i, -5);
  EXPECT_EQ(u, 64u);
  EXPECT_DOUBLE_EQ(f, 1.5);
  EXPECT_EQ(s, "barnes");
}

TEST(Options, HelpReturnsFalse) {
  Options o;
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(o.parse(2, const_cast<char**>(argv)));
}

TEST(Options, UnknownOptionDies) {
  Options o;
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_DEATH(o.parse(2, const_cast<char**>(argv)), "unknown option");
}

TEST(Options, BadIntegerDies) {
  std::int64_t i = 0;
  Options o;
  o.i64("count", &i, "c");
  const char* argv[] = {"prog", "--count=abc"};
  EXPECT_DEATH(o.parse(2, const_cast<char**>(argv)), "");
}

// ---------- Table ----------

TEST(Table, AlignsColumns) {
  Table t({"version", "P=1", "P=64"});
  t.add_row({"DPA(50)", "118.02", "2.63"});
  t.add_row({"Caching", "115.15", "2.90"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("DPA(50)"), std::string::npos);
  EXPECT_NE(s.find("115.15"), std::string::npos);
  // Header and separator and two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.5, 1), "50.0%");
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b"});
  t.add_row({"only"});
  EXPECT_NE(t.to_string().find("only"), std::string::npos);
}

}  // namespace
}  // namespace dpa
