// Parameterized application-level sweeps: the physics must be independent
// of every scheduling knob, and the accuracy/performance trends must hold
// across the parameter ranges the paper exercises.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "apps/barnes/app.h"
#include "apps/em3d/em3d.h"
#include "apps/fmm/app.h"

namespace dpa::apps {
namespace {

sim::NetParams t3d() { return sim::NetParams{}; }

// ---------- Barnes-Hut: theta x nodes sweep ----------

class BarnesSweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(BarnesSweep, ParallelAgreesWithOracle) {
  const auto& [theta, nodes] = GetParam();
  barnes::BarnesConfig cfg;
  cfg.nbodies = 192;
  cfg.theta = theta;
  cfg.seed = 41;
  barnes::BarnesApp app(cfg);
  const auto seq = app.run_sequential();
  const auto par = app.run(std::uint32_t(nodes), t3d(),
                           rt::RuntimeConfig::dpa(16));
  ASSERT_TRUE(par.all_completed());
  EXPECT_EQ(par.steps[0].interactions, seq[0].counts.interactions);
  EXPECT_EQ(par.steps[0].opens, seq[0].counts.opens);
  for (std::size_t i = 0; i < 192; i += 13) {
    const double scale = std::max(1.0, seq[0].acc[i].norm());
    EXPECT_NEAR(seq[0].acc[i].x, par.final_bodies[i].acc.x, 1e-9 * scale);
    EXPECT_NEAR(seq[0].acc[i].y, par.final_bodies[i].acc.y, 1e-9 * scale);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThetaNodes, BarnesSweep,
    ::testing::Combine(::testing::Values(0.5, 0.8, 1.0, 1.3),
                       ::testing::Values(1, 3, 8)),
    [](const auto& info) {
      return "theta" +
             std::to_string(int(std::get<0>(info.param) * 10)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

// Barnes-Hut accuracy: the tree code approaches the direct sum as theta
// shrinks.
TEST(BarnesAccuracy, TreeCodeConvergesToDirectSum) {
  barnes::BarnesConfig direct_cfg;
  direct_cfg.nbodies = 128;
  direct_cfg.theta = 1e-9;  // opens everything: effectively direct
  direct_cfg.seed = 43;
  const auto direct = barnes::BarnesApp(direct_cfg).run_sequential();

  double prev_err = 1e100;
  for (const double theta : {1.2, 0.8, 0.4}) {
    barnes::BarnesConfig cfg = direct_cfg;
    cfg.theta = theta;
    const auto approx = barnes::BarnesApp(cfg).run_sequential();
    double err = 0;
    for (std::size_t i = 0; i < 128; ++i) {
      err += (approx[0].acc[i] - direct[0].acc[i]).norm() /
             std::max(1e-12, direct[0].acc[i].norm());
    }
    EXPECT_LT(err, prev_err) << "theta " << theta;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 0.05 * 128);  // mean error under 5% at theta=0.4
}

// ---------- FMM: terms x ws_ratio sweep ----------

class FmmSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(FmmSweep, ErrorWithinTruncationBound) {
  const auto& [terms, ws_ratio] = GetParam();
  fmm::FmmConfig cfg;
  cfg.nparticles = 400;
  cfg.terms = std::uint32_t(terms);
  cfg.ws_ratio = ws_ratio;
  cfg.seed = 44;
  fmm::FmmApp app(cfg);
  const auto seq = app.run_sequential();
  const auto direct = fmm::direct_forces(app.initial_particles());

  // Convergence ratio for the dual-tree criterion: sqrt(2)*s / (ws*s - ...)
  // — conservatively, rho = sqrt(2) / (ws_ratio - sqrt(2)).
  const double rho = std::sqrt(2.0) / (ws_ratio - std::sqrt(2.0));
  const double bound = 50.0 * std::pow(rho, terms + 1);
  double worst = 0;
  for (std::size_t i = 0; i < direct.size(); ++i) {
    const double scale = std::max(1e-12, std::abs(direct[i]));
    worst = std::max(worst, std::abs(seq.forces[i] - direct[i]) / scale);
  }
  EXPECT_LT(worst, std::max(bound, 1e-12)) << "p=" << terms
                                           << " ws=" << ws_ratio;
}

INSTANTIATE_TEST_SUITE_P(
    TermsWs, FmmSweep,
    ::testing::Combine(::testing::Values(8, 16, 24),
                       ::testing::Values(4.0, 5.0, 6.0)),
    [](const auto& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_ws" +
             std::to_string(int(std::get<1>(info.param)));
    });

// ---------- FMM: engine sweep keeps counts identical ----------

class FmmEngineSweep : public ::testing::TestWithParam<int> {};

TEST_P(FmmEngineSweep, StripSizeNeverChangesTheAnswer) {
  const auto strip = std::uint32_t(GetParam());
  fmm::FmmConfig cfg;
  cfg.nparticles = 300;
  cfg.terms = 8;
  cfg.seed = 45;
  fmm::FmmApp app(cfg);
  const auto seq = app.run_sequential();
  const auto par = app.run(4, t3d(), rt::RuntimeConfig::dpa(strip));
  ASSERT_TRUE(par.all_completed());
  EXPECT_EQ(par.steps[0].m2l, seq.m2l);
  EXPECT_EQ(par.steps[0].p2p_pairs, seq.p2p_pairs);
  for (std::size_t i = 0; i < seq.forces.size(); i += 41) {
    EXPECT_LT(std::abs(par.final_particles[i].force - seq.forces[i]),
              1e-9 * (1 + std::abs(seq.forces[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(Strips, FmmEngineSweep,
                         ::testing::Values(1, 10, 50, 300, 5000));

// ---------- em3d: remote fraction x engine sweep ----------

class Em3dSweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(Em3dSweep, ValuesMatchHostReference) {
  const auto& [remote, nodes] = GetParam();
  em3d::Em3dConfig cfg;
  cfg.e_per_node = 48;
  cfg.h_per_node = 48;
  cfg.degree = 5;
  cfg.remote_prob = remote;
  cfg.iters = 2;
  cfg.seed = 46;
  em3d::Em3dApp app(cfg, std::uint32_t(nodes));
  const auto seq = app.run_sequential();
  const auto par = app.run(t3d(), rt::RuntimeConfig::dpa(32));
  ASSERT_TRUE(par.all_completed());
  for (std::size_t i = 0; i < seq.e_values.size(); ++i)
    EXPECT_NEAR(par.e_values[i], seq.e_values[i], 1e-12);
  for (std::size_t i = 0; i < seq.h_values.size(); ++i)
    EXPECT_NEAR(par.h_values[i], seq.h_values[i], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    RemoteNodes, Em3dSweep,
    ::testing::Combine(::testing::Values(0.0, 0.25, 0.9),
                       ::testing::Values(2, 5, 8)),
    [](const auto& info) {
      return "remote" +
             std::to_string(int(std::get<0>(info.param) * 100)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

// ---------- degenerate sizes ----------

TEST(Edge, SingleBodyBarnesHutHasZeroForce) {
  barnes::BarnesConfig cfg;
  cfg.nbodies = 1;
  barnes::BarnesApp app(cfg);
  const auto run = app.run(2, t3d(), rt::RuntimeConfig::dpa(8));
  ASSERT_TRUE(run.all_completed());
  EXPECT_DOUBLE_EQ(run.final_bodies[0].acc.norm(), 0.0);
  EXPECT_EQ(run.steps[0].interactions, 0u);
}

TEST(Edge, SingleParticleFmmHasZeroForce) {
  fmm::FmmConfig cfg;
  cfg.nparticles = 1;
  cfg.terms = 4;
  fmm::FmmApp app(cfg);
  const auto run = app.run(2, t3d(), rt::RuntimeConfig::dpa(8));
  ASSERT_TRUE(run.all_completed());
  EXPECT_DOUBLE_EQ(std::abs(run.final_particles[0].force), 0.0);
}

TEST(Edge, TwoBodyBarnesHutMatchesNewton) {
  barnes::BarnesConfig cfg;
  cfg.nbodies = 2;
  cfg.eps = 0.0;
  barnes::BarnesApp app(cfg);
  const auto seq = app.run_sequential();
  const auto& bodies = app.initial_bodies();
  const Vec3 d = bodies[1].pos - bodies[0].pos;
  const double r3 = std::pow(d.norm(), 3);
  EXPECT_NEAR(seq[0].acc[0].x, bodies[1].mass * d.x / r3, 1e-12);
  EXPECT_NEAR(seq[0].acc[1].x, -bodies[0].mass * d.x / r3, 1e-12);
}

// ---------- cross-app performance trends ----------

TEST(Trend, AggregationFactorGrowsWithStrip) {
  barnes::BarnesConfig cfg;
  cfg.nbodies = 1024;
  barnes::BarnesApp app(cfg);
  double prev = 0;
  for (const std::uint32_t strip : {5u, 50u, 500u}) {
    const auto run = app.run(8, t3d(), rt::RuntimeConfig::dpa(strip));
    ASSERT_TRUE(run.all_completed());
    const double agg = run.steps[0].phase.rt.aggregation_factor();
    EXPECT_GE(agg, prev * 0.95) << "strip " << strip;  // non-decreasing-ish
    prev = agg;
  }
  EXPECT_GT(prev, 2.0);
}

TEST(Trend, CostzonesLearnFromMeasuredWork) {
  // Step 1 partitions on uniform weights; step 2 on measured interaction
  // counts. The second step must be better balanced (less idle time).
  barnes::BarnesConfig cfg;
  cfg.nbodies = 2048;
  cfg.nsteps = 2;
  barnes::BarnesApp app(cfg);
  const auto run = app.run(8, t3d(), rt::RuntimeConfig::dpa(50));
  ASSERT_TRUE(run.all_completed());
  const double idle1 = run.steps[0].phase.mean_idle_s() /
                       run.steps[0].phase.seconds();
  const double idle2 = run.steps[1].phase.mean_idle_s() /
                       run.steps[1].phase.seconds();
  EXPECT_LT(idle2, idle1);
}

TEST(Trend, FmmWireBytesScaleWithTerms) {
  // require_bytes models the truncated expansion: more terms, more bytes
  // per fetched cell on the wire.
  auto bytes_with = [](std::uint32_t terms) {
    fmm::FmmConfig cfg;
    cfg.nparticles = 1500;
    cfg.terms = terms;
    cfg.seed = 48;
    fmm::FmmApp app(cfg);
    const auto run = app.run(8, t3d(), rt::RuntimeConfig::dpa(100));
    EXPECT_TRUE(run.all_completed());
    const auto& p = run.steps[0].phase;
    return double(p.fm_total.bytes_sent) /
           double(std::max<std::uint64_t>(1, p.rt.refs_requested));
  };
  const double small = bytes_with(6);
  const double large = bytes_with(24);
  EXPECT_GT(large, small + 17 * 16 * 0.8);  // ~18 extra coefficients
}

TEST(Trend, PollBatchNeverChangesPhysics) {
  barnes::BarnesConfig cfg;
  cfg.nbodies = 512;
  barnes::BarnesApp app(cfg);
  const auto seq = app.run_sequential();
  for (const std::uint32_t batch : {1u, 4u, 256u}) {
    auto rcfg = rt::RuntimeConfig::dpa(50);
    rcfg.poll_batch = batch;
    const auto run = app.run(4, t3d(), rcfg);
    ASSERT_TRUE(run.all_completed()) << "poll_batch " << batch;
    EXPECT_EQ(run.steps[0].interactions, seq[0].counts.interactions)
        << "poll_batch " << batch;
  }
}

TEST(Trend, PrefetchLandsBetweenCachingAndDpaOnBarnes) {
  barnes::BarnesConfig cfg;
  cfg.nbodies = 2048;
  barnes::BarnesApp app(cfg);
  const double dpa =
      app.run(16, t3d(), rt::RuntimeConfig::dpa(50)).total_parallel_seconds();
  const double prefetch =
      app.run(16, t3d(), rt::RuntimeConfig::prefetching(8))
          .total_parallel_seconds();
  const double blocking =
      app.run(16, t3d(), rt::RuntimeConfig::blocking())
          .total_parallel_seconds();
  EXPECT_LT(dpa, prefetch);
  EXPECT_LT(prefetch, blocking);
}

TEST(Trend, TorusSlowsThingsDownButPreservesPhysics) {
  barnes::BarnesConfig cfg;
  cfg.nbodies = 512;
  barnes::BarnesApp app(cfg);
  auto net = t3d();
  const auto flat = app.run(8, net, rt::RuntimeConfig::dpa(50));
  net.topology = sim::Topology::kTorus3d;
  net.per_hop = 2000;
  const auto torus = app.run(8, net, rt::RuntimeConfig::dpa(50));
  ASSERT_TRUE(flat.all_completed() && torus.all_completed());
  EXPECT_GT(torus.total_parallel_seconds(), flat.total_parallel_seconds());
  EXPECT_EQ(torus.steps[0].interactions, flat.steps[0].interactions);
}

}  // namespace
}  // namespace dpa::apps
